// pawsd_loadgen — deterministic chaos client mix for pawsd.
//
//   pawsd_loadgen --connect tcp:127.0.0.1:PORT
//     [--requests N]            requests per client (default 8)
//     [--clients N]             concurrent client threads (default 4)
//     [--seed S]                master seed (default 1)
//     [--tasks N]               max problem size sent (default 12)
//     [--slow-permille N]       trickle the request bytes (default 0)
//     [--disconnect-permille N] vanish before reading the answer (0)
//     [--malformed-permille N]  garbage frames / payloads (0)
//     [--request-timeout-ms N]  timeout_ms header sent (default 2000)
//     [--timeout-ms N]          client-side read deadline (default 10000)
//     [--burst]                 all clients fire simultaneously
//     [--dump-corpus DIR]       save every wire blob as a fuzz seed
//
// One-shot mode: `--problem file.paws [--scheduler S]` sends that single
// problem instead of the generated mix and prints
//
//   oneshot: outcome=ok cache_hit=0 digest=6b86b273ff34fce1
//
// which is how CI asserts pawsd and `pawsc schedule --digest` agree.
//
// Every byte sent is a pure function of (seed, client, request index):
// problems come from gen's witness-feasible generator, misbehaviour rolls
// from per-request SplitMix64 streams. Two runs with the same flags
// produce the same traffic, which is what makes the chaos CI gate
// assertable. The summary line is the contract consumed by tests:
//
//   loadgen: sent=32 ok=20 anytime=0 cached=12 overloaded=8 invalid=4
//            cancelled=0 degraded=0 no_response=0 connect_fail=0
//
// Exit 0 when every *well-formed* exchange got a structured response
// (overloaded counts as structured — shedding is correct behaviour);
// exit 1 on usage error; exit 2 when nothing could connect.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/rng.hpp"
#include "gen/random_problem.hpp"
#include "io/writer.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace {

using paws::fault::SplitMix64;
using paws::fault::mixSeed;

struct Options {
  std::string address;
  std::size_t requests = 8;
  std::size_t clients = 4;
  std::uint64_t seed = 1;
  std::size_t tasks = 12;
  std::uint32_t slowPermille = 0;
  std::uint32_t disconnectPermille = 0;
  std::uint32_t malformedPermille = 0;
  std::int64_t requestTimeoutMs = 2000;
  std::int64_t readTimeoutMs = 10000;
  bool burst = false;
  std::string corpusDir;
  /// One-shot mode: path of a .paws file to send instead of the mix.
  std::string problemPath;
  std::string scheduler = "pipeline";
};

struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t anytime = 0;
  std::uint64_t cached = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t invalid = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t degraded = 0;
  std::uint64_t other = 0;
  std::uint64_t noResponse = 0;
  std::uint64_t connectFail = 0;

  Tally& operator+=(const Tally& rhs) {
    sent += rhs.sent;
    ok += rhs.ok;
    anytime += rhs.anytime;
    cached += rhs.cached;
    overloaded += rhs.overloaded;
    invalid += rhs.invalid;
    cancelled += rhs.cancelled;
    degraded += rhs.degraded;
    other += rhs.other;
    noResponse += rhs.noResponse;
    connectFail += rhs.connectFail;
    return *this;
  }
};

constexpr std::uint64_t kProblemSalt = 0x70726f626c656dULL;  // "problem"
constexpr std::uint64_t kChaosSalt = 0x6368616f73ULL;        // "chaos"

/// The scheduler mix leans on the cheap pipelines so bursts saturate the
/// queue, not the CPU, with a sprinkle of exhaustive search to exercise
/// the degraded-mode downgrade.
const char* pickScheduler(SplitMix64& rng) {
  const std::uint64_t roll = rng.next() % 1000;
  if (roll < 600) return "pipeline";
  if (roll < 800) return "list";
  if (roll < 950) return "serial";
  return "optimal";
}

std::string makeProblemText(std::uint64_t seed, std::size_t maxTasks) {
  SplitMix64 rng(seed);
  paws::GeneratorConfig config;
  // Keep seeds in 32 bits — GeneratorConfig::seed is a std::uint32_t.
  config.seed = static_cast<std::uint32_t>(rng.next() & 0xffffffffULL);
  config.numTasks = 4 + static_cast<std::size_t>(
                            rng.next() % (maxTasks > 4 ? maxTasks - 3 : 1));
  config.numResources = 2 + static_cast<std::size_t>(rng.next() % 3);
  return paws::io::problemToText(
      paws::generateRandomProblem(config).problem);
}

/// Wire garbage for the malformed mix: half of it is broken *framing*
/// (bad magic / version / oversized length / truncated header), half is a
/// valid frame whose *payload* the request parser must refuse.
std::string makeMalformedBlob(SplitMix64& rng) {
  switch (rng.next() % 6) {
    case 0: {  // bad magic
      std::string s = paws::serve::encodeFrame(
          paws::serve::FrameType::kRequest, "paws-request/1\n---\nx");
      s[0] = 'X';
      return s;
    }
    case 1: {  // bad version
      std::string s = paws::serve::encodeFrame(
          paws::serve::FrameType::kRequest, "paws-request/1\n---\nx");
      s[4] = '\x7f';
      return s;
    }
    case 2: {  // oversized declared length
      std::string s = paws::serve::encodeFrame(
          paws::serve::FrameType::kRequest, "x");
      s[8] = '\x7f';  // length becomes ~2 GiB
      return s;
    }
    case 3: {  // truncated header, then EOF
      std::string s = paws::serve::encodeFrame(
          paws::serve::FrameType::kRequest, "x");
      return s.substr(0, 1 + rng.next() % (paws::serve::kHeaderBytes - 1));
    }
    case 4: {  // well-framed, unparseable request payload
      std::string payload = "not-a-paws-request\n";
      const std::size_t n = rng.next() % 64;
      for (std::size_t i = 0; i < n; ++i) {
        payload.push_back(static_cast<char>(rng.next() & 0xff));
      }
      return paws::serve::encodeFrame(paws::serve::FrameType::kRequest,
                                      payload);
    }
    default: {  // pure noise
      std::string s;
      const std::size_t n = 1 + rng.next() % 96;
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.next() & 0xff));
      }
      return s;
    }
  }
}

void dumpBlob(const Options& opt, std::size_t client, std::size_t index,
              const std::string& wire) {
  if (opt.corpusDir.empty()) return;
  char name[128];
  std::snprintf(name, sizeof name, "%s/loadgen_%llu_%zu_%zu.bin",
                opt.corpusDir.c_str(),
                static_cast<unsigned long long>(opt.seed), client, index);
  std::ofstream out(name, std::ios::binary | std::ios::trunc);
  out.write(wire.data(), static_cast<std::streamsize>(wire.size()));
}

/// Sends `wire` in small chunks with real sleeps — the slow-writer lane
/// that the daemon's frame-stall watchdog must tolerate (the trickle
/// finishes well inside the stall budget) without holding a solver slot.
bool trickleSend(paws::serve::Client& client, const std::string& wire,
                 SplitMix64& rng) {
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(wire.size() - off, 1 + rng.next() % 24);
    if (!client.rawSend(std::string_view(wire).substr(off, chunk))) {
      return false;
    }
    off += chunk;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void classify(const paws::serve::Response& response, Tally& tally) {
  if (response.cacheHit) ++tally.cached;
  if (response.degraded) ++tally.degraded;
  if (response.outcome == "ok") {
    ++tally.ok;
  } else if (response.outcome == "anytime") {
    ++tally.anytime;
  } else if (response.outcome == "overloaded") {
    ++tally.overloaded;
  } else if (response.outcome == "invalid") {
    ++tally.invalid;
  } else if (response.outcome == "cancelled") {
    ++tally.cancelled;
  } else {
    ++tally.other;  // infeasible / deadline / budget / error
  }
}

void runClient(const Options& opt, std::size_t clientIndex, Tally& tally,
               std::atomic<std::size_t>& gate) {
  if (opt.burst) {
    // Burst barrier: every thread checks in, then all release together.
    gate.fetch_sub(1, std::memory_order_acq_rel);
    while (gate.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }
  for (std::size_t i = 0; i < opt.requests; ++i) {
    SplitMix64 chaos(mixSeed(opt.seed, clientIndex * 100003 + i, kChaosSalt));
    paws::serve::Client client;
    if (!client.connect(opt.address)) {
      ++tally.connectFail;
      continue;
    }
    ++tally.sent;

    if (chaos.chance(opt.malformedPermille)) {
      const std::string blob = makeMalformedBlob(chaos);
      dumpBlob(opt, clientIndex, i, blob);
      (void)client.rawSend(blob);
      // The daemon answers broken framing with one `invalid` response and
      // hangs up. A response is nice but not owed (pure-noise blobs may
      // just stall until the watchdog); don't count absence as a failure.
      paws::serve::Response response;
      if (client.readResponse(response, 500)) classify(response, tally);
      client.close();
      continue;
    }

    paws::serve::Request request;
    request.scheduler = pickScheduler(chaos);
    request.timeoutMs = opt.requestTimeoutMs;
    request.problemText = makeProblemText(
        mixSeed(opt.seed, clientIndex * 100003 + i, kProblemSalt), opt.tasks);
    const std::string wire = paws::serve::encodeFrame(
        paws::serve::FrameType::kRequest,
        paws::serve::formatRequest(request));
    dumpBlob(opt, clientIndex, i, wire);

    bool sentOk = false;
    if (chaos.chance(opt.slowPermille)) {
      sentOk = trickleSend(client, wire, chaos);
    } else {
      sentOk = client.rawSend(wire);
    }
    if (!sentOk) {
      ++tally.noResponse;
      client.close();
      continue;
    }

    if (chaos.chance(opt.disconnectPermille)) {
      // Vanish mid-request: half orderly FIN, half RST. The daemon must
      // cancel the solve and never write to the dead socket.
      if (chaos.chance(500)) {
        client.abortiveClose();
      } else {
        client.close();
      }
      continue;
    }

    paws::serve::Response response;
    if (!client.readResponse(response, opt.readTimeoutMs)) {
      ++tally.noResponse;
      client.close();
      continue;
    }
    classify(response, tally);
    client.close();
  }
}

int usage(const char* msg) {
  std::fprintf(stderr, "pawsd_loadgen: %s\nsee pawsd_loadgen.cpp header\n",
               msg);
  return 1;
}

/// One-shot lane: send one file, print a parseable verdict line. Exit 0
/// only for a successful solve — CI pipes the digest straight into a
/// comparison with `pawsc schedule --digest`.
int runOneShot(const Options& opt) {
  std::ifstream in(opt.problemPath, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pawsd_loadgen: cannot read %s\n",
                 opt.problemPath.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  paws::serve::Request request;
  request.scheduler = opt.scheduler;
  request.timeoutMs = opt.requestTimeoutMs;
  request.problemText = text.str();
  paws::serve::Response response;
  std::string error;
  if (!paws::serve::requestOnce(opt.address, request, response,
                                opt.readTimeoutMs, &error)) {
    std::fprintf(stderr, "pawsd_loadgen: %s\n", error.c_str());
    return 2;
  }
  std::printf("oneshot: outcome=%s cache_hit=%d digest=%s\n",
              response.outcome.c_str(), response.cacheHit ? 1 : 0,
              response.scheduleDigest.c_str());
  return response.succeeded() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto needNum = [&](const char* flag) -> long long {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "pawsd_loadgen: %s needs a value\n", flag);
        std::exit(1);
      }
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "pawsd_loadgen: bad value for %s\n", flag);
        std::exit(1);
      }
      return parsed;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return usage("--connect needs an address");
      opt.address = v;
    } else if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(needNum("--requests"));
    } else if (arg == "--clients") {
      opt.clients = static_cast<std::size_t>(needNum("--clients"));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(needNum("--seed"));
    } else if (arg == "--tasks") {
      opt.tasks = static_cast<std::size_t>(needNum("--tasks"));
    } else if (arg == "--slow-permille") {
      opt.slowPermille = static_cast<std::uint32_t>(needNum(arg.c_str()));
    } else if (arg == "--disconnect-permille") {
      opt.disconnectPermille =
          static_cast<std::uint32_t>(needNum(arg.c_str()));
    } else if (arg == "--malformed-permille") {
      opt.malformedPermille =
          static_cast<std::uint32_t>(needNum(arg.c_str()));
    } else if (arg == "--request-timeout-ms") {
      opt.requestTimeoutMs = needNum(arg.c_str());
    } else if (arg == "--timeout-ms") {
      opt.readTimeoutMs = needNum(arg.c_str());
    } else if (arg == "--burst") {
      opt.burst = true;
    } else if (arg == "--problem") {
      const char* v = next();
      if (v == nullptr) return usage("--problem needs a file");
      opt.problemPath = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (v == nullptr) return usage("--scheduler needs a name");
      opt.scheduler = v;
    } else if (arg == "--dump-corpus") {
      const char* v = next();
      if (v == nullptr) return usage("--dump-corpus needs a directory");
      opt.corpusDir = v;
    } else {
      return usage(("unknown flag: " + arg).c_str());
    }
  }
  if (opt.address.empty()) return usage("--connect is required");
  if (!opt.problemPath.empty()) return runOneShot(opt);
  if (opt.clients == 0 || opt.requests == 0) {
    return usage("--clients and --requests must be >= 1");
  }

  // Without --burst the clients still run concurrently; --burst adds a
  // start barrier so the whole wave hits the intake queue at once.
  std::atomic<std::size_t> gate(opt.clients);
  std::vector<Tally> tallies(opt.clients);
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (std::size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back(
        [&, c] { runClient(opt, c, tallies[c], gate); });
  }
  for (auto& t : threads) t.join();

  Tally total;
  for (const Tally& t : tallies) total += t;

  std::printf(
      "loadgen: sent=%llu ok=%llu anytime=%llu cached=%llu overloaded=%llu "
      "invalid=%llu cancelled=%llu degraded=%llu other=%llu no_response=%llu "
      "connect_fail=%llu\n",
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.anytime),
      static_cast<unsigned long long>(total.cached),
      static_cast<unsigned long long>(total.overloaded),
      static_cast<unsigned long long>(total.invalid),
      static_cast<unsigned long long>(total.cancelled),
      static_cast<unsigned long long>(total.degraded),
      static_cast<unsigned long long>(total.other),
      static_cast<unsigned long long>(total.noResponse),
      static_cast<unsigned long long>(total.connectFail));

  if (total.sent == 0 && total.connectFail > 0) return 2;
  return total.noResponse == 0 ? 0 : 3;
}
