// pawsd — the paws scheduling daemon.
//
//   pawsd --listen tcp:127.0.0.1:0 | unix:/path/sock
//         [--threads N]             solver workers (default 2)
//         [--max-queued N]          intake queue bound (default 16)
//         [--default-timeout-ms N]  per-request budget default (2000)
//         [--drain-budget-ms N]     SIGTERM drain window (2000)
//         [--frame-stall-ms N]      slow-writer watchdog (5000)
//         [--cache-dir DIR]         persist the schedule cache
//         [--cache-capacity N]      cache entries (4096)
//         [--degrade-permille N]    ladder thresholds as queue-depth
//         [--cache-only-permille N] permille of --max-queued
//         [--reject-permille N]
//         [--deescalate-after N]    calm ticks before climbing back up
//
// On startup the resolved address is announced on stdout:
//
//   pawsd: listening on tcp:127.0.0.1:41873
//
// (port 0 binds an ephemeral port — supervisors parse this line). SIGTERM
// and SIGINT begin a graceful drain: stop accepting, answer queued/new
// requests with `overloaded`/`draining`, let in-flight solves finish
// within the drain budget, cancel stragglers (anytime results still go
// out), flush the cache, exit 0. docs/service.md has the protocol.
//
// Exit status: 0 clean drain, 1 usage error, 2 bind/listen failure.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/daemon.hpp"

namespace {

paws::serve::Daemon* g_daemon = nullptr;

void onSignal(int) {
  // Async-signal-safe: one relaxed atomic store.
  if (g_daemon != nullptr) g_daemon->requestStop();
}

int usage(const char* msg) {
  std::fprintf(stderr, "pawsd: %s\nsee pawsd.cpp header or docs/service.md\n",
               msg);
  return 1;
}

bool parseSize(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parseI64(const char* text, std::int64_t& out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  paws::serve::DaemonConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return usage("--listen needs an address");
      config.address = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parseSize(v, config.solverThreads)) {
        return usage("--threads needs a number");
      }
    } else if (arg == "--max-queued") {
      const char* v = next();
      if (v == nullptr || !parseSize(v, config.maxQueued) ||
          config.maxQueued == 0) {
        return usage("--max-queued needs a number >= 1");
      }
    } else if (arg == "--default-timeout-ms") {
      const char* v = next();
      if (v == nullptr || !parseI64(v, config.defaultTimeoutMs) ||
          config.defaultTimeoutMs <= 0) {
        return usage("--default-timeout-ms needs a positive number");
      }
    } else if (arg == "--drain-budget-ms") {
      const char* v = next();
      if (v == nullptr || !parseI64(v, config.drainBudgetMs) ||
          config.drainBudgetMs < 0) {
        return usage("--drain-budget-ms needs a number");
      }
    } else if (arg == "--frame-stall-ms") {
      const char* v = next();
      if (v == nullptr || !parseI64(v, config.frameStallMs) ||
          config.frameStallMs <= 0) {
        return usage("--frame-stall-ms needs a positive number");
      }
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return usage("--cache-dir needs a directory");
      config.cacheDir = v;
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      if (v == nullptr || !parseSize(v, config.cacheCapacity) ||
          config.cacheCapacity == 0) {
        return usage("--cache-capacity needs a number >= 1");
      }
    } else if (arg == "--degrade-permille") {
      std::size_t v = 0;
      const char* t = next();
      if (t == nullptr || !parseSize(t, v)) return usage("bad permille");
      config.ladder.degradePermille = static_cast<std::uint32_t>(v);
    } else if (arg == "--cache-only-permille") {
      std::size_t v = 0;
      const char* t = next();
      if (t == nullptr || !parseSize(t, v)) return usage("bad permille");
      config.ladder.cacheOnlyPermille = static_cast<std::uint32_t>(v);
    } else if (arg == "--reject-permille") {
      std::size_t v = 0;
      const char* t = next();
      if (t == nullptr || !parseSize(t, v)) return usage("bad permille");
      config.ladder.rejectPermille = static_cast<std::uint32_t>(v);
    } else if (arg == "--deescalate-after") {
      std::size_t v = 0;
      const char* t = next();
      if (t == nullptr || !parseSize(t, v)) return usage("bad count");
      config.ladder.deescalateAfterClean = static_cast<std::uint32_t>(v);
    } else {
      return usage(("unknown flag: " + arg).c_str());
    }
  }

  paws::serve::Daemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "pawsd: cannot listen on %s: %s\n",
                 config.address.c_str(), error.c_str());
    return 2;
  }
  g_daemon = &daemon;
  struct sigaction sa {};
  sa.sa_handler = onSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::printf("pawsd: listening on %s\n", daemon.boundAddress().c_str());
  std::fflush(stdout);

  const int rc = daemon.run();
  std::fprintf(stderr, "pawsd: drained, exiting %d\n", rc);
  return rc;
}
