// pawsc — the paws command-line front end.
//
//   pawsc check <file.paws>
//       Parse and structurally validate a problem; print a summary.
//   pawsc schedule <file.paws> [--scheduler pipeline|serial|list|optimal]
//                  [--trials N] [--gantt] [--breakdown] [--svg out.svg]
//                  [--csv out.csv] [--html out.html] [--trace out.json]
//                  [--search-trace out.json] [--search-jsonl out.jsonl]
//                  [--metrics out.csv] [--obs-summary]
//       Schedule and report power properties; optionally render/export
//       (SVG gantt, CSV, HTML report, chrome://tracing JSON). The three
//       observability flags export the *search*: --search-trace renders
//       backtrack/delay/lock/min-power decisions with wall-clock phase
//       spans as chrome://tracing JSON, --metrics dumps the metrics
//       registry as CSV, --obs-summary prints the human-readable table.
//       --cache-dir DIR persists solved schedules (keyed by the problem's
//       canonical form) so repeated invocations serve hits, structurally
//       matching near misses revalidate through repair, and exhaustive
//       runs warm-start from the pipeline heuristic; batch mode shares
//       one cache across its workers even without --cache-dir.
//   pawsc sweep <file.paws> --pmax-from W --pmax-to W [--step W]
//       Re-schedule across a budget range (design-space exploration).
//   pawsc windows <file.paws> [--horizon T]
//       Print each task's feasible [EST, LST] start window.
//   pawsc repair <file.paws> --schedule plan.sched --at T [--pmax W]
//                [--pmin W]
//       Mid-flight repair: freeze tasks started before T, re-plan the rest
//       under the (optionally changed) budget; prints the repaired plan and
//       the validator's verdict on it. --now is accepted as an alias of
//       --at.
//   pawsc simulate [--steps N] [--faults] [--seed S] [--contingency]
//                  [--retry] [--replan] [--shed] [--watchdog PCT]
//                  [--abort-on-brownout] [--trace-events] [--metrics out.csv]
//                  [--mode-policy off|mission] [--battery-model linear|rate]
//                  [--battery-wh N]
//       Replay the rover mission on the runtime executor, optionally under
//       a model-sampled fault plan, with contingency layers armed, under
//       the mission criticality-mode ladder, and/or on the rate-capacity
//       battery model.
//   pawsc campaign [--missions N] [--seed S] [--steps N] [--jobs N]
//                  [--contingency] [--retry] [--replan] [--shed]
//                  [--watchdog PCT] [--abort-on-brownout] [--json out.json]
//                  [--metrics out.csv] [--mode-policy off|mission]
//                  [--battery-model linear|rate] [--battery-wh N]
//       Monte-Carlo mission-survival campaign over the rover mission;
//       byte-identical output for any --jobs value. --json - prints the
//       report to stdout (and suppresses the human summary).
//   pawsc trace summarize <trace.jsonl | report.json> [--top K]
//   pawsc trace diff <a.json> <b.json> [--tolerance PCT]
//   pawsc trace incumbents <report.json> [--csv]
//       Offline analysis of recorded runs: digest a search trace or run
//       report, compare two run reports (non-zero exit on a deterministic
//       mismatch), or print the anytime incumbent curve.
//   pawsc dot <file.paws>
//       Emit the constraint graph in Graphviz syntax.
//
// schedule/simulate/campaign additionally take --report out.json (the full
// structured RunReport: problem hash, options, outcome, metrics snapshot
// and incumbent trajectory; `-` = stdout) and --openmetrics out.txt (the
// metrics registry in Prometheus/OpenMetrics text form; `-` = stdout).
//
// Exit status (one code per error class, stable for scripting):
//   0  success
//   1  usage error (bad flags/arguments)
//   2  input error (parse/lex failure, unreadable file, limit exceeded)
//   3  infeasible (no valid schedule / mission lost / validation failed)
//   4  budget or deadline exhausted (--timeout-ms tripped, node budget,
//      backtrack budget); partial/anytime results may still be printed
//   5  internal error (uncaught exception)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cached_solve.hpp"
#include "exec/jobs.hpp"
#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "guard/budget.hpp"
#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "fault/rng.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"

#include "gantt/ascii_gantt.hpp"
#include "gantt/html_report.hpp"
#include "obs/export.hpp"
#include "obs/incumbents.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "gantt/svg_gantt.hpp"
#include "graph/dot.hpp"
#include "graph/longest_path.hpp"
#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "io/writer.hpp"
#include "sched/repair.hpp"
#include "analysis/analysis.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/resource_usage.hpp"
#include "model/explain.hpp"
#include "sched/windows.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;

namespace {

// Exit codes, one per error class (documented in usage() and the file
// header). Scripts branch on these; keep them stable.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitInput = 2;
constexpr int kExitInfeasible = 3;
constexpr int kExitBudget = 4;
constexpr int kExitInternal = 5;

/// Maps a scheduling failure to its exit class. kOk maps to success, but
/// callers still gate on validation before returning it.
int exitForStatus(SchedStatus status) {
  switch (status) {
    case SchedStatus::kOk:
      return kExitOk;
    case SchedStatus::kBudgetExhausted:
    case SchedStatus::kDeadlineExceeded:
      return kExitBudget;
    case SchedStatus::kInvalidInput:
      return kExitInput;
    case SchedStatus::kTimingInfeasible:
    case SchedStatus::kPowerInfeasible:
      return kExitInfeasible;
  }
  return kExitInternal;
}

int usage() {
  std::fprintf(stderr,
               "usage: pawsc <command> [options]\n"
               "  check    <file.paws>\n"
               "  schedule <file.paws> [more.paws ...] [--scheduler "
               "pipeline|serial|list|optimal] [--trials N]\n"
               "           [--jobs N]  (threads; 0 = PAWS_JOBS or cores; "
               "several files run concurrently)\n"
               "           [--gantt] [--svg out.svg] [--csv out.csv]\n"
               "           [--search-trace out.json] [--search-jsonl "
               "out.jsonl]\n"
               "           [--metrics out.csv] [--obs-summary] [--digest]\n"
               "           [--report out.json|-] [--openmetrics out.txt|-]\n"
               "           [--cache-dir DIR]  (reuse solved schedules "
               "across invocations)\n"
               "  sweep    <file.paws> --pmax-from W --pmax-to W [--step W]\n"
               "  windows  <file.paws> [--horizon T]\n"
               "  repair   <file.paws> --schedule plan.sched --at T "
               "[--pmax W] [--pmin W]\n"
               "  simulate [--steps N] [--faults] [--seed S] "
               "[--contingency|--retry|--replan|--shed|--watchdog PCT]\n"
               "           [--abort-on-brownout] [--trace-events] "
               "[--metrics out.csv]\n"
               "           [--mode-policy off|mission] "
               "[--battery-model linear|rate] [--battery-wh N]\n"
               "  campaign [--missions N] [--seed S] [--steps N] [--jobs N] "
               "[--contingency|...]\n"
               "           [--json out.json|-] [--metrics out.csv]\n"
               "           [--mode-policy off|mission] "
               "[--battery-model linear|rate] [--battery-wh N]\n"
               "  trace    summarize <trace.jsonl|report.json> [--top K]\n"
               "  trace    diff <a.json> <b.json> [--tolerance PCT]\n"
               "  trace    incumbents <report.json> [--csv]\n"
               "  dot      <file.paws>\n"
               "\n"
               "simulate/campaign also take --report/--openmetrics; trace\n"
               "diff exits 3 when deterministic metrics disagree.\n"
               "\n"
               "schedule/simulate/campaign also take --timeout-ms N: a\n"
               "wall-clock deadline for the run. On a trip, `schedule\n"
               "--scheduler optimal` prints the best incumbent found so far\n"
               "(anytime result, not proven optimal) and campaigns report\n"
               "only fully-flown missions.\n"
               "\n"
               "exit codes: 0 success; 1 usage error; 2 input error (parse\n"
               "failure, unreadable file, input limit); 3 infeasible (no\n"
               "valid schedule, mission lost, validation failed); 4 search\n"
               "budget or --timeout-ms deadline exhausted; 5 internal\n"
               "error.\n");
  return kExitUsage;
}

std::optional<Problem> load(const std::string& path) {
  io::ParseResult parsed = io::parseProblemFile(path);
  if (!parsed.ok()) {
    for (const io::ParseError& e : parsed.errors) {
      std::fprintf(stderr, "%s:%s\n", path.c_str(), io::format(e).c_str());
    }
    return std::nullopt;
  }
  return std::move(parsed.problem);
}

int cmdCheck(const std::string& path) {
  const auto problem = load(path);
  if (!problem) return kExitInput;
  std::printf("problem '%s': %zu tasks, %zu resources, %zu constraints\n",
              problem->name().c_str(), problem->numTasks(),
              problem->numResources(), problem->constraints().size());
  std::printf("limits: Pmax ");
  if (problem->maxPower() == Watts::max()) {
    std::printf("unbounded");
  } else {
    std::printf("%.3fW", problem->maxPower().watts());
  }
  std::printf(", Pmin %.3fW, background %.3fW\n",
              problem->minPower().watts(),
              problem->backgroundPower().watts());
  const auto issues = problem->validate();
  for (const std::string& issue : issues) {
    std::printf("issue: %s\n", issue.c_str());
  }
  // Timing feasibility with a user-level explanation of any contradiction.
  const ConstraintGraph g = problem->buildGraph();
  LongestPathEngine engine(g);
  const LongestPathResult& lp = engine.compute(kAnchorTask);
  if (!lp.feasible) {
    std::printf("%s\n", explainCycle(*problem, g, lp).c_str());
  }
  const bool ok = issues.empty() && lp.feasible;
  std::printf("%s\n", ok ? "OK" : "NOT SCHEDULABLE AS WRITTEN");
  return ok ? kExitOk : kExitInfeasible;
}

int cmdWindows(const std::string& path, std::int64_t horizonTicks) {
  const auto problem = load(path);
  if (!problem) return kExitInput;
  const ConstraintGraph g = problem->buildGraph();
  LongestPathEngine engine(g);
  if (!engine.compute(kAnchorTask).feasible) {
    std::fprintf(stderr, "%s\n",
                 explainCycle(*problem, g, engine.result()).c_str());
    return kExitInfeasible;
  }
  Time horizon(horizonTicks);
  if (horizonTicks <= 0) {
    // Default: the fully-serial span (every schedule of interest fits).
    Duration total = Duration::zero();
    for (TaskId v : problem->taskIds()) total += problem->task(v).delay;
    horizon = Time::zero() + total;
  }
  const auto windows = computeStartWindows(*problem, g, horizon);
  std::printf("start windows (horizon %lld):\n",
              static_cast<long long>(horizon.ticks()));
  for (TaskId v : problem->taskIds()) {
    const StartWindow& w = windows[v.index()];
    std::printf("  %-16s [%lld, %lld]%s\n", problem->task(v).name.c_str(),
                static_cast<long long>(w.earliest.ticks()),
                static_cast<long long>(w.latest.ticks()),
                w.feasible() ? "" : "  INFEASIBLE AT THIS HORIZON");
  }
  return 0;
}

/// Everything `pawsc schedule` can render or export.
struct ScheduleExports {
  bool gantt = false;
  bool breakdown = false;
  bool obsSummary = false;
  /// Print the fnv1a64 of the schedule text — the same digest pawsd puts
  /// in its responses, so CI can assert daemon/CLI determinism.
  bool digest = false;
  std::string svgOut, csvOut, htmlOut, traceOut, saveOut;
  std::string searchTraceOut, searchJsonlOut, metricsOut;
  std::string reportOut, openMetricsOut;

  /// Observability hooks are attached only when something consumes them,
  /// keeping the default run on the null-sink fast path.
  [[nodiscard]] bool wantsObs() const {
    return obsSummary || !searchTraceOut.empty() ||
           !searchJsonlOut.empty() || !metricsOut.empty() ||
           !reportOut.empty() || !openMetricsOut.empty();
  }

  /// True when any render/export was requested at all. Batch mode refuses
  /// them: one output file can't serve many inputs.
  [[nodiscard]] bool any() const {
    return gantt || breakdown || digest || wantsObs() || !svgOut.empty() ||
           !csvOut.empty() || !htmlOut.empty() || !traceOut.empty() ||
           !saveOut.empty();
  }
};

/// One solve through the cache resolver (`scheduleCache == nullptr` is the
/// historical always-cold dispatch, bit-for-bit), keeping pawsc's
/// suboptimality warning for budget-tripped exhaustive runs. Entries served
/// from the cache are proven-optimal by construction, so no warning there.
ScheduleResult runScheduler(cache::ScheduleCache* scheduleCache,
                            const Problem& problem,
                            const std::string& scheduler,
                            std::uint32_t trials, std::size_t jobs,
                            const obs::ObsContext& obsCtx,
                            const guard::RunBudget& budget,
                            cache::SolveInfo* infoOut = nullptr) {
  cache::SolveSpec spec;
  spec.scheduler = scheduler;
  spec.trials = trials;
  spec.jobs = jobs;
  spec.obs = obsCtx;
  spec.budget = budget;
  cache::SolveInfo info;
  ScheduleResult r =
      cache::solveThroughCache(scheduleCache, problem, spec, &info);
  if (scheduler == "optimal" && !info.servedFromCache() &&
      !info.provenOptimal) {
    std::fprintf(stderr, "warning: %s; result may be suboptimal\n",
                 info.stopReason == guard::StopReason::kNone
                     ? "node budget hit"
                     : guard::toString(info.stopReason));
  }
  if (infoOut != nullptr) *infoOut = info;
  return r;
}

/// Resolves a --cache-dir into the cache file path, creating the directory
/// if needed. Empty argument (flag not given) resolves to an empty path.
std::string cacheFilePath(const std::string& cacheDir) {
  if (cacheDir.empty()) return {};
  std::error_code ec;
  std::filesystem::create_directories(cacheDir, ec);
  return (std::filesystem::path(cacheDir) /
          cache::ScheduleCache::kFileName())
      .string();
}

void loadCacheFile(cache::ScheduleCache& scheduleCache,
                   const std::string& cachePath) {
  if (cachePath.empty()) return;
  std::string err;
  if (!scheduleCache.load(cachePath, &err) && !err.empty()) {
    std::fprintf(stderr, "warning: %s\n", err.c_str());
  }
}

/// Persists the cache (when --cache-dir was given) and prints the run's
/// cache traffic to stderr, keeping stdout byte-identical between cold and
/// warm passes — scripts diff stdout.
void finishCache(const cache::ScheduleCache& scheduleCache,
                 const std::string& cachePath) {
  const cache::CacheStats s = scheduleCache.stats();
  std::fprintf(stderr,
               "cache: %llu hits, %llu misses, %llu insertions, "
               "%llu revalidations, %llu warm starts\n",
               static_cast<unsigned long long>(s.hits),
               static_cast<unsigned long long>(s.misses),
               static_cast<unsigned long long>(s.insertions),
               static_cast<unsigned long long>(s.revalidations),
               static_cast<unsigned long long>(s.warmStarts));
  if (cachePath.empty()) return;
  std::string err;
  if (!scheduleCache.save(cachePath, &err)) {
    std::fprintf(stderr, "warning: %s\n", err.c_str());
  }
}

void printEffort(std::FILE* f, const SchedulerStats& st) {
  std::fprintf(f,
               "effort    : %llu longest-path runs, %llu backtracks, "
               "%llu delays, %llu locks,\n"
               "            %llu recursions, %llu scans, %llu improvements\n",
               static_cast<unsigned long long>(st.longestPathRuns),
               static_cast<unsigned long long>(st.backtracks),
               static_cast<unsigned long long>(st.delays),
               static_cast<unsigned long long>(st.locks),
               static_cast<unsigned long long>(st.recursions),
               static_cast<unsigned long long>(st.scans),
               static_cast<unsigned long long>(st.improvements));
}

/// The report's stop-reason string: the scheduler's own verdict when it
/// exposes one, else whatever the guard counters recorded, else inferred
/// from the status. Every trip path lands in exactly one of these.
std::string deriveStopReason(guard::StopReason fromScheduler,
                             const obs::MetricsRegistry& registry,
                             SchedStatus status) {
  if (fromScheduler != guard::StopReason::kNone) {
    return guard::toString(fromScheduler);
  }
  if (registry.counter("guard.cancels") > 0) return "cancelled";
  if (registry.counter("guard.deadline_trips") > 0) return "deadline";
  if (status == SchedStatus::kDeadlineExceeded) return "deadline";
  return "none";
}

std::int64_t timeoutMsOf(const guard::RunBudget& budget) {
  return budget.timeout.has_value() ? budget.timeout->count() : -1;
}

/// Stamps and writes a run report; `-` streams to stdout.
void writeReportOut(const std::string& path, obs::RunReport& report) {
  if (path.empty()) return;
  obs::stampVolatile(report);
  if (path == "-") {
    std::fputs(obs::runReportToJson(report).c_str(), stdout);
    return;
  }
  std::ofstream o(path);
  if (o) {
    obs::writeRunReport(o, report);
    std::printf("wrote %s (run report; inspect with pawsc trace)\n",
                path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
}

/// OpenMetrics text exposition of the registry; `-` streams to stdout.
void writeOpenMetricsOut(const std::string& path,
                         const obs::MetricsRegistry& registry) {
  if (path.empty()) return;
  if (path == "-") {
    std::fputs(obs::toOpenMetrics(registry).c_str(), stdout);
    return;
  }
  std::ofstream o(path);
  if (o) {
    obs::writeOpenMetrics(o, registry);
    std::printf("wrote %s (OpenMetrics, %zu metrics)\n", path.c_str(),
                registry.size());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
}

/// Writes the observability exports; valid on success AND failure runs —
/// a failed search is exactly when the effort trace matters most.
void writeObsExports(const ScheduleExports& out, const obs::TraceSink& sink,
                     const obs::MetricsRegistry& registry,
                     const obs::ObsSummaryExtras& extras = {}) {
  if (!out.searchTraceOut.empty()) {
    std::ofstream o(out.searchTraceOut);
    if (o) {
      obs::writeSearchTraceJson(o, sink);
      std::printf("wrote %s (search trace; open in chrome://tracing or "
                  "Perfetto)\n",
                  out.searchTraceOut.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n",
                   out.searchTraceOut.c_str());
    }
  }
  if (!out.searchJsonlOut.empty()) {
    std::ofstream o(out.searchJsonlOut);
    if (o) {
      obs::writeSearchTraceJsonl(o, sink);
      std::printf("wrote %s (search trace, JSONL)\n",
                  out.searchJsonlOut.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n",
                   out.searchJsonlOut.c_str());
    }
  }
  if (!out.metricsOut.empty()) {
    std::ofstream o(out.metricsOut);
    if (o) {
      registry.writeCsv(o);
      std::printf("wrote %s (%zu metrics)\n", out.metricsOut.c_str(),
                  registry.size());
    } else {
      std::fprintf(stderr, "could not write %s\n", out.metricsOut.c_str());
    }
  }
  writeOpenMetricsOut(out.openMetricsOut, registry);
  if (out.obsSummary) {
    std::printf("\n%s",
                obs::renderObsSummary(registry, &sink, extras).c_str());
  }
}

int cmdSchedule(const std::string& path, const std::string& scheduler,
                std::uint32_t trials, std::size_t jobs,
                const ScheduleExports& out,
                const guard::RunBudget& budget,
                const std::string& cacheDir) {
  const auto problem = load(path);
  if (!problem) return kExitInput;

  // Single-file mode engages the cache only when asked: without a
  // --cache-dir there is nothing to reuse across one solve.
  std::optional<cache::ScheduleCache> scheduleCache;
  const std::string cachePath = cacheFilePath(cacheDir);
  if (!cacheDir.empty()) {
    scheduleCache.emplace();
    loadCacheFile(*scheduleCache, cachePath);
  }

  obs::TraceSink sink;
  obs::MetricsRegistry registry;
  obs::IncumbentLog incumbents;
  obs::ObsContext obsCtx;
  if (out.wantsObs()) {
    obsCtx.trace = &sink;
    obsCtx.metrics = &registry;
    obsCtx.incumbents = &incumbents;
  }
  cache::SolveInfo solveInfo;
  const ScheduleResult r = runScheduler(
      scheduleCache.has_value() ? &*scheduleCache : nullptr, *problem,
      scheduler, trials, jobs, obsCtx, budget, &solveInfo);
  const guard::StopReason schedulerStop = solveInfo.stopReason;
  // The pipeline exports its own stats; the baselines know nothing of the
  // registry, so bridge their SchedulerStats view in.
  if (out.wantsObs() && scheduler != "pipeline") {
    exportStats(r.stats, registry);
  }
  if (out.wantsObs() && scheduleCache.has_value()) {
    scheduleCache->exportMetrics(registry);
  }
  const std::string stopReason =
      deriveStopReason(schedulerStop, registry, r.status);
  const obs::ObsSummaryExtras extras{&incumbents, stopReason};

  // One report covers success, anytime and failure runs alike; the
  // schedule digest and validator verdict are filled in below once known.
  obs::RunReport report;
  const bool wantsReport = !out.reportOut.empty();
  if (wantsReport) {
    report.kind = "schedule";
    report.problemName = problem->name();
    report.problemHash = obs::fnv1a64(io::problemToText(*problem));
    report.numTasks = problem->numTasks();
    report.numResources = problem->numResources();
    report.numConstraints = problem->constraints().size();
    report.scheduler = scheduler;
    report.trials = static_cast<std::int64_t>(trials);
    report.jobs = static_cast<std::int64_t>(jobs);
    report.timeoutMs = timeoutMsOf(budget);
    report.status = toString(r.status);
    report.stopReason = stopReason;
    report.message = r.message;
    report.metrics = registry;
    report.incumbents = incumbents.points();
    if (r.schedule.has_value()) {
      const Schedule& s = *r.schedule;
      report.hasSchedule = true;
      report.finishTicks = s.finish().ticks();
      report.energyCostMwt =
          s.energyCost(problem->minPower()).milliwattTicks();
      report.peakPowerMw = ScheduleAnalysis::minimalValidPmax(s).milliwatts();
      std::ostringstream txt;
      io::writeSchedule(txt, s, scheduler);
      report.scheduleBytes = txt.str().size();
    }
  }
  // A deadline trip that still carries a schedule is an anytime result:
  // report it through the normal path (validator, exports and all) but
  // exit with the budget code so scripts can tell.
  const bool anytime =
      r.status == SchedStatus::kDeadlineExceeded && r.schedule.has_value();
  if (!r.ok() && !anytime) {
    std::fprintf(stderr, "scheduling failed (%s): %s\n", toString(r.status),
                 r.message.c_str());
    printEffort(stderr, r.stats);
    writeObsExports(out, sink, registry, extras);
    if (wantsReport) {
      report.exitClass = exitForStatus(r.status);
      writeReportOut(out.reportOut, report);
    }
    if (scheduleCache.has_value()) finishCache(*scheduleCache, cachePath);
    return exitForStatus(r.status);
  }
  if (anytime) {
    std::fprintf(stderr, "warning: %s\n", r.message.c_str());
  }
  const Schedule& s = *r.schedule;
  const bool gantt = out.gantt;
  const bool breakdown = out.breakdown;
  const std::string& svgOut = out.svgOut;
  const std::string& csvOut = out.csvOut;
  const std::string& htmlOut = out.htmlOut;
  const std::string& traceOut = out.traceOut;
  const std::string& saveOut = out.saveOut;
  const ValidationReport validation = ScheduleValidator(*problem).validate(s);
  std::printf("scheduler : %s\n", scheduler.c_str());
  std::printf("finish    : %lld ticks\n",
              static_cast<long long>(s.finish().ticks()));
  std::printf("energy    : %.3fJ cost above Pmin, %.3fJ total\n",
              s.energyCost(problem->minPower()).joules(),
              s.powerProfile().totalEnergy().joules());
  std::printf("rho(Pmin) : %.1f%%\n",
              100.0 * s.utilization(problem->minPower()));
  std::printf("peak      : %.3fW (schedule valid for any Pmax >= this)\n",
              ScheduleAnalysis::minimalValidPmax(s).watts());
  std::printf("valid     : %s\n", validation.valid() ? "yes" : "NO");
  if (out.digest) {
    std::printf("digest    : %016llx\n",
                static_cast<unsigned long long>(
                    obs::fnv1a64(io::scheduleToText(s, scheduler))));
  }
  printEffort(stdout, r.stats);
  for (const Violation& v : validation.violations) {
    std::ostringstream os;
    os << v;
    std::printf("  violation: %s\n", os.str().c_str());
  }
  if (gantt) std::printf("\n%s", renderGantt(s).c_str());
  if (breakdown) {
    std::printf("\n%s", renderBreakdown(computeEnergyBreakdown(s)).c_str());
    const ResourceUsageReport usage = analyzeResourceUsage(s);
    std::printf("resource utilization:\n");
    for (const ResourceUsage& u : usage.usages) {
      std::printf("  %-16s %5.1f%% busy%s\n", u.name.c_str(),
                  100.0 * u.utilization,
                  u.resource == usage.bottleneck ? "   <- bottleneck" : "");
    }
  }
  if (!svgOut.empty()) {
    std::ofstream out(svgOut);
    out << renderSvgGantt(s);
    std::printf("wrote %s\n", svgOut.c_str());
  }
  if (!csvOut.empty()) {
    std::ofstream out(csvOut);
    io::writeScheduleCsv(out, s);
    std::printf("wrote %s\n", csvOut.c_str());
  }
  if (!htmlOut.empty()) {
    std::ofstream out(htmlOut);
    out << renderHtmlReport(s);
    std::printf("wrote %s\n", htmlOut.c_str());
  }
  if (!traceOut.empty()) {
    std::ofstream out(traceOut);
    io::writeChromeTrace(out, s);
    std::printf("wrote %s (open in chrome://tracing or Perfetto)\n",
                traceOut.c_str());
  }
  if (!saveOut.empty()) {
    std::ofstream out(saveOut);
    io::writeSchedule(out, s, scheduler);
    std::printf("wrote %s (re-load with pawsc repair --schedule)\n",
                saveOut.c_str());
  }
  writeObsExports(out, sink, registry, extras);
  const int exitCode =
      anytime ? kExitBudget : (validation.valid() ? kExitOk : kExitInfeasible);
  if (wantsReport) {
    report.valid = validation.valid();
    report.exitClass = exitCode;
    writeReportOut(out.reportOut, report);
  }
  if (scheduleCache.has_value()) finishCache(*scheduleCache, cachePath);
  return exitCode;
}

/// `pawsc schedule a.paws b.paws ...` — schedule every file concurrently on
/// the paws::exec pool and print one summary row per input, in input order.
/// Workers return plain numbers only: a Schedule points into its
/// (worker-local) Problem, and printing from workers would interleave.
int cmdScheduleBatch(const std::vector<std::string>& paths,
                     const std::string& scheduler, std::uint32_t trials,
                     std::size_t jobs, const guard::RunBudget& budget,
                     const std::string& cacheDir) {
  struct Row {
    bool loaded = false;
    bool ok = false;
    int exit = kExitOk;  // this file's exit class; worst row wins
    std::string status;
    std::string message;  // parse/scheduling errors, reported by the printer
    long long finish = 0;
    double ecJ = 0;
    double rho = 0;
    std::uint64_t lpRuns = 0;
  };
  // One cache shared by every worker: duplicate (or near-duplicate) files
  // in the batch pay for one solve. --cache-dir additionally carries the
  // entries across invocations.
  cache::ScheduleCache scheduleCache;
  const std::string cachePath = cacheFilePath(cacheDir);
  loadCacheFile(scheduleCache, cachePath);
  exec::Pool pool(exec::resolveJobs(jobs));
  const std::vector<Row> rows = exec::parallelMap(
      pool, paths.size(), [&](std::size_t i) -> Row {
        Row row;
        io::ParseResult parsed = io::parseProblemFile(paths[i]);
        if (!parsed.ok()) {
          row.exit = kExitInput;
          for (const io::ParseError& e : parsed.errors) {
            if (!row.message.empty()) row.message += "; ";
            row.message += io::format(e);
          }
          return row;
        }
        row.loaded = true;
        const Problem& problem = *parsed.problem;
        // Files already run in parallel; keep each solve single-threaded.
        // Each file gets its own --timeout-ms allowance (the relative
        // timeout resolves per solve, not once for the whole batch).
        const ScheduleResult r =
            runScheduler(&scheduleCache, problem, scheduler, trials, 1,
                         obs::ObsContext{}, budget);
        row.status = toString(r.status);
        row.lpRuns = r.stats.longestPathRuns;
        if (!r.ok()) {
          row.exit = exitForStatus(r.status);
          row.message = r.message;
          return row;
        }
        row.ok = true;
        row.finish = static_cast<long long>(r.schedule->finish().ticks());
        row.ecJ = r.schedule->energyCost(problem.minPower()).joules();
        row.rho = 100.0 * r.schedule->utilization(problem.minPower());
        return row;
      });

  std::printf("%-32s %10s %12s %9s %10s\n", "file", "tau", "Ec(J)", "rho",
              "lp-runs");
  int failures = 0;
  int worst = kExitOk;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Row& row = rows[i];
    worst = std::max(worst, row.exit);
    if (!row.ok) {
      ++failures;
      std::printf("%-32s %10s %12s %9s %10s  %s\n", paths[i].c_str(), "-",
                  "-", "-", "-",
                  row.loaded ? row.status.c_str() : "PARSE ERROR");
      if (!row.message.empty()) {
        std::fprintf(stderr, "%s: %s\n", paths[i].c_str(),
                     row.message.c_str());
      }
      continue;
    }
    std::printf("%-32s %10lld %12.3f %8.1f%% %10llu\n", paths[i].c_str(),
                row.finish, row.ecJ, row.rho,
                static_cast<unsigned long long>(row.lpRuns));
  }
  std::printf("scheduled %zu/%zu files (%s, %zu worker threads)\n",
              paths.size() - static_cast<std::size_t>(failures),
              paths.size(), scheduler.c_str(), pool.numThreads());
  finishCache(scheduleCache, cachePath);
  return worst;
}

int cmdSweep(const std::string& path, double from, double to, double step) {
  auto problem = load(path);
  if (!problem) return kExitInput;
  if (!(from > 0) || to < from || !(step > 0)) {
    std::fprintf(stderr, "bad sweep range\n");
    return kExitUsage;
  }
  std::printf("%10s %10s %12s %10s\n", "Pmax(W)", "tau", "Ec(J)", "rho");
  for (double w = from; w <= to + 1e-9; w += step) {
    problem->setMaxPower(Watts::fromWatts(w));
    PowerAwareScheduler scheduler(*problem);
    const ScheduleResult r = scheduler.schedule();
    if (!r.ok()) {
      std::printf("%10.2f %10s %12s %10s\n", w, "-", "-", toString(r.status));
      continue;
    }
    std::printf("%10.2f %10lld %12.3f %9.1f%%\n", w,
                static_cast<long long>(r.schedule->finish().ticks()),
                r.schedule->energyCost(problem->minPower()).joules(),
                100.0 * r.schedule->utilization(problem->minPower()));
  }
  return 0;
}

int cmdRepair(const std::string& path, const std::string& schedulePath,
              std::int64_t nowTicks, double newPmax, double newPmin) {
  const auto problem = load(path);
  if (!problem) return kExitInput;
  std::ifstream in(schedulePath);
  if (!in) {
    std::fprintf(stderr, "cannot open schedule file %s\n",
                 schedulePath.c_str());
    return kExitInput;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const io::ScheduleParseResult parsed =
      io::parseSchedule(buffer.str(), *problem);
  if (!parsed.ok()) {
    for (const io::ParseError& e : parsed.errors) {
      std::fprintf(stderr, "%s\n", io::format(e).c_str());
    }
    return kExitInput;
  }

  Problem updated(*problem);
  if (newPmax > 0) updated.setMaxPower(Watts::fromWatts(newPmax));
  if (newPmin > 0) updated.setMinPower(Watts::fromWatts(newPmin));
  const RepairInput input{&updated, &*parsed.schedule, Time(nowTicks)};
  const ScheduleResult repaired = repairSchedule(input);
  if (!repaired.ok()) {
    std::fprintf(stderr, "repair failed (%s): %s\n",
                 toString(repaired.status), repaired.message.c_str());
    return exitForStatus(repaired.status);
  }
  const Schedule& s = *repaired.schedule;
  std::printf("# repaired at t=%lld%s\n",
              static_cast<long long>(nowTicks),
              newPmax > 0 || newPmin > 0 ? " under a new budget" : "");
  io::writeSchedule(std::cout, s, parsed.label + "-repaired");
  std::printf("# finish %lld, Ec %.3fJ\n",
              static_cast<long long>(s.finish().ticks()),
              s.energyCost(updated.minPower()).joules());
  // Validator verdict on the repaired plan. Spikes strictly before the
  // repair instant are frozen history and cannot be fixed; report them but
  // judge only the re-planned future.
  const ValidationReport report = ScheduleValidator(updated).validate(s);
  const bool spikeInFuture =
      s.powerProfile().firstSpike(updated.maxPower(), Time(nowTicks))
          .has_value();
  bool futureViolation = false;
  for (const Violation& v : report.violations) {
    std::ostringstream os;
    os << v;
    const bool historical =
        v.kind == Violation::Kind::kPowerSpike && !spikeInFuture;
    if (!historical) futureViolation = true;
    std::printf("# violation%s: %s\n",
                historical ? " (frozen history, tolerated)" : "",
                os.str().c_str());
  }
  std::printf("# valid: %s\n", futureViolation ? "NO" : "yes");
  return futureViolation ? kExitInfeasible : kExitOk;
}

/// Flags shared by `simulate` and `campaign`: they describe one degraded
/// mission (or the template every campaign mission is sampled from).
struct MissionFlags {
  int steps = 48;
  std::uint64_t seed = 1;
  bool faults = false;
  fault::ContingencyOptions contingency;
  bool abortOnBrownout = false;
  /// --mode-policy mission: arm the criticality-mode ladder (and install
  /// the mission criticality ranks on the rover problems).
  bool missionModes = false;
  /// --battery-model rate: fly on the rate-capacity battery model.
  bool rateBattery = false;
  /// --battery-wh N: battery capacity in watt-hours (Pathfinder's ~40).
  double batteryWh = 40.0;
};

/// The mission battery as the flags describe it. The defaults reproduce
/// rover::missionBattery() exactly, keeping unflagged runs byte-identical.
Battery missionBatteryFor(const MissionFlags& f) {
  const Energy cap = Energy::fromMilliwattTicks(
      static_cast<std::int64_t>(f.batteryWh * 3600.0 * 1000.0));
  return f.rateBattery
             ? rover::missionBattery(cap, rover::missionBatteryTraits())
             : rover::missionBattery(cap);
}

void writeMetricsCsv(const std::string& metricsOut,
                     const obs::MetricsRegistry& registry) {
  if (metricsOut.empty()) return;
  std::ofstream o(metricsOut);
  if (o) {
    registry.writeCsv(o);
    std::printf("wrote %s (%zu metrics)\n", metricsOut.c_str(),
                registry.size());
  } else {
    std::fprintf(stderr, "could not write %s\n", metricsOut.c_str());
  }
}

/// Shared report skeleton for the rover-mission commands: the mission
/// problem (worst-case binding 0 is the canonical identity) plus options.
obs::RunReport missionReport(const char* kind, const Problem& missionProblem,
                             const MissionFlags& f,
                             const guard::RunBudget& budget) {
  obs::RunReport report;
  report.kind = kind;
  report.problemName = missionProblem.name();
  report.problemHash = obs::fnv1a64(io::problemToText(missionProblem));
  report.numTasks = missionProblem.numTasks();
  report.numResources = missionProblem.numResources();
  report.numConstraints = missionProblem.constraints().size();
  report.scheduler = "runtime";
  report.trials = 1;
  report.timeoutMs = timeoutMsOf(budget);
  (void)f;
  return report;
}

int cmdSimulate(const MissionFlags& f, bool traceEvents,
                const ScheduleExports& out, const guard::RunBudget& budget) {
  const std::string& metricsOut = out.metricsOut;
  rover::CaseSchedules cases = rover::buildCaseSchedules();
  if (!cases.ok) {
    std::fprintf(stderr, "could not build case schedules: %s\n",
                 cases.message.c_str());
    return kExitInternal;
  }
  if (f.missionModes) {
    for (auto& p : cases.problems) rover::applyMissionCriticality(*p);
  }
  const std::vector<runtime::CaseBinding> bindings =
      fault::roverCaseBindings(cases);
  const runtime::RuntimeExecutor executor(rover::missionSolarProfile(),
                                          missionBatteryFor(f), bindings);

  runtime::ExecutorConfig ec;
  ec.targetSteps = f.steps;
  ec.abortOnBrownout = f.abortOnBrownout;
  ec.contingency = f.contingency;
  if (f.missionModes) ec.modes = ModePolicy::missionDefault();
  ec.budget = budget;
  obs::MetricsRegistry registry;
  const bool wantsRegistry = !metricsOut.empty() || !out.reportOut.empty() ||
                             !out.openMetricsOut.empty();
  if (wantsRegistry) ec.obs.metrics = &registry;

  // With --faults the mission flies under the plan campaign seed `seed`
  // would give its mission 0 — `pawsc simulate --faults --seed S` replays
  // exactly the first row of `pawsc campaign --seed S`.
  fault::FaultPlan plan;
  if (f.faults) {
    std::vector<std::string> names;
    for (TaskId v : bindings[0].problem->taskIds()) {
      names.push_back(bindings[0].problem->task(v).name);
    }
    const fault::FaultModel model(fault::FaultModelConfig{},
                                  std::move(names));
    plan = model.instantiate(fault::mixSeed(f.seed, 0, 0));
    ec.faults = &plan;
  }

  const runtime::ExecutionResult r = executor.run(ec);
  const bool interrupted = r.stopReason != guard::StopReason::kNone;
  std::printf("steps     : %d/%d%s\n", r.steps, f.steps,
              r.complete    ? ""
              : interrupted ? "  (RUN INTERRUPTED)"
                            : "  (MISSION LOST)");
  if (interrupted) {
    std::printf("stopped   : %s at an iteration boundary\n",
                guard::toString(r.stopReason));
  }
  std::printf("finished  : t=%lld\n",
              static_cast<long long>(r.finishedAt.ticks()));
  if (r.depletedAt.has_value()) {
    std::printf("battery   : %.3fJ drawn, DEPLETED at t=%lld\n",
                r.batteryDrawn.joules(),
                static_cast<long long>(r.depletedAt->ticks()));
  } else {
    std::printf("battery   : %.3fJ drawn%s\n", r.batteryDrawn.joules(),
                r.batteryDepleted ? ", DEPLETED" : "");
  }
  if (f.missionModes) {
    std::printf("modes     : final %d, %d escalations, %d de-escalations, "
                "%d mode-shed%s\n",
                r.finalMode, r.modeEscalations, r.modeDeescalations,
                r.modeShedTasks,
                r.modeInfeasible ? " (repair infeasible)" : "");
  }
  std::printf("faults    : %d injected (%zu scripted), %d brownouts\n",
              r.faultsInjected, plan.faults.size(), r.brownouts);
  std::printf("responses : %d retries, %d replans (%d failed), %d shed, "
              "%d deadline misses\n",
              r.retries, r.replans, r.replanFailures, r.shedTasks,
              r.deadlineMisses);
  if (r.unrecoverable) std::printf("fatal     : critical task unrecoverable\n");
  if (r.stalled) std::printf("fatal     : zero-progress iteration (stall)\n");
  if (traceEvents) {
    std::printf("events    :\n");
    for (const runtime::Event& e : r.trace) {
      std::printf("  t=%-8lld %-18s %s\n",
                  static_cast<long long>(e.at.ticks()),
                  runtime::toString(e.kind), e.detail.c_str());
    }
  }
  writeMetricsCsv(metricsOut, registry);
  writeOpenMetricsOut(out.openMetricsOut, registry);
  const int exitCode = interrupted ? kExitBudget
                       : r.complete ? kExitOk
                                    : kExitInfeasible;
  if (!out.reportOut.empty()) {
    obs::RunReport report =
        missionReport("simulate", *bindings[0].problem, f, budget);
    report.status = r.complete      ? "complete"
                    : interrupted   ? "interrupted"
                                    : "mission-lost";
    report.stopReason = guard::toString(r.stopReason);
    report.exitClass = exitCode;
    report.valid = r.complete;
    report.metrics = registry;
    writeReportOut(out.reportOut, report);
  }
  return exitCode;
}

int cmdCampaign(const MissionFlags& f, int missions, std::size_t jobs,
                const std::string& jsonOut, const ScheduleExports& out,
                const guard::RunBudget& budget) {
  const std::string& metricsOut = out.metricsOut;
  if (missions <= 0) {
    std::fprintf(stderr, "--missions must be positive\n");
    return kExitUsage;
  }
  rover::CaseSchedules cases = rover::buildCaseSchedules();
  if (!cases.ok) {
    std::fprintf(stderr, "could not build case schedules: %s\n",
                 cases.message.c_str());
    return kExitInternal;
  }
  if (f.missionModes) {
    for (auto& p : cases.problems) rover::applyMissionCriticality(*p);
  }
  const std::vector<runtime::CaseBinding> bindings =
      fault::roverCaseBindings(cases);
  const Problem& missionProblem = *bindings.front().problem;
  const fault::FaultCampaign campaign(rover::missionSolarProfile(),
                                      missionBatteryFor(f), bindings);
  fault::CampaignConfig cc;
  cc.missions = missions;
  cc.seed = f.seed;
  cc.targetSteps = f.steps;
  cc.abortOnBrownout = f.abortOnBrownout;
  cc.contingency = f.contingency;
  if (f.missionModes) cc.modePolicy = ModePolicy::missionDefault();
  cc.batteryModel = f.rateBattery ? "rate" : "linear";
  cc.jobs = jobs;  // 0 = exec::defaultJobs(); never affects the results
  cc.budget = budget;
  obs::MetricsRegistry registry;
  const bool wantsRegistry = !metricsOut.empty() || !out.reportOut.empty() ||
                             !out.openMetricsOut.empty();
  if (wantsRegistry) cc.obs.metrics = &registry;

  const fault::CampaignResult result = campaign.run(cc);
  const bool interrupted = result.stopReason != guard::StopReason::kNone;
  const std::string json = fault::toJson(cc, result);
  if (jsonOut == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::printf("campaign  : %d missions, seed %llu, %d steps each\n",
                result.missions,
                static_cast<unsigned long long>(cc.seed), cc.targetSteps);
    if (interrupted) {
      std::printf("truncated : %s after %d of %d missions\n",
                  guard::toString(result.stopReason), result.missions,
                  missions);
    }
    std::printf("survival  : %d/%d missions (%lld permille)\n",
                result.survived, result.missions,
                static_cast<long long>(result.survivalPermille()));
    std::printf("faults    : %lld injected, %lld brownouts, %lld "
                "depletions\n",
                static_cast<long long>(result.faultsInjected),
                static_cast<long long>(result.brownouts),
                static_cast<long long>(result.depletions));
    std::printf("responses : %lld retries, %lld replans (%lld failed), "
                "%lld shed, %lld deadline misses\n",
                static_cast<long long>(result.retries),
                static_cast<long long>(result.replans),
                static_cast<long long>(result.replanFailures),
                static_cast<long long>(result.shedTasks),
                static_cast<long long>(result.deadlineMisses));
    std::printf("lost      : %lld unrecoverable, %lld stalled\n",
                static_cast<long long>(result.unrecoverable),
                static_cast<long long>(result.stalled));
    if (cc.modePolicy.enabled()) {
      std::printf("modes     : %lld escalations, %lld de-escalations, "
                  "%lld mode-shed, %lld repair-infeasible\n",
                  static_cast<long long>(result.modeEscalations),
                  static_cast<long long>(result.modeDeescalations),
                  static_cast<long long>(result.modeShedTasks),
                  static_cast<long long>(result.modeInfeasible));
    }
    if (!jsonOut.empty()) {
      std::ofstream o(jsonOut);
      if (o) {
        o << json;
        std::printf("wrote %s\n", jsonOut.c_str());
      } else {
        std::fprintf(stderr, "could not write %s\n", jsonOut.c_str());
        return kExitInput;
      }
    }
  }
  writeMetricsCsv(metricsOut, registry);
  writeOpenMetricsOut(out.openMetricsOut, registry);
  const int exitCode = interrupted ? kExitBudget : kExitOk;
  if (!out.reportOut.empty()) {
    obs::RunReport report = missionReport("campaign", missionProblem, f, budget);
    report.jobs = static_cast<std::int64_t>(jobs);
    report.status = interrupted ? "interrupted" : "complete";
    report.stopReason = guard::toString(result.stopReason);
    report.exitClass = exitCode;
    report.valid = !interrupted;
    report.metrics = registry;
    writeReportOut(out.reportOut, report);
  }
  return exitCode;
}

std::optional<std::string> readTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// `pawsc trace <summarize|diff|incumbents>` — offline analysis of run
/// reports and JSONL search traces. Parses its own flags: the main loop's
/// flags (--csv takes a value there) do not apply to recorded artifacts.
int cmdTrace(int argc, char** argv) {
  const auto traceUsage = [] {
    std::fprintf(stderr,
                 "usage: pawsc trace summarize <trace.jsonl|report.json> "
                 "[--top K]\n"
                 "       pawsc trace diff <a.json> <b.json> "
                 "[--tolerance PCT]\n"
                 "       pawsc trace incumbents <report.json> [--csv]\n");
    return kExitUsage;
  };
  if (argc < 3) return traceUsage();
  const std::string sub = argv[2];
  std::vector<std::string> files;
  std::size_t topK = 5;
  double tolerancePct = 10.0;
  bool csv = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!arg.empty() && arg[0] != '-') {
      files.push_back(arg);
    } else if (arg == "--top") {
      topK = static_cast<std::size_t>(std::atoll(value("--top")));
    } else if (arg == "--tolerance") {
      tolerancePct = std::atof(value("--tolerance"));
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return traceUsage();
    }
  }

  if (sub == "summarize") {
    if (files.size() != 1) return traceUsage();
    const auto text = readTextFile(files[0]);
    if (!text) return kExitInput;
    obs::TraceSummaryOptions options;
    options.topK = topK;
    const obs::TraceSummary summary = obs::summarizeTraceText(*text, options);
    if (!summary.ok) {
      std::fprintf(stderr, "%s: %s\n", files[0].c_str(),
                   summary.error.c_str());
      return kExitInput;
    }
    std::fputs(summary.text.c_str(), stdout);
    return kExitOk;
  }
  if (sub == "diff") {
    if (files.size() != 2) return traceUsage();
    obs::ReportParseResult a = obs::loadRunReport(files[0]);
    obs::ReportParseResult b = obs::loadRunReport(files[1]);
    if (!a.ok || !b.ok) {
      if (!a.ok) {
        std::fprintf(stderr, "%s: %s\n", files[0].c_str(), a.error.c_str());
      }
      if (!b.ok) {
        std::fprintf(stderr, "%s: %s\n", files[1].c_str(), b.error.c_str());
      }
      return kExitInput;
    }
    obs::ReportDiffOptions options;
    options.relTolerance = tolerancePct / 100.0;
    const obs::ReportDiff diff =
        obs::diffReports(a.report, b.report, options);
    std::fputs(obs::renderReportDiff(diff, files[0], files[1]).c_str(),
               stdout);
    // A deterministic mismatch means the two runs disagree on something
    // that must be byte-equal for a fixed problem — the regression class
    // scripts gate on. Noise over tolerance is reported but not fatal.
    return diff.deterministicOk() ? kExitOk : kExitInfeasible;
  }
  if (sub == "incumbents") {
    if (files.size() != 1) return traceUsage();
    obs::ReportParseResult parsed = obs::loadRunReport(files[0]);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s: %s\n", files[0].c_str(),
                   parsed.error.c_str());
      return kExitInput;
    }
    std::fputs(obs::renderIncumbents(parsed.report, csv).c_str(), stdout);
    return kExitOk;
  }
  return traceUsage();
}

int cmdDot(const std::string& path) {
  const auto problem = load(path);
  if (!problem) return kExitInput;
  DotOptions opt;
  opt.vertexLabels.resize(problem->numVertices());
  for (TaskId v : problem->taskIds()) {
    opt.vertexLabels[v.index()] = problem->task(v).name;
  }
  std::cout << toDot(problem->buildGraph(), opt);
  return 0;
}

int runCli(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // trace reads recorded artifacts, not .paws files, and its --csv flag is
  // a boolean where the main loop's takes a value: it parses its own args.
  if (command == "trace") return cmdTrace(argc, argv);
  // simulate/campaign replay the built-in rover mission: no input file.
  const bool takesFile = command != "simulate" && command != "campaign";
  if (takesFile && argc < 3) return usage();
  const std::string path = takesFile ? argv[2] : "";
  // `schedule` accepts several input files (batch mode); the extra
  // positional arguments land here.
  std::vector<std::string> paths;
  if (takesFile) paths.push_back(path);

  std::string scheduler = "pipeline";
  std::uint32_t trials = 4;
  std::size_t jobs = 0;  // 0 = PAWS_JOBS env or hardware_concurrency
  ScheduleExports exports;
  double pmaxFrom = 0, pmaxTo = 0, pmaxStep = 1;
  std::int64_t horizon = 0;
  std::string schedulePath;
  std::int64_t now = 0;
  double newPmax = 0, newPmin = 0;
  MissionFlags mission;
  int missions = 32;
  bool traceEvents = false;
  std::string jsonOut;
  std::string cacheDir;  // empty = no persistent schedule cache
  std::int64_t timeoutMs = 0;  // 0 = no wall-clock deadline

  for (int i = takesFile ? 3 : 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);  // extra input file (batch schedule)
    } else if (arg == "--scheduler") {
      scheduler = value("--scheduler");
    } else if (arg == "--trials") {
      trials = static_cast<std::uint32_t>(std::atoi(value("--trials")));
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::atoll(value("--jobs")));
    } else if (arg == "--gantt") {
      exports.gantt = true;
    } else if (arg == "--breakdown") {
      exports.breakdown = true;
    } else if (arg == "--trace") {
      exports.traceOut = value("--trace");
    } else if (arg == "--save") {
      exports.saveOut = value("--save");
    } else if (arg == "--svg") {
      exports.svgOut = value("--svg");
    } else if (arg == "--csv") {
      exports.csvOut = value("--csv");
    } else if (arg == "--html") {
      exports.htmlOut = value("--html");
    } else if (arg == "--search-trace") {
      exports.searchTraceOut = value("--search-trace");
    } else if (arg == "--search-jsonl") {
      exports.searchJsonlOut = value("--search-jsonl");
    } else if (arg == "--metrics") {
      exports.metricsOut = value("--metrics");
    } else if (arg == "--report") {
      exports.reportOut = value("--report");
    } else if (arg == "--openmetrics") {
      exports.openMetricsOut = value("--openmetrics");
    } else if (arg == "--obs-summary") {
      exports.obsSummary = true;
    } else if (arg == "--digest") {
      exports.digest = true;
    } else if (arg == "--pmax-from") {
      pmaxFrom = std::atof(value("--pmax-from"));
    } else if (arg == "--pmax-to") {
      pmaxTo = std::atof(value("--pmax-to"));
    } else if (arg == "--step") {
      pmaxStep = std::atof(value("--step"));
    } else if (arg == "--horizon") {
      horizon = std::atoll(value("--horizon"));
    } else if (arg == "--schedule") {
      schedulePath = value("--schedule");
    } else if (arg == "--now" || arg == "--at") {
      now = std::atoll(value(arg.c_str()));
    } else if (arg == "--pmax") {
      newPmax = std::atof(value("--pmax"));
    } else if (arg == "--pmin") {
      newPmin = std::atof(value("--pmin"));
    } else if (arg == "--steps") {
      mission.steps = std::atoi(value("--steps"));
    } else if (arg == "--seed") {
      mission.seed =
          static_cast<std::uint64_t>(std::atoll(value("--seed")));
    } else if (arg == "--missions") {
      missions = std::atoi(value("--missions"));
    } else if (arg == "--faults") {
      mission.faults = true;
    } else if (arg == "--contingency") {
      mission.contingency = fault::ContingencyOptions::all();
    } else if (arg == "--retry") {
      mission.contingency.retry = true;
    } else if (arg == "--replan") {
      mission.contingency.replan = true;
    } else if (arg == "--shed") {
      mission.contingency.shed = true;
    } else if (arg == "--watchdog") {
      mission.contingency.watchdogSlackPct =
          static_cast<std::uint32_t>(std::atoi(value("--watchdog")));
    } else if (arg == "--mode-policy") {
      const std::string v = value("--mode-policy");
      if (v == "mission") {
        mission.missionModes = true;
      } else if (v == "off") {
        mission.missionModes = false;
      } else {
        std::fprintf(stderr, "--mode-policy takes off|mission\n");
        return kExitUsage;
      }
    } else if (arg == "--battery-model") {
      const std::string v = value("--battery-model");
      if (v == "rate") {
        mission.rateBattery = true;
      } else if (v == "linear") {
        mission.rateBattery = false;
      } else {
        std::fprintf(stderr, "--battery-model takes linear|rate\n");
        return kExitUsage;
      }
    } else if (arg == "--battery-wh") {
      mission.batteryWh = std::atof(value("--battery-wh"));
      if (mission.batteryWh <= 0) {
        std::fprintf(stderr, "--battery-wh needs a positive value\n");
        return kExitUsage;
      }
    } else if (arg == "--abort-on-brownout") {
      mission.abortOnBrownout = true;
    } else if (arg == "--trace-events") {
      traceEvents = true;
    } else if (arg == "--json") {
      jsonOut = value("--json");
    } else if (arg == "--cache-dir") {
      cacheDir = value("--cache-dir");
    } else if (arg == "--timeout-ms") {
      timeoutMs = std::atoll(value("--timeout-ms"));
      if (timeoutMs <= 0) {
        std::fprintf(stderr, "--timeout-ms needs a positive value\n");
        return kExitUsage;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  guard::RunBudget budget;
  if (timeoutMs > 0) {
    budget.timeout = std::chrono::milliseconds(timeoutMs);
  }

  if (!takesFile && !paths.empty()) {
    std::fprintf(stderr, "%s takes no input file\n", command.c_str());
    return kExitUsage;
  }
  if (takesFile && command != "schedule" && paths.size() > 1) {
    std::fprintf(stderr, "%s takes exactly one input file\n",
                 command.c_str());
    return kExitUsage;
  }
  if (command == "check") return cmdCheck(path);
  if (command == "schedule") {
    if (paths.size() > 1) {
      if (exports.any()) {
        std::fprintf(stderr,
                     "render/export flags need a single input file\n");
        return kExitUsage;
      }
      return cmdScheduleBatch(paths, scheduler, trials, jobs, budget,
                              cacheDir);
    }
    return cmdSchedule(path, scheduler, trials, jobs, exports, budget,
                       cacheDir);
  }
  if (command == "sweep") return cmdSweep(path, pmaxFrom, pmaxTo, pmaxStep);
  if (command == "windows") return cmdWindows(path, horizon);
  if (command == "repair") {
    if (schedulePath.empty()) {
      std::fprintf(stderr, "repair needs --schedule <file>\n");
      return kExitUsage;
    }
    return cmdRepair(path, schedulePath, now, newPmax, newPmin);
  }
  if (command == "simulate") {
    return cmdSimulate(mission, traceEvents, exports, budget);
  }
  if (command == "campaign") {
    return cmdCampaign(mission, missions, jobs, jsonOut, exports, budget);
  }
  if (command == "dot") return cmdDot(path);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Anything that escapes as an exception is by definition not one of the
  // structured failure classes: report it as internal, never as a crash.
  try {
    return runCli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  } catch (...) {
    std::fprintf(stderr, "internal error: unknown exception\n");
    return kExitInternal;
  }
}
