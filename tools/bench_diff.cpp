// bench_diff — the bench regression gate (src/obs/bench_compare.hpp as a
// CLI). Compares two BENCH_results.json files and exits non-zero on a hard
// regression, so CI can run it against the committed bench/baseline.json:
//
//   bench_diff baseline.json current.json [--wall-tolerance PCT]
//              [--fail-on-wall] [--exact COUNTER]...
//
// Hard (always fatal): a suite/benchmark present in the baseline but
// missing from the current run, or any mismatch on an exact counter
// (default: schedule_bytes, lp_runs, nodes_explored and the pruned_*
// search counters — determinism witnesses). Soft
// (warn-only unless --fail-on-wall): per-iteration wall_ns slowdowns
// beyond the tolerance (default 50%), since wall time is machine-bound.
//
// Exit codes: 0 no hard regression; 1 usage; 2 unreadable/unparseable
// input; 3 hard regression found.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/bench_compare.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <current.json>\n"
               "       [--wall-tolerance PCT]  slowdown warning threshold "
               "(default 50)\n"
               "       [--fail-on-wall]        wall-time findings become "
               "fatal\n"
               "       [--exact COUNTER]       replace the exact-counter "
               "set\n"
               "                               (repeatable; default "
               "schedule_bytes, lp_runs,\n"
               "                                nodes_explored, pruned_*)\n"
               "exit: 0 ok; 1 usage; 2 bad input; 3 regression\n");
  return 1;
}

std::optional<std::string> readFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* baselinePath = argv[1];
  const char* currentPath = argv[2];
  paws::obs::BenchCompareOptions options;
  bool exactReplaced = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--wall-tolerance") {
      options.wallTolerance = std::atof(value("--wall-tolerance")) / 100.0;
    } else if (arg == "--fail-on-wall") {
      options.failOnWall = true;
    } else if (arg == "--exact") {
      if (!exactReplaced) {
        options.exactCounters.clear();
        exactReplaced = true;
      }
      options.exactCounters.emplace_back(value("--exact"));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  const auto baseline = readFile(baselinePath);
  const auto current = readFile(currentPath);
  if (!baseline || !current) return 2;

  const paws::obs::BenchComparison comparison =
      paws::obs::compareBenchResults(*baseline, *current, options);
  std::fputs(paws::obs::renderBenchComparison(comparison, baselinePath,
                                              currentPath)
                 .c_str(),
             stdout);
  if (!comparison.error.empty()) return 2;
  return comparison.ok() ? 0 : 3;
}
