// The Table 4 mission scenario: travel 48 steps while solar power decays
// 14.9 W -> 12 W -> 9 W. Compares the fixed JPL serial schedule against
// power-aware schedules selected at run time by solar level, including
// battery accounting.
#include <iomanip>
#include <iostream>

#include "rover/mission.hpp"
#include "rover/plans.hpp"

using namespace paws;
using namespace paws::rover;

namespace {

void printPolicy(const char* name, const PolicyBuild& build) {
  std::cout << name << " per-iteration plans (2 steps each):\n";
  for (const PlanDerivation& d : build.derivations) {
    std::cout << "  " << std::setw(7) << toString(d.environment)
              << ": first " << d.firstSpan.ticks() << "s/" << d.firstCost
              << ", steady " << d.steadySpan.ticks() << "s/" << d.steadyCost
              << "  (rho=" << 100.0 * d.utilization << "%)\n";
  }
}

void printMission(const char* name, const MissionResult& r) {
  std::cout << name << ": " << r.steps << " steps in " << r.time.ticks()
            << " s, battery cost " << r.cost
            << (r.batteryDepleted ? "  [BATTERY DEPLETED]" : "") << "\n";
  for (const MissionPhase& ph : r.phases) {
    std::cout << "    solar " << std::setw(5) << ph.solar << ": "
              << std::setw(2) << ph.steps << " steps, " << std::setw(4)
              << ph.time.ticks() << " s, " << ph.cost << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "Building schedules (three environmental cases each)...\n\n";
  const PolicyBuild jpl = buildJplPolicy();
  const PolicyBuild pa = buildPowerAwarePolicy();
  if (!jpl.ok() || !pa.ok()) {
    std::cerr << "schedule construction failed\n";
    return 1;
  }
  printPolicy("JPL serial baseline", jpl);
  printPolicy("power-aware", pa);

  MissionSimulator sim(missionSolarProfile(), missionBattery());
  const MissionResult rj = sim.run(jpl.policy, 48);
  const MissionResult rp = sim.run(pa.policy, 48);

  std::cout << "\nMission: reach a target 48 steps away\n";
  printMission("  JPL fixed schedule ", rj);
  printMission("  power-aware        ", rp);

  const double speedup = 100.0 * (1.0 - static_cast<double>(rp.time.ticks()) /
                                            static_cast<double>(rj.time.ticks()));
  const double saving =
      100.0 * (1.0 - static_cast<double>(rp.cost.milliwattTicks()) /
                         static_cast<double>(rj.cost.milliwattTicks()));
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\nimprovement: " << speedup << "% faster, " << saving
            << "% less battery energy (paper: 33.3% / 32.7%)\n";
  return 0;
}
