// Schedule a problem described in a .paws file and export the results:
//
//   $ ./custom_problem [file.paws] [--svg out.svg] [--csv out.csv]
//
// Defaults to the bundled examples/data/sensor_node.paws. Demonstrates the
// declarative workflow: edit the text file, re-run, inspect — no
// recompilation, exactly the IMPACCT "explore without redesign" loop.
#include <fstream>
#include <iostream>
#include <string>

#include "gantt/ascii_gantt.hpp"
#include "gantt/svg_gantt.hpp"
#include "io/parser.hpp"
#include "io/writer.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;

int main(int argc, char** argv) {
  std::string path = "examples/data/sensor_node.paws";
  std::string svgOut, csvOut;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--svg" && i + 1 < argc) {
      svgOut = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csvOut = argv[++i];
    } else {
      path = arg;
    }
  }

  const io::ParseResult parsed = io::parseProblemFile(path);
  if (!parsed.ok()) {
    std::cerr << path << ": parse failed\n";
    for (const io::ParseError& e : parsed.errors) {
      std::cerr << "  " << io::format(e) << "\n";
    }
    return 1;
  }
  const Problem& problem = *parsed.problem;
  std::cout << "loaded '" << problem.name() << "': " << problem.numTasks()
            << " tasks, " << problem.numResources() << " resources, "
            << problem.constraints().size() << " constraints\n";
  for (const std::string& issue : problem.validate()) {
    std::cout << "warning: " << issue << "\n";
  }

  PowerAwareScheduler scheduler(problem);
  const ScheduleResult result = scheduler.schedule();
  if (!result.ok()) {
    std::cerr << "scheduling failed (" << toString(result.status)
              << "): " << result.message << "\n";
    return 1;
  }
  const Schedule& schedule = *result.schedule;
  const ValidationReport report =
      ScheduleValidator(problem).validate(schedule);

  std::cout << "finish " << schedule.finish() << " s, energy cost "
            << schedule.energyCost(problem.minPower()) << ", utilization "
            << 100.0 * schedule.utilization(problem.minPower()) << "%, "
            << (report.valid() ? "valid" : "INVALID") << "\n\n";
  std::cout << renderGantt(schedule);

  if (!svgOut.empty()) {
    std::ofstream out(svgOut);
    out << renderSvgGantt(schedule);
    std::cout << "\nwrote " << svgOut << "\n";
  }
  if (!csvOut.empty()) {
    std::ofstream out(csvOut);
    io::writeScheduleCsv(out, schedule);
    std::cout << "wrote " << csvOut << "\n";
  }
  return report.valid() ? 0 : 1;
}
