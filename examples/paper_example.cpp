// The paper's running example (Figs. 1, 2, 5 and 7): nine tasks a..i on
// three resources, Pmax = 16 W, Pmin = 14 W. Prints the schedule and the
// power view after each pipeline stage, plus the constraint graph in DOT.
#include <iostream>

#include "gantt/ascii_gantt.hpp"
#include "graph/dot.hpp"
#include "graph/longest_path.hpp"
#include "model/paper_example.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/timing_scheduler.hpp"

using namespace paws;

namespace {

void show(const char* stage, const Problem& p, const Schedule& s) {
  std::cout << "--- " << stage << " ---\n";
  std::cout << "tau=" << s.finish() << "  Ec(Pmin)=" << s.energyCost(p.minPower())
            << "  rho=" << 100.0 * s.utilization(p.minPower()) << "%"
            << "  spikes=" << s.powerProfile().spikes(p.maxPower()).size()
            << "  gaps=" << s.powerProfile().gaps(p.minPower()).size()
            << "\n";
  for (TaskId v : p.taskIds()) {
    std::cout << p.task(v).name << "@" << s.start(v) << " ";
  }
  std::cout << "\n" << renderGantt(s) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Problem p = makePaperExampleProblem();

  // Fig. 1: the constraint graph (pass --dot to dump Graphviz).
  if (argc > 1 && std::string(argv[1]) == "--dot") {
    DotOptions opt;
    opt.vertexLabels.resize(p.numVertices());
    for (TaskId v : p.taskIds()) opt.vertexLabels[v.index()] = p.task(v).name;
    std::cout << toDot(p.buildGraph(), opt);
    return 0;
  }

  // Fig. 2: a time-valid schedule (one spike, several gaps).
  ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler timing(p);
  SchedulerStats stats;
  const auto t = timing.run(g, engine, stats);
  if (!t.ok) {
    std::cerr << "timing failed: " << t.message << "\n";
    return 1;
  }
  show("Fig. 2: time-valid schedule", p, Schedule(&p, t.starts));

  // Fig. 5: after max-power scheduling (h and f delayed).
  MaxPowerScheduler maxPower(p);
  MaxPowerScheduler::Detailed det = maxPower.scheduleDetailed();
  if (!det.result.ok()) {
    std::cerr << "max-power failed: " << det.result.message << "\n";
    return 1;
  }
  show("Fig. 5: valid schedule after max-power scheduling", p,
       *det.result.schedule);

  // Fig. 7: after min-power scheduling (g fills the gap at t=10).
  MinPowerScheduler minPower(p);
  const ScheduleResult improved =
      minPower.improve(*det.graph, *det.result.schedule, det.result.stats);
  show("Fig. 7: improved schedule after min-power scheduling", p,
       *improved.schedule);
  return 0;
}
