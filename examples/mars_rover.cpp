// Mars rover case study: reproduces the schedules behind Figs. 9-11 and the
// per-case rows of Table 3, printing the power-aware Gantt chart for each
// environmental case next to the JPL serial baseline.
#include <iostream>

#include "gantt/ascii_gantt.hpp"
#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;
using namespace paws::rover;

namespace {

void report(const char* label, const Problem& problem, const Schedule& s) {
  const Watts pmin = problem.minPower();
  std::cout << label << ": finish=" << s.finish() << "s"
            << "  Ec(Pmin)=" << s.energyCost(pmin)
            << "  rho=" << 100.0 * s.utilization(pmin) << "%\n";
}

}  // namespace

int main() {
  for (const RoverCase c :
       {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
    const Problem problem = makeRoverProblem(c, /*iterations=*/1);
    std::cout << "=== rover case: " << toString(c)
              << "  (Pmax=" << problem.maxPower()
              << ", Pmin=" << problem.minPower() << ") ===\n";

    const ScheduleResult jpl = SerialScheduler(problem).schedule();
    if (jpl.ok()) report("JPL serial baseline", problem, *jpl.schedule);

    PowerAwareScheduler scheduler(problem);
    const ScheduleResult pa = scheduler.schedule();
    if (!pa.ok()) {
      std::cout << "power-aware scheduling failed: " << pa.message << "\n";
      continue;
    }
    report("power-aware        ", problem, *pa.schedule);

    const ScheduleValidator validator(problem);
    const auto reportv = validator.validate(*pa.schedule);
    std::cout << "hard-constraint check: "
              << (reportv.powerValid() ? "valid" : "VIOLATIONS") << "\n\n";
    AsciiGanttOptions opt;
    opt.ticksPerColumn = 1;
    std::cout << renderGantt(*pa.schedule, opt) << "\n";
  }
  return 0;
}
