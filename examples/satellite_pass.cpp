// Second application domain: an Earth-observation micro-satellite orbit
// segment (examples/data/satellite.paws). Demonstrates the analysis
// toolkit around the scheduler:
//   * feasible start windows [EST, LST] per task (the drag handles a GUI
//     would show),
//   * slack annotation in the Gantt time view,
//   * battery-stress comparison between the max-power-only schedule and
//     the full pipeline (the paper's jitter-control motivation),
//   * robustness range: the minimal budget the schedule remains valid for.
#include <iomanip>
#include <iostream>

#include "analysis/analysis.hpp"
#include "analysis/battery_stress.hpp"
#include "gantt/ascii_gantt.hpp"
#include "graph/longest_path.hpp"
#include "io/parser.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/slack.hpp"
#include "sched/windows.hpp"
#include "validate/validator.hpp"

using namespace paws;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "examples/data/satellite.paws";
  const io::ParseResult parsed = io::parseProblemFile(path);
  if (!parsed.ok()) {
    for (const io::ParseError& e : parsed.errors) {
      std::cerr << io::format(e) << "\n";
    }
    return 1;
  }
  const Problem& p = *parsed.problem;

  // Pre-scheduling view: global start windows under a 60-tick horizon.
  const ConstraintGraph userGraph = p.buildGraph();
  const auto windows = computeStartWindows(p, userGraph, Time(60));
  std::cout << "start windows (horizon 60):\n";
  for (TaskId v : p.taskIds()) {
    const StartWindow& w = windows[v.index()];
    std::cout << "  " << std::setw(10) << p.task(v).name << "  ["
              << w.earliest << ", " << w.latest << "]"
              << (w.feasible() ? "" : "  INFEASIBLE") << "\n";
  }

  // Stage comparison: hard constraints only, then the min-power polish.
  MaxPowerScheduler maxOnly(p);
  MaxPowerScheduler::Detailed det = maxOnly.scheduleDetailed();
  if (!det.result.ok()) {
    std::cerr << "scheduling failed: " << det.result.message << "\n";
    return 1;
  }
  MinPowerScheduler minStage(p);
  const ScheduleResult polished =
      minStage.improve(*det.graph, *det.result.schedule, det.result.stats);

  const auto stress = [&p](const Schedule& s) {
    return analyzeBatteryStress(s.powerProfile(), p.minPower());
  };
  const BatteryStressReport before = stress(*det.result.schedule);
  const BatteryStressReport after = stress(*polished.schedule);
  std::cout << "\nbattery draw   max-power-only    +min-power\n";
  std::cout << "  energy     " << std::setw(10) << before.drawnEnergy
            << "     " << std::setw(10) << after.drawnEnergy << "\n";
  std::cout << "  peak       " << std::setw(10) << before.peakDraw << "     "
            << std::setw(10) << after.peakDraw << "\n";
  std::cout << "  jitter     " << std::setw(10) << before.jitter << "     "
            << std::setw(10) << after.jitter << "\n";

  const Schedule& s = *polished.schedule;
  std::cout << "\nfinal: tau=" << s.finish() << "  Ec="
            << s.energyCost(p.minPower()) << "  rho="
            << 100.0 * s.utilization(p.minPower()) << "%  valid-for Pmax>="
            << ScheduleAnalysis::minimalValidPmax(s) << "\n\n";

  // Gantt with slack annotation ('~' marks where a bin may still slip).
  AsciiGanttOptions opt;
  opt.slacks = computeSlacks(*det.graph, s.starts());
  std::cout << renderGantt(s, opt);

  return ScheduleValidator(p).validate(s).valid() ? 0 : 1;
}
