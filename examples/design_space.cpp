// Design-space exploration — the IMPACCT motivation (Section 1.3): sweep
// the power budget and watch the performance/energy trade-off move, without
// redesigning anything by hand. Uses the typical-case rover iteration and
// varies the battery's max output (and hence Pmax = solar + battery).
#include <iomanip>
#include <iostream>

#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"

using namespace paws;
using namespace paws::rover;

int main() {
  const RoverPowerTable pw = powerTable(RoverCase::kTypical);
  std::cout << "Typical-case rover iteration (2 steps), solar " << pw.solar
            << ", sweeping battery budget:\n\n";
  std::cout << "  battery  Pmax    tau(s)  Ec(Pmin)   rho      schedule\n";

  const ScheduleResult serial =
      SerialScheduler(makeRoverProblem(RoverCase::kTypical)).schedule();
  if (!serial.ok()) {
    std::cerr << "baseline failed\n";
    return 1;
  }

  for (int batteryW = 0; batteryW <= 14; batteryW += 2) {
    Problem p = makeRoverProblem(RoverCase::kTypical);
    const Watts budget =
        pw.solar + Watts::fromMilliwatts(static_cast<std::int64_t>(batteryW) *
                                         1000);
    p.setMaxPower(budget);

    PowerAwareScheduler scheduler(p);
    const ScheduleResult r = scheduler.schedule();
    std::cout << "  " << std::setw(5) << batteryW << "W  " << std::setw(5)
              << budget << " ";
    if (!r.ok()) {
      std::cout << "   --      --       --     infeasible ("
                << toString(r.status) << ")\n";
      continue;
    }
    const Schedule& s = *r.schedule;
    std::cout << std::setw(7) << s.finish().ticks() << "  " << std::setw(8)
              << s.energyCost(p.minPower()) << "  " << std::fixed
              << std::setprecision(1) << std::setw(5)
              << 100.0 * s.utilization(p.minPower()) << "%   "
              << (s.finish() == serial.schedule->finish() ? "serial-equal"
                                                          : "parallelized")
              << "\n";
  }

  std::cout << "\nReading: with no battery the budget forces serialization "
               "(the JPL design point);\nadding battery headroom buys speed "
               "at increasing energy cost — the power-aware\nscheduler walks "
               "this trade-off automatically from the same declarative "
               "model.\n";
  return 0;
}
