// Quickstart: model a tiny power-aware scheduling problem, run the full
// three-stage pipeline, and inspect the result.
//
//   $ ./quickstart
//
// The scenario: a battery-powered sensor node with a radio, a sensor and a
// heater. Free power comes from a 6 W solar panel (Pmin); the battery adds
// at most 4 W (Pmax = 10 W). The heater must warm the sensor 2..20 s before
// it samples; the radio uplinks after sampling.
#include <iostream>

#include "gantt/ascii_gantt.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

int main() {
  using namespace paws;
  using namespace paws::literals;

  // 1. Describe the platform and workload.
  Problem problem("sensor_node");
  const ResourceId heater = problem.addResource("heater");
  const ResourceId sensor = problem.addResource("sensor");
  const ResourceId radio = problem.addResource("radio");

  const TaskId warmup = problem.addTask("warmup", 4_s, 5_W, heater);
  const TaskId sample = problem.addTask("sample", 6_s, 3_W, sensor);
  const TaskId uplink = problem.addTask("uplink", 5_s, 6_W, radio);
  const TaskId standby = problem.addTask("beacon", 3_s, 2_W, radio);

  problem.minSeparation(warmup, sample, 2_s);   // warm at least 2 s before
  problem.maxSeparation(warmup, sample, 20_s);  // heat fades after 20 s
  problem.precedes(sample, uplink);             // uplink sends the sample

  problem.setMaxPower(10_W);  // solar 6 W + battery 4 W
  problem.setMinPower(6_W);   // consume the free 6 W greedily
  problem.setBackgroundPower(1_W);  // the MCU never sleeps here

  // 2. Sanity-check the model.
  for (const std::string& issue : problem.validate()) {
    std::cerr << "model issue: " << issue << "\n";
  }

  // 3. Schedule: timing -> max power (hard) -> min power (best effort).
  PowerAwareScheduler scheduler(problem);
  const ScheduleResult result = scheduler.schedule();
  if (!result.ok()) {
    std::cerr << "scheduling failed: " << result.message << "\n";
    return 1;
  }
  const Schedule& schedule = *result.schedule;

  // 4. Inspect the power properties.
  std::cout << "finish time  : " << schedule.finish() << " s\n";
  std::cout << "energy cost  : " << schedule.energyCost(problem.minPower())
            << " drawn from the battery\n";
  std::cout << "utilization  : "
            << 100.0 * schedule.utilization(problem.minPower())
            << "% of the free solar energy\n\n";

  // 5. Independently validate and draw the power-aware Gantt chart.
  const ValidationReport report =
      ScheduleValidator(problem).validate(schedule);
  std::cout << "hard constraints: " << (report.valid() ? "OK" : "VIOLATED")
            << "\n\n";
  std::cout << renderGantt(schedule);
  (void)standby;
  return report.valid() ? 0 : 1;
}
