// Runtime deployment demo: compute schedules offline, persist them in the
// .paws schedule format, load them into per-case bindings, and execute the
// Table 4 mission with the runtime executor — printing the event trace and
// exact battery accounting. Optionally injects a solar "cliff" to show the
// brownout machinery:
//
//   $ ./runtime_trace [--cliff]
//
// One TraceSink observes the whole demo — offline search and online
// execution — and the combined search trace lands in runtime_trace.jsonl
// (see docs/observability.md for the event taxonomy).
#include <fstream>
#include <iostream>
#include <string>

#include "io/schedule_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"
#include "sched/power_aware_scheduler.hpp"

using namespace paws;
using namespace paws::rover;
using namespace paws::runtime;

int main(int argc, char** argv) {
  const bool cliff = argc > 1 && std::string(argv[1]) == "--cliff";

  // Every phase of the demo reports into one sink + registry.
  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  const obs::ObsContext obsCtx{&sink, &metrics};

  // Offline: schedule each environmental case and serialize the result —
  // in a real deployment these files ride along in the flight image.
  std::vector<Problem> problems;
  std::vector<Schedule> schedules;
  for (const RoverCase c :
       {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
    problems.push_back(makeRoverProblem(c, 1));
  }
  for (const Problem& p : problems) {
    PowerAwareOptions options;
    options.obs = obsCtx;
    PowerAwareScheduler scheduler(p, options);
    const ScheduleResult r = scheduler.schedule();
    if (!r.ok()) {
      std::cerr << "offline scheduling failed: " << r.message << "\n";
      return 1;
    }
    const std::string text = io::scheduleToText(*r.schedule, p.name());
    // Round-trip through the persistence format, as the flight side would.
    const io::ScheduleParseResult loaded = io::parseSchedule(text, p);
    if (!loaded.ok()) {
      std::cerr << "schedule round-trip failed\n";
      return 1;
    }
    schedules.push_back(*loaded.schedule);
  }

  std::vector<CaseBinding> bindings{
      {"best", Watts::fromWatts(14.9), &problems[0], schedules[0], 2},
      {"typical", Watts::fromWatts(12.0), &problems[1], schedules[1], 2},
      {"worst", Watts::zero(), &problems[2], schedules[2], 2},
  };

  SolarSource solar =
      cliff ? SolarSource({{Time(0), Watts::fromWatts(14.9)},
                           {Time(3), Watts::fromWatts(2.0)},
                           {Time(120), Watts::fromWatts(12.0)}})
            : missionSolarProfile();

  RuntimeExecutor executor(solar, missionBattery(), std::move(bindings));
  ExecutorConfig config;
  config.targetSteps = cliff ? 8 : 48;
  config.traceTasks = cliff;  // full task trace only for the short run
  config.obs = obsCtx;

  const ExecutionResult result = executor.run(config);

  std::cout << "trace (" << result.trace.size() << " events):\n";
  std::size_t printed = 0;
  for (const Event& e : result.trace) {
    if (!cliff && e.kind != EventKind::kIterationStarted &&
        e.kind != EventKind::kScheduleSelected &&
        e.kind != EventKind::kBrownout &&
        e.kind != EventKind::kMissionComplete) {
      continue;  // keep the long-mission listing readable
    }
    std::cout << "  t=" << e.at.ticks() << "\t" << toString(e.kind) << "\t"
              << e.detail << "\n";
    if (++printed > 120) {
      std::cout << "  ... (truncated)\n";
      break;
    }
  }

  std::cout << "\nmission " << (result.complete ? "COMPLETE" : "INCOMPLETE")
            << ": " << result.steps << " steps in "
            << result.finishedAt.ticks() << " s, battery "
            << result.batteryDrawn << ", brownouts " << result.brownouts
            << "\n";

  // The search trace covers the offline solves *and* the executor run —
  // load it line by line, or convert to chrome://tracing with pawsc.
  std::ofstream jsonl("runtime_trace.jsonl");
  obs::writeSearchTraceJsonl(jsonl, sink);
  std::cout << "\nwrote runtime_trace.jsonl (" << sink.size()
            << " search events; offline scheduling + runtime execution)\n"
            << metrics.renderTable();
  return result.complete ? 0 : 1;
}
