// Runtime-executor robustness study (deployment methodology; no paper
// table): run the statically scheduled rover through randomized mission
// environments and report completion, brownout and depletion rates — the
// paper's "adaptable to a runtime scheduler" claim under stress. Then
// google-benchmark times the executor itself.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>
#include <vector>

#include "gen/random_environment.hpp"
#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"
#include "sched/power_aware_scheduler.hpp"

using namespace paws;
using namespace paws::rover;
using namespace paws::runtime;

namespace {

struct Fleet {
  std::vector<Problem> problems;
  std::vector<Schedule> schedules;
  obs::MetricsRegistry planning;  ///< phase timings of the offline solve

  Fleet() {
    for (const RoverCase c :
         {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
      problems.push_back(makeRoverProblem(c, 1));
    }
    for (const Problem& p : problems) {
      PowerAwareOptions options;
      options.obs.metrics = &planning;
      PowerAwareScheduler scheduler(p, options);
      ScheduleResult r = scheduler.schedule();
      if (r.ok()) schedules.push_back(std::move(*r.schedule));
    }
  }

  std::vector<CaseBinding> bindings() const {
    return {
        {"best", Watts::fromWatts(14.9), &problems[0], schedules[0], 2},
        {"typical", Watts::fromWatts(12.0), &problems[1], schedules[1], 2},
        {"worst", Watts::zero(), &problems[2], schedules[2], 2},
    };
  }
};

const Fleet& fleet() {
  static Fleet instance;
  return instance;
}

void printRobustness() {
  std::printf("=== runtime robustness over 50 random solar/battery "
              "environments (24-step missions) ===\n");
  int complete = 0, depleted = 0, browned = 0;
  std::int64_t totalBrownouts = 0;
  obs::MetricsRegistry metrics;  // accumulates across all 50 missions
  for (std::uint32_t seed = 1; seed <= 50; ++seed) {
    EnvironmentConfig cfg;
    cfg.seed = seed;
    GeneratedEnvironment env = generateRandomEnvironment(cfg);
    RuntimeExecutor executor(env.solar, env.battery, fleet().bindings());
    ExecutorConfig config;
    config.targetSteps = 24;
    config.traceTasks = false;
    config.maxIterations = 200;
    config.obs.metrics = &metrics;
    const ExecutionResult r = executor.run(config);
    complete += r.complete;
    depleted += r.batteryDepleted;
    browned += r.brownouts > 0;
    totalBrownouts += r.brownouts;
  }
  std::printf("  missions completed : %d/50\n", complete);
  std::printf("  battery depletions : %d/50\n", depleted);
  std::printf("  runs with brownouts: %d/50 (%lld brownout instants "
              "total)\n",
              browned, static_cast<long long>(totalBrownouts));
  std::printf("  executor iterations: %llu\n\n",
              static_cast<unsigned long long>(
                  metrics.counter("executor.iterations")));

  std::printf("=== wall-clock phase timings ===\n");
  std::printf("--- offline fleet planning (3 rover cases) ---\n%s",
              fleet().planning.renderTable().c_str());
  std::printf("--- online execution (50 missions) ---\n%s\n",
              metrics.renderTable().c_str());
}

void BM_ExecutorMission(benchmark::State& state) {
  const SolarSource solar = missionSolarProfile();
  const Battery battery = missionBattery();
  RuntimeExecutor executor(solar, battery, fleet().bindings());
  ExecutorConfig config;
  config.targetSteps = 48;
  config.traceTasks = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(config));
  }
}
BENCHMARK(BM_ExecutorMission)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_ExecutorRandomEnvironment(benchmark::State& state) {
  EnvironmentConfig cfg;
  cfg.seed = static_cast<std::uint32_t>(state.range(0));
  GeneratedEnvironment env = generateRandomEnvironment(cfg);
  RuntimeExecutor executor(env.solar, env.battery, fleet().bindings());
  ExecutorConfig config;
  config.targetSteps = 24;
  config.traceTasks = false;
  config.maxIterations = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(config));
  }
}
BENCHMARK(BM_ExecutorRandomEnvironment)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printRobustness();
  return paws::bench::runBenchMain("runtime", argc, argv);
}
