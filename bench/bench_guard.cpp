// paws::guard methodology bench (no paper table): the two costs of
// deadline-aware scheduling.
//
//  * Anytime incumbent quality: run the exhaustive branch-and-bound on an
//    instance far beyond any deadline with 10/50/250 ms wall budgets and
//    report what the incumbent looks like at the trip — energy cost at
//    Pmin, finish time, nodes explored. The numbers show the deadline
//    knob buying monotonically better schedules.
//  * Clean-path polling overhead: the same completed search with no budget
//    vs an armed-but-unhit (1 hour) deadline. The strided RunGuard polls
//    must stay under 1% of wall time — compare the two rows' wall_ns.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <limits>

#include "bench_report.hpp"
#include "gen/random_problem.hpp"
#include "guard/budget.hpp"
#include "power/profile.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/schedule.hpp"

using namespace paws;

namespace {

/// Calibration note: the per-tick branch-and-bound lives on a knife edge —
/// 5 tasks completes in ~100 ms, 6 tasks in ~13 s, and anything much
/// larger never reaches its *first* leaf within an interactive deadline
/// (a 64-task instance explores 2M nodes in 250 ms with zero incumbents).
/// The anytime demo therefore uses 8 tasks: first incumbents land within
/// milliseconds while the full proof of optimality would take hours.
Problem guardInstance(std::size_t tasks) {
  GeneratorConfig cfg;
  cfg.seed = 17;
  cfg.numTasks = tasks;
  cfg.numResources = 2;
  cfg.maxDelay = 4;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 500;
  return generateRandomProblem(cfg).problem;
}

/// Incumbent quality at a wall-clock deadline of range(0) milliseconds on
/// an instance the exhaustive search cannot finish (see the calibration
/// note above). Counters carry the anytime result: incumbent energy cost
/// (mW·tick at Pmin), finish tick, and nodes explored before the trip.
void BM_AnytimeIncumbentQuality(benchmark::State& state) {
  const Problem problem = guardInstance(8);
  double cost = 0, finish = 0, nodes = 0, found = 0;
  for (auto _ : state) {
    ExhaustiveOptions options;
    options.maxNodes = std::numeric_limits<std::uint64_t>::max();
    options.budget.timeout = std::chrono::milliseconds(state.range(0));
    ExhaustiveScheduler scheduler(problem, options);
    const ScheduleResult r = scheduler.schedule();
    benchmark::DoNotOptimize(r);
    nodes = static_cast<double>(scheduler.outcome().nodesExplored);
    if (r.schedule.has_value()) {
      found = 1;
      const PowerProfile profile = profileOf(problem, r.schedule->starts());
      cost = static_cast<double>(
          profile.energyAbove(problem.minPower()).milliwattTicks());
      finish = static_cast<double>(r.schedule->finish().ticks());
    }
  }
  state.counters["incumbent_found"] = found;
  state.counters["incumbent_cost"] = cost;
  state.counters["incumbent_finish"] = finish;
  // Deliberately NOT named nodes_explored: when the deadline trips
  // mid-search this is how far the machine got in the time budget — a
  // load-dependent progress gauge, not a determinism witness, so it must
  // stay outside tools/bench_diff's exact-counter gate.
  state.counters["anytime_nodes"] = nodes;
}
BENCHMARK(BM_AnytimeIncumbentQuality)
    ->Arg(10)->Arg(50)->Arg(250)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// The clean path with guards compiled in but no budget set: the baseline
/// for the polling-overhead comparison.
void BM_CompletedSearchNoBudget(benchmark::State& state) {
  const Problem problem = guardInstance(5);
  for (auto _ : state) {
    ExhaustiveOptions options;
    ExhaustiveScheduler scheduler(problem, options);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_CompletedSearchNoBudget)->Unit(benchmark::kMillisecond);

/// Same search with an armed 1-hour deadline that never trips: every node
/// pays the strided poll. The delta vs the no-budget row is the real
/// polling overhead (budgeted at < 1%).
void BM_CompletedSearchUnhitDeadline(benchmark::State& state) {
  const Problem problem = guardInstance(5);
  for (auto _ : state) {
    ExhaustiveOptions options;
    options.budget.timeout = std::chrono::hours(1);
    ExhaustiveScheduler scheduler(problem, options);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_CompletedSearchUnhitDeadline)->Unit(benchmark::kMillisecond);

/// Heuristic-pipeline flavor of the same comparison: the per-iteration
/// polls sit in the timing/min-power inner loops instead of search nodes.
void BM_PipelineNoBudget(benchmark::State& state) {
  const Problem problem = guardInstance(48);
  for (auto _ : state) {
    PowerAwareScheduler scheduler(problem);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_PipelineNoBudget)->Unit(benchmark::kMillisecond);

void BM_PipelineUnhitDeadline(benchmark::State& state) {
  const Problem problem = guardInstance(48);
  for (auto _ : state) {
    PowerAwareOptions options;
    options.budget.timeout = std::chrono::hours(1);
    PowerAwareScheduler scheduler(problem, options);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_PipelineUnhitDeadline)->Unit(benchmark::kMillisecond);

void printGuardHeader() {
  std::printf(
      "paws::guard — anytime incumbents and polling overhead\n"
      "  BM_AnytimeIncumbentQuality/N: an exhaustive search that would\n"
      "  take hours, tripped at an N ms wall deadline; counters =\n"
      "  incumbent at the trip.\n"
      "  CompletedSearch/Pipeline pairs: identical work with and without\n"
      "  an armed-but-unhit deadline; the wall-time delta is the guard\n"
      "  polling overhead (target < 1%%).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printGuardHeader();
  return paws::bench::runBenchMain("guard", argc, argv);
}
