// Optimality-gap ablation (Section 5.3's complexity argument, quantified):
// the paper argues a truly optimal schedule requires examining all partial
// orders (exponential) and settles for heuristics. Here we run the
// exhaustive branch-and-bound oracle on small random instances and measure
// how far the three-stage heuristic pipeline lands from the optimum, for
// both objectives (energy cost at Pmin, then finish time).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_report.hpp"
#include "exec/jobs.hpp"
#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "gen/random_problem.hpp"
#include "io/schedule_io.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"

using namespace paws;

namespace {

GeneratorConfig smallConfig(std::uint32_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = 5;
  cfg.numResources = 2;
  cfg.maxDelay = 4;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 500;
  return cfg;
}

void printGapTable() {
  std::printf("=== heuristic pipeline vs exhaustive optimum (5-task random "
              "instances) ===\n");
  std::printf("%6s %12s %12s %10s %10s %8s\n", "seed", "opt Ec(J)",
              "heur Ec(J)", "opt tau", "heur tau", "verdict");
  int optimalHits = 0, solved = 0;
  double worstEcGap = 0;

  // The 20 seeds are independent: solve them concurrently, print in seed
  // order (parallelMap's ordered output keeps the table deterministic).
  // Only plain numbers cross the thread boundary — a Schedule points into
  // its (lambda-local) Problem and must not outlive it.
  struct SeedRow {
    bool oracleComplete = false;
    bool heurOk = false;
    double ecOpt = 0;
    double ecHeur = 0;
    long long tauOpt = 0;
    long long tauHeur = 0;
  };
  exec::Pool pool(exec::defaultJobs());
  const std::vector<SeedRow> rows = exec::parallelMap(
      pool, 20, [](std::size_t i) -> SeedRow {
        const std::uint32_t seed = static_cast<std::uint32_t>(i) + 1;
        const GeneratedProblem gp = generateRandomProblem(smallConfig(seed));
        SeedRow row;
        ExhaustiveScheduler oracle(gp.problem);
        const ScheduleResult opt = oracle.schedule();
        row.oracleComplete = opt.ok() && oracle.outcome().provenOptimal;
        if (row.oracleComplete) {
          row.ecOpt = opt.schedule->energyCost(gp.problem.minPower()).joules();
          row.tauOpt = static_cast<long long>(opt.schedule->finish().ticks());
        }
        PowerAwareScheduler heuristic(gp.problem);
        const ScheduleResult h = heuristic.schedule();
        row.heurOk = h.ok();
        if (row.heurOk) {
          row.ecHeur = h.schedule->energyCost(gp.problem.minPower()).joules();
          row.tauHeur = static_cast<long long>(h.schedule->finish().ticks());
        }
        return row;
      });

  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const SeedRow& row = rows[seed - 1];
    if (!row.oracleComplete) {
      std::printf("%6u %12s (oracle incomplete)\n", seed, "-");
      continue;
    }
    if (!row.heurOk) {
      std::printf("%6u %12.2f %12s %10lld %10s %8s\n", seed, row.ecOpt, "-",
                  row.tauOpt, "-", "FAILED");
      continue;
    }
    ++solved;
    const bool hit = row.ecHeur <= row.ecOpt + 1e-9 &&
                     row.tauHeur == row.tauOpt;
    if (hit) ++optimalHits;
    if (row.ecOpt > 0) {
      worstEcGap =
          std::max(worstEcGap, (row.ecHeur - row.ecOpt) / row.ecOpt);
    }
    std::printf("%6u %12.2f %12.2f %10lld %10lld %8s\n", seed, row.ecOpt,
                row.ecHeur, row.tauOpt, row.tauHeur,
                hit ? "optimal" : "gap");
  }
  std::printf("summary: %d/%d solved, %d exactly optimal, worst relative Ec "
              "gap %.1f%%\n\n",
              solved, 20, optimalHits, 100.0 * worstEcGap);
}

void BM_ExhaustiveOracle(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      smallConfig(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    ExhaustiveScheduler oracle(gp.problem);
    benchmark::DoNotOptimize(oracle.schedule());
  }
  // Determinism witnesses for the bench regression gate (tools/bench_diff):
  // the serial pruned search visits an exact, machine-independent node set,
  // so the node and pruning counters must be byte-for-byte stable.
  ExhaustiveScheduler witness(gp.problem);
  benchmark::DoNotOptimize(witness.schedule());
  const ExhaustiveOutcomeStats& stats = witness.outcome();
  state.counters["nodes_explored"] =
      static_cast<double>(stats.nodesExplored);
  state.counters["pruned_dominance"] =
      static_cast<double>(stats.prunedDominance);
  state.counters["pruned_symmetry"] =
      static_cast<double>(stats.prunedSymmetry);
  state.counters["pruned_bound"] = static_cast<double>(stats.prunedBound);
}
BENCHMARK(BM_ExhaustiveOracle)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_HeuristicOnSameInstances(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      smallConfig(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    PowerAwareScheduler heuristic(gp.problem);
    benchmark::DoNotOptimize(heuristic.schedule());
  }
  // Determinism witnesses for the bench regression gate (tools/bench_diff):
  // the pipeline is single-threaded here, so the serialized schedule and
  // the longest-path run count must be byte-for-byte stable across runs
  // and machines. Wall time may drift; these may not.
  PowerAwareScheduler witness(gp.problem);
  const ScheduleResult r = witness.schedule();
  if (r.ok()) {
    std::ostringstream txt;
    io::writeSchedule(txt, *r.schedule, "bench");
    state.counters["schedule_bytes"] =
        static_cast<double>(txt.str().size());
    state.counters["lp_runs"] =
        static_cast<double>(r.stats.longestPathRuns);
  }
}
BENCHMARK(BM_HeuristicOnSameInstances)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

// Parallel-search speedup on a 12-task instance. The search space dwarfs
// the node budget, so every job count does exactly `maxNodes` nodes of
// work and wall time measures how well the pool splits it. Speedup needs
// real cores — on a 1-CPU host the job counts tie (docs/performance.md).
void BM_ExhaustiveParallel(benchmark::State& state) {
  GeneratorConfig cfg = smallConfig(11);
  cfg.numTasks = 12;
  const GeneratedProblem gp = generateRandomProblem(cfg);
  ExhaustiveOptions options;
  options.maxNodes = 1'000'000;
  options.jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    ExhaustiveScheduler oracle(gp.problem, options);
    benchmark::DoNotOptimize(oracle.schedule());
    nodes += oracle.outcome().nodesExplored;
  }
  state.counters["threads"] =
      static_cast<double>(exec::resolveJobs(options.jobs));
  state.counters["nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExhaustiveParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  printGapTable();
  return paws::bench::runBenchMain("optimality", argc, argv);
}
