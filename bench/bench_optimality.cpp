// Optimality-gap ablation (Section 5.3's complexity argument, quantified):
// the paper argues a truly optimal schedule requires examining all partial
// orders (exponential) and settles for heuristics. Here we run the
// exhaustive branch-and-bound oracle on small random instances and measure
// how far the three-stage heuristic pipeline lands from the optimum, for
// both objectives (energy cost at Pmin, then finish time).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/random_problem.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"

using namespace paws;

namespace {

GeneratorConfig smallConfig(std::uint32_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = 5;
  cfg.numResources = 2;
  cfg.maxDelay = 4;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 500;
  return cfg;
}

void printGapTable() {
  std::printf("=== heuristic pipeline vs exhaustive optimum (5-task random "
              "instances) ===\n");
  std::printf("%6s %12s %12s %10s %10s %8s\n", "seed", "opt Ec(J)",
              "heur Ec(J)", "opt tau", "heur tau", "verdict");
  int optimalHits = 0, solved = 0;
  double worstEcGap = 0;
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const GeneratedProblem gp = generateRandomProblem(smallConfig(seed));
    ExhaustiveScheduler oracle(gp.problem);
    const ScheduleResult opt = oracle.schedule();
    PowerAwareScheduler heuristic(gp.problem);
    const ScheduleResult h = heuristic.schedule();
    if (!opt.ok() || !oracle.outcome().provenOptimal) {
      std::printf("%6u %12s (oracle incomplete)\n", seed, "-");
      continue;
    }
    if (!h.ok()) {
      std::printf("%6u %12.2f %12s %10lld %10s %8s\n", seed,
                  opt.schedule->energyCost(gp.problem.minPower()).joules(),
                  "-",
                  static_cast<long long>(opt.schedule->finish().ticks()), "-",
                  "FAILED");
      continue;
    }
    ++solved;
    const double ecOpt =
        opt.schedule->energyCost(gp.problem.minPower()).joules();
    const double ecHeur =
        h.schedule->energyCost(gp.problem.minPower()).joules();
    const bool hit = ecHeur <= ecOpt + 1e-9 &&
                     h.schedule->finish() == opt.schedule->finish();
    if (hit) ++optimalHits;
    if (ecOpt > 0) {
      worstEcGap = std::max(worstEcGap, (ecHeur - ecOpt) / ecOpt);
    }
    std::printf("%6u %12.2f %12.2f %10lld %10lld %8s\n", seed, ecOpt, ecHeur,
                static_cast<long long>(opt.schedule->finish().ticks()),
                static_cast<long long>(h.schedule->finish().ticks()),
                hit ? "optimal" : "gap");
  }
  std::printf("summary: %d/%d solved, %d exactly optimal, worst relative Ec "
              "gap %.1f%%\n\n",
              solved, 20, optimalHits, 100.0 * worstEcGap);
}

void BM_ExhaustiveOracle(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      smallConfig(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    ExhaustiveScheduler oracle(gp.problem);
    benchmark::DoNotOptimize(oracle.schedule());
  }
}
BENCHMARK(BM_ExhaustiveOracle)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_HeuristicOnSameInstances(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      smallConfig(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    PowerAwareScheduler heuristic(gp.problem);
    benchmark::DoNotOptimize(heuristic.schedule());
  }
}
BENCHMARK(BM_HeuristicOnSameInstances)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printGapTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
