// Mission-survival study (robustness methodology; no paper table): fly
// Monte-Carlo fault campaigns over the rover mission and report what each
// contingency layer buys — the closed-loop counterpart of bench_runtime's
// open-loop robustness sweep. Then google-benchmark times fault-plan
// instantiation, a degraded mission, and the campaign harness itself.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>

#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "fault/rng.hpp"
#include "rover/rover_model.hpp"

using namespace paws;
using namespace paws::fault;

namespace {

struct Fixture {
  rover::CaseSchedules cases;
  Fixture() : cases(rover::buildCaseSchedules()) {}
};

const Fixture& fixture() {
  static Fixture instance;
  return instance;
}

FaultCampaign makeCampaign() {
  return FaultCampaign(rover::missionSolarProfile(), rover::missionBattery(),
                       roverCaseBindings(fixture().cases));
}

CampaignConfig baseConfig() {
  CampaignConfig config;
  config.missions = 40;
  config.seed = 1;
  config.targetSteps = 48;
  // Stress harder than the defaults so the layers have failures to absorb.
  config.model.failurePermille = 40;
  config.model.clouds = 3;
  config.model.deratePermille = 300;
  return config;
}

void printSurvivalStudy() {
  std::printf("=== mission survival by contingency layer "
              "(40 seeded missions, 48 steps) ===\n");
  std::printf("  %-18s %9s %8s %8s %8s %8s %8s\n", "policy", "survival",
              "retries", "replans", "shed", "misses", "lost");
  struct PolicyRow {
    const char* name;
    ContingencyOptions contingency;
  };
  ContingencyOptions retryOnly, replanOnly, shedOnly;
  retryOnly.retry = true;
  replanOnly.replan = true;
  shedOnly.replan = shedOnly.shed = true;
  const PolicyRow rows[] = {
      {"open-loop", {}},
      {"retry", retryOnly},
      {"replan", replanOnly},
      {"replan+shed", shedOnly},
      {"all", ContingencyOptions::all()},
  };
  const FaultCampaign campaign = makeCampaign();
  for (const PolicyRow& row : rows) {
    CampaignConfig config = baseConfig();
    config.contingency = row.contingency;
    const CampaignResult r = campaign.run(config);
    std::printf("  %-18s %5lld/1000 %8lld %8lld %8lld %8lld %8lld\n",
                row.name, static_cast<long long>(r.survivalPermille()),
                static_cast<long long>(r.retries),
                static_cast<long long>(r.replans),
                static_cast<long long>(r.shedTasks),
                static_cast<long long>(r.deadlineMisses),
                static_cast<long long>(r.unrecoverable + r.stalled +
                                       r.depletions));
  }
  std::printf("\n");
}

void BM_FaultPlanInstantiation(benchmark::State& state) {
  std::vector<std::string> names;
  const Problem& p = *fixture().cases.problems[0];
  for (TaskId v : p.taskIds()) names.push_back(p.task(v).name);
  const FaultModel model(baseConfig().model, std::move(names));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.instantiate(mixSeed(1, seed++, 0)));
  }
}
BENCHMARK(BM_FaultPlanInstantiation)->Unit(benchmark::kMicrosecond);

void BM_DegradedMission(benchmark::State& state) {
  const bool contingency = state.range(0) != 0;
  const FaultCampaign campaign = makeCampaign();
  CampaignConfig config = baseConfig();
  config.missions = 1;
  if (contingency) config.contingency = ContingencyOptions::all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.run(config));
  }
}
BENCHMARK(BM_DegradedMission)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_CampaignFanOut(benchmark::State& state) {
  const FaultCampaign campaign = makeCampaign();
  CampaignConfig config = baseConfig();
  config.missions = 16;
  config.targetSteps = 24;
  config.contingency = ContingencyOptions::all();
  config.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.run(config));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CampaignFanOut)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  if (!fixture().cases.ok) {
    std::fprintf(stderr, "case schedules failed: %s\n",
                 fixture().cases.message.c_str());
    return 1;
  }
  printSurvivalStudy();
  return paws::bench::runBenchMain("fault_campaign", argc, argv);
}
