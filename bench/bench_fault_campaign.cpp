// Mission-survival study (robustness methodology; no paper table): fly
// Monte-Carlo fault campaigns over the rover mission and report what each
// contingency layer buys — the closed-loop counterpart of bench_runtime's
// open-loop robustness sweep. Then google-benchmark times fault-plan
// instantiation, a degraded mission, and the campaign harness itself.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>

#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "fault/rng.hpp"
#include "rover/rover_model.hpp"
#include "sched/battery_refine.hpp"
#include "sched/max_power_scheduler.hpp"

using namespace paws;
using namespace paws::fault;
using namespace paws::literals;

namespace {

struct Fixture {
  rover::CaseSchedules cases;
  Fixture() : cases(rover::buildCaseSchedules()) {}
};

const Fixture& fixture() {
  static Fixture instance;
  return instance;
}

/// Pmax-clamped ASAP plans (TimingScheduler + MaxPowerScheduler, no
/// MinPower gap filling): timing- and budget-valid, but tasks with slack
/// stack into tall bursts. This is the plan shape the rate-capacity model
/// punishes — the full pipeline's MinPower stage already flattens, so on
/// the regular fixture() plans batteryRefine() is a verified no-op.
const Fixture& stackedFixture() {
  static Fixture* instance = [] {
    auto* f = new Fixture();
    f->cases.schedules.clear();
    f->cases.problems.clear();
    f->cases.ok = true;
    for (const rover::RoverCase c :
         {rover::RoverCase::kBest, rover::RoverCase::kTypical,
          rover::RoverCase::kWorst}) {
      f->cases.problems.push_back(std::make_unique<Problem>(
          rover::makeRoverProblem(c, /*iterations=*/1)));
      MaxPowerScheduler scheduler(*f->cases.problems.back());
      ScheduleResult r = scheduler.schedule();
      if (!r.ok()) {
        f->cases.ok = false;
        f->cases.message = r.message;
        break;
      }
      f->cases.schedules.push_back(std::move(*r.schedule));
    }
    return f;
  }();
  return *instance;
}

/// The stacked plans post-processed by batteryRefine() against the mission
/// rate-capacity model (the Khan & Vemuri loop the realism study measures).
const Fixture& refinedFixture() {
  static Fixture* instance = [] {
    auto* f = new Fixture();
    const Fixture& stacked = stackedFixture();
    f->cases.schedules.clear();
    f->cases.problems.clear();
    f->cases.ok = stacked.cases.ok;
    BatteryRefineOptions refine;
    refine.model = rover::missionBatteryTraits();
    for (std::size_t i = 0; i < stacked.cases.schedules.size(); ++i) {
      f->cases.problems.push_back(
          std::make_unique<Problem>(*stacked.cases.problems[i]));
      Schedule moved(f->cases.problems.back().get(),
                     stacked.cases.schedules[i].starts());
      f->cases.schedules.push_back(
          batteryRefine(*f->cases.problems.back(), moved, refine));
    }
    return f;
  }();
  return *instance;
}

/// Mission criticality ranks applied (wheel heaters 3, steering heaters 2)
/// so ModePolicy::missionDefault() has a service class to shed.
const Fixture& missionFixture() {
  static Fixture* instance = [] {
    auto* f = new Fixture();
    for (auto& p : f->cases.problems) rover::applyMissionCriticality(*p);
    return f;
  }();
  return *instance;
}

FaultCampaign makeCampaign() {
  return FaultCampaign(rover::missionSolarProfile(), rover::missionBattery(),
                       roverCaseBindings(fixture().cases));
}

CampaignConfig baseConfig() {
  CampaignConfig config;
  config.missions = 40;
  config.seed = 1;
  config.targetSteps = 48;
  // Stress harder than the defaults so the layers have failures to absorb.
  config.model.failurePermille = 40;
  config.model.clouds = 3;
  config.model.deratePermille = 300;
  return config;
}

void printSurvivalStudy() {
  std::printf("=== mission survival by contingency layer "
              "(40 seeded missions, 48 steps) ===\n");
  std::printf("  %-18s %9s %8s %8s %8s %8s %8s\n", "policy", "survival",
              "retries", "replans", "shed", "misses", "lost");
  struct PolicyRow {
    const char* name;
    ContingencyOptions contingency;
  };
  ContingencyOptions retryOnly, replanOnly, shedOnly;
  retryOnly.retry = true;
  replanOnly.replan = true;
  shedOnly.replan = shedOnly.shed = true;
  const PolicyRow rows[] = {
      {"open-loop", {}},
      {"retry", retryOnly},
      {"replan", replanOnly},
      {"replan+shed", shedOnly},
      {"all", ContingencyOptions::all()},
  };
  const FaultCampaign campaign = makeCampaign();
  for (const PolicyRow& row : rows) {
    CampaignConfig config = baseConfig();
    config.contingency = row.contingency;
    const CampaignResult r = campaign.run(config);
    std::printf("  %-18s %5lld/1000 %8lld %8lld %8lld %8lld %8lld\n",
                row.name, static_cast<long long>(r.survivalPermille()),
                static_cast<long long>(r.retries),
                static_cast<long long>(r.replans),
                static_cast<long long>(r.shedTasks),
                static_cast<long long>(r.deadlineMisses),
                static_cast<long long>(r.unrecoverable + r.stalled +
                                       r.depletions));
  }
  std::printf("\n");
}

FaultModelConfig cleanModel() {
  FaultModelConfig clean;
  clean.overrunPermille = 0;
  clean.failurePermille = 0;
  clean.clouds = 0;
  clean.storms = 0;
  clean.deratePermille = 0;
  return clean;
}

/// The pack the realism/mode studies fly on: small enough that a 48-step
/// mission starves mid-flight, so delivered length is the discriminator.
constexpr std::int64_t kStarvedPackMwt = 2900LL * 1000;  // 2900 J

Battery starvedPack(bool rate) {
  const Energy cap = Energy::fromMilliwattTicks(kStarvedPackMwt);
  return rate ? rover::missionBattery(cap, rover::missionBatteryTraits())
              : rover::missionBattery(cap);
}

/// One clean (fault-free) mission on a starved pack, flown on the stacked
/// (Pmax-clamped ASAP) plans: how many steps does each battery model /
/// schedule variant deliver before the charge runs out? The rate-capacity
/// model must cost steps vs linear, and the batteryRefine() plans must
/// claw some of them back.
void printBatteryRealismStudy() {
  if (!stackedFixture().cases.ok) {
    std::printf("battery realism study skipped: %s\n\n",
                stackedFixture().cases.message.c_str());
    return;
  }
  std::printf("=== delivered mission length by battery model "
              "(clean mission, stacked plans, 2900 J pack, 48-step target) "
              "===\n");
  std::printf("  %-22s %8s %12s %12s\n", "variant", "steps", "drawn(J)",
              "depleted@");
  struct Row {
    const char* name;
    bool rate;
    bool refined;
  };
  const Row rows[] = {
      {"linear", false, false},
      {"rate-capacity", true, false},
      {"rate + refine", true, true},
  };
  for (const Row& row : rows) {
    const Fixture& fix = row.refined ? refinedFixture() : stackedFixture();
    const FaultCampaign campaign(rover::missionSolarProfile(),
                                 starvedPack(row.rate),
                                 roverCaseBindings(fix.cases));
    CampaignConfig config;
    config.missions = 1;
    config.targetSteps = 48;
    config.model = cleanModel();
    config.batteryModel = row.rate ? "rate" : "linear";
    const CampaignResult r = campaign.run(config);
    std::printf("  %-22s %5lld/48 %12.1f %12lld\n", row.name,
                static_cast<long long>(r.steps),
                static_cast<double>(r.outcomes[0].batteryDrawn.joules()),
                static_cast<long long>(r.outcomes[0].depletedAt));
  }
  std::printf("\n");
}

/// Mission survival by degradation policy on the starved rate-capacity
/// pack under fault stress: criticality-mode ladders must strictly beat
/// per-task shed-only contingencies — a mode change re-budgets the whole
/// mission instead of dropping one victim per infeasible repair.
void printModeSurvivalStudy() {
  std::printf("=== mission survival by degradation policy "
              "(rate-capacity 2900 J pack, 40 seeded missions) ===\n");
  std::printf("  %-18s %9s %8s %8s %8s %8s\n", "policy", "survival",
              "steps", "shed", "modeshed", "esc");
  struct Row {
    const char* name;
    ContingencyOptions contingency;
    bool modes;
  };
  ContingencyOptions shedOnly;
  shedOnly.replan = shedOnly.shed = true;
  const Row rows[] = {
      {"open-loop", {}, false},
      {"shed-only", shedOnly, false},
      {"modes", {}, true},
      {"modes+contingency", ContingencyOptions::all(), true},
  };
  const FaultCampaign campaign(rover::missionSolarProfile(),
                               starvedPack(/*rate=*/true),
                               roverCaseBindings(missionFixture().cases));
  for (const Row& row : rows) {
    CampaignConfig config = baseConfig();
    config.contingency = row.contingency;
    if (row.modes) config.modePolicy = ModePolicy::missionDefault();
    config.batteryModel = "rate";
    const CampaignResult r = campaign.run(config);
    std::printf("  %-18s %5lld/1000 %8lld %8lld %8lld %8lld\n", row.name,
                static_cast<long long>(r.survivalPermille()),
                static_cast<long long>(r.steps),
                static_cast<long long>(r.shedTasks),
                static_cast<long long>(r.modeShedTasks),
                static_cast<long long>(r.modeEscalations));
  }
  std::printf("\n");
}

void BM_FaultPlanInstantiation(benchmark::State& state) {
  std::vector<std::string> names;
  const Problem& p = *fixture().cases.problems[0];
  for (TaskId v : p.taskIds()) names.push_back(p.task(v).name);
  const FaultModel model(baseConfig().model, std::move(names));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.instantiate(mixSeed(1, seed++, 0)));
  }
}
BENCHMARK(BM_FaultPlanInstantiation)->Unit(benchmark::kMicrosecond);

void BM_DegradedMission(benchmark::State& state) {
  const bool contingency = state.range(0) != 0;
  const FaultCampaign campaign = makeCampaign();
  CampaignConfig config = baseConfig();
  config.missions = 1;
  if (contingency) config.contingency = ContingencyOptions::all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.run(config));
  }
}
BENCHMARK(BM_DegradedMission)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_CampaignFanOut(benchmark::State& state) {
  const FaultCampaign campaign = makeCampaign();
  CampaignConfig config = baseConfig();
  config.missions = 16;
  config.targetSteps = 24;
  config.contingency = ContingencyOptions::all();
  config.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.run(config));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CampaignFanOut)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Deterministic mission counters (campaigns are byte-exact for any worker
// count), gated exactly by tools/bench_diff against bench/baseline.json.

void BM_BatteryDelivery(benchmark::State& state) {
  // Stacked plans throughout: 0 = linear pack, 1 = rate-capacity,
  // 2 = rate-capacity on the batteryRefine()d plans.
  const int variant = static_cast<int>(state.range(0));
  const Fixture& fix = variant == 2 ? refinedFixture() : stackedFixture();
  const FaultCampaign campaign(rover::missionSolarProfile(),
                               starvedPack(variant != 0),
                               roverCaseBindings(fix.cases));
  CampaignConfig config;
  config.missions = 1;
  config.targetSteps = 48;
  config.model = cleanModel();
  CampaignResult r;
  for (auto _ : state) {
    r = campaign.run(config);
    benchmark::DoNotOptimize(r);
  }
  state.counters["delivered_steps"] = static_cast<double>(r.steps);
}
BENCHMARK(BM_BatteryDelivery)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_ModeSurvival(benchmark::State& state) {
  // 0 = per-task shed-only contingency, 1 = the mission mode ladder.
  const bool modes = state.range(0) != 0;
  const FaultCampaign campaign(rover::missionSolarProfile(),
                               starvedPack(/*rate=*/true),
                               roverCaseBindings(missionFixture().cases));
  CampaignConfig config = baseConfig();
  if (modes) {
    config.modePolicy = ModePolicy::missionDefault();
    config.contingency = ContingencyOptions::all();
  } else {
    config.contingency.replan = config.contingency.shed = true;
  }
  config.batteryModel = "rate";
  CampaignResult r;
  for (auto _ : state) {
    r = campaign.run(config);
    benchmark::DoNotOptimize(r);
  }
  state.counters["survival_permille"] =
      static_cast<double>(r.survivalPermille());
  state.counters["mode_escalations"] =
      static_cast<double>(r.modeEscalations);
}
BENCHMARK(BM_ModeSurvival)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!fixture().cases.ok) {
    std::fprintf(stderr, "case schedules failed: %s\n",
                 fixture().cases.message.c_str());
    return 1;
  }
  printSurvivalStudy();
  printBatteryRealismStudy();
  printModeSurvivalStudy();
  return paws::bench::runBenchMain("fault_campaign", argc, argv);
}
