// Ablation of the paper's heuristic choices (Sections 5.2-5.3):
//
//   A1. Victim selection in max-power scheduling: slack-ordered (paper's
//       case 1) vs random (the paper's zero-slack fallback used always).
//   A2. Min-power scan order and slot heuristics, and the value of
//       multi-pass scanning with rotated heuristics.
//   A3. The greedy power-capped list scheduler as a "without the paper"
//       comparison on the same instances.
//
// Metrics: success rate, mean energy cost and mean finish time on seeded
// feasible-by-construction instances, plus the rover typical case.
// google-benchmark timings follow the quality tables.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>
#include <vector>

#include "analysis/battery_stress.hpp"
#include "gen/random_problem.hpp"
#include "model/paper_example.hpp"
#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;

namespace {

constexpr std::uint32_t kSeeds = 12;

GeneratorConfig ablationConfig(std::uint32_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = 24;
  cfg.numResources = 5;
  cfg.pmaxHeadroomMw = 500;
  return cfg;
}

struct Aggregate {
  int ok = 0;
  double sumEc = 0;
  double sumTau = 0;
  double sumRho = 0;

  void add(const Problem& p, const Schedule& s) {
    ++ok;
    sumEc += s.energyCost(p.minPower()).joules();
    sumTau += static_cast<double>(s.finish().ticks());
    sumRho += s.utilization(p.minPower());
  }
  void print(const char* label) const {
    if (ok == 0) {
      std::printf("  %-34s %4d/%-3u %10s %8s %7s\n", label, ok, kSeeds, "-",
                  "-", "-");
      return;
    }
    std::printf("  %-34s %4d/%-3u %10.1f %8.1f %6.1f%%\n", label, ok, kSeeds,
                sumEc / ok, sumTau / ok, 100.0 * sumRho / ok);
  }
};

void ablateVictimOrder() {
  std::printf("--- A1: max-power victim selection (random instances) ---\n");
  std::printf("  %-34s %8s %10s %8s %7s\n", "strategy", "solved", "mean Ec(J)",
              "mean tau", "rho");
  for (const VictimOrder order : {VictimOrder::kBySlack, VictimOrder::kRandom}) {
    Aggregate agg;
    for (std::uint32_t seed = 1; seed <= kSeeds; ++seed) {
      const GeneratedProblem gp = generateRandomProblem(ablationConfig(seed));
      MinPowerOptions opt;
      opt.maxPower.victimOrder = order;
      opt.maxPower.randomSeed = seed;
      MinPowerScheduler pipeline(gp.problem, opt);
      const ScheduleResult r = pipeline.schedule();
      if (r.ok() &&
          ScheduleValidator(gp.problem).validate(*r.schedule).valid()) {
        agg.add(gp.problem, *r.schedule);
      }
    }
    agg.print(order == VictimOrder::kBySlack ? "slack-ordered (paper)"
                                             : "random victim");
  }
  std::printf("\n");
}

void ablateMinPowerHeuristics() {
  std::printf("--- A2: min-power scan/slot heuristics (random instances) "
              "---\n");
  std::printf("  %-34s %8s %10s %8s %7s\n", "strategy", "solved", "mean Ec(J)",
              "mean tau", "rho");
  struct Variant {
    const char* label;
    ScanOrder scan;
    SlotHeuristic slot;
    bool rotate;
    std::uint32_t passes;
  };
  const Variant variants[] = {
      {"forward/start-at-gap, 1 pass", ScanOrder::kForward,
       SlotHeuristic::kStartAtGap, false, 1},
      {"backward/finish-at-end, 1 pass", ScanOrder::kBackward,
       SlotHeuristic::kFinishAtGapEnd, false, 1},
      {"random/random, 1 pass", ScanOrder::kRandom, SlotHeuristic::kRandom,
       false, 1},
      {"rotating heuristics, 8 passes", ScanOrder::kForward,
       SlotHeuristic::kStartAtGap, true, 8},
  };
  for (const Variant& v : variants) {
    Aggregate agg;
    for (std::uint32_t seed = 1; seed <= kSeeds; ++seed) {
      const GeneratedProblem gp = generateRandomProblem(ablationConfig(seed));
      MinPowerOptions opt;
      opt.scanOrder = v.scan;
      opt.slotHeuristic = v.slot;
      opt.rotateHeuristics = v.rotate;
      opt.maxPasses = v.passes;
      opt.randomSeed = seed;
      MinPowerScheduler pipeline(gp.problem, opt);
      const ScheduleResult r = pipeline.schedule();
      if (r.ok() &&
          ScheduleValidator(gp.problem).validate(*r.schedule).valid()) {
        agg.add(gp.problem, *r.schedule);
      }
    }
    agg.print(v.label);
  }
  std::printf("\n");
}

void ablateAgainstListScheduler() {
  std::printf("--- A3: three-stage pipeline vs greedy power-capped list "
              "scheduler ---\n");
  std::printf("  %-34s %8s %10s %8s %7s\n", "scheduler", "valid", "mean Ec(J)",
              "mean tau", "rho");
  Aggregate pipelineAgg, listAgg;
  for (std::uint32_t seed = 1; seed <= kSeeds; ++seed) {
    const GeneratedProblem gp = generateRandomProblem(ablationConfig(seed));
    MinPowerScheduler pipeline(gp.problem);
    const ScheduleResult rp = pipeline.schedule();
    if (rp.ok() &&
        ScheduleValidator(gp.problem).validate(*rp.schedule).valid()) {
      pipelineAgg.add(gp.problem, *rp.schedule);
    }
    ListScheduler list(gp.problem);
    const ScheduleResult rl = list.schedule();
    if (rl.ok() &&
        ScheduleValidator(gp.problem).validate(*rl.schedule).valid()) {
      listAgg.add(gp.problem, *rl.schedule);
    }
  }
  pipelineAgg.print("power-aware pipeline (paper)");
  listAgg.print("greedy list scheduler");
  std::printf("  (the greedy baseline loses instances to max-separation "
              "violations it cannot see,\n   and wastes free power it has "
              "no notion of)\n\n");
}

void ablateCandidateOrder() {
  std::printf("--- A5: timing-scheduler candidate order (random instances) "
              "---\n");
  std::printf("  %-34s %8s %12s %12s\n", "order", "solved", "mean tau",
              "mean backtracks");
  struct Variant {
    const char* label;
    CandidateOrder order;
  };
  for (const Variant v :
       {Variant{"by longest path (default)", CandidateOrder::kByLongestPath},
        Variant{"by declaration index", CandidateOrder::kByIndex},
        Variant{"random", CandidateOrder::kRandom}}) {
    int solved = 0;
    double sumTau = 0, sumBacktracks = 0;
    for (std::uint32_t seed = 1; seed <= kSeeds; ++seed) {
      const GeneratedProblem gp = generateRandomProblem(ablationConfig(seed));
      MinPowerOptions opt;
      opt.maxPower.timing.candidateOrder = v.order;
      opt.maxPower.timing.randomSeed = seed;
      MinPowerScheduler pipeline(gp.problem, opt);
      const ScheduleResult r = pipeline.schedule();
      if (!r.ok()) continue;
      ++solved;
      sumTau += static_cast<double>(r.schedule->finish().ticks());
      sumBacktracks += static_cast<double>(r.stats.backtracks);
    }
    if (solved == 0) {
      std::printf("  %-34s %4d/%-3u\n", v.label, solved, kSeeds);
      continue;
    }
    std::printf("  %-34s %4d/%-3u %12.1f %12.1f\n", v.label, solved, kSeeds,
                sumTau / solved, sumBacktracks / solved);
  }
  std::printf("\n");
}

void ablateJitterControl() {
  std::printf("--- A4: min-power stage as battery-stress control (paper's "
              "jitter motivation) ---\n");
  std::printf("  %-28s %10s %10s %10s %14s\n", "instance / stage", "Ec(J)",
              "peak draw", "jitter", "I^2t proxy");
  const auto report = [](const char* label, const Problem& p,
                         const Schedule& s) {
    const BatteryStressReport r =
        analyzeBatteryStress(s.powerProfile(), p.minPower());
    std::printf("  %-28s %10.1f %9.1fW %9.1fW %14llu\n", label,
                r.drawnEnergy.joules(), r.peakDraw.watts(),
                r.jitter.watts(),
                static_cast<unsigned long long>(r.squaredDrawIntegral));
  };

  {
    const Problem p = makePaperExampleProblem();
    MaxPowerScheduler maxOnly(p);
    const ScheduleResult before = maxOnly.schedule();
    MinPowerScheduler pipeline(p);
    const ScheduleResult after = pipeline.schedule();
    if (before.ok()) report("paper example / max-only", p, *before.schedule);
    if (after.ok()) report("paper example / +min-power", p, *after.schedule);
  }
  for (std::uint32_t seed : {3u, 7u}) {
    const GeneratedProblem gp = generateRandomProblem(ablationConfig(seed));
    MaxPowerScheduler maxOnly(gp.problem);
    const ScheduleResult before = maxOnly.schedule();
    MinPowerScheduler pipeline(gp.problem);
    const ScheduleResult after = pipeline.schedule();
    char label[64];
    std::snprintf(label, sizeof label, "random seed %u / max-only", seed);
    if (before.ok()) report(label, gp.problem, *before.schedule);
    std::snprintf(label, sizeof label, "random seed %u / +min-power", seed);
    if (after.ok()) report(label, gp.problem, *after.schedule);
  }
  std::printf("\n");
}

void printPhaseTimings() {
  std::printf("--- A6: where the wall-clock goes (pipeline phases, %u "
              "random instances) ---\n",
              kSeeds);
  obs::MetricsRegistry metrics;
  for (std::uint32_t seed = 1; seed <= kSeeds; ++seed) {
    const GeneratedProblem gp = generateRandomProblem(ablationConfig(seed));
    MinPowerOptions opt;
    opt.obs.metrics = &metrics;
    MinPowerScheduler pipeline(gp.problem, opt);
    (void)pipeline.schedule();
  }
  std::printf("%s\n", metrics.renderTable().c_str());
}

void BM_PipelineSlackVictims(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(ablationConfig(5));
  for (auto _ : state) {
    MinPowerScheduler pipeline(gp.problem);
    benchmark::DoNotOptimize(pipeline.schedule());
  }
}
BENCHMARK(BM_PipelineSlackVictims)->Unit(benchmark::kMillisecond);

void BM_PipelineRandomVictims(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(ablationConfig(5));
  MinPowerOptions opt;
  opt.maxPower.victimOrder = VictimOrder::kRandom;
  for (auto _ : state) {
    MinPowerScheduler pipeline(gp.problem, opt);
    benchmark::DoNotOptimize(pipeline.schedule());
  }
}
BENCHMARK(BM_PipelineRandomVictims)->Unit(benchmark::kMillisecond);

void BM_ListScheduler(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(ablationConfig(5));
  for (auto _ : state) {
    ListScheduler list(gp.problem);
    benchmark::DoNotOptimize(list.schedule());
  }
}
BENCHMARK(BM_ListScheduler);

}  // namespace

int main(int argc, char** argv) {
  ablateVictimOrder();
  ablateMinPowerHeuristics();
  ablateAgainstListScheduler();
  ablateJitterControl();
  ablateCandidateOrder();
  printPhaseTimings();
  return paws::bench::runBenchMain("ablation", argc, argv);
}
