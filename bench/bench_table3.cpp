// Reproduces Table 3: "Performance and energy cost of the schedules".
//
// For each solar level (14.9 / 12 / 9 W) the paper reports energy cost
// Ec(Pmin), min-power utilization rho(Pmin) and finish time tau for the JPL
// fully-serialized baseline and for the power-aware schedule of one
// two-step rover iteration. The paper's best-case row also quotes the
// second-iteration cost of the unrolled schedule (pre-heating on free
// power); we derive that from a 3-iteration unroll, exactly like Fig. 9.
//
// Paper values for reference:
//   solar   JPL:  Ec / rho / tau     Power-aware: Ec / rho / tau
//   14.9W        0 / 60% / 75        79.5 (1st) 6 (2nd) / 81% / 50
//   12W         55 / 91% / 75        147 / 94% / 60
//   9W         388 / 100% / 75       388 / 100% / 75
//
// After the table, google-benchmark measures the scheduling time per case.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>

#include "rover/plans.hpp"
#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"

using namespace paws;
using namespace paws::rover;

namespace {

void printTable3() {
  std::printf("=== Table 3: performance and energy cost of the schedules "
              "(one 2-step iteration) ===\n");
  std::printf("%-8s | %-28s | %-36s\n", "solar", "JPL (serial baseline)",
              "Power-aware (this implementation)");
  std::printf("%-8s | %10s %8s %7s | %18s %8s %7s\n", "Pmin(W)", "Ec(J)",
              "rho", "tau(s)", "Ec(J)", "rho", "tau(s)");

  const PolicyBuild pa = buildPowerAwarePolicy();
  for (const RoverCase c :
       {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
    const Problem problem = makeRoverProblem(c, 1);
    const Watts pmin = problem.minPower();

    const ScheduleResult jpl = SerialScheduler(problem).schedule();
    PowerAwareScheduler scheduler(problem);
    const ScheduleResult single = scheduler.schedule();

    char paEc[64];
    const PlanDerivation& d =
        pa.derivations[static_cast<std::size_t>(c)];
    if (c == RoverCase::kBest && d.ok) {
      // Mirror the paper's "79.5 (1st) 6 (2nd)" presentation.
      std::snprintf(paEc, sizeof paEc, "%.1f(1st) %.1f(2nd)",
                    d.firstCost.joules(), d.steadyCost.joules());
    } else {
      std::snprintf(paEc, sizeof paEc, "%.1f",
                    single.ok() ? single.schedule->energyCost(pmin).joules()
                                : -1.0);
    }

    std::printf("%-8.1f | %10.1f %7.1f%% %7lld | %18s %7.1f%% %7lld\n",
                pmin.watts(),
                jpl.ok() ? jpl.schedule->energyCost(pmin).joules() : -1.0,
                jpl.ok() ? 100.0 * jpl.schedule->utilization(pmin) : -1.0,
                jpl.ok() ? static_cast<long long>(
                               jpl.schedule->finish().ticks())
                         : -1LL,
                paEc,
                single.ok() ? 100.0 * single.schedule->utilization(pmin)
                            : -1.0,
                single.ok() ? static_cast<long long>(
                                  single.schedule->finish().ticks())
                            : -1LL);
  }
  std::printf("(paper: best 0/60%%/75 vs 79.5(1st) 6(2nd)/81%%/50; typical "
              "55/91%%/75 vs 147/94%%/60;\n worst 388/100%%/75 vs "
              "388/100%%/75 — see EXPERIMENTS.md)\n\n");
}

void BM_SerialSchedule(benchmark::State& state) {
  const Problem p =
      makeRoverProblem(static_cast<RoverCase>(state.range(0)), 1);
  for (auto _ : state) {
    SerialScheduler serial(p);
    benchmark::DoNotOptimize(serial.schedule());
  }
}
BENCHMARK(BM_SerialSchedule)->Arg(0)->Arg(1)->Arg(2);

void BM_PowerAwarePipeline(benchmark::State& state) {
  const Problem p =
      makeRoverProblem(static_cast<RoverCase>(state.range(0)), 1);
  for (auto _ : state) {
    PowerAwareScheduler scheduler(p);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_PowerAwarePipeline)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printTable3();
  return paws::bench::runBenchMain("table3", argc, argv);
}
