// Reproduces Table 4: "Comparison to schedules under a mission scenario".
//
// Mission: travel 48 steps while solar decays 14.9 W (0-599 s) -> 12 W
// (600-1199 s) -> 9 W (1200 s-). The JPL baseline repeats its fixed 75 s
// serial schedule; the power-aware rover selects, at each iteration
// boundary, the static schedule matching the current solar level.
//
// Paper values:            distance  time    energy cost
//   JPL    0-599s @14.9W      16      600        0
//          600-1199s @12W     16      600      440
//          1200s- @9W         16      600     3114 (= 8x388 = 3104, see
//                                                   EXPERIMENTS.md)
//          total              48     1800     3554
//   PA     phases             24/20/4 600/600/150, 145.5/1470/776
//          total              48     1350     2391.5   (33.3% / 32.7% win)
//
// After the table, google-benchmark measures policy construction (static
// scheduling) and the mission simulation itself.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "rover/mission.hpp"
#include "rover/plans.hpp"

using namespace paws;
using namespace paws::rover;

namespace {

void printMissionRows(const char* name, const MissionResult& r) {
  for (const MissionPhase& ph : r.phases) {
    std::printf("  %-12s %8.1f | %8d %8lld %12.1f\n", name, ph.solar.watts(),
                ph.steps, static_cast<long long>(ph.time.ticks()),
                ph.cost.joules());
    name = "";
  }
  std::printf("  %-12s %8s | %8d %8lld %12.1f\n", "", "total", r.steps,
              static_cast<long long>(r.time.ticks()), r.cost.joules());
}

void printTable4() {
  std::printf("=== Table 4: mission scenario, 48 steps, decaying solar "
              "power ===\n");
  const PolicyBuild jpl = buildJplPolicy();
  const PolicyBuild pa = buildPowerAwarePolicy();
  if (!jpl.ok() || !pa.ok()) {
    std::printf("policy construction failed!\n");
    return;
  }
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  const MissionResult rj = sim.run(jpl.policy, 48);
  const MissionResult rp = sim.run(pa.policy, 48);

  std::printf("  %-12s %8s | %8s %8s %12s\n", "schedule", "solar(W)",
              "steps", "time(s)", "energy(J)");
  printMissionRows("JPL", rj);
  printMissionRows("power-aware", rp);

  const double speedup =
      100.0 * (1.0 - static_cast<double>(rp.time.ticks()) /
                         static_cast<double>(rj.time.ticks()));
  const double saving =
      100.0 * (1.0 - static_cast<double>(rp.cost.milliwattTicks()) /
                         static_cast<double>(rj.cost.milliwattTicks()));
  std::printf("  improvement: %.1f%% time, %.1f%% energy  (paper: 33.3%% / "
              "32.7%%)\n\n",
              speedup, saving);
}

// Beyond the paper: is the Table 4 conclusion robust to WHEN the light
// fades? Monte-Carlo over randomized solar decay profiles (phase lengths
// uniform in [300, 900] s, always 14.9 -> 12 -> 9 W), same 48-step mission.
void printMonteCarlo() {
  const PolicyBuild jpl = buildJplPolicy();
  const PolicyBuild pa = buildPowerAwarePolicy();
  if (!jpl.ok() || !pa.ok()) return;

  std::mt19937 rng(2001);
  const int kRuns = 200;
  int fasterAndCheaper = 0, faster = 0, cheaper = 0;
  std::vector<double> speedups, savings;
  for (int run = 0; run < kRuns; ++run) {
    const std::int64_t p1 = 300 + static_cast<std::int64_t>(rng() % 601);
    const std::int64_t p2 = 300 + static_cast<std::int64_t>(rng() % 601);
    const SolarSource solar({{Time(0), Watts::fromWatts(14.9)},
                             {Time(p1), Watts::fromWatts(12.0)},
                             {Time(p1 + p2), Watts::fromWatts(9.0)}});
    MissionSimulator sim(solar, missionBattery());
    const MissionResult rj = sim.run(jpl.policy, 48);
    const MissionResult rp = sim.run(pa.policy, 48);
    const bool f = rp.time < rj.time;
    const bool c = rp.cost < rj.cost;
    faster += f;
    cheaper += c;
    fasterAndCheaper += f && c;
    speedups.push_back(100.0 * (1.0 - static_cast<double>(rp.time.ticks()) /
                                          static_cast<double>(rj.time.ticks())));
    savings.push_back(
        100.0 * (1.0 - static_cast<double>(rp.cost.milliwattTicks()) /
                           static_cast<double>(rj.cost.milliwattTicks())));
  }
  std::sort(speedups.begin(), speedups.end());
  std::sort(savings.begin(), savings.end());
  const auto pct = [](const std::vector<double>& v, double q) {
    return v[static_cast<std::size_t>(q * (v.size() - 1))];
  };
  std::printf("=== Monte-Carlo extension: 200 randomized solar-decay "
              "timelines ===\n");
  std::printf("  power-aware faster           : %d/%d\n", faster, kRuns);
  std::printf("  power-aware cheaper          : %d/%d\n", cheaper, kRuns);
  std::printf("  faster AND cheaper           : %d/%d\n", fasterAndCheaper,
              kRuns);
  std::printf("  speedup  %%  (p10/p50/p90)   : %.1f / %.1f / %.1f\n",
              pct(speedups, 0.1), pct(speedups, 0.5), pct(speedups, 0.9));
  std::printf("  saving   %%  (p10/p50/p90)   : %.1f / %.1f / %.1f\n\n",
              pct(savings, 0.1), pct(savings, 0.5), pct(savings, 0.9));
}

void BM_BuildJplPolicy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildJplPolicy());
  }
}
BENCHMARK(BM_BuildJplPolicy)->Unit(benchmark::kMillisecond);

void BM_BuildPowerAwarePolicy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildPowerAwarePolicy());
  }
}
BENCHMARK(BM_BuildPowerAwarePolicy)->Unit(benchmark::kMillisecond);

void BM_MissionSimulation(benchmark::State& state) {
  const PolicyBuild pa = buildPowerAwarePolicy();
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(pa.policy, 48));
  }
}
BENCHMARK(BM_MissionSimulation);

}  // namespace

int main(int argc, char** argv) {
  printTable4();
  printMonteCarlo();
  return paws::bench::runBenchMain("table4", argc, argv);
}
