// Machine-readable bench output: every bench binary funnels its
// google-benchmark run through runBenchMain(), which keeps the normal
// console output (via ConsoleReporter) while also collecting one row per
// measured run. Rows are written to
//
//   $PAWS_BENCH_DIR/.bench-fragments/<suite>.json
//
// and all fragments present are then stitched into
// $PAWS_BENCH_DIR/BENCH_results.json (PAWS_BENCH_DIR defaults to the
// current directory, so running the benches from the repo root drops
// BENCH_results.json at the root). Stitching is raw-text concatenation of
// the per-suite fragments — each fragment is a complete `"suite": {...}`
// JSON member — so no JSON parser is needed and a partial bench run still
// yields a valid file covering the suites that ran.
//
// Schema, per benchmark name:
//   { "wall_ns": <per-iteration wall time>, "cpu_ns": ...,
//     "iterations": ..., "counters": { "threads": ..., "lp_runs": ... } }
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

namespace paws::bench {

struct ResultRow {
  std::string name;
  double wallNs = 0;
  double cpuNs = 0;
  std::int64_t iterations = 0;
  std::map<std::string, double> counters;
};

/// ConsoleReporter that additionally keeps every measured (non-aggregate)
/// run for the JSON fragment.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      if (run.error_occurred) continue;
      ResultRow row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.wallNs = run.real_accumulated_time * 1e9 / iters;
      row.cpuNs = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [name, counter] : run.counters) {
        row.counters[name] = counter.value;
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<ResultRow>& rows() const { return rows_; }

 private:
  std::vector<ResultRow> rows_;
};

namespace detail {

inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

inline std::filesystem::path benchDir() {
  const char* dir = std::getenv("PAWS_BENCH_DIR");
  return std::filesystem::path(dir != nullptr && *dir != '\0' ? dir : ".");
}

/// Writes this suite's fragment: a complete `"suite": { ... }` member.
inline void writeFragment(const std::string& suite,
                          const std::vector<ResultRow>& rows) {
  const std::filesystem::path dir = benchDir() / ".bench-fragments";
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / (suite + ".json"), std::ios::trunc);
  out << "\"" << jsonEscape(suite) << "\": {";
  bool firstRow = true;
  for (const ResultRow& row : rows) {
    out << (firstRow ? "\n" : ",\n");
    firstRow = false;
    out << "    \"" << jsonEscape(row.name) << "\": {\"wall_ns\": "
        << row.wallNs << ", \"cpu_ns\": " << row.cpuNs
        << ", \"iterations\": " << row.iterations << ", \"counters\": {";
    bool firstCounter = true;
    for (const auto& [name, value] : row.counters) {
      if (!firstCounter) out << ", ";
      firstCounter = false;
      out << "\"" << jsonEscape(name) << "\": " << value;
    }
    out << "}}";
  }
  out << "\n  }";
}

/// Stitches every fragment currently on disk into BENCH_results.json.
inline void aggregateFragments() {
  const std::filesystem::path dir = benchDir() / ".bench-fragments";
  std::vector<std::filesystem::path> fragments;
  if (std::filesystem::is_directory(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".json") {
        fragments.push_back(entry.path());
      }
    }
  }
  std::sort(fragments.begin(), fragments.end());
  std::ofstream out(benchDir() / "BENCH_results.json", std::ios::trunc);
  out << "{\n  \"suites\": {\n";
  bool first = true;
  for (const std::filesystem::path& path : fragments) {
    std::ifstream in(path);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (body.empty()) continue;
    if (!first) out << ",\n";
    first = false;
    out << "  " << body;
  }
  out << "\n  }\n}\n";
}

}  // namespace detail

/// Drop-in replacement for the Initialize/RunSpecifiedBenchmarks pair:
/// runs the registered benchmarks with console output, then writes this
/// suite's JSON fragment and re-aggregates BENCH_results.json.
inline int runBenchMain(const std::string& suite, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  detail::writeFragment(suite, reporter.rows());
  detail::aggregateFragments();
  return 0;
}

}  // namespace paws::bench
