// paws::cache methodology bench (no paper table): what schedule reuse
// buys, with determinism witnesses the regression gate can hold exact.
//
//  * Hit-path latency: BM_CacheHitPipeline / BM_CacheHitOptimal serve a
//    pre-populated exact entry per iteration (canonicalize + lookup +
//    rebind + revalidate). Compare against BM_PipelineColdSolve — the
//    work a hit replaces.
//  * Batch reuse: BM_BatchFirstPass / BM_BatchSecondPass run the pawsc
//    batch workload over examples/data twice; the wall-time ratio of the
//    two rows is the second-pass speedup, and the cache_hits /
//    cache_misses counters pin the traffic exactly (first pass all
//    misses, second pass 100% hits).
//  * Warm starts: BM_ColdExhaustivePaper / BM_WarmExhaustivePaper run the
//    paper-example branch-and-bound cold and seeded with the polished
//    heuristic incumbent. nodes_explored is exact in both rows; the warm
//    row must stay strictly below the cold row (byte-identical result,
//    fewer nodes — the tentpole claim).
//
// cache_hits, cache_misses and nodes_explored are in bench_diff's exact
// counter set: any drift is a hard CI failure, not a wall-time warning.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "cache/cached_solve.hpp"
#include "cache/canonical.hpp"
#include "cache/schedule_cache.hpp"
#include "io/parser.hpp"
#include "model/paper_example.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/polish.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;

namespace {

/// The pawsc batch workload: every bundled example, parsed once.
const std::vector<Problem>& exampleProblems() {
  static const std::vector<Problem> problems = [] {
    std::vector<Problem> out;
    for (const char* path : {"examples/data/deep_space_probe.paws",
                             "examples/data/satellite.paws",
                             "examples/data/sensor_node.paws"}) {
      io::ParseResult parsed = io::parseProblemFile(path);
      if (parsed.ok()) out.push_back(std::move(*parsed.problem));
    }
    return out;
  }();
  return problems;
}

/// Per-iteration traffic deltas, reported as exact counters.
struct TrafficProbe {
  cache::CacheStats before;
  explicit TrafficProbe(const cache::ScheduleCache& c) : before(c.stats()) {}
  void report(benchmark::State& state, const cache::ScheduleCache& c) const {
    const cache::CacheStats after = c.stats();
    const auto iters = static_cast<double>(state.iterations());
    state.counters["cache_hits"] =
        static_cast<double>(after.hits - before.hits) / iters;
    state.counters["cache_misses"] =
        static_cast<double>(after.misses - before.misses) / iters;
  }
};

void BM_PipelineColdSolve(benchmark::State& state) {
  const Problem problem = makePaperExampleProblem();
  cache::SolveSpec spec;  // pipeline
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache::solveThroughCache(nullptr, problem, spec));
  }
}
BENCHMARK(BM_PipelineColdSolve)->Unit(benchmark::kMicrosecond);

void BM_CacheHitPipeline(benchmark::State& state) {
  const Problem problem = makePaperExampleProblem();
  cache::ScheduleCache cache;
  cache::SolveSpec spec;  // pipeline
  cache::solveThroughCache(&cache, problem, spec);  // populate
  const TrafficProbe probe(cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::solveThroughCache(&cache, problem, spec));
  }
  probe.report(state, cache);
}
BENCHMARK(BM_CacheHitPipeline)->Unit(benchmark::kMicrosecond);

void BM_CacheHitOptimal(benchmark::State& state) {
  const Problem problem = makePaperExampleProblem();
  cache::ScheduleCache cache;
  cache::SolveSpec spec;
  spec.scheduler = "optimal";
  spec.jobs = 1;
  cache::solveThroughCache(&cache, problem, spec);  // cold solve + insert
  const TrafficProbe probe(cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::solveThroughCache(&cache, problem, spec));
  }
  probe.report(state, cache);
}
BENCHMARK(BM_CacheHitOptimal)->Unit(benchmark::kMicrosecond);

void BM_BatchFirstPass(benchmark::State& state) {
  const std::vector<Problem>& problems = exampleProblems();
  if (problems.size() != 3) {
    state.SkipWithError("examples/data not found (run from the repo root)");
    return;
  }
  cache::SolveSpec spec;  // pipeline, like the pawsc batch default
  double hits = 0, misses = 0;
  for (auto _ : state) {
    cache::ScheduleCache cache;  // every pass starts cold
    for (const Problem& p : problems) {
      benchmark::DoNotOptimize(cache::solveThroughCache(&cache, p, spec));
    }
    const cache::CacheStats stats = cache.stats();
    hits = static_cast<double>(stats.hits);
    misses = static_cast<double>(stats.misses);
  }
  state.counters["cache_hits"] = hits;
  state.counters["cache_misses"] = misses;
}
BENCHMARK(BM_BatchFirstPass)->Unit(benchmark::kMicrosecond);

void BM_BatchSecondPass(benchmark::State& state) {
  const std::vector<Problem>& problems = exampleProblems();
  if (problems.size() != 3) {
    state.SkipWithError("examples/data not found (run from the repo root)");
    return;
  }
  cache::SolveSpec spec;
  cache::ScheduleCache cache;
  for (const Problem& p : problems) {
    cache::solveThroughCache(&cache, p, spec);  // first pass, off the clock
  }
  const TrafficProbe probe(cache);
  for (auto _ : state) {
    for (const Problem& p : problems) {
      benchmark::DoNotOptimize(cache::solveThroughCache(&cache, p, spec));
    }
  }
  const cache::CacheStats after = cache.stats();
  const auto iters = static_cast<double>(state.iterations());
  state.counters["cache_hits"] =
      static_cast<double>(after.hits - probe.before.hits) / iters;
  state.counters["cache_misses"] =
      static_cast<double>(after.misses - probe.before.misses) / iters;
  state.counters["hit_rate"] =
      after.hits - probe.before.hits == 0
          ? 0.0
          : static_cast<double>(after.hits - probe.before.hits) /
                (static_cast<double>(after.hits - probe.before.hits) +
                 static_cast<double>(after.misses - probe.before.misses));
}
BENCHMARK(BM_BatchSecondPass)->Unit(benchmark::kMicrosecond);

/// The warm-start seed solveThroughCache builds for the paper example:
/// lex-best of {pipeline, serial} within the horizon, polished.
std::optional<Schedule> paperSeed(const Problem& problem, Time horizon) {
  ScheduleValidator validator(problem);
  std::optional<Schedule> best;
  const auto offer = [&](ScheduleResult r) {
    if (!r.ok() || r.schedule->finish() > horizon) return;
    if (!validator.validate(*r.schedule).valid()) return;
    const Energy cost = r.schedule->energyCost(problem.minPower());
    if (!best.has_value() || cost < best->energyCost(problem.minPower()) ||
        (cost == best->energyCost(problem.minPower()) &&
         r.schedule->finish() < best->finish())) {
      best = *r.schedule;
    }
  };
  offer(PowerAwareScheduler(problem).schedule());
  offer(SerialScheduler(problem).schedule());
  if (!best.has_value()) return std::nullopt;
  PolishOptions options;
  options.horizon = horizon;
  return polishSchedule(problem, *best, options);
}

void runPaperExhaustive(benchmark::State& state, bool warm) {
  const Problem problem = makePaperExampleProblem();
  const Time horizon(30);  // same setting as the equivalence suites
  std::optional<Schedule> seed;
  if (warm) {
    seed = paperSeed(problem, horizon);
    if (!seed.has_value()) {
      state.SkipWithError("no valid in-horizon seed");
      return;
    }
  }
  double nodes = 0;
  for (auto _ : state) {
    ExhaustiveOptions options;
    options.jobs = 1;  // deterministic node counts
    options.horizon = horizon;
    if (seed.has_value()) {
      options.initialIncumbent = seed->energyCost(problem.minPower());
      options.initialIncumbentFinish = seed->finish();
    }
    ExhaustiveScheduler scheduler(problem, options);
    benchmark::DoNotOptimize(scheduler.schedule());
    nodes = static_cast<double>(scheduler.outcome().nodesExplored);
  }
  state.counters["nodes_explored"] = nodes;
}

void BM_ColdExhaustivePaper(benchmark::State& state) {
  runPaperExhaustive(state, /*warm=*/false);
}
BENCHMARK(BM_ColdExhaustivePaper)->Unit(benchmark::kMillisecond);

void BM_WarmExhaustivePaper(benchmark::State& state) {
  runPaperExhaustive(state, /*warm=*/true);
}
BENCHMARK(BM_WarmExhaustivePaper)->Unit(benchmark::kMillisecond);

void printCacheHeader() {
  std::printf(
      "paws::cache — schedule reuse and warm starts\n"
      "  CacheHit rows: exact-hit serve latency vs PipelineColdSolve.\n"
      "  Batch rows: pawsc batch over examples/data, cold then hot; the\n"
      "  wall ratio is the second-pass speedup, counters pin the traffic\n"
      "  (first pass all misses, second pass 100%% hits).\n"
      "  Exhaustive rows: paper-example search cold vs warm-started; the\n"
      "  warm row's nodes_explored must stay strictly below cold.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  printCacheHeader();
  return paws::bench::runBenchMain("cache", argc, argv);
}
