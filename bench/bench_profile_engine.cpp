// Incremental ProfileEngine vs PowerProfileBuilder full rebuild
// (methodology bench, no paper table): the cost of answering the scheduler
// inner-loop question — "move one task; any spike? what is Ec and rho
// now?" — via moveTask deltas on the live engine against re-running the
// event-sort rebuild per probe, swept over task count. Also measures the
// exhaustive search's push/pop pattern (addTask + aggregate reads +
// removeTask) and checkpointed candidate evaluation (checkpoint, move,
// read, restore), the MinPower inner loop's exact shape.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "gen/random_problem.hpp"
#include "power/profile.hpp"
#include "power/profile_engine.hpp"
#include "sched/schedule.hpp"

using namespace paws;

namespace {

struct Instance {
  GeneratedProblem gp;
  std::vector<Time> starts;
  Watts pmin;
  Watts pmax;
};

Instance makeInstance(std::size_t tasks) {
  GeneratorConfig cfg;
  cfg.seed = 42;
  cfg.numTasks = tasks;
  cfg.numResources = 2 + tasks / 8;
  cfg.pmaxHeadroomMw = 1000;
  Instance inst{generateRandomProblem(cfg), {}, Watts::zero(), Watts::zero()};
  inst.starts = inst.gp.witnessStarts;
  inst.pmin = inst.gp.problem.minPower();
  inst.pmax = inst.gp.problem.maxPower();
  return inst;
}

/// Evaluating one placement change via full rebuild — the legacy cost of
/// an exhaustive-search node or a spike-round rescan: rebuild the whole
/// profile, scan for the first spike and the energy cost.
void BM_ProfileRebuild(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  const Problem& problem = inst.gp.problem;
  std::vector<Time> starts = inst.starts;
  std::size_t victim = 1;
  for (auto _ : state) {
    const Time saved = starts[victim];
    starts[victim] = saved + Duration(3);
    const PowerProfile profile = profileOf(problem, starts);
    benchmark::DoNotOptimize(profile.firstSpike(inst.pmax));
    benchmark::DoNotOptimize(profile.energyAbove(inst.pmin));
    starts[victim] = saved;
    victim = victim % (problem.numVertices() - 1) + 1;
  }
}
BENCHMARK(BM_ProfileRebuild)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

/// The same evaluation as engine deltas — the exhaustive search's per-node
/// pattern: one contribution delta in, read the cached spike/cost
/// aggregates, one delta out on backtrack. This is the headline
/// incremental-vs-rebuild comparison (same queries as BM_ProfileRebuild).
void BM_ProfileEngine(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  const Problem& problem = inst.gp.problem;
  power::ProfileEngine engine(problem.backgroundPower(), inst.pmin,
                              inst.pmax);
  engine.rebuild(problem, inst.starts);
  std::size_t victim = 1;
  for (auto _ : state) {
    const TaskId v(static_cast<std::uint32_t>(victim));
    const Interval iv = engine.taskInterval(v);
    engine.removeTask(v);
    benchmark::DoNotOptimize(engine.energyAbove());
    engine.addTask(v, iv, problem.task(v).power);
    benchmark::DoNotOptimize(engine.firstSpike());
    victim = victim % (problem.numVertices() - 1) + 1;
  }
}
BENCHMARK(BM_ProfileEngine)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

/// MinPower's candidate-evaluation shape: checkpoint, moveTask, read
/// spike + utilization, restore (the undo log replays the move's
/// inverses). Costlier than the push/pop pattern — four contribution
/// deltas per probe instead of two — but still sublinear in task count.
void BM_ProfileEngineCheckpointProbe(benchmark::State& state) {
  const Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  const Problem& problem = inst.gp.problem;
  power::ProfileEngine engine(problem.backgroundPower(), inst.pmin,
                              inst.pmax);
  engine.rebuild(problem, inst.starts);
  std::size_t victim = 1;
  for (auto _ : state) {
    const TaskId v(static_cast<std::uint32_t>(victim));
    const auto cp = engine.checkpoint();
    engine.moveTask(v, inst.starts[victim] + Duration(3));
    benchmark::DoNotOptimize(engine.firstSpike());
    benchmark::DoNotOptimize(engine.utilization());
    engine.restore(cp);
    victim = victim % (problem.numVertices() - 1) + 1;
  }
}
BENCHMARK(BM_ProfileEngineCheckpointProbe)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void printSpeedupSummary() {
  std::printf(
      "=== incremental engine vs full rebuild, one placement "
      "evaluation ===\n");
  std::printf("%8s %14s %14s %9s\n", "tasks", "rebuild_ns", "engine_ns",
              "speedup");
  for (const std::size_t tasks : {8u, 16u, 64u, 256u}) {
    const Instance inst = makeInstance(tasks);
    const Problem& problem = inst.gp.problem;
    const int kReps = 2000;

    std::vector<Time> starts = inst.starts;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      const std::size_t victim = rep % (problem.numVertices() - 1) + 1;
      const Time saved = starts[victim];
      starts[victim] = saved + Duration(3);
      const PowerProfile profile = profileOf(problem, starts);
      benchmark::DoNotOptimize(profile.firstSpike(inst.pmax));
      benchmark::DoNotOptimize(profile.energyAbove(inst.pmin));
      starts[victim] = saved;
    }
    const auto t1 = std::chrono::steady_clock::now();

    power::ProfileEngine engine(problem.backgroundPower(), inst.pmin,
                                inst.pmax);
    engine.rebuild(problem, inst.starts);
    const auto t2 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      const std::size_t victim = rep % (problem.numVertices() - 1) + 1;
      const TaskId v(static_cast<std::uint32_t>(victim));
      const Interval iv = engine.taskInterval(v);
      engine.removeTask(v);
      benchmark::DoNotOptimize(engine.energyAbove());
      engine.addTask(v, iv, problem.task(v).power);
      benchmark::DoNotOptimize(engine.firstSpike());
    }
    const auto t3 = std::chrono::steady_clock::now();

    const double rebuildNs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        kReps;
    const double engineNs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2)
                .count()) /
        kReps;
    std::printf("%8zu %14.0f %14.0f %8.1fx\n", tasks, rebuildNs, engineNs,
                engineNs > 0 ? rebuildNs / engineNs : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printSpeedupSummary();
  return paws::bench::runBenchMain("profile_engine", argc, argv);
}
