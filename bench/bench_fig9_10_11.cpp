// Reproduces Figs. 9, 10 and 11: the rover's power-aware schedules (power
// views) for the best, typical and worst environmental cases.
//
// Paper narrative checked here:
//   Fig. 9  (best, Pmax 24.9 W)  — two unrolled iterations; heating tasks
//           pre-run on free solar power; operations overlap; ~50 s each.
//   Fig. 10 (typical, Pmax 22 W) — partial parallelism; some heats
//           serialized; 60 s.
//   Fig. 11 (worst, Pmax 19 W)   — budget forces full serialization; 75 s
//           (identical to the hand-crafted JPL schedule).
//
// Then google-benchmark times the unrolled scheduling runs.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>

#include "gantt/ascii_gantt.hpp"
#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;
using namespace paws::rover;

namespace {

void printCase(RoverCase c, int iterations) {
  const Problem p = makeRoverProblem(c, iterations);
  PowerAwareScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  std::printf("--- %s case: Pmax=%.1fW Pmin=%.1fW, %d iteration(s) ---\n",
              toString(c), p.maxPower().watts(), p.minPower().watts(),
              iterations);
  if (!r.ok()) {
    std::printf("scheduling failed: %s\n\n", r.message.c_str());
    return;
  }
  const Schedule& s = *r.schedule;
  const bool valid = ScheduleValidator(p).validate(s).powerValid();
  std::printf("tau=%llds (%.1fs/iteration)  Ec=%.1fJ  rho=%.1f%%  %s\n",
              static_cast<long long>(s.finish().ticks()),
              static_cast<double>(s.finish().ticks()) / iterations,
              s.energyCost(p.minPower()).joules(),
              100.0 * s.utilization(p.minPower()),
              valid ? "valid" : "INVALID");
  AsciiGanttOptions opt;
  opt.ticksPerColumn = iterations > 1 ? 2 : 1;
  std::printf("%s\n", renderPowerView(s, opt).c_str());
}

void printFigures() {
  printCase(RoverCase::kBest, 2);     // Fig. 9 shows two iterations
  printCase(RoverCase::kTypical, 1);  // Fig. 10
  printCase(RoverCase::kWorst, 1);    // Fig. 11
}

// The loop-unrolling study behind Fig. 9: how the per-iteration energy
// cost converges as more iterations are scheduled together (later
// iterations pre-heat on free solar power).
void printUnrollSweep() {
  std::printf("--- best-case unroll sweep (per-iteration Ec at Pmin=14.9W) "
              "---\n");
  std::printf("  %8s %10s %14s %16s\n", "unroll", "tau(s)", "total Ec(J)",
              "Ec/iteration(J)");
  for (int iters = 1; iters <= 5; ++iters) {
    const Problem p = makeRoverProblem(RoverCase::kBest, iters);
    PowerAwareScheduler scheduler(p);
    const ScheduleResult r = scheduler.schedule();
    if (!r.ok()) {
      std::printf("  %8d  failed: %s\n", iters, r.message.c_str());
      continue;
    }
    const double ec = r.schedule->energyCost(p.minPower()).joules();
    std::printf("  %8d %10lld %14.1f %16.1f\n", iters,
                static_cast<long long>(r.schedule->finish().ticks()), ec,
                ec / iters);
  }
  std::printf("\n");
}

void BM_RoverSchedule(benchmark::State& state) {
  const Problem p = makeRoverProblem(static_cast<RoverCase>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  for (auto _ : state) {
    PowerAwareScheduler scheduler(p);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_RoverSchedule)
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 3})
    ->Args({1, 1})
    ->Args({1, 3})
    ->Args({2, 1})
    ->Args({2, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printFigures();
  printUnrollSweep();
  return paws::bench::runBenchMain("fig9_10_11", argc, argv);
}
