// Scalability of the scheduling stack (methodology bench, no paper table):
// runtime of longest-path recomputation, timing scheduling, and the full
// pipeline as the problem grows, on feasible-by-construction random
// instances. Prints a quality summary first (success rates over seeds) so
// regressions in heuristic strength are as visible as slowdowns.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "exec/jobs.hpp"
#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "gen/random_problem.hpp"
#include "graph/longest_path.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/timing_scheduler.hpp"
#include "validate/validator.hpp"

using namespace paws;

namespace {

GeneratorConfig configFor(std::size_t tasks, std::uint32_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = tasks;
  cfg.numResources = 2 + tasks / 8;
  cfg.pmaxHeadroomMw = 1000;
  return cfg;
}

void printQualitySummary() {
  std::printf("=== scheduling success over random feasible instances ===\n");
  std::printf("%8s %10s %12s %12s\n", "tasks", "timing", "max-power",
              "pipeline-valid");
  exec::Pool pool(exec::defaultJobs());
  for (const std::size_t tasks : {10u, 20u, 40u, 80u, 160u}) {
    const int kSeeds = 10;
    // Each seed's full scheduling run is independent: fan the seeds out on
    // the pool, reduce the per-seed verdicts in order.
    struct Verdict {
      bool timingOk = false;
      bool pipelineOk = false;
      bool valid = false;
    };
    const std::vector<Verdict> verdicts = exec::parallelMap(
        pool, kSeeds, [tasks](std::size_t i) -> Verdict {
          const std::uint32_t seed = static_cast<std::uint32_t>(i) + 1;
          const GeneratedProblem gp =
              generateRandomProblem(configFor(tasks, seed));
          Verdict v;
          ConstraintGraph g = gp.problem.buildGraph();
          LongestPathEngine engine(g);
          TimingScheduler ts(gp.problem);
          SchedulerStats stats;
          v.timingOk = ts.run(g, engine, stats).ok;

          MinPowerScheduler pipeline(gp.problem);
          const ScheduleResult r = pipeline.schedule();
          if (r.ok()) {
            v.pipelineOk = true;
            v.valid =
                ScheduleValidator(gp.problem).validate(*r.schedule).valid();
          }
          return v;
        });
    int timingOk = 0, maxOk = 0, validOk = 0;
    for (const Verdict& v : verdicts) {
      timingOk += v.timingOk ? 1 : 0;
      maxOk += v.pipelineOk ? 1 : 0;
      validOk += v.valid ? 1 : 0;
    }
    std::printf("%8zu %9d/%d %11d/%d %11d/%d\n", tasks, timingOk, kSeeds,
                maxOk, kSeeds, validOk, kSeeds);
  }
  std::printf("\n");
}

void BM_LongestPath(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      configFor(static_cast<std::size_t>(state.range(0)), 7));
  ConstraintGraph g = gp.problem.buildGraph();
  LongestPathEngine engine(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.computeFull(kAnchorTask));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LongestPath)->Range(16, 1024)->Complexity();

void BM_TimingScheduler(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      configFor(static_cast<std::size_t>(state.range(0)), 7));
  std::uint64_t lpRuns = 0;
  for (auto _ : state) {
    ConstraintGraph g = gp.problem.buildGraph();
    LongestPathEngine engine(g);
    TimingScheduler ts(gp.problem);
    SchedulerStats stats;
    benchmark::DoNotOptimize(ts.run(g, engine, stats));
    lpRuns += stats.longestPathRuns;
  }
  state.counters["lp_runs"] = benchmark::Counter(
      static_cast<double>(lpRuns), benchmark::Counter::kAvgIterations);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TimingScheduler)->Range(16, 512)->Complexity()
    ->Unit(benchmark::kMicrosecond);

void BM_FullPipeline(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      configFor(static_cast<std::size_t>(state.range(0)), 7));
  std::uint64_t lpRuns = 0;
  for (auto _ : state) {
    MinPowerScheduler pipeline(gp.problem);
    const ScheduleResult r = pipeline.schedule();
    lpRuns += r.stats.longestPathRuns;
    benchmark::DoNotOptimize(r.status);
  }
  state.counters["lp_runs"] = benchmark::Counter(
      static_cast<double>(lpRuns), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullPipeline)->Range(16, 256)->Unit(benchmark::kMillisecond);

void BM_Validator(benchmark::State& state) {
  const GeneratedProblem gp = generateRandomProblem(
      configFor(static_cast<std::size_t>(state.range(0)), 7));
  const Schedule witness(&gp.problem, gp.witnessStarts);
  const ScheduleValidator validator(gp.problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.validate(witness));
  }
}
BENCHMARK(BM_Validator)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  printQualitySummary();
  return paws::bench::runBenchMain("scalability", argc, argv);
}
