// Reproduces the running example of Figs. 2, 5 and 7: the 9-task,
// 3-resource constraint graph of Fig. 1 pushed through the three scheduling
// stages, printing the power-aware Gantt chart after each stage.
//
// Paper narrative checked here:
//   Fig. 2 — a time-valid schedule with ONE power spike and several gaps;
//   Fig. 5 — max-power scheduling removes the spike by delaying h and f;
//   Fig. 7 — min-power scheduling raises utilization at the same finish
//            time; the final schedule stays valid for any Pmax >= its peak
//            and Pmin <= the floor it sustains.
//
// Then google-benchmark times each stage separately.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_report.hpp"
#include "gantt/ascii_gantt.hpp"
#include "graph/longest_path.hpp"
#include "model/paper_example.hpp"
#include "obs/metrics.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/timing_scheduler.hpp"

using namespace paws;

namespace {

void describe(const char* figure, const Problem& p, const Schedule& s) {
  std::printf("--- %s ---\n", figure);
  std::printf("tau=%lld  Ec(Pmin)=%.1fJ  rho=%.1f%%  spikes=%zu  gaps=%zu\n",
              static_cast<long long>(s.finish().ticks()),
              s.energyCost(p.minPower()).joules(),
              100.0 * s.utilization(p.minPower()),
              s.powerProfile().spikes(p.maxPower()).size(),
              s.powerProfile().gaps(p.minPower()).size());
  std::printf("%s\n", renderPowerView(s).c_str());
}

void printFigures() {
  const Problem p = makePaperExampleProblem();

  // Metrics across all three stages: the longest_path.* counters quantify
  // how much work the rollback-aware engine saves (restores replace full
  // Bellman–Ford reruns after every backtrack / rejected move), and the
  // profile.* counters do the same for the incremental power profile
  // (delta updates replace event-sort rebuilds per evaluation).
  obs::MetricsRegistry metrics;
  obs::ObsContext obsCtx;
  obsCtx.metrics = &metrics;

  ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  engine.setObs(obsCtx);
  TimingOptions timingOptions;
  timingOptions.obs = obsCtx;
  TimingScheduler timing(p, timingOptions);
  SchedulerStats stats;
  const auto t = timing.run(g, engine, stats);
  if (!t.ok) {
    std::printf("timing failed: %s\n", t.message.c_str());
    return;
  }
  describe("Fig. 2: time-valid schedule (1 spike expected)", p,
           Schedule(&p, t.starts));

  MaxPowerOptions maxOptions;
  maxOptions.obs = obsCtx;
  MaxPowerScheduler maxPower(p, maxOptions);
  MaxPowerScheduler::Detailed det = maxPower.scheduleDetailed();
  if (!det.result.ok()) {
    std::printf("max-power failed: %s\n", det.result.message.c_str());
    return;
  }
  describe("Fig. 5: after max-power scheduling (h and f delayed)", p,
           *det.result.schedule);
  std::printf("delayed: h@%lld (was 10), f@%lld (was 10)\n\n",
              static_cast<long long>(
                  det.result.schedule->start(*p.findTask("h")).ticks()),
              static_cast<long long>(
                  det.result.schedule->start(*p.findTask("f")).ticks()));

  MinPowerOptions minOptions;
  minOptions.obs = obsCtx;
  MinPowerScheduler minPower(p, minOptions);
  const ScheduleResult improved =
      minPower.improve(*det.graph, *det.result.schedule, det.result.stats);
  describe("Fig. 7: after min-power scheduling (g fills the gap)", p,
           *improved.schedule);

  std::printf("longest-path engine over all three stages: %llu runs "
              "(%llu full, %llu incremental), %llu rollbacks revived, "
              "%llu fell back to full recompute\n\n",
              static_cast<unsigned long long>(
                  metrics.counter("longest_path.runs")),
              static_cast<unsigned long long>(
                  metrics.counter("longest_path.full_runs")),
              static_cast<unsigned long long>(
                  metrics.counter("longest_path.incremental_runs")),
              static_cast<unsigned long long>(
                  metrics.counter("longest_path.restores")),
              static_cast<unsigned long long>(
                  metrics.counter("longest_path.restore_fallbacks")));
  std::printf("profile engine over the power stages: %llu rebuilds, "
              "%llu incremental updates, %llu checkpoint restores\n\n",
              static_cast<unsigned long long>(
                  metrics.counter("profile.rebuilds")),
              static_cast<unsigned long long>(
                  metrics.counter("profile.incremental_updates")),
              static_cast<unsigned long long>(
                  metrics.counter("profile.restores")));
}

void BM_TimingStage(benchmark::State& state) {
  const Problem p = makePaperExampleProblem();
  for (auto _ : state) {
    ConstraintGraph g = p.buildGraph();
    LongestPathEngine engine(g);
    TimingScheduler timing(p);
    SchedulerStats stats;
    benchmark::DoNotOptimize(timing.run(g, engine, stats));
  }
}
BENCHMARK(BM_TimingStage);

void BM_MaxPowerStage(benchmark::State& state) {
  const Problem p = makePaperExampleProblem();
  for (auto _ : state) {
    MaxPowerScheduler scheduler(p);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_MaxPowerStage);

void BM_FullPipeline(benchmark::State& state) {
  const Problem p = makePaperExampleProblem();
  for (auto _ : state) {
    MinPowerScheduler scheduler(p);
    benchmark::DoNotOptimize(scheduler.schedule());
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

int main(int argc, char** argv) {
  printFigures();
  return paws::bench::runBenchMain("fig2_5_7", argc, argv);
}
