// libFuzzer harness for pawsd's wire surface: the frame decoder plus the
// request-payload parser — everything a hostile client can put on the
// socket before the daemon does any real work. Build with -DPAWS_FUZZ=ON;
// under clang this links against libFuzzer, under gcc the standalone
// driver replays (and deterministically mutates) the seed corpus instead.
//
// The contract under test: for ANY byte string fed in adversarially-sized
// chunks, the decoder either keeps yielding complete frames or latches a
// failure with a non-empty stable reason — never an abort, overflow, or
// unbounded allocation (lengths are capped before the payload buffer is
// ever reserved). Every kRequest payload that comes out must then either
// parse or name its rejection, and re-encoding a parsed request must
// survive a second decode+parse round trip (idempotence of the codec).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/frame.hpp"
#include "serve/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);
  paws::serve::FrameDecoder decoder;
  // Feed in chunks whose sizes are themselves derived from the input, so
  // the fuzzer explores reassembly boundaries, not just payload bytes.
  std::size_t offset = 0;
  std::size_t salt = size;
  bool poisoned = false;
  while (offset < size && !poisoned) {
    salt = salt * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t chunk =
        1 + static_cast<std::size_t>(salt % 97) % (size - offset);
    if (!decoder.feed(bytes + offset, chunk)) {
      // A latched failure must explain itself and stay latched.
      if (decoder.error().empty()) __builtin_trap();
      if (!decoder.failed()) __builtin_trap();
      if (decoder.feed(bytes, size > 0 ? 1 : 0)) __builtin_trap();
      poisoned = true;
    }
    offset += chunk;
  }
  paws::serve::Frame frame;
  while (decoder.next(frame)) {
    if (frame.type != paws::serve::FrameType::kRequest) continue;
    const paws::serve::ParseRequestResult parsed =
        paws::serve::parseRequest(frame.payload);
    if (!parsed.ok) {
      // A rejected payload must name its reason.
      if (parsed.error.empty()) __builtin_trap();
      continue;
    }
    // Round trip: format -> decode -> parse must accept its own output.
    const std::string wire = paws::serve::encodeFrame(
        paws::serve::FrameType::kRequest,
        paws::serve::formatRequest(parsed.request));
    paws::serve::FrameDecoder second;
    if (!second.feed(wire.data(), wire.size())) __builtin_trap();
    paws::serve::Frame again;
    if (!second.next(again)) __builtin_trap();
    if (!paws::serve::parseRequest(again.payload).ok) __builtin_trap();
  }
  return 0;
}
