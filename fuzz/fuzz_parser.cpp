// libFuzzer harness for the .paws problem parser (lexer + parser + the
// structural validators a hostile file can reach). Build with -DPAWS_FUZZ=ON;
// under clang this links against libFuzzer, under gcc the standalone driver
// replays (and deterministically mutates) the seed corpus instead.
//
// The contract under test: for ANY byte string, parseProblem either returns
// a Problem that survives validate()/buildGraph(), or a non-empty structured
// error list — never an abort, uncaught exception, or unbounded allocation
// (see the limits in io/lexer.hpp and io/parser.hpp).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "graph/longest_path.hpp"
#include "io/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view source(reinterpret_cast<const char*>(data), size);
  const paws::io::ParseResult result = paws::io::parseProblem(source);
  if (!result.ok()) {
    // A rejected document must explain itself.
    if (result.errors.empty()) __builtin_trap();
    return 0;
  }
  // An accepted document must be safe to hand to the analysis layers the
  // CLI runs unconditionally (pawsc check).
  const paws::Problem& problem = *result.problem;
  (void)problem.validate();
  const paws::ConstraintGraph graph = problem.buildGraph();
  paws::LongestPathEngine engine(graph);
  (void)engine.compute(paws::kAnchorTask);
  return 0;
}
