// Standalone replacement for libFuzzer's driver, used when the toolchain
// cannot link -fsanitize=fuzzer (gcc). It replays every file passed on the
// command line through LLVMFuzzerTestOneInput and then, with -mutate N,
// feeds N deterministic mutations of each seed (bit flips, truncations,
// byte splices — a fixed xorshift stream, so failures reproduce exactly).
//
// This is NOT coverage-guided fuzzing; it is a regression driver that keeps
// the harnesses buildable and the corpus executable everywhere. Real
// fuzzing happens under clang in CI.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

struct XorShift64 {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

void mutateOnce(std::vector<std::uint8_t>& bytes, XorShift64& rng) {
  if (bytes.empty()) {
    bytes.push_back(static_cast<std::uint8_t>(rng.next()));
    return;
  }
  switch (rng.next() % 4) {
    case 0:  // flip one bit
      bytes[rng.next() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng.next() % 8));
      break;
    case 1:  // overwrite one byte
      bytes[rng.next() % bytes.size()] =
          static_cast<std::uint8_t>(rng.next());
      break;
    case 2:  // truncate
      bytes.resize(rng.next() % bytes.size());
      break;
    default: {  // splice: duplicate a chunk somewhere else
      const std::size_t from = rng.next() % bytes.size();
      const std::size_t len =
          1 + rng.next() % (bytes.size() - from < 16 ? bytes.size() - from
                                                     : 16);
      const std::size_t at = rng.next() % (bytes.size() + 1);
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(from),
                   bytes.begin() + static_cast<std::ptrdiff_t>(from + len));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int mutations = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-mutate") == 0 && i + 1 < argc) {
      mutations = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      files.push_back(argv[i]);
    }
    // libFuzzer-style -flags (e.g. -max_total_time) are accepted and
    // ignored so CI can pass one command line to either driver.
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [-mutate N] seed-file...\n"
                 "(standalone corpus replayer; not coverage-guided)\n",
                 argv[0]);
    return 1;
  }

  std::size_t runs = 0;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++runs;

    // Deterministic per-seed stream: seeded from the file contents so a
    // corpus change reshuffles mutations but reruns stay bit-identical.
    XorShift64 rng{0x9e3779b97f4a7c15ull ^ (bytes.size() + 1)};
    for (const std::uint8_t b : bytes) rng.state = rng.state * 131 + b;
    std::vector<std::uint8_t> scratch = bytes;
    for (int m = 0; m < mutations; ++m) {
      mutateOnce(scratch, rng);
      LLVMFuzzerTestOneInput(scratch.data(), scratch.size());
      ++runs;
      if (scratch.empty() || scratch.size() > bytes.size() * 4 + 1024) {
        scratch = bytes;  // keep mutants near the grammar
      }
    }
  }
  std::printf("standalone driver: %zu inputs, no crashes\n", runs);
  return 0;
}
