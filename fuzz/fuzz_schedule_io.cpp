// libFuzzer harness for the .sched schedule reader (io/schedule_io.cpp),
// exercised against a fixed small problem the way `pawsc repair --schedule`
// would. Accepted schedules must round-trip through writeSchedule and must
// be safe to validate.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "validate/validator.hpp"

namespace {

const paws::Problem& fixture() {
  static const paws::Problem problem = [] {
    const paws::io::ParseResult r = paws::io::parseProblem(
        "problem probe {\n"
        "  pmax 10W\n"
        "  pmin 1W\n"
        "  resource cpu\n"
        "  resource radio\n"
        "  task warmup  { resource cpu   delay 5 power 2W }\n"
        "  task sample  { resource cpu   delay 7 power 4W }\n"
        "  task downlink{ resource radio delay 4 power 6W }\n"
        "  precedes warmup -> sample\n"
        "  precedes sample -> downlink 2\n"
        "  deadline downlink 40\n"
        "}\n");
    if (!r.ok()) __builtin_trap();  // the fixture itself must parse
    return *r.problem;
  }();
  return problem;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view source(reinterpret_cast<const char*>(data), size);
  const paws::Problem& problem = fixture();
  const paws::io::ScheduleParseResult result =
      paws::io::parseSchedule(source, problem);
  if (!result.ok()) {
    if (result.errors.empty()) __builtin_trap();
    return 0;
  }
  // Accepted schedules: validator must not choke on hostile start times,
  // and write→re-read must accept its own output.
  (void)paws::ScheduleValidator(problem).validate(*result.schedule);
  const std::string text =
      paws::io::scheduleToText(*result.schedule, result.label);
  const paws::io::ScheduleParseResult again =
      paws::io::parseSchedule(text, problem);
  if (!again.ok()) __builtin_trap();
  return 0;
}
