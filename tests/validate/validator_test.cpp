#include "validate/validator.hpp"

#include <gtest/gtest.h>

namespace paws {
namespace {

using namespace paws::literals;

Problem makeProblem() {
  Problem p("v");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 5_s, 6_W, r1);   // 1
  p.addTask("b", 5_s, 4_W, r1);   // 2
  p.addTask("c", 10_s, 5_W, r2);  // 3
  p.minSeparation(TaskId(1), TaskId(3), 5_s);
  p.maxSeparation(TaskId(1), TaskId(3), 12_s);
  p.setMaxPower(10_W);
  p.setMinPower(4_W);
  return p;
}

TEST(ValidatorTest, CleanScheduleIsValid) {
  const Problem p = makeProblem();
  // a[0,5) b[5,10) on r1; c[5,15) on r2. P: 6, 4+5, 5 — all <= 10.
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(5)});
  const auto report = ScheduleValidator(p).validate(s);
  EXPECT_TRUE(report.valid());
  EXPECT_TRUE(report.timeValid());
  EXPECT_TRUE(report.powerValid());
}

TEST(ValidatorTest, DetectsMinSeparationViolation) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(3)});  // c 3 after a
  const auto report = ScheduleValidator(p).validate(s);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMinSeparation);
  EXPECT_NE(report.violations[0].detail.find("'c'"), std::string::npos);
}

TEST(ValidatorTest, DetectsMaxSeparationViolation) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(20)});
  const auto report = ScheduleValidator(p).validate(s);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMaxSeparation);
}

TEST(ValidatorTest, DetectsResourceOverlap) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(3), Time(5)});  // a,b overlap
  const auto report = ScheduleValidator(p).validate(s);
  ASSERT_FALSE(report.valid());
  bool found = false;
  for (const Violation& v : report.violations) {
    found |= v.kind == Violation::Kind::kResourceOverlap;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(report.timeValid());
}

TEST(ValidatorTest, DetectsPowerSpikeButKeepsTimeValidity) {
  const Problem p = makeProblem();
  // a and c overlap fully: 6+5 = 11 > 10.
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(5)});
  // shift c earlier: c at 5 gives 4+5=9; make c at 0 instead -> min sep broken.
  // Use b overlapping c in power only: b@5 (4W) + c@5 (5W) = 9; no spike.
  // For a real spike: move b onto a? that breaks resource. Instead raise
  // overlap: schedule a@0 and c@... c >= 5 after a; at c@5, a is done.
  // So spike needs a tighter problem; reuse with lower budget:
  Problem tight = makeProblem();
  tight.setMaxPower(8_W);
  const Schedule s2(&tight, {Time(0), Time(0), Time(5), Time(5)});
  const auto report = ScheduleValidator(tight).validate(s2);
  EXPECT_TRUE(report.timeValid());
  EXPECT_FALSE(report.powerValid());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kPowerSpike);
  (void)s;
}

TEST(ValidatorTest, DetectsNegativeStart) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(-3), Time(5), Time(5)});
  const auto report = ScheduleValidator(p).validate(s);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kNegativeStart);
}

TEST(ValidatorTest, ReportsPowerGapsAsSoftInformation) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(5)});
  const auto report = ScheduleValidator(p).validate(s);
  EXPECT_TRUE(report.valid()) << "gaps are not violations";
  // After c ends at 15, nothing runs... span ends at 15; gap regions are
  // wherever P < 4W — none here ([0,5)=6, [5,15)=9,5).
  EXPECT_TRUE(report.powerGaps.empty());
  Problem hungry = makeProblem();
  hungry.setMinPower(7_W);
  const auto report2 = ScheduleValidator(hungry).validate(
      Schedule(&hungry, {Time(0), Time(0), Time(5), Time(5)}));
  EXPECT_FALSE(report2.powerGaps.empty());
}

TEST(ValidatorTest, MultipleViolationsAllReported) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(-1), Time(-1), Time(30)});
  const auto report = ScheduleValidator(p).validate(s);
  EXPECT_GE(report.violations.size(), 3u);
}

TEST(ValidatorTest, ViolationPrinting) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(3)});
  const auto report = ScheduleValidator(p).validate(s);
  ASSERT_FALSE(report.violations.empty());
  std::ostringstream os;
  os << report.violations[0];
  EXPECT_NE(os.str().find("min-separation"), std::string::npos);
}

}  // namespace
}  // namespace paws
