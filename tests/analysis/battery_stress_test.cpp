#include "analysis/battery_stress.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

PowerProfile stairProfile() {
  // 6W on [0,5), 14W on [5,10), 8W on [10,20).
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(20)), 6_W);
  b.add(Interval(Time(5), Time(10)), 8_W);
  b.add(Interval(Time(10), Time(20)), 2_W);
  return b.build();
}

TEST(BatteryStressTest, DrawCurveMeasures) {
  // Free level 6W: draw = 0, 8, 2 over the three segments.
  const BatteryStressReport r = analyzeBatteryStress(stairProfile(), 6_W);
  EXPECT_EQ(r.peakDraw, 8_W);
  EXPECT_EQ(r.drawnEnergy, 8_W * Duration(5) + 2_W * Duration(10));
  // Steps of the draw curve: 0->8 (8), 8->2 (6), 2->0 (2): jitter 8W.
  EXPECT_EQ(r.jitter, 8_W);
  // Mean over the 20s span: 60 J / 20 s = 3 W.
  EXPECT_EQ(r.meanDraw, 3_W);
  // Ohmic proxy: 8000^2*5 + 2000^2*10.
  EXPECT_EQ(r.squaredDrawIntegral, 8000ull * 8000 * 5 + 2000ull * 2000 * 10);
}

TEST(BatteryStressTest, NoDrawBelowFreeLevel) {
  const BatteryStressReport r = analyzeBatteryStress(stairProfile(), 20_W);
  EXPECT_EQ(r.peakDraw, Watts::zero());
  EXPECT_EQ(r.drawnEnergy, Energy::zero());
  EXPECT_EQ(r.jitter, Watts::zero());
  EXPECT_EQ(r.squaredDrawIntegral, 0u);
}

TEST(BatteryStressTest, EmptyProfile) {
  const PowerProfile empty;
  const BatteryStressReport r = analyzeBatteryStress(empty, 5_W);
  EXPECT_EQ(r.meanDraw, Watts::zero());
  EXPECT_EQ(r.drawnEnergy, Energy::zero());
}

TEST(PeukertTest, IdealBatteryMatchesNominalCost) {
  const PowerProfile p = stairProfile();
  EXPECT_EQ(peukertEffectiveEnergy(p, 6_W, 5_W, 1.0),
            p.energyAbove(6_W));
}

TEST(PeukertTest, BurstsArePenalizedAboveRatedDraw) {
  const PowerProfile p = stairProfile();
  const Energy ideal = p.energyAbove(6_W);
  const Energy harsh = peukertEffectiveEnergy(p, 6_W, 5_W, 1.3);
  EXPECT_GT(harsh, ideal) << "8W draw above the 5W rating must cost extra";
  // A higher rated draw reduces the penalty.
  const Energy gentler = peukertEffectiveEnergy(p, 6_W, 8_W, 1.3);
  EXPECT_LT(gentler, harsh);
}

TEST(PeukertTest, RejectsBadParameters) {
  const PowerProfile p = stairProfile();
  EXPECT_THROW((void)peukertEffectiveEnergy(p, 6_W, Watts::zero(), 1.2),
               CheckError);
  EXPECT_THROW((void)peukertEffectiveEnergy(p, 6_W, 5_W, 0.9), CheckError);
}

TEST(BatteryStressTest, MinPowerSchedulingNeverWorsensTheDrawCurve) {
  // The paper's jitter claim on the running example: gap filling flattens
  // the battery draw. Compare max-power-only vs the full pipeline.
  const Problem p = makePaperExampleProblem();
  MaxPowerScheduler maxOnly(p);
  const ScheduleResult before = maxOnly.schedule();
  MinPowerScheduler pipeline(p);
  const ScheduleResult after = pipeline.schedule();
  ASSERT_TRUE(before.ok() && after.ok());

  const BatteryStressReport rb =
      analyzeBatteryStress(before.schedule->powerProfile(), p.minPower());
  const BatteryStressReport ra =
      analyzeBatteryStress(after.schedule->powerProfile(), p.minPower());
  EXPECT_LE(ra.drawnEnergy, rb.drawnEnergy);
  EXPECT_LE(ra.peakDraw, rb.peakDraw);
  EXPECT_LE(ra.squaredDrawIntegral, rb.squaredDrawIntegral);
  // On this instance the improvement is strict.
  EXPECT_LT(ra.drawnEnergy, rb.drawnEnergy);
}

}  // namespace
}  // namespace paws
