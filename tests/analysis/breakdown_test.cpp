#include "analysis/breakdown.hpp"

#include <gtest/gtest.h>

#include "rover/rover_model.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem makeProblem() {
  Problem p("bd");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId rf = p.addResource("rf");
  p.addTask("a", 5_s, 4_W, cpu);   // 20 J
  p.addTask("b", 5_s, 2_W, cpu);   // 10 J
  p.addTask("tx", 10_s, 6_W, rf);  // 60 J
  p.setBackgroundPower(1_W);
  return p;
}

TEST(BreakdownTest, ExactAttribution) {
  const Problem p = makeProblem();
  // a[0,5) b[5,10) tx[0,10): finish 10, background 10 J, total 100 J.
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(0)});
  const EnergyBreakdown bd = computeEnergyBreakdown(s);
  EXPECT_EQ(bd.total, 100_J);
  EXPECT_EQ(bd.background.energy, 10_J);
  EXPECT_DOUBLE_EQ(bd.background.fraction, 0.1);

  ASSERT_EQ(bd.byResource.size(), 2u);
  EXPECT_EQ(bd.byResource[0].name, "rf");
  EXPECT_EQ(bd.byResource[0].energy, 60_J);
  EXPECT_DOUBLE_EQ(bd.byResource[0].fraction, 0.6);
  EXPECT_EQ(bd.byResource[1].name, "cpu");
  EXPECT_EQ(bd.byResource[1].energy, 30_J);

  ASSERT_EQ(bd.byTask.size(), 3u);
  EXPECT_EQ(bd.byTask[0].name, "tx");
  EXPECT_EQ(bd.byTask[1].name, "a");
  EXPECT_EQ(bd.byTask[2].name, "b");
}

TEST(BreakdownTest, SharesSumToOne) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(0)});
  const EnergyBreakdown bd = computeEnergyBreakdown(s);
  double sum = bd.background.fraction;
  for (const EnergyShare& r : bd.byResource) sum += r.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BreakdownTest, RoverMatchesThePapersClaim) {
  // Section 1.2 / 3: "mechanical and thermal subsystems are the major
  // power consumers" — heaters + driving + steering must dominate the CPU.
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kWorst);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  const EnergyBreakdown bd = computeEnergyBreakdown(*r.schedule);
  Energy mechanicalAndThermal;
  for (const EnergyShare& s : bd.byResource) {
    if (s.name != "hazard") mechanicalAndThermal += s.energy;
  }
  EXPECT_GT(mechanicalAndThermal, bd.background.energy)
      << "motors+heaters must outdraw the CPU";
  // Heating alone: 5 heaters x 5 s x 11.3 W = 282.5 J > CPU's 277.5 J.
  Energy heating;
  for (const EnergyShare& s : bd.byResource) {
    if (s.name.rfind("heater", 0) == 0) heating += s.energy;
  }
  EXPECT_EQ(heating, Energy::fromMilliwattTicks(282500));
  EXPECT_GT(heating, bd.background.energy);
}

TEST(BreakdownTest, RenderContainsBarsAndPercents) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5), Time(0)});
  const std::string text = renderBreakdown(computeEnergyBreakdown(s));
  EXPECT_NE(text.find("by resource:"), std::string::npos);
  EXPECT_NE(text.find("rf"), std::string::npos);
  EXPECT_NE(text.find("60%"), std::string::npos);
  EXPECT_NE(text.find("####"), std::string::npos);
}

TEST(BreakdownTest, EmptyScheduleIsAllZero) {
  Problem p("empty");
  const Schedule s(&p, {Time(0)});
  const EnergyBreakdown bd = computeEnergyBreakdown(s);
  EXPECT_EQ(bd.total, Energy::zero());
  EXPECT_TRUE(bd.byResource.empty());
}

}  // namespace
}  // namespace paws
