#include "analysis/analysis.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "rover/rover_model.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Schedule paperFinalSchedule(const Problem& p) {
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  EXPECT_TRUE(r.ok());
  return *r.schedule;
}

TEST(ScheduleAnalysisTest, MinimalValidPmaxIsPeak) {
  const Problem p = makePaperExampleProblem();
  const Schedule s = paperFinalSchedule(p);
  const Watts minimal = ScheduleAnalysis::minimalValidPmax(s);
  EXPECT_EQ(minimal, s.powerProfile().peak());
  // The paper's claim for Fig. 7: valid for all Pmax >= 16. Our final
  // schedule peaks at 15 W, so the claim holds with room to spare.
  EXPECT_LE(minimal, 16_W);
  EXPECT_TRUE(s.powerProfile().spikes(minimal).empty());
  EXPECT_FALSE(
      s.powerProfile().spikes(minimal - Watts::fromMilliwatts(1)).empty());
}

TEST(ScheduleAnalysisTest, EnergyCostCurveIsExactAtBreakpoints) {
  const Problem p = makePaperExampleProblem();
  const Schedule s = paperFinalSchedule(p);
  const auto curve = ScheduleAnalysis::energyCostCurve(s);
  ASSERT_GE(curve.size(), 2u);
  // Ascending pmin, descending cost.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].pmin, curve[i - 1].pmin);
    EXPECT_LE(curve[i].cost, curve[i - 1].cost);
  }
  // First breakpoint: pmin = 0 -> total energy; last: peak -> zero cost.
  EXPECT_EQ(curve.front().pmin, Watts::zero());
  EXPECT_EQ(curve.front().cost, s.powerProfile().totalEnergy());
  EXPECT_EQ(curve.back().cost, Energy::zero());
  // Every breakpoint agrees with direct evaluation.
  for (const EcBreakpoint& bp : curve) {
    EXPECT_EQ(bp.cost, ScheduleAnalysis::energyCostAt(s, bp.pmin));
  }
}

TEST(ScheduleAnalysisTest, SustainedFloor) {
  const Problem p = makePaperExampleProblem();
  const Schedule s = paperFinalSchedule(p);
  const Watts floor = ScheduleAnalysis::sustainedFloor(s);
  EXPECT_DOUBLE_EQ(ScheduleAnalysis::utilizationAt(s, floor), 1.0);
  if (floor > Watts::zero()) {
    EXPECT_LT(ScheduleAnalysis::utilizationAt(
                  s, floor + Watts::fromMilliwatts(1)),
              1.0);
  }
}

TEST(ScheduleAnalysisTest, WorstCaseRoverSustains9W) {
  // Table 3's worst-case row has rho = 100%: the serial schedule sustains
  // the full 9 W solar level throughout.
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kWorst);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_GE(ScheduleAnalysis::sustainedFloor(*r.schedule), 9_W);
}

TEST(ScheduleLibraryTest, SelectsValidLowestCost) {
  // Two fixed schedules of one problem: 'parallel' peaks at 10 W and is
  // fast; 'serial' peaks at 6 W and is free below a 6 W floor.
  Problem p("lib");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 5_s, 6_W, r1);
  p.addTask("b", 5_s, 4_W, r2);
  const Schedule parallel(&p, {Time(0), Time(0), Time(0)});
  const Schedule serial(&p, {Time(0), Time(0), Time(5)});

  ScheduleLibrary library;
  library.add("parallel", parallel);
  library.add("serial", serial);
  EXPECT_EQ(library.size(), 2u);

  // Tight budget: only the serial schedule fits (peak 6 W vs 10 W).
  const auto* tight = library.select(8_W, 6_W);
  ASSERT_NE(tight, nullptr);
  EXPECT_EQ(tight->label, "serial");

  // Generous budget, floor 6 W: parallel costs 4 W x 5 s = 20 J above the
  // floor; serial sustains at most 6 W, costing 0 J — cost wins over speed.
  const auto* generous = library.select(12_W, 6_W);
  ASSERT_NE(generous, nullptr);
  EXPECT_EQ(generous->label, "serial");

  // With no floor, both cost 0 J and the faster parallel schedule wins.
  const auto* nofloor = library.select(12_W, Watts::zero());
  ASSERT_NE(nofloor, nullptr);
  EXPECT_EQ(nofloor->label, "parallel");
}

TEST(ScheduleLibraryTest, NoFitReturnsNull) {
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kWorst);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  ScheduleLibrary library;
  library.add("only", *r.schedule);
  EXPECT_EQ(library.select(5_W, 1_W), nullptr);
}

TEST(ScheduleLibraryTest, TieBreaksOnFinishTime) {
  // Two zero-cost schedules (Pmin 0): faster one must win.
  Problem p("tie");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 5_s, 2_W, r1);
  p.addTask("b", 5_s, 2_W, r2);
  const Schedule parallel(&p, {Time(0), Time(0), Time(0)});
  const Schedule serial(&p, {Time(0), Time(0), Time(5)});
  ScheduleLibrary library;
  library.add("serial", serial);
  library.add("parallel", parallel);
  const auto* pick = library.select(10_W, Watts::zero());
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->label, "parallel");
}

}  // namespace
}  // namespace paws
