#include "analysis/resource_usage.hpp"

#include <gtest/gtest.h>

#include "rover/rover_model.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem makeProblem() {
  Problem p("ru");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId rf = p.addResource("rf");
  p.addTask("a", 4_s, 1_W, cpu);
  p.addTask("b", 4_s, 1_W, cpu);
  p.addTask("tx", 2_s, 1_W, rf);
  return p;
}

TEST(ResourceUsageTest, BusyIdleAndBottleneck) {
  const Problem p = makeProblem();
  // cpu: a[0,4), b[6,10); rf: tx[1,3). Span 10.
  const Schedule s(&p, {Time(0), Time(0), Time(6), Time(1)});
  const ResourceUsageReport report = analyzeResourceUsage(s);
  EXPECT_EQ(report.span, Duration(10));

  ASSERT_EQ(report.usages.size(), 2u);
  const ResourceUsage& cpu = report.usages[0];  // 8/10 beats 2/10
  EXPECT_EQ(cpu.name, "cpu");
  EXPECT_EQ(cpu.busy, Duration(8));
  EXPECT_DOUBLE_EQ(cpu.utilization, 0.8);
  ASSERT_EQ(cpu.idle.size(), 1u);
  EXPECT_EQ(cpu.idle[0], Interval(Time(4), Time(6)));
  EXPECT_EQ(cpu.lastCompletion, Time(10));

  const ResourceUsage& rf = report.usages[1];
  EXPECT_EQ(rf.busy, Duration(2));
  ASSERT_EQ(rf.idle.size(), 2u);
  EXPECT_EQ(rf.idle[0], Interval(Time(0), Time(1)));
  EXPECT_EQ(rf.idle[1], Interval(Time(3), Time(10)));

  EXPECT_EQ(report.bottleneck, *p.findResource("cpu"));
}

TEST(ResourceUsageTest, FullyPackedResourceHasNoIdle) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(4), Time(0)});
  const ResourceUsageReport report = analyzeResourceUsage(s);
  const ResourceUsage& cpu = report.usages[0];
  EXPECT_EQ(cpu.name, "cpu");
  EXPECT_TRUE(cpu.idle.empty());
  EXPECT_DOUBLE_EQ(cpu.utilization, 1.0);
}

TEST(ResourceUsageTest, EmptyScheduleIsWellDefined) {
  Problem p("empty");
  p.addResource("r");
  const Schedule s(&p, {Time(0)});
  const ResourceUsageReport report = analyzeResourceUsage(s);
  EXPECT_EQ(report.span, Duration::zero());
  EXPECT_FALSE(report.bottleneck.isValid());
  ASSERT_EQ(report.usages.size(), 1u);
  EXPECT_DOUBLE_EQ(report.usages[0].utilization, 0.0);
}

TEST(ResourceUsageTest, SerialRoverBottleneckAndUtilizations) {
  // Fully serialized worst case: total busy across all resources equals
  // the 75 s makespan exactly (no overlap, no forced idle between tasks).
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kWorst);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  const ResourceUsageReport report = analyzeResourceUsage(*r.schedule);
  Duration totalBusy;
  for (const ResourceUsage& u : report.usages) totalBusy += u.busy;
  EXPECT_EQ(totalBusy, Duration(75));
  EXPECT_TRUE(report.bottleneck.isValid());
  // Driving is the paper's biggest single consumer of time among
  // mechanical ops: 2 x 10 s busy.
  const auto driving = *p.findResource("driving");
  for (const ResourceUsage& u : report.usages) {
    if (u.resource == driving) EXPECT_EQ(u.busy, Duration(20));
  }
}

}  // namespace
}  // namespace paws
