#include "analysis/pareto.hpp"

#include <gtest/gtest.h>

#include "rover/rover_model.hpp"

namespace paws {
namespace {

using namespace paws::literals;

DesignPoint point(double pmax, std::int64_t finish, double ec,
                  bool feasible = true) {
  DesignPoint p;
  p.pmax = Watts::fromWatts(pmax);
  p.finish = Duration(finish);
  p.energyCost = Energy::fromMilliwattTicks(
      static_cast<std::int64_t>(ec * 1000.0 + 0.5));
  p.feasible = feasible;
  return p;
}

TEST(ParetoTest, MarkDominatedBasics) {
  std::vector<DesignPoint> pts{
      point(10, 75, 55),   // slow, cheap
      point(12, 60, 147),  // fast, dear
      point(11, 75, 60),   // dominated by the first
      point(13, 60, 150),  // dominated by the second
      point(14, 50, 999, /*feasible=*/false),
  };
  markDominated(pts);
  EXPECT_FALSE(pts[0].dominated);
  EXPECT_FALSE(pts[1].dominated);
  EXPECT_TRUE(pts[2].dominated);
  EXPECT_TRUE(pts[3].dominated);
}

TEST(ParetoTest, EqualPointsDoNotDominateEachOther) {
  std::vector<DesignPoint> pts{point(10, 75, 55), point(11, 75, 55)};
  markDominated(pts);
  EXPECT_FALSE(pts[0].dominated);
  EXPECT_FALSE(pts[1].dominated);
  // But the front collapses them.
  ParetoResult r;
  r.points = pts;
  EXPECT_EQ(r.front().size(), 1u);
}

TEST(ParetoTest, FrontIsSortedAndNonDominated) {
  ParetoResult r;
  r.points = {point(10, 75, 55), point(12, 60, 147), point(11, 75, 60),
              point(15, 55, 300)};
  markDominated(r.points);
  const auto front = r.front();
  ASSERT_EQ(front.size(), 3u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].finish, front[i - 1].finish);
    EXPECT_LT(front[i].energyCost, front[i - 1].energyCost)
        << "along a Pareto front, slower must mean cheaper";
  }
}

TEST(ParetoTest, RoverBudgetSweepProducesAMonotoneFront) {
  // Typical-case rover, budget 12..26 W: the classic speed/energy curve of
  // the design_space example, now machine-checked.
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kTypical);
  ParetoSweepConfig cfg;
  cfg.from = 12_W;
  cfg.to = 26_W;
  cfg.step = 2_W;
  const ParetoResult result = sweepPowerBudget(p, cfg);
  ASSERT_EQ(result.points.size(), 8u);
  EXPECT_FALSE(result.points[0].feasible) << "12 W cannot even drive";
  // Feasible points: higher budget never slower.
  Duration prev = Duration::max();
  for (const DesignPoint& pt : result.points) {
    if (!pt.feasible) continue;
    EXPECT_LE(pt.finish, prev);
    prev = pt.finish;
  }
  const auto front = result.front();
  ASSERT_GE(front.size(), 2u) << "the trade-off must be real";
  // The front is sorted ascending by finish: its last entry is the slow,
  // cheap serial point (75 s / 55 J) and its first is a faster one.
  EXPECT_EQ(front.back().energyCost, 55_J);
  EXPECT_EQ(front.back().finish, Duration(75));
  EXPECT_LT(front.front().finish, Duration(75));
}

TEST(ParetoTest, SweepValidatesConfig) {
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kTypical);
  ParetoSweepConfig bad;
  bad.from = 20_W;
  bad.to = 10_W;
  EXPECT_THROW((void)sweepPowerBudget(p, bad), CheckError);
  bad.from = 10_W;
  bad.to = 20_W;
  bad.step = Watts::zero();
  EXPECT_THROW((void)sweepPowerBudget(p, bad), CheckError);
}

}  // namespace
}  // namespace paws
