#include "analysis/corners.hpp"

#include <gtest/gtest.h>

#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem twoTasks() {
  Problem p("corners");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 5_s, 4_W, r1);
  p.addTask("b", 5_s, 3_W, r2);
  p.setMaxPower(9_W);
  p.setMinPower(5_W);
  return p;
}

TEST(CornerTableTest, DefaultsToNominalPower) {
  const Problem p = twoTasks();
  const CornerTable table(p);
  const PowerCorners c = table.of(TaskId(1));
  EXPECT_EQ(c.min, 4_W);
  EXPECT_EQ(c.typical, 4_W);
  EXPECT_EQ(c.max, 4_W);
}

TEST(CornerTableTest, RejectsMalformedCorners) {
  const Problem p = twoTasks();
  CornerTable table(p);
  EXPECT_THROW(table.set(TaskId(1), PowerCorners{5_W, 4_W, 6_W}), CheckError);
  EXPECT_THROW(table.set(kAnchorTask, PowerCorners{1_W, 1_W, 1_W}),
               CheckError);
}

TEST(CornerAnalysisTest, BracketsCostAndDetectsMaxCornerSpike) {
  const Problem p = twoTasks();
  CornerTable table(p);
  table.set(TaskId(1), PowerCorners{3_W, 4_W, 6_W});
  table.set(TaskId(2), PowerCorners{2_W, 3_W, 4_W});

  // Overlapped schedule: nominal 7W fits the 9W budget...
  const Schedule overlapped(&p, {Time(0), Time(0), Time(0)});
  const CornerReport report = analyzeCorners(overlapped, table);
  // ...but at the max corner 6+4 = 10 > 9: the guarantee breaks.
  EXPECT_FALSE(report.maxCornerValid);
  EXPECT_EQ(report.peakAtMax, 10_W);
  // Costs bracket monotonically.
  EXPECT_LE(report.cost[0], report.cost[1]);
  EXPECT_LE(report.cost[1], report.cost[2]);

  // The serialized schedule is robust even at the max corner.
  const Schedule serialized(&p, {Time(0), Time(0), Time(5)});
  const CornerReport robust = analyzeCorners(serialized, table);
  EXPECT_TRUE(robust.maxCornerValid);
  EXPECT_EQ(robust.peakAtMax, 6_W);
}

TEST(CornerAnalysisTest, ProfileAtCornerMatchesManualSum) {
  const Problem p = twoTasks();
  CornerTable table(p);
  table.set(TaskId(1), PowerCorners{3_W, 4_W, 6_W});
  table.setBackground(PowerCorners{Watts::zero(), 1_W, 2_W});
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  const PowerProfile maxProf = profileAtCorner(s, table, Corner::kMax);
  EXPECT_EQ(maxProf.valueAt(Time(0)), 8_W);   // 6 + bg 2
  EXPECT_EQ(maxProf.valueAt(Time(7)), 5_W);   // b 3 + bg 2
  const PowerProfile minProf = profileAtCorner(s, table, Corner::kMin);
  EXPECT_EQ(minProf.valueAt(Time(0)), 3_W);
}

TEST(CornerAnalysisTest, RoverTemperatureCasesAsCorners) {
  // The rover's three environmental cases ARE a corner table: schedule for
  // the typical case, then check the worst-case corner — the overlapped
  // typical schedule must NOT be trusted at -80C, which is exactly why the
  // paper schedules each case separately.
  const Problem typical = rover::makeRoverProblem(rover::RoverCase::kTypical);
  const rover::RoverPowerTable best = rover::powerTable(rover::RoverCase::kBest);
  const rover::RoverPowerTable typ = rover::powerTable(rover::RoverCase::kTypical);
  const rover::RoverPowerTable worst = rover::powerTable(rover::RoverCase::kWorst);

  CornerTable table(typical);
  for (TaskId v : typical.taskIds()) {
    const std::string& name = typical.task(v).name;
    auto pick = [&](const rover::RoverPowerTable& t) {
      if (name.rfind("heat", 0) == 0) return t.heating;
      if (name.rfind("hazard", 0) == 0) return t.hazard;
      if (name.rfind("steer", 0) == 0) return t.steering;
      return t.driving;
    };
    table.set(v, PowerCorners{pick(best), pick(typ), pick(worst)});
  }
  table.setBackground(PowerCorners{best.cpu, typ.cpu, worst.cpu});

  PowerAwareScheduler scheduler(typical);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  const CornerReport report = analyzeCorners(*r.schedule, table);
  EXPECT_FALSE(report.maxCornerValid)
      << "typical-case parallelism exceeds the budget at -80C powers";
  EXPECT_GT(report.peakAtMax, typical.maxPower());
}

TEST(ProblemAtCornerTest, RebuildsForRescheduling) {
  const Problem p = twoTasks();
  CornerTable table(p);
  table.set(TaskId(1), PowerCorners{3_W, 4_W, 6_W});
  const Problem maxP = problemAtCorner(table, Corner::kMax);
  EXPECT_EQ(maxP.task(TaskId(1)).power, 6_W);
  EXPECT_EQ(maxP.task(TaskId(2)).power, 3_W);
  EXPECT_EQ(maxP.maxPower(), p.maxPower());
  EXPECT_EQ(maxP.constraints().size(), p.constraints().size());

  // Rescheduling at the max corner yields a schedule that IS corner-valid.
  SerialScheduler serial(maxP);
  const ScheduleResult r = serial.schedule();
  ASSERT_TRUE(r.ok());
  const CornerReport report =
      analyzeCorners(Schedule(&p, r.schedule->starts()), table);
  EXPECT_TRUE(report.maxCornerValid);
}

}  // namespace
}  // namespace paws
