// Byte-identical equivalence of the pruned exhaustive search against the
// fully unpruned one. Dominance, symmetry and bound pruning (the defaults)
// may only discard subtrees that cannot contain the leaf the unpruned
// search returns — so flipping the flags, individually or together, and
// varying the worker count must never change a single field of the result:
// status, proven-optimality, start vector, energy cost, finish time.
//
// Coverage is deliberate per pruning: the random sweep and the paper
// example exercise the window/floor bounds, a replicated-task instance
// exercises symmetry canonicalization, and an equal-power multi-resource
// instance exercises the dominance table (profile-identical states with an
// empty frontier). The crafted tests also assert their pruning actually
// fired, so a regression that silently disables one cannot pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "gen/random_problem.hpp"
#include "model/paper_example.hpp"
#include "sched/exhaustive_scheduler.hpp"

namespace paws {
namespace {

struct Outcome {
  SchedStatus status = SchedStatus::kOk;
  bool provenOptimal = false;
  std::vector<Time> starts;
  std::int64_t costMwt = 0;
  std::int64_t finishTicks = 0;
  std::uint64_t prunedDominance = 0;
  std::uint64_t prunedSymmetry = 0;
  std::uint64_t prunedBound = 0;

  // Pruning counters are effort, not semantics — they stay out of the
  // equality the tests assert.
  bool operator==(const Outcome& o) const {
    return status == o.status && provenOptimal == o.provenOptimal &&
           starts == o.starts && costMwt == o.costMwt &&
           finishTicks == o.finishTicks;
  }
};

struct Flags {
  bool dominance = false;
  bool symmetry = false;
  bool bounds = false;
};

Outcome runSearch(const Problem& problem, Flags flags, std::size_t jobs,
                  std::optional<Time> horizon = std::nullopt) {
  ExhaustiveOptions opts;
  opts.jobs = jobs;
  opts.horizon = horizon;
  opts.pruneDominance = flags.dominance;
  opts.pruneSymmetry = flags.symmetry;
  opts.pruneBounds = flags.bounds;
  ExhaustiveScheduler sched(problem, opts);
  const ScheduleResult r = sched.schedule();
  Outcome out;
  out.status = r.status;
  out.provenOptimal = sched.outcome().provenOptimal;
  out.prunedDominance = sched.outcome().prunedDominance;
  out.prunedSymmetry = sched.outcome().prunedSymmetry;
  out.prunedBound = sched.outcome().prunedBound;
  if (r.schedule.has_value()) {
    out.starts = r.schedule->starts();
    out.costMwt = r.schedule->energyCost(problem.minPower()).milliwattTicks();
    out.finishTicks = r.schedule->finish().ticks();
  }
  return out;
}

constexpr Flags kAllOff{};
constexpr Flags kAllOn{true, true, true};

void expectPrunedMatchesUnpruned(const Problem& problem,
                                 std::optional<Time> horizon,
                                 const char* what) {
  const Outcome reference = runSearch(problem, kAllOff, 1, horizon);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    EXPECT_EQ(runSearch(problem, kAllOn, jobs, horizon), reference)
        << what << " all prunings, jobs=" << jobs;
  }
  // Each pruning alone must also be invisible.
  EXPECT_EQ(runSearch(problem, Flags{true, false, false}, 1, horizon),
            reference)
      << what << " dominance only";
  EXPECT_EQ(runSearch(problem, Flags{false, true, false}, 1, horizon),
            reference)
      << what << " symmetry only";
  EXPECT_EQ(runSearch(problem, Flags{false, false, true}, 1, horizon),
            reference)
      << what << " bounds only";
}

GeneratorConfig smallConfig(std::uint32_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = 4;
  cfg.numResources = 2;
  cfg.maxDelay = 3;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 400;
  return cfg;
}

TEST(PruningEquivalence, PaperExampleBitIdentical) {
  // Horizon 30 keeps the *unpruned* 9-task search tractable (~500k nodes)
  // while still containing the optimum.
  const Problem problem = makePaperExampleProblem();
  const Outcome reference = runSearch(problem, kAllOff, 1, Time(30));
  ASSERT_EQ(reference.status, SchedStatus::kOk);
  ASSERT_TRUE(reference.provenOptimal);
  expectPrunedMatchesUnpruned(problem, Time(30), "paper example");
  // The default bounds pruning must actually engage on the paper example.
  EXPECT_GT(runSearch(problem, kAllOn, 1, Time(30)).prunedBound, 0u);
}

TEST(PruningEquivalence, RandomInstancesBitIdentical) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const GeneratedProblem gp = generateRandomProblem(smallConfig(seed));
    expectPrunedMatchesUnpruned(gp.problem, std::nullopt, "random");
  }
}

TEST(PruningEquivalence, SymmetricReplicasBitIdentical) {
  // Three interchangeable replicas on one resource (identical delay,
  // power, no constraints among them) plus a distinct downstream task:
  // symmetry canonicalization must fire and stay invisible.
  Problem problem("symmetric_replicas");
  const ResourceId r1 = problem.addResource("r1");
  const ResourceId r2 = problem.addResource("r2");
  const TaskId rep1 = problem.addTask("rep1", Duration(2),
                                      Watts::fromWatts(4.0), r1);
  problem.addTask("rep2", Duration(2), Watts::fromWatts(4.0), r1);
  problem.addTask("rep3", Duration(2), Watts::fromWatts(4.0), r1);
  const TaskId sink = problem.addTask("sink", Duration(3),
                                      Watts::fromWatts(2.0), r2);
  problem.minSeparation(rep1, sink, Duration(2));
  problem.setMaxPower(Watts::fromWatts(20.0));
  problem.setMinPower(Watts::fromWatts(3.0));

  expectPrunedMatchesUnpruned(problem, std::nullopt, "symmetric replicas");
  EXPECT_GT(runSearch(problem, kAllOn, 1).prunedSymmetry, 0u);
}

TEST(PruningEquivalence, EqualPowerResourcesHitDominance) {
  // Equal tasks on three *distinct* resources: not a symmetry class (the
  // canonical order only covers same-resource replicas), but different
  // placements reach identical merged profiles with an empty frontier, so
  // the dominance table must fire and stay invisible.
  Problem problem("equal_power_lanes");
  const ResourceId ra = problem.addResource("ra");
  const ResourceId rb = problem.addResource("rb");
  const ResourceId rc = problem.addResource("rc");
  problem.addTask("lane_a", Duration(2), Watts::fromWatts(4.0), ra);
  problem.addTask("lane_b", Duration(2), Watts::fromWatts(4.0), rb);
  problem.addTask("lane_c", Duration(2), Watts::fromWatts(4.0), rc);
  problem.setMaxPower(Watts::fromWatts(20.0));
  problem.setMinPower(Watts::fromWatts(3.0));

  expectPrunedMatchesUnpruned(problem, std::nullopt, "equal-power lanes");
  EXPECT_GT(runSearch(problem, kAllOn, 1).prunedDominance, 0u);
}

TEST(PruningEquivalence, InfeasibleHorizonAgrees) {
  // A horizon too small for any schedule: the pruned search empties every
  // start window up front but must report the same infeasibility verdict.
  const GeneratedProblem gp = generateRandomProblem(smallConfig(3));
  const Outcome reference = runSearch(gp.problem, kAllOff, 1, Time(1));
  EXPECT_EQ(reference.status, SchedStatus::kPowerInfeasible);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    EXPECT_EQ(runSearch(gp.problem, kAllOn, jobs, Time(1)), reference)
        << "infeasible horizon, jobs=" << jobs;
  }
}

}  // namespace
}  // namespace paws
