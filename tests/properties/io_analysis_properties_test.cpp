// Second property sweep: serialization, window, and analysis invariants
// over seeded random instances.
#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "analysis/battery_stress.hpp"
#include "gen/random_problem.hpp"
#include "graph/longest_path.hpp"
#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "io/writer.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/timing_scheduler.hpp"
#include "sched/windows.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

class SeededIoAnalysis : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  GeneratedProblem generate() const {
    GeneratorConfig cfg;
    cfg.seed = GetParam();
    cfg.numTasks = 16;
    cfg.numResources = 4;
    cfg.pmaxHeadroomMw = 500;
    return generateRandomProblem(cfg);
  }
};

TEST_P(SeededIoAnalysis, ProblemTextRoundTripsExactly) {
  const GeneratedProblem gp = generate();
  const std::string text = io::problemToText(gp.problem);
  const io::ParseResult parsed = io::parseProblem(text);
  ASSERT_TRUE(parsed.ok())
      << "seed " << GetParam() << ": " << io::format(parsed.errors[0]);
  const Problem& back = *parsed.problem;
  ASSERT_EQ(back.numTasks(), gp.problem.numTasks());
  ASSERT_EQ(back.constraints().size(), gp.problem.constraints().size());
  for (TaskId v : gp.problem.taskIds()) {
    const Task& orig = gp.problem.task(v);
    const auto found = back.findTask(orig.name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(back.task(*found).delay, orig.delay);
    EXPECT_EQ(back.task(*found).power, orig.power);
  }
  EXPECT_EQ(back.maxPower(), gp.problem.maxPower());
  EXPECT_EQ(back.minPower(), gp.problem.minPower());
  // The witness stays valid against the reparsed problem (ids preserved).
  const Schedule witness(&back, gp.witnessStarts);
  EXPECT_TRUE(ScheduleValidator(back).validate(witness).valid());
}

TEST_P(SeededIoAnalysis, ScheduleTextRoundTripsExactly) {
  const GeneratedProblem gp = generate();
  const Schedule witness(&gp.problem, gp.witnessStarts);
  const std::string text = io::scheduleToText(witness, "witness");
  const io::ScheduleParseResult parsed = io::parseSchedule(text, gp.problem);
  ASSERT_TRUE(parsed.ok()) << "seed " << GetParam();
  EXPECT_EQ(parsed.schedule->starts(), witness.starts());
}

TEST_P(SeededIoAnalysis, WindowsContainEveryScheduleWithinTheHorizon) {
  const GeneratedProblem gp = generate();
  ConstraintGraph g = gp.problem.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(gp.problem);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_TRUE(out.ok);
  const Time finish = finishOf(gp.problem, out.starts);
  const auto windows = computeStartWindows(gp.problem, g, finish);
  for (TaskId v : gp.problem.taskIds()) {
    EXPECT_GE(out.starts[v.index()], windows[v.index()].earliest)
        << "seed " << GetParam();
    EXPECT_LE(out.starts[v.index()], windows[v.index()].latest)
        << "seed " << GetParam();
  }
  // The witness also fits within windows for ITS horizon, computed on the
  // user graph (no serialization decisions).
  const ConstraintGraph userGraph = gp.problem.buildGraph();
  const Time wfinish = finishOf(gp.problem, gp.witnessStarts);
  const auto userWindows =
      computeStartWindows(gp.problem, userGraph, wfinish);
  for (TaskId v : gp.problem.taskIds()) {
    EXPECT_GE(gp.witnessStarts[v.index()], userWindows[v.index()].earliest);
    EXPECT_LE(gp.witnessStarts[v.index()], userWindows[v.index()].latest);
  }
}

TEST_P(SeededIoAnalysis, EcCurveIsConvexDecreasingAndExact) {
  const GeneratedProblem gp = generate();
  const Schedule witness(&gp.problem, gp.witnessStarts);
  const auto curve = ScheduleAnalysis::energyCostCurve(witness);
  ASSERT_GE(curve.size(), 1u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].cost, curve[i - 1].cost);
    // Midpoint evaluation lies on the chord or below (convexity of
    // integral of max(0, P - x)).
    const Watts mid = Watts::fromMilliwatts(
        (curve[i - 1].pmin.milliwatts() + curve[i].pmin.milliwatts()) / 2);
    const Energy at = ScheduleAnalysis::energyCostAt(witness, mid);
    EXPECT_LE(at, curve[i - 1].cost);
    EXPECT_GE(at, curve[i].cost);
  }
  EXPECT_EQ(curve.back().cost, Energy::zero());
}

TEST_P(SeededIoAnalysis, MinPowerStageNeverWorsensBatteryStress) {
  const GeneratedProblem gp = generate();
  MaxPowerScheduler maxOnly(gp.problem);
  MaxPowerScheduler::Detailed det = maxOnly.scheduleDetailed();
  if (!det.result.ok()) {
    SUCCEED();
    return;
  }
  MinPowerScheduler pipeline(gp.problem);
  const ScheduleResult after =
      pipeline.improve(*det.graph, *det.result.schedule);
  ASSERT_TRUE(after.ok());
  const Watts pmin = gp.problem.minPower();
  const BatteryStressReport rb =
      analyzeBatteryStress(det.result.schedule->powerProfile(), pmin);
  const BatteryStressReport ra =
      analyzeBatteryStress(after.schedule->powerProfile(), pmin);
  EXPECT_LE(ra.drawnEnergy, rb.drawnEnergy) << "seed " << GetParam();
}

TEST_P(SeededIoAnalysis, ListSchedulerNeverExceedsTheBudget) {
  const GeneratedProblem gp = generate();
  ListScheduler list(gp.problem);
  const ScheduleResult r = list.schedule();
  if (!r.ok()) {
    SUCCEED();
    return;
  }
  EXPECT_TRUE(
      r.schedule->powerProfile().spikes(gp.problem.maxPower()).empty())
      << "seed " << GetParam();
}

TEST_P(SeededIoAnalysis, SustainedFloorIsTightOnTheWitness) {
  const GeneratedProblem gp = generate();
  const Schedule witness(&gp.problem, gp.witnessStarts);
  const Watts floor = ScheduleAnalysis::sustainedFloor(witness);
  EXPECT_DOUBLE_EQ(ScheduleAnalysis::utilizationAt(witness, floor), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededIoAnalysis, ::testing::Range(1u, 25u));

}  // namespace
}  // namespace paws
