// Property test for the incremental power::ProfileEngine — the power-side
// mirror of tests/graph/longest_path_restore_test.cpp: any sequence of
// {addTask, removeTask, moveTask, checkpoint, restore, release} must leave
// the engine byte-identical to a PowerProfileBuilder full rebuild over the
// same live contributions — the merged segment list AND every cached
// aggregate (finish, peak, total energy, Ec(Pmin), capped energy,
// utilization, first-spike/first-gap cursors, gap list, active-task index).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "base/interval.hpp"
#include "power/profile.hpp"
#include "power/profile_engine.hpp"

namespace paws {
namespace {

using power::ProfileEngine;

std::uint32_t nextRand(std::uint32_t& state) {
  std::uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return state = x;
}

struct Model {
  Watts background;
  Watts pmin;
  Watts pmax;
  // Live contributions, by task id.
  std::map<std::uint32_t, std::pair<Interval, Watts>> tasks;

  [[nodiscard]] PowerProfile rebuild() const {
    PowerProfileBuilder builder;
    for (const auto& [id, contribution] : tasks) {
      builder.add(contribution.first, contribution.second);
    }
    return builder.build(background);
  }
};

/// Every query the engine caches, checked against a full rebuild.
void expectMatchesRebuild(const Model& model, const ProfileEngine& engine,
                          std::uint32_t& rng) {
  const PowerProfile full = model.rebuild();

  ASSERT_EQ(engine.finish(), full.finish());
  ASSERT_EQ(engine.peak(), full.peak());
  ASSERT_EQ(engine.totalEnergy(), full.totalEnergy());
  ASSERT_EQ(engine.energyAbove(), full.energyAbove(model.pmin));
  ASSERT_EQ(engine.energyCapped(), full.energyCappedAt(model.pmin));
  ASSERT_EQ(engine.utilization(), full.utilization(model.pmin));

  // Exact merged segment list.
  const PowerProfile snap = engine.snapshot();
  ASSERT_EQ(snap.segments().size(), full.segments().size());
  for (std::size_t i = 0; i < full.segments().size(); ++i) {
    ASSERT_EQ(snap.segments()[i].interval, full.segments()[i].interval)
        << "segment " << i;
    ASSERT_EQ(snap.segments()[i].power, full.segments()[i].power)
        << "segment " << i;
  }

  // Spike / gap cursors, probed from several origins.
  const std::vector<Time> froms = {
      Time::minusInfinity(), Time(0), Time(1),
      Time(static_cast<std::int64_t>(nextRand(rng) % 40)),
      engine.finish(),
  };
  for (const Time from : froms) {
    ASSERT_EQ(engine.firstSpike(from), full.firstSpike(model.pmax, from))
        << "firstSpike from " << from.ticks();
    ASSERT_EQ(engine.firstGap(from), full.firstGap(model.pmin, from))
        << "firstGap from " << from.ticks();
  }
  ASSERT_EQ(engine.gaps(), full.gaps(model.pmin));

  // Point probes: value and the active-interval index.
  for (int probe = 0; probe < 6; ++probe) {
    const Time t(static_cast<std::int64_t>(nextRand(rng) % 45) - 2);
    ASSERT_EQ(engine.valueAt(t), full.valueAt(t)) << "t=" << t.ticks();
    std::vector<TaskId> expected;
    for (const auto& [id, contribution] : model.tasks) {
      if (contribution.first.contains(t)) expected.emplace_back(id);
    }
    ASSERT_EQ(engine.activeAt(t), expected) << "t=" << t.ticks();
  }
}

struct Frame {
  ProfileEngine::Checkpoint cp;
  std::map<std::uint32_t, std::pair<Interval, Watts>> tasks;  // model state
};

TEST(ProfileEnginePropertiesTest, RandomOpSequencesMatchFullRebuild) {
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    std::uint32_t rng = seed;
    Model model;
    model.background = Watts::fromMilliwatts(nextRand(rng) % 3 * 500);
    model.pmin = Watts::fromMilliwatts(1000 + nextRand(rng) % 4000);
    model.pmax = model.pmin + Watts::fromMilliwatts(nextRand(rng) % 5000);
    ProfileEngine engine(model.background, model.pmin, model.pmax);

    const std::uint32_t numIds = 6 + nextRand(rng) % 6;
    std::uint32_t nextId = 1;

    const auto randomInterval = [&rng] {
      const Time begin(static_cast<std::int64_t>(nextRand(rng) % 30));
      const Duration len(static_cast<std::int64_t>(nextRand(rng) % 8));
      return Interval(begin, begin + len);  // occasionally empty (len 0)
    };
    const auto randomWatts = [&rng] {
      // Zero power now and then: must still extend the span.
      const std::uint32_t mw = nextRand(rng) % 5;
      return Watts::fromMilliwatts(static_cast<std::int64_t>(mw) * 900);
    };

    const auto doAdd = [&] {
      const std::uint32_t id = nextId++;
      const Interval iv = randomInterval();
      const Watts w = randomWatts();
      engine.addTask(TaskId(id), iv, w);
      model.tasks.emplace(id, std::make_pair(iv, w));
    };
    const auto doRemove = [&] {
      if (model.tasks.empty()) return;
      auto it = model.tasks.begin();
      std::advance(it, nextRand(rng) % model.tasks.size());
      engine.removeTask(TaskId(it->first));
      model.tasks.erase(it);
    };
    const auto doMove = [&] {
      if (model.tasks.empty()) return;
      auto it = model.tasks.begin();
      std::advance(it, nextRand(rng) % model.tasks.size());
      const Time newStart(static_cast<std::int64_t>(nextRand(rng) % 30));
      engine.moveTask(TaskId(it->first), newStart);
      it->second.first =
          Interval(newStart, newStart + it->second.first.length());
    };

    for (std::uint32_t i = 0; i < numIds / 2; ++i) doAdd();
    expectMatchesRebuild(model, engine, rng);

    std::vector<Frame> stack;
    for (int op = 0; op < 80; ++op) {
      const std::uint32_t pick = nextRand(rng) % 12;
      if (pick < 3 && stack.size() < 5) {
        // Open a frame, then mutate inside it.
        stack.push_back(Frame{engine.checkpoint(), model.tasks});
        const std::uint32_t ops = 1 + nextRand(rng) % 3;
        for (std::uint32_t j = 0; j < ops; ++j) {
          const std::uint32_t inner = nextRand(rng) % 3;
          if (inner == 0) {
            doAdd();
          } else if (inner == 1) {
            doRemove();
          } else {
            doMove();
          }
        }
      } else if (pick < 5 && !stack.empty()) {
        // Undo the innermost frame exactly.
        engine.restore(stack.back().cp);
        model.tasks = std::move(stack.back().tasks);
        stack.pop_back();
      } else if (pick == 5 && !stack.empty()) {
        // Keep the innermost frame's mutations.
        engine.release(stack.back().cp);
        stack.pop_back();
      } else if (pick < 8) {
        doAdd();
      } else if (pick < 10) {
        doRemove();
      } else {
        doMove();
      }
      expectMatchesRebuild(model, engine, rng);
    }

    // Unwind the remaining frames, checking at every level.
    while (!stack.empty()) {
      engine.restore(stack.back().cp);
      model.tasks = std::move(stack.back().tasks);
      stack.pop_back();
      expectMatchesRebuild(model, engine, rng);
    }
  }
}

TEST(ProfileEnginePropertiesTest, MetricsCountersTrackOps) {
  ProfileEngine engine(Watts::zero(), Watts::fromWatts(1.0),
                       Watts::fromWatts(10.0));
  engine.addTask(TaskId(1), Interval(Time(0), Time(5)),
                 Watts::fromWatts(2.0));
  engine.addTask(TaskId(2), Interval(Time(3), Time(8)),
                 Watts::fromWatts(3.0));
  EXPECT_EQ(engine.incrementalUpdates(), 2u);
  const auto cp = engine.checkpoint();
  engine.moveTask(TaskId(1), Time(6));
  EXPECT_EQ(engine.incrementalUpdates(), 3u);
  engine.restore(cp);
  EXPECT_EQ(engine.restores(), 1u);
  EXPECT_EQ(engine.taskInterval(TaskId(1)), Interval(Time(0), Time(5)));
  EXPECT_EQ(engine.rebuilds(), 0u);
}

}  // namespace
}  // namespace paws
