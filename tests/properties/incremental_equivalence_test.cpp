// Byte-identical equivalence of the incremental ProfileEngine paths against
// the legacy full-rebuild paths, across all three schedulers, on the
// paper's example and a sweep of seeded random instances. This is the
// acceptance gate for the incremental engine: flipping
// `incrementalProfile` must change effort counters only, never a single
// start time, status, or stats field the search semantics feed.
#include <gtest/gtest.h>

#include <vector>

#include "gen/random_problem.hpp"
#include "model/paper_example.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws {
namespace {

void expectSameResult(const ScheduleResult& a, const ScheduleResult& b,
                      const char* what, std::uint32_t seed) {
  ASSERT_EQ(a.status, b.status) << what << " seed " << seed;
  ASSERT_EQ(a.schedule.has_value(), b.schedule.has_value())
      << what << " seed " << seed;
  if (a.schedule.has_value()) {
    ASSERT_EQ(a.schedule->starts(), b.schedule->starts())
        << what << " seed " << seed;
  }
  // The searches must have taken the exact same decisions, not merely
  // reached the same answer.
  EXPECT_EQ(a.stats.delays, b.stats.delays) << what << " seed " << seed;
  EXPECT_EQ(a.stats.locks, b.stats.locks) << what << " seed " << seed;
  EXPECT_EQ(a.stats.recursions, b.stats.recursions)
      << what << " seed " << seed;
  EXPECT_EQ(a.stats.improvements, b.stats.improvements)
      << what << " seed " << seed;
}

void checkMaxAndMinPower(const Problem& problem, std::uint32_t seed) {
  {
    MaxPowerOptions on;
    on.incrementalProfile = true;
    MaxPowerOptions off = on;
    off.incrementalProfile = false;
    const ScheduleResult a = MaxPowerScheduler(problem, on).schedule();
    const ScheduleResult b = MaxPowerScheduler(problem, off).schedule();
    expectSameResult(a, b, "max-power", seed);
  }
  {
    MinPowerOptions on;
    on.incrementalProfile = true;
    MinPowerOptions off = on;
    off.incrementalProfile = false;
    // Cross the flags in the nested max-power stage too.
    off.maxPower.incrementalProfile = false;
    const ScheduleResult a = MinPowerScheduler(problem, on).schedule();
    const ScheduleResult b = MinPowerScheduler(problem, off).schedule();
    expectSameResult(a, b, "min-power", seed);
  }
}

TEST(IncrementalEquivalenceTest, PaperExampleMaxAndMinPower) {
  checkMaxAndMinPower(makePaperExampleProblem(), 0);
}

TEST(IncrementalEquivalenceTest, RandomInstancesMaxAndMinPower) {
  for (std::uint32_t seed = 1; seed <= 22; ++seed) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.numTasks = 14;
    cfg.numResources = 3;
    // Tight budgets so the spike-elimination and gap-filling loops really
    // run (headroom 0 keeps Pmax at the witness peak; half the instances
    // get a nonzero background so the utilization arithmetic is exercised
    // off the zero fast path).
    cfg.pmaxHeadroomMw = (seed % 2 == 0) ? 0 : 800;
    cfg.pminFraction = 0.7;
    if (seed % 2 == 0) cfg.backgroundPower = Watts::fromMilliwatts(250);
    const GeneratedProblem gp = generateRandomProblem(cfg);
    checkMaxAndMinPower(gp.problem, seed);
  }
}

TEST(IncrementalEquivalenceTest, ExhaustiveSearchBitIdentical) {
  // Small instances; the exhaustive DFS visits every node either way, so
  // identical prunings <=> identical node counts and winners.
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.numTasks = 4;
    cfg.numResources = 2;
    cfg.maxDelay = 3;
    cfg.pmaxHeadroomMw = 400;
    const GeneratedProblem gp = generateRandomProblem(cfg);

    ExhaustiveOptions on;
    on.incrementalProfile = true;
    ExhaustiveOptions off = on;
    off.incrementalProfile = false;

    ExhaustiveScheduler sa(gp.problem, on);
    const ScheduleResult a = sa.schedule();
    ExhaustiveScheduler sb(gp.problem, off);
    const ScheduleResult b = sb.schedule();

    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    ASSERT_EQ(a.schedule.has_value(), b.schedule.has_value())
        << "seed " << seed;
    if (a.schedule.has_value()) {
      EXPECT_EQ(a.schedule->starts(), b.schedule->starts())
          << "seed " << seed;
    }
    // Same prunings => the searches expanded the same tree.
    EXPECT_EQ(sa.outcome().nodesExplored, sb.outcome().nodesExplored)
        << "seed " << seed;
    EXPECT_EQ(sa.outcome().provenOptimal, sb.outcome().provenOptimal)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace paws
