// Repair invariants over random instances and random disruption points:
// history is immutable, the future respects the new limits, and repair
// under unchanged limits never invents violations.
#include <gtest/gtest.h>

#include <random>

#include "gen/random_problem.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/repair.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

class RepairProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RepairProperty, HistoryFrozenFutureLegal) {
  GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.numTasks = 14;
  cfg.numResources = 4;
  cfg.pmaxHeadroomMw = 1000;
  const GeneratedProblem gp = generateRandomProblem(cfg);

  MinPowerScheduler pipeline(gp.problem);
  const ScheduleResult base = pipeline.schedule();
  if (!base.ok()) {
    SUCCEED();
    return;
  }

  std::mt19937 rng(GetParam() * 37 + 1);
  const std::int64_t span = base.schedule->finish().ticks();
  if (span < 2) return;
  const Time now(1 + static_cast<std::int64_t>(
                         rng() % static_cast<std::uint64_t>(span - 1)));

  // Disruption: drop the budget by up to 20% (but keep singles feasible).
  Watts heaviest = Watts::zero();
  for (TaskId v : gp.problem.taskIds()) {
    heaviest = std::max(heaviest, gp.problem.task(v).power);
  }
  const Watts floor = heaviest + gp.problem.backgroundPower();
  Watts newPmax = Watts::fromMilliwatts(
      gp.problem.maxPower().milliwatts() -
      static_cast<std::int64_t>(rng() % 2000));
  newPmax = std::max(newPmax, floor);

  Problem updated(gp.problem);
  updated.setMaxPower(newPmax);
  const RepairInput input{&updated, &*base.schedule, now};
  const ScheduleResult repaired = repairSchedule(input);
  if (!repaired.ok()) {
    SUCCEED();  // the heuristic may fail under the tighter budget
    return;
  }

  // History is bit-identical; the future never reaches back.
  for (TaskId v : gp.problem.taskIds()) {
    if (base.schedule->start(v) < now) {
      EXPECT_EQ(repaired.schedule->start(v), base.schedule->start(v))
          << "seed " << GetParam();
    } else {
      EXPECT_GE(repaired.schedule->start(v), now) << "seed " << GetParam();
    }
  }
  // Timing and exclusivity hold everywhere; the new budget holds from
  // `now` on (historical spikes are tolerated by design).
  const ValidationReport report =
      ScheduleValidator(updated).validate(*repaired.schedule);
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.kind, Violation::Kind::kPowerSpike)
        << "seed " << GetParam() << ": " << v;
  }
  for (const Interval& spike :
       repaired.schedule->powerProfile().spikes(newPmax)) {
    EXPECT_LT(spike.begin(), now) << "seed " << GetParam();
  }
}

TEST_P(RepairProperty, NoOpRepairIsStillValid) {
  GeneratorConfig cfg;
  cfg.seed = GetParam() * 53 + 7;
  cfg.numTasks = 10;
  cfg.numResources = 3;
  cfg.pmaxHeadroomMw = 1000;
  const GeneratedProblem gp = generateRandomProblem(cfg);
  MinPowerScheduler pipeline(gp.problem);
  const ScheduleResult base = pipeline.schedule();
  if (!base.ok()) {
    SUCCEED();
    return;
  }
  const Time mid(base.schedule->finish().ticks() / 2);
  const RepairInput input{&gp.problem, &*base.schedule, mid};
  const ScheduleResult repaired = repairSchedule(input);
  ASSERT_TRUE(repaired.ok()) << "seed " << cfg.seed << ": "
                             << repaired.message;
  EXPECT_TRUE(
      ScheduleValidator(gp.problem).validate(*repaired.schedule).valid())
      << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty, ::testing::Range(1u, 21u));

TEST(ProblemCopyTest, CopiesAreIndependent) {
  Problem original("orig");
  const ResourceId r1 = original.addResource("r1");
  original.addTask("a", Duration(5), Watts::fromWatts(2.0), r1);

  Problem copy(original);
  copy.addTask("b", Duration(3), Watts::fromWatts(1.0), r1);
  copy.setMaxPower(Watts::fromWatts(9.0));
  copy.minSeparation(TaskId(1), TaskId(2), Duration(5));

  EXPECT_EQ(original.numTasks(), 1u);
  EXPECT_EQ(copy.numTasks(), 2u);
  EXPECT_FALSE(original.findTask("b").has_value());
  EXPECT_TRUE(copy.findTask("b").has_value());
  EXPECT_EQ(original.maxPower(), Watts::max());
  EXPECT_TRUE(original.constraints().empty());
  EXPECT_EQ(copy.constraints().size(), 1u);
}

}  // namespace
}  // namespace paws
