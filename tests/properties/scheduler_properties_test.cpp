// Parameterized property sweeps: the scheduler-stack invariants the paper
// relies on, checked against seeded random instances that are feasible by
// construction (see gen/random_problem.hpp).
#include <gtest/gtest.h>

#include "gen/random_problem.hpp"
#include "graph/longest_path.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "sched/slack.hpp"
#include "sched/timing_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  GeneratedProblem generate(std::size_t tasks = 18,
                            std::size_t resources = 4) const {
    GeneratorConfig cfg;
    cfg.seed = GetParam();
    cfg.numTasks = tasks;
    cfg.numResources = resources;
    cfg.pmaxHeadroomMw = 500;  // a little room above the witness peak
    return generateRandomProblem(cfg);
  }
};

TEST_P(SeededProperty, TimingSchedulerAlwaysSolvesFeasibleInstances) {
  const GeneratedProblem gp = generate();
  ConstraintGraph g = gp.problem.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(gp.problem);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_TRUE(out.ok) << "seed " << GetParam() << ": " << out.message;
  const Schedule s(&gp.problem, out.starts);
  const auto report = ScheduleValidator(gp.problem).validate(s);
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.kind, Violation::Kind::kPowerSpike)
        << "seed " << GetParam() << ": " << v;
  }
}

TEST_P(SeededProperty, TimingScheduleNeverBeatsWitnessConstraints) {
  // The ASAP schedule finishes no later than the witness (it is the
  // earliest schedule for SOME serialization; the witness is A solution).
  // This is a heuristic-quality canary rather than a hard theorem for
  // arbitrary orders, so we only check the schedule is not wildly worse.
  const GeneratedProblem gp = generate();
  ConstraintGraph g = gp.problem.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(gp.problem);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_TRUE(out.ok);
  const Time witnessFinish =
      finishOf(gp.problem, gp.witnessStarts);
  const Time ourFinish = finishOf(gp.problem, out.starts);
  EXPECT_LE(ourFinish.ticks(), 2 * witnessFinish.ticks() + 1)
      << "seed " << GetParam();
}

TEST_P(SeededProperty, SlackDelayPreservesValidity) {
  // For every task: delaying it alone by its slack (when finite) keeps the
  // schedule time-valid — the defining slack property of Section 4.1.
  const GeneratedProblem gp = generate();
  ConstraintGraph g = gp.problem.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(gp.problem);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_TRUE(out.ok);
  const std::vector<Duration> slacks = computeSlacks(g, out.starts);
  const ScheduleValidator validator(gp.problem);
  for (TaskId v : gp.problem.taskIds()) {
    if (slacks[v.index()] == Duration::max()) continue;
    if (slacks[v.index()].isZero()) continue;
    std::vector<Time> delayed = out.starts;
    delayed[v.index()] += slacks[v.index()];
    const auto report = validator.validate(Schedule(&gp.problem, delayed));
    bool timingBroken = false;
    for (const Violation& viol : report.violations) {
      if (viol.kind == Violation::Kind::kMinSeparation ||
          viol.kind == Violation::Kind::kMaxSeparation) {
        timingBroken = true;
      }
      // Resource overlaps with *earlier* same-resource tasks cannot happen
      // (delay only moves right); overlaps with later ones are prevented by
      // serialization edges, which slacks respect.
      if (viol.kind == Violation::Kind::kResourceOverlap) {
        timingBroken = true;
      }
    }
    EXPECT_FALSE(timingBroken)
        << "seed " << GetParam() << " task " << gp.problem.task(v).name
        << " slack " << slacks[v.index()].ticks();
  }
}

TEST_P(SeededProperty, MaxPowerOutputRespectsBudgetWhenItSucceeds) {
  const GeneratedProblem gp = generate();
  MaxPowerScheduler scheduler(gp.problem);
  const ScheduleResult r = scheduler.schedule();
  if (!r.ok()) {
    // The heuristic may fail on feasible instances (paper Section 5.2);
    // that is an accepted outcome, not silent invalidity.
    SUCCEED();
    return;
  }
  const auto report = ScheduleValidator(gp.problem).validate(*r.schedule);
  EXPECT_TRUE(report.valid()) << "seed " << GetParam();
}

TEST_P(SeededProperty, MinPowerNeverRegressesAndStaysValid) {
  const GeneratedProblem gp = generate();
  MaxPowerScheduler maxPower(gp.problem);
  MaxPowerScheduler::Detailed det = maxPower.scheduleDetailed();
  if (!det.result.ok()) {
    SUCCEED();
    return;
  }
  const double rhoBefore =
      det.result.schedule->utilization(gp.problem.minPower());
  MinPowerScheduler minPower(gp.problem);
  ScheduleResult improved =
      minPower.improve(*det.graph, *det.result.schedule);
  ASSERT_TRUE(improved.ok());
  EXPECT_GE(improved.schedule->utilization(gp.problem.minPower()) + 1e-12,
            rhoBefore)
      << "seed " << GetParam();
  EXPECT_TRUE(
      ScheduleValidator(gp.problem).validate(*improved.schedule).valid())
      << "seed " << GetParam();
}

TEST_P(SeededProperty, EnergyAccountingIsConsistent) {
  // Ec(Pmin) + cappedEnergy(Pmin) == totalEnergy for any schedule.
  const GeneratedProblem gp = generate();
  const Schedule witness(&gp.problem, gp.witnessStarts);
  const PowerProfile& prof = witness.powerProfile();
  const Watts pmin = gp.problem.minPower();
  EXPECT_EQ(prof.energyAbove(pmin) + prof.energyCappedAt(pmin),
            prof.totalEnergy());
  const double rho = prof.utilization(pmin);
  EXPECT_GE(rho, 0.0);
  EXPECT_LE(rho, 1.0 + 1e-12);
}

TEST_P(SeededProperty, SerialSchedulerProducesNonOverlappingValidSchedules) {
  const GeneratedProblem gp = generate(14, 3);
  SerialScheduler serial(gp.problem);
  const ScheduleResult r = serial.schedule();
  if (!r.ok()) {
    SUCCEED();  // windows may forbid full serialization
    return;
  }
  const auto report = ScheduleValidator(gp.problem).validate(*r.schedule);
  EXPECT_TRUE(report.timeValid()) << "seed " << GetParam();
  const auto ids = gp.problem.taskIds();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_FALSE(r.schedule->interval(ids[i])
                       .overlaps(r.schedule->interval(ids[j])));
    }
  }
}

TEST_P(SeededProperty, SchedulersAreDeterministic) {
  const GeneratedProblem gp = generate();
  MinPowerScheduler a(gp.problem);
  MinPowerScheduler b(gp.problem);
  const ScheduleResult ra = a.schedule();
  const ScheduleResult rb = b.schedule();
  ASSERT_EQ(ra.ok(), rb.ok());
  if (ra.ok()) {
    EXPECT_EQ(ra.schedule->starts(), rb.schedule->starts())
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range(1u, 33u));  // 32 seeds

}  // namespace
}  // namespace paws
