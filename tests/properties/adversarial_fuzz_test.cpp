// Adversarial fuzz: arbitrary constraint soup with NO feasibility
// guarantee. The robustness contract under attack inputs is narrow and
// absolute: every scheduler terminates within its budget and NEVER returns
// a schedule the independent validator rejects — failing is always
// acceptable, lying never is.
#include <gtest/gtest.h>

#include <random>

#include "sched/exhaustive_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

Problem adversarialProblem(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const auto uniform = [&rng](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  Problem p("adversarial" + std::to_string(seed));
  const std::size_t numResources = 1 + rng() % 4;
  std::vector<ResourceId> resources;
  for (std::size_t r = 0; r < numResources; ++r) {
    resources.push_back(p.addResource("r" + std::to_string(r)));
  }
  const std::size_t numTasks = 2 + rng() % 10;
  std::vector<TaskId> tasks;
  for (std::size_t i = 0; i < numTasks; ++i) {
    tasks.push_back(p.addTask("t" + std::to_string(i),
                              Duration(uniform(1, 8)),
                              Watts::fromMilliwatts(uniform(0, 9000)),
                              resources[rng() % numResources]));
  }
  // Random constraint soup: mins and maxes in both directions, possibly
  // contradictory, possibly cyclic.
  const std::size_t numConstraints = rng() % (3 * numTasks);
  for (std::size_t k = 0; k < numConstraints; ++k) {
    const TaskId u = tasks[rng() % numTasks];
    const TaskId v = tasks[rng() % numTasks];
    if (u == v) continue;
    const Duration sep(uniform(-5, 25));
    if (rng() % 2) {
      p.minSeparation(u, v, sep);
    } else {
      p.maxSeparation(u, v, sep);
    }
  }
  // Budget that may or may not be satisfiable.
  p.setMaxPower(Watts::fromMilliwatts(uniform(2000, 15000)));
  p.setMinPower(Watts::fromMilliwatts(uniform(0, 8000)));
  p.setBackgroundPower(Watts::fromMilliwatts(uniform(0, 1500)));
  return p;
}

class AdversarialFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AdversarialFuzz, SchedulersNeverLie) {
  const Problem p = adversarialProblem(GetParam());
  const ScheduleValidator validator(p);

  {
    MinPowerOptions opt;
    opt.maxPower.maxDelays = 3000;          // keep the fuzz fast
    opt.maxPower.timing.maxBacktracks = 3000;
    opt.maxPower.maxRecursionDepth = 16;
    MinPowerScheduler pipeline(p, opt);
    const ScheduleResult r = pipeline.schedule();
    if (r.ok()) {
      EXPECT_TRUE(validator.validate(*r.schedule).valid())
          << "pipeline lied on seed " << GetParam();
    }
  }
  {
    TimingOptions opt;
    opt.maxBacktracks = 3000;
    SerialScheduler serial(p, opt);
    const ScheduleResult r = serial.schedule();
    if (r.ok()) {
      EXPECT_TRUE(validator.validate(*r.schedule).timeValid())
          << "serial lied on seed " << GetParam();
    }
  }
  {
    ListScheduler list(p);
    const ScheduleResult r = list.schedule();
    if (r.ok()) {
      // The greedy baseline is allowed to break max separations only.
      const auto report = validator.validate(*r.schedule);
      for (const Violation& v : report.violations) {
        EXPECT_EQ(v.kind, Violation::Kind::kMaxSeparation)
            << "list scheduler broke a hard guarantee on seed "
            << GetParam() << ": " << v;
      }
    }
  }
}

TEST_P(AdversarialFuzz, ExhaustiveOracleNeverLies) {
  // Smaller instances for the oracle; its verdicts must be validator-true.
  const Problem p = adversarialProblem(GetParam() * 977 + 3);
  if (p.numTasks() > 5) return;
  ExhaustiveOptions opt;
  opt.maxNodes = 300000;
  ExhaustiveScheduler oracle(p, opt);
  const ScheduleResult r = oracle.schedule();
  if (r.ok()) {
    EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).valid())
        << "oracle lied on seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialFuzz, ::testing::Range(1u, 41u));

}  // namespace
}  // namespace paws
