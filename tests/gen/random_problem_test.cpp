#include "gen/random_problem.hpp"

#include <gtest/gtest.h>

#include "validate/validator.hpp"

namespace paws {
namespace {

TEST(GeneratorTest, RespectsShapeParameters) {
  GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.numTasks = 25;
  cfg.numResources = 5;
  const GeneratedProblem gp = generateRandomProblem(cfg);
  EXPECT_EQ(gp.problem.numTasks(), 25u);
  EXPECT_EQ(gp.problem.numResources(), 5u);
  for (TaskId v : gp.problem.taskIds()) {
    const Task& t = gp.problem.task(v);
    EXPECT_GE(t.delay.ticks(), cfg.minDelay);
    EXPECT_LE(t.delay.ticks(), cfg.maxDelay);
    EXPECT_GE(t.power.milliwatts(), cfg.minPowerMw);
    EXPECT_LE(t.power.milliwatts(), cfg.maxPowerMw);
  }
}

TEST(GeneratorTest, IsDeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.seed = 11;
  const GeneratedProblem a = generateRandomProblem(cfg);
  const GeneratedProblem b = generateRandomProblem(cfg);
  EXPECT_EQ(a.problem.numTasks(), b.problem.numTasks());
  EXPECT_EQ(a.problem.constraints().size(), b.problem.constraints().size());
  EXPECT_EQ(a.witnessStarts, b.witnessStarts);
  for (TaskId v : a.problem.taskIds()) {
    EXPECT_EQ(a.problem.task(v).power, b.problem.task(v).power);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generateRandomProblem(a).witnessStarts,
            generateRandomProblem(b).witnessStarts);
}

TEST(GeneratorTest, WitnessScheduleIsFullyValid) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    const GeneratedProblem gp = generateRandomProblem(cfg);
    const Schedule witness(&gp.problem, gp.witnessStarts);
    const auto report = ScheduleValidator(gp.problem).validate(witness);
    EXPECT_TRUE(report.valid())
        << "seed " << seed << ": "
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }
}

TEST(GeneratorTest, ProblemPassesStructuralValidation) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    const GeneratedProblem gp = generateRandomProblem(cfg);
    EXPECT_TRUE(gp.problem.validate().empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace paws
