#include <gtest/gtest.h>

#include "io/lexer.hpp"
#include "io/parser.hpp"
#include "io/writer.hpp"
#include "model/paper_example.hpp"
#include "rover/rover_model.hpp"

namespace paws::io {
namespace {

using namespace paws::literals;

// ---------------------------------------------------------------- lexer --

TEST(LexerTest, TokenKindsAndPositions) {
  const LexResult r = lex("problem \"x\" {\n  pmax 14.9W -> }\n");
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r.tokens.size(), 8u);
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(r.tokens[0].text, "problem");
  EXPECT_EQ(r.tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(r.tokens[1].text, "x");
  EXPECT_EQ(r.tokens[2].kind, TokenKind::kLBrace);
  EXPECT_EQ(r.tokens[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ(r.tokens[3].line, 2);
  EXPECT_EQ(r.tokens[3].column, 3);
  EXPECT_EQ(r.tokens[4].kind, TokenKind::kNumber);
  EXPECT_EQ(r.tokens[4].text, "14.9");
  EXPECT_EQ(r.tokens[5].text, "W");
  EXPECT_EQ(r.tokens[6].kind, TokenKind::kArrow);
  EXPECT_EQ(r.tokens.back().kind, TokenKind::kEof);
}

TEST(LexerTest, CommentsAreSkipped) {
  const LexResult r = lex("# header\nfoo # trailing\nbar");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.tokens.size(), 3u);  // foo, bar, eof
  EXPECT_EQ(r.tokens[0].text, "foo");
  EXPECT_EQ(r.tokens[1].text, "bar");
}

TEST(LexerTest, NegativeNumbers) {
  const LexResult r = lex("-42 - 7");
  ASSERT_FALSE(r.ok()) << "bare '-' is an error";
  EXPECT_EQ(r.tokens[0].text, "-42");
}

TEST(LexerTest, UnterminatedString) {
  const LexResult r = lex("\"oops\nnext");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line, 1);
}

// --------------------------------------------------------------- parser --

constexpr const char* kSample = R"(
# A trimmed rover-like file.
problem "demo" {
  pmax 19W
  pmin 9W
  background 3.7W

  resource heater
  resource driving

  task heat  { resource heater  delay 5  power 11.3W }
  task drive { resource driving delay 10 power 13.8W }

  min heat -> drive 5
  max heat -> drive 50
  release drive 10
  deadline drive 100
}
)";

TEST(ParserTest, ParsesSampleProblem) {
  const ParseResult r = parseProblem(kSample);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  const Problem& p = *r.problem;
  EXPECT_EQ(p.name(), "demo");
  EXPECT_EQ(p.maxPower(), 19_W);
  EXPECT_EQ(p.minPower(), 9_W);
  EXPECT_EQ(p.backgroundPower(), Watts::fromWatts(3.7));
  EXPECT_EQ(p.numTasks(), 2u);
  EXPECT_EQ(p.numResources(), 2u);
  ASSERT_TRUE(p.findTask("heat").has_value());
  EXPECT_EQ(p.task(*p.findTask("heat")).power, Watts::fromWatts(11.3));
  EXPECT_EQ(p.task(*p.findTask("drive")).delay, Duration(10));
  ASSERT_EQ(p.constraints().size(), 4u);
  EXPECT_EQ(p.constraints()[0].kind, TimingConstraint::Kind::kMinSeparation);
  EXPECT_EQ(p.constraints()[1].kind, TimingConstraint::Kind::kMaxSeparation);
  EXPECT_EQ(p.constraints()[1].separation, Duration(50));
}

TEST(ParserTest, MilliwattSuffix) {
  const ParseResult r = parseProblem(
      "problem p { resource r task t { resource r delay 1 power 250mW } }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.problem->task(*r.problem->findTask("t")).power,
            Watts::fromMilliwatts(250));
}

TEST(ParserTest, UnknownTaskReference) {
  const ParseResult r = parseProblem(
      "problem p { resource r min nope -> alsono 5 }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("unknown task"), std::string::npos);
}

TEST(ParserTest, MissingTaskAttribute) {
  const ParseResult r = parseProblem(
      "problem p { resource r task t { resource r delay 5 } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("needs resource, delay and power"),
            std::string::npos);
}

TEST(ParserTest, DuplicateNamesReported) {
  const ParseResult r = parseProblem(
      "problem p { resource r resource r }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("duplicate resource"),
            std::string::npos);
}

TEST(ParserTest, FractionalTicksRejected) {
  const ParseResult r = parseProblem(
      "problem p { resource r task t { resource r delay 2.5 power 1W } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("integral ticks"), std::string::npos);
}

TEST(ParserTest, CollectsMultipleErrors) {
  const ParseResult r = parseProblem(
      "problem p { bogus 12 min a -> b 5 }");
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.errors.size(), 1u);
}

TEST(ParserTest, ErrorPositionsAreUseful) {
  const ParseResult r = parseProblem("problem p {\n  pmax oops\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line, 2);
  EXPECT_EQ(format(r.errors[0]).substr(0, 2), "2:");
}

TEST(ParserTest, MissingFileSurfacesError) {
  const ParseResult r = parseProblemFile("/nonexistent/xyz.paws");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("cannot open"), std::string::npos);
}

// --------------------------------------------------------------- writer --

void expectEquivalent(const Problem& a, const Problem& b) {
  EXPECT_EQ(a.numTasks(), b.numTasks());
  EXPECT_EQ(a.numResources(), b.numResources());
  EXPECT_EQ(a.maxPower(), b.maxPower());
  EXPECT_EQ(a.minPower(), b.minPower());
  EXPECT_EQ(a.backgroundPower(), b.backgroundPower());
  for (TaskId v : a.taskIds()) {
    const Task& ta = a.task(v);
    const auto vb = b.findTask(ta.name);
    ASSERT_TRUE(vb.has_value()) << ta.name;
    const Task& tb = b.task(*vb);
    EXPECT_EQ(ta.delay, tb.delay);
    EXPECT_EQ(ta.power, tb.power);
    EXPECT_EQ(ta.criticality, tb.criticality);
    EXPECT_EQ(a.resource(ta.resource).name, b.resource(tb.resource).name);
  }
  ASSERT_EQ(a.constraints().size(), b.constraints().size());
  for (std::size_t i = 0; i < a.constraints().size(); ++i) {
    const TimingConstraint& ca = a.constraints()[i];
    const TimingConstraint& cb = b.constraints()[i];
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.separation, cb.separation);
    EXPECT_EQ(a.task(ca.to).name, b.task(cb.to).name);
  }
}

/// text -> parse -> text must be a fixed point: the schedule cache keys
/// problems by canonical text, and tools re-save what they loaded, so a
/// drifting writer would silently split cache keys and churn diffs.
void expectFixedPoint(const Problem& p) {
  const std::string t1 = problemToText(p);
  const ParseResult r = parseProblem(t1);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? t1 : format(r.errors[0]));
  EXPECT_EQ(problemToText(*r.problem), t1);
}

TEST(WriterTest, PaperExampleRoundTrips) {
  const Problem original = makePaperExampleProblem();
  const ParseResult r = parseProblem(problemToText(original));
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  expectEquivalent(original, *r.problem);
}

TEST(WriterTest, TextIsAParsePrintFixedPoint) {
  expectFixedPoint(makePaperExampleProblem());
  expectFixedPoint(rover::makeRoverProblem(rover::RoverCase::kWorst, 2));
  Problem p("rd");
  const ResourceId r1 = p.addResource("r1");
  const TaskId t = p.addTask("t", 5_s, 2_W, r1);
  p.release(t, Time(7));
  p.deadline(t, Time(40));
  p.setCriticality(t, 3);
  p.setBackgroundPower(Watts::fromMilliwatts(1));
  expectFixedPoint(p);
}

TEST(WriterTest, NonIdentifierNamesAreQuotedAndRoundTrip) {
  // Names the lexer cannot read bare: spaces, dashes, leading digits. The
  // writer must quote them (regression: it used to emit them bare, and the
  // reparse failed — text -> parse -> text was not even defined).
  Problem p("awkward");
  const ResourceId r1 = p.addResource("main bus");
  const TaskId a = p.addTask("warm-up", 2_s, 1_W, r1);
  const TaskId b = p.addTask("2nd pass", 3_s, 2_W, r1);
  p.minSeparation(a, b, 1_s);
  p.release(b, Time(2));
  const std::string t1 = problemToText(p);
  EXPECT_NE(t1.find("\"warm-up\""), std::string::npos) << t1;
  EXPECT_NE(t1.find("\"2nd pass\""), std::string::npos) << t1;
  EXPECT_NE(t1.find("\"main bus\""), std::string::npos) << t1;
  const ParseResult r = parseProblem(t1);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? t1 : format(r.errors[0]));
  expectEquivalent(p, *r.problem);
  EXPECT_EQ(problemToText(*r.problem), t1);
}

TEST(WriterTest, RoverProblemRoundTrips) {
  const Problem original = rover::makeRoverProblem(rover::RoverCase::kWorst, 2);
  const ParseResult r = parseProblem(problemToText(original));
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  expectEquivalent(original, *r.problem);
}

TEST(WriterTest, ReleaseAndDeadlineRoundTrip) {
  Problem p("rd");
  const ResourceId r1 = p.addResource("r1");
  const TaskId t = p.addTask("t", 5_s, 2_W, r1);
  p.release(t, Time(7));
  p.deadline(t, Time(40));
  const ParseResult r = parseProblem(problemToText(p));
  ASSERT_TRUE(r.ok());
  expectEquivalent(p, *r.problem);
}

TEST(WriterTest, DroppableRankRoundTrips) {
  Problem p("shed");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("critical", 5_s, 2_W, r1);
  const TaskId d = p.addTask("optional", 3_s, 1_W, r1);
  p.setCriticality(d, 7);
  const std::string text = problemToText(p);
  EXPECT_NE(text.find("droppable 7"), std::string::npos) << text;
  const ParseResult r = parseProblem(text);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  expectEquivalent(p, *r.problem);
  EXPECT_FALSE(r.problem->task(*r.problem->findTask("critical")).droppable());
  EXPECT_TRUE(r.problem->task(*r.problem->findTask("optional")).droppable());
}

TEST(ParserTest, ParsesBatteryAndModeBlocks) {
  const ParseResult r = parseProblem(R"(
problem "mission" {
  pmax 19W
  pmin 9W
  resource r
  task t { resource r delay 5 power 11W }
  battery {
    rate 2W 1250
    rate 6W 1600
    recoverable 300
    recovery 500mW
  }
  mode nominal  { ceiling 255 pmax_scale 100 pmin_scale 100 }
  mode survival { ceiling 0   pmax_scale 90  pmin_scale 0 }
}
)");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  const Problem& p = *r.problem;
  ASSERT_TRUE(p.battery().has_value());
  ASSERT_EQ(p.battery()->bands.size(), 2u);
  EXPECT_EQ(p.battery()->bands[0].threshold, 2_W);
  EXPECT_EQ(p.battery()->bands[0].factorPermille, 1250);
  EXPECT_EQ(p.battery()->bands[1].threshold, 6_W);
  EXPECT_EQ(p.battery()->bands[1].factorPermille, 1600);
  EXPECT_EQ(p.battery()->recoverablePermille, 300);
  EXPECT_EQ(p.battery()->recoveryRate, Watts::fromMilliwatts(500));
  ASSERT_EQ(p.modes().size(), 2u);
  EXPECT_EQ(p.modes()[0].name, "nominal");
  EXPECT_EQ(p.modes()[0].ceiling, 255);
  EXPECT_EQ(p.modes()[1].name, "survival");
  EXPECT_EQ(p.modes()[1].ceiling, 0);
  EXPECT_EQ(p.modes()[1].pmaxPct, 90u);
  EXPECT_EQ(p.modes()[1].pminPct, 0u);
}

TEST(WriterTest, BatteryAndModesRoundTrip) {
  Problem p("mission");
  p.setMaxPower(19_W);
  p.setMinPower(9_W);
  const ResourceId r = p.addResource("r");
  p.addTask("t", Duration(5), 11_W, r);
  BatteryTraits traits;
  traits.bands.push_back(RateBand{2_W, 1250});
  traits.bands.push_back(RateBand{6_W, 1600});
  traits.recoverablePermille = 300;
  traits.recoveryRate = Watts::fromMilliwatts(500);
  p.setBattery(traits);
  p.addMode(SystemMode{"nominal", 255, 100, 100});
  p.addMode(SystemMode{"survival", 0, 90, 0});

  const std::string t1 = problemToText(p);
  const ParseResult parsed = parseProblem(t1);
  ASSERT_TRUE(parsed.ok())
      << (parsed.errors.empty() ? "" : format(parsed.errors[0]));
  ASSERT_TRUE(parsed.problem->battery().has_value());
  EXPECT_EQ(*parsed.problem->battery(), traits);
  EXPECT_EQ(parsed.problem->modes(), p.modes());
  // Parse-print fixed point.
  EXPECT_EQ(problemToText(*parsed.problem), t1);
}

TEST(WriterTest, ProblemsWithoutBatteryOrModesEmitNoSuchBlocks) {
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kTypical);
  const std::string text = problemToText(p);
  EXPECT_EQ(text.find("battery"), std::string::npos);
  EXPECT_EQ(text.find("mode "), std::string::npos);
}

TEST(ParserTest, RejectsRateFactorBelowUnity) {
  const ParseResult r = parseProblem(
      "problem p { resource r battery { rate 2W 900 } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("[1000, 1000000]"), std::string::npos);
}

TEST(ParserTest, RejectsNonIncreasingRateThresholds) {
  const ParseResult r = parseProblem(
      "problem p { resource r battery { rate 6W 1600 rate 2W 1250 } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("strictly increase"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateBattery) {
  const ParseResult r = parseProblem(
      "problem p { resource r battery { rate 2W 1250 } battery { } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("duplicate battery"), std::string::npos);
}

TEST(ParserTest, RejectsModeCeilingOutOfRange) {
  const ParseResult r = parseProblem(
      "problem p { resource r mode m { ceiling 300 } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("[0, 255]"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateModeName) {
  const ParseResult r = parseProblem(
      "problem p { resource r mode m { ceiling 2 } mode m { ceiling 1 } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("duplicate mode"), std::string::npos);
}

TEST(ParserTest, RejectsRecoverableFractionOutOfRange) {
  const ParseResult r = parseProblem(
      "problem p { resource r battery { recoverable 1500 } }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("[0, 1000]"), std::string::npos);
}

TEST(ParserTest, BareDroppableMeansRankOne) {
  const ParseResult r = parseProblem(
      "problem p {\n  resource r1\n"
      "  task t { resource r1 delay 5 power 2W droppable }\n}");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  EXPECT_EQ(r.problem->task(*r.problem->findTask("t")).criticality, 1);
}

TEST(ParserTest, RejectsDroppableRankOutOfRange) {
  const ParseResult r = parseProblem(
      "problem p {\n  resource r1\n"
      "  task t { resource r1 delay 5 power 2W droppable 300 }\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("[1, 255]"), std::string::npos);
}

TEST(WriterTest, ScheduleCsv) {
  Problem p("csv");
  const ResourceId r1 = p.addResource("cpu");
  p.addTask("a", 5_s, 2_W, r1);
  p.addTask("b", 3_s, 4_W, r1);
  const Schedule s(&p, {Time(0), Time(3), Time(0)});
  const std::string csv = scheduleToCsv(s);
  EXPECT_EQ(csv,
            "task,resource,start,end,power_mw,energy_mwticks\n"
            "b,cpu,0,3,4000,12000\n"
            "a,cpu,3,8,2000,10000\n");
}

}  // namespace
}  // namespace paws::io
