// Regression tests for the untrusted-input limits in io/lexer.cpp and
// io/parser.cpp (grown out of the PR-5 fuzzing pass): every hostile shape
// must come back as a structured error, never an abort, uncaught throw, or
// unbounded allocation.
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/lexer.hpp"
#include "io/parser.hpp"
#include "io/schedule_io.hpp"

namespace paws::io {
namespace {

bool anyErrorContains(const std::vector<ParseError>& errors,
                      const std::string& needle) {
  for (const ParseError& e : errors) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(LexerLimitsTest, OversizedSourceIsRejectedUpFront) {
  const std::string huge(kMaxSourceBytes + 1, 'x');
  const LexResult r = lex(huge);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].message.find("bytes"), std::string::npos);
  ASSERT_FALSE(r.tokens.empty());
  EXPECT_EQ(r.tokens.back().kind, TokenKind::kEof);
}

TEST(LexerLimitsTest, OversizedTokenStopsTheScan) {
  const std::string source =
      "problem p { " + std::string(kMaxTokenLength + 1, 'a') + " }";
  const LexResult r = lex(source);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("token exceeds"), std::string::npos);
  EXPECT_EQ(r.tokens.back().kind, TokenKind::kEof);
}

TEST(LexerLimitsTest, OversizedStringAndNumberAreAlsoCapped) {
  const std::string longString =
      "\"" + std::string(kMaxTokenLength + 1, 's') + "\"";
  EXPECT_FALSE(lex(longString).ok());
  const std::string longNumber(kMaxTokenLength + 1, '7');
  EXPECT_FALSE(lex(longNumber).ok());
}

TEST(LexerLimitsTest, TokenFloodStopsAtTheBudget) {
  // 1M+ one-byte tokens in well under kMaxSourceBytes.
  std::string source;
  source.reserve((kMaxTokens + 2) * 2);
  for (std::size_t i = 0; i < kMaxTokens + 2; ++i) source += "a ";
  const LexResult r = lex(source);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("tokens"), std::string::npos);
  EXPECT_LE(r.tokens.size(), kMaxTokens + 1);  // + the closing kEof
  EXPECT_EQ(r.tokens.back().kind, TokenKind::kEof);
}

TEST(LexerLimitsTest, GarbageFloodStopsAtTheErrorCap) {
  const std::string garbage(100000, '@');
  const LexResult r = lex(garbage);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(r.errors.size(), kMaxLexErrors + 1);
  EXPECT_NE(r.errors.back().message.find("giving up"), std::string::npos);
}

TEST(ParserLimitsTest, OutOfRangeTicksAreStructuredErrors) {
  const ParseResult r = parseProblem(
      "problem p { resource r "
      "task a { resource r delay 99999999999999999999999 power 1W } }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r.errors, "out of range"));
}

TEST(ParserLimitsTest, LargeButBoundedTicksJustOverTheCapAreRejected) {
  const ParseResult r = parseProblem(
      "problem p { resource r "
      "task a { resource r delay 1000000000000001 power 1W } }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r.errors, "out of range"));
}

TEST(ParserLimitsTest, OutOfRangeWattsAreStructuredErrors) {
  const ParseResult r = parseProblem(
      "problem p { pmax 99999999999999999999999999999999999999999W }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r.errors, "out of range"));
}

TEST(ParserLimitsTest, SelfLoopSeparationIsAStructuredError) {
  // Used to escape as a CheckError from the constraint graph layer.
  const ParseResult r = parseProblem(
      "problem p { resource r task a { resource r delay 1 power 1W } "
      "min a -> a 5 }");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.errors.empty());
}

TEST(ParserLimitsTest, TaskCountIsCapped) {
  std::string source = "problem p { resource r\n";
  for (std::size_t i = 0; i <= kMaxTasks; ++i) {
    source += "task t" + std::to_string(i) +
              " { resource r delay 1 power 1W }\n";
  }
  source += "}";
  const ParseResult r = parseProblem(source);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r.errors, "tasks"));
}

TEST(ParserLimitsTest, ConstraintCountIsCapped) {
  std::string source =
      "problem p { resource r "
      "task a { resource r delay 1 power 1W } "
      "task b { resource r delay 1 power 1W }\n";
  for (std::size_t i = 0; i <= kMaxConstraints; ++i) {
    source += "min a -> b 1\n";
  }
  source += "}";
  const ParseResult r = parseProblem(source);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r.errors, "constraints"));
}

TEST(ParserLimitsTest, ErrorFloodStopsAtTheCap) {
  // Each line re-syncs at the `deadline` keyword and fails on the unknown
  // task, so every line is one error (a bare garbage token would be
  // swallowed by a single skip-to-next-item recovery).
  std::string source = "problem p {\n";
  for (int i = 0; i < 500; ++i) source += "deadline zzz 1\n";
  source += "}";
  const ParseResult r = parseProblem(source);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(r.errors.size(), kMaxParseErrors + 1);
  EXPECT_TRUE(anyErrorContains(r.errors, "giving up"));
}

TEST(ParserLimitsTest, OversizedFileIsRejectedBeforeSlurping) {
  const std::string path = testing::TempDir() + "paws_oversized.paws";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string chunk(1 << 20, '#');  // comments: cheap to generate
    for (std::size_t written = 0; written <= kMaxSourceBytes;
         written += chunk.size()) {
      out << chunk;
    }
  }
  const ParseResult r = parseProblemFile(path);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(anyErrorContains(r.errors, "bytes"));
  std::remove(path.c_str());
}

TEST(ScheduleIoLimitsTest, OutOfRangeStartTimesAreStructuredErrors) {
  const ParseResult problem = parseProblem(
      "problem p { resource r task a { resource r delay 1 power 1W } }");
  ASSERT_TRUE(problem.ok());
  const ScheduleParseResult r = parseSchedule(
      "schedule s of p { at a 99999999999999999999999 }", *problem.problem);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const ParseError& e : r.errors) {
    found = found || e.message.find("out of range") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace paws::io
