#include "io/schedule_io.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws::io {
namespace {

using namespace paws::literals;

Problem smallProblem() {
  Problem p("small");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("a", 5_s, 2_W, r1);
  p.addTask("b", 3_s, 1_W, r1);
  return p;
}

TEST(ScheduleIoTest, ParsesMinimalDocument) {
  const Problem p = smallProblem();
  const ScheduleParseResult r = parseSchedule(
      "schedule \"v1\" of \"small\" { at a 0 at b 5 }", p);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : format(r.errors[0]));
  EXPECT_EQ(r.label, "v1");
  EXPECT_EQ(r.schedule->start(*p.findTask("a")), Time(0));
  EXPECT_EQ(r.schedule->start(*p.findTask("b")), Time(5));
}

TEST(ScheduleIoTest, RoundTripsPipelineOutput) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  const std::string text = scheduleToText(*r.schedule, "improved");
  const ScheduleParseResult parsed = parseSchedule(text, p);
  ASSERT_TRUE(parsed.ok()) << format(parsed.errors[0]);
  EXPECT_EQ(parsed.label, "improved");
  EXPECT_EQ(parsed.schedule->starts(), r.schedule->starts());
}

TEST(ScheduleIoTest, RejectsWrongProblemName) {
  const Problem p = smallProblem();
  const ScheduleParseResult r = parseSchedule(
      "schedule \"v1\" of \"other\" { at a 0 at b 5 }", p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("not 'small'"), std::string::npos);
}

TEST(ScheduleIoTest, RejectsUnknownTask) {
  const Problem p = smallProblem();
  const ScheduleParseResult r = parseSchedule(
      "schedule \"v\" of \"small\" { at nope 0 at a 0 at b 5 }", p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("unknown task"), std::string::npos);
}

TEST(ScheduleIoTest, RejectsMissingAssignment) {
  const Problem p = smallProblem();
  const ScheduleParseResult r =
      parseSchedule("schedule \"v\" of \"small\" { at a 0 }", p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("'b' has no start"), std::string::npos);
}

TEST(ScheduleIoTest, RejectsDuplicateAssignment) {
  const Problem p = smallProblem();
  const ScheduleParseResult r = parseSchedule(
      "schedule \"v\" of \"small\" { at a 0 at a 3 at b 5 }", p);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("assigned twice"), std::string::npos);
}

TEST(ScheduleIoTest, RejectsFractionalTime) {
  const Problem p = smallProblem();
  const ScheduleParseResult r = parseSchedule(
      "schedule \"v\" of \"small\" { at a 0.5 at b 5 }", p);
  ASSERT_FALSE(r.ok());
}

TEST(ScheduleIoTest, AcceptsSecondSuffixAndComments) {
  const Problem p = smallProblem();
  const ScheduleParseResult r = parseSchedule(
      "# saved by pawsc\nschedule \"v\" of \"small\" {\n"
      "  at a 0s  # first\n  at b 5s\n}\n",
      p);
  ASSERT_TRUE(r.ok()) << format(r.errors[0]);
}

}  // namespace
}  // namespace paws::io
