// Deterministic fuzzing of the lexer/parser: mutated and random documents
// must never crash or hang — they either parse or produce positioned
// errors. (A crash shows up as an uncaught exception or a sanitizer
// report; PAWS_CHECK escapes would fail the EXPECT_NO_THROW.)
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "io/parser.hpp"
#include "io/writer.hpp"
#include "model/paper_example.hpp"

namespace paws::io {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParserFuzz, MutatedValidDocumentNeverCrashes) {
  std::mt19937 rng(GetParam());
  std::string doc = problemToText(makePaperExampleProblem());
  // Apply 1..8 random byte mutations: overwrite, insert, delete.
  const int mutations = 1 + static_cast<int>(rng() % 8);
  for (int m = 0; m < mutations && !doc.empty(); ++m) {
    const std::size_t at = rng() % doc.size();
    switch (rng() % 3) {
      case 0:
        doc[at] = static_cast<char>(rng() % 94 + 32);
        break;
      case 1:
        doc.insert(at, 1, static_cast<char>(rng() % 94 + 32));
        break;
      default:
        doc.erase(at, 1);
        break;
    }
  }
  ParseResult result;
  EXPECT_NO_THROW(result = parseProblem(doc));
  if (!result.ok()) {
    ASSERT_FALSE(result.errors.empty());
    for (const ParseError& e : result.errors) {
      EXPECT_GE(e.line, 1);
      EXPECT_GE(e.column, 1);
      EXPECT_FALSE(e.message.empty());
    }
  }
}

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam() * 31337 + 7);
  static const char* kAtoms[] = {
      "problem", "task",  "resource", "min",   "max",   "precedes",
      "release", "pin",   "deadline", "pmax",  "pmin",  "background",
      "{",       "}",     "->",       "\"x\"", "12",    "14.9",
      "W",       "mW",    "s",        "t0",    "r0",    "#c\n",
      "-5",      "\"",    ".",        "@",     "0.0.0", "anchor"};
  std::string doc;
  const int atoms = 2 + static_cast<int>(rng() % 60);
  for (int i = 0; i < atoms; ++i) {
    doc += kAtoms[rng() % (sizeof(kAtoms) / sizeof(kAtoms[0]))];
    doc += ' ';
  }
  EXPECT_NO_THROW((void)parseProblem(doc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1u, 41u));

TEST(ParserFuzzEdgeCases, EmptyAndDegenerateInputs) {
  EXPECT_NO_THROW((void)parseProblem(""));
  EXPECT_NO_THROW((void)parseProblem("problem"));
  EXPECT_NO_THROW((void)parseProblem("problem p {"));
  EXPECT_NO_THROW((void)parseProblem("}}}}{{{{"));
  EXPECT_NO_THROW((void)parseProblem(std::string(4096, '{')));
  EXPECT_NO_THROW((void)parseProblem(std::string(4096, '"')));
  EXPECT_NO_THROW((void)parseProblem("problem p { } trailing junk"));
  EXPECT_FALSE(parseProblem("").ok());
}

}  // namespace
}  // namespace paws::io
