#include <gtest/gtest.h>

#include "io/writer.hpp"
#include "model/paper_example.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws::io {
namespace {

using namespace paws::literals;

TEST(ChromeTraceTest, OneEventPerTaskPlusResourceMetadata) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  const std::string json = scheduleToChromeTrace(*r.schedule);

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  std::size_t complete = 0, metadata = 0;
  for (std::size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++complete;
  }
  for (std::size_t at = json.find("\"ph\":\"M\""); at != std::string::npos;
       at = json.find("\"ph\":\"M\"", at + 1)) {
    ++metadata;
  }
  EXPECT_EQ(complete, p.numTasks());
  EXPECT_EQ(metadata, p.numResources());
  // Spot-check one event's payload.
  EXPECT_NE(json.find("\"name\":\"h\""), std::string::npos);
  EXPECT_NE(json.find("\"power_mw\":4000"), std::string::npos);
}

TEST(ChromeTraceTest, StartAndDurationMatchTheSchedule) {
  Problem p("t");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("solo", 7_s, 2_W, r1);
  const Schedule s(&p, {Time(0), Time(3)});
  const std::string json = scheduleToChromeTrace(s);
  EXPECT_NE(json.find("\"ts\":3,\"dur\":7"), std::string::npos);
  EXPECT_NE(json.find("\"energy_mwticks\":14000"), std::string::npos);
}

TEST(ChromeTraceTest, GoldenTwoTaskSchedule) {
  // A fully pinned-down schedule makes the whole JSON byte-comparable:
  // pid/tid/ts/dur placement, resource rows, and metadata records.
  Problem p("golden");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId radio = p.addResource("radio");
  p.addTask("compute", 5_s, 3_W, cpu);
  p.addTask("transmit", 2_s, 8_W, radio);
  const Schedule s(&p, {Time(0), Time(1), Time(6)});

  EXPECT_EQ(
      scheduleToChromeTrace(s),
      "{\"traceEvents\":["
      "{\"name\":\"compute\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":1,\"dur\":5,\"args\":{\"power_mw\":3000,"
      "\"energy_mwticks\":15000}},"
      "{\"name\":\"transmit\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
      "\"ts\":6,\"dur\":2,\"args\":{\"power_mw\":8000,"
      "\"energy_mwticks\":16000}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"cpu\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"radio\"}}"
      "]}");
}

TEST(ChromeTraceTest, EmptyProblemYieldsEmptyEventArray) {
  Problem p("none");
  const Schedule s(&p, {Time(0)});
  EXPECT_EQ(scheduleToChromeTrace(s), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace paws::io
