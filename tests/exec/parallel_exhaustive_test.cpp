// Determinism contract of the parallel branch-and-bound: for any thread
// count the ExhaustiveScheduler must return byte-identical schedules,
// costs and outcome flags — the parallel search only partitions the
// top-level start-time axis and prunes with achieved-cost bounds, so the
// ordered chunk reduction reproduces the serial DFS winner exactly.
//
// The rover model is deliberately absent here: its exhaustive search trips
// any practical node budget (Section 5.3's exponential-complexity point),
// and which nodes get visited before a shared budget trips is the one
// documented source of parallel nondeterminism (docs/performance.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "gen/random_problem.hpp"
#include "sched/exhaustive_scheduler.hpp"

namespace paws {
namespace {

GeneratorConfig smallConfig(std::uint32_t seed, std::size_t numTasks) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = numTasks;
  cfg.numResources = 2;
  cfg.maxDelay = 4;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 500;
  return cfg;
}

struct Outcome {
  SchedStatus status;
  bool provenOptimal = false;
  std::vector<Time> starts;
  std::int64_t costMwt = 0;
  std::int64_t finishTicks = 0;

  bool operator==(const Outcome&) const = default;
};

Outcome runWithJobs(const Problem& problem, std::size_t jobs,
                    bool incrementalProfile = true) {
  ExhaustiveOptions options;
  options.jobs = jobs;
  options.incrementalProfile = incrementalProfile;
  ExhaustiveScheduler scheduler(problem, options);
  const ScheduleResult r = scheduler.schedule();
  Outcome o;
  o.status = r.status;
  o.provenOptimal = scheduler.outcome().provenOptimal;
  if (r.schedule) {
    o.starts = r.schedule->starts();
    o.costMwt = r.schedule->energyCost(problem.minPower()).milliwattTicks();
    o.finishTicks = r.schedule->finish().ticks();
  }
  return o;
}

TEST(ParallelExhaustiveTest, JobsCountNeverChangesTheAnswer) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const GeneratedProblem gp =
        generateRandomProblem(smallConfig(seed, /*numTasks=*/5));
    const Outcome serial = runWithJobs(gp.problem, 1);
    ASSERT_TRUE(serial.provenOptimal) << "seed " << seed;
    for (const std::size_t jobs : {2u, 8u}) {
      const Outcome parallel = runWithJobs(gp.problem, jobs);
      EXPECT_EQ(parallel, serial) << "seed " << seed << " jobs " << jobs;
    }
  }
}

TEST(ParallelExhaustiveTest, LargerInstancesStayDeterministic) {
  for (std::uint32_t seed = 3; seed <= 5; ++seed) {
    const GeneratedProblem gp =
        generateRandomProblem(smallConfig(seed, /*numTasks=*/7));
    const Outcome serial = runWithJobs(gp.problem, 1);
    if (!serial.provenOptimal) continue;  // budget trip: not comparable
    for (const std::size_t jobs : {2u, 8u}) {
      const Outcome parallel = runWithJobs(gp.problem, jobs);
      EXPECT_EQ(parallel, serial) << "seed " << seed << " jobs " << jobs;
    }
  }
}

TEST(ParallelExhaustiveTest, IncrementalPrefixProfileIsDeterministic) {
  // The incremental prefix ProfileEngine must not disturb the parallel
  // determinism contract: for jobs in {1, 2, 8}, with the engine on or
  // off, every run returns byte-identical schedules, costs and flags.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const GeneratedProblem gp =
        generateRandomProblem(smallConfig(seed, /*numTasks=*/5));
    const Outcome reference =
        runWithJobs(gp.problem, 1, /*incrementalProfile=*/false);
    ASSERT_TRUE(reference.provenOptimal) << "seed " << seed;
    for (const std::size_t jobs : {1u, 2u, 8u}) {
      const Outcome incremental =
          runWithJobs(gp.problem, jobs, /*incrementalProfile=*/true);
      EXPECT_EQ(incremental, reference) << "seed " << seed << " jobs "
                                        << jobs;
    }
  }
}

TEST(ParallelExhaustiveTest, AutoJobsSentinelResolvesAndStaysCorrect) {
  const GeneratedProblem gp =
      generateRandomProblem(smallConfig(1, /*numTasks=*/5));
  const Outcome serial = runWithJobs(gp.problem, 1);
  const Outcome autoJobs = runWithJobs(gp.problem, 0);  // PAWS_JOBS / cores
  EXPECT_EQ(autoJobs, serial);
}

TEST(ParallelExhaustiveTest, InfeasibleInstancesAgreeAcrossJobCounts) {
  // A horizon too short for any schedule: every job count must report the
  // same kPowerInfeasible verdict with a completed (proven) search.
  const GeneratedProblem gp =
      generateRandomProblem(smallConfig(2, /*numTasks=*/5));
  ExhaustiveOptions options;
  options.horizon = Time(1);
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    options.jobs = jobs;
    ExhaustiveScheduler scheduler(gp.problem, options);
    const ScheduleResult r = scheduler.schedule();
    EXPECT_EQ(r.status, SchedStatus::kPowerInfeasible) << "jobs " << jobs;
    EXPECT_TRUE(scheduler.outcome().provenOptimal) << "jobs " << jobs;
  }
}

}  // namespace
}  // namespace paws
