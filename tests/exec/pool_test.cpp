#include "exec/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <vector>

#include "exec/jobs.hpp"
#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"

namespace paws::exec {
namespace {

TEST(PoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    Pool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains, then joins
  EXPECT_EQ(count.load(), 100);
}

TEST(PoolTest, AsyncReturnsValue) {
  Pool pool(2);
  std::future<int> f = pool.async([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(PoolTest, AsyncCapturesExceptions) {
  Pool pool(2);
  std::future<int> f =
      pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(PoolTest, StatsCountRunTasks) {
  Pool pool(3);
  std::vector<std::future<int>> fs;
  for (int i = 0; i < 20; ++i) {
    fs.push_back(pool.async([i] { return i; }));
  }
  for (auto& f : fs) (void)f.get();
  EXPECT_EQ(pool.stats().tasksRun, 20u);
}

TEST(PoolTest, ExportMetricsPublishesPoolCounters) {
  obs::MetricsRegistry registry;
  {
    Pool pool(3);
    std::future<void> f = pool.async([] {});
    f.get();
    pool.exportMetrics(registry);
  }
  EXPECT_EQ(registry.gauge("exec.pool_threads"), 3.0);
  EXPECT_GE(registry.counter("exec.tasks_run"), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Pool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallelFor(pool, hits.size(),
                [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST(ParallelForTest, ZeroAndSingleIterationWork) {
  Pool pool(2);
  int calls = 0;
  parallelFor(pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(pool, 1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMapTest, ResultsLandAtTheirIndexForAnyThreadCount) {
  std::vector<std::vector<std::size_t>> perThreadCount;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Pool pool(threads);
    perThreadCount.push_back(parallelMap(
        pool, 100, [](std::size_t i) { return i * i; }));
  }
  for (const auto& out : perThreadCount) {
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
  // Deterministic: identical output regardless of thread count.
  EXPECT_EQ(perThreadCount[0], perThreadCount[1]);
  EXPECT_EQ(perThreadCount[0], perThreadCount[2]);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  Pool pool(4);
  std::atomic<int> total{0};
  parallelFor(pool, 4, [&pool, &total](std::size_t) {
    parallelFor(pool, 50, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 200);
}

TEST(JobsTest, ExplicitRequestWinsOverEnvironment) {
  ::setenv("PAWS_JOBS", "3", /*overwrite=*/1);
  EXPECT_EQ(defaultJobs(), 3u);
  EXPECT_EQ(resolveJobs(0), 3u);
  EXPECT_EQ(resolveJobs(5), 5u);
  ::unsetenv("PAWS_JOBS");
  EXPECT_GE(defaultJobs(), 1u);
}

TEST(JobsTest, GarbageEnvironmentFallsBackToHardware) {
  ::setenv("PAWS_JOBS", "not-a-number", /*overwrite=*/1);
  EXPECT_GE(defaultJobs(), 1u);
  ::setenv("PAWS_JOBS", "-2", /*overwrite=*/1);
  EXPECT_GE(defaultJobs(), 1u);
  ::unsetenv("PAWS_JOBS");
}

TEST(PoolTest, ZeroThreadRequestResolvesToAtLeastOne) {
  Pool pool(0);
  EXPECT_GE(pool.numThreads(), 1u);
  std::future<int> f = pool.async([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

}  // namespace
}  // namespace paws::exec
