// Saturation behaviour of the bounded exec::Pool — the backpressure
// contract pawsd's admission control is built on: trySubmit() refuses
// immediately at the bound, refusals are counted, the bound holds under
// concurrent submitters, and a saturated pool still drains cleanly (with
// or without cancellation racing the drain).
#include "exec/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "guard/cancel.hpp"
#include "obs/metrics.hpp"

namespace paws::exec {
namespace {

// Blocks the pool's single worker until release() so tasks pile up in the
// deques and trySubmit() hits the bound deterministically.
class WorkerPlug {
 public:
  void block() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return released_; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(PoolSaturationTest, TrySubmitRefusesAtTheBoundAndCountsIt) {
  Pool pool(/*threads=*/1, /*maxQueued=*/2);
  EXPECT_EQ(pool.maxQueued(), 2u);
  WorkerPlug plug;
  std::atomic<int> ran{0};
  // Occupy the worker; the plug task no longer counts as queued once the
  // worker pops it, so wait for the queue to empty before filling it.
  pool.submit([&plug, &ran] {
    plug.block();
    ran.fetch_add(1);
  });
  while (pool.queueDepth() != 0) std::this_thread::yield();

  EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.queueDepth(), 2u);
  // Queue full: refusals are immediate, repeatable, and counted.
  EXPECT_FALSE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_FALSE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.stats().tasksRejected, 2u);
  EXPECT_EQ(pool.queueDepth(), 2u);

  plug.release();
  while (pool.queueDepth() != 0) std::this_thread::yield();
  // Rejected tasks must never have run.
  EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
}

TEST(PoolSaturationTest, UnboundedPoolNeverRefuses) {
  Pool pool(/*threads=*/2);
  EXPECT_EQ(pool.maxQueued(), 0u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
  }
  while (pool.queueDepth() != 0) std::this_thread::yield();
  EXPECT_EQ(pool.stats().tasksRejected, 0u);
}

TEST(PoolSaturationTest, ConcurrentSubmittersNeverExceedTheBound) {
  constexpr std::size_t kBound = 8;
  constexpr int kSubmitters = 6;
  constexpr int kPerSubmitter = 300;
  Pool pool(/*threads=*/1, /*maxQueued=*/kBound);
  WorkerPlug plug;
  pool.submit([&plug] { plug.block(); });
  while (pool.queueDepth() != 0) std::this_thread::yield();

  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        if (pool.trySubmit([&ran] { ran.fetch_add(1); })) {
          accepted.fetch_add(1);
        } else {
          refused.fetch_add(1);
          // The bound may only ever be transiently overshot inside
          // trySubmit's reserve/back-out window, never observably.
          EXPECT_LE(pool.queueDepth(),
                    kBound + static_cast<std::size_t>(kSubmitters));
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  // Worker is plugged, so nothing was popped: accepted == depth == bound.
  EXPECT_EQ(accepted.load(), static_cast<int>(kBound));
  EXPECT_EQ(pool.queueDepth(), kBound);
  EXPECT_EQ(refused.load(), kSubmitters * kPerSubmitter - accepted.load());
  EXPECT_EQ(pool.stats().tasksRejected,
            static_cast<std::uint64_t>(refused.load()));

  plug.release();
  while (pool.queueDepth() != 0) std::this_thread::yield();
  while (ran.load() < accepted.load()) std::this_thread::yield();
  EXPECT_EQ(ran.load(), accepted.load());
}

TEST(PoolSaturationTest, CancelDrainWhileSaturatedRunsEveryAcceptedTask) {
  // A saturated pool being cancelled mid-drain (the pawsd SIGTERM path):
  // every accepted task still runs — cancellation makes them cheap, it
  // never drops them — and the destructor's drain-then-join holds.
  guard::CancelSource cancel;
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  std::atomic<int> observedCancel{0};
  {
    Pool pool(/*threads=*/2, /*maxQueued=*/64);
    WorkerPlug plug;
    pool.submit([&plug] { plug.block(); });
    pool.submit([&plug] { plug.block(); });
    // Both plug tasks must be *running* (popped, no longer queued) before
    // the fill, or they eat into the 64-slot bound.
    while (pool.queueDepth() != 0) std::this_thread::yield();
    int accepted = 0;
    for (int i = 0; i < 64; ++i) {
      const bool ok = pool.trySubmit([&, token = cancel.token()] {
        started.fetch_add(1);
        if (token.cancelled()) {
          observedCancel.fetch_add(1);
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        finished.fetch_add(1);
      });
      if (ok) ++accepted;
    }
    ASSERT_GT(accepted, 0);
    cancel.cancel();
    plug.release();
    // Pool destructor: drain everything queued, then join.
    EXPECT_EQ(accepted, 64);
  }
  EXPECT_EQ(started.load(), 64);
  EXPECT_EQ(finished.load(), 64);
  EXPECT_GT(observedCancel.load(), 0);
}

TEST(PoolSaturationTest, MetricsStayConsistentAfterRejection) {
  obs::MetricsRegistry registry;
  std::atomic<int> ran{0};
  {
    Pool pool(/*threads=*/1, /*maxQueued=*/1);
    WorkerPlug plug;
    pool.submit([&plug] { plug.block(); });
    while (pool.queueDepth() != 0) std::this_thread::yield();
    EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
    EXPECT_FALSE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
    EXPECT_FALSE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
    plug.release();
    while (pool.queueDepth() != 0) std::this_thread::yield();
    while (ran.load() < 1) std::this_thread::yield();
    pool.exportMetrics(registry);
  }
  // run = plug + the one accepted task; rejected = exactly the refusals;
  // a rejected task contributes to no other counter.
  EXPECT_EQ(registry.counter("exec.tasks_rejected"), 2u);
  EXPECT_EQ(registry.counter("exec.tasks_run"), 2u);
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace paws::exec
