// parallelFor/parallelMap cancellation: cancelled loops drain cleanly
// (every chunk accounted for, no hangs), skipped slots stay default.
#include <atomic>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "guard/cancel.hpp"

namespace paws::exec {
namespace {

TEST(ParallelForCancelTest, PreCancelledLoopRunsNothing) {
  Pool pool(4);
  guard::CancelSource source;
  source.cancel();
  std::atomic<int> ran{0};
  parallelFor(
      pool, 10000, [&](std::size_t) { ran.fetch_add(1); }, /*grain=*/8,
      source.token());
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForCancelTest, PreCancelledSerialPathRunsNothing) {
  Pool pool(1);
  guard::CancelSource source;
  source.cancel();
  int ran = 0;
  parallelFor(
      pool, 100, [&](std::size_t) { ++ran; }, /*grain=*/1, source.token());
  EXPECT_EQ(ran, 0);
}

TEST(ParallelForCancelTest, MidFlightCancelDrainsWithoutRunningEverything) {
  Pool pool(4);
  guard::CancelSource source;
  std::atomic<int> ran{0};
  constexpr int kN = 100000;
  // Cancel from inside the loop body once a few indices have executed; the
  // call must still return (the chunk barrier releases) and must have
  // skipped a substantial tail.
  parallelFor(
      pool, kN,
      [&](std::size_t) {
        if (ran.fetch_add(1) == 16) source.cancel();
      },
      /*grain=*/4, source.token());
  EXPECT_GT(ran.load(), 16);
  EXPECT_LT(ran.load(), kN);
}

TEST(ParallelForCancelTest, DefaultTokenRunsEverything) {
  Pool pool(3);
  std::atomic<int> ran{0};
  parallelFor(pool, 1000, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ParallelMapCancelTest, SkippedSlotsStayDefaultConstructed) {
  Pool pool(2);
  guard::CancelSource source;
  source.cancel();
  const std::vector<int> out = parallelMap(
      pool, 64, [](std::size_t i) { return static_cast<int>(i) + 1; },
      /*grain=*/1, source.token());
  ASSERT_EQ(out.size(), 64u);
  for (const int v : out) EXPECT_EQ(v, 0);
}

TEST(ParallelMapCancelTest, CleanTokenMapsEveryIndex) {
  Pool pool(2);
  guard::CancelSource source;  // connected but never cancelled
  const std::vector<int> out = parallelMap(
      pool, 64, [](std::size_t i) { return static_cast<int>(i) + 1; },
      /*grain=*/4, source.token());
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace paws::exec
