// kBudgetExhausted coverage for the heuristic schedulers: when the search
// budgets (backtracks / delay decisions) are too small for the instance, the
// failure must be reported as budget exhaustion with a usable message, and
// any schedule that does come back must still be time-valid.
#include <gtest/gtest.h>

#include "gen/random_problem.hpp"
#include "graph/longest_path.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/timing_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TimingScheduler::Output runTiming(const Problem& p, TimingOptions options) {
  ConstraintGraph graph = p.buildGraph();
  LongestPathEngine engine(graph);
  SchedulerStats stats;
  return TimingScheduler(p, options).run(graph, engine, stats);
}

/// One resource; declaration order schedules the long task first, which
/// starves `b` past its deadline — recovering requires one backtrack.
Problem backtrackingProblem() {
  Problem p;
  const ResourceId r = p.addResource("r");
  p.addTask("a", 10_s, 1_W, r);
  const TaskId b = p.addTask("b", 2_s, 1_W, r);
  p.deadline(b, Time(2));
  return p;
}

TEST(TimingBudgetTest, ZeroBacktracksReportsExhaustionNotInfeasibility) {
  const Problem p = backtrackingProblem();
  TimingOptions options;
  options.candidateOrder = CandidateOrder::kByIndex;
  options.maxBacktracks = 0;
  const auto out = runTiming(p, options);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.budgetExhausted);
  EXPECT_FALSE(out.message.empty());
  EXPECT_EQ(out.stopReason, guard::StopReason::kNone);  // not a deadline trip
}

TEST(TimingBudgetTest, OneBacktrackSolvesTheSameInstance) {
  const Problem p = backtrackingProblem();
  TimingOptions options;
  options.candidateOrder = CandidateOrder::kByIndex;
  options.maxBacktracks = 1;
  const auto out = runTiming(p, options);
  ASSERT_TRUE(out.ok) << out.message;
  EXPECT_FALSE(out.budgetExhausted);
  const Schedule s(&p, out.starts);
  EXPECT_TRUE(ScheduleValidator(p).validate(s).timeValid());
}

TEST(TimingBudgetTest, TinyBudgetOnGeneratedProblemsAlwaysExplainsItself) {
  // Adversarial sweep: tight max-separation windows on few resources force
  // backtracking; with a one-backtrack budget every run must either produce
  // a time-valid schedule or say why it could not.
  int exhausted = 0;
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    GeneratorConfig config;
    config.seed = seed;
    config.numTasks = 18;
    config.numResources = 2;
    config.maxSepPerTask = 1.5;
    config.maxSepHeadroom = 2;
    const Problem p = generateRandomProblem(config).problem;

    TimingOptions options;
    options.maxBacktracks = 1;
    const auto out = runTiming(p, options);
    if (out.ok) {
      const Schedule s(&p, out.starts);
      EXPECT_TRUE(ScheduleValidator(p).validate(s).timeValid())
          << "seed=" << seed;
    } else {
      EXPECT_FALSE(out.message.empty()) << "seed=" << seed;
      if (out.budgetExhausted) ++exhausted;
    }
  }
  // Pinned locally: at least one seed in this sweep needs more than one
  // backtrack, so the exhaustion path is genuinely exercised.
  EXPECT_GE(exhausted, 1);
}

TEST(MinPowerBudgetTest, ZeroDelayBudgetUnderTightPmaxIsBudgetExhausted) {
  // Two 3 W tasks on distinct resources both start at 0; under a 4 W cap
  // the max-power stage must delay one of them, but the delay budget is 0.
  Problem p;
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 5_s, 3_W, r1);
  p.addTask("b", 5_s, 3_W, r2);
  p.setMaxPower(4_W);

  MinPowerOptions options;
  options.maxPower.maxDelays = 0;
  const ScheduleResult r = MinPowerScheduler(p, options).schedule();
  EXPECT_EQ(r.status, SchedStatus::kBudgetExhausted);
  EXPECT_FALSE(r.message.empty());
  if (r.schedule.has_value()) {
    EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).timeValid());
  }

  // Sanity: with the default budget the same instance schedules fine.
  const ScheduleResult ok = MinPowerScheduler(p).schedule();
  ASSERT_EQ(ok.status, SchedStatus::kOk) << ok.message;
  EXPECT_TRUE(ScheduleValidator(p).validate(*ok.schedule).valid());
}

TEST(MinPowerBudgetTest, TinyDelayBudgetOnGeneratedProblemsStaysConsistent) {
  int exhausted = 0;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig config;
    config.seed = seed;
    config.numTasks = 16;
    config.numResources = 4;
    config.powerFeasible = true;
    Problem p = generateRandomProblem(config).problem;
    // Tighten Pmax to ~60% of the feasible witness peak so the max-power
    // stage has real work, then give it almost no budget to do it with.
    p.setMaxPower(Watts::fromMilliwatts(p.maxPower().milliwatts() * 3 / 5));

    MinPowerOptions options;
    options.maxPower.maxDelays = 1;
    const ScheduleResult r = MinPowerScheduler(p, options).schedule();
    EXPECT_TRUE(r.status == SchedStatus::kOk ||
                r.status == SchedStatus::kBudgetExhausted ||
                r.status == SchedStatus::kPowerInfeasible ||
                r.status == SchedStatus::kTimingInfeasible)
        << "seed=" << seed << ": " << toString(r.status);
    if (r.status == SchedStatus::kBudgetExhausted) {
      ++exhausted;
      EXPECT_FALSE(r.message.empty()) << "seed=" << seed;
    }
    if (r.schedule.has_value()) {
      const auto report = ScheduleValidator(p).validate(*r.schedule);
      EXPECT_TRUE(report.timeValid()) << "seed=" << seed;
      if (r.status == SchedStatus::kOk) {
        EXPECT_TRUE(report.valid()) << "seed=" << seed;
      }
    }
  }
  // Pinned locally: the 60% cap with a one-delay budget trips at least once
  // across these seeds.
  EXPECT_GE(exhausted, 1);
}

}  // namespace
}  // namespace paws
