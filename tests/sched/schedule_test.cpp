#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem makeProblem() {
  Problem p("sched");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId dsp = p.addResource("dsp");
  p.addTask("a", 5_s, 6_W, cpu);   // TaskId 1
  p.addTask("b", 10_s, 4_W, dsp);  // TaskId 2
  p.setBackgroundPower(1_W);
  return p;
}

TEST(ScheduleTest, BasicAccessors) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  EXPECT_EQ(s.start(TaskId(1)), Time(0));
  EXPECT_EQ(s.end(TaskId(1)), Time(5));
  EXPECT_EQ(s.interval(TaskId(2)), Interval(Time(5), Time(15)));
  EXPECT_EQ(s.finish(), Time(15));
}

TEST(ScheduleTest, RejectsWrongSizeOrShiftedAnchor) {
  const Problem p = makeProblem();
  EXPECT_THROW(Schedule(&p, {Time(0), Time(0)}), CheckError);
  EXPECT_THROW(Schedule(&p, {Time(1), Time(0), Time(0)}), CheckError);
}

TEST(ScheduleTest, ActiveAt) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(3)});
  EXPECT_EQ(s.activeAt(Time(0)), std::vector<TaskId>{TaskId(1)});
  const std::vector<TaskId> both{TaskId(1), TaskId(2)};
  EXPECT_EQ(s.activeAt(Time(4)), both);
  EXPECT_EQ(s.activeAt(Time(5)), std::vector<TaskId>{TaskId(2)});
  EXPECT_TRUE(s.activeAt(Time(13)).empty());
}

TEST(ScheduleTest, ProfileIncludesBackground) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  const PowerProfile& prof = s.powerProfile();
  EXPECT_EQ(prof.valueAt(Time(2)), 7_W);   // a + background
  EXPECT_EQ(prof.valueAt(Time(10)), 5_W);  // b + background
  EXPECT_EQ(prof.finish(), Time(15));
}

TEST(ScheduleTest, EnergyCostAndUtilization) {
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  // Profile: [0,5)=7W, [5,15)=5W. Above 6W: 1W*5s.
  EXPECT_EQ(s.energyCost(6_W), Energy::fromMilliwattTicks(5000));
  // Capped at 6: 6*5 + 5*10 = 80 over 6*15 = 90.
  EXPECT_DOUBLE_EQ(s.utilization(6_W), 80.0 / 90.0);
}

TEST(ScheduleTest, OverlapOnPurposeStillProfilesCorrectly) {
  // Schedule is just data: even resource-conflicting assignments produce a
  // well-defined profile (the validator is the one to flag them).
  const Problem p = makeProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  EXPECT_EQ(s.powerProfile().valueAt(Time(0)), 11_W);
}

TEST(ScheduleTest, FinishOfEmptyProblem) {
  Problem p("empty");
  const Schedule s(&p, {Time(0)});
  EXPECT_EQ(s.finish(), Time(0));
  EXPECT_TRUE(s.powerProfile().empty());
}

}  // namespace
}  // namespace paws
