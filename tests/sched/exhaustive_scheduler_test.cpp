#include "sched/exhaustive_scheduler.hpp"

#include <gtest/gtest.h>

#include "gen/random_problem.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(ExhaustiveSchedulerTest, TrivialSingleTask) {
  Problem p("one");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("a", 3_s, 2_W, r1);
  p.setMaxPower(5_W);
  ExhaustiveScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->start(TaskId(1)), Time(0));
  EXPECT_TRUE(scheduler.outcome().provenOptimal);
}

TEST(ExhaustiveSchedulerTest, FindsTheCheapSlot) {
  // Two tasks, budget forbids overlap; Pmin makes overlap-with-nothing
  // wasteful: optimal is back-to-back (any idle below Pmin wastes free
  // energy AND cannot reduce Ec, but a longer span can't reduce Ec either;
  // Ec ties, so finish time breaks the tie -> compact schedule).
  Problem p("two");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 4_s, 5_W, r1);
  p.addTask("b", 4_s, 5_W, r2);
  p.setMaxPower(8_W);
  p.setMinPower(5_W);
  ExhaustiveScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->finish(), Time(8));
  EXPECT_EQ(r.schedule->energyCost(5_W), Energy::zero());
}

TEST(ExhaustiveSchedulerTest, PrefersCheaperOverFaster) {
  // Overlap is allowed (16W budget) but costs battery energy above
  // Pmin=5W; serial execution is slower yet free. The lexicographic
  // (Ec, tau) objective must pick serial.
  Problem p("tradeoff");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 4_s, 5_W, r1);
  p.addTask("b", 4_s, 5_W, r2);
  p.setMaxPower(16_W);
  p.setMinPower(5_W);
  ExhaustiveScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->energyCost(5_W), Energy::zero());
  EXPECT_EQ(r.schedule->finish(), Time(8)) << "serial, not overlapped";
}

TEST(ExhaustiveSchedulerTest, RespectsWindows) {
  Problem p("win");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 3_s, 2_W, r1);
  const TaskId b = p.addTask("b", 3_s, 2_W, r2);
  p.minSeparation(a, b, 5_s);
  p.maxSeparation(a, b, 7_s);
  p.setMaxPower(10_W);
  ExhaustiveScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  const Duration gap = r.schedule->start(b) - r.schedule->start(a);
  EXPECT_GE(gap, Duration(5));
  EXPECT_LE(gap, Duration(7));
  EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).valid());
}

TEST(ExhaustiveSchedulerTest, DetectsInfeasibility) {
  Problem p("bad");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("a", 3_s, 9_W, r1);
  p.setMaxPower(5_W);
  ExhaustiveScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, SchedStatus::kPowerInfeasible);
  EXPECT_TRUE(scheduler.outcome().provenOptimal) << "exhausted, not aborted";
}

TEST(ExhaustiveSchedulerTest, NodeBudgetTrips) {
  GeneratorConfig cfg;
  cfg.seed = 2;
  cfg.numTasks = 8;
  cfg.numResources = 3;
  const GeneratedProblem gp = generateRandomProblem(cfg);
  ExhaustiveOptions opt;
  opt.maxNodes = 50;
  ExhaustiveScheduler scheduler(gp.problem, opt);
  (void)scheduler.schedule();
  EXPECT_FALSE(scheduler.outcome().provenOptimal);
}

class ExhaustiveVsHeuristic : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(ExhaustiveVsHeuristic, HeuristicNeverBeatsTheOracle) {
  GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.numTasks = 5;
  cfg.numResources = 2;
  cfg.maxDelay = 4;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 500;
  const GeneratedProblem gp = generateRandomProblem(cfg);

  ExhaustiveScheduler oracle(gp.problem);
  const ScheduleResult opt = oracle.schedule();
  ASSERT_TRUE(opt.ok()) << "witness guarantees a valid schedule exists";
  ASSERT_TRUE(oracle.outcome().provenOptimal);
  EXPECT_TRUE(ScheduleValidator(gp.problem).validate(*opt.schedule).valid());

  PowerAwareScheduler heuristic(gp.problem);
  const ScheduleResult h = heuristic.schedule();
  if (!h.ok()) return;  // heuristic may fail; oracle quantifies that too
  const Watts pmin = gp.problem.minPower();
  // Lexicographic (Ec, tau): the oracle is optimal.
  const Energy ecOracle = opt.schedule->energyCost(pmin);
  const Energy ecHeur = h.schedule->energyCost(pmin);
  EXPECT_LE(ecOracle, ecHeur) << "seed " << GetParam();
  if (ecOracle == ecHeur) {
    EXPECT_LE(opt.schedule->finish(), h.schedule->finish())
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSeeds, ExhaustiveVsHeuristic,
                         ::testing::Range(1u, 13u));

}  // namespace
}  // namespace paws
