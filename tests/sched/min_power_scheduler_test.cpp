#include "sched/min_power_scheduler.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(MinPowerSchedulerTest, PaperExampleImprovesUtilization) {
  // Fig. 5 -> Fig. 7: g moves into the gap at t=10; Ec drops from 15J to
  // 10J at the same finish time.
  const Problem p = makePaperExampleProblem();

  MaxPowerScheduler maxPower(p);
  const ScheduleResult before = maxPower.schedule();
  ASSERT_TRUE(before.ok());
  const Energy ecBefore = before.schedule->energyCost(p.minPower());
  const double rhoBefore = before.schedule->utilization(p.minPower());

  MinPowerScheduler pipeline(p);
  const ScheduleResult after = pipeline.schedule();
  ASSERT_TRUE(after.ok()) << after.message;
  const Energy ecAfter = after.schedule->energyCost(p.minPower());

  EXPECT_EQ(ecBefore, 15_J);
  EXPECT_EQ(ecAfter, 10_J);
  EXPECT_GT(after.schedule->utilization(p.minPower()), rhoBefore);
  EXPECT_EQ(after.schedule->finish(), before.schedule->finish())
      << "same performance with a reduced energy cost";
  EXPECT_EQ(after.schedule->start(*p.findTask("g")), Time(10));
}

TEST(MinPowerSchedulerTest, ResultRemainsFullyValid) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).valid());
}

TEST(MinPowerSchedulerTest, NeverDecreasesUtilization) {
  const Problem p = makePaperExampleProblem();
  for (const ScanOrder scan :
       {ScanOrder::kForward, ScanOrder::kBackward, ScanOrder::kRandom}) {
    for (const SlotHeuristic slot :
         {SlotHeuristic::kStartAtGap, SlotHeuristic::kFinishAtGapEnd,
          SlotHeuristic::kRandom}) {
      MinPowerOptions opt;
      opt.scanOrder = scan;
      opt.slotHeuristic = slot;
      opt.rotateHeuristics = false;
      opt.randomSeed = 7;
      MaxPowerScheduler maxPower(p, opt.maxPower);
      const ScheduleResult base = maxPower.schedule();
      ASSERT_TRUE(base.ok());
      MinPowerScheduler pipeline(p, opt);
      const ScheduleResult r = pipeline.schedule();
      ASSERT_TRUE(r.ok());
      EXPECT_GE(r.schedule->utilization(p.minPower()) + 1e-12,
                base.schedule->utilization(p.minPower()))
          << "scan " << static_cast<int>(scan) << " slot "
          << static_cast<int>(slot);
    }
  }
}

TEST(MinPowerSchedulerTest, FullUtilizationShortCircuits) {
  // A single task drawing exactly Pmin: utilization 1 from the start.
  Problem p("full");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("only", 10_s, 5_W, r1);
  p.setMaxPower(8_W);
  p.setMinPower(5_W);
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.schedule->utilization(p.minPower()), 1.0);
  EXPECT_EQ(r.stats.improvements, 0u);
}

TEST(MinPowerSchedulerTest, ZeroPminIsConventionalSpecialCase) {
  Problem p("nopmin");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("t1", 5_s, 4_W, r1);
  p.addTask("t2", 5_s, 4_W, r1);
  p.setMaxPower(10_W);
  // Pmin defaults to 0: utilization is 1 by definition; nothing to do.
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.stats.improvements, 0u);
}

TEST(MinPowerSchedulerTest, GapFillingRespectsPmax) {
  // Filling the gap by moving 'heavy' under 'late' would spike: the move
  // must be rejected even though it would raise utilization.
  Problem p("guard");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId heavy = p.addTask("heavy", 5_s, 7_W, r1);
  const TaskId late = p.addTask("late", 5_s, 7_W, r2);
  p.release(late, Time(5));
  p.pin(late, Time(5));
  p.setMaxPower(12_W);
  p.setMinPower(10_W);
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).powerValid());
  EXPECT_EQ(r.schedule->start(heavy), Time(0))
      << "moving heavy under late would exceed Pmax";
}

TEST(MinPowerSchedulerTest, ImproveRequiresPowerValidInput) {
  const Problem p = makePaperExampleProblem();
  // Hand the improver a spiking schedule: all tasks at ASAP including the
  // spike at [10,15).
  ConstraintGraph g = p.buildGraph();
  std::vector<Time> starts(p.numVertices(), Time::zero());
  const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h", "i"};
  const Time asap[] = {Time(0),  Time(5),  Time(10), Time(5), Time(20),
                       Time(10), Time(5),  Time(10), Time(20)};
  for (std::size_t i = 0; i < 9; ++i) {
    starts[p.findTask(names[i])->index()] = asap[i];
  }
  const Schedule spiky(&p, starts);
  MinPowerScheduler pipeline(p);
  EXPECT_THROW((void)pipeline.improve(g, spiky), CheckError);
}

TEST(PowerAwareSchedulerTest, MultiTrialMatchesOrBeatsSingleRun) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler single(p);
  const ScheduleResult one = single.schedule();
  ASSERT_TRUE(one.ok());

  PowerAwareOptions opt;
  opt.trials = 4;
  PowerAwareScheduler multi(p, opt);
  const ScheduleResult best = multi.schedule();
  ASSERT_TRUE(best.ok());
  EXPECT_LE(best.schedule->energyCost(p.minPower()),
            one.schedule->energyCost(p.minPower()));
}

TEST(PowerAwareSchedulerTest, FailurePropagatesDiagnostics) {
  Problem p("doomed");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("x", 5_s, 20_W, r1);
  p.setMaxPower(10_W);
  PowerAwareScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.message.empty());
}

}  // namespace
}  // namespace paws
