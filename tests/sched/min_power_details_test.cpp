// Behavior-level tests for the min-power heuristic knobs: the slot
// heuristics must place fillers at provably different targets, moves must
// be accepted only on strict utilization gains, and unbounded-slack tasks
// must be usable as fillers (regression for a signed-overflow bug in the
// slot-window arithmetic).
#include <gtest/gtest.h>

#include "sched/min_power_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

// ASAP wastes the filler on top of 'fixed' (11 W, capped at Pmin anyway);
// the gap [10,14) between 'fixed' and the pinned 'wall' is fillable. The
// filler (8 s) is longer than the gap (4 s), which is exactly the regime
// where start-at-gap (sigma' = 10) and finish-at-gap-end (sigma' = 6)
// differ. 'sink' pins the filler's slack to 10 without touching power.
Problem gapProblem() {
  Problem p("gap");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const ResourceId r3 = p.addResource("r3");
  const ResourceId r4 = p.addResource("r4");
  const TaskId fixed = p.addTask("fixed", 10_s, 6_W, r1);
  const TaskId filler = p.addTask("filler", 8_s, 5_W, r2);
  const TaskId wall = p.addTask("wall", 4_s, 6_W, r3);
  const TaskId sink = p.addTask("sink", 4_s, Watts::zero(), r4);
  p.pin(fixed, Time(0));
  p.pin(wall, Time(14));
  p.pin(sink, Time(18));
  p.minSeparation(filler, sink, 8_s);  // slack(filler) = 18 - 8 = 10
  p.setMaxPower(12_W);
  p.setMinPower(4_W);
  return p;
}

ScheduleResult run(const Problem& p, SlotHeuristic slot,
                   ScanOrder scan = ScanOrder::kForward,
                   std::uint32_t passes = 1, std::uint32_t seed = 1) {
  MinPowerOptions opt;
  opt.slotHeuristic = slot;
  opt.scanOrder = scan;
  opt.rotateHeuristics = false;
  opt.maxPasses = passes;
  opt.randomSeed = seed;
  MinPowerScheduler pipeline(p, opt);
  ScheduleResult r = pipeline.schedule();
  EXPECT_TRUE(r.ok()) << r.message;
  if (r.ok()) {
    EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).valid());
  }
  return r;
}

TEST(MinPowerDetailsTest, AsapOverlapsTheFillerWastefully) {
  const Problem p = gapProblem();
  const ScheduleResult r = run(p, SlotHeuristic::kStartAtGap,
                               ScanOrder::kForward, /*passes=*/0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->start(*p.findTask("filler")), Time(0))
      << "no improvement passes -> ASAP placement on top of 'fixed'";
}

TEST(MinPowerDetailsTest, StartAtGapDelaysToTheGapStart) {
  const Problem p = gapProblem();
  const ScheduleResult r = run(p, SlotHeuristic::kStartAtGap);
  EXPECT_EQ(r.schedule->start(*p.findTask("filler")), Time(10));
}

TEST(MinPowerDetailsTest, FinishAtGapEndParksAgainstTheWall) {
  const Problem p = gapProblem();
  const ScheduleResult r = run(p, SlotHeuristic::kFinishAtGapEnd);
  EXPECT_EQ(r.schedule->start(*p.findTask("filler")), Time(6))
      << "filler [6,14) ends exactly where the gap ends";
}

TEST(MinPowerDetailsTest, BothSlotsReachTheSameUtilization) {
  // Different placements, same filled area: the paper's observation that
  // slot choice alters later options rather than the local gain.
  const Problem p = gapProblem();
  const ScheduleResult a = run(p, SlotHeuristic::kStartAtGap);
  const ScheduleResult b = run(p, SlotHeuristic::kFinishAtGapEnd);
  ASSERT_NE(a.schedule->start(*p.findTask("filler")),
            b.schedule->start(*p.findTask("filler")));
  EXPECT_DOUBLE_EQ(a.schedule->utilization(p.minPower()),
                   b.schedule->utilization(p.minPower()));
  EXPECT_EQ(a.schedule->energyCost(p.minPower()),
            b.schedule->energyCost(p.minPower()));
}

TEST(MinPowerDetailsTest, RandomSlotStaysWithinTheLegalWindow) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const Problem p = gapProblem();
    const ScheduleResult r =
        run(p, SlotHeuristic::kRandom, ScanOrder::kForward, 1, seed);
    ASSERT_TRUE(r.ok());
    const Time at = r.schedule->start(*p.findTask("filler"));
    // Accepted moves land in [6, 10] (covering the gap start within
    // slack); a rejected move leaves the filler at 0.
    EXPECT_TRUE(at == Time(0) || (at >= Time(3) && at <= Time(10)))
        << "seed " << seed << " placed filler at " << at;
  }
}

TEST(MinPowerDetailsTest, UnboundedSlackTaskCanFillGaps) {
  // Regression: a task with NO outgoing constraints has Duration::max()
  // slack; the slot-window arithmetic must not overflow and must still
  // offer it as a filler.
  Problem p("free");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const ResourceId r3 = p.addResource("r3");
  const TaskId fixed = p.addTask("fixed", 4_s, 6_W, r1);
  const TaskId filler = p.addTask("filler", 4_s, 5_W, r2);  // no out-edges
  const TaskId late = p.addTask("late", 4_s, 6_W, r3);
  p.pin(fixed, Time(0));
  p.pin(late, Time(12));
  p.setMaxPower(12_W);
  p.setMinPower(4_W);
  const ScheduleResult r = run(p, SlotHeuristic::kStartAtGap);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->start(filler), Time(4))
      << "the free filler must move off 'fixed' into the gap";
  (void)fixed;
}

TEST(MinPowerDetailsTest, MultiPassConvergesToTheSameResultHere) {
  // With one mobile task the fixpoint is reached in one pass; extra
  // passes must not churn.
  const Problem p = gapProblem();
  const ScheduleResult one = run(p, SlotHeuristic::kStartAtGap,
                                 ScanOrder::kForward, 1);
  const ScheduleResult many = run(p, SlotHeuristic::kStartAtGap,
                                  ScanOrder::kForward, 8);
  EXPECT_EQ(one.schedule->starts(), many.schedule->starts());
}

}  // namespace
}  // namespace paws
