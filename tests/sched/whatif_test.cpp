#include "sched/whatif.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/min_power_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(ScheduleDiffTest, IdenticalSchedulesDiffEmpty) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  const ScheduleDiff d = diffSchedules(*r.schedule, *r.schedule);
  EXPECT_TRUE(d.moved.empty());
  EXPECT_EQ(d.finishDelta, Duration::zero());
  EXPECT_EQ(d.energyCostDelta, Energy::zero());
  EXPECT_DOUBLE_EQ(d.utilizationDelta, 0.0);
}

TEST(ScheduleDiffTest, ReportsMoves) {
  Problem p("d");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("a", 5_s, 2_W, r1);
  p.addTask("b", 5_s, 2_W, r1);
  const Schedule before(&p, {Time(0), Time(0), Time(5)});
  const Schedule after(&p, {Time(0), Time(0), Time(9)});
  const ScheduleDiff d = diffSchedules(before, after);
  ASSERT_EQ(d.moved.size(), 1u);
  EXPECT_EQ(d.moved[0].task, TaskId(2));
  EXPECT_EQ(d.moved[0].before, Time(5));
  EXPECT_EQ(d.moved[0].after, Time(9));
  EXPECT_EQ(d.finishDelta, Duration(4));
}

TEST(ScheduleDiffTest, RejectsDifferentProblems) {
  const Problem p1 = makePaperExampleProblem();
  const Problem p2 = makePaperExampleProblem();
  MinPowerScheduler s1(p1), s2(p2);
  const ScheduleResult r1 = s1.schedule();
  const ScheduleResult r2 = s2.schedule();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_THROW((void)diffSchedules(*r1.schedule, *r2.schedule), CheckError);
}

TEST(WhatIfTest, NoLocksReproducesPipelineResult) {
  const Problem p = makePaperExampleProblem();
  WhatIfSession session(p);
  const ScheduleResult locked = session.reschedule();
  MinPowerScheduler pipeline(p);
  PowerAwareScheduler plain(p);
  const ScheduleResult base = plain.schedule();
  ASSERT_TRUE(locked.ok() && base.ok());
  EXPECT_EQ(locked.schedule->starts(), base.schedule->starts());
  (void)pipeline;
}

TEST(WhatIfTest, LockMovesTaskAndSchedulerAdapts) {
  const Problem p = makePaperExampleProblem();
  const TaskId g = *p.findTask("g");
  WhatIfSession session(p);
  // The designer drags g to t=15 (the automated result chose 10).
  session.lock(g, Time(15));
  EXPECT_EQ(session.numLocks(), 1u);
  ASSERT_TRUE(session.lockOf(g).has_value());
  const ScheduleResult r = session.reschedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->start(g), Time(15));
  EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).powerValid());
  // The result binds to the ORIGINAL problem and outlives the session.
  EXPECT_EQ(&r.schedule->problem(), &p);
}

TEST(WhatIfTest, DiffShowsWhatTheInterventionCost) {
  const Problem p = makePaperExampleProblem();
  WhatIfSession session(p);
  const ScheduleResult base = session.reschedule();
  ASSERT_TRUE(base.ok());
  session.lock(*p.findTask("g"), Time(15));
  const ScheduleResult after = session.reschedule();
  ASSERT_TRUE(after.ok());
  const ScheduleDiff d = diffSchedules(*base.schedule, *after.schedule);
  ASSERT_FALSE(d.moved.empty());
  // Pinning g at 15 forfeits the gap-fill at t=10: energy cost rises.
  EXPECT_GT(d.energyCostDelta, Energy::zero());
}

TEST(WhatIfTest, InfeasibleLockFailsCleanly) {
  const Problem p = makePaperExampleProblem();
  const TaskId h = *p.findTask("h");
  WhatIfSession session(p);
  // h at most 20 after g and g at least 5 after a: h can never start at 1.
  session.lock(h, Time(1));
  const ScheduleResult r = session.reschedule();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, SchedStatus::kTimingInfeasible);
}

TEST(WhatIfTest, UnlockRestoresFreedom) {
  const Problem p = makePaperExampleProblem();
  const TaskId g = *p.findTask("g");
  WhatIfSession session(p);
  session.lock(g, Time(15));
  session.unlock(g);
  EXPECT_EQ(session.numLocks(), 0u);
  const ScheduleResult r = session.reschedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->start(g), Time(10)) << "back to the automated slot";
}

TEST(WhatIfTest, LockValidation) {
  const Problem p = makePaperExampleProblem();
  WhatIfSession session(p);
  EXPECT_THROW(session.lock(kAnchorTask, Time(0)), CheckError);
  EXPECT_THROW(session.lock(TaskId(1), Time(-2)), CheckError);
  EXPECT_THROW(session.lock(TaskId(1000), Time(0)), CheckError);
}

}  // namespace
}  // namespace paws
