// Edge cases and option plumbing across the scheduler stack that the
// mainline tests don't reach.
#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/timing_scheduler.hpp"
#include "graph/longest_path.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(SchedulerEdgeCases, UserPinIsHonoredThroughTheWholePipeline) {
  Problem p("pinned");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 4_W, r1);
  const TaskId b = p.addTask("b", 5_s, 4_W, r2);
  p.pin(b, Time(7));
  p.setMaxPower(6_W);  // a and b cannot overlap
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->start(b), Time(7));
  EXPECT_FALSE(r.schedule->interval(a).overlaps(r.schedule->interval(b)));
}

TEST(SchedulerEdgeCases, EmptyProblemSchedulesTrivially) {
  Problem p("void");
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->finish(), Time(0));
}

TEST(SchedulerEdgeCases, SingleTaskTightBudget) {
  Problem p("solo");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("only", 7_s, 5_W, r1);
  p.setMaxPower(5_W);  // exactly fits
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->start(TaskId(1)), Time(0));
}

TEST(SchedulerEdgeCases, MinPowerZeroPassesIsMaxPowerOnly) {
  const Problem p = makePaperExampleProblem();
  MinPowerOptions opt;
  opt.maxPasses = 0;
  MaxPowerScheduler maxOnly(p, opt.maxPower);
  const ScheduleResult base = maxOnly.schedule();
  MinPowerScheduler pipeline(p, opt);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(base.ok() && r.ok());
  EXPECT_EQ(r.schedule->starts(), base.schedule->starts());
  EXPECT_EQ(r.stats.improvements, 0u);
}

TEST(SchedulerEdgeCases, RandomCandidateOrderIsSeedDeterministic) {
  const Problem p = makePaperExampleProblem();
  TimingOptions opt;
  opt.candidateOrder = CandidateOrder::kRandom;
  opt.randomSeed = 99;
  std::vector<Time> first;
  for (int run = 0; run < 2; ++run) {
    ConstraintGraph g = p.buildGraph();
    LongestPathEngine engine(g);
    TimingScheduler ts(p, opt);
    SchedulerStats stats;
    const auto out = ts.run(g, engine, stats);
    ASSERT_TRUE(out.ok);
    if (run == 0) {
      first = out.starts;
    } else {
      EXPECT_EQ(out.starts, first);
    }
  }
}

TEST(SchedulerEdgeCases, BackgroundOnlyBudgetViolationFailsFast) {
  Problem p("bg");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("t", 2_s, 1_W, r1);
  p.setBackgroundPower(12_W);
  p.setMaxPower(10_W);
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, SchedStatus::kPowerInfeasible);
}

TEST(SchedulerEdgeCases, ExhaustiveHonorsExplicitHorizon) {
  Problem p("hz");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 4_s, 5_W, r1);
  p.addTask("b", 4_s, 5_W, r2);
  p.setMaxPower(8_W);  // must serialize: needs 8 ticks
  ExhaustiveOptions opt;
  opt.horizon = Time(6);  // too short for any serialization
  ExhaustiveScheduler scheduler(p, opt);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(scheduler.outcome().provenOptimal);

  opt.horizon = Time(8);
  ExhaustiveScheduler fits(p, opt);
  const ScheduleResult ok = fits.schedule();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.schedule->finish(), Time(8));
}

TEST(SchedulerEdgeCases, PowerAwareSingleTrialWorks) {
  const Problem p = makePaperExampleProblem();
  PowerAwareOptions opt;
  opt.trials = 1;
  PowerAwareScheduler scheduler(p, opt);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).valid());
}

TEST(SchedulerEdgeCases, ManyResourcesNoConstraintsAllStartAtZero) {
  Problem p("par");
  for (int i = 0; i < 12; ++i) {
    const ResourceId r =
        p.addResource("r" + std::to_string(i));
    p.addTask("t" + std::to_string(i), 3_s, 1_W, r);
  }
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  for (TaskId v : p.taskIds()) {
    EXPECT_EQ(r.schedule->start(v), Time(0));
  }
  EXPECT_EQ(r.schedule->finish(), Time(3));
}

TEST(SchedulerEdgeCases, ZeroSeparationConstraintsForceSimultaneity) {
  Problem p("sync");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r2);
  p.minSeparation(a, b, Duration(0));
  p.maxSeparation(a, b, Duration(0));
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->start(a), r.schedule->start(b));
}

}  // namespace
}  // namespace paws
