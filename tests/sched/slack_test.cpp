#include "sched/slack.hpp"

#include <gtest/gtest.h>

namespace paws {
namespace {

TEST(SlackTest, NoOutgoingEdgesMeansUnboundedSlack) {
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(0), EdgeKind::kRelease);
  const std::vector<Time> sigma{Time(0), Time(3)};
  EXPECT_EQ(slackOf(g, sigma, TaskId(1)), Duration::max());
}

TEST(SlackTest, MinSeparationBoundsSlack) {
  // 0 -> 1 (w=5): sigma(1) >= sigma(0)+5. Out-edge OF 0 bounds 0's slack.
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  // sigma(0)=0, sigma(1)=9: vertex 0 can slip to 9-5=4 -> slack 4.
  const std::vector<Time> sigma{Time(0), Time(9)};
  EXPECT_EQ(slackOf(g, sigma, TaskId(0)), Duration(4));
  EXPECT_EQ(slackOf(g, sigma, TaskId(1)), Duration::max());
}

TEST(SlackTest, TightEdgeMeansZeroSlack) {
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  const std::vector<Time> sigma{Time(0), Time(5)};
  EXPECT_EQ(slackOf(g, sigma, TaskId(0)), Duration::zero());
}

TEST(SlackTest, MaxSeparationBackEdgeBoundsSuccessor) {
  // "1 at most 12 after 0": edge 1 -> 0 with weight -12.
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(0), Duration(-12), EdgeKind::kUserMax);
  const std::vector<Time> sigma{Time(0), Time(5)};
  // Vertex 1's out-edge: (sigma(0) - (-12)) - sigma(1) = 12 - 5 = 7.
  EXPECT_EQ(slackOf(g, sigma, TaskId(1)), Duration(7));
}

TEST(SlackTest, MinimumOverAllOutEdges) {
  ConstraintGraph g(4);
  g.addEdge(TaskId(1), TaskId(2), Duration(3), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(3), Duration(1), EdgeKind::kSerialization);
  const std::vector<Time> sigma{Time(0), Time(2), Time(10), Time(4)};
  // Via 2: (10-3)-2 = 5. Via 3: (4-1)-2 = 1. Slack = 1.
  EXPECT_EQ(slackOf(g, sigma, TaskId(1)), Duration(1));
}

TEST(SlackTest, ComputeAllMatchesIndividual) {
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(2), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(2), EdgeKind::kUserMin);
  const std::vector<Time> sigma{Time(0), Time(4), Time(8)};
  const auto all = computeSlacks(g, sigma);
  ASSERT_EQ(all.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(all[i], slackOf(g, sigma, TaskId(i)));
  }
  EXPECT_EQ(all[0], Duration(2));
  EXPECT_EQ(all[1], Duration(2));
}

TEST(SlackTest, DelayWithinSlackStaysValidProperty) {
  // The defining property of slack (Section 4.1): delaying one task within
  // its slack preserves all constraints encoded by its out-edges, given
  // in-edges are lower bounds.
  ConstraintGraph g(4);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(4), EdgeKind::kUserMin);
  g.addEdge(TaskId(2), TaskId(1), Duration(-9), EdgeKind::kUserMax);
  g.addEdge(TaskId(1), TaskId(3), Duration(2), EdgeKind::kSerialization);
  std::vector<Time> sigma{Time(0), Time(5), Time(12), Time(20)};
  const Duration slack = slackOf(g, sigma, TaskId(1));
  ASSERT_GT(slack, Duration::zero());
  sigma[1] += slack;  // maximal legal delay
  for (const ConstraintEdge& e : g.edges()) {
    EXPECT_GE(sigma[e.to.index()] - sigma[e.from.index()], e.weight)
        << "edge " << e.from << "->" << e.to;
  }
}

}  // namespace
}  // namespace paws
