#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(SerialSchedulerTest, NoTwoTasksOverlapEver) {
  const Problem p = makePaperExampleProblem();
  SerialScheduler serial(p);
  const ScheduleResult r = serial.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const auto ids = p.taskIds();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_FALSE(r.schedule->interval(ids[i])
                       .overlaps(r.schedule->interval(ids[j])))
          << p.task(ids[i]).name << " overlaps " << p.task(ids[j]).name;
    }
  }
}

TEST(SerialSchedulerTest, RespectsTimingConstraints) {
  const Problem p = makePaperExampleProblem();
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).timeValid());
}

TEST(SerialSchedulerTest, SpanEqualsTotalWorkWhenNoForcedIdle) {
  Problem p("pack");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 3_s, 1_W, r1);
  p.addTask("b", 4_s, 1_W, r2);
  p.addTask("c", 5_s, 1_W, r1);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->finish(), Time(12));
}

TEST(SerialSchedulerTest, PeakPowerIsSingleTaskPlusBackground) {
  const Problem p = makePaperExampleProblem();
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  Watts heaviest = Watts::zero();
  for (TaskId v : p.taskIds()) heaviest = std::max(heaviest, p.task(v).power);
  EXPECT_LE(r.schedule->powerProfile().peak(),
            heaviest + p.backgroundPower());
}

TEST(SerialSchedulerTest, InfeasibleWindowFails) {
  // Serializing a and b (5s each) cannot satisfy "b within 3 of a" if they
  // also must not overlap... it can: b after a at distance 3 < 5 overlaps.
  // Force failure with a hard contradiction instead.
  Problem p("bad");
  const ResourceId r1 = p.addResource("r1");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r1);
  p.minSeparation(a, b, 8_s);
  p.maxSeparation(a, b, 2_s);
  const ScheduleResult r = SerialScheduler(p).schedule();
  EXPECT_FALSE(r.ok());
}

TEST(ListSchedulerTest, RespectsPowerBudgetAndMinSeparations) {
  const Problem p = makePaperExampleProblem();
  ListScheduler list(p);
  const ScheduleResult r = list.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const ScheduleValidator validator(p);
  const auto report = validator.validate(*r.schedule);
  for (const Violation& v : report.violations) {
    // The greedy baseline understands neither max separations; everything
    // else must hold.
    EXPECT_EQ(v.kind, Violation::Kind::kMaxSeparation) << v;
  }
}

TEST(ListSchedulerTest, ReportsMaxSeparationViolationsInMessage) {
  // A window the greedy scheduler is sure to break: 'late' is enabled at 0
  // but its window partner runs last due to power pressure.
  Problem p("greedy");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId big = p.addTask("big", 10_s, 8_W, r1);
  const TaskId other = p.addTask("other", 10_s, 8_W, r2);
  const TaskId late = p.addTask("late", 2_s, 8_W, r1);
  p.minSeparation(big, late, 10_s);
  p.maxSeparation(big, late, 12_s);  // late in [10,12] after big
  p.setMaxPower(10_W);               // all three serialized by power
  (void)other;
  ListScheduler list(p);
  const ScheduleResult r = list.schedule();
  ASSERT_TRUE(r.ok());
  const ScheduleValidator validator(p);
  const auto report = validator.validate(*r.schedule);
  const bool broken = !report.timeValid();
  EXPECT_EQ(broken, !r.message.empty());
}

TEST(ListSchedulerTest, HighVsLowPowerFirstBothValid) {
  const Problem p = makePaperExampleProblem();
  for (const bool highFirst : {true, false}) {
    ListSchedulerOptions opt;
    opt.highPowerFirst = highFirst;
    ListScheduler list(p, opt);
    const ScheduleResult r = list.schedule();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(
        r.schedule->powerProfile().spikes(p.maxPower()).empty())
        << "budget respected regardless of greedy order";
  }
}

TEST(ListSchedulerTest, DeadlocksOnContradictoryMins) {
  Problem p("cycle");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r2);
  p.minSeparation(a, b, 1_s);
  p.minSeparation(b, a, 1_s);
  ListScheduler list(p);
  const ScheduleResult r = list.schedule();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace paws
