#include "sched/timing_scheduler.hpp"

#include <gtest/gtest.h>

#include "graph/longest_path.hpp"
#include "model/paper_example.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

/// Runs the timing scheduler on a fresh graph of `p`; returns the output.
TimingScheduler::Output runTiming(const Problem& p, ConstraintGraph& graph,
                                  TimingOptions options = {}) {
  LongestPathEngine engine(graph);
  TimingScheduler ts(p, options);
  SchedulerStats stats;
  return ts.run(graph, engine, stats);
}

TEST(TimingSchedulerTest, IndependentTasksDifferentResourcesStartAtZero) {
  Problem p;
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("a", 5_s, 1_W, r1);
  p.addTask("b", 7_s, 1_W, r2);
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok) << out.message;
  EXPECT_EQ(out.starts[1], Time(0));
  EXPECT_EQ(out.starts[2], Time(0));
}

TEST(TimingSchedulerTest, SameResourceTasksAreSerialized) {
  Problem p;
  const ResourceId r = p.addResource("r");
  p.addTask("a", 5_s, 1_W, r);
  p.addTask("b", 7_s, 1_W, r);
  p.addTask("c", 2_s, 1_W, r);
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok) << out.message;
  const Schedule s(&p, out.starts);
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(s).timeValid());
  // Total busy time = 14; the serial schedule must span exactly that.
  EXPECT_EQ(s.finish(), Time(14));
}

TEST(TimingSchedulerTest, RespectsMinSeparations) {
  Problem p;
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 7_s, 1_W, r2);
  p.minSeparation(a, b, 9_s);
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.starts[a.index()], Time(0));
  EXPECT_EQ(out.starts[b.index()], Time(9));
}

TEST(TimingSchedulerTest, RespectsMaxSeparationWindows) {
  // b must run 5..8 after a, but a competes with filler on its resource.
  Problem p;
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 3_s, 1_W, r2);
  const TaskId filler = p.addTask("filler", 4_s, 1_W, r1);
  p.minSeparation(a, b, 5_s);
  p.maxSeparation(a, b, 8_s);
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok) << out.message;
  const Schedule s(&p, out.starts);
  const ScheduleValidator validator(p);
  const auto report = validator.validate(s);
  EXPECT_TRUE(report.timeValid()) << report.violations.size();
  const Duration gap = s.start(b) - s.start(a);
  EXPECT_GE(gap, Duration(5));
  EXPECT_LE(gap, Duration(8));
  (void)filler;
}

TEST(TimingSchedulerTest, BacktracksWhenFirstOrderViolatesWindow) {
  // Two tasks on one resource; a max window forces 'late' to run FIRST
  // even though its longest-path distance ties with 'early'.
  Problem p;
  const ResourceId r = p.addResource("r");
  const TaskId early = p.addTask("early", 10_s, 1_W, r);
  const TaskId gate = p.addTask("gate", 1_s, 1_W, p.addResource("r2"));
  const TaskId late = p.addTask("late", 2_s, 1_W, r);
  // gate within 3 of late's start; late must therefore start by 3; with
  // early (10s) first on the resource, late could not start before 10.
  p.minSeparation(late, gate, 1_s);
  p.maxSeparation(late, gate, 3_s);
  p.maxSeparation(kAnchorTask, gate, 4_s);
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok) << out.message;
  const Schedule s(&p, out.starts);
  EXPECT_LT(s.start(late), s.start(early));
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(s).timeValid());
}

TEST(TimingSchedulerTest, InfeasibleWindowFails) {
  Problem p;
  const ResourceId r = p.addResource("r");
  const TaskId a = p.addTask("a", 5_s, 1_W, r);
  const TaskId b = p.addTask("b", 5_s, 1_W, r);
  // Contradiction: b at least 10 after a, but at most 4 after a.
  p.minSeparation(a, b, 10_s);
  p.maxSeparation(a, b, 4_s);
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.budgetExhausted);
}

TEST(TimingSchedulerTest, InfeasibleSerializationFails) {
  // Three 10s tasks on one resource, all deadlined at 25: only two fit.
  Problem p;
  const ResourceId r = p.addResource("r");
  for (const char* name : {"a", "b", "c"}) {
    const TaskId t = p.addTask(name, 10_s, 1_W, r);
    p.deadline(t, Time(25));
  }
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  EXPECT_FALSE(out.ok);
}

TEST(TimingSchedulerTest, FailureLeavesGraphUntouched) {
  Problem p;
  const ResourceId r = p.addResource("r");
  const TaskId a = p.addTask("a", 5_s, 1_W, r);
  const TaskId b = p.addTask("b", 5_s, 1_W, r);
  p.minSeparation(a, b, 10_s);
  p.maxSeparation(a, b, 4_s);
  ConstraintGraph g = p.buildGraph();
  const std::size_t edges = g.numEdges();
  const auto out = runTiming(p, g);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(g.numEdges(), edges);
}

TEST(TimingSchedulerTest, SuccessKeepsSerializationEdgesForSlackAnalysis) {
  Problem p;
  const ResourceId r = p.addResource("r");
  p.addTask("a", 5_s, 1_W, r);
  p.addTask("b", 5_s, 1_W, r);
  ConstraintGraph g = p.buildGraph();
  const std::size_t before = g.numEdges();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(g.numEdges(), before + 1) << "one serialization edge for a|b";
}

TEST(TimingSchedulerTest, SchedulesArePrefixTight) {
  // ASAP property: the earliest task starts at 0.
  const Problem p = makePaperExampleProblem();
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok) << out.message;
  Time earliest = Time::max();
  for (TaskId v : p.taskIds()) {
    earliest = std::min(earliest, out.starts[v.index()]);
  }
  EXPECT_EQ(earliest, Time(0));
}

TEST(TimingSchedulerTest, PaperExampleIsTimeValid) {
  const Problem p = makePaperExampleProblem();
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g);
  ASSERT_TRUE(out.ok) << out.message;
  const Schedule s(&p, out.starts);
  const ScheduleValidator validator(p);
  const auto report = validator.validate(s);
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.kind, Violation::Kind::kPowerSpike) << v;
  }
  EXPECT_TRUE(report.timeValid());
}

TEST(TimingSchedulerTest, AllCandidateOrdersProduceValidSchedules) {
  const Problem p = makePaperExampleProblem();
  const ScheduleValidator validator(p);
  for (const CandidateOrder order :
       {CandidateOrder::kByLongestPath, CandidateOrder::kByIndex,
        CandidateOrder::kRandom}) {
    TimingOptions opt;
    opt.candidateOrder = order;
    opt.randomSeed = 42;
    ConstraintGraph g = p.buildGraph();
    const auto out = runTiming(p, g, opt);
    ASSERT_TRUE(out.ok) << "order " << static_cast<int>(order);
    EXPECT_TRUE(validator.validate(Schedule(&p, out.starts)).timeValid());
  }
}

TEST(TimingSchedulerTest, TinyBacktrackBudgetReportsExhaustion) {
  // A problem that needs backtracking, given a zero budget.
  Problem p;
  const ResourceId r = p.addResource("r");
  const TaskId early = p.addTask("early", 10_s, 1_W, r);
  const TaskId gate = p.addTask("gate", 1_s, 1_W, p.addResource("r2"));
  const TaskId late = p.addTask("late", 2_s, 1_W, r);
  p.minSeparation(late, gate, 1_s);
  p.maxSeparation(late, gate, 3_s);
  p.maxSeparation(kAnchorTask, gate, 4_s);
  (void)early;
  TimingOptions opt;
  opt.candidateOrder = CandidateOrder::kByIndex;  // forces the bad order 1st
  opt.maxBacktracks = 0;
  ConstraintGraph g = p.buildGraph();
  const auto out = runTiming(p, g, opt);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.budgetExhausted);
}

}  // namespace
}  // namespace paws
