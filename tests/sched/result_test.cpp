#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sched/result.hpp"

namespace paws {
namespace {

constexpr SchedStatus kAllStatuses[] = {
    SchedStatus::kOk,
    SchedStatus::kTimingInfeasible,
    SchedStatus::kPowerInfeasible,
    SchedStatus::kBudgetExhausted,
    SchedStatus::kInvalidInput,
};

TEST(SchedStatusTest, ToStringRoundTripsThroughFromString) {
  for (const SchedStatus s : kAllStatuses) {
    const auto back = schedStatusFromString(toString(s));
    ASSERT_TRUE(back.has_value()) << toString(s);
    EXPECT_EQ(*back, s);
  }
}

TEST(SchedStatusTest, FromStringRejectsUnknownText) {
  EXPECT_FALSE(schedStatusFromString("").has_value());
  EXPECT_FALSE(schedStatusFromString("bogus").has_value());
  EXPECT_FALSE(schedStatusFromString("OK ").has_value());
}

TEST(SchedulerStatsTest, AccumulationAddsEveryField) {
  SchedulerStats a{1, 2, 3, 4, 5, 6, 7};
  const SchedulerStats b{10, 20, 30, 40, 50, 60, 70};
  a += b;
  EXPECT_EQ(a.longestPathRuns, 11u);
  EXPECT_EQ(a.backtracks, 22u);
  EXPECT_EQ(a.delays, 33u);
  EXPECT_EQ(a.locks, 44u);
  EXPECT_EQ(a.recursions, 55u);
  EXPECT_EQ(a.scans, 66u);
  EXPECT_EQ(a.improvements, 77u);

  // Accumulating a default-constructed stats is the identity.
  const SchedulerStats before = a;
  a += SchedulerStats{};
  EXPECT_EQ(a.backtracks, before.backtracks);
  EXPECT_EQ(a.improvements, before.improvements);
}

TEST(SchedulerStatsTest, ExportAndReconstructViaRegistryRoundTrips) {
  const SchedulerStats stats{9, 8, 7, 6, 5, 4, 3};
  obs::MetricsRegistry registry;
  exportStats(stats, registry);
  EXPECT_EQ(registry.counter("search.longest_path_runs"), 9u);
  EXPECT_EQ(registry.counter("search.backtracks"), 8u);

  const SchedulerStats back = statsFromMetrics(registry);
  EXPECT_EQ(back.longestPathRuns, stats.longestPathRuns);
  EXPECT_EQ(back.backtracks, stats.backtracks);
  EXPECT_EQ(back.delays, stats.delays);
  EXPECT_EQ(back.locks, stats.locks);
  EXPECT_EQ(back.recursions, stats.recursions);
  EXPECT_EQ(back.scans, stats.scans);
  EXPECT_EQ(back.improvements, stats.improvements);

  // Exporting twice accumulates, matching SchedulerStats::operator+=.
  exportStats(stats, registry);
  EXPECT_EQ(statsFromMetrics(registry).delays, 14u);
}

}  // namespace
}  // namespace paws
