#include "sched/cyclic_scheduler.hpp"

#include <gtest/gtest.h>

#include "rover/rover_model.hpp"

namespace paws {
namespace {

using namespace paws::literals;

CyclicScheduler::UnrollFactory roverFactory(rover::RoverCase c) {
  return [c](int iterations, std::vector<std::vector<TaskId>>* out) {
    std::vector<rover::RoverIterationTasks> tasks;
    Problem p = rover::makeRoverProblem(c, iterations, &tasks);
    out->clear();
    for (const rover::RoverIterationTasks& it : tasks) {
      out->push_back({it.heatSteer[0], it.heatSteer[1], it.heatWheel[0],
                      it.heatWheel[1], it.heatWheel[2], it.hazard[0],
                      it.steer[0], it.drive[0], it.hazard[1], it.steer[1],
                      it.drive[1]});
    }
    return p;
  };
}

TEST(CyclicSchedulerTest, WorstCaseSteadyStateIsTheSerial75s) {
  CyclicScheduler scheduler(roverFactory(rover::RoverCase::kWorst));
  const CyclicResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.steadyStateProven) << r.message;
  EXPECT_EQ(r.kernel.period, Duration(75));
  EXPECT_EQ(r.kernel.costPerPeriod, 388_J);
  EXPECT_EQ(r.kernel.offsets.size(), 11u);
  // Offsets start at 0 and fit within one period.
  EXPECT_EQ(r.kernel.offsets.front().second, Time(0));
  EXPECT_LT(r.kernel.offsets.back().second, Time(75));
}

TEST(CyclicSchedulerTest, BestCaseKernelIsFiftySecondsAndCheap) {
  CyclicScheduler scheduler(roverFactory(rover::RoverCase::kBest));
  const CyclicResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.steadyStateProven) << r.message;
  EXPECT_EQ(r.kernel.period, Duration(50));
  // Steady-state cost far below the one-shot 76.5 J iteration (Fig. 9's
  // pre-heating effect); measured: exactly 30 J per looped 50 s period.
  EXPECT_LE(r.kernel.costPerPeriod, 30_J);
  EXPECT_GT(r.kernel.costPerPeriod, Energy::zero());
}

TEST(CyclicSchedulerTest, TypicalCasePipelinedKernel) {
  CyclicScheduler scheduler(roverFactory(rover::RoverCase::kTypical));
  const CyclicResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.steadyStateProven);
  // The steady state pipelines to 50 s/iteration (EXPERIMENTS.md E6).
  EXPECT_EQ(r.kernel.period, Duration(50));
}

TEST(CyclicSchedulerTest, RejectsBadFactories) {
  CyclicScheduler wrongCount(
      [](int, std::vector<std::vector<TaskId>>* out) {
        out->clear();
        return Problem("empty");
      });
  const CyclicResult r = wrongCount.schedule();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("4 iterations"), std::string::npos);
}

TEST(CyclicSchedulerTest, InfeasibleUnrollSurfacesTheFailure) {
  CyclicScheduler scheduler(
      [](int iterations, std::vector<std::vector<TaskId>>* out) {
        std::vector<rover::RoverIterationTasks> tasks;
        Problem p =
            rover::makeRoverProblem(rover::RoverCase::kWorst, iterations,
                                    &tasks);
        p.setMaxPower(Watts::fromWatts(10.0));  // below single-task needs
        out->clear();
        for (const rover::RoverIterationTasks& it : tasks) {
          out->push_back({it.hazard[0]});
        }
        return p;
      });
  const CyclicResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("failed"), std::string::npos);
}

}  // namespace
}  // namespace paws
