#include "sched/max_power_scheduler.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

/// Two independent 5s/8W tasks on separate resources under a 10W budget:
/// they cannot overlap, one must be delayed.
Problem twoParallelHeavy() {
  Problem p("heavy");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  p.addTask("x", 5_s, 8_W, r1);
  p.addTask("y", 5_s, 8_W, r2);
  p.setMaxPower(10_W);
  return p;
}

TEST(MaxPowerSchedulerTest, SerializesParallelTasksOverBudget) {
  Problem p = twoParallelHeavy();
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).powerValid());
  EXPECT_EQ(r.schedule->finish(), Time(10)) << "one task delayed past other";
  EXPECT_GT(r.stats.delays, 0u);
}

TEST(MaxPowerSchedulerTest, NoSpikeMeansNoChanges) {
  Problem p = twoParallelHeavy();
  p.setMaxPower(16_W);  // both fit side by side
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->finish(), Time(5));
  EXPECT_EQ(r.stats.delays, 0u);
}

TEST(MaxPowerSchedulerTest, InfeasibleBudgetFails) {
  Problem p = twoParallelHeavy();
  p.setMaxPower(6_W);  // even a single 8W task exceeds the budget
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, SchedStatus::kPowerInfeasible);
}

TEST(MaxPowerSchedulerTest, BackgroundPowerCountsAgainstBudget) {
  Problem p = twoParallelHeavy();
  p.setMaxPower(17_W);
  p.setBackgroundPower(2_W);  // 8+8+2 > 17 -> must serialize
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->finish(), Time(10));
}

TEST(MaxPowerSchedulerTest, SlackVictimPreservesZeroSlackTask) {
  // 'tight' is pinned by a window; 'loose' floats. The slack heuristic must
  // delay 'loose' and leave 'tight' in place.
  Problem p("victims");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const ResourceId r3 = p.addResource("r3");
  const TaskId tight = p.addTask("tight", 5_s, 6_W, r1);
  const TaskId gate = p.addTask("gate", 5_s, 1_W, r2);
  const TaskId loose = p.addTask("loose", 5_s, 6_W, r3);
  p.minSeparation(tight, gate, 5_s);
  p.maxSeparation(tight, gate, 5_s);  // gate exactly 5 after tight
  p.pin(gate, Time(5));               // so tight is pinned at 0
  p.setMaxPower(10_W);
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->start(tight), Time(0));
  EXPECT_GE(r.schedule->start(loose), Time(5));
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).powerValid());
}

TEST(MaxPowerSchedulerTest, RescheduleCaseSolvesZeroSlackConflict) {
  // Both tasks zero-slack via pins... pins make delay impossible, so use
  // tight windows instead: a and b both want [0,5) but the budget forbids
  // overlap; neither has slack in the ASAP schedule (both are sources).
  Problem p("resched");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const ResourceId r3 = p.addResource("r3");
  const TaskId a = p.addTask("a", 5_s, 6_W, r1);
  const TaskId b = p.addTask("b", 5_s, 6_W, r2);
  const TaskId after = p.addTask("after", 5_s, 1_W, r3);
  // Both a and b must finish within 12s of start (loose enough to allow
  // serialization, tight enough that slacks start at 0... they don't: ASAP
  // slacks derive from the windows; with 'after' at least 5 beyond both and
  // deadline 17 the window is 12).
  p.minSeparation(a, after, 5_s);
  p.minSeparation(b, after, 5_s);
  p.deadline(after, Time(17));
  p.setMaxPower(9_W);
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).powerValid());
  // a and b must not overlap.
  EXPECT_FALSE(r.schedule->interval(a).overlaps(r.schedule->interval(b)));
}

TEST(MaxPowerSchedulerTest, PaperExampleDelaysHandF) {
  // Fig. 5: "Tasks h and f are delayed to remove the power spike."
  const Problem p = makePaperExampleProblem();
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const Schedule& s = *r.schedule;
  EXPECT_EQ(s.start(*p.findTask("h")), Time(20));
  EXPECT_EQ(s.start(*p.findTask("f")), Time(15));
  // Everything else keeps its ASAP slot.
  EXPECT_EQ(s.start(*p.findTask("a")), Time(0));
  EXPECT_EQ(s.start(*p.findTask("c")), Time(10));
  EXPECT_EQ(s.start(*p.findTask("g")), Time(5));
  EXPECT_TRUE(s.powerProfile().spikes(p.maxPower()).empty());
  EXPECT_EQ(s.finish(), Time(30));
}

TEST(MaxPowerSchedulerTest, ValidScheduleNeverViolatesTiming) {
  const Problem p = makePaperExampleProblem();
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  const ScheduleValidator validator(p);
  const auto report = validator.validate(*r.schedule);
  EXPECT_TRUE(report.valid()) << "power-valid implies time-valid too";
}

TEST(MaxPowerSchedulerTest, DetailedReturnsDecoratedGraph) {
  const Problem p = makePaperExampleProblem();
  MaxPowerScheduler scheduler(p);
  const MaxPowerScheduler::Detailed det = scheduler.scheduleDetailed();
  ASSERT_TRUE(det.result.ok());
  ASSERT_TRUE(det.graph.has_value());
  // The decorated graph carries serialization and delay edges on top of
  // the user graph.
  bool hasSerialization = false, hasDelay = false;
  for (const ConstraintEdge& e : det.graph->edges()) {
    hasSerialization |= e.kind == EdgeKind::kSerialization;
    hasDelay |= e.kind == EdgeKind::kDelay;
  }
  EXPECT_TRUE(hasSerialization);
  EXPECT_TRUE(hasDelay);
}

TEST(MaxPowerSchedulerTest, RandomVictimOrderStillValid) {
  const Problem p = makePaperExampleProblem();
  MaxPowerOptions opt;
  opt.victimOrder = VictimOrder::kRandom;
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    opt.randomSeed = seed;
    MaxPowerScheduler scheduler(p, opt);
    const ScheduleResult r = scheduler.schedule();
    if (!r.ok()) continue;  // random victims may defeat the heuristic
    const ScheduleValidator validator(p);
    EXPECT_TRUE(validator.validate(*r.schedule).powerValid())
        << "seed " << seed;
  }
}

TEST(MaxPowerSchedulerTest, TinyDelayBudgetReportsExhaustion) {
  Problem p = twoParallelHeavy();
  MaxPowerOptions opt;
  opt.maxDelays = 0;
  MaxPowerScheduler scheduler(p, opt);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, SchedStatus::kBudgetExhausted);
}

TEST(MaxPowerSchedulerTest, TimingInfeasibilityPropagates) {
  Problem p("bad");
  const ResourceId r1 = p.addResource("r1");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r1);
  p.minSeparation(a, b, 10_s);
  p.maxSeparation(a, b, 2_s);
  MaxPowerScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, SchedStatus::kTimingInfeasible);
}

}  // namespace
}  // namespace paws
