#include "sched/repair.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "rover/rover_model.hpp"
#include "sched/min_power_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Schedule pipelineSchedule(const Problem& p) {
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  EXPECT_TRUE(r.ok()) << r.message;
  return *r.schedule;
}

TEST(RepairTest, NoChangeRepairKeepsHistoryAndStaysValid) {
  const Problem p = makePaperExampleProblem();
  const Schedule original = pipelineSchedule(p);
  const RepairInput input{&p, &original, Time(12)};
  const ScheduleResult repaired = repairSchedule(input);
  ASSERT_TRUE(repaired.ok()) << repaired.message;
  for (TaskId v : p.taskIds()) {
    if (original.start(v) < Time(12)) {
      EXPECT_EQ(repaired.schedule->start(v), original.start(v))
          << p.task(v).name;
    } else {
      EXPECT_GE(repaired.schedule->start(v), Time(12)) << p.task(v).name;
    }
  }
  EXPECT_TRUE(ScheduleValidator(p).validate(*repaired.schedule).valid());
}

TEST(RepairTest, BudgetDropMidFlightSerializesTheFuture) {
  // Rover typical case: at t=20 the budget collapses to the worst-case
  // 19 W (dust storm). The overlapped future must be re-planned serially;
  // history (starts < 20) is frozen.
  const Problem typical = rover::makeRoverProblem(rover::RoverCase::kTypical);
  const Schedule original = pipelineSchedule(typical);

  Problem stormy(typical);
  stormy.setMaxPower(19_W);
  const RepairInput input{&stormy, &original, Time(20)};
  const ScheduleResult repaired = repairSchedule(input);
  ASSERT_TRUE(repaired.ok()) << repaired.message;

  for (TaskId v : typical.taskIds()) {
    if (original.start(v) < Time(20)) {
      EXPECT_EQ(repaired.schedule->start(v), original.start(v));
    }
  }
  // The repaired future respects the NEW budget: no spikes after t=20.
  const PowerProfile& profile = repaired.schedule->powerProfile();
  for (const Interval& spike : profile.spikes(19_W)) {
    EXPECT_LT(spike.begin(), Time(20))
        << "only historical spikes may remain";
  }
  // Serial future is slower than the undisturbed plan.
  EXPECT_GE(repaired.schedule->finish(), original.finish());
}

TEST(RepairTest, RelaxedBudgetCanOnlyHelpTheFuture) {
  const Problem worst = rover::makeRoverProblem(rover::RoverCase::kWorst);
  const Schedule original = pipelineSchedule(worst);

  Problem sunny(worst);
  sunny.setMaxPower(Watts::fromWatts(24.9));
  sunny.setMinPower(Watts::fromWatts(14.9));
  const RepairInput input{&sunny, &original, Time(10)};
  const ScheduleResult repaired = repairSchedule(input);
  ASSERT_TRUE(repaired.ok()) << repaired.message;
  EXPECT_LE(repaired.schedule->finish(), original.finish())
      << "extra headroom must not slow the mission down";
  EXPECT_TRUE(
      ScheduleValidator(sunny).validate(*repaired.schedule).powerValid());
}

TEST(RepairTest, ImpossibleNewBudgetFailsCleanly) {
  const Problem p = makePaperExampleProblem();
  const Schedule original = pipelineSchedule(p);
  Problem strangled(p);
  strangled.setMaxPower(5_W);  // even single tasks exceed this
  const RepairInput input{&strangled, &original, Time(10)};
  const ScheduleResult repaired = repairSchedule(input);
  EXPECT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status, SchedStatus::kPowerInfeasible);
}

TEST(RepairTest, RepairAtTimeZeroIsAFullReschedule) {
  const Problem p = makePaperExampleProblem();
  const Schedule original = pipelineSchedule(p);
  const RepairInput input{&p, &original, Time(0)};
  const ScheduleResult repaired = repairSchedule(input);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(ScheduleValidator(p).validate(*repaired.schedule).valid());
}

TEST(RepairTest, RejectsMismatchedProblems) {
  const Problem p = makePaperExampleProblem();
  const Schedule original = pipelineSchedule(p);
  Problem other("other");
  const ResourceId r1 = other.addResource("r1");
  other.addTask("x", 1_s, 1_W, r1);
  const RepairInput input{&other, &original, Time(5)};
  // Mismatched inputs are a structured error, not an abort: a mid-flight
  // repair request must never take the executor down with it.
  const ScheduleResult repaired = repairSchedule(input);
  EXPECT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status, SchedStatus::kInvalidInput);
  EXPECT_NE(repaired.message.find("task(s)"), std::string::npos)
      << repaired.message;
}

TEST(RepairTest, RejectsRenamedTasks) {
  const Problem p = makePaperExampleProblem();
  const Schedule original = pipelineSchedule(p);
  // Same shape, different task names: the count check passes, the per-task
  // name check must catch it.
  Problem renamed("renamed");
  const ResourceId rr = renamed.addResource("r");
  bool first = true;
  for (TaskId v : p.taskIds()) {
    const Task& t = p.task(v);
    renamed.addTask(first ? "impostor" : t.name, t.delay, t.power, rr);
    first = false;
  }
  const RepairInput input{&renamed, &original, Time(5)};
  const ScheduleResult repaired = repairSchedule(input);
  EXPECT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status, SchedStatus::kInvalidInput);
  EXPECT_NE(repaired.message.find("impostor"), std::string::npos)
      << repaired.message;
}

TEST(RepairTest, RejectsNullInputs) {
  const Problem p = makePaperExampleProblem();
  const Schedule original = pipelineSchedule(p);
  const ScheduleResult noProblem = repairSchedule({nullptr, &original, Time(5)});
  EXPECT_EQ(noProblem.status, SchedStatus::kInvalidInput);
  const ScheduleResult noSchedule = repairSchedule({&p, nullptr, Time(5)});
  EXPECT_EQ(noSchedule.status, SchedStatus::kInvalidInput);
}

}  // namespace
}  // namespace paws
