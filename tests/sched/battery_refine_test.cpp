// batteryRefine() — Khan & Vemuri's rate-capacity post-pass. The contract:
// never worse on effective drawn charge, still valid, never finishing
// later, an exact no-op under a linear model, and deterministic.
#include "sched/battery_refine.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/schedule.hpp"

namespace paws {
namespace {

using namespace paws::literals;

BatteryTraits steepTraits() {
  BatteryTraits traits;
  traits.bands.push_back(RateBand{4_W, 2000});  // >4 W costs double
  return traits;
}

/// Two movable 3 W bursts stacked at t=0 plus a long 1 W tail that holds
/// the horizon open: spreading the bursts off each other halves their
/// effective cost under steepTraits() without moving the finish.
Problem stackedProblem() {
  Problem p("stacked");
  p.setMaxPower(20_W);
  p.setMinPower(Watts::zero());
  const ResourceId ra = p.addResource("ra");
  const ResourceId rb = p.addResource("rb");
  const ResourceId rc = p.addResource("rc");
  p.addTask("burst_a", Duration(5), 3_W, ra);
  p.addTask("burst_b", Duration(5), 3_W, rb);
  p.addTask("tail", Duration(20), 1_W, rc);
  return p;
}

Schedule stackedSchedule(const Problem& p) {
  // Vertex-indexed (anchor first): everything starts at t=0.
  return Schedule(&p, std::vector<Time>(p.numVertices(), Time::zero()));
}

TEST(EffectiveDrawnChargeTest, MatchesEnergyAboveUnderLinearModel) {
  const Problem p = stackedProblem();
  const Schedule s = stackedSchedule(p);
  EXPECT_EQ(effectiveDrawnCharge(s.powerProfile(), Watts::zero(),
                                 BatteryTraits{}),
            s.powerProfile().energyAbove(Watts::zero()));
  EXPECT_EQ(effectiveDrawnCharge(s.powerProfile(), 1_W, BatteryTraits{}),
            s.powerProfile().energyAbove(1_W));
}

TEST(EffectiveDrawnChargeTest, InflatesSegmentsAboveTheBand) {
  const Problem p = stackedProblem();
  const Schedule s = stackedSchedule(p);
  // Stacked: [0,5) draws 7 W (doubled to 14), [5,20) draws 1 W.
  EXPECT_EQ(effectiveDrawnCharge(s.powerProfile(), Watts::zero(),
                                 steepTraits()),
            14_W * Duration(5) + 1_W * Duration(15));
}

TEST(BatteryRefineTest, LinearModelIsAnExactNoOp) {
  const Problem p = stackedProblem();
  const Schedule s = stackedSchedule(p);
  BatteryRefineOptions options;  // default-constructed model = linear
  BatteryRefineStats stats;
  const Schedule refined = batteryRefine(p, s, options, &stats);
  EXPECT_EQ(refined.starts(), s.starts());
  EXPECT_EQ(stats.moves, 0u);
  EXPECT_EQ(stats.saved, Energy::zero());
}

TEST(BatteryRefineTest, SpreadsAStackedScheduleStrictlyBetter) {
  const Problem p = stackedProblem();
  const Schedule s = stackedSchedule(p);
  BatteryRefineOptions options;
  options.model = steepTraits();
  BatteryRefineStats stats;
  const Schedule refined = batteryRefine(p, s, options, &stats);
  const Energy before =
      effectiveDrawnCharge(s.powerProfile(), p.minPower(), options.model);
  const Energy after = effectiveDrawnCharge(refined.powerProfile(),
                                            p.minPower(), options.model);
  EXPECT_LT(after, before);
  EXPECT_GE(stats.moves, 1u);
  EXPECT_EQ(stats.saved, before - after);
  // The contract: no later finish, still Pmax-valid.
  EXPECT_LE(refined.finish(), s.finish());
  EXPECT_FALSE(refined.powerProfile().firstSpike(p.maxPower()).has_value());
  // Fully unstacked bursts never cross the 4 W band.
  EXPECT_EQ(after, s.powerProfile().energyAbove(p.minPower()));
}

TEST(BatteryRefineTest, IsDeterministic) {
  const Problem p = stackedProblem();
  const Schedule s = stackedSchedule(p);
  BatteryRefineOptions options;
  options.model = steepTraits();
  const Schedule a = batteryRefine(p, s, options);
  const Schedule b = batteryRefine(p, s, options);
  EXPECT_EQ(a.starts(), b.starts());
}

TEST(BatteryRefineTest, NeverWorsensTheRoverSchedules) {
  for (const rover::RoverCase c :
       {rover::RoverCase::kBest, rover::RoverCase::kTypical,
        rover::RoverCase::kWorst}) {
    const Problem p = rover::makeRoverProblem(c, 1);
    PowerAwareScheduler scheduler(p);
    const ScheduleResult r = scheduler.schedule();
    ASSERT_TRUE(r.ok());
    BatteryRefineOptions options;
    options.model = rover::missionBatteryTraits();
    const Schedule refined = batteryRefine(p, *r.schedule, options);
    EXPECT_LE(effectiveDrawnCharge(refined.powerProfile(), p.minPower(),
                                   options.model),
              effectiveDrawnCharge(r.schedule->powerProfile(), p.minPower(),
                                   options.model))
        << toString(c);
    EXPECT_LE(refined.finish(), r.schedule->finish()) << toString(c);
    EXPECT_FALSE(
        refined.powerProfile().firstSpike(p.maxPower()).has_value())
        << toString(c);
  }
}

TEST(BatteryRefineTest, SchedulerOptionWiresThePassIn) {
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kWorst, 1);
  PowerAwareOptions options;
  BatteryRefineOptions refine;
  refine.model = rover::missionBatteryTraits();
  options.batteryRefine = refine;
  PowerAwareScheduler scheduler(p, options);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  // The delivered schedule is already refined: a second pass finds nothing.
  BatteryRefineStats stats;
  const Schedule again = batteryRefine(p, *r.schedule, refine, &stats);
  EXPECT_EQ(again.starts(), r.schedule->starts());
  EXPECT_EQ(stats.moves, 0u);
}

TEST(BatteryRefineTest, DefaultOptionsLeaveTheSchedulerByteIdentical) {
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kTypical, 1);
  PowerAwareScheduler plain(p);
  const ScheduleResult a = plain.schedule();
  PowerAwareScheduler withDefault(p, PowerAwareOptions{});
  const ScheduleResult b = withDefault.schedule();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.schedule->starts(), b.schedule->starts());
}

}  // namespace
}  // namespace paws
