#include "sched/windows.hpp"

#include <gtest/gtest.h>

#include "graph/longest_path.hpp"
#include "model/paper_example.hpp"
#include "sched/timing_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(StartWindowsTest, UnconstrainedTaskSpansHorizon) {
  Problem p("w");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("a", 5_s, 1_W, r1);
  const ConstraintGraph g = p.buildGraph();
  const auto windows = computeStartWindows(p, g, Time(20));
  EXPECT_EQ(windows[1].earliest, Time(0));
  EXPECT_EQ(windows[1].latest, Time(15));  // 20 - d(a)
  EXPECT_EQ(windows[1].width(), Duration(15));
  // Anchor is pinned.
  EXPECT_EQ(windows[0].earliest, Time(0));
  EXPECT_EQ(windows[0].latest, Time(0));
}

TEST(StartWindowsTest, ChainTightensBothEnds) {
  Problem p("chain");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r2);
  p.minSeparation(a, b, 5_s);
  const ConstraintGraph g = p.buildGraph();
  const auto windows = computeStartWindows(p, g, Time(20));
  EXPECT_EQ(windows[a.index()].earliest, Time(0));
  EXPECT_EQ(windows[a.index()].latest, Time(10));  // b <= 15, a <= b-5
  EXPECT_EQ(windows[b.index()].earliest, Time(5));
  EXPECT_EQ(windows[b.index()].latest, Time(15));
}

TEST(StartWindowsTest, MaxSeparationCouplesWindows) {
  Problem p("win");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r2);
  p.minSeparation(a, b, 5_s);
  p.maxSeparation(a, b, 8_s);
  p.deadline(b, Time(18));  // sigma(b) <= 13
  const ConstraintGraph g = p.buildGraph();
  const auto windows = computeStartWindows(p, g, Time(100));
  // b's deadline beats the horizon; a is pulled by both constraints.
  EXPECT_EQ(windows[b.index()].latest, Time(13));
  EXPECT_EQ(windows[a.index()].latest, Time(8));  // b-5
  // Max separation bounds b from a's side too: b <= a_latest + 8 = 16,
  // but 13 is tighter; and b's earliest stays 5.
  EXPECT_EQ(windows[b.index()].earliest, Time(5));
}

TEST(StartWindowsTest, DeadlinePropagatesThroughAnchorBackEdge) {
  Problem p("dl");
  const ResourceId r1 = p.addResource("r1");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  p.deadline(a, Time(12));
  const ConstraintGraph g = p.buildGraph();
  const auto windows = computeStartWindows(p, g, Time(1000));
  EXPECT_EQ(windows[a.index()].latest, Time(7));
}

TEST(StartWindowsTest, InfeasibleHorizonYieldsEmptyWindow) {
  Problem p("tight");
  const ResourceId r1 = p.addResource("r1");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  p.release(a, Time(10));
  const ConstraintGraph g = p.buildGraph();
  const auto windows = computeStartWindows(p, g, Time(12));
  EXPECT_FALSE(windows[a.index()].feasible());  // EST 10 > LST 7
}

TEST(StartWindowsTest, EveryScheduleFitsItsWindows) {
  // Global invariant: any time-valid schedule places every task inside the
  // windows computed for its achieved horizon on the decorated graph.
  const Problem p = makePaperExampleProblem();
  ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(p);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_TRUE(out.ok);
  const Schedule s(&p, out.starts);
  const auto windows = computeStartWindows(p, g, s.finish());
  for (TaskId v : p.taskIds()) {
    EXPECT_GE(s.start(v), windows[v.index()].earliest) << p.task(v).name;
    EXPECT_LE(s.start(v), windows[v.index()].latest) << p.task(v).name;
  }
}

TEST(StartWindowsTest, AnyPointInsideAWindowIsIndividuallyRealizable) {
  // For each task, pinning it anywhere in its window keeps the system
  // feasible (windows are tight in this one-task-at-a-time sense).
  const Problem p = makePaperExampleProblem();
  const ConstraintGraph base = p.buildGraph();
  const Time horizon(40);
  const auto windows = computeStartWindows(p, base, horizon);
  for (TaskId v : p.taskIds()) {
    if (!windows[v.index()].feasible()) continue;
    for (const Time t :
         {windows[v.index()].earliest, windows[v.index()].latest}) {
      Problem pinned = p;  // value copy
      pinned.pin(v, t);
      ConstraintGraph g = pinned.buildGraph();
      LongestPathEngine engine(g);
      EXPECT_TRUE(engine.compute(kAnchorTask).feasible)
          << p.task(v).name << " pinned at " << t;
    }
  }
}

TEST(StartWindowsTest, RejectsInfeasibleGraph) {
  Problem p("cycle");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("a", 5_s, 1_W, r1);
  const TaskId b = p.addTask("b", 5_s, 1_W, r2);
  p.minSeparation(a, b, 10_s);
  p.maxSeparation(a, b, 4_s);
  const ConstraintGraph g = p.buildGraph();
  EXPECT_THROW((void)computeStartWindows(p, g, Time(100)), CheckError);
}

}  // namespace
}  // namespace paws
