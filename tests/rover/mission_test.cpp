#include "rover/mission.hpp"

#include <gtest/gtest.h>

#include "rover/plans.hpp"

namespace paws::rover {
namespace {

using namespace paws::literals;

/// Hand-built policy mirroring the paper's JPL numbers exactly.
SchedulePolicy paperJplPolicy() {
  SchedulePolicy policy;
  policy.best = {RoverCase::kBest, Duration(75), 0_J, Duration(75), 0_J, 2};
  policy.typical = {RoverCase::kTypical, Duration(75), 55_J, Duration(75),
                    55_J, 2};
  policy.worst = {RoverCase::kWorst, Duration(75), 388_J, Duration(75),
                  388_J, 2};
  return policy;
}

TEST(MissionSimulatorTest, PaperJplNumbersReproduceTableFour) {
  // Table 4, JPL row: 16 steps per 10-minute phase, 1800 s total,
  // 0 + 440 + 3104 J (the paper prints 3114 for phase 3; 8 iterations of
  // the 388 J worst-case schedule give 3104 — see EXPERIMENTS.md).
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  const MissionResult r = sim.run(paperJplPolicy(), 48);
  EXPECT_EQ(r.steps, 48);
  EXPECT_EQ(r.time, Duration(1800));
  EXPECT_EQ(r.cost, 3544_J);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].solar, Watts::fromWatts(14.9));
  EXPECT_EQ(r.phases[0].steps, 16);
  EXPECT_EQ(r.phases[0].cost, 0_J);
  EXPECT_EQ(r.phases[1].steps, 16);
  EXPECT_EQ(r.phases[1].cost, 440_J);
  EXPECT_EQ(r.phases[2].steps, 16);
  EXPECT_EQ(r.phases[2].cost, 3104_J);
  EXPECT_FALSE(r.batteryDepleted);
}

TEST(MissionSimulatorTest, PaperPowerAwareNumbersReproduceTableFour) {
  // Table 4, power-aware row, using the paper's own per-iteration numbers
  // (first iteration 79.5 J then 6 J steady in the best case; 147 J and
  // 60 s in the typical case; worst case equals JPL).
  SchedulePolicy policy;
  policy.best = {RoverCase::kBest, Duration(50), 79.5_J, Duration(50), 6_J,
                 2};
  policy.typical = {RoverCase::kTypical, Duration(60), 147_J, Duration(60),
                    147_J, 2};
  policy.worst = {RoverCase::kWorst, Duration(75), 388_J, Duration(75),
                  388_J, 2};
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  const MissionResult r = sim.run(policy, 48);
  EXPECT_EQ(r.steps, 48);
  EXPECT_EQ(r.time, Duration(1350));
  EXPECT_EQ(r.cost, Energy::fromMilliwattTicks(2391500))
      << "145.5 + 1470 + 776 = 2391.5 J";
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].steps, 24);
  EXPECT_EQ(r.phases[0].cost, 145.5_J);
  EXPECT_EQ(r.phases[1].steps, 20);
  EXPECT_EQ(r.phases[1].cost, 1470_J);
  EXPECT_EQ(r.phases[2].steps, 4);
  EXPECT_EQ(r.phases[2].time, Duration(150));
  EXPECT_EQ(r.phases[2].cost, 776_J);
}

TEST(MissionSimulatorTest, ColdStartCostAppliesAfterCaseSwitch) {
  SchedulePolicy policy;
  policy.best = {RoverCase::kBest, Duration(50), 100_J, Duration(50), 10_J,
                 2};
  policy.typical = {RoverCase::kTypical, Duration(60), 200_J, Duration(60),
                    20_J, 2};
  policy.worst = {RoverCase::kWorst, Duration(75), 388_J, Duration(75),
                  388_J, 2};
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  // 26 steps: 12 best iterations (600 s) + 1 typical iteration.
  const MissionResult r = sim.run(policy, 26);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].cost, 210_J);  // 100 cold + 11 x 10 steady
  EXPECT_EQ(r.phases[1].cost, 200_J) << "switch pays the cold cost again";
}

TEST(MissionSimulatorTest, BatteryDepletionStopsMission) {
  MissionSimulator sim(missionSolarProfile(), Battery(10_W, 500_J));
  const MissionResult r = sim.run(paperJplPolicy(), 48);
  EXPECT_TRUE(r.batteryDepleted);
  EXPECT_LT(r.steps, 48);
}

TEST(MissionSimulatorTest, RejectsNonPositiveTarget) {
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  EXPECT_THROW((void)sim.run(paperJplPolicy(), 0), CheckError);
}

TEST(PlanBuilderTest, JplPolicyMatchesTableThree) {
  const PolicyBuild build = buildJplPolicy();
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build.policy.best.steadySpan, Duration(75));
  EXPECT_EQ(build.policy.best.steadyCost, 0_J);
  EXPECT_EQ(build.policy.typical.steadyCost, 55_J);
  EXPECT_EQ(build.policy.worst.steadyCost, 388_J);
  EXPECT_DOUBLE_EQ(build.derivations[2].utilization, 1.0);
}

TEST(PlanBuilderTest, PowerAwarePolicyBeatsJplWhereSunShines) {
  const PolicyBuild jpl = buildJplPolicy();
  const PolicyBuild pa = buildPowerAwarePolicy();
  ASSERT_TRUE(jpl.ok());
  ASSERT_TRUE(pa.ok()) << pa.derivations[0].message;
  // Best & typical: strictly faster steady iterations.
  EXPECT_LT(pa.policy.best.steadySpan, jpl.policy.best.steadySpan);
  EXPECT_LT(pa.policy.typical.steadySpan, jpl.policy.typical.steadySpan);
  // Worst: identical to the serial baseline (the paper's observation).
  EXPECT_EQ(pa.policy.worst.steadySpan, jpl.policy.worst.steadySpan);
  EXPECT_EQ(pa.policy.worst.steadyCost, jpl.policy.worst.steadyCost);
}

TEST(PlanBuilderTest, PowerAwareMissionWinsOnTimeAndEnergy) {
  // The paper's headline: 33.3% faster and 32.7% cheaper on the 48-step
  // mission. Scheduler heuristics differ in the details, so assert the
  // *shape*: strictly faster AND strictly cheaper.
  const PolicyBuild jpl = buildJplPolicy();
  const PolicyBuild pa = buildPowerAwarePolicy();
  ASSERT_TRUE(jpl.ok() && pa.ok());
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  const MissionResult rj = sim.run(jpl.policy, 48);
  const MissionResult rp = sim.run(pa.policy, 48);
  EXPECT_EQ(rj.steps, 48);
  EXPECT_EQ(rp.steps, 48);
  EXPECT_LT(rp.time, rj.time);
  EXPECT_LT(rp.cost, rj.cost);
  // And the JPL baseline matches Table 4 exactly.
  EXPECT_EQ(rj.time, Duration(1800));
  EXPECT_EQ(rj.cost, 3544_J);
}

}  // namespace
}  // namespace paws::rover
