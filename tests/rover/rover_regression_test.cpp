// Golden regression tests pinning the power-aware scheduler's measured
// results on the rover — the values EXPERIMENTS.md reports. These are
// deliberately exact: the whole stack is deterministic and fixed-point, so
// any change to a heuristic that shifts a paper-reproduction number must
// show up here (and then be re-justified in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "rover/plans.hpp"
#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws::rover {
namespace {

using namespace paws::literals;

// Takes the problem by reference — the returned Schedule keeps a pointer
// to it, so a helper-local Problem would dangle after return.
ScheduleResult scheduleCase(const Problem& p) {
  PowerAwareScheduler scheduler(p);
  ScheduleResult r = scheduler.schedule();
  if (r.ok()) {
    EXPECT_TRUE(ScheduleValidator(p).validate(*r.schedule).powerValid());
  }
  return r;
}

TEST(RoverRegressionTest, BestCaseMatchesPaperShape) {
  // Paper: tau = 50 s, Ec = 79.5 J (first iteration). Measured: 50 s,
  // 76.5 J — within 4 % of the paper's manually tuned schedule.
  const Problem p = makeRoverProblem(RoverCase::kBest);
  PowerAwareScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->finish(), Time(50));
  EXPECT_EQ(r.schedule->energyCost(p.minPower()),
            Energy::fromMilliwattTicks(76500));
}

TEST(RoverRegressionTest, TypicalCaseMatchesPaperExactly) {
  // Paper: Ec = 147 J, rho = 94 %, tau = 60 s. Measured: identical.
  const Problem p = makeRoverProblem(RoverCase::kTypical);
  PowerAwareScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->finish(), Time(60));
  EXPECT_EQ(r.schedule->energyCost(p.minPower()), 147_J);
  EXPECT_NEAR(r.schedule->utilization(p.minPower()), 0.942, 0.001);
}

TEST(RoverRegressionTest, WorstCaseDegeneratesToSerialExactly) {
  // Paper: the power-aware worst case is identical to the JPL serial
  // schedule: 388 J, 100 %, 75 s.
  const Problem p = makeRoverProblem(RoverCase::kWorst);
  const ScheduleResult r = scheduleCase(p);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->finish(), Time(75));
  EXPECT_EQ(r.schedule->energyCost(9_W), 388_J);
  EXPECT_DOUBLE_EQ(r.schedule->utilization(9_W), 1.0);
  // Fully serial: no two tasks overlap.
  const auto ids = r.schedule->problem().taskIds();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_FALSE(r.schedule->interval(ids[i])
                       .overlaps(r.schedule->interval(ids[j])));
    }
  }
}

TEST(RoverRegressionTest, UnrolledBestCasePipelines) {
  // The 3-iteration unroll must reach a 50 s/iteration steady state with a
  // steady cost far below the cold first iteration (the paper's Fig. 9
  // pre-heating effect; measured 106.5 J -> 16.5 J).
  const PolicyBuild pa = buildPowerAwarePolicy();
  ASSERT_TRUE(pa.ok());
  const PlanDerivation& best = pa.derivations[0];
  EXPECT_EQ(best.steadySpan, Duration(50));
  EXPECT_EQ(best.firstSpan, Duration(50));
  EXPECT_LT(best.steadyCost.milliwattTicks(),
            best.firstCost.milliwattTicks() / 4)
      << "steady-state pre-heating must collapse the battery cost";
}

TEST(RoverRegressionTest, MissionHeadlineNumbers) {
  // EXPERIMENTS.md E6: measured 1210 s / 2824 J vs JPL 1800 s / 3544 J.
  const PolicyBuild jpl = buildJplPolicy();
  const PolicyBuild pa = buildPowerAwarePolicy();
  ASSERT_TRUE(jpl.ok() && pa.ok());
  MissionSimulator sim(missionSolarProfile(), missionBattery());
  const MissionResult rj = sim.run(jpl.policy, 48);
  const MissionResult rp = sim.run(pa.policy, 48);
  EXPECT_EQ(rj.time, Duration(1800));
  EXPECT_EQ(rj.cost, 3544_J);
  EXPECT_EQ(rp.time, Duration(1210));
  EXPECT_EQ(rp.cost, 2824_J);
}

TEST(RoverRegressionTest, DeterministicAcrossRuns) {
  const Problem p = makeRoverProblem(RoverCase::kTypical);
  const ScheduleResult a = scheduleCase(p);
  const ScheduleResult b = scheduleCase(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.schedule->starts(), b.schedule->starts());
}

}  // namespace
}  // namespace paws::rover
