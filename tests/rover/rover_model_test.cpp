#include "rover/rover_model.hpp"

#include <gtest/gtest.h>

#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws::rover {
namespace {

using namespace paws::literals;

TEST(RoverModelTest, PowerTableMatchesTableTwo) {
  const RoverPowerTable best = powerTable(RoverCase::kBest);
  EXPECT_EQ(best.solar, Watts::fromWatts(14.9));
  EXPECT_EQ(best.cpu, Watts::fromWatts(2.5));
  EXPECT_EQ(best.heating, Watts::fromWatts(7.6));
  const RoverPowerTable worst = powerTable(RoverCase::kWorst);
  EXPECT_EQ(worst.solar, 9_W);
  EXPECT_EQ(worst.driving, Watts::fromWatts(13.8));
  EXPECT_EQ(worst.batteryMax, 10_W);
}

TEST(RoverModelTest, CaseForSolar) {
  EXPECT_EQ(caseForSolar(Watts::fromWatts(14.9)), RoverCase::kBest);
  EXPECT_EQ(caseForSolar(12_W), RoverCase::kTypical);
  EXPECT_EQ(caseForSolar(9_W), RoverCase::kWorst);
}

TEST(RoverModelTest, OneIterationShape) {
  std::vector<RoverIterationTasks> tasks;
  const Problem p = makeRoverProblem(RoverCase::kWorst, 1, &tasks);
  EXPECT_EQ(p.numTasks(), 11u);  // 5 heats + 2*(hazard,steer,drive)
  EXPECT_EQ(p.numResources(), 8u);  // 5 heaters + steering+driving+hazard
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(p.task(tasks[0].heatSteer[0]).delay, Duration(5));
  EXPECT_EQ(p.task(tasks[0].hazard[0]).delay, Duration(10));
  EXPECT_EQ(p.task(tasks[0].drive[1]).delay, Duration(10));
  EXPECT_TRUE(p.validate().empty());
}

TEST(RoverModelTest, ConstraintsDeriveFromSupply) {
  const Problem worst = makeRoverProblem(RoverCase::kWorst);
  EXPECT_EQ(worst.maxPower(), 19_W);  // 9 solar + 10 battery
  EXPECT_EQ(worst.minPower(), 9_W);
  EXPECT_EQ(worst.backgroundPower(), Watts::fromWatts(3.7));
  const Problem best = makeRoverProblem(RoverCase::kBest);
  EXPECT_EQ(best.maxPower(), Watts::fromWatts(24.9));
  EXPECT_EQ(best.minPower(), Watts::fromWatts(14.9));
}

TEST(RoverModelTest, UnrollingChainsIterations) {
  std::vector<RoverIterationTasks> tasks;
  const Problem p = makeRoverProblem(RoverCase::kTypical, 3, &tasks);
  EXPECT_EQ(p.numTasks(), 33u);
  ASSERT_EQ(tasks.size(), 3u);
  // Resources are shared across iterations, not duplicated.
  EXPECT_EQ(p.numResources(), 8u);
  EXPECT_EQ(p.task(tasks[1].drive[0]).resource,
            p.task(tasks[0].drive[0]).resource);
}

TEST(RoverModelTest, SerialWorstCaseTakes75Seconds) {
  // Calibration anchor: the JPL baseline executes one 2-step iteration in
  // exactly 75 s (Table 3, worst-case row).
  const Problem p = makeRoverProblem(RoverCase::kWorst);
  SerialScheduler serial(p);
  const ScheduleResult r = serial.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.schedule->finish(), Time(75));
  const ScheduleValidator validator(p);
  EXPECT_TRUE(validator.validate(*r.schedule).valid());
}

TEST(RoverModelTest, SerialWorstCaseEnergyCostIs388J) {
  // Table 3: Ec = 388 J at Pmin = 9 W, utilization 100%.
  const Problem p = makeRoverProblem(RoverCase::kWorst);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->energyCost(p.minPower()), 388_J);
  EXPECT_DOUBLE_EQ(r.schedule->utilization(p.minPower()), 1.0);
}

TEST(RoverModelTest, SerialTypicalCaseMatchesTableThree) {
  // Table 3: Ec = 55 J, utilization 91% (90.8% exact), tau = 75 s.
  const Problem p = makeRoverProblem(RoverCase::kTypical);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->finish(), Time(75));
  EXPECT_EQ(r.schedule->energyCost(p.minPower()), 55_J);
  EXPECT_NEAR(r.schedule->utilization(p.minPower()), 0.91, 0.005);
}

TEST(RoverModelTest, SerialBestCaseMatchesTableThree) {
  // Table 3: Ec = 0 J, utilization 60% (60.2% exact), tau = 75 s.
  const Problem p = makeRoverProblem(RoverCase::kBest);
  const ScheduleResult r = SerialScheduler(p).schedule();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->finish(), Time(75));
  EXPECT_EQ(r.schedule->energyCost(p.minPower()), Energy::zero());
  EXPECT_NEAR(r.schedule->utilization(p.minPower()), 0.602, 0.005);
}

TEST(RoverModelTest, MissionSolarProfile) {
  const SolarSource s = missionSolarProfile();
  EXPECT_EQ(s.levelAt(Time(0)), Watts::fromWatts(14.9));
  EXPECT_EQ(s.levelAt(Time(800)), 12_W);
  EXPECT_EQ(s.levelAt(Time(2000)), 9_W);
}

TEST(RoverModelTest, RejectsZeroIterations) {
  EXPECT_THROW(makeRoverProblem(RoverCase::kBest, 0), CheckError);
}

}  // namespace
}  // namespace paws::rover
