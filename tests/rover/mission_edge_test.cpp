// Phase-boundary and degenerate-input behavior of the mission simulator.
#include <gtest/gtest.h>

#include "rover/mission.hpp"

namespace paws::rover {
namespace {

using namespace paws::literals;

SchedulePolicy flatPolicy(Duration span, Energy cost) {
  SchedulePolicy policy;
  for (CasePlan* plan : {&policy.best, &policy.typical, &policy.worst}) {
    plan->firstSpan = plan->steadySpan = span;
    plan->firstCost = plan->steadyCost = cost;
    plan->stepsPerIteration = 2;
  }
  policy.best.environment = RoverCase::kBest;
  policy.typical.environment = RoverCase::kTypical;
  policy.worst.environment = RoverCase::kWorst;
  return policy;
}

TEST(MissionEdgeTest, IterationStartingExactlyAtPhaseSwitchUsesNewPhase) {
  // 60 s iterations against a 600 s phase boundary: iteration 10 starts at
  // exactly 600 and must be attributed to the 12 W phase.
  const SolarSource solar({{Time(0), Watts::fromWatts(14.9)},
                           {Time(600), 12_W}});
  MissionSimulator sim(solar, missionBattery());
  const MissionResult r = sim.run(flatPolicy(Duration(60), 10_J), 24);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].iterations, 10);
  EXPECT_EQ(r.phases[0].solar, Watts::fromWatts(14.9));
  EXPECT_EQ(r.phases[1].iterations, 2);
  EXPECT_EQ(r.phases[1].solar, 12_W);
}

TEST(MissionEdgeTest, IterationStraddlingASwitchKeepsItsStartPhasePlan) {
  // 75 s iterations over a 100 s first phase: iteration 2 starts at 75
  // (still phase 1) and runs into phase 2; it must be billed to phase 1.
  const SolarSource solar({{Time(0), Watts::fromWatts(14.9)},
                           {Time(100), 9_W}});
  MissionSimulator sim(solar, missionBattery());
  const MissionResult r = sim.run(flatPolicy(Duration(75), 10_J), 6);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].iterations, 2) << "t=0 and t=75 both see 14.9W";
  EXPECT_EQ(r.phases[1].iterations, 1);
}

TEST(MissionEdgeTest, OddTargetRoundsUpToWholeIterations) {
  MissionSimulator sim(SolarSource(9_W), missionBattery());
  const MissionResult r = sim.run(flatPolicy(Duration(75), 10_J), 5);
  EXPECT_EQ(r.steps, 6) << "three 2-step iterations cover a 5-step target";
}

TEST(MissionEdgeTest, ZeroCostPlansNeverDepleteTheBattery) {
  MissionSimulator sim(SolarSource(Watts::fromWatts(14.9)),
                       Battery(10_W, 1_J));
  const MissionResult r =
      sim.run(flatPolicy(Duration(50), Energy::zero()), 48);
  EXPECT_FALSE(r.batteryDepleted);
  EXPECT_EQ(r.steps, 48);
  EXPECT_EQ(r.cost, Energy::zero());
}

}  // namespace
}  // namespace paws::rover
