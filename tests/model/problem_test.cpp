#include "model/problem.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "model/paper_example.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem twoTaskProblem() {
  Problem p("two");
  const ResourceId r = p.addResource("cpu");
  p.addTask("t1", 5_s, 2_W, r);
  p.addTask("t2", 3_s, 4_W, r);
  return p;
}

TEST(ProblemTest, AnchorIsVertexZero) {
  Problem p;
  EXPECT_EQ(p.numVertices(), 1u);
  EXPECT_EQ(p.numTasks(), 0u);
  EXPECT_EQ(p.task(kAnchorTask).delay, Duration::zero());
  EXPECT_EQ(p.task(kAnchorTask).power, Watts::zero());
}

TEST(ProblemTest, AddTaskAssignsSequentialIds) {
  Problem p = twoTaskProblem();
  EXPECT_EQ(p.numTasks(), 2u);
  ASSERT_EQ(p.taskIds().size(), 2u);
  EXPECT_EQ(p.taskIds()[0], TaskId(1));
  EXPECT_EQ(p.taskIds()[1], TaskId(2));
  EXPECT_EQ(p.task(TaskId(1)).name, "t1");
}

TEST(ProblemTest, FindByName) {
  Problem p = twoTaskProblem();
  ASSERT_TRUE(p.findTask("t2").has_value());
  EXPECT_EQ(*p.findTask("t2"), TaskId(2));
  EXPECT_FALSE(p.findTask("nope").has_value());
  ASSERT_TRUE(p.findResource("cpu").has_value());
  EXPECT_FALSE(p.findResource("gpu").has_value());
}

TEST(ProblemTest, RejectsDuplicateNames) {
  Problem p;
  const ResourceId r = p.addResource("cpu");
  p.addTask("t", 1_s, 1_W, r);
  EXPECT_THROW(p.addTask("t", 1_s, 1_W, r), CheckError);
  EXPECT_THROW(p.addResource("cpu"), CheckError);
}

TEST(ProblemTest, RejectsNonPositiveDelay) {
  Problem p;
  const ResourceId r = p.addResource("cpu");
  EXPECT_THROW(p.addTask("bad", Duration(0), 1_W, r), CheckError);
  EXPECT_THROW(p.addTask("bad2", Duration(-5), 1_W, r), CheckError);
}

TEST(ProblemTest, RejectsUnknownResource) {
  Problem p;
  EXPECT_THROW(p.addTask("t", 1_s, 1_W, ResourceId(3)), CheckError);
  EXPECT_THROW(p.addTask("t", 1_s, 1_W, ResourceId::invalid()), CheckError);
}

TEST(ProblemTest, TaskEnergy) {
  Problem p = twoTaskProblem();
  EXPECT_EQ(p.task(TaskId(1)).energy(), 2_W * 5_s);
  EXPECT_EQ(p.totalTaskEnergy(), 2_W * 5_s + 4_W * 3_s);
}

TEST(ProblemTest, ConstraintSugarExpandsToSeparations) {
  Problem p = twoTaskProblem();
  const TaskId t1(1), t2(2);
  p.precedes(t1, t2);            // min sep = d(t1) = 5
  p.release(t2, Time(7));        // min sep anchor->t2 = 7
  p.deadline(t2, Time(30));      // max sep anchor->t2 = 30 - 3 = 27
  const auto& cs = p.constraints();
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].kind, TimingConstraint::Kind::kMinSeparation);
  EXPECT_EQ(cs[0].separation, Duration(5));
  EXPECT_EQ(cs[1].from, kAnchorTask);
  EXPECT_EQ(cs[1].separation, Duration(7));
  EXPECT_EQ(cs[2].kind, TimingConstraint::Kind::kMaxSeparation);
  EXPECT_EQ(cs[2].separation, Duration(27));
}

TEST(ProblemTest, PinCreatesEqualityWindow) {
  Problem p = twoTaskProblem();
  p.pin(TaskId(1), Time(12));
  const auto& cs = p.constraints();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].kind, TimingConstraint::Kind::kMinSeparation);
  EXPECT_EQ(cs[0].separation, Duration(12));
  EXPECT_EQ(cs[1].kind, TimingConstraint::Kind::kMaxSeparation);
  EXPECT_EQ(cs[1].separation, Duration(12));
}

TEST(ProblemTest, ConstraintEndpointsMustDiffer) {
  Problem p = twoTaskProblem();
  EXPECT_THROW(p.minSeparation(TaskId(1), TaskId(1), 1_s), CheckError);
}

TEST(ProblemTest, BuildGraphAddsReleaseAndConstraintEdges) {
  Problem p = twoTaskProblem();
  p.minSeparation(TaskId(1), TaskId(2), 5_s);
  p.maxSeparation(TaskId(1), TaskId(2), 20_s);
  const ConstraintGraph g = p.buildGraph();
  EXPECT_EQ(g.numVertices(), 3u);
  // 2 release edges + 1 min + 1 max.
  ASSERT_EQ(g.numEdges(), 4u);
  const ConstraintEdge& minE = g.edge(2);
  EXPECT_EQ(minE.from, TaskId(1));
  EXPECT_EQ(minE.to, TaskId(2));
  EXPECT_EQ(minE.weight, Duration(5));
  const ConstraintEdge& maxE = g.edge(3);
  EXPECT_EQ(maxE.from, TaskId(2)) << "max separation is a back edge";
  EXPECT_EQ(maxE.to, TaskId(1));
  EXPECT_EQ(maxE.weight, Duration(-20));
  EXPECT_EQ(maxE.kind, EdgeKind::kUserMax);
}

TEST(ProblemTest, ValidateFlagsImpossiblePower) {
  Problem p;
  const ResourceId r = p.addResource("cpu");
  p.addTask("heavy", 1_s, 30_W, r);
  p.setMaxPower(10_W);
  const auto issues = p.validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("heavy"), std::string::npos);
}

TEST(ProblemTest, ValidateFlagsContradictoryWindow) {
  Problem p = twoTaskProblem();
  p.minSeparation(TaskId(1), TaskId(2), 10_s);
  p.maxSeparation(TaskId(1), TaskId(2), 4_s);
  EXPECT_FALSE(p.validate().empty());
}

TEST(ProblemTest, ValidateFlagsMinAboveMax) {
  Problem p;
  p.setMaxPower(10_W);
  p.setMinPower(12_W);
  EXPECT_FALSE(p.validate().empty());
}

TEST(ProblemTest, CleanProblemValidates) {
  EXPECT_TRUE(makePaperExampleProblem().validate().empty());
}

TEST(PaperExampleTest, HasNineTasksOnThreeResources) {
  const Problem p = makePaperExampleProblem();
  EXPECT_EQ(p.numTasks(), 9u);
  EXPECT_EQ(p.numResources(), 3u);
  EXPECT_EQ(p.maxPower(), Watts::fromWatts(16.0));
  EXPECT_EQ(p.minPower(), Watts::fromWatts(14.0));
}

}  // namespace
}  // namespace paws
