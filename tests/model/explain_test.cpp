#include "model/explain.hpp"

#include <gtest/gtest.h>

#include "graph/longest_path.hpp"
#include "sched/timing_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem contradictory() {
  Problem p("boom");
  const ResourceId r1 = p.addResource("r1");
  const ResourceId r2 = p.addResource("r2");
  const TaskId a = p.addTask("alpha", 5_s, 1_W, r1);
  const TaskId b = p.addTask("beta", 5_s, 1_W, r2);
  p.minSeparation(a, b, 10_s);
  p.maxSeparation(a, b, 4_s);
  return p;
}

TEST(ExplainTest, DescribesEveryEdgeKind) {
  Problem p = contradictory();
  ConstraintGraph g = p.buildGraph();
  const TaskId a = *p.findTask("alpha");
  const TaskId b = *p.findTask("beta");

  EXPECT_EQ(describeEdge(p, ConstraintEdge{a, b, Duration(10),
                                           EdgeKind::kUserMin}),
            "'beta' must start at least 10 after 'alpha'");
  EXPECT_EQ(describeEdge(p, ConstraintEdge{b, a, Duration(-4),
                                           EdgeKind::kUserMax}),
            "'beta' must start at most 4 after 'alpha'");
  EXPECT_EQ(describeEdge(p, ConstraintEdge{kAnchorTask, a, Duration(3),
                                           EdgeKind::kRelease}),
            "'alpha' cannot start before 3");
  EXPECT_EQ(describeEdge(p, ConstraintEdge{a, b, Duration(5),
                                           EdgeKind::kSerialization}),
            "'alpha' runs before 'beta' on resource 'r1' (busy for 5)");
  EXPECT_EQ(describeEdge(p, ConstraintEdge{kAnchorTask, b, Duration(12),
                                           EdgeKind::kDelay}),
            "'beta' was delayed to start at/after 12");
  EXPECT_EQ(describeEdge(p, ConstraintEdge{b, kAnchorTask, Duration(-7),
                                           EdgeKind::kLock}),
            "'beta' was locked at 7");
  (void)g;
}

TEST(ExplainTest, CycleExplanationNamesBothConstraints) {
  const Problem p = contradictory();
  const ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(kAnchorTask);
  ASSERT_FALSE(r.feasible);
  const std::string text = explainCycle(p, g, r);
  EXPECT_NE(text.find("at least 10 after 'alpha'"), std::string::npos);
  EXPECT_NE(text.find("at most 4 after 'alpha'"), std::string::npos);
  EXPECT_NE(text.find("over-constrained by 6 ticks"), std::string::npos);
}

TEST(ExplainTest, FeasibleResultExplainsNothing) {
  Problem p("fine");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("a", 5_s, 1_W, r1);
  const ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(kAnchorTask);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(explainCycle(p, g, r).empty());
}

TEST(ExplainTest, TimingSchedulerSurfacesTheExplanation) {
  const Problem p = contradictory();
  ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(p);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.message.find("contradict"), std::string::npos)
      << out.message;
  EXPECT_NE(out.message.find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace paws
