#include "cache/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace paws::cache {
namespace {

CacheEntry entryWith(const std::string& text, std::int64_t cost) {
  CacheEntry e;
  e.scheduleText = text;
  e.costMwt = cost;
  e.finish = Time(cost);
  e.structuralHash = 7;
  e.stats.longestPathRuns = 3;
  e.nodesExplored = 11;
  return e;
}

TEST(ScheduleCacheTest, MissThenHit) {
  ScheduleCache cache;
  const CacheKey key{1, 2};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, entryWith("s", 5));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scheduleText, "s");
  EXPECT_EQ(hit->costMwt, 5);
  EXPECT_EQ(hit->stats.longestPathRuns, 3u);
  EXPECT_EQ(hit->nodesExplored, 11u);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(ScheduleCacheTest, PeekIsNotTraffic) {
  ScheduleCache cache;
  const CacheKey key{1, 2};
  EXPECT_FALSE(cache.peek(key).has_value());
  cache.insert(key, entryWith("s", 5));
  EXPECT_TRUE(cache.peek(key).has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(ScheduleCacheTest, LruEvictsTheColdestEntry) {
  ScheduleCache cache(/*capacity=*/2, /*shards=*/1);
  cache.insert(CacheKey{1, 0}, entryWith("a", 1));
  cache.insert(CacheKey{2, 0}, entryWith("b", 2));
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  EXPECT_TRUE(cache.lookup(CacheKey{1, 0}).has_value());
  cache.insert(CacheKey{3, 0}, entryWith("c", 3));
  EXPECT_TRUE(cache.lookup(CacheKey{1, 0}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{2, 0}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{3, 0}).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScheduleCacheTest, InsertOverwritesInPlace) {
  ScheduleCache cache(2, 1);
  cache.insert(CacheKey{1, 0}, entryWith("old", 1));
  cache.insert(CacheKey{1, 0}, entryWith("new", 9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(CacheKey{1, 0})->scheduleText, "new");
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ScheduleCacheTest, StructuralIndexFindsNearMisses) {
  ScheduleCache cache;
  CacheEntry e = entryWith("s", 5);
  e.structuralHash = 42;
  cache.insert(CacheKey{100, 7}, e);
  // Same skeleton + options, any canonical hash.
  const auto hit = cache.lookupStructural(42, 7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scheduleText, "s");
  // Different options fingerprint: no candidate.
  EXPECT_FALSE(cache.lookupStructural(42, 8).has_value());
  // Structural probes are not hit/miss traffic.
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ScheduleCacheTest, ConcurrentMixedTrafficIsSafe) {
  ScheduleCache cache(256, 8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const CacheKey key{(static_cast<std::uint64_t>(t) << 32) | (i % 64),
                           0};
        cache.insert(key, entryWith("s", static_cast<std::int64_t>(i)));
        (void)cache.lookup(key);
        (void)cache.lookupStructural(7, 0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.size(), 256u);
  EXPECT_EQ(cache.stats().insertions, 8u * 500u);
}

TEST(ScheduleCacheTest, SaveLoadRoundTripsEntriesAndRecency) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paws_cache_test.json")
          .string();
  {
    ScheduleCache cache(8, 1);
    CacheEntry e = entryWith("schedule \"x\" of \"p\" {\n}\n", 123);
    e.provenOptimal = true;
    e.stats.backtracks = 2;
    e.stats.improvements = 4;
    cache.insert(CacheKey{0xabcdef, 0x123}, e);
    cache.insert(CacheKey{0x111, 0x123}, entryWith("t", 9));
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  ScheduleCache cache(8, 1);
  std::string error;
  ASSERT_TRUE(cache.load(path, &error)) << error;
  EXPECT_EQ(cache.size(), 2u);
  // Loading is bookkeeping: run-traffic stats start at zero.
  EXPECT_EQ(cache.stats().insertions, 0u);
  const auto hit = cache.lookup(CacheKey{0xabcdef, 0x123});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scheduleText, "schedule \"x\" of \"p\" {\n}\n");
  EXPECT_EQ(hit->costMwt, 123);
  EXPECT_TRUE(hit->provenOptimal);
  EXPECT_EQ(hit->stats.backtracks, 2u);
  EXPECT_EQ(hit->stats.improvements, 4u);
  EXPECT_EQ(hit->nodesExplored, 11u);
  // Structural index is rebuilt from the loaded entries.
  EXPECT_TRUE(cache.lookupStructural(7, 0x123).has_value());
  std::remove(path.c_str());
}

TEST(ScheduleCacheTest, LoadMissingFileIsACleanColdStart) {
  ScheduleCache cache;
  std::string error = "sentinel";
  EXPECT_FALSE(cache.load("/nonexistent/paws_cache.json", &error));
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCacheTest, LoadRejectsGarbageWithoutCrashing) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paws_cache_garbage.json")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  ScheduleCache cache;
  std::string error;
  EXPECT_FALSE(cache.load(path, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paws::cache
