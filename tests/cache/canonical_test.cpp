#include "cache/canonical.hpp"

#include <gtest/gtest.h>

#include "base/units.hpp"
#include "io/parser.hpp"
#include "io/writer.hpp"
#include "model/paper_example.hpp"
#include "model/problem.hpp"

namespace paws::cache {
namespace {

using namespace paws::literals;

/// Two spellings of the same three-task problem: declarations permuted
/// (resources, tasks and constraints each in a different order).
Problem spellingA() {
  Problem p("perm");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId radio = p.addResource("radio");
  const TaskId a = p.addTask("a", 3_s, 2_W, cpu);
  const TaskId b = p.addTask("b", 4_s, 3_W, radio);
  const TaskId c = p.addTask("c", 2_s, 1_W, cpu);
  p.minSeparation(a, b, 2_s);
  p.maxSeparation(a, c, 9_s);
  p.setMaxPower(6_W);
  p.setMinPower(2_W);
  return p;
}

Problem spellingB() {
  Problem p("perm");
  const ResourceId radio = p.addResource("radio");
  const ResourceId cpu = p.addResource("cpu");
  const TaskId c = p.addTask("c", 2_s, 1_W, cpu);
  const TaskId b = p.addTask("b", 4_s, 3_W, radio);
  const TaskId a = p.addTask("a", 3_s, 2_W, cpu);
  p.setMinPower(2_W);
  p.setMaxPower(6_W);
  p.maxSeparation(a, c, 9_s);
  p.minSeparation(a, b, 2_s);
  return p;
}

TEST(CanonicalTest, DeclarationOrderInvariant) {
  const CanonicalForm fa = canonicalize(spellingA());
  const CanonicalForm fb = canonicalize(spellingB());
  EXPECT_EQ(fa.text, fb.text);
  EXPECT_EQ(fa.hash, fb.hash);
  EXPECT_EQ(fa.structuralHash, fb.structuralHash);
}

TEST(CanonicalTest, CommentAndWhitespaceInvariant) {
  const char* terse =
      "problem \"w\" { pmax 5W pmin 1W resource r "
      "task a { resource r delay 2 power 1W } "
      "task b { resource r delay 3 power 2W } min a -> b 1 }";
  const char* ornate =
      "# a comment\n"
      "problem \"w\" {\n"
      "  pmin 1W   # attribute order flipped\n"
      "  pmax 5W\n"
      "  resource r\n\n"
      "  task b { power 2W delay 3 resource r }  # fields reordered\n"
      "  task a { delay 2 resource r power 1W }\n"
      "  min a -> b 1\n"
      "}\n";
  io::ParseResult pa = io::parseProblem(terse);
  io::ParseResult pb = io::parseProblem(ornate);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(canonicalize(*pa.problem).hash, canonicalize(*pb.problem).hash);
}

TEST(CanonicalTest, SemanticEditsChangeTheHash) {
  const CanonicalForm base = canonicalize(spellingA());
  {
    Problem p = spellingA();
    p.setMaxPower(7_W);  // limits change: full hash moves ...
    const CanonicalForm f = canonicalize(p);
    EXPECT_NE(f.hash, base.hash);
    // ... but the structural skeleton is the same (the near-miss case).
    EXPECT_EQ(f.structuralHash, base.structuralHash);
  }
  {
    Problem p = spellingA();
    p.setTaskPower(*p.findTask("a"), 5_W);  // task attribute change
    const CanonicalForm f = canonicalize(p);
    EXPECT_NE(f.hash, base.hash);
    EXPECT_EQ(f.structuralHash, base.structuralHash);
  }
  {
    Problem p = spellingA();
    p.minSeparation(*p.findTask("b"), *p.findTask("c"), 1_s);
    const CanonicalForm f = canonicalize(p);
    EXPECT_NE(f.hash, base.hash);  // constraint set is structural
    EXPECT_NE(f.structuralHash, base.structuralHash);
  }
  {
    Problem p("other");  // name differs; schedules cannot rebind across it
    EXPECT_NE(canonicalize(p).hash, canonicalize(Problem("perm")).hash);
  }
}

TEST(CanonicalTest, TaskRenameChangesTheHash) {
  Problem a("n");
  const ResourceId r = a.addResource("r");
  a.addTask("x", 2_s, 1_W, r);
  Problem b("n");
  const ResourceId r2 = b.addResource("r");
  b.addTask("y", 2_s, 1_W, r2);
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CanonicalTest, PaperExampleRoundTripsThroughText) {
  // problemToText -> parse must land on the same canonical form: the
  // cache key survives a save/load cycle of the problem itself.
  const Problem p = makePaperExampleProblem();
  io::ParseResult reparsed = io::parseProblem(io::problemToText(p));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(canonicalize(p).hash, canonicalize(*reparsed.problem).hash);
}

TEST(CanonicalTest, KeyOnlyMatchesFullKeyHalf) {
  // The hit path computes only the key half: text and hash must be
  // byte/bit-identical to the full form's, with the structural hash
  // left at its 0 sentinel.
  const Problem p = makePaperExampleProblem();
  const CanonicalForm full = canonicalize(p, CanonicalParts::kFull);
  const CanonicalForm keyOnly = canonicalize(p, CanonicalParts::kKeyOnly);
  EXPECT_EQ(keyOnly.text, full.text);
  EXPECT_EQ(keyOnly.hash, full.hash);
  EXPECT_NE(full.structuralHash, 0u);
  EXPECT_EQ(keyOnly.structuralHash, 0u);
}

TEST(CanonicalTest, OptionsFingerprintSeparatesSchedulers) {
  EXPECT_NE(optionsFingerprint("pipeline", 4), optionsFingerprint("optimal", 4));
  EXPECT_NE(optionsFingerprint("pipeline", 4),
            optionsFingerprint("pipeline", 8));
  // The exhaustive search ignores trials: one entry serves any trials.
  EXPECT_EQ(optionsFingerprint("optimal", 4), optionsFingerprint("optimal", 8));
}

}  // namespace
}  // namespace paws::cache
