// Persistence hardening for ScheduleCache: truncated, corrupt, and
// newer-schema cache files must produce a *structured* skip — a false
// return with a descriptive error and a cache.load_* count — never an
// abort, a throw, or a poisoned cache. The byte-chopping loop is the
// regression net: every prefix of a valid file must be survivable.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cache/schedule_cache.hpp"

namespace paws::cache {
namespace {

class PersistenceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("paws_persist_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / ScheduleCache::kFileName()).string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void writeFile(const std::string& body) {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out);
    out << body;
  }

  /// A valid two-entry schema-1 file produced by save() itself.
  std::string goldenFile() {
    ScheduleCache cache(8, 1);
    CacheEntry a;
    a.scheduleText = "schedule \"x\" of \"p\" {\n}\n";
    a.costMwt = 42;
    a.finish = Time(7);
    a.structuralHash = 0xfeed;
    cache.insert(CacheKey{0xabc, 0x1}, a);
    CacheEntry b;
    b.scheduleText = "t";
    cache.insert(CacheKey{0xdef, 0x1}, b);
    std::string error;
    EXPECT_TRUE(cache.save(path_, &error)) << error;
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(PersistenceFixture, EveryByteChoppedPrefixIsAStructuredSkip) {
  const std::string golden = goldenFile();
  ASSERT_GT(golden.size(), 100u);
  // Chop at every prefix length: each truncation either parses to a
  // (possibly partial) load or is rejected with an error — no aborts, no
  // stale entries surviving into the next attempt's count.
  for (std::size_t cut = 0; cut < golden.size(); ++cut) {
    writeFile(golden.substr(0, cut));
    ScheduleCache cache;
    std::string error = "sentinel";
    const bool ok = cache.load(path_, &error);
    const CacheStats s = cache.stats();
    if (ok) {
      EXPECT_LE(cache.size(), 2u) << "cut=" << cut;
    } else {
      EXPECT_FALSE(error.empty()) << "cut=" << cut;
      EXPECT_EQ(s.loadRejectedFiles, 1u) << "cut=" << cut;
      EXPECT_EQ(cache.size(), 0u) << "cut=" << cut;
    }
  }
}

TEST_F(PersistenceFixture, NewerSchemaIsRejectedNotGuessedAt) {
  writeFile("{\"schema\": 2, \"entries\": [{\"problem_hash\": \"1\","
            " \"options_fp\": \"1\", \"schedule\": \"s\"}]}\n");
  ScheduleCache cache;
  std::string error;
  EXPECT_FALSE(cache.load(path_, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_EQ(cache.stats().loadRejectedFiles, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PersistenceFixture, MalformedEntriesSkipWhileHealthyOnesLoad) {
  writeFile(R"({"schema": 1, "entries": [
    {"problem_hash": "abc", "options_fp": "1", "schedule": "good"},
    {"problem_hash": "xyzzy!", "options_fp": "1", "schedule": "bad hex"},
    {"problem_hash": "abc"},
    "not even an object",
    {"problem_hash": 123, "options_fp": "1", "schedule": "key not string"},
    {"problem_hash": "def", "options_fp": "1", "schedule": "also good"}
  ]})");
  ScheduleCache cache;
  std::string error;
  EXPECT_TRUE(cache.load(path_, &error)) << error;
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().loadSkippedEntries, 4u);
  EXPECT_EQ(cache.stats().loadRejectedFiles, 0u);
  EXPECT_TRUE(cache.lookup(CacheKey{0xabc, 0x1}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{0xdef, 0x1}).has_value());
}

TEST_F(PersistenceFixture, OverlongHexKeyIsSkippedNotTruncated) {
  writeFile(R"({"schema": 1, "entries": [
    {"problem_hash": "00000000000000000a", "options_fp": "1",
     "schedule": "17 hex digits"}
  ]})");
  ScheduleCache cache;
  EXPECT_TRUE(cache.load(path_));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().loadSkippedEntries, 1u);
}

TEST_F(PersistenceFixture, DamagedStructuralHashDegradesToNoNearMissIndex) {
  writeFile(R"({"schema": 1, "entries": [
    {"problem_hash": "abc", "options_fp": "1", "schedule": "s",
     "structural_hash": "zz-not-hex"}
  ]})");
  ScheduleCache cache;
  EXPECT_TRUE(cache.load(path_));
  // Entry still serves by exact key; only the near-miss index is lost.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().loadSkippedEntries, 0u);
  EXPECT_TRUE(cache.lookup(CacheKey{0xabc, 0x1}).has_value());
}

TEST_F(PersistenceFixture, LoadCountersReachTheMetricsRegistry) {
  writeFile("][");
  ScheduleCache cache;
  EXPECT_FALSE(cache.load(path_));
  obs::MetricsRegistry registry;
  cache.exportMetrics(registry);
  EXPECT_EQ(registry.counter("cache.load_rejected_files"), 1u);
  EXPECT_EQ(registry.counter("cache.load_skipped_entries"), 0u);
}

TEST_F(PersistenceFixture, BinaryGarbageNeverAborts) {
  std::string noise;
  noise.reserve(4096);
  // Deterministic pseudo-noise covering all byte values incl. NULs.
  std::uint32_t x = 0x9e3779b9u;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    noise.push_back(static_cast<char>(x & 0xff));
  }
  writeFile(noise);
  ScheduleCache cache;
  std::string error;
  EXPECT_FALSE(cache.load(path_, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(cache.stats().loadRejectedFiles, 1u);
}

}  // namespace
}  // namespace paws::cache
