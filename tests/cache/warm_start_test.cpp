// Warm-start and cached-solve properties.
//
// The load-bearing claim: seeding the branch-and-bound search with a valid
// schedule's (cost, finish) is *invisible* in the result. The shared bound
// holds the cost (strictly-greater pruning never cuts a cost-tying leaf)
// and each worker's local incumbent starts as the phantom (cost, finish+1),
// which the lex-first optimum always strictly improves — so no node on the
// path to the optimum is ever cut, while the node count can only shrink.
// The tests pin byte-identity (starts, cost, finish) and demand a strict
// node reduction on the paper example and on at least 8 random instances.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "base/units.hpp"
#include "cache/cached_solve.hpp"
#include "cache/canonical.hpp"
#include "cache/schedule_cache.hpp"
#include "gen/random_problem.hpp"
#include "io/schedule_io.hpp"
#include "model/paper_example.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/polish.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws::cache {
namespace {

using namespace paws::literals;

struct SearchRun {
  std::vector<Time> starts;
  std::int64_t costMwt = 0;
  std::int64_t finishTicks = 0;
  bool provenOptimal = false;
  std::uint64_t nodes = 0;
};

struct Seed {
  Energy cost;
  Time finish;
};

SearchRun runExhaustive(const Problem& problem, std::optional<Seed> seed,
                        std::optional<Time> horizon = std::nullopt) {
  ExhaustiveOptions options;
  options.jobs = 1;  // deterministic node counts
  options.horizon = horizon;
  if (seed.has_value()) {
    options.initialIncumbent = seed->cost;
    options.initialIncumbentFinish = seed->finish;
  }
  ExhaustiveScheduler scheduler(problem, options);
  const ScheduleResult r = scheduler.schedule();
  SearchRun run;
  run.provenOptimal = scheduler.outcome().provenOptimal;
  run.nodes = scheduler.outcome().nodesExplored;
  if (r.ok()) {
    run.starts = r.schedule->starts();
    run.costMwt = r.schedule->energyCost(problem.minPower()).milliwattTicks();
    run.finishTicks = r.schedule->finish().ticks();
  }
  return run;
}

/// The exhaustive scheduler's default horizon, for instances that do not
/// pass one explicitly (mirrors ExhaustiveScheduler::schedule()).
Time defaultHorizon(const Problem& problem) {
  Duration total = Duration::zero();
  for (TaskId v : problem.taskIds()) total += problem.task(v).delay;
  Duration maxSep = Duration::zero();
  for (const TimingConstraint& c : problem.constraints()) {
    maxSep = std::max(maxSep, c.separation);
  }
  return Time::zero() + total + maxSep;
}

/// The warm-start seed solveThroughCache builds: the lex-best valid
/// in-horizon schedule of {pipeline, serial}, polished.
std::optional<Seed> warmSeed(const Problem& problem, Time horizon) {
  ScheduleValidator validator(problem);
  std::optional<Schedule> best;
  const auto offer = [&](ScheduleResult r) {
    if (!r.ok() || r.schedule->finish() > horizon) return;
    if (!validator.validate(*r.schedule).valid()) return;
    const Energy cost = r.schedule->energyCost(problem.minPower());
    if (!best.has_value() || cost < best->energyCost(problem.minPower()) ||
        (cost == best->energyCost(problem.minPower()) &&
         r.schedule->finish() < best->finish())) {
      best = *r.schedule;
    }
  };
  offer(PowerAwareScheduler(problem).schedule());
  offer(SerialScheduler(problem).schedule());
  if (!best.has_value()) return std::nullopt;
  PolishOptions options;
  options.horizon = horizon;
  Schedule polished = polishSchedule(problem, *best, options);
  EXPECT_TRUE(validator.validate(polished).valid());
  EXPECT_LE(polished.finish(), horizon);
  return Seed{polished.energyCost(problem.minPower()), polished.finish()};
}

GeneratorConfig smallConfig(std::uint32_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.numTasks = 5;
  cfg.numResources = 2;
  cfg.maxDelay = 3;
  cfg.witnessJitter = 2;
  cfg.pmaxHeadroomMw = 400;
  return cfg;
}

TEST(WarmStartTest, PaperExampleByteIdenticalAndStrictlyFewerNodes) {
  // Horizon 30 keeps the 9-task search tractable while containing the
  // optimum (same setting as the pruning-equivalence suite).
  const Problem problem = makePaperExampleProblem();
  const std::optional<Seed> seed = warmSeed(problem, Time(30));
  ASSERT_TRUE(seed.has_value());
  ASSERT_LE(seed->finish, Time(30));  // the seed must fit the horizon
  const SearchRun cold = runExhaustive(problem, std::nullopt, Time(30));
  const SearchRun warm = runExhaustive(problem, seed, Time(30));
  ASSERT_TRUE(cold.provenOptimal);
  ASSERT_TRUE(warm.provenOptimal);
  EXPECT_EQ(warm.starts, cold.starts);
  EXPECT_EQ(warm.costMwt, cold.costMwt);
  EXPECT_EQ(warm.finishTicks, cold.finishTicks);
  EXPECT_LT(warm.nodes, cold.nodes);
}

TEST(WarmStartTest, RandomInstancesByteIdenticalAndStrictlyFewerNodes) {
  int strictlyFewer = 0;
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    const GeneratedProblem gp = generateRandomProblem(smallConfig(seed));
    const std::optional<Seed> incumbent =
        warmSeed(gp.problem, defaultHorizon(gp.problem));
    ASSERT_TRUE(incumbent.has_value()) << "seed " << seed;
    const SearchRun cold = runExhaustive(gp.problem, std::nullopt);
    const SearchRun warm = runExhaustive(gp.problem, incumbent);
    EXPECT_EQ(warm.starts, cold.starts) << "seed " << seed;
    EXPECT_EQ(warm.costMwt, cold.costMwt) << "seed " << seed;
    EXPECT_EQ(warm.finishTicks, cold.finishTicks) << "seed " << seed;
    EXPECT_LE(warm.nodes, cold.nodes) << "seed " << seed;
    if (warm.nodes < cold.nodes) ++strictlyFewer;
  }
  EXPECT_GE(strictlyFewer, 8)
      << "the warm start must actually prune on most instances";
}

TEST(CachedSolveTest, SecondSolveIsAnExactHitWithIdenticalBytes) {
  ScheduleCache cache;
  const GeneratedProblem gp = generateRandomProblem(smallConfig(3));
  SolveSpec spec;  // pipeline
  SolveInfo first, second;
  const ScheduleResult a =
      solveThroughCache(&cache, gp.problem, spec, &first);
  const ScheduleResult b =
      solveThroughCache(&cache, gp.problem, spec, &second);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(first.cacheHit);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(io::scheduleToText(*a.schedule, "x"),
            io::scheduleToText(*b.schedule, "x"));
  // A hit reprints the producing solve's effort numbers.
  EXPECT_EQ(b.stats.longestPathRuns, a.stats.longestPathRuns);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CachedSolveTest, CacheOnAndOffAreByteIdenticalAcrossJobs) {
  const GeneratedProblem gp = generateRandomProblem(smallConfig(5));
  for (const char* scheduler : {"pipeline", "optimal"}) {
    for (const std::size_t jobs :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SolveSpec spec;
      spec.scheduler = scheduler;
      spec.jobs = jobs;
      const ScheduleResult off =
          solveThroughCache(nullptr, gp.problem, spec);
      ScheduleCache cache;  // fresh: first solve may warm-start, never hit
      const ScheduleResult on =
          solveThroughCache(&cache, gp.problem, spec);
      ASSERT_TRUE(off.ok());
      ASSERT_TRUE(on.ok());
      EXPECT_EQ(io::scheduleToText(*on.schedule, "x"),
                io::scheduleToText(*off.schedule, "x"))
          << scheduler << " jobs=" << jobs;
    }
  }
}

TEST(CachedSolveTest, OptimalSolveWarmStartsThenHits) {
  ScheduleCache cache;
  const GeneratedProblem gp = generateRandomProblem(smallConfig(7));
  SolveSpec spec;
  spec.scheduler = "optimal";
  SolveInfo first, second;
  const ScheduleResult a =
      solveThroughCache(&cache, gp.problem, spec, &first);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(first.warmStarted);
  EXPECT_TRUE(first.provenOptimal);
  EXPECT_EQ(cache.stats().warmStarts, 1u);
  const ScheduleResult b =
      solveThroughCache(&cache, gp.problem, spec, &second);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(second.cacheHit);
  EXPECT_TRUE(second.provenOptimal);
  EXPECT_EQ(io::scheduleToText(*b.schedule, "x"),
            io::scheduleToText(*a.schedule, "x"));
}

TEST(CachedSolveTest, NearMissRevalidatesOnALimitsDelta) {
  ScheduleCache cache;
  const GeneratedProblem gp = generateRandomProblem(smallConfig(9));
  SolveSpec spec;  // pipeline
  ASSERT_TRUE(solveThroughCache(&cache, gp.problem, spec).ok());

  // Same skeleton, different Pmin: full canonical hash moves, structural
  // hash does not — the near-miss path must serve via revalidation.
  Problem delta = gp.problem;
  delta.setMinPower(delta.minPower() + Watts::fromWatts(0.5));
  ASSERT_NE(canonicalize(delta).hash, canonicalize(gp.problem).hash);
  ASSERT_EQ(canonicalize(delta).structuralHash,
            canonicalize(gp.problem).structuralHash);
  SolveInfo info;
  const ScheduleResult r = solveThroughCache(&cache, delta, spec, &info);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(info.revalidated);
  EXPECT_TRUE(ScheduleValidator(delta).validate(*r.schedule).valid());
  EXPECT_EQ(cache.stats().revalidations, 1u);

  // The revalidated result is inserted under its own key: the same delta
  // problem now hits exactly.
  SolveInfo again;
  ASSERT_TRUE(solveThroughCache(&cache, delta, spec, &again).ok());
  EXPECT_TRUE(again.cacheHit);
}

TEST(CachedSolveTest, NearMissRepairsWhenTheCachedPlanTurnedInvalid) {
  ScheduleCache cache;
  // Two tasks on one resource, serial by construction.
  Problem base("nm");
  const ResourceId r1 = base.addResource("r1");
  const TaskId a = base.addTask("a", 2_s, 2_W, r1);
  const TaskId b = base.addTask("b", 2_s, 2_W, r1);
  base.minSeparation(a, b, 2_s);
  base.setMaxPower(5_W);
  SolveSpec spec;
  ASSERT_TRUE(solveThroughCache(&cache, base, spec).ok());

  // Rebuild with a longer "a": delay is NOT structural, so this is a near
  // miss, but the cached starts now overlap on r1 — the resolver must fall
  // through to repairSchedule and still serve a valid plan.
  Problem longer("nm");
  const ResourceId r2 = longer.addResource("r1");
  const TaskId a2 = longer.addTask("a", 4_s, 2_W, r2);
  const TaskId b2 = longer.addTask("b", 2_s, 2_W, r2);
  longer.minSeparation(a2, b2, 2_s);
  longer.setMaxPower(5_W);
  ASSERT_EQ(canonicalize(longer).structuralHash,
            canonicalize(base).structuralHash);
  SolveInfo info;
  const ScheduleResult r = solveThroughCache(&cache, longer, spec, &info);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(info.revalidated);
  EXPECT_TRUE(ScheduleValidator(longer).validate(*r.schedule).valid());
}

TEST(CachedSolveTest, HashCollisionServesAMissNotAWrongAnswer) {
  // Force the pathological case by inserting an entry whose schedule text
  // cannot rebind to the querying problem under the right key: the resolver
  // must fall through to a cold solve, never serve garbage.
  ScheduleCache cache;
  const GeneratedProblem gp = generateRandomProblem(smallConfig(11));
  SolveSpec spec;
  const CanonicalForm form = canonicalize(gp.problem);
  CacheEntry poisoned;
  poisoned.scheduleText = "schedule \"x\" of \"some_other_problem\" {\n}\n";
  poisoned.structuralHash = form.structuralHash;
  cache.insert(CacheKey{form.hash, optionsFingerprint("pipeline", 4)},
               poisoned);
  SolveInfo info;
  const ScheduleResult r = solveThroughCache(&cache, gp.problem, spec, &info);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(info.cacheHit);
  EXPECT_TRUE(ScheduleValidator(gp.problem).validate(*r.schedule).valid());
}

}  // namespace
}  // namespace paws::cache
