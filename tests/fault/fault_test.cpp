#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "fault/model.hpp"
#include "fault/rng.hpp"

namespace paws::fault {
namespace {

using namespace paws::literals;

// ---------------------------------------------------------------- SplitMix64

TEST(SplitMix64Test, IsDeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // astronomically unlikely to collide 100x
  }
}

TEST(SplitMix64Test, RangeStaysInBounds) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  // Degenerate range is the constant.
  EXPECT_EQ(rng.range(9, 9), 9);
}

TEST(SplitMix64Test, ChanceExtremes) {
  SplitMix64 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0));
    EXPECT_TRUE(rng.chance(1000));
  }
}

TEST(MixSeedTest, StreamsAreIndependent) {
  // Different (mission, salt) pairs must give different streams; the same
  // pair must give the same stream.
  EXPECT_EQ(mixSeed(1, 5, 2), mixSeed(1, 5, 2));
  EXPECT_NE(mixSeed(1, 5, 2), mixSeed(1, 5, 3));
  EXPECT_NE(mixSeed(1, 5, 2), mixSeed(1, 6, 2));
  EXPECT_NE(mixSeed(1, 5, 2), mixSeed(2, 5, 2));
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, NamedConstructorsFillTheirKind) {
  const Fault o = FaultPlan::overrun("drive1", 3, 150, Duration(2));
  EXPECT_EQ(o.kind, FaultKind::kTaskOverrun);
  EXPECT_EQ(o.task, "drive1");
  EXPECT_EQ(o.iteration, 3u);
  EXPECT_EQ(o.scalePct, 150u);
  EXPECT_EQ(o.extra, Duration(2));

  const Fault f = FaultPlan::failure("hazard1", 1, 2);
  EXPECT_EQ(f.kind, FaultKind::kTaskFailure);
  EXPECT_EQ(f.failures, 2u);

  const Fault s = FaultPlan::solarTransient(Interval(Time(10), Time(20)), 50);
  EXPECT_EQ(s.kind, FaultKind::kSolarTransient);
  EXPECT_EQ(s.solarPct, 50u);

  const Fault d = FaultPlan::batteryDerate(Time(100), 80, 90);
  EXPECT_EQ(d.kind, FaultKind::kBatteryDerate);
  EXPECT_EQ(d.capacityPct, 80u);
  EXPECT_EQ(d.outputPct, 90u);
}

TEST(FaultPlanTest, ConstructorsRejectNonsense) {
  EXPECT_THROW((void)FaultPlan::overrun("", 0, 120), CheckError);
  EXPECT_THROW((void)FaultPlan::overrun("t", 0, 99), CheckError);
  EXPECT_THROW((void)FaultPlan::failure("t", 0, 0), CheckError);
  EXPECT_THROW(
      (void)FaultPlan::solarTransient(Interval(Time(5), Time(5)), 50),
      CheckError);
  EXPECT_THROW((void)FaultPlan::batteryDerate(Time(0), 120, 100), CheckError);
}

TEST(FaultPlanTest, DescribeMentionsTheTarget) {
  const std::string s =
      describe(FaultPlan::overrun("drive1", 3, 150, Duration(2)));
  EXPECT_NE(s.find("drive1"), std::string::npos);
  EXPECT_NE(s.find("150"), std::string::npos);
  EXPECT_NE(describe(FaultPlan::failure("hazard1", 1, 2)).find("hazard1"),
            std::string::npos);
}

// --------------------------------------------------------- applySolarFaults

TEST(SolarFaultTest, EmptyPlanIsIdentity) {
  const SolarSource base(
      {{Time(0), Watts::fromWatts(14.9)}, {Time(600), 12_W}});
  const SolarSource out = applySolarFaults(base, FaultPlan{});
  for (const std::int64_t t : {0, 100, 599, 600, 1000}) {
    EXPECT_EQ(out.levelAt(Time(t)), base.levelAt(Time(t))) << t;
  }
}

TEST(SolarFaultTest, TransientScalesOnlyItsWindow) {
  const SolarSource base(10_W);
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(100), Time(200)), 50));
  const SolarSource out = applySolarFaults(base, plan);
  EXPECT_EQ(out.levelAt(Time(99)), 10_W);
  EXPECT_EQ(out.levelAt(Time(100)), 5_W);
  EXPECT_EQ(out.levelAt(Time(199)), 5_W);
  EXPECT_EQ(out.levelAt(Time(200)), 10_W);
}

TEST(SolarFaultTest, OverlappingTransientsComposeMultiplicatively) {
  const SolarSource base(10_W);
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(0), Time(100)), 50));
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(50), Time(150)), 50));
  const SolarSource out = applySolarFaults(base, plan);
  EXPECT_EQ(out.levelAt(Time(10)), 5_W);
  EXPECT_EQ(out.levelAt(Time(75)), Watts::fromWatts(2.5));
  EXPECT_EQ(out.levelAt(Time(120)), 5_W);
  EXPECT_EQ(out.levelAt(Time(150)), 10_W);
}

TEST(SolarFaultTest, TransientStraddlingAPhaseBoundaryScalesBothSides) {
  const SolarSource base({{Time(0), 10_W}, {Time(100), 4_W}});
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(50), Time(150)), 50));
  const SolarSource out = applySolarFaults(base, plan);
  EXPECT_EQ(out.levelAt(Time(60)), 5_W);
  EXPECT_EQ(out.levelAt(Time(100)), 2_W);
  EXPECT_EQ(out.levelAt(Time(150)), 4_W);
}

// ------------------------------------------------------------------- derate

TEST(DerateTest, ScalesOutputAndCapacityPreservingDrawn) {
  Battery b(10_W, 100_J);
  b.draw(30_J);
  const Battery d = derate(b, FaultPlan::batteryDerate(Time(0), 80, 70));
  EXPECT_EQ(d.maxOutput(), 7_W);
  EXPECT_EQ(d.capacity(), 80_J);
  EXPECT_EQ(d.drawn(), 30_J);
  EXPECT_EQ(d.remaining(), 50_J);
}

TEST(DerateTest, DrawnBeyondTheNewCapacityClampsToDepleted) {
  Battery b(10_W, 100_J);
  b.draw(90_J);
  const Battery d = derate(b, FaultPlan::batteryDerate(Time(0), 55, 100));
  EXPECT_TRUE(d.depleted());
  EXPECT_EQ(d.remaining(), Energy::zero());
}

// --------------------------------------------------------------- FaultModel

std::vector<std::string> roverNames() {
  return {"heat_steer1", "heat_wheel1", "hazard1", "steer1", "drive1"};
}

TEST(FaultModelTest, SameSeedSamePlan) {
  const FaultModel model(FaultModelConfig{}, roverNames());
  const FaultPlan a = model.instantiate(1234);
  const FaultPlan b = model.instantiate(1234);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(describe(a.faults[i]), describe(b.faults[i])) << i;
  }
}

TEST(FaultModelTest, DifferentSeedsDifferentPlans) {
  const FaultModel model(FaultModelConfig{}, roverNames());
  const FaultPlan a = model.instantiate(1);
  const FaultPlan b = model.instantiate(2);
  std::string da, db;
  for (const Fault& f : a.faults) da += describe(f) + "\n";
  for (const Fault& f : b.faults) db += describe(f) + "\n";
  EXPECT_NE(da, db);
}

TEST(FaultModelTest, CategoriesDrawFromIndependentStreams) {
  // Turning the failure category off must not perturb the overrun draws:
  // each category samples its own salted stream.
  FaultModelConfig with;
  with.failurePermille = 500;
  FaultModelConfig without = with;
  without.failurePermille = 0;
  const FaultModel a(with, roverNames());
  const FaultModel b(without, roverNames());
  const auto overrunsOf = [](const FaultPlan& p) {
    std::string s;
    for (const Fault& f : p.faults) {
      if (f.kind == FaultKind::kTaskOverrun) s += describe(f) + "\n";
    }
    return s;
  };
  EXPECT_EQ(overrunsOf(a.instantiate(99)), overrunsOf(b.instantiate(99)));
}

TEST(FaultModelTest, EventsStayInsideTheConfiguredBounds) {
  FaultModelConfig cfg;
  cfg.overrunPermille = 1000;  // every (task, iteration) overruns
  cfg.iterations = 4;
  cfg.clouds = 3;
  cfg.storms = 1;
  cfg.deratePermille = 1000;
  const FaultModel model(cfg, roverNames());
  const FaultPlan plan = model.instantiate(5);
  int overruns = 0, windows = 0, derates = 0;
  for (const Fault& f : plan.faults) {
    switch (f.kind) {
      case FaultKind::kTaskOverrun:
        ++overruns;
        EXPECT_GE(f.scalePct, cfg.overrunMinPct);
        EXPECT_LE(f.scalePct, cfg.overrunMaxPct);
        EXPECT_LT(f.iteration, cfg.iterations);
        break;
      case FaultKind::kSolarTransient:
        ++windows;
        EXPECT_GE(f.window.begin(), Time::zero());
        EXPECT_LE(f.window.end(), cfg.horizon);
        break;
      case FaultKind::kBatteryDerate:
        ++derates;
        EXPECT_GE(f.capacityPct, cfg.derateCapacityMinPct);
        EXPECT_GE(f.outputPct, cfg.derateOutputMinPct);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(overruns, 4 * 5);  // permille 1000: every cell fires
  EXPECT_EQ(windows, 4);       // 3 clouds + 1 storm
  EXPECT_EQ(derates, 1);
}

}  // namespace
}  // namespace paws::fault
