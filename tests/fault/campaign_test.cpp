#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include "fault/rng.hpp"
#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"

namespace paws::fault {
namespace {

using namespace paws::literals;

/// Fixture owning the case schedules the campaign bindings point into.
class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cases_ = rover::buildCaseSchedules();
    ASSERT_TRUE(cases_.ok) << cases_.message;
  }

  FaultCampaign makeCampaign() {
    return FaultCampaign(rover::missionSolarProfile(),
                         rover::missionBattery(), roverCaseBindings(cases_));
  }

  rover::CaseSchedules cases_;
};

TEST_F(CampaignTest, CleanModelMeansEveryMissionSurvives) {
  CampaignConfig config;
  config.missions = 3;
  config.targetSteps = 8;
  FaultModelConfig clean;
  clean.overrunPermille = 0;
  clean.failurePermille = 0;
  clean.clouds = 0;
  clean.storms = 0;
  clean.deratePermille = 0;
  config.model = clean;
  const CampaignResult r = makeCampaign().run(config);
  EXPECT_EQ(r.survived, 3);
  EXPECT_EQ(r.survivalPermille(), 1000);
  EXPECT_EQ(r.faultsInjected, 0);
  // Identical clean missions: every outcome matches the first.
  ASSERT_EQ(r.outcomes.size(), 3u);
  for (const MissionOutcome& o : r.outcomes) {
    EXPECT_EQ(o.steps, r.outcomes[0].steps);
    EXPECT_EQ(o.finishedAt, r.outcomes[0].finishedAt);
    EXPECT_EQ(o.batteryDrawn, r.outcomes[0].batteryDrawn);
  }
}

TEST_F(CampaignTest, ReportIsByteIdenticalForAnyWorkerCount) {
  const FaultCampaign campaign = makeCampaign();
  CampaignConfig config;
  config.missions = 8;
  config.seed = 42;
  config.targetSteps = 16;
  config.contingency = ContingencyOptions::all();

  std::string reports[3];
  const std::size_t jobs[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    config.jobs = jobs[i];
    reports[i] = toJson(config, campaign.run(config));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST_F(CampaignTest, MissionSeedsFollowTheCampaignSeed) {
  CampaignConfig config;
  config.missions = 4;
  config.seed = 7;
  config.targetSteps = 4;
  const CampaignResult r = makeCampaign().run(config);
  ASSERT_EQ(r.outcomes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.outcomes[i].seed, mixSeed(7, i, 0)) << i;
  }
}

TEST_F(CampaignTest, ContingencyNeverHurtsSurvival) {
  // Same seeds, same faults: the closed loop must do at least as well as
  // the open loop, mission by mission.
  CampaignConfig off;
  off.missions = 12;
  off.seed = 3;
  off.targetSteps = 24;
  off.model.failurePermille = 60;  // enough to kill some open-loop runs
  CampaignConfig on = off;
  on.contingency = ContingencyOptions::all();

  const FaultCampaign campaign = makeCampaign();
  const CampaignResult withOff = campaign.run(off);
  const CampaignResult withOn = campaign.run(on);
  EXPECT_GE(withOn.survived, withOff.survived);
  for (std::size_t i = 0; i < withOff.outcomes.size(); ++i) {
    EXPECT_GE(withOn.outcomes[i].steps, withOff.outcomes[i].steps) << i;
  }
}

TEST_F(CampaignTest, AggregatesMatchTheOutcomeRows) {
  CampaignConfig config;
  config.missions = 6;
  config.seed = 11;
  config.targetSteps = 12;
  config.contingency = ContingencyOptions::all();
  const CampaignResult r = makeCampaign().run(config);
  std::int64_t steps = 0, faults = 0, retries = 0, replans = 0, shed = 0;
  int survived = 0;
  for (const MissionOutcome& o : r.outcomes) {
    steps += o.steps;
    faults += o.faultsInjected;
    retries += o.retries;
    replans += o.replans;
    shed += o.shedTasks;
    if (o.survived) ++survived;
  }
  EXPECT_EQ(r.steps, steps);
  EXPECT_EQ(r.faultsInjected, faults);
  EXPECT_EQ(r.retries, retries);
  EXPECT_EQ(r.replans, replans);
  EXPECT_EQ(r.shedTasks, shed);
  EXPECT_EQ(r.survived, survived);
}

TEST_F(CampaignTest, PublishesCampaignMetrics) {
  obs::MetricsRegistry registry;
  CampaignConfig config;
  config.missions = 2;
  config.targetSteps = 4;
  config.obs.metrics = &registry;
  const CampaignResult r = makeCampaign().run(config);
  EXPECT_EQ(registry.counter("campaign.missions"), 2u);
  EXPECT_EQ(registry.counter("campaign.survived"),
            static_cast<std::uint64_t>(r.survived));
  EXPECT_EQ(registry.gauge("campaign.survival_permille"),
            static_cast<double>(r.survivalPermille()));
}

TEST_F(CampaignTest, JsonNamesEveryAggregateField) {
  CampaignConfig config;
  config.missions = 2;
  config.targetSteps = 4;
  const std::string json = toJson(config, makeCampaign().run(config));
  for (const char* key :
       {"\"campaign\"", "\"contingency\"", "\"aggregate\"", "\"missions\"",
        "\"survival_permille\"", "\"faults_injected\"", "\"retries\"",
        "\"replans\"", "\"shed\"", "\"deadline_misses\"", "\"stalled\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The worker count must never leak into the report.
  EXPECT_EQ(json.find("jobs"), std::string::npos);
}

// ------------------------------------------------- modes & battery realism

TEST_F(CampaignTest, ModeCampaignIsByteIdenticalForAnyWorkerCount) {
  for (auto& p : cases_.problems) rover::applyMissionCriticality(*p);
  const FaultCampaign campaign(
      rover::missionSolarProfile(),
      rover::missionBattery(2000_J, rover::missionBatteryTraits()),
      roverCaseBindings(cases_));
  CampaignConfig config;
  config.missions = 8;
  config.seed = 42;
  config.targetSteps = 16;
  config.contingency = ContingencyOptions::all();
  config.modePolicy = ModePolicy::missionDefault();
  config.batteryModel = "rate";

  std::string reports[3];
  const std::size_t jobs[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    config.jobs = jobs[i];
    reports[i] = toJson(config, campaign.run(config));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
  // The report names the policy and battery model it flew.
  EXPECT_NE(reports[0].find("\"mode_policy\": \"mission\""),
            std::string::npos);
  EXPECT_NE(reports[0].find("\"battery_model\": \"rate\""),
            std::string::npos);
}

TEST_F(CampaignTest, JsonNamesTheModeAndBatteryFields) {
  CampaignConfig config;
  config.missions = 2;
  config.targetSteps = 4;
  const std::string json = toJson(config, makeCampaign().run(config));
  for (const char* key :
       {"\"mode_policy\": \"off\"", "\"battery_model\": \"linear\"",
        "\"mode_escalations\"", "\"mode_deescalations\"",
        "\"mode_shed_tasks\"", "\"mode_infeasible\"", "\"depleted_at\"",
        "\"final_mode\"", "\"mode_shed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST_F(CampaignTest, DisabledPolicyKeepsModeCountersZero) {
  CampaignConfig config;
  config.missions = 4;
  config.targetSteps = 8;
  config.contingency = ContingencyOptions::all();
  const CampaignResult r = makeCampaign().run(config);
  EXPECT_EQ(r.modeEscalations, 0);
  EXPECT_EQ(r.modeDeescalations, 0);
  EXPECT_EQ(r.modeShedTasks, 0);
  EXPECT_EQ(r.modeInfeasible, 0);
  for (const MissionOutcome& o : r.outcomes) {
    EXPECT_EQ(o.finalMode, 0);
    EXPECT_FALSE(o.modeInfeasible);
  }
}

TEST_F(CampaignTest, ModeAggregatesMatchTheOutcomeRows) {
  for (auto& p : cases_.problems) rover::applyMissionCriticality(*p);
  const FaultCampaign campaign(
      rover::missionSolarProfile(),
      rover::missionBattery(2000_J, rover::missionBatteryTraits()),
      roverCaseBindings(cases_));
  CampaignConfig config;
  config.missions = 6;
  config.seed = 11;
  config.targetSteps = 16;
  config.contingency = ContingencyOptions::all();
  config.modePolicy = ModePolicy::missionDefault();
  const CampaignResult r = campaign.run(config);
  std::int64_t esc = 0, deesc = 0, shed = 0, infeasible = 0;
  for (const MissionOutcome& o : r.outcomes) {
    esc += o.modeEscalations;
    deesc += o.modeDeescalations;
    shed += o.modeShedTasks;
    if (o.modeInfeasible) ++infeasible;
  }
  EXPECT_EQ(r.modeEscalations, esc);
  EXPECT_EQ(r.modeDeescalations, deesc);
  EXPECT_EQ(r.modeShedTasks, shed);
  EXPECT_EQ(r.modeInfeasible, infeasible);
  // The starved pack under contingency stress must exercise the ladder.
  EXPECT_GT(esc, 0);
}

}  // namespace
}  // namespace paws::fault
