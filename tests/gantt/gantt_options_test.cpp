// Renderer option coverage: scaling, limits toggling, slack annotation,
// SVG geometry options.
#include <gtest/gtest.h>

#include "gantt/ascii_gantt.hpp"
#include "gantt/svg_gantt.hpp"
#include "graph/longest_path.hpp"
#include "model/paper_example.hpp"
#include "sched/slack.hpp"
#include "sched/timing_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem wideProblem() {
  Problem p("wide");
  const ResourceId r1 = p.addResource("alpha");
  const ResourceId r2 = p.addResource("beta");
  p.addTask("longrunner", 40_s, 3_W, r1);
  p.addTask("short", 5_s, 6_W, r2);
  p.setMaxPower(10_W);
  p.setMinPower(4_W);
  return p;
}

TEST(GanttOptionsTest, WattsPerRowControlsPowerViewHeight) {
  const Problem p = wideProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  AsciiGanttOptions fine;
  fine.wattsPerRow = Watts::fromWatts(1.0);
  AsciiGanttOptions coarse;
  coarse.wattsPerRow = Watts::fromWatts(5.0);
  const auto lines = [](const std::string& text) {
    return std::count(text.begin(), text.end(), '\n');
  };
  EXPECT_GT(lines(renderPowerView(s, fine)),
            lines(renderPowerView(s, coarse)));
}

TEST(GanttOptionsTest, AnnotateLimitsToggle) {
  const Problem p = wideProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  AsciiGanttOptions off;
  off.annotateLimits = false;
  const std::string view = renderPowerView(s, off);
  EXPECT_EQ(view.find("Pmax="), std::string::npos);
  // No '=' budget line in the body (the header "1 row = 2W" contains one).
  EXPECT_EQ(view.find('=', view.find('\n')), std::string::npos);
}

TEST(GanttOptionsTest, SlackAnnotationRespectsScaling) {
  const Problem p = makePaperExampleProblem();
  ConstraintGraph g = p.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(p);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  ASSERT_TRUE(out.ok);
  const Schedule s(&p, out.starts);
  AsciiGanttOptions opt;
  opt.slacks = computeSlacks(g, out.starts);
  opt.ticksPerColumn = 5;
  const std::string view = renderTimeView(s, opt);
  // h has slack 15 -> 3 scaled columns of '~' (if room remains).
  EXPECT_NE(view.find('~'), std::string::npos);
  // Zero/unbounded slack draws nothing extra; bins still render.
  EXPECT_NE(view.find('['), std::string::npos);
}

TEST(GanttOptionsTest, LongTaskNamesAreTruncatedIntoTheBin) {
  const Problem p = wideProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  const std::string view = renderTimeView(s);
  EXPECT_NE(view.find("longrunner"), std::string::npos)
      << "40 columns fit the whole name";
  // The 5-wide bin only has room for "sho".
  EXPECT_NE(view.find("[sho]"), std::string::npos);
}

TEST(GanttOptionsTest, SvgGeometryScales) {
  const Problem p = wideProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  SvgGanttOptions small;
  small.pixelsPerTick = 4.0;
  SvgGanttOptions large;
  large.pixelsPerTick = 20.0;
  const std::string a = renderSvgGantt(s, small);
  const std::string b = renderSvgGantt(s, large);
  const auto width = [](const std::string& svg) {
    const auto at = svg.find("width=\"");
    return std::stod(svg.substr(at + 7));
  };
  EXPECT_LT(width(a), width(b));
}

TEST(GanttOptionsTest, SvgRejectsNonPositiveScales) {
  const Problem p = wideProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  SvgGanttOptions bad;
  bad.pixelsPerTick = 0.0;
  EXPECT_THROW((void)renderSvgGantt(s, bad), CheckError);
}

TEST(GanttOptionsTest, UnboundedPmaxDrawsNoBudgetLine) {
  Problem p("nolimits");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("t", 5_s, 3_W, r1);
  const Schedule s(&p, {Time(0), Time(0)});
  const std::string view = renderPowerView(s);
  EXPECT_EQ(view.find("Pmax"), std::string::npos);
  EXPECT_EQ(view.find('!'), std::string::npos);
}

}  // namespace
}  // namespace paws
