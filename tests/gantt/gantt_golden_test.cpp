// Golden-output tests for the ASCII renderer: exact expected text for a
// tiny fixed schedule. Renderer changes that alter layout must update these
// strings consciously.
#include <gtest/gtest.h>

#include "gantt/ascii_gantt.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem goldenProblem() {
  Problem p("golden");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId rf = p.addResource("rf");
  p.addTask("run", 6_s, 4_W, cpu);
  p.addTask("tx", 4_s, 6_W, rf);
  p.setMaxPower(8_W);
  p.setMinPower(4_W);
  return p;
}

TEST(GanttGoldenTest, TimeView) {
  const Problem p = goldenProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(6)});
  const std::string expected =
      "time view (1 col = 1 tick)\n"
      "cpu   |[run-].....\n"
      "rf    |......[tx].\n"
      "      +|---------|\n"
      "       0         10\n";
  EXPECT_EQ(renderTimeView(s), expected);
}

TEST(GanttGoldenTest, PowerView) {
  const Problem p = goldenProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(6)});
  // Heights: [0,6) at 4W -> 2 rows; [6,10) at 6W -> 3 rows. Pmax (8W) is
  // row 4 (all '='), Pmin (4W) is row 2 (filled, '-' only past the end).
  const std::string expected =
      "power view (1 row = 2W)  Pmax=8W  Pmin=4W\n"
      "Pmax  |===========\n"
      "      |      #### \n"
      "Pmin  |##########-\n"
      "      |########## \n"
      "      +|---------|\n"
      "       0         10\n";
  EXPECT_EQ(renderPowerView(s), expected);
}

TEST(GanttGoldenTest, PowerViewWithSpike) {
  const Problem p = goldenProblem();
  // Overlap: 10 W > Pmax 8 W during [0,4).
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  const std::string view = renderPowerView(s);
  // The spike columns use '!' all the way up.
  EXPECT_NE(view.find("!!!!"), std::string::npos);
  // Non-spike columns (t in [4,6)) stay '#'.
  EXPECT_NE(view.find('#'), std::string::npos);
}

}  // namespace
}  // namespace paws
