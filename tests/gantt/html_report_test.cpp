#include "gantt/html_report.hpp"

#include <gtest/gtest.h>

#include "model/paper_example.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(HtmlReportTest, ValidScheduleReport) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  const std::string html = renderHtmlReport(*r.schedule);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("VALID"), std::string::npos);
  EXPECT_EQ(html.find("INVALID"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos) << "embedded gantt";
  EXPECT_NE(html.find("Energy breakdown"), std::string::npos);
  EXPECT_NE(html.find("paper_example"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos) << "Ec curve";
}

TEST(HtmlReportTest, InvalidScheduleListsViolations) {
  Problem p("viol");
  const ResourceId r1 = p.addResource("r1");
  p.addTask("x", 5_s, 9_W, r1);
  p.addTask("y", 5_s, 9_W, r1);
  p.setMaxPower(10_W);
  // Overlapping same-resource tasks: resource overlap + power spike.
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  const std::string html = renderHtmlReport(s);
  EXPECT_NE(html.find("INVALID"), std::string::npos);
  EXPECT_NE(html.find("resource-overlap"), std::string::npos);
  EXPECT_NE(html.find("power-spike"), std::string::npos);
}

TEST(HtmlReportTest, EscapesNames) {
  Problem p("<script>");
  const ResourceId r1 = p.addResource("res&1");
  p.addTask("a<b", 2_s, 1_W, r1);
  const Schedule s(&p, {Time(0), Time(0)});
  HtmlReportOptions opt;
  const std::string html = renderHtmlReport(s, opt);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(html.find("res&amp;1"), std::string::npos);
}

TEST(HtmlReportTest, CustomTitle) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  HtmlReportOptions opt;
  opt.title = "Flight Review 7";
  const std::string html = renderHtmlReport(*r.schedule, opt);
  EXPECT_NE(html.find("<h1>Flight Review 7</h1>"), std::string::npos);
}

}  // namespace
}  // namespace paws
