#include <gtest/gtest.h>

#include "gantt/ascii_gantt.hpp"
#include "gantt/svg_gantt.hpp"
#include "graph/dot.hpp"
#include "model/paper_example.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws {
namespace {

using namespace paws::literals;

Problem smallProblem() {
  Problem p("g");
  const ResourceId cpu = p.addResource("cpu");
  const ResourceId dsp = p.addResource("dsp");
  p.addTask("alpha", 5_s, 6_W, cpu);
  p.addTask("beta", 5_s, 4_W, dsp);
  p.setMaxPower(9_W);
  p.setMinPower(5_W);
  return p;
}

TEST(AsciiGanttTest, TimeViewHasOneRowPerResource) {
  const Problem p = smallProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  const std::string view = renderTimeView(s);
  EXPECT_NE(view.find("cpu"), std::string::npos);
  EXPECT_NE(view.find("dsp"), std::string::npos);
  EXPECT_NE(view.find("alp"), std::string::npos)
      << "name truncated into the [alp] bin interior";
  // alpha occupies columns 0-4 on the cpu row.
  const auto cpuPos = view.find("cpu");
  const auto lineEnd = view.find('\n', cpuPos);
  const std::string row = view.substr(cpuPos, lineEnd - cpuPos);
  EXPECT_NE(row.find('['), std::string::npos);
}

TEST(AsciiGanttTest, PowerViewMarksSpikes) {
  const Problem p = smallProblem();
  // Overlap alpha and beta: 10W > Pmax 9W -> spike marked with '!'.
  const Schedule s(&p, {Time(0), Time(0), Time(0)});
  const std::string view = renderPowerView(s);
  EXPECT_NE(view.find('!'), std::string::npos);
  EXPECT_NE(view.find("Pmax"), std::string::npos);
  EXPECT_NE(view.find("Pmin"), std::string::npos);
}

TEST(AsciiGanttTest, PowerViewNoSpikeMarksWhenValid) {
  const Problem p = smallProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  const std::string view = renderPowerView(s);
  EXPECT_EQ(view.find('!'), std::string::npos);
  EXPECT_NE(view.find('#'), std::string::npos);
}

TEST(AsciiGanttTest, ScalingReducesColumns) {
  const Problem p = smallProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  AsciiGanttOptions opt;
  opt.ticksPerColumn = 5;
  const std::string scaled = renderTimeView(s, opt);
  const std::string full = renderTimeView(s);
  EXPECT_LT(scaled.size(), full.size());
}

TEST(AsciiGanttTest, FullChartCombinesBothViews) {
  const Problem p = smallProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  const std::string chart = renderGantt(s);
  EXPECT_NE(chart.find("time view"), std::string::npos);
  EXPECT_NE(chart.find("power view"), std::string::npos);
}

TEST(AsciiGanttTest, RejectsBadOptions) {
  const Problem p = smallProblem();
  const Schedule s(&p, {Time(0), Time(0), Time(5)});
  AsciiGanttOptions opt;
  opt.ticksPerColumn = 0;
  EXPECT_THROW((void)renderTimeView(s, opt), CheckError);
  AsciiGanttOptions opt2;
  opt2.wattsPerRow = Watts::zero();
  EXPECT_THROW((void)renderPowerView(s, opt2), CheckError);
}

TEST(SvgGanttTest, ProducesWellFormedDocument) {
  const Problem p = makePaperExampleProblem();
  MinPowerScheduler pipeline(p);
  const ScheduleResult r = pipeline.schedule();
  ASSERT_TRUE(r.ok());
  const std::string svg = renderSvgGantt(*r.schedule);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per task (plus the background rect).
  std::size_t rects = 0;
  for (std::size_t at = svg.find("<rect"); at != std::string::npos;
       at = svg.find("<rect", at + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, p.numTasks() + 1);
  EXPECT_NE(svg.find("Pmax"), std::string::npos);
  EXPECT_NE(svg.find("polygon"), std::string::npos) << "stepped profile";
}

TEST(SvgGanttTest, EscapesMarkupInNames) {
  Problem p("esc");
  const ResourceId r1 = p.addResource("res");
  p.addTask("a<b>&c", 2_s, 1_W, r1);
  const Schedule s(&p, {Time(0), Time(0)});
  const std::string svg = renderSvgGantt(s);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
}

TEST(DotExportTest, ContainsVerticesAndStyledEdges) {
  const Problem p = makePaperExampleProblem();
  const ConstraintGraph g = p.buildGraph();
  DotOptions opt;
  opt.vertexLabels.resize(p.numVertices());
  for (TaskId v : p.taskIds()) opt.vertexLabels[v.index()] = p.task(v).name;
  const std::string dot = toDot(g, opt);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("label=\"h\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos) << "max edges";
  EXPECT_NE(dot.find("style=solid"), std::string::npos) << "min edges";
}

TEST(DotExportTest, DecisionEdgesToggle) {
  const Problem p = makePaperExampleProblem();
  ConstraintGraph g = p.buildGraph();
  g.addEdge(kAnchorTask, TaskId(1), Duration(5), EdgeKind::kDelay);
  DotOptions with;
  with.includeDecisionEdges = true;
  DotOptions without;
  without.includeDecisionEdges = false;
  EXPECT_NE(toDot(g, with).find("darkorange"), std::string::npos);
  EXPECT_EQ(toDot(g, without).find("darkorange"), std::string::npos);
}

}  // namespace
}  // namespace paws
