#include "base/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace paws {
namespace {

TEST(DenseIdTest, DefaultIsInvalid) {
  TaskId t;
  EXPECT_FALSE(t.isValid());
  EXPECT_EQ(t, TaskId::invalid());
  ResourceId r;
  EXPECT_FALSE(r.isValid());
}

TEST(DenseIdTest, ValueRoundTrip) {
  const TaskId t(7);
  EXPECT_TRUE(t.isValid());
  EXPECT_EQ(t.value(), 7u);
  EXPECT_EQ(t.index(), 7u);
}

TEST(DenseIdTest, Ordering) {
  EXPECT_LT(TaskId(1), TaskId(2));
  EXPECT_EQ(TaskId(3), TaskId(3));
  EXPECT_NE(TaskId(3), TaskId(4));
}

TEST(DenseIdTest, Hashing) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId(1));
  set.insert(TaskId(2));
  set.insert(TaskId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(TaskId(2)));
}

TEST(DenseIdTest, AnchorIsTaskZero) {
  EXPECT_EQ(kAnchorTask, TaskId(0));
  EXPECT_TRUE(kAnchorTask.isValid());
}

TEST(DenseIdTest, Printing) {
  std::ostringstream os;
  os << TaskId(5) << ' ' << ResourceId(2) << ' ' << TaskId::invalid();
  EXPECT_EQ(os.str(), "task#5 res#2 task(invalid)");
}

}  // namespace
}  // namespace paws
