#include "base/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "base/check.hpp"
#include "base/time.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(WattsTest, FixedPointConstruction) {
  EXPECT_EQ(Watts::fromWatts(14.9).milliwatts(), 14900);
  EXPECT_EQ(Watts::fromWatts(0.0).milliwatts(), 0);
  EXPECT_EQ(Watts::fromWatts(3.7).milliwatts(), 3700);
  EXPECT_EQ(Watts::fromMilliwatts(250).milliwatts(), 250);
}

TEST(WattsTest, LiteralsMatchFactories) {
  EXPECT_EQ(12.5_W, Watts::fromWatts(12.5));
  EXPECT_EQ(7_W, Watts::fromWatts(7.0));
  EXPECT_EQ(300_mW, Watts::fromMilliwatts(300));
}

TEST(WattsTest, ArithmeticIsExact) {
  // Classic floating-point trap: 0.1 + 0.2 != 0.3. Fixed point is exact.
  EXPECT_EQ(Watts::fromWatts(0.1) + Watts::fromWatts(0.2),
            Watts::fromWatts(0.3));
  Watts sum;
  for (int i = 0; i < 1000; ++i) sum += Watts::fromWatts(0.1);
  EXPECT_EQ(sum, Watts::fromWatts(100.0));
}

TEST(WattsTest, Comparisons) {
  EXPECT_LT(Watts::fromWatts(9.0), Watts::fromWatts(9.001));
  EXPECT_GT(Watts::fromWatts(-1.0), Watts::fromWatts(-2.0));
  EXPECT_LE(Watts::zero(), Watts::zero());
}

TEST(WattsTest, Negation) {
  EXPECT_EQ((-Watts::fromWatts(5.5)).milliwatts(), -5500);
  EXPECT_EQ(Watts::fromWatts(3.0) - Watts::fromWatts(5.0),
            -Watts::fromWatts(2.0));
}

TEST(WattsTest, Printing) {
  auto str = [](Watts w) {
    std::ostringstream os;
    os << w;
    return os.str();
  };
  EXPECT_EQ(str(Watts::fromWatts(14.9)), "14.9W");
  EXPECT_EQ(str(Watts::fromWatts(10.0)), "10W");
  EXPECT_EQ(str(Watts::fromMilliwatts(25)), "0.025W");
  EXPECT_EQ(str(Watts::fromMilliwatts(-500)), "-0.5W");
  EXPECT_EQ(str(Watts::zero()), "0W");
}

TEST(EnergyTest, PowerTimesDuration) {
  const Energy e = Watts::fromWatts(10.0) * Duration(75);
  EXPECT_EQ(e.joules(), 750.0);
  EXPECT_EQ(e.milliwattTicks(), 750000);
  EXPECT_EQ(Duration(75) * Watts::fromWatts(10.0), e);
}

TEST(EnergyTest, TableTwoWorstCaseEnergyCheck) {
  // Driving draws 13.8 W for 10 s in the worst case: 138 J.
  EXPECT_EQ(Watts::fromWatts(13.8) * Duration(10),
            Energy::fromMilliwattTicks(138000));
}

TEST(EnergyTest, Ratio) {
  const Energy half = Watts::fromWatts(5.0) * Duration(10);
  const Energy full = Watts::fromWatts(10.0) * Duration(10);
  EXPECT_DOUBLE_EQ(half.ratioOf(full), 0.5);
  EXPECT_DOUBLE_EQ(full.ratioOf(full), 1.0);
}

TEST(EnergyTest, RatioRejectsNonPositiveDenominator) {
  EXPECT_THROW(Energy::zero().ratioOf(Energy::zero()), CheckError);
}

TEST(EnergyTest, Printing) {
  std::ostringstream os;
  os << Watts::fromWatts(1.5) * Duration(3);
  EXPECT_EQ(os.str(), "4.5J");
}

TEST(TimeTest, Arithmetic) {
  const Time t(10);
  EXPECT_EQ((t + Duration(5)).ticks(), 15);
  EXPECT_EQ((t - Duration(3)).ticks(), 7);
  EXPECT_EQ((Time(25) - Time(10)).ticks(), 15);
}

TEST(TimeTest, Sentinels) {
  EXPECT_LT(Time::minusInfinity(), Time(-1000000));
  EXPECT_GT(Time::max(), Time(1000000));
}

TEST(DurationTest, Literals) {
  EXPECT_EQ((5_s).ticks(), 5);
  EXPECT_EQ((50_ticks).ticks(), 50);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((Duration(10) + Duration(-3)).ticks(), 7);
  EXPECT_EQ((Duration(10) * 3).ticks(), 30);
  EXPECT_TRUE(Duration(-1).isNegative());
  EXPECT_TRUE(Duration::zero().isZero());
}

TEST(CheckTest, ThrowsWithExpressionText) {
  try {
    PAWS_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace paws
