#include "base/interval.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace paws {
namespace {

TEST(IntervalTest, BasicProperties) {
  const Interval iv(Time(5), Time(15));
  EXPECT_EQ(iv.length().ticks(), 10);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(Interval(Time(5), Time(5)).empty());
  EXPECT_TRUE(Interval(Time(9), Time(3)).empty());
}

TEST(IntervalTest, HalfOpenContainment) {
  const Interval iv(Time(5), Time(15));
  EXPECT_TRUE(iv.contains(Time(5)));
  EXPECT_TRUE(iv.contains(Time(14)));
  EXPECT_FALSE(iv.contains(Time(15)));  // half-open
  EXPECT_FALSE(iv.contains(Time(4)));
}

TEST(IntervalTest, IntervalContainment) {
  const Interval outer(Time(0), Time(20));
  EXPECT_TRUE(outer.contains(Interval(Time(5), Time(10))));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Interval(Time(15), Time(25))));
}

TEST(IntervalTest, AdjacentIntervalsDoNotOverlap) {
  // A task on [0,5) and another on [5,10) never draw power simultaneously.
  EXPECT_FALSE(Interval(Time(0), Time(5)).overlaps(Interval(Time(5), Time(10))));
  EXPECT_TRUE(Interval(Time(0), Time(6)).overlaps(Interval(Time(5), Time(10))));
  EXPECT_TRUE(Interval(Time(5), Time(10)).overlaps(Interval(Time(0), Time(6))));
}

TEST(IntervalTest, Intersection) {
  const Interval a(Time(0), Time(10));
  const Interval b(Time(6), Time(20));
  EXPECT_EQ(a.intersect(b), Interval(Time(6), Time(10)));
  EXPECT_TRUE(a.intersect(Interval(Time(10), Time(20))).empty());
}

TEST(IntervalTest, Printing) {
  std::ostringstream os;
  os << Interval(Time(3), Time(8));
  EXPECT_EQ(os.str(), "[3, 8)");
}

}  // namespace
}  // namespace paws
