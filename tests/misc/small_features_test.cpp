// Coverage for the small cross-cutting features: profile CSV export,
// infeasible-instance injection, validation summaries.
#include <gtest/gtest.h>

#include "gen/random_problem.hpp"
#include "graph/longest_path.hpp"
#include "io/writer.hpp"
#include "sched/timing_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using namespace paws::literals;

TEST(ProfileCsvTest, SegmentsRowByRow) {
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(5)), 4_W);
  b.add(Interval(Time(5), Time(8)), 6_W);
  const std::string csv = io::profileToCsv(b.build(1_W));
  EXPECT_EQ(csv,
            "begin,end,power_mw\n"
            "0,5,5000\n"
            "5,8,7000\n");
}

TEST(ProfileCsvTest, EmptyProfileHasHeaderOnly) {
  const PowerProfile empty;
  EXPECT_EQ(io::profileToCsv(empty), "begin,end,power_mw\n");
}

class InjectedContradiction
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(InjectedContradiction, TimingSchedulerAlwaysRefuses) {
  GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.numTasks = 12;
  cfg.injectContradiction = true;
  const GeneratedProblem gp = generateRandomProblem(cfg);
  // The injected pair shows up in structural validation...
  EXPECT_FALSE(gp.problem.validate().empty()) << "seed " << GetParam();
  // ...and the scheduler must fail rather than emit an invalid schedule.
  ConstraintGraph g = gp.problem.buildGraph();
  LongestPathEngine engine(g);
  TimingScheduler ts(gp.problem);
  SchedulerStats stats;
  const auto out = ts.run(g, engine, stats);
  EXPECT_FALSE(out.ok) << "seed " << GetParam();
  EXPECT_FALSE(out.budgetExhausted)
      << "a positive cycle is detected, not searched for";
  EXPECT_NE(out.message.find("contradict"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectedContradiction,
                         ::testing::Range(1u, 13u));

TEST(ValidationSummaryTest, Valid) {
  ValidationReport report;
  EXPECT_EQ(report.summary(), "valid");
}

TEST(ValidationSummaryTest, CountsByKind) {
  ValidationReport report;
  report.violations.push_back(
      Violation{Violation::Kind::kMinSeparation, "x"});
  report.violations.push_back(
      Violation{Violation::Kind::kMinSeparation, "y"});
  report.violations.push_back(Violation{Violation::Kind::kPowerSpike, "z"});
  const std::string s = report.summary();
  EXPECT_NE(s.find("3 violations"), std::string::npos);
  EXPECT_NE(s.find("2 min-separation"), std::string::npos);
  EXPECT_NE(s.find("1 power-spike"), std::string::npos);
}

TEST(ValidationSummaryTest, SingularForm) {
  ValidationReport report;
  report.violations.push_back(
      Violation{Violation::Kind::kResourceOverlap, "x"});
  EXPECT_NE(report.summary().find("1 violation:"), std::string::npos);
}

}  // namespace
}  // namespace paws
