// Coverage for the windowed profile queries added for mission-phase
// attribution and mid-flight repair: energyAboveWithin and the `from`
// parameter of firstSpike.
#include <gtest/gtest.h>

#include "power/profile.hpp"

namespace paws {
namespace {

using namespace paws::literals;

PowerProfile stair() {
  // [0,5)=4, [5,10)=10, [10,20)=6.
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(20)), 4_W);
  b.add(Interval(Time(5), Time(10)), 6_W);
  b.add(Interval(Time(10), Time(20)), 2_W);
  return b.build();
}

TEST(ProfileWindowTest, EnergyAboveWithinSlicesSegments) {
  const PowerProfile p = stair();
  // Above 5W: [5,10) at 10W gives 5W x 5; [10,20) at 6W gives 1W x 10.
  EXPECT_EQ(p.energyAboveWithin(5_W, Interval(Time(0), Time(20))),
            5_W * Duration(5) + 1_W * Duration(10));
  // Window clipping mid-segment: [7,9) -> 2 ticks of the 10W plateau.
  EXPECT_EQ(p.energyAboveWithin(5_W, Interval(Time(7), Time(9))),
            5_W * Duration(2));
  // The tail plateau alone.
  EXPECT_EQ(p.energyAboveWithin(5_W, Interval(Time(10), Time(20))),
            1_W * Duration(10));
  // A floor above everything contributes nothing.
  EXPECT_EQ(p.energyAboveWithin(12_W, Interval(Time(0), Time(20))),
            Energy::zero());
  // Empty and out-of-range windows.
  EXPECT_EQ(p.energyAboveWithin(5_W, Interval(Time(9), Time(9))),
            Energy::zero());
  EXPECT_EQ(p.energyAboveWithin(5_W, Interval(Time(25), Time(30))),
            Energy::zero());
}

TEST(ProfileWindowTest, WindowPartitionSumsToWhole) {
  const PowerProfile p = stair();
  for (const Watts floor : {Watts::zero(), 4_W, 5_W, 9_W}) {
    const Energy whole = p.energyAbove(floor);
    const Energy sum =
        p.energyAboveWithin(floor, Interval(Time(0), Time(7))) +
        p.energyAboveWithin(floor, Interval(Time(7), Time(13))) +
        p.energyAboveWithin(floor, Interval(Time(13), Time(20)));
    EXPECT_EQ(sum, whole) << floor;
  }
}

TEST(ProfileWindowTest, FirstSpikeFromSkipsHistory) {
  const PowerProfile p = stair();
  // Budget 8W: the only spike is [5,10).
  ASSERT_TRUE(p.firstSpike(8_W).has_value());
  EXPECT_EQ(*p.firstSpike(8_W), Time(5));
  // From inside the spike: report the threshold itself.
  EXPECT_EQ(*p.firstSpike(8_W, Time(7)), Time(7));
  // From after the spike: nothing left.
  EXPECT_FALSE(p.firstSpike(8_W, Time(10)).has_value());
  // From before everything behaves like the default.
  EXPECT_EQ(*p.firstSpike(8_W, Time::minusInfinity()), Time(5));
}

TEST(ProfileWindowTest, FirstSpikeFromBoundaryIsExclusiveOfEndedSegments) {
  const PowerProfile p = stair();
  // The spike segment is [5,10); from = 9 still inside, from = 10 not.
  EXPECT_EQ(*p.firstSpike(8_W, Time(9)), Time(9));
  EXPECT_FALSE(p.firstSpike(8_W, Time(10)).has_value());
}

}  // namespace
}  // namespace paws
