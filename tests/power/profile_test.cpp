#include "power/profile.hpp"

#include <gtest/gtest.h>

namespace paws {
namespace {

using namespace paws::literals;

PowerProfile rectangles() {
  // 5W on [0,10), plus 5W on [5,15): staircase 5,10,5.
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(10)), 5_W);
  b.add(Interval(Time(5), Time(15)), 5_W);
  return b.build();
}

TEST(PowerProfileTest, EmptyProfile) {
  PowerProfileBuilder b;
  const PowerProfile p = b.build();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.finish(), Time(0));
  EXPECT_EQ(p.totalEnergy(), Energy::zero());
  EXPECT_EQ(p.peak(), Watts::zero());
  EXPECT_DOUBLE_EQ(p.utilization(5_W), 1.0);
}

TEST(PowerProfileTest, StaircaseSegments) {
  const PowerProfile p = rectangles();
  ASSERT_EQ(p.segments().size(), 3u);
  EXPECT_EQ(p.segments()[0].interval, Interval(Time(0), Time(5)));
  EXPECT_EQ(p.segments()[0].power, 5_W);
  EXPECT_EQ(p.segments()[1].interval, Interval(Time(5), Time(10)));
  EXPECT_EQ(p.segments()[1].power, 10_W);
  EXPECT_EQ(p.segments()[2].interval, Interval(Time(10), Time(15)));
  EXPECT_EQ(p.segments()[2].power, 5_W);
  EXPECT_EQ(p.finish(), Time(15));
}

TEST(PowerProfileTest, ValueAt) {
  const PowerProfile p = rectangles();
  EXPECT_EQ(p.valueAt(Time(0)), 5_W);
  EXPECT_EQ(p.valueAt(Time(5)), 10_W);
  EXPECT_EQ(p.valueAt(Time(9)), 10_W);
  EXPECT_EQ(p.valueAt(Time(10)), 5_W);
  EXPECT_EQ(p.valueAt(Time(14)), 5_W);
  EXPECT_EQ(p.valueAt(Time(15)), Watts::zero()) << "half-open end";
  EXPECT_EQ(p.valueAt(Time(-1)), Watts::zero());
}

TEST(PowerProfileTest, BackgroundCoversWholeSpan) {
  PowerProfileBuilder b;
  b.add(Interval(Time(5), Time(10)), 4_W);
  const PowerProfile p = b.build(2_W);
  EXPECT_EQ(p.valueAt(Time(0)), 2_W);
  EXPECT_EQ(p.valueAt(Time(7)), 6_W);
  EXPECT_EQ(p.totalEnergy(), 2_W * Duration(10) + 4_W * Duration(5));
}

TEST(PowerProfileTest, MergesEqualPowerNeighbours) {
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(5)), 3_W);
  b.add(Interval(Time(5), Time(10)), 3_W);
  const PowerProfile p = b.build();
  ASSERT_EQ(p.segments().size(), 1u);
  EXPECT_EQ(p.segments()[0].interval, Interval(Time(0), Time(10)));
}

TEST(PowerProfileTest, PeakAndTotalEnergy) {
  const PowerProfile p = rectangles();
  EXPECT_EQ(p.peak(), 10_W);
  EXPECT_EQ(p.totalEnergy(), 5_W * Duration(10) + 5_W * Duration(10));
}

TEST(PowerProfileTest, EnergyAboveFloor) {
  const PowerProfile p = rectangles();
  // Above 6W: only the [5,10) segment at 10W exceeds -> 4W * 5s = 20J.
  EXPECT_EQ(p.energyAbove(6_W), Energy::fromMilliwattTicks(20000));
  EXPECT_EQ(p.energyAbove(10_W), Energy::zero());
  EXPECT_EQ(p.energyAbove(Watts::zero()), p.totalEnergy());
}

TEST(PowerProfileTest, EnergyCappedIsComplementOfAbove) {
  const PowerProfile p = rectangles();
  for (const Watts cap : {2_W, 5_W, 7_W, 10_W, 20_W}) {
    EXPECT_EQ(p.energyCappedAt(cap) + p.energyAbove(cap), p.totalEnergy());
  }
}

TEST(PowerProfileTest, Utilization) {
  const PowerProfile p = rectangles();
  // Floor 5W over 15s: min(P,5) = 5 everywhere -> rho = 1.
  EXPECT_DOUBLE_EQ(p.utilization(5_W), 1.0);
  // Floor 10W: capped integral = 5*5 + 10*5 + 5*5 = 100, avail = 150.
  EXPECT_DOUBLE_EQ(p.utilization(10_W), 100.0 / 150.0);
  // Pmin = 0 is the conventional special case.
  EXPECT_DOUBLE_EQ(p.utilization(Watts::zero()), 1.0);
}

TEST(PowerProfileTest, SpikesAndGaps) {
  const PowerProfile p = rectangles();
  const auto spikes = p.spikes(8_W);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], Interval(Time(5), Time(10)));
  const auto gaps = p.gaps(8_W);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], Interval(Time(0), Time(5)));
  EXPECT_EQ(gaps[1], Interval(Time(10), Time(15)));
  EXPECT_TRUE(p.spikes(10_W).empty());
  EXPECT_TRUE(p.gaps(5_W).empty());
}

TEST(PowerProfileTest, AdjacentViolationSegmentsCoalesce) {
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(5)), 9_W);
  b.add(Interval(Time(5), Time(10)), 11_W);
  const PowerProfile p = b.build();
  const auto spikes = p.spikes(8_W);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], Interval(Time(0), Time(10)));
}

TEST(PowerProfileTest, FirstSpikeAndFirstGap) {
  const PowerProfile p = rectangles();
  ASSERT_TRUE(p.firstSpike(8_W).has_value());
  EXPECT_EQ(*p.firstSpike(8_W), Time(5));
  EXPECT_FALSE(p.firstSpike(12_W).has_value());
  ASSERT_TRUE(p.firstGap(8_W).has_value());
  EXPECT_EQ(*p.firstGap(8_W), Time(0));
  EXPECT_EQ(*p.firstGap(8_W, Time(3)), Time(3));
  EXPECT_EQ(*p.firstGap(8_W, Time(7)), Time(10));
}

TEST(PowerProfileTest, MaxStep) {
  const PowerProfile p = rectangles();
  // Steps: 0->5, 5->10, 10->5, 5->0: largest is 5W.
  EXPECT_EQ(p.maxStep(), 5_W);
}

TEST(PowerProfileTest, ZeroPowerContributionOnlyExtendsSpan) {
  PowerProfileBuilder b;
  b.add(Interval(Time(0), Time(5)), 2_W);
  b.add(Interval(Time(5), Time(20)), Watts::zero());
  const PowerProfile p = b.build();
  EXPECT_EQ(p.finish(), Time(20));
  EXPECT_EQ(p.valueAt(Time(10)), Watts::zero());
}

TEST(PowerProfileTest, OverlappingManyTasksSumExactly) {
  PowerProfileBuilder b;
  for (int i = 0; i < 100; ++i) {
    b.add(Interval(Time(0), Time(10)), Watts::fromWatts(0.1));
  }
  const PowerProfile p = b.build();
  ASSERT_EQ(p.segments().size(), 1u);
  EXPECT_EQ(p.segments()[0].power, 10_W) << "fixed point: no rounding drift";
}

}  // namespace
}  // namespace paws
