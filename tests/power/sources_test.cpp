#include "power/sources.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"

namespace paws {
namespace {

using namespace paws::literals;

SolarSource missionSolar() {
  // Table 4's scenario: 14.9W, then 12W at 600s, then 9W at 1200s.
  return SolarSource({{Time(0), Watts::fromWatts(14.9)},
                      {Time(600), 12_W},
                      {Time(1200), 9_W}});
}

TEST(SolarSourceTest, ConstantLevel) {
  const SolarSource s(12_W);
  EXPECT_EQ(s.levelAt(Time(0)), 12_W);
  EXPECT_EQ(s.levelAt(Time(100000)), 12_W);
  EXPECT_FALSE(s.nextChangeAfter(Time(0)).has_value());
}

TEST(SolarSourceTest, PhasedLevels) {
  const SolarSource s = missionSolar();
  EXPECT_EQ(s.levelAt(Time(0)), Watts::fromWatts(14.9));
  EXPECT_EQ(s.levelAt(Time(599)), Watts::fromWatts(14.9));
  EXPECT_EQ(s.levelAt(Time(600)), 12_W);
  EXPECT_EQ(s.levelAt(Time(1199)), 12_W);
  EXPECT_EQ(s.levelAt(Time(1200)), 9_W);
  EXPECT_EQ(s.levelAt(Time(99999)), 9_W);
}

TEST(SolarSourceTest, NextChange) {
  const SolarSource s = missionSolar();
  ASSERT_TRUE(s.nextChangeAfter(Time(0)).has_value());
  EXPECT_EQ(*s.nextChangeAfter(Time(0)), Time(600));
  EXPECT_EQ(*s.nextChangeAfter(Time(599)), Time(600));
  EXPECT_EQ(*s.nextChangeAfter(Time(600)), Time(1200));
  EXPECT_FALSE(s.nextChangeAfter(Time(1200)).has_value());
}

TEST(SolarSourceTest, RejectsBadPhaseLists) {
  EXPECT_THROW(SolarSource(std::vector<SolarSource::Phase>{}), CheckError);
  EXPECT_THROW(SolarSource({{Time(5), 9_W}}), CheckError);
  EXPECT_THROW(SolarSource({{Time(0), 9_W}, {Time(0), 8_W}}), CheckError);
}

TEST(SolarSourceTest, RejectsNegativeTime) {
  const SolarSource s(10_W);
  EXPECT_THROW(s.levelAt(Time(-1)), CheckError);
}

TEST(BatteryTest, Accounting) {
  Battery b(10_W, 100_J);
  EXPECT_EQ(b.remaining(), 100_J);
  EXPECT_TRUE(b.draw(30_J));
  EXPECT_EQ(b.drawn(), 30_J);
  EXPECT_EQ(b.remaining(), 70_J);
  EXPECT_FALSE(b.depleted());
  EXPECT_TRUE(b.draw(70_J));
  EXPECT_TRUE(b.depleted());
}

TEST(BatteryTest, OverdrawClampsAndReportsFalse) {
  Battery b(10_W, 50_J);
  EXPECT_FALSE(b.draw(80_J));
  EXPECT_EQ(b.drawn(), 50_J);
  EXPECT_TRUE(b.depleted());
}

TEST(BatteryTest, Reset) {
  Battery b(10_W, 50_J);
  b.draw(20_J);
  b.reset();
  EXPECT_EQ(b.drawn(), Energy::zero());
}

TEST(BatteryTest, RejectsNegativeDraw) {
  Battery b(10_W, 50_J);
  EXPECT_THROW(b.draw(Energy::fromMilliwattTicks(-1)), CheckError);
}

TEST(BatteryTest, DepletedAtLatchedByFirstClampingDraw) {
  Battery b(10_W, 50_J);
  EXPECT_FALSE(b.depletedAt().has_value());
  EXPECT_TRUE(b.draw(20_J, Time(5)));
  EXPECT_FALSE(b.depletedAt().has_value());
  EXPECT_FALSE(b.draw(80_J, Time(12)));
  ASSERT_TRUE(b.depletedAt().has_value());
  EXPECT_EQ(*b.depletedAt(), Time(12));
  // The latch keeps the FIRST depletion instant.
  EXPECT_FALSE(b.draw(1_J, Time(99)));
  EXPECT_EQ(*b.depletedAt(), Time(12));
  b.reset();
  EXPECT_FALSE(b.depletedAt().has_value());
}

TEST(BatteryTest, MarkDepletedLatchesWithoutDrawing) {
  Battery b(10_W, 50_J);
  b.markDepleted(Time(7));
  ASSERT_TRUE(b.depletedAt().has_value());
  EXPECT_EQ(*b.depletedAt(), Time(7));
  EXPECT_EQ(b.drawn(), Energy::zero());
  b.markDepleted(Time(9));  // no-op: already latched
  EXPECT_EQ(*b.depletedAt(), Time(7));
}

BatteryTraits twoBandTraits() {
  BatteryTraits traits;
  traits.bands.push_back(RateBand{2_W, 1250});
  traits.bands.push_back(RateBand{6_W, 1600});
  traits.recoverablePermille = 300;
  traits.recoveryRate = Watts::fromMilliwatts(500);
  return traits;
}

TEST(BatteryTraitsTest, EffectiveRateLookup) {
  const BatteryTraits traits = twoBandTraits();
  // Bands rule draws STRICTLY above their threshold.
  EXPECT_EQ(traits.effectiveRate(1_W), 1_W);
  EXPECT_EQ(traits.effectiveRate(2_W), 2_W);
  EXPECT_EQ(traits.effectiveRate(3_W), Watts::fromMilliwatts(3750));
  EXPECT_EQ(traits.effectiveRate(6_W), Watts::fromMilliwatts(7500));
  EXPECT_EQ(traits.effectiveRate(7_W), Watts::fromMilliwatts(11200));
  EXPECT_EQ(traits.effectiveRate(Watts::zero()), Watts::zero());
  EXPECT_TRUE(BatteryTraits{}.linear());
  EXPECT_FALSE(traits.linear());
}

TEST(BatteryTest, DrawAtBanksRecoverableExcess) {
  Battery b(10_W, 1000_J, twoBandTraits());
  // 4 W for 10 ticks: effective 5 W, 10 J excess, 3 J banked (300 pm).
  EXPECT_TRUE(b.drawAt(4_W, Duration(10), Time(10)));
  EXPECT_EQ(b.drawn(), 50_J);
  EXPECT_EQ(b.rateExcess(), 10_J);
  EXPECT_EQ(b.recoverable(), 3_J);
  // Recovery refunds at 0.5 W, capped by the bank.
  b.recover(Duration(2));
  EXPECT_EQ(b.drawn(), 49_J);
  EXPECT_EQ(b.recovered(), 1_J);
  EXPECT_EQ(b.recoverable(), 2_J);
  b.recover(Duration(1000));
  EXPECT_EQ(b.drawn(), 47_J);
  EXPECT_EQ(b.recovered(), 3_J);
  EXPECT_EQ(b.recoverable(), Energy::zero());
  b.recover(Duration(1000));  // empty bank: no-op
  EXPECT_EQ(b.drawn(), 47_J);
}

TEST(BatteryTest, LinearModelIsExactIdentity) {
  Battery linear(10_W, 100_J);
  EXPECT_TRUE(linear.model().linear());
  EXPECT_EQ(linear.effectiveRate(7_W), 7_W);
  EXPECT_TRUE(linear.drawAt(7_W, Duration(10), Time(10)));
  EXPECT_EQ(linear.drawn(), 70_J);
  EXPECT_EQ(linear.rateExcess(), Energy::zero());
  EXPECT_EQ(linear.recoverable(), Energy::zero());
  linear.recover(Duration(1000));
  EXPECT_EQ(linear.drawn(), 70_J);  // nothing banked, nothing refunded

  Battery plain(10_W, 100_J);
  EXPECT_TRUE(plain.draw(7_W * Duration(10), Time(10)));
  EXPECT_EQ(plain.drawn(), linear.drawn());
}

TEST(BatteryTest, InheritAccountingCarriesStateAcrossDerate) {
  Battery b(10_W, 1000_J, twoBandTraits());
  EXPECT_TRUE(b.drawAt(4_W, Duration(10), Time(10)));
  b.markDepleted(Time(42));
  Battery derated(5_W, 500_J, b.model());
  derated.inheritAccounting(b);
  EXPECT_EQ(derated.recoverable(), b.recoverable());
  EXPECT_EQ(derated.rateExcess(), b.rateExcess());
  EXPECT_EQ(derated.recovered(), b.recovered());
  ASSERT_TRUE(derated.depletedAt().has_value());
  EXPECT_EQ(*derated.depletedAt(), Time(42));
}

TEST(BatteryTest, RejectsMalformedTraits) {
  BatteryTraits bad = twoBandTraits();
  bad.bands[0].factorPermille = 900;  // would make draws cheaper
  EXPECT_THROW(Battery(10_W, 100_J, bad), CheckError);
  BatteryTraits unordered = twoBandTraits();
  std::swap(unordered.bands[0], unordered.bands[1]);
  EXPECT_THROW(Battery(10_W, 100_J, unordered), CheckError);
  BatteryTraits fraction = twoBandTraits();
  fraction.recoverablePermille = 1001;
  EXPECT_THROW(Battery(10_W, 100_J, fraction), CheckError);
}

TEST(PowerSupplyTest, DerivesPaperConstraints) {
  // Section 3: Pmax = solar + 10W battery, Pmin = solar.
  PowerSupply supply(missionSolar(), Battery(10_W, 999999_J));
  EXPECT_EQ(supply.maxPowerAt(Time(0)), Watts::fromWatts(24.9));
  EXPECT_EQ(supply.minPowerAt(Time(0)), Watts::fromWatts(14.9));
  EXPECT_EQ(supply.maxPowerAt(Time(700)), 22_W);
  EXPECT_EQ(supply.minPowerAt(Time(1300)), 9_W);
}

}  // namespace
}  // namespace paws
