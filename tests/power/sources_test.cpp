#include "power/sources.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"

namespace paws {
namespace {

using namespace paws::literals;

SolarSource missionSolar() {
  // Table 4's scenario: 14.9W, then 12W at 600s, then 9W at 1200s.
  return SolarSource({{Time(0), Watts::fromWatts(14.9)},
                      {Time(600), 12_W},
                      {Time(1200), 9_W}});
}

TEST(SolarSourceTest, ConstantLevel) {
  const SolarSource s(12_W);
  EXPECT_EQ(s.levelAt(Time(0)), 12_W);
  EXPECT_EQ(s.levelAt(Time(100000)), 12_W);
  EXPECT_FALSE(s.nextChangeAfter(Time(0)).has_value());
}

TEST(SolarSourceTest, PhasedLevels) {
  const SolarSource s = missionSolar();
  EXPECT_EQ(s.levelAt(Time(0)), Watts::fromWatts(14.9));
  EXPECT_EQ(s.levelAt(Time(599)), Watts::fromWatts(14.9));
  EXPECT_EQ(s.levelAt(Time(600)), 12_W);
  EXPECT_EQ(s.levelAt(Time(1199)), 12_W);
  EXPECT_EQ(s.levelAt(Time(1200)), 9_W);
  EXPECT_EQ(s.levelAt(Time(99999)), 9_W);
}

TEST(SolarSourceTest, NextChange) {
  const SolarSource s = missionSolar();
  ASSERT_TRUE(s.nextChangeAfter(Time(0)).has_value());
  EXPECT_EQ(*s.nextChangeAfter(Time(0)), Time(600));
  EXPECT_EQ(*s.nextChangeAfter(Time(599)), Time(600));
  EXPECT_EQ(*s.nextChangeAfter(Time(600)), Time(1200));
  EXPECT_FALSE(s.nextChangeAfter(Time(1200)).has_value());
}

TEST(SolarSourceTest, RejectsBadPhaseLists) {
  EXPECT_THROW(SolarSource(std::vector<SolarSource::Phase>{}), CheckError);
  EXPECT_THROW(SolarSource({{Time(5), 9_W}}), CheckError);
  EXPECT_THROW(SolarSource({{Time(0), 9_W}, {Time(0), 8_W}}), CheckError);
}

TEST(SolarSourceTest, RejectsNegativeTime) {
  const SolarSource s(10_W);
  EXPECT_THROW(s.levelAt(Time(-1)), CheckError);
}

TEST(BatteryTest, Accounting) {
  Battery b(10_W, 100_J);
  EXPECT_EQ(b.remaining(), 100_J);
  EXPECT_TRUE(b.draw(30_J));
  EXPECT_EQ(b.drawn(), 30_J);
  EXPECT_EQ(b.remaining(), 70_J);
  EXPECT_FALSE(b.depleted());
  EXPECT_TRUE(b.draw(70_J));
  EXPECT_TRUE(b.depleted());
}

TEST(BatteryTest, OverdrawClampsAndReportsFalse) {
  Battery b(10_W, 50_J);
  EXPECT_FALSE(b.draw(80_J));
  EXPECT_EQ(b.drawn(), 50_J);
  EXPECT_TRUE(b.depleted());
}

TEST(BatteryTest, Reset) {
  Battery b(10_W, 50_J);
  b.draw(20_J);
  b.reset();
  EXPECT_EQ(b.drawn(), Energy::zero());
}

TEST(BatteryTest, RejectsNegativeDraw) {
  Battery b(10_W, 50_J);
  EXPECT_THROW(b.draw(Energy::fromMilliwattTicks(-1)), CheckError);
}

TEST(PowerSupplyTest, DerivesPaperConstraints) {
  // Section 3: Pmax = solar + 10W battery, Pmin = solar.
  PowerSupply supply(missionSolar(), Battery(10_W, 999999_J));
  EXPECT_EQ(supply.maxPowerAt(Time(0)), Watts::fromWatts(24.9));
  EXPECT_EQ(supply.minPowerAt(Time(0)), Watts::fromWatts(14.9));
  EXPECT_EQ(supply.maxPowerAt(Time(700)), 22_W);
  EXPECT_EQ(supply.minPowerAt(Time(1300)), 9_W);
}

}  // namespace
}  // namespace paws
