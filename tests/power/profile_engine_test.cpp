#include "power/profile_engine.hpp"

#include <gtest/gtest.h>

#include "base/interval.hpp"
#include "obs/metrics.hpp"
#include "power/profile.hpp"

namespace paws::power {
namespace {

Watts mw(std::int64_t milliwatts) { return Watts::fromMilliwatts(milliwatts); }

TEST(ProfileEngineTest, EmptyEngineMatchesEmptyProfile) {
  ProfileEngine engine(mw(500), mw(2000), mw(8000));
  EXPECT_EQ(engine.finish(), Time::zero());
  EXPECT_EQ(engine.peak(), Watts::zero());
  EXPECT_EQ(engine.totalEnergy(), Energy());
  EXPECT_EQ(engine.energyAbove(), Energy());
  EXPECT_EQ(engine.utilization(), 1.0);
  EXPECT_FALSE(engine.firstSpike().has_value());
  EXPECT_FALSE(engine.firstGap().has_value());
  EXPECT_TRUE(engine.gaps().empty());
  EXPECT_TRUE(engine.activeAt(Time(0)).empty());
  EXPECT_TRUE(engine.snapshot().empty());
}

TEST(ProfileEngineTest, AddRemoveRoundTripsToEmpty) {
  ProfileEngine engine(mw(0), mw(1000), mw(5000));
  engine.addTask(TaskId(1), Interval(Time(2), Time(6)), mw(3000));
  engine.addTask(TaskId(2), Interval(Time(4), Time(9)), mw(2500));
  EXPECT_EQ(engine.finish(), Time(9));
  EXPECT_EQ(engine.peak(), mw(5500));
  EXPECT_EQ(engine.valueAt(Time(5)), mw(5500));
  EXPECT_EQ(engine.valueAt(Time(1)), mw(0));
  ASSERT_TRUE(engine.firstSpike().has_value());
  EXPECT_EQ(*engine.firstSpike(), Time(4));

  engine.removeTask(TaskId(2));
  engine.removeTask(TaskId(1));
  EXPECT_EQ(engine.finish(), Time::zero());
  EXPECT_EQ(engine.totalEnergy(), Energy());
  EXPECT_TRUE(engine.snapshot().empty());
}

TEST(ProfileEngineTest, ZeroPowerAndEmptyTasksExtendSpan) {
  // PowerProfileBuilder counts empty/zero-power contributions toward the
  // span; the engine must agree.
  ProfileEngine engine(mw(100), mw(1000), mw(5000));
  engine.addTask(TaskId(1), Interval(Time(3), Time(3)), mw(4000));  // empty
  EXPECT_EQ(engine.finish(), Time(3));
  EXPECT_EQ(engine.valueAt(Time(1)), mw(100));  // background only
  engine.addTask(TaskId(2), Interval(Time(0), Time(7)), mw(0));  // zero power
  EXPECT_EQ(engine.finish(), Time(7));
  EXPECT_EQ(engine.peak(), mw(100));
  // Zero-power tasks are still active for the interval index.
  EXPECT_EQ(engine.activeAt(Time(2)), std::vector<TaskId>{TaskId(2)});
  // Removing the long zero task shrinks the span back.
  engine.removeTask(TaskId(2));
  EXPECT_EQ(engine.finish(), Time(3));
}

TEST(ProfileEngineTest, MoveTaskMatchesRemoveThenAdd) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(1), Interval(Time(0), Time(4)), mw(2000));
  engine.addTask(TaskId(2), Interval(Time(2), Time(5)), mw(3000));
  engine.moveTask(TaskId(2), Time(6));
  EXPECT_EQ(engine.taskInterval(TaskId(2)), Interval(Time(6), Time(9)));
  EXPECT_EQ(engine.finish(), Time(9));
  EXPECT_EQ(engine.valueAt(Time(3)), mw(2000));
  EXPECT_EQ(engine.valueAt(Time(7)), mw(3000));
  // The hole the move opened, [4, 6) at background 0 < pmin, is a gap.
  const std::vector<Interval> expected = {Interval(Time(4), Time(6))};
  EXPECT_EQ(engine.gaps(), expected);
}

TEST(ProfileEngineTest, GapsMergeContiguousSegments) {
  ProfileEngine engine(mw(0), mw(2500), mw(9000));
  engine.addTask(TaskId(1), Interval(Time(0), Time(2)), mw(3000));
  engine.addTask(TaskId(2), Interval(Time(4), Time(6)), mw(3000));
  // [2,4) is at background 0 < pmin; distinct breakpoints inside the hole
  // must still merge into one gap interval.
  engine.addTask(TaskId(3), Interval(Time(2), Time(3)), mw(1000));
  const auto gaps = engine.gaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps.front(), Interval(Time(2), Time(4)));
  ASSERT_TRUE(engine.firstGap().has_value());
  EXPECT_EQ(*engine.firstGap(), Time(2));
  EXPECT_EQ(*engine.firstGap(Time(3)), Time(3));  // inside the gap
  EXPECT_FALSE(engine.firstGap(Time(4)).has_value());
}

TEST(ProfileEngineTest, ClearEmptiesWithoutCountingARebuild) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(7), Interval(Time(0), Time(3)), mw(1234));
  engine.clear();
  EXPECT_EQ(engine.finish(), Time::zero());
  EXPECT_FALSE(engine.hasTask(TaskId(7)));
  EXPECT_TRUE(engine.snapshot().empty());
  EXPECT_EQ(engine.rebuilds(), 0u);  // clear() is not a rebuild
}

TEST(ProfileEngineTest, CheckpointRestoreNestsLifo) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(1), Interval(Time(0), Time(5)), mw(2000));

  const auto outer = engine.checkpoint();
  engine.moveTask(TaskId(1), Time(3));
  engine.addTask(TaskId(2), Interval(Time(1), Time(2)), mw(4000));

  const auto inner = engine.checkpoint();
  engine.removeTask(TaskId(1));
  EXPECT_FALSE(engine.hasTask(TaskId(1)));
  engine.restore(inner);
  EXPECT_TRUE(engine.hasTask(TaskId(1)));
  EXPECT_EQ(engine.taskInterval(TaskId(1)), Interval(Time(3), Time(8)));

  engine.restore(outer);
  EXPECT_EQ(engine.taskInterval(TaskId(1)), Interval(Time(0), Time(5)));
  EXPECT_FALSE(engine.hasTask(TaskId(2)));
  EXPECT_EQ(engine.finish(), Time(5));
  EXPECT_EQ(engine.restores(), 2u);
}

TEST(ProfileEngineTest, ReleaseKeepsMutations) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(1), Interval(Time(0), Time(5)), mw(2000));
  const auto cp = engine.checkpoint();
  engine.moveTask(TaskId(1), Time(2));
  engine.release(cp);
  EXPECT_EQ(engine.taskInterval(TaskId(1)), Interval(Time(2), Time(7)));
}

TEST(ProfileEngineTest, ActiveAtSortsByTaskId) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(9), Interval(Time(0), Time(10)), mw(100));
  engine.addTask(TaskId(3), Interval(Time(2), Time(8)), mw(100));
  engine.addTask(TaskId(5), Interval(Time(4), Time(6)), mw(100));
  const std::vector<TaskId> expected = {TaskId(3), TaskId(5), TaskId(9)};
  EXPECT_EQ(engine.activeAt(Time(5)), expected);
  EXPECT_EQ(engine.activeAt(Time(9)), std::vector<TaskId>{TaskId(9)});
  EXPECT_TRUE(engine.activeAt(Time(10)).empty());  // half-open intervals
  EXPECT_TRUE(engine.activeAt(Time(-1)).empty());
}

TEST(ProfileEngineTest, SnapshotMergesEqualPowerNeighbours) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(1), Interval(Time(0), Time(3)), mw(2000));
  engine.addTask(TaskId(2), Interval(Time(3), Time(6)), mw(2000));
  const PowerProfile snap = engine.snapshot();
  ASSERT_EQ(snap.segments().size(), 1u);
  EXPECT_EQ(snap.segments().front().interval, Interval(Time(0), Time(6)));
  EXPECT_EQ(snap.segments().front().power, mw(2000));
}

TEST(ProfileEngineTest, ExportMetricsPublishesCounters) {
  ProfileEngine engine(mw(0), mw(1000), mw(9000));
  engine.addTask(TaskId(1), Interval(Time(0), Time(2)), mw(1500));
  const auto cp = engine.checkpoint();
  engine.moveTask(TaskId(1), Time(1));
  engine.restore(cp);

  obs::MetricsRegistry registry;
  engine.exportMetrics(registry);
  EXPECT_EQ(registry.counter("profile.incremental_updates"), 2u);
  EXPECT_EQ(registry.counter("profile.restores"), 1u);
  EXPECT_EQ(registry.counter("profile.rebuilds"), 0u);
}

}  // namespace
}  // namespace paws::power
