// Unit tests for guard::RunBudget / CancelToken / RunGuard.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "guard/budget.hpp"
#include "guard/cancel.hpp"

namespace paws::guard {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.connected());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, SourcePropagatesToAllCopies) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = a;  // copies observe the same flag
  EXPECT_TRUE(a.connected());
  EXPECT_FALSE(a.cancelled());
  source.cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  source.cancel();  // idempotent
  EXPECT_TRUE(a.cancelled());
}

TEST(RunBudgetTest, DefaultIsInactive) {
  RunBudget budget;
  EXPECT_FALSE(budget.active());
  RunGuard guard(budget);
  EXPECT_FALSE(guard.active());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(guard.poll(), StopReason::kNone);
  }
  EXPECT_EQ(guard.check(), StopReason::kNone);
}

TEST(RunBudgetTest, ResolvedPinsTimeoutToAbsoluteDeadline) {
  RunBudget budget;
  budget.timeout = milliseconds(50);
  const auto now = steady_clock::now();
  const RunBudget resolved = budget.resolved(now);
  ASSERT_TRUE(resolved.deadlineAt.has_value());
  EXPECT_EQ(*resolved.deadlineAt, now + milliseconds(50));
  EXPECT_FALSE(resolved.timeout.has_value());
  // Idempotent: resolving later must not push the deadline out.
  const RunBudget again = resolved.resolved(now + milliseconds(10));
  ASSERT_TRUE(again.deadlineAt.has_value());
  EXPECT_EQ(*again.deadlineAt, now + milliseconds(50));
}

TEST(RunBudgetTest, ResolvedKeepsSoonerOfTimeoutAndDeadline) {
  const auto now = steady_clock::now();
  RunBudget budget;
  budget.timeout = milliseconds(10);
  budget.deadlineAt = now + milliseconds(500);
  const RunBudget r = budget.resolved(now);
  EXPECT_EQ(*r.deadlineAt, now + milliseconds(10));
}

TEST(RunBudgetTest, InheritAdoptsOnlyUnsetLimits) {
  CancelSource source;
  RunBudget parent;
  parent.deadlineAt = steady_clock::now() + milliseconds(100);
  parent.cancel = source.token();

  RunBudget child;
  child.inheritFrom(parent);
  EXPECT_EQ(child.deadlineAt, parent.deadlineAt);
  EXPECT_TRUE(child.cancel.connected());

  RunBudget own;
  own.timeout = milliseconds(5);
  own.inheritFrom(parent);
  EXPECT_TRUE(own.timeout.has_value());   // kept its own limit
  EXPECT_FALSE(own.deadlineAt.has_value());
  EXPECT_TRUE(own.cancel.connected());    // cancel still adopted
}

TEST(RunGuardTest, ExpiredDeadlineTripsAndLatches) {
  RunBudget budget;
  budget.deadlineAt = steady_clock::now() - milliseconds(1);
  RunGuard guard(budget, /*stride=*/1);
  EXPECT_TRUE(guard.active());
  EXPECT_EQ(guard.check(), StopReason::kDeadline);
  EXPECT_EQ(guard.reason(), StopReason::kDeadline);
  EXPECT_EQ(guard.poll(), StopReason::kDeadline);  // latched
}

TEST(RunGuardTest, CancellationWinsOverDeadline) {
  CancelSource source;
  source.cancel();
  RunBudget budget;
  budget.deadlineAt = steady_clock::now() - milliseconds(1);
  budget.cancel = source.token();
  RunGuard guard(budget, /*stride=*/1);
  EXPECT_EQ(guard.check(), StopReason::kCancelled);
}

TEST(RunGuardTest, StridedPollSkipsClockReads) {
  RunBudget budget;
  budget.deadlineAt = steady_clock::now() - milliseconds(1);
  RunGuard guard(budget, /*stride=*/64);
  // The first 63 polls never touch the clock; the 64th does and trips.
  for (int i = 0; i < 63; ++i) {
    EXPECT_EQ(guard.poll(), StopReason::kNone) << i;
  }
  EXPECT_EQ(guard.poll(), StopReason::kDeadline);
}

TEST(RunGuardTest, UnresolvedTimeoutIsResolvedAsFallback) {
  RunBudget budget;
  budget.timeout = milliseconds(0);
  RunGuard guard(budget, /*stride=*/1);
  EXPECT_TRUE(guard.active());
  std::this_thread::sleep_for(milliseconds(1));
  EXPECT_EQ(guard.check(), StopReason::kDeadline);
}

TEST(RunGuardTest, FutureDeadlineEventuallyTrips) {
  RunBudget budget;
  budget.timeout = milliseconds(5);
  RunGuard guard(budget.resolved(), /*stride=*/1);
  const auto start = steady_clock::now();
  while (guard.check() == StopReason::kNone) {
    ASSERT_LT(steady_clock::now() - start, std::chrono::seconds(10));
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(guard.reason(), StopReason::kDeadline);
}

TEST(StopReasonTest, ToStringIsStable) {
  EXPECT_STREQ(toString(StopReason::kNone), "none");
  EXPECT_STREQ(toString(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(toString(StopReason::kCancelled), "cancelled");
}

}  // namespace
}  // namespace paws::guard
