// Deadline / cancellation behavior of the schedulers: anytime incumbents
// from the exhaustive search, clean unwinding of the heuristic pipeline,
// and the byte-identity guarantee when no budget is set.
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/random_problem.hpp"
#include "guard/budget.hpp"
#include "guard/cancel.hpp"
#include "obs/metrics.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

using std::chrono::milliseconds;

Problem bigProblem(std::uint32_t seed, std::size_t tasks) {
  GeneratorConfig config;
  config.seed = seed;
  config.numTasks = tasks;
  config.numResources = 4;
  return generateRandomProblem(config).problem;
}

TEST(ExhaustiveGuardTest, DeadlineReturnsBestIncumbent) {
  // 16 tasks is far beyond what the exhaustive search finishes in 50 ms,
  // but the first DFS leaves land within microseconds — so the trip should
  // find an incumbent to return.
  const Problem problem = bigProblem(3, 16);
  obs::MetricsRegistry metrics;
  ExhaustiveOptions options;
  options.maxNodes = std::numeric_limits<std::uint64_t>::max();
  options.budget.timeout = milliseconds(50);
  options.obs.metrics = &metrics;
  ExhaustiveScheduler scheduler(problem, options);
  const ScheduleResult r = scheduler.schedule();

  EXPECT_EQ(r.status, SchedStatus::kDeadlineExceeded);
  EXPECT_FALSE(scheduler.outcome().provenOptimal);
  EXPECT_EQ(scheduler.outcome().stopReason, guard::StopReason::kDeadline);
  EXPECT_FALSE(r.message.empty());
  EXPECT_EQ(metrics.counter("guard.deadline_trips"), 1u);
  if (r.schedule.has_value()) {
    // The incumbent is a fully validated leaf, not a partial placement.
    EXPECT_TRUE(ScheduleValidator(problem).validate(*r.schedule).valid());
    EXPECT_EQ(metrics.counter("guard.incumbent_returned"), 1u);
  } else {
    EXPECT_NE(r.message.find("before any valid schedule"), std::string::npos);
  }
}

TEST(ExhaustiveGuardTest, CrossThreadCancelStopsParallelSearch) {
  const Problem problem = bigProblem(7, 16);
  guard::CancelSource source;
  ExhaustiveOptions options;
  options.maxNodes = std::numeric_limits<std::uint64_t>::max();
  options.jobs = 2;
  options.budget.cancel = source.token();
  ExhaustiveScheduler scheduler(problem, options);

  std::thread canceller([&source] {
    std::this_thread::sleep_for(milliseconds(30));
    source.cancel();
  });
  const ScheduleResult r = scheduler.schedule();
  canceller.join();

  EXPECT_EQ(r.status, SchedStatus::kDeadlineExceeded);
  EXPECT_EQ(scheduler.outcome().stopReason, guard::StopReason::kCancelled);
  EXPECT_FALSE(scheduler.outcome().provenOptimal);
  if (r.schedule.has_value()) {
    EXPECT_TRUE(ScheduleValidator(problem).validate(*r.schedule).valid());
  }
}

TEST(ExhaustiveGuardTest, NoBudgetIsByteIdenticalForAnyJobsCount) {
  // Small enough to finish exhaustively; the clean path must not depend on
  // the worker count, and an unhit (huge) deadline must change nothing.
  GeneratorConfig config;
  config.seed = 11;
  config.numTasks = 5;
  config.numResources = 2;
  config.maxDelay = 4;
  config.witnessJitter = 2;
  config.pmaxHeadroomMw = 500;
  const Problem problem = generateRandomProblem(config).problem;
  std::vector<Time> reference;
  std::uint64_t referenceNodes = 0;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    ExhaustiveOptions options;
    options.jobs = jobs;
    ExhaustiveScheduler scheduler(problem, options);
    const ScheduleResult r = scheduler.schedule();
    ASSERT_EQ(r.status, SchedStatus::kOk) << "jobs=" << jobs;
    EXPECT_TRUE(scheduler.outcome().provenOptimal);
    EXPECT_EQ(scheduler.outcome().stopReason, guard::StopReason::kNone);
    if (reference.empty()) {
      reference = r.schedule->starts();
      referenceNodes = scheduler.outcome().nodesExplored;
    } else {
      EXPECT_EQ(r.schedule->starts(), reference) << "jobs=" << jobs;
    }
  }
  // A deadline that never trips must leave the search byte-identical too.
  ExhaustiveOptions guarded;
  guarded.budget.timeout = std::chrono::hours(1);
  ExhaustiveScheduler scheduler(problem, guarded);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_EQ(r.status, SchedStatus::kOk);
  EXPECT_EQ(r.schedule->starts(), reference);
  EXPECT_EQ(scheduler.outcome().nodesExplored, referenceNodes);
}

TEST(PipelineGuardTest, PreCancelledRunFailsFastAndLeavesNoResidue) {
  const Problem problem = bigProblem(5, 20);
  guard::CancelSource source;
  source.cancel();

  obs::MetricsRegistry metrics;
  PowerAwareOptions options;
  options.budget.cancel = source.token();
  options.obs.metrics = &metrics;
  const ScheduleResult cancelled =
      PowerAwareScheduler(problem, options).schedule();
  EXPECT_EQ(cancelled.status, SchedStatus::kDeadlineExceeded);
  EXPECT_FALSE(cancelled.message.empty());
  EXPECT_GE(metrics.counter("guard.cancels"), 1u);

  // The cancelled run must not have corrupted anything reachable: a fresh
  // unguarded run over the same Problem still succeeds normally.
  const ScheduleResult clean = PowerAwareScheduler(problem).schedule();
  ASSERT_EQ(clean.status, SchedStatus::kOk);
  EXPECT_TRUE(ScheduleValidator(problem).validate(*clean.schedule).valid());
}

TEST(PipelineGuardTest, UnhitDeadlineIsByteIdenticalToNoBudget) {
  const Problem problem = bigProblem(9, 18);
  const ScheduleResult plain = PowerAwareScheduler(problem).schedule();

  PowerAwareOptions guarded;
  guarded.budget.timeout = std::chrono::hours(1);
  const ScheduleResult withBudget =
      PowerAwareScheduler(problem, guarded).schedule();

  ASSERT_EQ(plain.status, withBudget.status);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.schedule->starts(), withBudget.schedule->starts());
  EXPECT_EQ(plain.stats.longestPathRuns, withBudget.stats.longestPathRuns);
  EXPECT_EQ(plain.stats.backtracks, withBudget.stats.backtracks);
  EXPECT_EQ(plain.stats.improvements, withBudget.stats.improvements);
}

TEST(PipelineGuardTest, MidFlightCancelYieldsConsistentAnytimeOrFailure) {
  // Race a cancel against the pipeline. Whatever instant it lands at, the
  // result must be one of: a clean success (cancel came too late), or
  // kDeadlineExceeded whose schedule — if any — passes the validator.
  const Problem problem = bigProblem(13, 40);
  guard::CancelSource source;
  MinPowerOptions options;
  options.budget.cancel = source.token();
  MinPowerScheduler scheduler(problem, options);

  std::thread canceller([&source] {
    std::this_thread::sleep_for(milliseconds(2));
    source.cancel();
  });
  const ScheduleResult r = scheduler.schedule();
  canceller.join();

  ASSERT_TRUE(r.status == SchedStatus::kOk ||
              r.status == SchedStatus::kDeadlineExceeded ||
              r.status == SchedStatus::kPowerInfeasible)
      << toString(r.status) << ": " << r.message;
  if (r.schedule.has_value()) {
    EXPECT_TRUE(ScheduleValidator(problem).validate(*r.schedule).valid())
        << toString(r.status);
  }
}

}  // namespace
}  // namespace paws
