// End-to-end integration: the full user journey across modules —
// text -> model -> schedulers -> analysis -> renderers -> persistence —
// exercised exactly the way the examples and the CLI drive it.
#include <gtest/gtest.h>

#include "analysis/analysis.hpp"
#include "analysis/breakdown.hpp"
#include "gantt/ascii_gantt.hpp"
#include "gantt/html_report.hpp"
#include "gantt/svg_gantt.hpp"
#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "io/writer.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/repair.hpp"
#include "sched/serial_scheduler.hpp"
#include "sched/slack.hpp"
#include "sched/whatif.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

constexpr const char* kSensorNode = R"(
problem "sensor_node" {
  pmax 10W
  pmin 6W
  background 1W
  resource heater
  resource sensor
  resource cpu
  resource radio
  task warmup   { resource heater delay 4 power 5W }
  task sample   { resource sensor delay 6 power 3W }
  task compress { resource cpu    delay 4 power 4.5W }
  task uplink   { resource radio  delay 5 power 6W }
  task beacon   { resource radio  delay 3 power 2W }
  min warmup -> sample 2
  max warmup -> sample 20
  precedes sample -> compress
  precedes compress -> uplink
  max compress -> uplink 15
  release beacon 5
}
)";

class SensorNodeFlow : public ::testing::Test {
 protected:
  void SetUp() override {
    io::ParseResult parsed = io::parseProblem(kSensorNode);
    ASSERT_TRUE(parsed.ok())
        << (parsed.errors.empty() ? "" : io::format(parsed.errors[0]));
    problem_ = std::move(*parsed.problem);
    ASSERT_TRUE(problem_.validate().empty());
  }

  Problem problem_;
};

TEST_F(SensorNodeFlow, TextToValidScheduleToReports) {
  PowerAwareScheduler scheduler(problem_);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const Schedule& s = *r.schedule;

  // Hard constraints independently verified.
  const ValidationReport report = ScheduleValidator(problem_).validate(s);
  EXPECT_TRUE(report.valid());

  // All renderers consume the same schedule without blowing up and agree
  // on the basic facts.
  const std::string ascii = renderGantt(s);
  EXPECT_NE(ascii.find("heater"), std::string::npos);
  const std::string svg = renderSvgGantt(s);
  EXPECT_NE(svg.find("warmup"), std::string::npos);
  const std::string html = renderHtmlReport(s);
  EXPECT_NE(html.find("VALID"), std::string::npos);

  // Analysis is consistent with the schedule's own metrics.
  EXPECT_EQ(ScheduleAnalysis::minimalValidPmax(s), s.powerProfile().peak());
  const EnergyBreakdown bd = computeEnergyBreakdown(s);
  EXPECT_EQ(bd.total, s.powerProfile().totalEnergy());

  // Persistence round-trips both documents.
  const io::ParseResult reparsed =
      io::parseProblem(io::problemToText(problem_));
  ASSERT_TRUE(reparsed.ok());
  const io::ScheduleParseResult reloaded =
      io::parseSchedule(io::scheduleToText(s, "flight"), problem_);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.schedule->starts(), s.starts());
}

TEST_F(SensorNodeFlow, WhatIfThenRepairComposes) {
  // A designer pins the beacon late, accepts the result, then the budget
  // drops mid-flight and the plan is repaired.
  WhatIfSession session(problem_);
  const TaskId beacon = *problem_.findTask("beacon");
  session.lock(beacon, Time(20));
  const ScheduleResult locked = session.reschedule();
  ASSERT_TRUE(locked.ok()) << locked.message;
  EXPECT_EQ(locked.schedule->start(beacon), Time(20));

  Problem degraded(problem_);
  degraded.setMaxPower(Watts::fromWatts(8.5));
  const RepairInput input{&degraded, &*locked.schedule, Time(10)};
  const ScheduleResult repaired = repairSchedule(input);
  ASSERT_TRUE(repaired.ok()) << repaired.message;
  for (TaskId v : problem_.taskIds()) {
    if (locked.schedule->start(v) < Time(10)) {
      EXPECT_EQ(repaired.schedule->start(v), locked.schedule->start(v));
    }
  }
  for (const Interval& spike :
       repaired.schedule->powerProfile().spikes(Watts::fromWatts(8.5))) {
    EXPECT_LT(spike.begin(), Time(10));
  }
}

TEST_F(SensorNodeFlow, SerialBaselineIsSlowerButCooler) {
  PowerAwareScheduler scheduler(problem_);
  const ScheduleResult pipeline = scheduler.schedule();
  const ScheduleResult serial = SerialScheduler(problem_).schedule();
  ASSERT_TRUE(pipeline.ok() && serial.ok());
  EXPECT_LE(pipeline.schedule->finish(), serial.schedule->finish());
  EXPECT_LE(serial.schedule->powerProfile().peak(),
            pipeline.schedule->powerProfile().peak() + Watts::zero());
}

TEST_F(SensorNodeFlow, SlackAnnotatedGanttRenders) {
  // Slack annotation needs the decorated graph; wire it the way the
  // satellite example does.
  MaxPowerScheduler maxPower(problem_);
  MaxPowerScheduler::Detailed det = maxPower.scheduleDetailed();
  ASSERT_TRUE(det.result.ok());
  AsciiGanttOptions opt;
  opt.slacks = computeSlacks(*det.graph, det.result.schedule->starts());
  const std::string view = renderTimeView(*det.result.schedule, opt);
  EXPECT_NE(view.find('~'), std::string::npos)
      << "some task must have visible slack";
}

TEST_F(SensorNodeFlow, TighterBudgetNeverSpeedsThingsUp) {
  Time previousFinish = Time::zero();
  for (const double pmax : {14.0, 11.0, 9.0}) {
    Problem variant(problem_);
    variant.setMaxPower(Watts::fromWatts(pmax));
    PowerAwareScheduler scheduler(variant);
    const ScheduleResult r = scheduler.schedule();
    ASSERT_TRUE(r.ok()) << "pmax " << pmax << ": " << r.message;
    EXPECT_GE(r.schedule->finish(), previousFinish)
        << "pmax " << pmax << " cannot beat a looser budget";
    previousFinish = r.schedule->finish();
  }
}

}  // namespace
}  // namespace paws
