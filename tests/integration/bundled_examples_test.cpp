// Data-driven test over every bundled .paws problem: each must parse,
// validate, schedule through the full pipeline, pass the independent
// validator, and round-trip through the writer. Adding a new example file
// to examples/data/ automatically puts it under test (update kBundled).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/parser.hpp"
#include "io/writer.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws {
namespace {

// Relative to the ctest working directory (build/tests) and the repo root;
// try both so the test runs from either.
std::string readFile(const std::string& name) {
  for (const char* prefix : {"../../examples/data/", "examples/data/",
                             "../examples/data/"}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return buffer.str();
    }
  }
  return {};
}

class BundledExample : public ::testing::TestWithParam<const char*> {};

TEST_P(BundledExample, ParsesValidatesSchedulesRoundTrips) {
  const std::string source = readFile(GetParam());
  ASSERT_FALSE(source.empty()) << "cannot locate " << GetParam();

  const io::ParseResult parsed = io::parseProblem(source);
  ASSERT_TRUE(parsed.ok())
      << (parsed.errors.empty() ? "" : io::format(parsed.errors[0]));
  const Problem& p = *parsed.problem;
  EXPECT_TRUE(p.validate().empty());

  PowerAwareScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok()) << r.message;
  const ValidationReport report = ScheduleValidator(p).validate(*r.schedule);
  EXPECT_TRUE(report.valid()) << report.summary();

  const io::ParseResult reparsed = io::parseProblem(io::problemToText(p));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.problem->numTasks(), p.numTasks());
  EXPECT_EQ(reparsed.problem->constraints().size(), p.constraints().size());
}

INSTANTIATE_TEST_SUITE_P(Files, BundledExample,
                         ::testing::Values("sensor_node.paws",
                                           "satellite.paws",
                                           "deep_space_probe.paws"));

}  // namespace
}  // namespace paws
