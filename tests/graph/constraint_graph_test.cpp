#include "graph/constraint_graph.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"

namespace paws {
namespace {

TEST(ConstraintGraphTest, EmptyGraph) {
  ConstraintGraph g(4);
  EXPECT_EQ(g.numVertices(), 4u);
  EXPECT_EQ(g.numEdges(), 0u);
  EXPECT_TRUE(g.outEdges(TaskId(2)).empty());
}

TEST(ConstraintGraphTest, AddEdgeAndAdjacency) {
  ConstraintGraph g(3);
  const EdgeId e0 = g.addEdge(TaskId(0), TaskId(1), Duration(5),
                              EdgeKind::kUserMin);
  const EdgeId e1 = g.addEdge(TaskId(1), TaskId(2), Duration(-3),
                              EdgeKind::kUserMax);
  EXPECT_EQ(g.numEdges(), 2u);
  ASSERT_EQ(g.outEdges(TaskId(0)).size(), 1u);
  EXPECT_EQ(g.outEdges(TaskId(0))[0], e0);
  ASSERT_EQ(g.inEdges(TaskId(2)).size(), 1u);
  EXPECT_EQ(g.inEdges(TaskId(2))[0], e1);
  EXPECT_EQ(g.edge(e1).weight.ticks(), -3);
  EXPECT_EQ(g.edge(e1).kind, EdgeKind::kUserMax);
}

TEST(ConstraintGraphTest, RejectsOutOfRangeEndpoints) {
  ConstraintGraph g(2);
  EXPECT_THROW(
      g.addEdge(TaskId(0), TaskId(5), Duration(1), EdgeKind::kUserMin),
      CheckError);
}

TEST(ConstraintGraphTest, RollbackRemovesEdgesInLifoOrder) {
  ConstraintGraph g(4);
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kUserMin);
  const auto cp = g.checkpoint();
  g.addEdge(TaskId(1), TaskId(2), Duration(2), EdgeKind::kSerialization);
  g.addEdge(TaskId(1), TaskId(3), Duration(3), EdgeKind::kSerialization);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_EQ(g.outEdges(TaskId(1)).size(), 2u);

  g.rollbackTo(cp);
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_TRUE(g.outEdges(TaskId(1)).empty());
  EXPECT_TRUE(g.inEdges(TaskId(2)).empty());
  EXPECT_EQ(g.outEdges(TaskId(0)).size(), 1u);
}

TEST(ConstraintGraphTest, NestedCheckpoints) {
  ConstraintGraph g(5);
  const auto cp0 = g.checkpoint();
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kDelay);
  const auto cp1 = g.checkpoint();
  g.addEdge(TaskId(0), TaskId(2), Duration(1), EdgeKind::kDelay);
  g.addEdge(TaskId(0), TaskId(3), Duration(1), EdgeKind::kDelay);
  g.rollbackTo(cp1);
  EXPECT_EQ(g.numEdges(), 1u);
  g.addEdge(TaskId(0), TaskId(4), Duration(9), EdgeKind::kLock);
  g.rollbackTo(cp0);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(ConstraintGraphTest, RollbackToCurrentIsNoopAndKeepsGeneration) {
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kUserMin);
  const auto gen = g.generation();
  g.rollbackTo(g.checkpoint());
  EXPECT_EQ(g.generation(), gen);
  g.rollbackTo(0);
  EXPECT_GT(g.generation(), gen);
}

TEST(ConstraintGraphTest, GenerationStableAcrossAdds) {
  ConstraintGraph g(3);
  const auto gen = g.generation();
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(1), EdgeKind::kUserMin);
  EXPECT_EQ(g.generation(), gen) << "adds must not invalidate distances";
}

TEST(ConstraintGraphTest, AddVerticesGrowsAndBumpsGeneration) {
  ConstraintGraph g(2);
  const auto gen = g.generation();
  g.addVertices(3);
  EXPECT_EQ(g.numVertices(), 5u);
  EXPECT_GT(g.generation(), gen);
  g.addEdge(TaskId(4), TaskId(0), Duration(2), EdgeKind::kUserMin);
  EXPECT_EQ(g.outEdges(TaskId(4)).size(), 1u);
}

TEST(ConstraintGraphTest, RollbackBeyondTrailThrows) {
  ConstraintGraph g(2);
  EXPECT_THROW(g.rollbackTo(7), CheckError);
}

TEST(EdgeKindTest, Names) {
  EXPECT_STREQ(toString(EdgeKind::kUserMin), "min");
  EXPECT_STREQ(toString(EdgeKind::kSerialization), "serialize");
  EXPECT_STREQ(toString(EdgeKind::kLock), "lock");
}

}  // namespace
}  // namespace paws
