#include "graph/constraint_graph.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "base/check.hpp"

namespace paws {
namespace {

TEST(ConstraintGraphTest, EmptyGraph) {
  ConstraintGraph g(4);
  EXPECT_EQ(g.numVertices(), 4u);
  EXPECT_EQ(g.numEdges(), 0u);
  EXPECT_TRUE(g.outEdges(TaskId(2)).empty());
}

TEST(ConstraintGraphTest, AddEdgeAndAdjacency) {
  ConstraintGraph g(3);
  const EdgeId e0 = g.addEdge(TaskId(0), TaskId(1), Duration(5),
                              EdgeKind::kUserMin);
  const EdgeId e1 = g.addEdge(TaskId(1), TaskId(2), Duration(-3),
                              EdgeKind::kUserMax);
  EXPECT_EQ(g.numEdges(), 2u);
  ASSERT_EQ(g.outEdges(TaskId(0)).size(), 1u);
  const AdjEntry& out0 = *g.outEdges(TaskId(0)).begin();
  EXPECT_EQ(out0.id, e0);
  EXPECT_EQ(out0.other, TaskId(1));
  EXPECT_EQ(out0.weight, Duration(5));
  ASSERT_EQ(g.inEdges(TaskId(2)).size(), 1u);
  const AdjEntry& in2 = *g.inEdges(TaskId(2)).begin();
  EXPECT_EQ(in2.id, e1);
  EXPECT_EQ(in2.other, TaskId(1));
  EXPECT_EQ(in2.weight, Duration(-3));
  EXPECT_EQ(g.edge(e1).weight.ticks(), -3);
  EXPECT_EQ(g.edge(e1).kind, EdgeKind::kUserMax);
}

TEST(ConstraintGraphTest, RejectsOutOfRangeEndpoints) {
  ConstraintGraph g(2);
  EXPECT_THROW(
      g.addEdge(TaskId(0), TaskId(5), Duration(1), EdgeKind::kUserMin),
      CheckError);
}

TEST(ConstraintGraphTest, RollbackRemovesEdgesInLifoOrder) {
  ConstraintGraph g(4);
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kUserMin);
  const auto cp = g.checkpoint();
  g.addEdge(TaskId(1), TaskId(2), Duration(2), EdgeKind::kSerialization);
  g.addEdge(TaskId(1), TaskId(3), Duration(3), EdgeKind::kSerialization);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_EQ(g.outEdges(TaskId(1)).size(), 2u);

  g.rollbackTo(cp);
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_TRUE(g.outEdges(TaskId(1)).empty());
  EXPECT_TRUE(g.inEdges(TaskId(2)).empty());
  EXPECT_EQ(g.outEdges(TaskId(0)).size(), 1u);
}

TEST(ConstraintGraphTest, NestedCheckpoints) {
  ConstraintGraph g(5);
  const auto cp0 = g.checkpoint();
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kDelay);
  const auto cp1 = g.checkpoint();
  g.addEdge(TaskId(0), TaskId(2), Duration(1), EdgeKind::kDelay);
  g.addEdge(TaskId(0), TaskId(3), Duration(1), EdgeKind::kDelay);
  g.rollbackTo(cp1);
  EXPECT_EQ(g.numEdges(), 1u);
  g.addEdge(TaskId(0), TaskId(4), Duration(9), EdgeKind::kLock);
  g.rollbackTo(cp0);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(ConstraintGraphTest, RollbackToCurrentIsNoopAndKeepsGeneration) {
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kUserMin);
  const auto gen = g.generation();
  g.rollbackTo(g.checkpoint());
  EXPECT_EQ(g.generation(), gen);
  g.rollbackTo(0);
  EXPECT_GT(g.generation(), gen);
}

TEST(ConstraintGraphTest, GenerationStableAcrossAdds) {
  ConstraintGraph g(3);
  const auto gen = g.generation();
  g.addEdge(TaskId(0), TaskId(1), Duration(1), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(1), EdgeKind::kUserMin);
  EXPECT_EQ(g.generation(), gen) << "adds must not invalidate distances";
}

TEST(ConstraintGraphTest, AddVerticesGrowsAndBumpsGeneration) {
  ConstraintGraph g(2);
  const auto gen = g.generation();
  g.addVertices(3);
  EXPECT_EQ(g.numVertices(), 5u);
  EXPECT_GT(g.generation(), gen);
  g.addEdge(TaskId(4), TaskId(0), Duration(2), EdgeKind::kUserMin);
  EXPECT_EQ(g.outEdges(TaskId(4)).size(), 1u);
}

TEST(ConstraintGraphTest, RollbackBeyondTrailThrows) {
  ConstraintGraph g(2);
  EXPECT_THROW(g.rollbackTo(7), CheckError);
}

// Reference model for the chunked-arena adjacency: the old nested-vector
// layout, updated with the same textbook push_back/pop_back trail logic.
struct NestedVectorModel {
  std::vector<ConstraintEdge> edges;
  std::vector<std::vector<EdgeId>> out;
  std::vector<std::vector<EdgeId>> in;

  explicit NestedVectorModel(std::size_t n) : out(n), in(n) {}

  void addEdge(TaskId from, TaskId to, Duration weight) {
    const EdgeId id = static_cast<EdgeId>(edges.size());
    edges.push_back(ConstraintEdge{from, to, weight, EdgeKind::kUserMin});
    out[from.index()].push_back(id);
    in[to.index()].push_back(id);
  }

  void rollbackTo(std::size_t cp) {
    while (edges.size() > cp) {
      const ConstraintEdge& e = edges.back();
      out[e.from.index()].pop_back();
      in[e.to.index()].pop_back();
      edges.pop_back();
    }
  }
};

void expectSameAdjacency(const ConstraintGraph& g,
                         const NestedVectorModel& model) {
  ASSERT_EQ(g.numEdges(), model.edges.size());
  for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
    const TaskId id(v);
    std::vector<EdgeId> outIds;
    for (const AdjEntry& ae : g.outEdges(id)) {
      EXPECT_EQ(ae.other, g.edge(ae.id).to);
      EXPECT_EQ(ae.weight, g.edge(ae.id).weight);
      outIds.push_back(ae.id);
    }
    EXPECT_EQ(outIds, model.out[v]) << "out-adjacency of vertex " << v;
    std::vector<EdgeId> inIds;
    for (const AdjEntry& ae : g.inEdges(id)) {
      EXPECT_EQ(ae.other, g.edge(ae.id).from);
      EXPECT_EQ(ae.weight, g.edge(ae.id).weight);
      inIds.push_back(ae.id);
    }
    EXPECT_EQ(inIds, model.in[v]) << "in-adjacency of vertex " << v;
  }
}

// Property: random add/checkpoint/rollback sequences leave the chunked
// arena byte-equivalent (same edge ids, same order, same endpoints) to the
// nested-vector reference model at every step.
TEST(ConstraintGraphTest, ArenaMatchesNestedVectorModelUnderRandomTrails) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed);
    const std::uint32_t n = 2 + rng() % 12;
    ConstraintGraph g(n);
    NestedVectorModel model(n);
    std::vector<ConstraintGraph::Checkpoint> checkpoints;

    for (int step = 0; step < 400; ++step) {
      const std::uint32_t op = rng() % 10;
      if (op < 6) {  // add an edge (biased so lists grow past chunk size)
        const TaskId from(rng() % n);
        const TaskId to(rng() % n);
        const Duration w(static_cast<std::int64_t>(rng() % 21) - 10);
        g.addEdge(from, to, w, EdgeKind::kUserMin);
        model.addEdge(from, to, w);
      } else if (op < 8 || checkpoints.empty()) {
        checkpoints.push_back(g.checkpoint());
      } else {  // rollback to a random open checkpoint
        const std::size_t pick = rng() % checkpoints.size();
        g.rollbackTo(checkpoints[pick]);
        model.rollbackTo(checkpoints[pick]);
        checkpoints.resize(pick + 1);
      }
      expectSameAdjacency(g, model);
    }
    g.rollbackTo(0);
    model.rollbackTo(0);
    expectSameAdjacency(g, model);
  }
}

TEST(EdgeKindTest, Names) {
  EXPECT_STREQ(toString(EdgeKind::kUserMin), "min");
  EXPECT_STREQ(toString(EdgeKind::kSerialization), "serialize");
  EXPECT_STREQ(toString(EdgeKind::kLock), "lock");
}

}  // namespace
}  // namespace paws
