// Cross-checks LongestPathEngine against a naive textbook Bellman-Ford on
// randomized graphs (including negative edges and infeasible instances),
// and its incremental mode against from-scratch recomputation under random
// add/rollback workloads — the exact access pattern the schedulers produce.
#include <gtest/gtest.h>

#include <random>

#include "graph/longest_path.hpp"

namespace paws {
namespace {

/// Reference: |V|-1 rounds of full relaxation; one more improving round
/// means a positive cycle.
struct NaiveResult {
  bool feasible = true;
  std::vector<Time> dist;
};

NaiveResult naiveLongestPath(const ConstraintGraph& g, TaskId source) {
  NaiveResult r;
  const std::size_t n = g.numVertices();
  r.dist.assign(n, Time::minusInfinity());
  r.dist[source.index()] = Time::zero();
  for (std::size_t round = 0; round + 1 < n; ++round) {
    for (const ConstraintEdge& e : g.edges()) {
      if (r.dist[e.from.index()] == Time::minusInfinity()) continue;
      const Time cand = r.dist[e.from.index()] + e.weight;
      if (cand > r.dist[e.to.index()]) r.dist[e.to.index()] = cand;
    }
  }
  for (const ConstraintEdge& e : g.edges()) {
    if (r.dist[e.from.index()] == Time::minusInfinity()) continue;
    if (r.dist[e.from.index()] + e.weight > r.dist[e.to.index()]) {
      r.feasible = false;
      return r;
    }
  }
  return r;
}

class LongestPathOracle : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LongestPathOracle, MatchesNaiveBellmanFord) {
  std::mt19937 rng(GetParam());
  const std::size_t n = 2 + rng() % 14;
  ConstraintGraph g(n);
  // Release edges so everything is reachable, then random weighted edges
  // (sometimes negative: max-separation style back edges).
  for (std::size_t i = 1; i < n; ++i) {
    g.addEdge(TaskId(0), TaskId(static_cast<std::uint32_t>(i)), Duration(0),
              EdgeKind::kRelease);
  }
  const std::size_t extra = rng() % (3 * n);
  for (std::size_t k = 0; k < extra; ++k) {
    const TaskId u(static_cast<std::uint32_t>(rng() % n));
    const TaskId v(static_cast<std::uint32_t>(rng() % n));
    if (u == v) continue;
    const std::int64_t w = static_cast<std::int64_t>(rng() % 21) - 8;
    g.addEdge(u, v, Duration(w), EdgeKind::kUserMin);
  }

  LongestPathEngine engine(g);
  const LongestPathResult& fast = engine.compute(TaskId(0));
  const NaiveResult slow = naiveLongestPath(g, TaskId(0));
  ASSERT_EQ(fast.feasible, slow.feasible) << "seed " << GetParam();
  if (fast.feasible) {
    EXPECT_EQ(fast.dist, slow.dist) << "seed " << GetParam();
  } else {
    // The witness cycle must be genuinely positive.
    ASSERT_FALSE(fast.cycleEdges.empty());
    Duration total;
    for (EdgeId e : fast.cycleEdges) total += g.edge(e).weight;
    EXPECT_GT(total, Duration::zero());
  }
}

TEST_P(LongestPathOracle, IncrementalTracksAddRollbackWorkload) {
  std::mt19937 rng(GetParam() * 7919 + 13);
  const std::size_t n = 3 + rng() % 10;
  ConstraintGraph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.addEdge(TaskId(0), TaskId(static_cast<std::uint32_t>(i)), Duration(0),
              EdgeKind::kRelease);
  }
  LongestPathEngine engine(g);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);

  std::vector<ConstraintGraph::Checkpoint> checkpoints;
  for (int step = 0; step < 60; ++step) {
    const int action = static_cast<int>(rng() % 3);
    if (action == 0 || checkpoints.empty()) {
      checkpoints.push_back(g.checkpoint());
      const TaskId u(static_cast<std::uint32_t>(rng() % n));
      const TaskId v(static_cast<std::uint32_t>(rng() % n));
      if (u != v) {
        const std::int64_t w = static_cast<std::int64_t>(rng() % 15) - 4;
        g.addEdge(u, v, Duration(w), EdgeKind::kDelay);
      }
    } else if (action == 1) {
      g.rollbackTo(checkpoints.back());
      checkpoints.pop_back();
    }
    const LongestPathResult& fast = engine.compute(TaskId(0));
    const NaiveResult slow = naiveLongestPath(g, TaskId(0));
    ASSERT_EQ(fast.feasible, slow.feasible)
        << "seed " << GetParam() << " step " << step;
    if (fast.feasible) {
      ASSERT_EQ(fast.dist, slow.dist)
          << "seed " << GetParam() << " step " << step;
    } else {
      // Engine state after infeasibility is rebuilt from scratch on the
      // next call; keep the workload going by undoing the breakage.
      if (!checkpoints.empty()) {
        g.rollbackTo(checkpoints.front());
        checkpoints.clear();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongestPathOracle,
                         ::testing::Range(1u, 25u));

}  // namespace
}  // namespace paws
