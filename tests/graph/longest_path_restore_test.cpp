// Property test for the rollback-aware LongestPathEngine: any LIFO
// sequence of {open checkpoint, add edges, compute, computeFull, restore,
// release} must leave the engine's answer identical to a from-scratch
// computation on the same graph — feasibility verdict and every distance,
// including Time::minusInfinity() for unreachable vertices.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/constraint_graph.hpp"
#include "graph/longest_path.hpp"

namespace paws {
namespace {

std::uint32_t nextRand(std::uint32_t& state) {
  std::uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return state = x;
}

/// Asserts that the stateful engine's current answer matches a fresh
/// from-scratch run over the same graph.
void expectMatchesFull(const ConstraintGraph& graph,
                       LongestPathEngine& engine) {
  const LongestPathResult& incr = engine.compute(TaskId(0));
  LongestPathEngine fresh(graph);
  const LongestPathResult& full = fresh.computeFull(TaskId(0));
  ASSERT_EQ(incr.feasible, full.feasible);
  if (!incr.feasible) return;
  ASSERT_EQ(incr.dist.size(), full.dist.size());
  for (std::size_t i = 0; i < full.dist.size(); ++i) {
    ASSERT_EQ(incr.dist[i], full.dist[i]) << "vertex " << i;
  }
}

struct Frame {
  ConstraintGraph::Checkpoint graphCp;
  LongestPathEngine::Checkpoint engineCp;
};

TEST(LongestPathRestoreTest, RandomCheckpointSequencesMatchFullRecompute) {
  for (std::uint32_t seed = 1; seed <= 30; ++seed) {
    std::uint32_t rng = seed;
    const std::size_t n = 3 + nextRand(rng) % 8;  // 3..10 vertices
    ConstraintGraph graph(n);

    const auto addRandomEdge = [&] {
      const TaskId from(nextRand(rng) % static_cast<std::uint32_t>(n));
      TaskId to(nextRand(rng) % static_cast<std::uint32_t>(n));
      if (to == from) {
        to = TaskId(static_cast<std::uint32_t>((to.value() + 1) % n));
      }
      // Mostly small positive weights; occasional negatives and the odd
      // large weight so positive cycles (infeasibility) do occur.
      const std::int64_t w =
          static_cast<std::int64_t>(nextRand(rng) % 9) - 2;
      graph.addEdge(from, to, Duration(w), EdgeKind::kUserMin);
    };

    // Base graph: a spine from the anchor so most vertices are reachable,
    // plus random extra edges (some vertices may stay at -infinity).
    for (std::size_t i = 1; i < n; ++i) {
      if (nextRand(rng) % 4 != 0) {
        graph.addEdge(TaskId(0), TaskId(static_cast<std::uint32_t>(i)),
                      Duration(static_cast<std::int64_t>(nextRand(rng) % 5)),
                      EdgeKind::kUserMin);
      }
    }
    for (std::size_t i = 0; i < n / 2; ++i) addRandomEdge();

    LongestPathEngine engine(graph);
    expectMatchesFull(graph, engine);

    std::vector<Frame> stack;
    for (int op = 0; op < 60; ++op) {
      const std::uint32_t pick = nextRand(rng) % 10;
      if (pick < 4 && stack.size() < 6) {
        // Open a frame and mutate inside it.
        Frame f;
        f.graphCp = graph.checkpoint();
        f.engineCp = engine.checkpoint();
        stack.push_back(f);
        const std::uint32_t edges = 1 + nextRand(rng) % 3;
        for (std::uint32_t e = 0; e < edges; ++e) addRandomEdge();
      } else if (pick < 6 && !stack.empty()) {
        // Rollback the innermost frame.
        const Frame f = stack.back();
        stack.pop_back();
        graph.rollbackTo(f.graphCp);
        engine.restore(f.engineCp);
      } else if (pick == 6 && !stack.empty()) {
        // Keep the innermost frame's edges.
        const Frame f = stack.back();
        stack.pop_back();
        engine.release(f.engineCp);
      } else if (pick == 7) {
        // Poison the undo log: a full rerun rewrites every distance, so
        // restores across it must fall back to invalidation — and still
        // produce correct answers.
        engine.computeFull(TaskId(0));
      } else {
        // Mutate the current frame (or the base graph at depth 0).
        addRandomEdge();
      }
      expectMatchesFull(graph, engine);
    }

    // Unwind whatever is still open, checking at every level.
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      graph.rollbackTo(f.graphCp);
      engine.restore(f.engineCp);
      expectMatchesFull(graph, engine);
    }
  }
}

TEST(LongestPathRestoreTest, RestoreRevivesSolutionWithoutRecomputing) {
  // A concrete revival: feasible base, one frame adds a tightening edge,
  // rollback + restore must bring back the exact pre-frame distances and
  // the next compute() must be a no-op (same edge count, valid run).
  ConstraintGraph g(4);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(7), EdgeKind::kUserMin);
  g.addEdge(TaskId(0), TaskId(3), Duration(1), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);
  const std::vector<Time> before = engine.result().dist;

  const ConstraintGraph::Checkpoint cp = g.checkpoint();
  const LongestPathEngine::Checkpoint ecp = engine.checkpoint();
  g.addEdge(TaskId(0), TaskId(2), Duration(40), EdgeKind::kDelay);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);
  EXPECT_EQ(engine.result().dist[2], Time(40));

  g.rollbackTo(cp);
  engine.restore(ecp);
  EXPECT_EQ(engine.result().dist, before);
  EXPECT_TRUE(engine.compute(TaskId(0)).feasible);
  EXPECT_EQ(engine.result().dist, before);
}

TEST(LongestPathRestoreTest, RestoreAfterInfeasibleFrameRevives) {
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(2), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(2), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);
  const std::vector<Time> before = engine.result().dist;

  const ConstraintGraph::Checkpoint cp = g.checkpoint();
  const LongestPathEngine::Checkpoint ecp = engine.checkpoint();
  g.addEdge(TaskId(2), TaskId(1), Duration(1), EdgeKind::kDelay);  // +cycle
  EXPECT_FALSE(engine.compute(TaskId(0)).feasible);

  g.rollbackTo(cp);
  engine.restore(ecp);
  const LongestPathResult& after = engine.compute(TaskId(0));
  ASSERT_TRUE(after.feasible);
  EXPECT_EQ(after.dist, before);
}

}  // namespace
}  // namespace paws
