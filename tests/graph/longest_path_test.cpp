#include "graph/longest_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/constraint_graph.hpp"

namespace paws {
namespace {

TEST(LongestPathTest, SingleVertex) {
  ConstraintGraph g(1);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[0], Time(0));
}

TEST(LongestPathTest, ChainDistances) {
  ConstraintGraph g(4);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(7), EdgeKind::kUserMin);
  g.addEdge(TaskId(2), TaskId(3), Duration(2), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[1], Time(5));
  EXPECT_EQ(r.dist[2], Time(12));
  EXPECT_EQ(r.dist[3], Time(14));
}

TEST(LongestPathTest, TakesLongestOfParallelPaths) {
  ConstraintGraph g(4);
  g.addEdge(TaskId(0), TaskId(1), Duration(3), EdgeKind::kUserMin);
  g.addEdge(TaskId(0), TaskId(2), Duration(10), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(3), Duration(1), EdgeKind::kUserMin);
  g.addEdge(TaskId(2), TaskId(3), Duration(1), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[3], Time(11));
}

TEST(LongestPathTest, NegativeBackEdgeWithinWindowIsFeasible) {
  // 1 at least 5 after 0, at most 12 after 0: both satisfiable.
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(0), Duration(-12), EdgeKind::kUserMax);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[1], Time(5));
}

TEST(LongestPathTest, ContradictoryWindowIsPositiveCycle) {
  // 1 at least 10 after 0 but at most 4 after 0: cycle weight 10-4 > 0.
  ConstraintGraph g(2);
  g.addEdge(TaskId(0), TaskId(1), Duration(10), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(0), Duration(-4), EdgeKind::kUserMax);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_FALSE(r.feasible);
  ASSERT_FALSE(r.cycle.empty());
  // The witness must include both vertices of the contradictory window.
  EXPECT_NE(std::find(r.cycle.begin(), r.cycle.end(), TaskId(0)),
            r.cycle.end());
  EXPECT_NE(std::find(r.cycle.begin(), r.cycle.end(), TaskId(1)),
            r.cycle.end());
}

TEST(LongestPathTest, CycleEdgesFormAClosedPositiveWalk) {
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(4), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(4), EdgeKind::kUserMin);
  g.addEdge(TaskId(2), TaskId(0), Duration(-6), EdgeKind::kUserMax);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_FALSE(r.feasible);
  ASSERT_FALSE(r.cycleEdges.empty());
  Duration total;
  for (EdgeId e : r.cycleEdges) total += g.edge(e).weight;
  EXPECT_GT(total, Duration::zero());
}

TEST(LongestPathTest, UnreachableVertexIsMinusInfinity) {
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(2), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[2], Time::minusInfinity());
}

TEST(LongestPathTest, IncrementalAfterEdgeAddMatchesFull) {
  ConstraintGraph g(5);
  g.addEdge(TaskId(0), TaskId(1), Duration(3), EdgeKind::kUserMin);
  g.addEdge(TaskId(0), TaskId(2), Duration(1), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(3), Duration(4), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);

  // Add edges and recompute incrementally.
  g.addEdge(TaskId(2), TaskId(3), Duration(20), EdgeKind::kDelay);
  g.addEdge(TaskId(3), TaskId(4), Duration(2), EdgeKind::kUserMin);
  const LongestPathResult& inc = engine.compute(TaskId(0));
  ASSERT_TRUE(inc.feasible);
  const std::vector<Time> incDist = inc.dist;

  LongestPathEngine fresh(g);
  const LongestPathResult& full = fresh.computeFull(TaskId(0));
  ASSERT_TRUE(full.feasible);
  EXPECT_EQ(incDist, full.dist);
  EXPECT_EQ(incDist[3], Time(21));
  EXPECT_EQ(incDist[4], Time(23));
}

TEST(LongestPathTest, RecomputeAfterRollbackDropsStaleDistances) {
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(3), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);

  const auto cp = g.checkpoint();
  g.addEdge(TaskId(0), TaskId(1), Duration(50), EdgeKind::kDelay);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);
  EXPECT_EQ(engine.result().dist[1], Time(50));

  g.rollbackTo(cp);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[1], Time(3)) << "distance must shrink after rollback";
}

TEST(LongestPathTest, IncrementalDetectsNewPositiveCycle) {
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(5), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(5), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible);

  g.addEdge(TaskId(2), TaskId(1), Duration(-7), EdgeKind::kUserMax);
  ASSERT_TRUE(engine.compute(TaskId(0)).feasible) << "window of 5..7 is fine";

  g.addEdge(TaskId(2), TaskId(1), Duration(1), EdgeKind::kSerialization);
  EXPECT_FALSE(engine.compute(TaskId(0)).feasible)
      << "2 before 1 and 1 before 2 with positive weights must cycle";
}

TEST(LongestPathTest, ZeroWeightCycleIsFeasible) {
  // sigma(1) == sigma(2) expressed as two zero-weight edges.
  ConstraintGraph g(3);
  g.addEdge(TaskId(0), TaskId(1), Duration(4), EdgeKind::kUserMin);
  g.addEdge(TaskId(1), TaskId(2), Duration(0), EdgeKind::kUserMin);
  g.addEdge(TaskId(2), TaskId(1), Duration(0), EdgeKind::kUserMin);
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[1], r.dist[2]);
}

TEST(LongestPathTest, LargeChainStressAndIncrementalConsistency) {
  constexpr std::size_t kN = 2000;
  ConstraintGraph g(kN);
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    g.addEdge(TaskId(static_cast<std::uint32_t>(i)),
              TaskId(static_cast<std::uint32_t>(i + 1)), Duration(1),
              EdgeKind::kUserMin);
  }
  LongestPathEngine engine(g);
  const LongestPathResult& r = engine.compute(TaskId(0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.dist[kN - 1], Time(kN - 1));

  g.addEdge(TaskId(0), TaskId(1000), Duration(5000), EdgeKind::kDelay);
  const LongestPathResult& r2 = engine.compute(TaskId(0));
  ASSERT_TRUE(r2.feasible);
  EXPECT_EQ(r2.dist[kN - 1], Time(5000 + (kN - 1 - 1000)));
}

}  // namespace
}  // namespace paws
