// Wire-level units: frame codec hostility and request/response payloads.
#include <gtest/gtest.h>

#include <string>

#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace paws::serve {
namespace {

TEST(FrameCodec, RoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kRequest, FrameType::kResponse, FrameType::kMetricsRequest,
        FrameType::kMetricsResponse}) {
    const std::string wire = encodeFrame(type, "hello");
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
    Frame frame;
    ASSERT_TRUE(decoder.next(frame));
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, "hello");
    EXPECT_FALSE(decoder.next(frame));
  }
}

TEST(FrameCodec, EmptyPayloadIsLegal) {
  const std::string wire = encodeFrame(FrameType::kMetricsRequest, "");
  EXPECT_EQ(wire.size(), kHeaderBytes);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameCodec, ByteAtATimeFeedReassembles) {
  const std::string wire = encodeFrame(FrameType::kRequest, "split me");
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(decoder.feed(&wire[i], 1));
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(decoder.next(frame)) << "frame complete too early at " << i;
    }
  }
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.payload, "split me");
}

TEST(FrameCodec, TwoFramesInOneFeed) {
  const std::string wire = encodeFrame(FrameType::kRequest, "one") +
                           encodeFrame(FrameType::kRequest, "two");
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  Frame a;
  Frame b;
  ASSERT_TRUE(decoder.next(a));
  ASSERT_TRUE(decoder.next(b));
  EXPECT_EQ(a.payload, "one");
  EXPECT_EQ(b.payload, "two");
}

TEST(FrameCodec, BadMagicLatchesFailure) {
  std::string wire = encodeFrame(FrameType::kRequest, "x");
  wire[0] = 'Q';
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(wire.data(), wire.size()));
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.error(), "bad_magic");
  // Latching: even a pristine frame is refused after poison.
  const std::string good = encodeFrame(FrameType::kRequest, "y");
  EXPECT_FALSE(decoder.feed(good.data(), good.size()));
}

TEST(FrameCodec, BadVersionBadTypeBadReserved) {
  {
    std::string wire = encodeFrame(FrameType::kRequest, "x");
    wire[4] = '\x02';
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.feed(wire.data(), wire.size()));
    EXPECT_EQ(decoder.error(), "bad_version");
  }
  {
    std::string wire = encodeFrame(FrameType::kRequest, "x");
    wire[5] = '\x09';
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.feed(wire.data(), wire.size()));
    EXPECT_EQ(decoder.error(), "bad_type");
  }
  {
    std::string wire = encodeFrame(FrameType::kRequest, "x");
    wire[6] = '\x01';
    FrameDecoder decoder;
    EXPECT_FALSE(decoder.feed(wire.data(), wire.size()));
    EXPECT_EQ(decoder.error(), "bad_reserved");
  }
}

TEST(FrameCodec, OversizedLengthRefusedBeforeAllocation) {
  std::string wire = encodeFrame(FrameType::kRequest, "x");
  // Declared length 2 GiB — must be refused on the header alone.
  wire[8] = '\x7f';
  wire[9] = '\xff';
  wire[10] = '\xff';
  wire[11] = '\xff';
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(wire.data(), wire.size()));
  EXPECT_EQ(decoder.error(), "oversized");
}

TEST(RequestPayload, FormatParsesBackIdentically) {
  Request request;
  request.scheduler = "optimal";
  request.trials = 9;
  request.timeoutMs = 750;
  request.problemText = "problem \"p\" {\n  pmax 10W\n}\n";
  const ParseRequestResult parsed = parseRequest(formatRequest(request));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.scheduler, "optimal");
  EXPECT_EQ(parsed.request.trials, 9u);
  EXPECT_EQ(parsed.request.timeoutMs, 750);
  EXPECT_EQ(parsed.request.problemText, request.problemText);
}

TEST(RequestPayload, DefaultsApplyWhenHeadersAbsent) {
  const ParseRequestResult parsed =
      parseRequest("paws-request/1\n---\nproblem \"p\" {}\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.scheduler, "pipeline");
  EXPECT_EQ(parsed.request.timeoutMs, 0);
}

TEST(RequestPayload, EveryRejectionHasItsStableReason) {
  EXPECT_EQ(parseRequest("nope/1\n---\nx").error, "bad_preamble");
  EXPECT_EQ(parseRequest("paws-request/1\nscheduler: dijkstra\n---\nx").error,
            "bad_scheduler");
  EXPECT_EQ(parseRequest("paws-request/1\ntimeout_ms: -5\n---\nx").error,
            "bad_timeout");
  EXPECT_EQ(parseRequest("paws-request/1\ntrials: 0\n---\nx").error,
            "bad_trials");
  EXPECT_EQ(parseRequest("paws-request/1\ntrials: 65\n---\nx").error,
            "bad_trials");
  EXPECT_EQ(parseRequest("paws-request/1\nscheduler: pipeline\n").error,
            "missing_separator");
  EXPECT_EQ(parseRequest("paws-request/1\n---\n").error, "empty_problem");
  const std::string longLine(kMaxHeaderLineBytes + 1, 'a');
  EXPECT_EQ(parseRequest("paws-request/1\n" + longLine + "\n---\nx").error,
            "header_too_long");
  std::string many = "paws-request/1\n";
  for (std::size_t i = 0; i < kMaxHeaderLines + 1; ++i) many += "k: v\n";
  EXPECT_EQ(parseRequest(many + "---\nx").error, "too_many_headers");
}

TEST(RequestPayload, UnknownHeadersAreIgnored) {
  const ParseRequestResult parsed = parseRequest(
      "paws-request/1\nx-future-key: whatever\n---\nproblem \"p\" {}\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
}

TEST(RequestPayload, ClientTimeoutCeilingIsAHardEdge) {
  const std::string atCeiling =
      "paws-request/1\ntimeout_ms: " + std::to_string(kMaxClientTimeoutMs) +
      "\n---\nproblem \"p\" {}\n";
  const ParseRequestResult ok = parseRequest(atCeiling);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.request.timeoutMs, kMaxClientTimeoutMs);
  const std::string over =
      "paws-request/1\ntimeout_ms: " +
      std::to_string(kMaxClientTimeoutMs + 1) + "\n---\nproblem \"p\" {}\n";
  EXPECT_EQ(parseRequest(over).error, "bad_timeout");
}

TEST(ResponsePayload, JsonRoundTrip) {
  Response response;
  response.outcome = "ok";
  response.reason = "";
  response.mode = "degraded";
  response.degraded = true;
  response.cacheHit = true;
  response.finishTicks = 42;
  response.energyCostMwt = 1234;
  response.scheduleDigest = "00deadbeef001122";
  response.scheduleText = "schedule \"p\" {\n  task a @ 0\n}\n";
  response.serviceUs = 777;
  Response parsed;
  ASSERT_TRUE(responseFromJson(toJson(response), parsed));
  EXPECT_EQ(parsed.outcome, "ok");
  EXPECT_EQ(parsed.mode, "degraded");
  EXPECT_TRUE(parsed.degraded);
  EXPECT_TRUE(parsed.cacheHit);
  EXPECT_EQ(parsed.finishTicks, 42);
  EXPECT_EQ(parsed.energyCostMwt, 1234);
  EXPECT_EQ(parsed.scheduleDigest, "00deadbeef001122");
  EXPECT_EQ(parsed.scheduleText, response.scheduleText);
  EXPECT_EQ(parsed.serviceUs, 777);
  EXPECT_TRUE(parsed.succeeded());
}

TEST(ResponsePayload, RefusesGarbageAndWrongSchema) {
  Response out;
  EXPECT_FALSE(responseFromJson("not json", out));
  EXPECT_FALSE(responseFromJson("{\"schema\": 99, \"outcome\": \"ok\"}", out));
}

TEST(ResponsePayload, DigestIsFixedWidthHexAndStable) {
  const std::string a = scheduleDigest("schedule text");
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a, scheduleDigest("schedule text"));
  EXPECT_NE(a, scheduleDigest("schedule text "));
  for (const char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

}  // namespace
}  // namespace paws::serve
