// ServiceLadder rung mechanics: fast escalation, slow de-escalation.
#include <gtest/gtest.h>

#include "serve/ladder.hpp"

namespace paws::serve {
namespace {

LadderSignals depth(std::size_t used, std::size_t capacity) {
  LadderSignals s;
  s.queueDepth = used;
  s.queueCapacity = capacity;
  return s;
}

TEST(ServiceLadder, StartsHealthyAndStaysCalm) {
  ServiceLadder ladder;
  EXPECT_EQ(ladder.mode(), ServiceMode::kHealthy);
  for (int i = 0; i < 100; ++i) {
    const ModeChange change = ladder.observe(depth(0, 16));
    EXPECT_FALSE(change.changed);
  }
  EXPECT_EQ(ladder.mode(), ServiceMode::kHealthy);
}

TEST(ServiceLadder, EscalatesStraightToTheDemandedRung) {
  ServiceLadder ladder;
  // 16/16 full — straight past degraded and cache_only to reject_new.
  const ModeChange change = ladder.observe(depth(16, 16));
  ASSERT_TRUE(change.changed);
  EXPECT_EQ(change.from, ServiceMode::kHealthy);
  EXPECT_EQ(change.to, ServiceMode::kRejectNew);
  EXPECT_EQ(ladder.mode(), ServiceMode::kRejectNew);
}

TEST(ServiceLadder, EachThresholdMapsToItsRung) {
  {
    ServiceLadder ladder;
    ladder.observe(depth(8, 16));  // 500 permille
    EXPECT_EQ(ladder.mode(), ServiceMode::kDegraded);
  }
  {
    ServiceLadder ladder;
    ladder.observe(depth(13, 16));  // 812 permille
    EXPECT_EQ(ladder.mode(), ServiceMode::kCacheOnly);
  }
  {
    ServiceLadder ladder;
    ladder.observe(depth(7, 16));  // 437 permille — still healthy
    EXPECT_EQ(ladder.mode(), ServiceMode::kHealthy);
  }
}

TEST(ServiceLadder, DeescalatesOneRungAfterCleanStreak) {
  LadderConfig config;
  config.deescalateAfterClean = 4;
  ServiceLadder ladder(config);
  ladder.observe(depth(16, 16));
  ASSERT_EQ(ladder.mode(), ServiceMode::kRejectNew);
  // Three calm observations: not enough.
  for (int i = 0; i < 3; ++i) ladder.observe(depth(0, 16));
  EXPECT_EQ(ladder.mode(), ServiceMode::kRejectNew);
  // Fourth completes the streak — exactly ONE rung down.
  const ModeChange change = ladder.observe(depth(0, 16));
  ASSERT_TRUE(change.changed);
  EXPECT_EQ(change.to, ServiceMode::kCacheOnly);
  // A pressure blip resets the streak.
  for (int i = 0; i < 3; ++i) ladder.observe(depth(0, 16));
  ladder.observe(depth(16, 16));
  EXPECT_EQ(ladder.mode(), ServiceMode::kRejectNew);
}

TEST(ServiceLadder, FullRecoveryWalksEveryRungDown) {
  LadderConfig config;
  config.deescalateAfterClean = 2;
  ServiceLadder ladder(config);
  ladder.observe(depth(16, 16));
  ASSERT_EQ(ladder.mode(), ServiceMode::kRejectNew);
  int transitions = 0;
  for (int i = 0; i < 20 && ladder.mode() != ServiceMode::kHealthy; ++i) {
    if (ladder.observe(depth(0, 16)).changed) ++transitions;
  }
  EXPECT_EQ(ladder.mode(), ServiceMode::kHealthy);
  EXPECT_EQ(transitions, 3);  // reject_new -> cache_only -> degraded -> healthy
}

TEST(ServiceLadder, P99TriggerForcesAtLeastDegraded) {
  ServiceLadder ladder;
  for (int i = 0; i < 256; ++i) ladder.recordServiceUs(5'000'000);
  LadderSignals s = depth(0, 16);  // queue empty — depth says healthy
  s.p99ServiceUs = ladder.p99ServiceUs();
  s.defaultBudgetUs = 2'000'000;   // p99 = 2.5x budget > 2x trigger
  ladder.observe(s);
  EXPECT_EQ(ladder.mode(), ServiceMode::kDegraded);
}

TEST(ServiceLadder, UnboundedQueueDisablesDepthTrigger) {
  ServiceLadder ladder;
  ladder.observe(depth(1000, 0));  // capacity 0 = unbounded
  EXPECT_EQ(ladder.mode(), ServiceMode::kHealthy);
}

TEST(ServiceLadder, P99IsNearestRankOverTheWindow) {
  ServiceLadder ladder;
  EXPECT_EQ(ladder.p99ServiceUs(), 0);
  for (int i = 1; i <= 100; ++i) ladder.recordServiceUs(i * 10);
  EXPECT_EQ(ladder.p99ServiceUs(), 990);
}

}  // namespace
}  // namespace paws::serve
