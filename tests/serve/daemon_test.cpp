// End-to-end daemon tests over real sockets: one process, real TCP/unix
// transports, the full admission → solve → respond path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "cache/cached_solve.hpp"
#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace paws::serve {
namespace {

namespace fs = std::filesystem;

constexpr const char* kTinyProblem =
    "problem \"tiny\" {\n"
    "  pmax 10W\n"
    "  resource cpu\n"
    "  resource bus\n"
    "  task a { resource cpu delay 2 power 3W }\n"
    "  task b { resource bus delay 3 power 4W }\n"
    "  task c { resource cpu delay 1 power 2W }\n"
    "  precedes a -> b\n"
    "  precedes b -> c\n"
    "}\n";

/// Starts a daemon on an ephemeral port, runs it on a background thread,
/// drains it (exit code checked) on teardown.
class DaemonFixture : public ::testing::Test {
 protected:
  void boot() {
    daemon = std::make_unique<Daemon>(config);
    std::string error;
    ASSERT_TRUE(daemon->start(&error)) << error;
    runner = std::thread([this] { exitCode = daemon->run(); });
  }

  void shutdownAndExpectCleanExit() {
    if (!runner.joinable()) return;
    daemon->requestStop();
    runner.join();
    EXPECT_EQ(exitCode, 0);
  }

  void TearDown() override { shutdownAndExpectCleanExit(); }

  Request tinyRequest(const char* scheduler = "pipeline") {
    Request request;
    request.scheduler = scheduler;
    request.problemText = kTinyProblem;
    return request;
  }

  DaemonConfig config;
  std::unique_ptr<Daemon> daemon;
  std::thread runner;
  int exitCode = -1;
};

TEST_F(DaemonFixture, SolvesOneRequestEndToEnd) {
  boot();
  Response response;
  std::string error;
  ASSERT_TRUE(requestOnce(daemon->boundAddress(), tinyRequest(), response,
                          10000, &error))
      << error;
  EXPECT_EQ(response.outcome, "ok") << response.reason;
  EXPECT_EQ(response.mode, "healthy");
  EXPECT_FALSE(response.degraded);
  EXPECT_GT(response.finishTicks, 0);
  ASSERT_FALSE(response.scheduleText.empty());
  // The digest is derivable from the shipped text — a client can verify.
  EXPECT_EQ(response.scheduleDigest, scheduleDigest(response.scheduleText));
  EXPECT_GE(response.serviceUs, 0);
}

TEST_F(DaemonFixture, SecondIdenticalRequestIsACacheHit) {
  boot();
  Response first;
  Response second;
  ASSERT_TRUE(
      requestOnce(daemon->boundAddress(), tinyRequest(), first, 10000));
  ASSERT_TRUE(
      requestOnce(daemon->boundAddress(), tinyRequest(), second, 10000));
  EXPECT_FALSE(first.cacheHit);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(first.scheduleDigest, second.scheduleDigest);
}

TEST_F(DaemonFixture, DigestMatchesALocalSingleThreadedSolve) {
  boot();
  Response response;
  ASSERT_TRUE(requestOnce(daemon->boundAddress(), tinyRequest("optimal"),
                          response, 30000));
  ASSERT_EQ(response.outcome, "ok") << response.reason;

  const io::ParseResult parsed = io::parseProblem(kTinyProblem);
  ASSERT_TRUE(parsed.ok());
  cache::SolveSpec spec;
  spec.scheduler = "optimal";
  spec.jobs = 1;
  const ScheduleResult local =
      cache::solveThroughCache(nullptr, *parsed.problem, spec);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(response.scheduleDigest,
            scheduleDigest(io::scheduleToText(*local.schedule, "optimal")));
}

TEST_F(DaemonFixture, PipelinedRequestsOnOneConnection) {
  boot();
  Client client;
  ASSERT_TRUE(client.connect(daemon->boundAddress()));
  // Two requests back-to-back before reading — exercises the daemon's
  // "data after response is pipelining, not disconnect" distinction.
  ASSERT_TRUE(client.sendRequest(tinyRequest()));
  ASSERT_TRUE(client.sendRequest(tinyRequest()));
  Response a;
  Response b;
  ASSERT_TRUE(client.readResponse(a, 10000));
  ASSERT_TRUE(client.readResponse(b, 10000));
  EXPECT_EQ(a.outcome, "ok");
  EXPECT_EQ(b.outcome, "ok");
  EXPECT_TRUE(b.cacheHit);
}

TEST_F(DaemonFixture, UnparseableProblemIsStructuredInvalid) {
  boot();
  Request request;
  request.problemText = "problem \"broken\" { pmax banana }\n";
  Response response;
  ASSERT_TRUE(requestOnce(daemon->boundAddress(), request, response, 10000));
  EXPECT_EQ(response.outcome, "invalid");
  EXPECT_FALSE(response.reason.empty());
}

TEST_F(DaemonFixture, InfeasibleProblemIsStructuredNotACrash) {
  boot();
  Request request;
  // a must precede b AND b must finish at least 100 before a starts —
  // contradiction, no valid schedule.
  request.problemText =
      "problem \"contradiction\" {\n"
      "  pmax 10W\n"
      "  resource cpu\n"
      "  task a { resource cpu delay 2 power 3W }\n"
      "  task b { resource cpu delay 2 power 3W }\n"
      "  precedes a -> b\n"
      "  min b -> a 100\n"
      "}\n";
  Response response;
  ASSERT_TRUE(requestOnce(daemon->boundAddress(), request, response, 10000));
  EXPECT_EQ(response.outcome, "infeasible");
}

TEST_F(DaemonFixture, MalformedFrameGetsInvalidThenClose) {
  boot();
  Client client;
  ASSERT_TRUE(client.connect(daemon->boundAddress()));
  ASSERT_TRUE(client.rawSend("GARBAGE-NOT-A-FRAME-HEADER!!"));
  Response response;
  ASSERT_TRUE(client.readResponse(response, 10000));
  EXPECT_EQ(response.outcome, "invalid");
  EXPECT_EQ(response.reason, "bad_magic");
}

TEST_F(DaemonFixture, BadRequestPayloadNamesTheReason) {
  boot();
  Client client;
  ASSERT_TRUE(client.connect(daemon->boundAddress()));
  const std::string wire =
      encodeFrame(FrameType::kRequest, "paws-request/9\n---\nx");
  ASSERT_TRUE(client.rawSend(wire));
  Response response;
  ASSERT_TRUE(client.readResponse(response, 10000));
  EXPECT_EQ(response.outcome, "invalid");
  EXPECT_EQ(response.reason, "bad_preamble");
}

TEST_F(DaemonFixture, MetricsScrapeIsOpenMetricsWithServeCounters) {
  boot();
  Response response;
  ASSERT_TRUE(
      requestOnce(daemon->boundAddress(), tinyRequest(), response, 10000));
  Client client;
  ASSERT_TRUE(client.connect(daemon->boundAddress()));
  ASSERT_TRUE(client.sendMetricsRequest());
  std::string body;
  ASSERT_TRUE(client.readMetrics(body, 10000));
  EXPECT_NE(body.find("serve_accepted"), std::string::npos) << body;
  EXPECT_NE(body.find("serve_completed"), std::string::npos);
  EXPECT_NE(body.find("exec_tasks_run"), std::string::npos);
  EXPECT_NE(body.find("cache_"), std::string::npos);
  EXPECT_NE(body.find("# EOF"), std::string::npos);
}

TEST_F(DaemonFixture, ServesOverUnixSocket) {
  const fs::path sock = fs::temp_directory_path() / "pawsd_test.sock";
  fs::remove(sock);
  config.address = "unix:" + sock.string();
  boot();
  EXPECT_EQ(daemon->boundAddress(), config.address);
  Response response;
  std::string error;
  ASSERT_TRUE(requestOnce(config.address, tinyRequest(), response, 10000,
                          &error))
      << error;
  EXPECT_EQ(response.outcome, "ok");
  shutdownAndExpectCleanExit();
  // Drain unlinks the socket path.
  EXPECT_FALSE(fs::exists(sock));
}

TEST_F(DaemonFixture, DrainFlushesCacheAndASuccessorWarmStartsFromIt) {
  const fs::path dir =
      fs::temp_directory_path() / "pawsd_cache_drain_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  config.cacheDir = dir.string();
  boot();
  Response cold;
  ASSERT_TRUE(
      requestOnce(daemon->boundAddress(), tinyRequest(), cold, 10000));
  EXPECT_FALSE(cold.cacheHit);
  shutdownAndExpectCleanExit();
  EXPECT_TRUE(fs::exists(dir / "paws_cache.json"));

  // A fresh daemon over the same --cache-dir serves the request from the
  // persisted entry on its very first exchange.
  DaemonConfig secondConfig;
  secondConfig.cacheDir = dir.string();
  Daemon second(secondConfig);
  std::string error;
  ASSERT_TRUE(second.start(&error)) << error;
  std::thread secondRunner([&second] { second.run(); });
  Response warm;
  ASSERT_TRUE(
      requestOnce(second.boundAddress(), tinyRequest(), warm, 10000));
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.scheduleDigest, cold.scheduleDigest);
  second.requestStop();
  secondRunner.join();
  fs::remove_all(dir);
}

TEST_F(DaemonFixture, DisconnectMidSolveIsCancelledNotCrashed) {
  config.defaultTimeoutMs = 30000;
  boot();
  {
    Client client;
    ASSERT_TRUE(client.connect(daemon->boundAddress()));
    Request request = tinyRequest("optimal");
    request.trials = 1;
    ASSERT_TRUE(client.sendRequest(request));
    // Vanish immediately — the daemon must cancel and carry on.
    client.abortiveClose();
  }
  // The daemon still serves the next client normally.
  Response response;
  ASSERT_TRUE(
      requestOnce(daemon->boundAddress(), tinyRequest(), response, 10000));
  EXPECT_EQ(response.outcome, "ok");
}

TEST_F(DaemonFixture, DrainingDaemonRefusesNewWorkStructurally) {
  boot();
  daemon->requestStop();
  // Give run() a beat to raise the draining flag; requests racing the
  // stop may still be served, so accept either structured answer.
  Response response;
  const bool got =
      requestOnce(daemon->boundAddress(), tinyRequest(), response, 2000);
  if (got) {
    EXPECT_TRUE(response.outcome == "ok" ||
                (response.outcome == "overloaded" &&
                 response.reason == "draining"))
        << response.outcome << "/" << response.reason;
  }
  runner.join();
  EXPECT_EQ(exitCode, 0);
}

}  // namespace
}  // namespace paws::serve
