// Service-level chaos: a deliberately tiny daemon under a hostile client
// mix — bursts past capacity, slow writers, mid-request disconnects,
// malformed frames — all at once, on real sockets, under the sanitizer
// matrix. The invariants throughout:
//
//   * the daemon never crashes, hangs, or leaks connections;
//   * every well-formed request that stays connected gets a STRUCTURED
//     answer — a known outcome string, never a dropped connection;
//   * after the storm the daemon serves a clean request normally;
//   * a drain under load still exits 0 within its budget.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/rng.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace paws::serve {
namespace {

constexpr const char* kStormProblem =
    "problem \"storm\" {\n"
    "  pmax 12W\n"
    "  resource cpu\n"
    "  resource dsp\n"
    "  task a { resource cpu delay 3 power 5W }\n"
    "  task b { resource dsp delay 4 power 6W }\n"
    "  task c { resource cpu delay 2 power 4W }\n"
    "  task d { resource dsp delay 3 power 5W }\n"
    "  precedes a -> b\n"
    "  precedes c -> d\n"
    "  min a -> c 1\n"
    "}\n";

bool knownOutcome(const std::string& outcome) {
  return outcome == "ok" || outcome == "anytime" || outcome == "infeasible" ||
         outcome == "invalid" || outcome == "overloaded" ||
         outcome == "cancelled" || outcome == "deadline" ||
         outcome == "budget" || outcome == "error";
}

Request stormRequest(std::uint32_t salt) {
  Request request;
  // Distinct problem names defeat the cache so bursts really queue.
  std::string text = kStormProblem;
  const std::string name = "storm" + std::to_string(salt);
  text.replace(text.find("storm"), 5, name);
  request.problemText = text;
  request.scheduler = salt % 3 == 0 ? "optimal" : "pipeline";
  request.timeoutMs = 500;
  return request;
}

struct StormStats {
  std::atomic<std::uint64_t> structured{0};
  std::atomic<std::uint64_t> succeeded{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> disconnected{0};
  std::atomic<std::uint64_t> malformedAnswered{0};
  std::atomic<std::uint64_t> unstructured{0};
};

/// One chaos client: rolls its behaviour from a private SplitMix64 stream
/// and records what came back.
void chaosClient(const std::string& address, std::uint64_t seed,
                 std::size_t requests, StormStats& stats) {
  fault::SplitMix64 rng(seed);
  for (std::size_t i = 0; i < requests; ++i) {
    Client client;
    if (!client.connect(address)) {
      // The storm may exhaust the listen backlog briefly; that is a
      // transport refusal, not a protocol violation.
      continue;
    }
    const std::uint64_t roll = rng.next() % 100;
    if (roll < 15) {
      // Malformed frame lane.
      std::string garbage;
      const std::size_t n = 1 + rng.next() % 64;
      for (std::size_t k = 0; k < n; ++k) {
        garbage.push_back(static_cast<char>(rng.next() & 0xff));
      }
      (void)client.rawSend(garbage);
      Response response;
      if (client.readResponse(response, 300)) {
        stats.malformedAnswered.fetch_add(1);
        EXPECT_TRUE(response.outcome == "invalid") << response.outcome;
      }
      continue;
    }
    const Request request =
        stormRequest(static_cast<std::uint32_t>(seed * 1000 + i));
    if (roll < 30) {
      // Slow-writer lane: trickle the frame in small chunks.
      const std::string wire =
          encodeFrame(FrameType::kRequest, formatRequest(request));
      std::size_t off = 0;
      bool alive = true;
      while (off < wire.size() && alive) {
        const std::size_t chunk =
            std::min<std::size_t>(wire.size() - off, 1 + rng.next() % 16);
        alive = client.rawSend(wire.substr(off, chunk));
        off += chunk;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!alive) continue;
    } else {
      if (!client.sendRequest(request)) continue;
    }
    if (roll >= 30 && roll < 45) {
      // Disconnect lane: vanish without reading, half abortively.
      if (rng.chance(500)) {
        client.abortiveClose();
      } else {
        client.close();
      }
      stats.disconnected.fetch_add(1);
      continue;
    }
    Response response;
    if (!client.readResponse(response, 15000)) {
      stats.unstructured.fetch_add(1);
      continue;
    }
    stats.structured.fetch_add(1);
    EXPECT_TRUE(knownOutcome(response.outcome)) << response.outcome;
    if (response.succeeded()) stats.succeeded.fetch_add(1);
    if (response.outcome == "overloaded") {
      stats.shed.fetch_add(1);
      EXPECT_FALSE(response.reason.empty());
    }
  }
}

TEST(ServiceChaos, StormOfHostileClientsNeverBreaksTheContract) {
  DaemonConfig config;
  config.solverThreads = 2;
  config.maxQueued = 4;  // tiny on purpose: the storm is 4x+ capacity
  config.defaultTimeoutMs = 1000;
  config.frameStallMs = 3000;
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  std::thread runner([&daemon] { daemon.run(); });

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsEach = 6;
  StormStats stats;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      chaosClient(daemon.boundAddress(), 0xc4a05 + c, kRequestsEach, stats);
    });
  }
  for (auto& t : clients) t.join();

  // Every answered exchange was structured; nothing timed out unanswered.
  EXPECT_EQ(stats.unstructured.load(), 0u);
  EXPECT_GT(stats.structured.load(), 0u);
  // The run must have actually exercised the interesting lanes.
  EXPECT_GT(stats.disconnected.load(), 0u);

  // After the storm: a clean request on a healthy-or-recovering daemon
  // still gets a full-fidelity answer.
  Request calm;
  calm.problemText = kStormProblem;
  Response response;
  ASSERT_TRUE(requestOnce(daemon.boundAddress(), calm, response, 15000));
  EXPECT_TRUE(knownOutcome(response.outcome));

  daemon.requestStop();
  runner.join();
}

TEST(ServiceChaos, BurstBeyondCapacityShedsStructuredAndRecovers) {
  DaemonConfig config;
  config.solverThreads = 1;
  config.maxQueued = 2;
  config.defaultTimeoutMs = 2000;
  // Instant de-escalation keeps the recovery phase deterministic.
  config.ladder.deescalateAfterClean = 1;
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  std::thread runner([&daemon] { daemon.run(); });

  // A synchronized wave of expensive requests, several times capacity.
  constexpr std::size_t kWave = 12;
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> broken{0};
  std::vector<std::thread> wave;
  wave.reserve(kWave);
  for (std::size_t c = 0; c < kWave; ++c) {
    wave.emplace_back([&, c] {
      Response response;
      if (!requestOnce(daemon.boundAddress(),
                       stormRequest(static_cast<std::uint32_t>(7000 + c)),
                       response, 20000)) {
        broken.fetch_add(1);
        return;
      }
      if (response.outcome == "overloaded") {
        shed.fetch_add(1);
        EXPECT_FALSE(response.reason.empty());
        EXPECT_TRUE(response.scheduleText.empty());
      } else if (response.succeeded()) {
        served.fetch_add(1);
      }
    });
  }
  for (auto& t : wave) t.join();

  // Nobody got a dropped connection, at least someone was served, and a
  // wave this far past a 2-deep queue must have shed.
  EXPECT_EQ(broken.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(shed.load(), 0u);

  // Recovery: with the storm gone the ladder walks home and a fresh
  // request is served at full fidelity.
  for (int attempt = 0; attempt < 100; ++attempt) {
    Response response;
    ASSERT_TRUE(requestOnce(daemon.boundAddress(),
                            stormRequest(9999), response, 15000));
    if (response.succeeded() && !response.degraded) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(daemon.mode(), ServiceMode::kHealthy);

  daemon.requestStop();
  runner.join();
}

TEST(ServiceChaos, DrainUnderLoadStillExitsZeroWithinBudget) {
  DaemonConfig config;
  config.solverThreads = 2;
  config.maxQueued = 8;
  config.defaultTimeoutMs = 5000;
  config.drainBudgetMs = 1500;
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  int exitCode = -1;
  std::thread runner([&daemon, &exitCode] { exitCode = daemon.run(); });

  // Load the daemon, then pull the plug while requests are in flight.
  std::vector<std::thread> load;
  for (std::size_t c = 0; c < 6; ++c) {
    load.emplace_back([&, c] {
      Response response;
      (void)requestOnce(daemon.boundAddress(),
                        stormRequest(static_cast<std::uint32_t>(5000 + c)),
                        response, 20000);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto drainStart = std::chrono::steady_clock::now();
  daemon.requestStop();
  runner.join();
  const auto drainMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - drainStart)
                           .count();
  EXPECT_EQ(exitCode, 0);
  // Budget + cancel grace + teardown slack, not unbounded.
  EXPECT_LT(drainMs, 10000);
  for (auto& t : load) t.join();

  // The drain left a trace breadcrumb.
  bool sawDrainEvent = false;
  for (const obs::TraceEvent& event : daemon.trace().events()) {
    if (event.kind == obs::TraceEventKind::kServeDrain) sawDrainEvent = true;
  }
  EXPECT_TRUE(sawDrainEvent);
}

}  // namespace
}  // namespace paws::serve
