// Property sweep for the runtime executor over random environments:
// accounting invariants that must hold no matter what the sky does.
#include <gtest/gtest.h>

#include "gen/random_environment.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"
#include "sched/power_aware_scheduler.hpp"

namespace paws::runtime {
namespace {

using namespace paws::literals;
using rover::RoverCase;

class ExecutorProperty : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  static void SetUpTestSuite() {
    problems_ = new std::vector<Problem>;
    schedules_ = new std::vector<Schedule>;
    for (const RoverCase c :
         {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
      problems_->push_back(rover::makeRoverProblem(c, 1));
    }
    for (const Problem& p : *problems_) {
      PowerAwareScheduler scheduler(p);
      ScheduleResult r = scheduler.schedule();
      ASSERT_TRUE(r.ok());
      schedules_->push_back(std::move(*r.schedule));
    }
  }
  static void TearDownTestSuite() {
    delete problems_;
    delete schedules_;
    problems_ = nullptr;
    schedules_ = nullptr;
  }

  static std::vector<CaseBinding> bindings() {
    return {
        {"best", Watts::fromWatts(14.9), &(*problems_)[0], (*schedules_)[0],
         2},
        {"typical", 12_W, &(*problems_)[1], (*schedules_)[1], 2},
        {"worst", Watts::zero(), &(*problems_)[2], (*schedules_)[2], 2},
    };
  }

  static std::vector<Problem>* problems_;
  static std::vector<Schedule>* schedules_;
};

std::vector<Problem>* ExecutorProperty::problems_ = nullptr;
std::vector<Schedule>* ExecutorProperty::schedules_ = nullptr;

TEST_P(ExecutorProperty, AccountingInvariantsUnderRandomSkies) {
  EnvironmentConfig cfg;
  cfg.seed = GetParam();
  GeneratedEnvironment env = generateRandomEnvironment(cfg);
  const Energy capacity = env.battery.capacity();

  RuntimeExecutor executor(env.solar, env.battery, bindings());
  ExecutorConfig config;
  config.targetSteps = 24;
  config.traceTasks = false;
  config.maxIterations = 200;
  const ExecutionResult r = executor.run(config);

  // Battery can never be over-drawn.
  EXPECT_LE(r.batteryDrawn, capacity) << "seed " << GetParam();
  // Steps only come in whole iterations.
  EXPECT_EQ(r.steps % 2, 0) << "seed " << GetParam();
  // Completion implies the target, incompletion implies a cause.
  if (r.complete) {
    EXPECT_GE(r.steps, config.targetSteps);
  } else {
    const bool explained =
        r.batteryDepleted ||
        (!r.trace.empty() &&
         (r.trace.back().kind == EventKind::kNoFeasibleSchedule ||
          r.trace.back().kind == EventKind::kBatteryDepleted)) ||
        r.steps < config.targetSteps;  // iteration cap
    EXPECT_TRUE(explained) << "seed " << GetParam();
  }
  // Trace timestamps are well-formed (non-negative, last not before first).
  if (!r.trace.empty()) {
    EXPECT_GE(r.trace.front().at, Time(0));
    EXPECT_GE(r.trace.back().at, r.trace.front().at);
  }
  // Determinism.
  RuntimeExecutor again(env.solar, env.battery, bindings());
  const ExecutionResult r2 = again.run(config);
  EXPECT_EQ(r.steps, r2.steps);
  EXPECT_EQ(r.batteryDrawn, r2.batteryDrawn);
  EXPECT_EQ(r.brownouts, r2.brownouts);
}

TEST_P(ExecutorProperty, PushThroughNeverSlowerThanAbort) {
  EnvironmentConfig cfg;
  cfg.seed = GetParam() * 131 + 5;
  GeneratedEnvironment env = generateRandomEnvironment(cfg);

  ExecutorConfig push;
  push.targetSteps = 12;
  push.traceTasks = false;
  push.maxIterations = 100;
  ExecutorConfig abort = push;
  abort.abortOnBrownout = true;

  RuntimeExecutor executor(env.solar, env.battery, bindings());
  const ExecutionResult rp = executor.run(push);
  const ExecutionResult ra = executor.run(abort);
  // Aborted iterations grant no steps, so the abort policy can only make
  // fewer steps per unit time.
  if (rp.complete && ra.complete) {
    EXPECT_LE(rp.finishedAt, ra.finishedAt) << "seed " << cfg.seed;
  }
  EXPECT_GE(rp.steps, ra.steps) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperty, ::testing::Range(1u, 21u));

TEST(RandomEnvironmentTest, DeterministicPerSeed) {
  EnvironmentConfig cfg;
  cfg.seed = 42;
  const GeneratedEnvironment a = generateRandomEnvironment(cfg);
  const GeneratedEnvironment b = generateRandomEnvironment(cfg);
  EXPECT_EQ(a.solar.phases().size(), b.solar.phases().size());
  for (std::size_t i = 0; i < a.solar.phases().size(); ++i) {
    EXPECT_EQ(a.solar.phases()[i].start, b.solar.phases()[i].start);
    EXPECT_EQ(a.solar.phases()[i].level, b.solar.phases()[i].level);
  }
  EXPECT_EQ(a.battery.capacity(), b.battery.capacity());
  EXPECT_EQ(a.battery.maxOutput(), b.battery.maxOutput());
}

TEST(RandomEnvironmentTest, RespectsRanges) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    EnvironmentConfig cfg;
    cfg.seed = seed;
    const GeneratedEnvironment env = generateRandomEnvironment(cfg);
    EXPECT_EQ(env.solar.phases().front().start, Time(0));
    for (const auto& phase : env.solar.phases()) {
      EXPECT_GE(phase.level.milliwatts(), cfg.minSolarMw);
      EXPECT_LE(phase.level.milliwatts(), cfg.maxSolarMw);
    }
    EXPECT_GE(env.battery.maxOutput().milliwatts(), cfg.minBatteryMw);
    EXPECT_LE(env.battery.capacity().milliwattTicks(), cfg.maxCapacityMwt);
  }
}

}  // namespace
}  // namespace paws::runtime
