// System criticality-mode tests: escalation triggers, wholesale shedding,
// amended-budget repair, the structured-infeasible dead end, de-escalation
// recovery, and the bit-identity of mode-unaware runs.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"
#include "sched/power_aware_scheduler.hpp"

namespace paws::runtime {
namespace {

using namespace paws::literals;
using fault::FaultPlan;
using rover::RoverCase;

std::string renderTrace(const ExecutionResult& r) {
  std::string out;
  for (const Event& e : r.trace) {
    out += std::to_string(e.at.ticks());
    out += ' ';
    out += toString(e.kind);
    out += ' ';
    out += e.detail;
    out += '\n';
  }
  return out;
}

int countEvents(const ExecutionResult& r, EventKind kind) {
  int n = 0;
  for (const Event& e : r.trace) {
    if (e.kind == kind) ++n;
  }
  return n;
}

/// Rover fixture carrying the mission criticality ladder (wheel heaters
/// rank 3, steering heaters rank 2 — ModePolicy::missionDefault()'s prey).
class MissionModes : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const RoverCase c :
         {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
      problems_.push_back(
          std::make_unique<Problem>(rover::makeRoverProblem(c, 1)));
      rover::applyMissionCriticality(*problems_.back());
    }
    for (std::size_t i = 0; i < 3; ++i) {
      PowerAwareScheduler scheduler(*problems_[i]);
      ScheduleResult r = scheduler.schedule();
      ASSERT_TRUE(r.ok());
      schedules_.push_back(std::move(*r.schedule));
    }
  }

  std::vector<CaseBinding> roverBindings() {
    return {
        {"best", Watts::fromWatts(14.9), problems_[0].get(), schedules_[0], 2},
        {"typical", 12_W, problems_[1].get(), schedules_[1], 2},
        {"worst", Watts::zero(), problems_[2].get(), schedules_[2], 2},
    };
  }

  ExecutionResult run(const ModePolicy& policy, int targetSteps = 8,
                      const FaultPlan* plan = nullptr,
                      Battery battery = rover::missionBattery(),
                      obs::MetricsRegistry* metrics = nullptr) {
    RuntimeExecutor executor(rover::missionSolarProfile(), std::move(battery),
                             roverBindings());
    ExecutorConfig config;
    config.targetSteps = targetSteps;
    config.traceTasks = false;
    config.faults = plan;
    config.modes = policy;
    if (metrics != nullptr) config.obs.metrics = metrics;
    return executor.run(config);
  }

  std::vector<std::unique_ptr<Problem>> problems_;
  std::vector<Schedule> schedules_;
};

// ------------------------------------------------------------- bit identity

TEST_F(MissionModes, DisabledPolicyMatchesModeUnawareRunExactly) {
  const ExecutionResult off = run(ModePolicy{});
  const ExecutionResult plain = run(ModePolicy{});  // same default again
  RuntimeExecutor executor(rover::missionSolarProfile(),
                           rover::missionBattery(), roverBindings());
  ExecutorConfig config;  // config.modes left at its default (disabled)
  config.targetSteps = 8;
  config.traceTasks = false;
  const ExecutionResult unset = executor.run(config);
  EXPECT_EQ(renderTrace(off), renderTrace(unset));
  EXPECT_EQ(renderTrace(off), renderTrace(plain));
  EXPECT_EQ(off.batteryDrawn, unset.batteryDrawn);
  EXPECT_EQ(off.finishedAt, unset.finishedAt);
  EXPECT_EQ(off.finalMode, 0);
  EXPECT_EQ(off.modeEscalations, 0);
  EXPECT_EQ(off.modeShedTasks, 0);
}

TEST_F(MissionModes, QuietNominalRungNeverPerturbsACleanMission) {
  // A permissive policy that never triggers must leave the mission
  // bit-identical to a policy-free run (the clean fast path still rules).
  ModePolicy quiet = ModePolicy::missionDefault();
  quiet.depletionRiskPermille = 0;  // default battery never gets that low
  const ExecutionResult with = run(quiet);
  const ExecutionResult without = run(ModePolicy{});
  EXPECT_EQ(renderTrace(with), renderTrace(without));
  EXPECT_EQ(with.batteryDrawn, without.batteryDrawn);
  EXPECT_EQ(with.modeEscalations, 0);
  EXPECT_EQ(with.finalMode, 0);
}

// ---------------------------------------------------------------- triggers

TEST_F(MissionModes, DepletionRiskEscalatesAndShedsWholesale) {
  ModePolicy policy = ModePolicy::missionDefault();
  policy.depletionRiskPermille = 1000;  // any draw at all arms the trigger
  obs::MetricsRegistry metrics;
  const ExecutionResult r = run(policy, 8, nullptr, rover::missionBattery(),
                                &metrics);
  EXPECT_GE(r.modeEscalations, 1);
  EXPECT_GE(r.finalMode, 1);
  // Entering degraded sheds the three wheel heaters in one stroke.
  EXPECT_GE(r.modeShedTasks, 3);
  bool sawEscalation = false;
  int wholesaleShed = 0;
  for (const Event& e : r.trace) {
    if (e.kind == EventKind::kModeEscalated) {
      sawEscalation = true;
      EXPECT_NE(e.detail.find("depletion risk"), std::string::npos);
    }
    if (e.kind == EventKind::kTaskShed &&
        e.detail.find("(mode ") != std::string::npos) {
      ++wholesaleShed;
    }
  }
  EXPECT_TRUE(sawEscalation);
  EXPECT_EQ(wholesaleShed, r.modeShedTasks);
  EXPECT_EQ(metrics.counter("mode.escalation_events"),
            static_cast<std::uint64_t>(r.modeEscalations));
  EXPECT_EQ(metrics.counter("mode.shed_events"),
            static_cast<std::uint64_t>(r.modeShedTasks));
}

TEST_F(MissionModes, BrownoutArmsTheNextBoundaryEscalation) {
  // A mid-iteration solar collapse browns the mission out; the policy
  // escalates at the following iteration boundary.
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(10), Time(200)), 40));
  ModePolicy policy = ModePolicy::missionDefault();
  const ExecutionResult r = run(policy, 8, &plan);
  ASSERT_GT(r.brownouts, 0);
  ASSERT_GE(r.modeEscalations, 1);
  bool sawBrownoutWhy = false;
  for (const Event& e : r.trace) {
    if (e.kind == EventKind::kModeEscalated &&
        e.detail.find("brownout") != std::string::npos) {
      sawBrownoutWhy = true;
    }
  }
  EXPECT_TRUE(sawBrownoutWhy);
}

TEST_F(MissionModes, OverrunBeyondSlackEscalates) {
  FaultPlan plan;
  // Stretch the iteration well past missionDefault's 25% slack.
  plan.faults.push_back(FaultPlan::overrun("drive1", 0, 300, Duration(20)));
  plan.faults.push_back(FaultPlan::overrun("drive2", 0, 300, Duration(20)));
  ModePolicy policy = ModePolicy::missionDefault();
  policy.escalateOnBrownout = false;  // isolate the overrun trigger
  const ExecutionResult r = run(policy, 8, &plan);
  ASSERT_GE(r.modeEscalations, 1);
  bool sawOverrunWhy = false;
  for (const Event& e : r.trace) {
    if (e.kind == EventKind::kModeEscalated &&
        e.detail.find("overrun") != std::string::npos) {
      sawOverrunWhy = true;
    }
  }
  EXPECT_TRUE(sawOverrunWhy);
}

// ------------------------------------------------- structured infeasibility

TEST_F(MissionModes, LastRungRepairInfeasibleIsStructuredNotFatal) {
  // Survival trims Pmax below what even the critical chain needs: the
  // executor must report the dead end once and keep flying, not abort.
  ModePolicy policy;
  policy.name = "starved";
  policy.modes.push_back(SystemMode{"nominal", 255, 100, 100});
  policy.modes.push_back(SystemMode{"survival", 0, 10, 0});
  policy.depletionRiskPermille = 1000;  // escalate as soon as anything drew
  const ExecutionResult r = run(policy, 8);
  EXPECT_TRUE(r.modeInfeasible);
  EXPECT_EQ(r.finalMode, 1);
  EXPECT_GE(countEvents(r, EventKind::kModeInfeasible), 1);
  // The mission kept making progress on the unrepaired plan minus shed.
  EXPECT_GT(r.steps, 0);
  EXPECT_FALSE(r.stalled);
}

TEST_F(MissionModes, MidRungInfeasibilityFallsThroughToTheNextRung) {
  // The middle rung cannot fit its budget; the executor must escalate
  // past it instead of wedging ("mode repair infeasible" re-arms the
  // trigger), and the last rung's ample budget then repairs fine.
  ModePolicy policy;
  policy.name = "ladder";
  policy.modes.push_back(SystemMode{"nominal", 255, 100, 100});
  policy.modes.push_back(SystemMode{"squeezed", 2, 10, 0});
  policy.modes.push_back(SystemMode{"survival", 0, 95, 0});
  policy.depletionRiskPermille = 1000;
  const ExecutionResult r = run(policy, 8);
  EXPECT_GE(r.modeEscalations, 2);
  EXPECT_EQ(r.finalMode, 2);
  EXPECT_GT(r.steps, 0);
}

// ------------------------------------------------------ shed-then-recover

TEST_F(MissionModes, DeescalationRestoresModeShedTasks) {
  // One brownout burst, then clean sailing: with de-escalation armed the
  // mission climbs back to nominal and the heaters return.
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(10), Time(100)), 40));
  ModePolicy policy = ModePolicy::missionDefault();
  policy.deescalateAfterClean = 1;
  const ExecutionResult r = run(policy, 24, &plan);
  ASSERT_GE(r.modeEscalations, 1);
  EXPECT_GE(r.modeDeescalations, 1);
  EXPECT_GE(countEvents(r, EventKind::kModeDeescalated), 1);
  EXPECT_EQ(r.finalMode, 0);
  EXPECT_TRUE(r.complete);
}

TEST_F(MissionModes, ShedThenRecoverReplaysDeterministically) {
  // Satellite: after an escalate/shed/de-escalate cycle the executor's
  // bookkeeping must stay consistent — replaying the exact same mission
  // gives a byte-identical trace and identical accounting.
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(10), Time(100)), 40));
  ModePolicy policy = ModePolicy::missionDefault();
  policy.deescalateAfterClean = 2;
  const ExecutionResult a = run(policy, 24, &plan);
  const ExecutionResult b = run(policy, 24, &plan);
  EXPECT_EQ(renderTrace(a), renderTrace(b));
  EXPECT_EQ(a.batteryDrawn, b.batteryDrawn);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.modeEscalations, b.modeEscalations);
  EXPECT_EQ(a.modeDeescalations, b.modeDeescalations);
  EXPECT_EQ(a.modeShedTasks, b.modeShedTasks);
}

// --------------------------------------------------------- battery realism

TEST_F(MissionModes, RateCapacityModelDrawsStrictlyMoreThanLinear) {
  const Energy cap = 4000_J;
  const ExecutionResult linear =
      run(ModePolicy{}, 8, nullptr, rover::missionBattery(cap));
  const ExecutionResult rate =
      run(ModePolicy{}, 8, nullptr,
          rover::missionBattery(cap, rover::missionBatteryTraits()));
  // The mission leans on the battery above the rated 2 W band, so the
  // rate-capacity model must cost strictly more charge.
  EXPECT_GT(rate.batteryDrawn, linear.batteryDrawn);
  // Timing is untouched: only the charge accounting differs.
  EXPECT_EQ(rate.finishedAt, linear.finishedAt);
  EXPECT_EQ(rate.steps, linear.steps);
}

TEST_F(MissionModes, DepletionUnderRateModelLatchesTheDeathTick) {
  // A tiny pack dies mid-mission; the exact tick must land in the result.
  const Energy cap = 300_J;
  const ExecutionResult r =
      run(ModePolicy{}, 48, nullptr,
          rover::missionBattery(cap, rover::missionBatteryTraits()));
  EXPECT_TRUE(r.batteryDepleted);
  ASSERT_TRUE(r.depletedAt.has_value());
  EXPECT_GT(*r.depletedAt, Time::zero());
  EXPECT_LE(*r.depletedAt, r.finishedAt);
  EXPECT_FALSE(r.complete);
}

TEST_F(MissionModes, ModePolicyExtendsALowBatteryMission) {
  // Acceptance shape: on a starved pack, shedding the heater class under
  // the mission ladder must deliver at least as many steps as flying the
  // full task set open-loop.
  const Energy cap = 1500_J;
  const auto traits = rover::missionBatteryTraits();
  const ExecutionResult open =
      run(ModePolicy{}, 48, nullptr, rover::missionBattery(cap, traits));
  const ExecutionResult moded = run(ModePolicy::missionDefault(), 48, nullptr,
                                    rover::missionBattery(cap, traits));
  EXPECT_GE(moded.steps, open.steps);
  EXPECT_GE(moded.modeEscalations, 1);
}

TEST(EventKindModeTest, Names) {
  EXPECT_STREQ(toString(EventKind::kModeEscalated), "mode-escalated");
  EXPECT_STREQ(toString(EventKind::kModeDeescalated), "mode-deescalated");
  EXPECT_STREQ(toString(EventKind::kModeInfeasible), "mode-infeasible");
}

}  // namespace
}  // namespace paws::runtime
