// Degraded-mission executor tests: fault injection, the contingency
// closed loop, and the integration edge cases around brownouts and
// depletion.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws::runtime {
namespace {

using namespace paws::literals;
using fault::ContingencyOptions;
using fault::FaultPlan;
using rover::RoverCase;

std::string renderTrace(const ExecutionResult& r) {
  std::string out;
  for (const Event& e : r.trace) {
    out += std::to_string(e.at.ticks());
    out += ' ';
    out += toString(e.kind);
    out += ' ';
    out += e.detail;
    out += '\n';
  }
  return out;
}

/// Rover fixture with the heaters marked droppable (criticality 1..5) so
/// the shedding contingency has victims; hazard/steer/drive stay critical.
class DegradedRover : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const RoverCase c :
         {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
      problems_.push_back(
          std::make_unique<Problem>(rover::makeRoverProblem(c, 1)));
      Problem& p = *problems_.back();
      std::uint8_t rank = 1;
      for (TaskId v : p.taskIds()) {
        if (p.task(v).name.rfind("heat_", 0) == 0) {
          p.setCriticality(v, rank++);
        }
      }
    }
    for (std::size_t i = 0; i < 3; ++i) {
      PowerAwareScheduler scheduler(*problems_[i]);
      ScheduleResult r = scheduler.schedule();
      ASSERT_TRUE(r.ok());
      schedules_.push_back(std::move(*r.schedule));
    }
  }

  std::vector<CaseBinding> roverBindings() {
    return {
        {"best", Watts::fromWatts(14.9), problems_[0].get(), schedules_[0], 2},
        {"typical", 12_W, problems_[1].get(), schedules_[1], 2},
        {"worst", Watts::zero(), problems_[2].get(), schedules_[2], 2},
    };
  }

  ExecutionResult run(const FaultPlan* plan, ContingencyOptions contingency,
                      int targetSteps = 4, bool traceTasks = false,
                      obs::MetricsRegistry* metrics = nullptr) {
    RuntimeExecutor executor(rover::missionSolarProfile(),
                             rover::missionBattery(), roverBindings());
    ExecutorConfig config;
    config.targetSteps = targetSteps;
    config.traceTasks = traceTasks;
    config.faults = plan;
    config.contingency = contingency;
    if (metrics != nullptr) config.obs.metrics = metrics;
    return executor.run(config);
  }

  std::vector<std::unique_ptr<Problem>> problems_;
  std::vector<Schedule> schedules_;
};

// ------------------------------------------------------------ determinism

TEST_F(DegradedRover, CleanMissionIgnoresAnEmptyPlan) {
  const FaultPlan empty;
  const ExecutionResult clean = run(nullptr, {}, 8, true);
  const ExecutionResult withEmpty = run(&empty, {}, 8, true);
  EXPECT_EQ(renderTrace(clean), renderTrace(withEmpty));
  EXPECT_EQ(clean.batteryDrawn, withEmpty.batteryDrawn);
  EXPECT_EQ(clean.finishedAt, withEmpty.finishedAt);
}

TEST_F(DegradedRover, ScriptedPlanReplaysToAnIdenticalEventTrace) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::overrun("drive1", 0, 150, Duration(3)));
  plan.faults.push_back(FaultPlan::failure("hazard2", 1, 1));
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(40), Time(120)), 60));
  plan.faults.push_back(FaultPlan::batteryDerate(Time(60), 80, 90));
  const ContingencyOptions all = ContingencyOptions::all();
  const ExecutionResult a = run(&plan, all, 8, true);
  const ExecutionResult b = run(&plan, all, 8, true);
  EXPECT_EQ(renderTrace(a), renderTrace(b));
  EXPECT_EQ(a.batteryDrawn, b.batteryDrawn);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.faultsInjected, b.faultsInjected);
}

// -------------------------------------------------------- fault injection

TEST_F(DegradedRover, OverrunStretchesTheIteration) {
  FaultPlan plan;
  // drive2 ends the iteration, so stretching it must move the finish.
  plan.faults.push_back(FaultPlan::overrun("drive2", 0, 200));
  const ExecutionResult clean = run(nullptr, {}, 2);
  const ExecutionResult hit = run(&plan, {}, 2);
  EXPECT_EQ(hit.faultsInjected, 1);
  EXPECT_GT(hit.finishedAt, clean.finishedAt);
  bool sawOverrun = false;
  for (const Event& e : hit.trace) {
    sawOverrun |= e.kind == EventKind::kTaskOverrun;
  }
  EXPECT_TRUE(sawOverrun);
}

TEST_F(DegradedRover, FailureOnACriticalTaskWithoutRetryLosesTheMission) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::failure("drive1", 0, 1));
  const ExecutionResult r = run(&plan, {}, 4);
  EXPECT_TRUE(r.unrecoverable);
  EXPECT_FALSE(r.complete);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.back().kind, EventKind::kTaskUnrecoverable);
}

TEST_F(DegradedRover, BatteryDerateShrinksTheBudgetMidMission) {
  FaultPlan plan;
  // Cut the battery to a sliver right away: the worst-case phase at 9 W
  // solar must then deplete it.
  plan.faults.push_back(FaultPlan::batteryDerate(Time::zero(), 1, 100));
  const ExecutionResult r = run(&plan, {}, 48);
  EXPECT_TRUE(r.batteryDepleted);
  EXPECT_FALSE(r.complete);
  bool sawDerate = false;
  for (const Event& e : r.trace) {
    sawDerate |= e.kind == EventKind::kBatteryDerated;
  }
  EXPECT_TRUE(sawDerate);
}

// ------------------------------------------------------- contingency loop

TEST_F(DegradedRover, RetryRecoversATransientFailure) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::failure("drive1", 0, 1));
  ContingencyOptions c;
  c.retry = true;
  const ExecutionResult r = run(&plan, c, 4);
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.retries, 1);
  bool sawFailed = false, sawRetried = false;
  for (const Event& e : r.trace) {
    sawFailed |= e.kind == EventKind::kTaskFailed;
    sawRetried |= e.kind == EventKind::kTaskRetried;
  }
  EXPECT_TRUE(sawFailed);
  EXPECT_TRUE(sawRetried);
}

TEST_F(DegradedRover, CriticalTaskExhaustingItsRetriesIsUnrecoverable) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::failure("drive1", 0, 5));
  ContingencyOptions c;
  c.retry = true;
  c.maxRetries = 2;  // 3 attempts < 5 failures
  const ExecutionResult r = run(&plan, c, 4);
  EXPECT_TRUE(r.unrecoverable);
  EXPECT_FALSE(r.complete);
}

TEST_F(DegradedRover, ShedDropsADroppableTaskInsteadOfDying) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::failure("heat_wheel1", 0, 3));
  ContingencyOptions c;
  c.shed = true;  // no retry: the single allowed attempt cannot absorb 3
  const ExecutionResult r = run(&plan, c, 4);
  EXPECT_TRUE(r.complete) << "shedding a heater must not end the mission";
  EXPECT_GE(r.shedTasks, 1);
  bool sawShed = false;
  for (const Event& e : r.trace) {
    sawShed |= e.kind == EventKind::kTaskShed;
  }
  EXPECT_TRUE(sawShed);
}

TEST_F(DegradedRover, WatchdogFlagsABlownIteration) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::overrun("drive1", 0, 300, Duration(20)));
  ContingencyOptions c;
  c.watchdogSlackPct = 10;
  const ExecutionResult r = run(&plan, c, 2);
  EXPECT_GE(r.deadlineMisses, 1);
  bool sawMiss = false;
  for (const Event& e : r.trace) {
    sawMiss |= e.kind == EventKind::kDeadlineMissed;
  }
  EXPECT_TRUE(sawMiss);
}

TEST_F(DegradedRover, ReplanRespondsToASolarCollapse) {
  // A deep cloud over the first iterations forces demand above
  // solar + battery; replan must engage (and the full closed loop should
  // still deliver the mission).
  FaultPlan plan;
  plan.faults.push_back(
      FaultPlan::solarTransient(Interval(Time(10), Time(200)), 40));
  const ExecutionResult r = run(&plan, ContingencyOptions::all(), 8);
  EXPECT_GE(r.replans + r.replanFailures, 1)
      << "brownout must at least attempt a repair";
  EXPECT_GT(r.brownouts, 0);
  EXPECT_TRUE(r.complete);
}

TEST_F(DegradedRover, ClosedLoopSurvivesWhereOpenLoopDies) {
  // The ISSUE's integration scenario: same fault stream, contingency off
  // vs on. Off dies on the failed critical task; on completes every step.
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::failure("drive2", 0, 1));
  plan.faults.push_back(FaultPlan::overrun("hazard1", 1, 150));
  const ExecutionResult off = run(&plan, {}, 8);
  const ExecutionResult on = run(&plan, ContingencyOptions::all(), 8);
  EXPECT_FALSE(off.complete);
  EXPECT_TRUE(on.complete);
  EXPECT_GT(on.steps, off.steps);
}

TEST_F(DegradedRover, ExportsFaultAndContingencyMetrics) {
  FaultPlan plan;
  plan.faults.push_back(FaultPlan::failure("drive1", 0, 1));
  plan.faults.push_back(FaultPlan::overrun("hazard1", 0, 150));
  obs::MetricsRegistry metrics;
  ContingencyOptions c;
  c.retry = true;
  const ExecutionResult r = run(&plan, c, 4, false, &metrics);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(metrics.counter("fault.injected"),
            static_cast<std::uint64_t>(r.faultsInjected));
  EXPECT_EQ(metrics.counter("contingency.retries"),
            static_cast<std::uint64_t>(r.retries));
}

// --------------------------------------------------------- edge cases

TEST_F(DegradedRover, AbortOnBrownoutAtIterationStartStallsExplicitly) {
  // No sun and a 1 W battery: the very first segment browns out, so with
  // abortOnBrownout every iteration would abort at its first instant and
  // replay forever. The stall guard must end the mission at t=0 with an
  // explicit event instead of spinning to maxIterations.
  RuntimeExecutor executor(SolarSource(Watts::zero()), Battery(1_W, 100_J),
                           roverBindings());
  ExecutorConfig config;
  config.targetSteps = 4;
  config.abortOnBrownout = true;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_TRUE(r.stalled);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.steps, 0);
  EXPECT_EQ(r.finishedAt, Time::zero());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.back().kind, EventKind::kStalled);
}

TEST_F(DegradedRover, BrownoutAbortExactlyAtASolarPhaseBoundary) {
  // The drop lands exactly on a slice boundary; the brownout must be
  // charged at the boundary instant and the abort must truncate there.
  SolarSource cliff({{Time(0), Watts::fromWatts(14.9)}, {Time(10), 2_W}});
  RuntimeExecutor executor(cliff, rover::missionBattery(), roverBindings());
  ExecutorConfig config;
  config.targetSteps = 2;
  config.abortOnBrownout = true;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  ASSERT_GT(r.brownouts, 0);
  Time firstBrownout = Time::max();
  for (const Event& e : r.trace) {
    if (e.kind == EventKind::kBrownout) {
      firstBrownout = std::min(firstBrownout, e.at);
    }
  }
  EXPECT_EQ(firstBrownout, Time(10));
}

TEST(ExecutorEdgeTest, ExactCapacityFinishesWithoutDepletion) {
  // Battery that holds exactly the mission's draw: need == remaining on
  // the last slice is NOT a depletion (the comparison is strict).
  Problem p("exact");
  const ResourceId res = p.addResource("r");
  p.addTask("t", Duration(10), 3_W, res);
  p.setMinPower(Watts::zero());
  const ScheduleResult sr = SerialScheduler(p).schedule();
  ASSERT_TRUE(sr.ok());
  // Solar 0: the 3 W task draws 3 mW-ticks/tick * 10 ticks = 30 W-ticks.
  const Energy exact = 3_W * Duration(10);
  RuntimeExecutor executor(
      SolarSource(Watts::zero()), Battery(5_W, exact),
      {CaseBinding{"only", Watts::zero(), &p, *sr.schedule, 1}});
  ExecutorConfig config;
  config.targetSteps = 1;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.batteryDepleted);
  EXPECT_EQ(r.batteryDrawn, exact);
}

TEST(ExecutorEdgeTest, DepletionTimeFloorsTheAffordableTicks) {
  // remaining / rate leaves a remainder: the mission must die at
  // floor(remaining/rate) ticks, having drawn exactly rate * floor ticks.
  Problem p("floor");
  const ResourceId res = p.addResource("r");
  p.addTask("t", Duration(10), 3_W, res);
  p.setMinPower(Watts::zero());
  const ScheduleResult sr = SerialScheduler(p).schedule();
  ASSERT_TRUE(sr.ok());
  // 10 W-ticks at 3 W: affordable = floor(10/3) = 3 ticks, 9 W-ticks drawn.
  const Energy capacity = Energy::fromMilliwattTicks(10 * 1000);
  RuntimeExecutor executor(
      SolarSource(Watts::zero()), Battery(5_W, capacity),
      {CaseBinding{"only", Watts::zero(), &p, *sr.schedule, 1}});
  ExecutorConfig config;
  config.targetSteps = 1;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_TRUE(r.batteryDepleted);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.finishedAt, Time(3));
  EXPECT_EQ(r.batteryDrawn, 3_W * Duration(3));
}

}  // namespace
}  // namespace paws::runtime
