#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include "rover/plans.hpp"
#include "rover/rover_model.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws::runtime {
namespace {

using namespace paws::literals;
using rover::RoverCase;

/// Fixture owning the per-case problems and schedules for the rover.
class RoverExecution : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const RoverCase c :
         {RoverCase::kBest, RoverCase::kTypical, RoverCase::kWorst}) {
      problems_.push_back(
          std::make_unique<Problem>(rover::makeRoverProblem(c, 1)));
    }
    for (std::size_t i = 0; i < 3; ++i) {
      PowerAwareScheduler scheduler(*problems_[i]);
      ScheduleResult r = scheduler.schedule();
      ASSERT_TRUE(r.ok());
      schedules_.push_back(std::move(*r.schedule));
    }
  }

  std::vector<CaseBinding> roverBindings() {
    return {
        {"best", Watts::fromWatts(14.9), problems_[0].get(), schedules_[0], 2},
        {"typical", 12_W, problems_[1].get(), schedules_[1], 2},
        {"worst", Watts::zero(), problems_[2].get(), schedules_[2], 2},
    };
  }

  std::vector<std::unique_ptr<Problem>> problems_;
  std::vector<Schedule> schedules_;
};

TEST_F(RoverExecution, CompletesTheMission) {
  RuntimeExecutor executor(rover::missionSolarProfile(),
                           rover::missionBattery(), roverBindings());
  ExecutorConfig config;
  config.targetSteps = 48;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.steps, 48);
  EXPECT_FALSE(r.batteryDepleted);
  EXPECT_GT(r.batteryDrawn, Energy::zero());
  // Must beat the fixed 75s-per-iteration baseline's 1800 s.
  EXPECT_LT(r.finishedAt, Time(1800));
  // Trace bookends.
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.front().kind, EventKind::kIterationStarted);
  EXPECT_EQ(r.trace.back().kind, EventKind::kMissionComplete);
}

TEST_F(RoverExecution, SelectsScheduleByCurrentSolarLevel) {
  RuntimeExecutor executor(rover::missionSolarProfile(),
                           rover::missionBattery(), roverBindings());
  ExecutorConfig config;
  config.targetSteps = 48;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  bool sawBest = false, sawLater = false;
  for (const Event& e : r.trace) {
    if (e.kind != EventKind::kScheduleSelected) continue;
    if (e.at < Time(600)) {
      EXPECT_EQ(e.detail, "best");
      sawBest = true;
    } else {
      EXPECT_NE(e.detail, "best");
      sawLater = true;
    }
  }
  EXPECT_TRUE(sawBest);
  EXPECT_TRUE(sawLater);
}

TEST_F(RoverExecution, TaskTraceIsOrderedAndPaired) {
  RuntimeExecutor executor(SolarSource(Watts::fromWatts(14.9)),
                           rover::missionBattery(), roverBindings());
  ExecutorConfig config;
  config.targetSteps = 2;  // one iteration
  config.traceTasks = true;
  const ExecutionResult r = executor.run(config);
  int starts = 0, finishes = 0;
  Time last = Time::zero();
  for (const Event& e : r.trace) {
    EXPECT_GE(e.at, last - Duration(0));
    if (e.kind == EventKind::kTaskStarted) ++starts;
    if (e.kind == EventKind::kTaskFinished) ++finishes;
  }
  EXPECT_EQ(starts, 11);  // 5 heats + 2x(hazard, steer, drive)
  EXPECT_EQ(finishes, 11);
}

TEST_F(RoverExecution, SolarDropMidIterationCausesBrownout) {
  // Run the best-case schedule into a cliff: solar collapses to 2 W at
  // t=2, mid-heating, far below what the overlapped heats need even with
  // the battery's 10 W (the late-iteration tasks alone would fit).
  SolarSource cliff({{Time(0), Watts::fromWatts(14.9)}, {Time(2), 2_W}});
  RuntimeExecutor executor(cliff, rover::missionBattery(), roverBindings());
  ExecutorConfig config;
  config.targetSteps = 2;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_GT(r.brownouts, 0);
  EXPECT_TRUE(r.complete) << "push-through policy still finishes";
}

TEST_F(RoverExecution, AbortOnBrownoutStopsTheIteration) {
  SolarSource cliff({{Time(0), Watts::fromWatts(14.9)}, {Time(2), 2_W}});
  RuntimeExecutor executor(cliff, rover::missionBattery(), roverBindings());
  ExecutorConfig config;
  config.targetSteps = 2;
  config.abortOnBrownout = true;
  config.traceTasks = false;
  config.maxIterations = 4;
  const ExecutionResult r = executor.run(config);
  EXPECT_GT(r.brownouts, 0);
  EXPECT_FALSE(r.complete) << "aborted iterations grant no steps";
}

TEST_F(RoverExecution, BatteryDepletionEndsTheMissionMidIteration) {
  RuntimeExecutor executor(SolarSource(9_W), Battery(10_W, 100_J),
                           roverBindings());
  ExecutorConfig config;
  config.targetSteps = 48;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_TRUE(r.batteryDepleted);
  EXPECT_FALSE(r.complete);
  EXPECT_LE(r.batteryDrawn, 100_J);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.back().kind, EventKind::kBatteryDepleted);
}

TEST_F(RoverExecution, NoBindingForDarknessFailsCleanly) {
  std::vector<CaseBinding> bindings = roverBindings();
  bindings.erase(bindings.begin() + 2);  // drop the catch-all worst case
  bindings[1].solarLevel = 12_W;
  SolarSource dusk({{Time(0), Watts::fromWatts(14.9)}, {Time(100), 5_W}});
  RuntimeExecutor executor(dusk, rover::missionBattery(),
                           std::move(bindings));
  ExecutorConfig config;
  config.targetSteps = 48;
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  EXPECT_FALSE(r.complete);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.back().kind, EventKind::kNoFeasibleSchedule);
}

TEST_F(RoverExecution, EnergyAccountingMatchesPlanLevelSimulator) {
  // Constant 9 W solar: the runtime integration must agree exactly with
  // the per-iteration plan accounting (cost = Ec per iteration).
  RuntimeExecutor executor(SolarSource(9_W), rover::missionBattery(),
                           roverBindings());
  ExecutorConfig config;
  config.targetSteps = 8;  // four worst-case iterations
  config.traceTasks = false;
  const ExecutionResult r = executor.run(config);
  ASSERT_TRUE(r.complete);
  const Energy perIteration = schedules_[2].energyCost(9_W);
  EXPECT_EQ(r.batteryDrawn,
            Energy::fromMilliwattTicks(4 * perIteration.milliwattTicks()));
}

TEST(RuntimeExecutorTest, RejectsEmptyBindings) {
  EXPECT_THROW(RuntimeExecutor(SolarSource(9_W), Battery(10_W, 100_J), {}),
               CheckError);
}

TEST(EventKindTest, Names) {
  EXPECT_STREQ(toString(EventKind::kBrownout), "brownout");
  EXPECT_STREQ(toString(EventKind::kMissionComplete), "mission-complete");
}

}  // namespace
}  // namespace paws::runtime
