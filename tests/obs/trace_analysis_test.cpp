// Offline trace/report analysis: summarize (JSONL + report auto-detect),
// report diff with the deterministic-metric classification, and the
// incumbent-curve rendering behind `pawsc trace incumbents`.
#include <gtest/gtest.h>

#include "obs/report.hpp"
#include "obs/trace_analysis.hpp"

namespace paws::obs {
namespace {

RunReport makeReport(std::int64_t energy, std::uint64_t backtracks,
                     double wallUs) {
  RunReport r;
  r.kind = "schedule";
  r.problemName = "p";
  r.problemHash = 0x1234;
  r.numTasks = 5;
  r.numResources = 2;
  r.numConstraints = 3;
  r.scheduler = "pipeline";
  r.status = "ok";
  r.hasSchedule = true;
  r.finishTicks = 40;
  r.energyCostMwt = energy;
  r.peakPowerMw = 17000;
  r.scheduleBytes = 167;
  r.metrics.add("search.backtracks", backtracks);
  r.metrics.observe("phase.timing.wall_us", wallUs);
  r.incumbents.push_back({100, energy + 1000});
  r.incumbents.push_back({200, energy});
  return r;
}

TEST(TraceAnalysisTest, SummarizeAutoDetectsRunReports) {
  const RunReport r = makeReport(213000, 7, 25.0);
  const TraceSummary s = summarizeTraceText(runReportToJson(r));
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_NE(s.text.find("run report"), std::string::npos);
  EXPECT_NE(s.text.find("5 tasks"), std::string::npos);
  EXPECT_NE(s.text.find("pipeline"), std::string::npos);
  EXPECT_NE(s.text.find("incumbents"), std::string::npos);
}

TEST(TraceAnalysisTest, SummarizeCountsJsonlEventsPhasesAndHotTasks) {
  const std::string jsonl =
      "{\"kind\":\"phase\",\"ts_ns\":1,\"dur_ns\":500,\"label\":\"timing\"}\n"
      "{\"kind\":\"backtrack\",\"ts_ns\":2,\"task\":3}\n"
      "{\"kind\":\"backtrack\",\"ts_ns\":3,\"task\":3}\n"
      "{\"kind\":\"delay\",\"ts_ns\":4,\"task\":1}\n"
      "{\"kind\":\"candidate\",\"ts_ns\":5,\"task\":2}\n";
  const TraceSummary s = summarizeTraceText(jsonl);
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_NE(s.text.find("backtrack"), std::string::npos);
  EXPECT_NE(s.text.find("timing"), std::string::npos);
  // Task 3 (2 backtracks) outranks task 1 (1 delay).
  const auto hot3 = s.text.find("task     3");
  const auto hot1 = s.text.find("task     1");
  ASSERT_NE(hot3, std::string::npos);
  ASSERT_NE(hot1, std::string::npos);
  EXPECT_LT(hot3, hot1);
}

TEST(TraceAnalysisTest, SummarizeRejectsGarbage) {
  EXPECT_FALSE(summarizeTraceText("").ok);
  EXPECT_FALSE(summarizeTraceText("not json at all").ok);
}

TEST(TraceAnalysisTest, DeterministicMetricClassification) {
  EXPECT_TRUE(isDeterministicMetric("schedule.bytes"));
  EXPECT_TRUE(isDeterministicMetric("schedule.energy_cost_mwt"));
  EXPECT_TRUE(isDeterministicMetric("problem.tasks"));
  EXPECT_TRUE(isDeterministicMetric("search.backtracks"));
  EXPECT_FALSE(isDeterministicMetric("exhaustive.nodes"));
  EXPECT_FALSE(isDeterministicMetric("phase.timing.wall_us.count"));
  EXPECT_FALSE(isDeterministicMetric("guard.deadline_trips"));
  EXPECT_FALSE(isDeterministicMetric("executor.steps_per_run.count"));
}

TEST(TraceAnalysisTest, DiffIsCleanForIdenticalReports) {
  const RunReport a = makeReport(213000, 7, 25.0);
  const ReportDiff diff = diffReports(a, a);
  EXPECT_TRUE(diff.deterministicOk());
  EXPECT_EQ(diff.flaggedCount, 0u);
  EXPECT_TRUE(diff.comparableProblems);
}

TEST(TraceAnalysisTest, DiffFlagsDeterministicMismatchButToleratesNoise) {
  const RunReport a = makeReport(213000, 7, 25.0);
  // Different energy (deterministic -> hard) and wildly different wall
  // time (noisy -> tolerated: timing never hard-fails).
  RunReport b = makeReport(99000, 7, 2500.0);
  const ReportDiff diff = diffReports(a, b);
  EXPECT_FALSE(diff.deterministicOk());
  EXPECT_GE(diff.deterministicMismatches, 1u);

  // Same energy, noisy metric moved beyond tolerance: flagged, not a
  // deterministic failure.
  RunReport c = makeReport(213000, 7, 25.0);
  c.metrics.add("exhaustive.nodes", 1000);
  RunReport d = makeReport(213000, 7, 25.0);
  d.metrics.add("exhaustive.nodes", 2000);
  const ReportDiff noisy = diffReports(c, d);
  EXPECT_TRUE(noisy.deterministicOk());
  EXPECT_GE(noisy.flaggedCount, 1u);
}

TEST(TraceAnalysisTest, DiffMarksDifferentProblems) {
  const RunReport a = makeReport(213000, 7, 25.0);
  RunReport b = makeReport(213000, 7, 25.0);
  b.problemHash = 0x9999;
  EXPECT_FALSE(diffReports(a, b).comparableProblems);
}

TEST(TraceAnalysisTest, RenderDiffMentionsMismatchedMetric) {
  const RunReport a = makeReport(213000, 7, 25.0);
  const RunReport b = makeReport(99000, 7, 25.0);
  const std::string text = renderReportDiff(diffReports(a, b), "A", "B");
  EXPECT_NE(text.find("schedule.energy_cost_mwt"), std::string::npos);
  EXPECT_NE(text.find("MISMATCH"), std::string::npos);
}

TEST(TraceAnalysisTest, RenderIncumbentsTableAndCsv) {
  const RunReport r = makeReport(213000, 7, 25.0);
  const std::string csv = renderIncumbents(r, /*csv=*/true);
  EXPECT_EQ(csv.rfind("ts_ns,cost_mwt\n", 0), 0u);
  EXPECT_NE(csv.find("100,214000"), std::string::npos);
  EXPECT_NE(csv.find("200,213000"), std::string::npos);
  const std::string table = renderIncumbents(r, /*csv=*/false);
  EXPECT_NE(table.find("2 points"), std::string::npos);
  EXPECT_NE(table.find("214000"), std::string::npos);
  // Empty curve renders a note, not an empty string.
  RunReport empty;
  EXPECT_FALSE(renderIncumbents(empty, false).empty());
}

}  // namespace
}  // namespace paws::obs
