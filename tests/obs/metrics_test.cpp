#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"

namespace paws::obs {
namespace {

TEST(MetricsRegistryTest, CountersCreateAtZeroAndAccumulate) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("search.backtracks"), 0u);
  EXPECT_FALSE(m.has("search.backtracks"));
  m.add("search.backtracks");
  m.add("search.backtracks", 4);
  EXPECT_EQ(m.counter("search.backtracks"), 5u);
  EXPECT_TRUE(m.has("search.backtracks"));
  EXPECT_EQ(m.size(), 1u);
}

TEST(MetricsRegistryTest, GaugesAreLastWriteWins) {
  MetricsRegistry m;
  EXPECT_EQ(m.gauge("pipeline.status"), 0.0);
  m.set("pipeline.status", 2.0);
  m.set("pipeline.status", 3.0);
  EXPECT_EQ(m.gauge("pipeline.status"), 3.0);
}

TEST(MetricsRegistryTest, HistogramsTrackCountSumMinMax) {
  MetricsRegistry m;
  m.observe("phase.timing.wall_us", 10.0);
  m.observe("phase.timing.wall_us", 30.0);
  m.observe("phase.timing.wall_us", 20.0);
  const auto h = m.histogram("phase.timing.wall_us");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 60.0);
  EXPECT_DOUBLE_EQ(h.min, 10.0);
  EXPECT_DOUBLE_EQ(h.max, 30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(m.histogram("phase.absent.wall_us").count, 0u);
  EXPECT_DOUBLE_EQ(m.histogram("phase.absent.wall_us").mean(), 0.0);
}

TEST(MetricsRegistryTest, NamesAreSharedAcrossKindsOnlyByFamily) {
  // The three families are independent maps: the same name in two families
  // counts twice in size(). Instrumentation uses disjoint names, but the
  // registry itself must not conflate them.
  MetricsRegistry m;
  m.add("x");
  m.set("x", 7.0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.counter("x"), 1u);
  EXPECT_DOUBLE_EQ(m.gauge("x"), 7.0);
}

TEST(MetricsRegistryTest, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry a, b;
  a.add("c", 2);
  b.add("c", 3);
  a.set("g", 1.0);
  b.set("g", 9.0);
  a.observe("h", 1.0);
  b.observe("h", 5.0);
  b.observe("only_b", 2.0);
  a += b;
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.histogram("h").count, 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h").min, 1.0);
  EXPECT_DOUBLE_EQ(a.histogram("h").max, 5.0);
  EXPECT_EQ(a.histogram("only_b").count, 1u);
}

TEST(MetricsRegistryTest, CsvIsSortedWithHeaderAndOneRowPerMetric) {
  MetricsRegistry m;
  m.add("b.counter", 7);
  m.set("a.gauge", 2.5);
  m.observe("c.hist", 4.0);
  std::ostringstream os;
  m.writeCsv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("name,kind,value,count,sum,min,max,mean\n", 0), 0u);
  // Sorted by name: gauge, counter, histogram.
  const auto ga = csv.find("a.gauge,gauge,2.500");
  const auto co = csv.find("b.counter,counter,7");
  const auto hi = csv.find("c.hist,histogram,");
  ASSERT_NE(ga, std::string::npos);
  ASSERT_NE(co, std::string::npos);
  ASSERT_NE(hi, std::string::npos);
  EXPECT_LT(ga, co);
  EXPECT_LT(co, hi);
  EXPECT_EQ(m.toCsv(), csv);
}

TEST(MetricsRegistryTest, ClearEmptiesEverything) {
  MetricsRegistry m;
  m.add("c");
  m.set("g", 1.0);
  m.observe("h", 1.0);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.has("c"));
}

TEST(MetricsRegistryTest, RenderTableMentionsEveryMetric) {
  MetricsRegistry m;
  m.add("search.delays", 12);
  m.observe("phase.timing.wall_us", 3.0);
  const std::string table = m.renderTable();
  EXPECT_NE(table.find("search.delays"), std::string::npos);
  EXPECT_NE(table.find("phase.timing.wall_us"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);
}

}  // namespace
}  // namespace paws::obs
