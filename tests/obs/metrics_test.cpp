#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"

namespace paws::obs {
namespace {

TEST(MetricsRegistryTest, CountersCreateAtZeroAndAccumulate) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("search.backtracks"), 0u);
  EXPECT_FALSE(m.has("search.backtracks"));
  m.add("search.backtracks");
  m.add("search.backtracks", 4);
  EXPECT_EQ(m.counter("search.backtracks"), 5u);
  EXPECT_TRUE(m.has("search.backtracks"));
  EXPECT_EQ(m.size(), 1u);
}

TEST(MetricsRegistryTest, GaugesAreLastWriteWins) {
  MetricsRegistry m;
  EXPECT_EQ(m.gauge("pipeline.status"), 0.0);
  m.set("pipeline.status", 2.0);
  m.set("pipeline.status", 3.0);
  EXPECT_EQ(m.gauge("pipeline.status"), 3.0);
}

TEST(MetricsRegistryTest, HistogramsTrackCountSumMinMax) {
  MetricsRegistry m;
  m.observe("phase.timing.wall_us", 10.0);
  m.observe("phase.timing.wall_us", 30.0);
  m.observe("phase.timing.wall_us", 20.0);
  const auto h = m.histogram("phase.timing.wall_us");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 60.0);
  EXPECT_DOUBLE_EQ(h.min, 10.0);
  EXPECT_DOUBLE_EQ(h.max, 30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(m.histogram("phase.absent.wall_us").count, 0u);
  EXPECT_DOUBLE_EQ(m.histogram("phase.absent.wall_us").mean(), 0.0);
}

TEST(MetricsRegistryTest, NamesAreSharedAcrossKindsOnlyByFamily) {
  // The three families are independent maps: the same name in two families
  // counts twice in size(). Instrumentation uses disjoint names, but the
  // registry itself must not conflate them.
  MetricsRegistry m;
  m.add("x");
  m.set("x", 7.0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.counter("x"), 1u);
  EXPECT_DOUBLE_EQ(m.gauge("x"), 7.0);
}

TEST(MetricsRegistryTest, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry a, b;
  a.add("c", 2);
  b.add("c", 3);
  a.set("g", 1.0);
  b.set("g", 9.0);
  a.observe("h", 1.0);
  b.observe("h", 5.0);
  b.observe("only_b", 2.0);
  a += b;
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.histogram("h").count, 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h").min, 1.0);
  EXPECT_DOUBLE_EQ(a.histogram("h").max, 5.0);
  EXPECT_EQ(a.histogram("only_b").count, 1u);
}

TEST(MetricsRegistryTest, CsvIsSortedWithHeaderAndOneRowPerMetric) {
  MetricsRegistry m;
  m.add("b.counter", 7);
  m.set("a.gauge", 2.5);
  m.observe("c.hist", 4.0);
  std::ostringstream os;
  m.writeCsv(os);
  const std::string csv = os.str();
  EXPECT_EQ(
      csv.rfind("name,kind,value,count,sum,min,max,mean,p50,p90,p99\n", 0),
      0u);
  // Sorted by name: gauge, counter, histogram.
  const auto ga = csv.find("a.gauge,gauge,2.500");
  const auto co = csv.find("b.counter,counter,7");
  const auto hi = csv.find("c.hist,histogram,");
  ASSERT_NE(ga, std::string::npos);
  ASSERT_NE(co, std::string::npos);
  ASSERT_NE(hi, std::string::npos);
  EXPECT_LT(ga, co);
  EXPECT_LT(co, hi);
  EXPECT_EQ(m.toCsv(), csv);
}

TEST(MetricsRegistryTest, MergingAnEmptyHistogramKeepsMinMax) {
  // Regression guard: an empty summary's default min/max are zero, and a
  // naive merge would clobber the real envelope with them.
  MetricsRegistry a, b;
  a.observe("h", 5.0);
  a.observe("h", 9.0);
  b.add("unrelated");  // b has no "h" histogram at all
  a += b;
  EXPECT_DOUBLE_EQ(a.histogram("h").min, 5.0);
  EXPECT_DOUBLE_EQ(a.histogram("h").max, 9.0);

  // Same via an explicit empty summary on the left: merge into empty
  // adopts the non-empty side's envelope verbatim.
  MetricsRegistry::HistogramSummary empty;
  MetricsRegistry::HistogramSummary full;
  full.observe(5.0);
  full.observe(9.0);
  empty.merge(full);
  EXPECT_DOUBLE_EQ(empty.min, 5.0);
  EXPECT_DOUBLE_EQ(empty.max, 9.0);
  EXPECT_EQ(empty.count, 2u);
  // And merging empty into full is a no-op.
  MetricsRegistry::HistogramSummary full2 = full;
  full2.merge(MetricsRegistry::HistogramSummary{});
  EXPECT_EQ(full2, full);
}

TEST(MetricsRegistryTest, MergeKeepsGaugeOverwriteVsCounterAddApart) {
  // Explicit semantics check: += must ADD counters but OVERWRITE gauges,
  // even when both families hold the same name.
  MetricsRegistry a, b;
  a.add("x", 10);
  a.set("x", 1.5);
  b.add("x", 32);
  b.set("x", 2.5);
  a += b;
  EXPECT_EQ(a.counter("x"), 42u);
  EXPECT_DOUBLE_EQ(a.gauge("x"), 2.5);
  // A gauge missing from the right side keeps its left value (overwrite
  // only happens when the right side actually carries the name).
  MetricsRegistry c;
  c.set("only_left", 7.0);
  c += MetricsRegistry{};
  EXPECT_DOUBLE_EQ(c.gauge("only_left"), 7.0);
}

TEST(HistogramSummaryTest, BucketIndexFollowsLog2Bounds) {
  using H = MetricsRegistry::HistogramSummary;
  EXPECT_EQ(H::bucketIndex(-3.0), 0u);
  EXPECT_EQ(H::bucketIndex(0.0), 0u);
  EXPECT_EQ(H::bucketIndex(0.5), 0u);
  EXPECT_EQ(H::bucketIndex(1.0), 1u);   // [1, 2)
  EXPECT_EQ(H::bucketIndex(1.99), 1u);
  EXPECT_EQ(H::bucketIndex(2.0), 2u);   // [2, 4)
  EXPECT_EQ(H::bucketIndex(3.0), 2u);
  EXPECT_EQ(H::bucketIndex(4.0), 3u);   // [4, 8)
  EXPECT_EQ(H::bucketIndex(1024.0), 11u);
  EXPECT_EQ(H::bucketIndex(9e18), H::kNumBuckets - 1);
  // Bounds invert the index: every bucket's lower bound lands back in it.
  for (std::size_t i = 1; i + 1 < H::kNumBuckets; ++i) {
    EXPECT_EQ(H::bucketIndex(H::bucketLowerBound(i)), i) << i;
  }
}

TEST(HistogramSummaryTest, QuantilesAreExactAtEnvelopeAndOrdered) {
  MetricsRegistry m;
  for (int i = 1; i <= 100; ++i) m.observe("h", static_cast<double>(i));
  const auto h = m.histogram("h");
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log2 buckets are factor-of-2 resolution: p50 of 1..100 is in [32, 64),
  // p90/p99 in [64, 100].
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
  EXPECT_GE(p90, 64.0);
  EXPECT_LE(p99, 100.0);
  // Degenerate cases: empty -> 0, single observation -> itself.
  EXPECT_DOUBLE_EQ(MetricsRegistry::HistogramSummary{}.quantile(0.5), 0.0);
  MetricsRegistry::HistogramSummary one;
  one.observe(17.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 17.0);
}

TEST(MetricsRegistryTest, SetHistogramInstallsACompleteSummary) {
  MetricsRegistry m;
  MetricsRegistry::HistogramSummary h;
  h.observe(3.0);
  h.observe(11.0);
  m.setHistogram("imported", h);
  EXPECT_EQ(m.histogram("imported"), h);
  // Replaces, not merges.
  MetricsRegistry::HistogramSummary other;
  other.observe(100.0);
  m.setHistogram("imported", other);
  EXPECT_EQ(m.histogram("imported").count, 1u);
  EXPECT_DOUBLE_EQ(m.histogram("imported").max, 100.0);
}

TEST(MetricsRegistryTest, ClearEmptiesEverything) {
  MetricsRegistry m;
  m.add("c");
  m.set("g", 1.0);
  m.observe("h", 1.0);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.has("c"));
}

TEST(MetricsRegistryTest, RenderTableMentionsEveryMetric) {
  MetricsRegistry m;
  m.add("search.delays", 12);
  m.observe("phase.timing.wall_us", 3.0);
  const std::string table = m.renderTable();
  EXPECT_NE(table.find("search.delays"), std::string::npos);
  EXPECT_NE(table.find("phase.timing.wall_us"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);
}

}  // namespace
}  // namespace paws::obs
