// End-to-end observability: run the real schedulers and the runtime
// executor with an ObsContext attached and check that the recorded trace
// and the metrics registry agree with the returned SchedulerStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/longest_path.hpp"
#include "model/paper_example.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rover/rover_model.hpp"
#include "runtime/executor.hpp"
#include "sched/power_aware_scheduler.hpp"

namespace paws {
namespace {

using obs::TraceEventKind;

std::size_t countKind(const obs::TraceSink& sink, TraceEventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(sink.events().begin(), sink.events().end(),
                    [kind](const obs::TraceEvent& e) { return e.kind == kind; }));
}

bool hasPhaseSpan(const obs::TraceSink& sink, const std::string& name) {
  return std::any_of(sink.events().begin(), sink.events().end(),
                     [&name](const obs::TraceEvent& e) {
                       return e.kind == TraceEventKind::kPhase &&
                              name == e.label;
                     });
}

TEST(SchedulerObsTest, PipelineRecordsPhasesEventsAndConsistentMetrics) {
  const Problem p = makePaperExampleProblem();
  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  PowerAwareOptions options;
  options.obs.trace = &sink;
  options.obs.metrics = &metrics;
  PowerAwareScheduler scheduler(p, options);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());

  // Every pipeline stage contributed a wall-clock phase span.
  for (const char* phase : {"pipeline", "trial", "timing", "max-power",
                            "min-power"}) {
    EXPECT_TRUE(hasPhaseSpan(sink, phase)) << "missing phase " << phase;
    EXPECT_GE(metrics.histogram(std::string("phase.") + phase + ".wall_us")
                  .count,
              1u)
        << phase;
  }
  // The paper example is built to exercise spike elimination.
  EXPECT_GT(r.stats.delays + r.stats.locks, 0u);
#if PAWS_TRACE_ENABLED
  // The search itself showed up as typed events (compiled out with
  // PAWS_TRACE=OFF; phase spans and metrics remain).
  EXPECT_GT(countKind(sink, TraceEventKind::kCandidate), 0u);
  EXPECT_GT(countKind(sink, TraceEventKind::kLongestPath), 0u);
  EXPECT_GT(countKind(sink, TraceEventKind::kScanPass), 0u);
  EXPECT_EQ(countKind(sink, TraceEventKind::kDelay), r.stats.delays);
  EXPECT_EQ(countKind(sink, TraceEventKind::kLock), r.stats.locks);
#endif

  // The registry's search.* counters reconstruct the stats struct exactly.
  const SchedulerStats fromMetrics = statsFromMetrics(metrics);
  EXPECT_EQ(fromMetrics.longestPathRuns, r.stats.longestPathRuns);
  EXPECT_EQ(fromMetrics.backtracks, r.stats.backtracks);
  EXPECT_EQ(fromMetrics.delays, r.stats.delays);
  EXPECT_EQ(fromMetrics.locks, r.stats.locks);
  EXPECT_EQ(fromMetrics.recursions, r.stats.recursions);
  EXPECT_EQ(fromMetrics.scans, r.stats.scans);
  EXPECT_EQ(fromMetrics.improvements, r.stats.improvements);

  // Pipeline bookkeeping and the acceptance-criteria floor of 10 metrics.
  EXPECT_EQ(metrics.counter("pipeline.trials"), 4u);
  EXPECT_GE(metrics.counter("pipeline.trials_ok"), 1u);
  EXPECT_GE(metrics.size(), 10u);
}

TEST(SchedulerObsTest, DisabledContextLeavesSinkUntouched) {
  const Problem p = makePaperExampleProblem();
  PowerAwareScheduler scheduler(p);  // default options: no hooks
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  // Nothing observable to assert — the point is the null-sink path runs the
  // whole pipeline without an ObsContext and still produces the schedule.
  EXPECT_GT(r.stats.longestPathRuns, 0u);
}

TEST(LongestPathObsTest, EngineEmitsSpansAndRunCounters) {
  const Problem p = makePaperExampleProblem();
  ConstraintGraph g = p.buildGraph();
  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  LongestPathEngine engine(g);
  engine.setObs(obs::ObsContext{&sink, &metrics});

  ASSERT_TRUE(engine.compute(kAnchorTask).feasible);
  EXPECT_EQ(metrics.counter("longest_path.runs"), 1u);
  EXPECT_EQ(metrics.counter("longest_path.incremental_runs"), 0u);
  EXPECT_EQ(metrics.histogram("phase.longest_path.wall_us").count, 1u);

  // A re-run after an edge *addition* relaxes incrementally and is counted
  // separately (and labelled so in the trace).
  const TaskId first = p.taskIds().front();
  g.addEdge(kAnchorTask, first, Duration(1), EdgeKind::kRelease);
  ASSERT_TRUE(engine.compute(kAnchorTask).feasible);
  EXPECT_EQ(metrics.counter("longest_path.runs"), 2u);
  EXPECT_EQ(metrics.counter("longest_path.incremental_runs"), 1u);
#if PAWS_TRACE_ENABLED
  ASSERT_EQ(countKind(sink, TraceEventKind::kLongestPath), 2u);
  EXPECT_STREQ(sink.events().back().label, "incremental");
#endif
}

TEST(ExecutorObsTest, IterationSpansAndOutcomeCounters) {
  const Problem p = rover::makeRoverProblem(rover::RoverCase::kTypical, 1);
  PowerAwareScheduler scheduler(p);
  const ScheduleResult r = scheduler.schedule();
  ASSERT_TRUE(r.ok());
  const std::vector<runtime::CaseBinding> bindings = {
      {"typical", Watts::zero(), &p, *r.schedule, 2}};
  runtime::RuntimeExecutor executor(rover::missionSolarProfile(),
                                    rover::missionBattery(), bindings);
  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  runtime::ExecutorConfig config;
  config.targetSteps = 8;
  config.traceTasks = false;
  config.obs.trace = &sink;
  config.obs.metrics = &metrics;
  const runtime::ExecutionResult result = executor.run(config);

  EXPECT_TRUE(hasPhaseSpan(sink, "executor"));
  EXPECT_EQ(countKind(sink, TraceEventKind::kIteration),
            metrics.counter("executor.iterations"));
  EXPECT_GT(metrics.counter("executor.iterations"), 0u);
  EXPECT_EQ(metrics.counter("executor.missions_complete"),
            result.complete ? 1u : 0u);
  EXPECT_EQ(metrics.gauge("executor.steps"),
            static_cast<double>(result.steps));
}

}  // namespace
}  // namespace paws
