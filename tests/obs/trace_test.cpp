#include <gtest/gtest.h>

#include <string>

#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"

namespace paws::obs {
namespace {

constexpr TraceEventKind kAllKinds[] = {
    TraceEventKind::kPhase,        TraceEventKind::kLongestPath,
    TraceEventKind::kCandidate,    TraceEventKind::kBacktrack,
    TraceEventKind::kDelay,        TraceEventKind::kLock,
    TraceEventKind::kRecursion,    TraceEventKind::kMoveAccepted,
    TraceEventKind::kMoveRejected, TraceEventKind::kScanPass,
    TraceEventKind::kIteration,
};

TEST(TraceEventKindTest, EveryKindHasAUniqueName) {
  std::vector<std::string> names;
  for (const TraceEventKind k : kAllKinds) {
    const std::string name = toString(k);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    for (const std::string& seen : names) EXPECT_NE(name, seen);
    names.push_back(name);
  }
}

TEST(TraceSinkTest, InstantStampsMonotonicTimesAndPayload) {
  TraceSink sink;
  EXPECT_TRUE(sink.empty());
  sink.instant(TraceEventKind::kDelay, 3, 17, 5, 2, "why");
  sink.instant(TraceEventKind::kLock, 4);
  ASSERT_EQ(sink.size(), 2u);
  const TraceEvent& d = sink.events()[0];
  EXPECT_EQ(d.kind, TraceEventKind::kDelay);
  EXPECT_EQ(d.task, 3u);
  EXPECT_EQ(d.at, 17);
  EXPECT_EQ(d.value, 5);
  EXPECT_EQ(d.depth, 2u);
  EXPECT_STREQ(d.label, "why");
  EXPECT_EQ(d.durNs, 0);
  EXPECT_GE(d.tsNs, 0);
  const TraceEvent& l = sink.events()[1];
  EXPECT_EQ(l.task, 4u);
  EXPECT_GE(l.tsNs, d.tsNs);

  sink.clear();
  EXPECT_TRUE(sink.empty());
}

TEST(TraceSinkTest, SpanRecordsDurationVerbatim) {
  TraceSink sink;
  sink.span(TraceEventKind::kLongestPath, 100, 250, "full", 1, 42);
  ASSERT_EQ(sink.size(), 1u);
  const TraceEvent& e = sink.events()[0];
  EXPECT_EQ(e.tsNs, 100);
  EXPECT_EQ(e.durNs, 250);
  EXPECT_EQ(e.value, 42);
  EXPECT_EQ(e.task, TraceEvent::kNoTask);
}

TEST(TraceSinkTest, CapDropsAndCountsInsteadOfGrowing) {
  TraceSink sink(/*maxEvents=*/2);
  sink.instant(TraceEventKind::kCandidate, 1);
  sink.instant(TraceEventKind::kCandidate, 2);
  EXPECT_EQ(sink.droppedEvents(), 0u);
  sink.instant(TraceEventKind::kCandidate, 3);
  sink.span(TraceEventKind::kPhase, 0, 10, "late");
  EXPECT_EQ(sink.size(), 2u);  // held events stop at the cap
  EXPECT_EQ(sink.droppedEvents(), 2u);
  EXPECT_EQ(sink.events()[1].task, 2u);  // the first two survived verbatim

  // Raising the cap admits new events again; clear() resets the counter.
  sink.setMaxEvents(3);
  sink.instant(TraceEventKind::kCandidate, 4);
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.droppedEvents(), 2u);
  sink.clear();
  EXPECT_EQ(sink.droppedEvents(), 0u);

  // The dropped line surfaces in the summary only when events were lost.
  TraceSink tiny(1);
  tiny.instant(TraceEventKind::kDelay);
  tiny.instant(TraceEventKind::kDelay);
  MetricsRegistry metrics;
  const std::string summary = renderObsSummary(metrics, &tiny);
  EXPECT_NE(summary.find("dropped (cap 1 events): 1"), std::string::npos);
  EXPECT_EQ(renderObsSummary(metrics, &sink).find("dropped"),
            std::string::npos);
}

TEST(TraceMacrosTest, NullSinkIsANoOp) {
  TraceSink* sink = nullptr;
  // Must compile and do nothing — this is the disabled-by-default hot path.
  PAWS_TRACE_INSTANT(sink, TraceEventKind::kBacktrack, 1);
  PAWS_TRACE_SPAN(sink, TraceEventKind::kPhase, 0, 10, "p");
  TraceSink real;
  PAWS_TRACE_INSTANT(&real, TraceEventKind::kBacktrack, 1);
#if PAWS_TRACE_ENABLED
  EXPECT_EQ(real.size(), 1u);
#else
  EXPECT_TRUE(real.empty());
#endif
}

TEST(ObsContextTest, EnabledAndInheritance) {
  ObsContext none;
  EXPECT_FALSE(none.enabled());

  TraceSink sink;
  MetricsRegistry metrics;
  ObsContext parent{&sink, &metrics};
  EXPECT_TRUE(parent.enabled());

  ObsContext child;
  child.inheritFrom(parent);
  EXPECT_EQ(child.trace, &sink);
  EXPECT_EQ(child.metrics, &metrics);

  // Explicitly-set hooks are not clobbered.
  MetricsRegistry mine;
  ObsContext custom;
  custom.metrics = &mine;
  custom.inheritFrom(parent);
  EXPECT_EQ(custom.metrics, &mine);
  EXPECT_EQ(custom.trace, &sink);
}

TEST(PhaseTimerTest, RecordsSpanAndHistogramOnce) {
  TraceSink sink;
  MetricsRegistry metrics;
  ObsContext obs{&sink, &metrics};
  {
    PhaseTimer timer(obs, "unit-test", 3);
    timer.finish();
    timer.finish();  // idempotent; the destructor adds nothing either
  }
  ASSERT_EQ(sink.size(), 1u);
  const TraceEvent& e = sink.events()[0];
  EXPECT_EQ(e.kind, TraceEventKind::kPhase);
  EXPECT_STREQ(e.label, "unit-test");
  EXPECT_EQ(e.depth, 3u);
  EXPECT_GE(e.durNs, 0);
  EXPECT_EQ(metrics.histogram("phase.unit-test.wall_us").count, 1u);
}

TEST(PhaseTimerTest, CustomKindLandsInTheEvent) {
  TraceSink sink;
  ObsContext obs{&sink, nullptr};
  { PhaseTimer timer(obs, "iter", 7, TraceEventKind::kIteration); }
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].kind, TraceEventKind::kIteration);
}

TEST(PhaseTimerTest, DisabledContextRecordsNothing) {
  ObsContext obs;
  { PhaseTimer timer(obs, "ghost"); }
  // Nothing to assert against — the test is that this neither crashes nor
  // dereferences the null hooks (ASan/UBSan builds verify the latter).
  SUCCEED();
}

TEST(SearchTraceJsonTest, SpansInstantsAndRowMetadata) {
  TraceSink sink;
  sink.span(TraceEventKind::kPhase, 1500, 2500, "timing");
  sink.instant(TraceEventKind::kDelay, 2, 10, 4, 1);
  const std::string json = searchTraceToJson(sink);

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // The phase span keeps its label as the event name and carries a dur.
  EXPECT_NE(json.find("{\"name\":\"timing\",\"cat\":\"search\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":1,\"ts\":1.500,\"dur\":2.500"),
            std::string::npos);
  // The delay instant: ph "i", max-power row, thread scope, task payload.
  EXPECT_NE(json.find("{\"name\":\"delay\",\"cat\":\"search\",\"ph\":\"i\","
                      "\"pid\":1,\"tid\":4"),
            std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"task\":2"), std::string::npos);
  // One thread_name metadata record per populated row.
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":1,\"args\":{\"name\":\"phases\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"max-power decisions\""), std::string::npos);
}

TEST(SearchTraceJsonlTest, OneObjectPerLineInRecordingOrder) {
  TraceSink sink;
  sink.instant(TraceEventKind::kCandidate, 1, 0, 0, 2);
  sink.span(TraceEventKind::kLongestPath, 10, 20, "incremental", 0, 9);
  const std::string jsonl = searchTraceToJsonl(sink);

  const auto newline = jsonl.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string first = jsonl.substr(0, newline);
  EXPECT_EQ(first.rfind("{\"kind\":\"candidate\"", 0), 0u);
  EXPECT_NE(first.find("\"task\":1"), std::string::npos);
  EXPECT_NE(first.find("\"depth\":2"), std::string::npos);
  const std::string second = jsonl.substr(newline + 1);
  EXPECT_EQ(second.rfind("{\"kind\":\"longest-path\"", 0), 0u);
  EXPECT_NE(second.find("\"ts_ns\":10"), std::string::npos);
  EXPECT_NE(second.find("\"dur_ns\":20"), std::string::npos);
  EXPECT_NE(second.find("\"label\":\"incremental\""), std::string::npos);
  // Untasked events omit the task field entirely.
  EXPECT_EQ(second.find("\"task\""), std::string::npos);
}

TEST(ObsSummaryTest, CombinesMetricsTableAndEventDigest) {
  MetricsRegistry metrics;
  metrics.add("search.delays", 2);
  TraceSink sink;
  sink.instant(TraceEventKind::kDelay);
  sink.instant(TraceEventKind::kDelay);
  sink.instant(TraceEventKind::kScanPass);
  const std::string summary = renderObsSummary(metrics, &sink);
  EXPECT_NE(summary.find("search.delays"), std::string::npos);
  EXPECT_NE(summary.find("trace (3 events):"), std::string::npos);
  EXPECT_NE(summary.find("delay: 2"), std::string::npos);
  EXPECT_NE(summary.find("scan-pass: 1"), std::string::npos);
  // Without a sink the digest is omitted.
  EXPECT_EQ(renderObsSummary(metrics, nullptr).find("trace ("),
            std::string::npos);
}

}  // namespace
}  // namespace paws::obs
