// Bench regression gate (tools/bench_diff's engine): exact counters
// hard-fail, missing suites/benches hard-fail, wall-time drift warns
// unless promoted, and unreadable input fails closed.
#include <gtest/gtest.h>

#include "obs/bench_compare.hpp"

namespace paws::obs {
namespace {

const char* kBaseline = R"({
  "suites": {
    "optimality": {
      "BM_Heuristic/1": {"wall_ns": 1000, "cpu_ns": 900, "iterations": 10,
        "counters": {"schedule_bytes": 89, "lp_runs": 32, "threads": 1}}
    },
    "scalability": {
      "BM_Pipeline/64": {"wall_ns": 5000, "cpu_ns": 4500, "iterations": 5,
        "counters": {"lp_runs": 80}}
    }
  }
})";

std::string withChange(const std::string& from, const std::string& to) {
  std::string s = kBaseline;
  const auto pos = s.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  s.replace(pos, from.size(), to);
  return s;
}

TEST(BenchCompareTest, IdenticalRunsPass) {
  const BenchComparison c = compareBenchResults(kBaseline, kBaseline);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.hardCount, 0u);
  EXPECT_EQ(c.softCount, 0u);
  EXPECT_EQ(c.benchesCompared, 2u);
}

TEST(BenchCompareTest, ExactCounterMismatchIsHard) {
  const std::string current =
      withChange("\"schedule_bytes\": 89", "\"schedule_bytes\": 42");
  const BenchComparison c = compareBenchResults(kBaseline, current);
  EXPECT_FALSE(c.ok());
  ASSERT_GE(c.findings.size(), 1u);
  EXPECT_TRUE(c.findings[0].hard);
  EXPECT_EQ(c.findings[0].metric, "schedule_bytes");
}

TEST(BenchCompareTest, MissingExactCounterIsHard) {
  const std::string current =
      withChange("\"schedule_bytes\": 89, ", "");
  const BenchComparison c = compareBenchResults(kBaseline, current);
  EXPECT_FALSE(c.ok());
}

TEST(BenchCompareTest, MissingBenchOrSuiteIsHard) {
  // Whole scalability suite gone.
  const std::string current = withChange(
      R"(,
    "scalability": {
      "BM_Pipeline/64": {"wall_ns": 5000, "cpu_ns": 4500, "iterations": 5,
        "counters": {"lp_runs": 80}}
    })",
      "");
  const BenchComparison c = compareBenchResults(kBaseline, current);
  EXPECT_FALSE(c.ok());
  EXPECT_GE(c.hardCount, 1u);
}

TEST(BenchCompareTest, NewBenchesInCurrentAreNotRegressions) {
  // Baseline missing a suite the current run has: coverage growth, fine.
  const std::string smallBaseline = withChange(
      R"(,
    "scalability": {
      "BM_Pipeline/64": {"wall_ns": 5000, "cpu_ns": 4500, "iterations": 5,
        "counters": {"lp_runs": 80}}
    })",
      "");
  EXPECT_TRUE(compareBenchResults(smallBaseline, kBaseline).ok());
}

TEST(BenchCompareTest, WallSlowdownIsSoftUnlessPromoted) {
  const std::string current =
      withChange("\"wall_ns\": 1000", "\"wall_ns\": 3000");  // 3x slower
  const BenchComparison soft = compareBenchResults(kBaseline, current);
  EXPECT_TRUE(soft.ok());  // warn-only by default
  EXPECT_GE(soft.softCount, 1u);

  BenchCompareOptions options;
  options.failOnWall = true;
  const BenchComparison hard =
      compareBenchResults(kBaseline, current, options);
  EXPECT_FALSE(hard.ok());

  // A speedup never warns.
  const std::string faster =
      withChange("\"wall_ns\": 1000", "\"wall_ns\": 200");
  EXPECT_EQ(compareBenchResults(kBaseline, faster).softCount, 0u);
}

TEST(BenchCompareTest, WallToleranceIsConfigurable) {
  const std::string current =
      withChange("\"wall_ns\": 1000", "\"wall_ns\": 1300");  // +30%
  EXPECT_EQ(compareBenchResults(kBaseline, current).softCount, 0u);
  BenchCompareOptions tight;
  tight.wallTolerance = 0.1;
  EXPECT_GE(compareBenchResults(kBaseline, current, tight).softCount, 1u);
}

TEST(BenchCompareTest, ParseFailureFailsClosed) {
  const BenchComparison bad = compareBenchResults("not json", kBaseline);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.error.empty());
  const BenchComparison noSuites =
      compareBenchResults("{\"nope\": 1}", kBaseline);
  EXPECT_FALSE(noSuites.ok());
}

TEST(BenchCompareTest, RenderListsHardFindingsFirst) {
  // One hard (exact counter) and one soft (10x wall) finding together.
  std::string current = withChange("\"wall_ns\": 5000", "\"wall_ns\": 50000");
  current.replace(current.find("\"schedule_bytes\": 89"),
                  std::string("\"schedule_bytes\": 89").size(),
                  "\"schedule_bytes\": 42");
  const BenchComparison c = compareBenchResults(kBaseline, current);
  const std::string text = renderBenchComparison(c, "base", "cur");
  // Line-anchored: the summary line's "N warnings" must not match.
  const auto fail = text.find("\nFAIL ");
  const auto warn = text.find("\nwarn ");
  ASSERT_NE(fail, std::string::npos) << text;
  ASSERT_NE(warn, std::string::npos) << text;
  EXPECT_LT(fail, warn);
}

}  // namespace
}  // namespace paws::obs
