// RunReport round-trip and golden tests: the JSON a report writes must
// parse back to an equal report (schema v1 contract), and the normalized
// report for the bundled satellite example must match the committed golden
// byte for byte — the determinism witness for the whole obs pipeline.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "io/writer.hpp"
#include "analysis/analysis.hpp"
#include "obs/context.hpp"
#include "obs/incumbents.hpp"
#include "obs/report.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws::obs {
namespace {

RunReport sampleReport() {
  RunReport r;
  r.kind = "schedule";
  r.problemName = "sample";
  r.problemHash = 0xdeadbeefcafef00dULL;
  r.numTasks = 8;
  r.numResources = 5;
  r.numConstraints = 12;
  r.scheduler = "pipeline";
  r.trials = 4;
  r.jobs = 2;
  r.timeoutMs = 250;
  r.status = "ok";
  r.stopReason = "none";
  r.exitClass = 0;
  r.valid = true;
  r.message = "with \"quotes\" and\nnewlines";
  r.hasSchedule = true;
  r.finishTicks = 42;
  r.energyCostMwt = 12345;
  r.peakPowerMw = 17000;
  r.scheduleBytes = 167;
  r.metrics.add("search.backtracks", 7);
  r.metrics.set("pipeline.rho", 0.734);
  r.metrics.set("exact.int", 3.0);
  r.metrics.observe("phase.timing.wall_us", 12.5);
  r.metrics.observe("phase.timing.wall_us", 800.0);
  r.metrics.observe("effort.per_trial", 3.0);
  r.incumbents.push_back({1000, 283000});
  r.incumbents.push_back({2000, 213000});
  r.createdUnixMs = 1754700000000;
  r.host = "test-host";
  return r;
}

TEST(RunReportTest, RoundTripsThroughJsonExactly) {
  const RunReport original = sampleReport();
  const std::string json = runReportToJson(original);
  const ReportParseResult parsed = parseRunReport(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.report, original);
  // And a second generation is byte-identical (writer is deterministic).
  EXPECT_EQ(runReportToJson(parsed.report), json);
}

TEST(RunReportTest, RoundTripsNonIntegralDoublesExactly) {
  RunReport r;
  r.metrics.set("g.pi", 3.141592653589793);
  r.metrics.set("g.tiny", 1e-17);
  r.metrics.set("g.negative", -0.125);
  r.metrics.observe("h.vals", 0.3333333333333333);
  const ReportParseResult parsed = parseRunReport(runReportToJson(r));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.report, r);
}

TEST(RunReportTest, ParserRejectsGarbageAndNewerSchema) {
  EXPECT_FALSE(parseRunReport("not json").ok);
  EXPECT_FALSE(parseRunReport("[1,2,3]").ok);
  EXPECT_FALSE(parseRunReport("{\"schema\": 999, \"kind\": \"x\"}").ok);
  // Older/minimal documents parse with defaults intact.
  const ReportParseResult minimal =
      parseRunReport("{\"schema\": 1, \"kind\": \"simulate\"}");
  ASSERT_TRUE(minimal.ok) << minimal.error;
  EXPECT_EQ(minimal.report.kind, "simulate");
  EXPECT_EQ(minimal.report.stopReason, "none");
  EXPECT_FALSE(minimal.report.hasSchedule);
}

TEST(RunReportTest, NormalizeVolatileStripsClockHostAndTimingHistograms) {
  RunReport r = sampleReport();
  r.normalizeVolatile();
  EXPECT_EQ(r.createdUnixMs, 0);
  EXPECT_TRUE(r.host.empty());
  // Incumbent costs survive; their wall-clock timestamps do not.
  ASSERT_EQ(r.incumbents.size(), 2u);
  EXPECT_EQ(r.incumbents[0].tsNs, 0);
  EXPECT_EQ(r.incumbents[0].costMwt, 283000);
  // Timing histograms (_us/_ns) are gone, non-timing ones stay.
  EXPECT_FALSE(r.metrics.has("phase.timing.wall_us"));
  EXPECT_TRUE(r.metrics.has("effort.per_trial"));
  EXPECT_EQ(r.metrics.counter("search.backtracks"), 7u);
  // Normalizing twice is a fixed point.
  RunReport again = r;
  again.normalizeVolatile();
  EXPECT_EQ(again, r);
}

TEST(RunReportTest, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("problem a"), fnv1a64("problem b"));
}

// ----- golden report over the bundled satellite example -----------------

std::string readRepoFile(const std::string& relative) {
  for (const char* prefix : {"../../", "", "../"}) {
    std::ifstream in(prefix + relative);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return buffer.str();
    }
  }
  return {};
}

/// Builds the report exactly the way `pawsc schedule --report` does, minus
/// the CLI: pipeline scheduler, obs context attached, digest + validator.
RunReport satelliteReport(const Problem& p) {
  MetricsRegistry registry;
  IncumbentLog incumbents;
  ObsContext obs;
  obs.metrics = &registry;
  obs.incumbents = &incumbents;

  PowerAwareOptions options;
  options.obs = obs;
  const ScheduleResult r = PowerAwareScheduler(p, options).schedule();
  EXPECT_TRUE(r.ok()) << r.message;

  RunReport report;
  report.kind = "schedule";
  report.problemName = p.name();
  report.problemHash = fnv1a64(io::problemToText(p));
  report.numTasks = p.numTasks();
  report.numResources = p.numResources();
  report.numConstraints = p.constraints().size();
  report.scheduler = "pipeline";
  report.trials = 4;
  report.jobs = 0;
  report.timeoutMs = -1;
  report.status = toString(r.status);
  report.exitClass = 0;
  report.metrics = registry;
  report.incumbents = incumbents.points();
  if (r.schedule.has_value()) {
    const Schedule& s = *r.schedule;
    report.hasSchedule = true;
    report.finishTicks = s.finish().ticks();
    report.energyCostMwt = s.energyCost(p.minPower()).milliwattTicks();
    report.peakPowerMw = ScheduleAnalysis::minimalValidPmax(s).milliwatts();
    std::ostringstream txt;
    io::writeSchedule(txt, s, "pipeline");
    report.scheduleBytes = txt.str().size();
    report.valid = ScheduleValidator(p).validate(s).valid();
  }
  stampVolatile(report);
  return report;
}

TEST(RunReportGoldenTest, SatelliteNormalizedReportMatchesGolden) {
  const std::string source = readRepoFile("examples/data/satellite.paws");
  ASSERT_FALSE(source.empty()) << "cannot locate examples/data/satellite.paws";
  const io::ParseResult parsed = io::parseProblem(source);
  ASSERT_TRUE(parsed.ok());

  RunReport report = satelliteReport(*parsed.problem);
  // The volatile fields really were stamped before normalization...
  EXPECT_GT(report.createdUnixMs, 0);
  report.normalizeVolatile();
  const std::string normalized = runReportToJson(report);

  // ...and two runs of the same binary agree byte for byte.
  RunReport second = satelliteReport(*parsed.problem);
  second.normalizeVolatile();
  EXPECT_EQ(runReportToJson(second), normalized);

  const std::string golden =
      readRepoFile("tests/obs/golden/satellite_report.json");
  ASSERT_FALSE(golden.empty())
      << "cannot locate tests/obs/golden/satellite_report.json";
  EXPECT_EQ(normalized, golden)
      << "normalized satellite report drifted from the golden; if the "
         "change is intentional, regenerate the golden file with the "
         "actual output above";

  // The golden also round-trips (guards the schema of the committed file).
  const ReportParseResult reparsed = parseRunReport(golden);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(reparsed.report, report);
}

}  // namespace
}  // namespace paws::obs
