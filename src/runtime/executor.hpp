// Runtime execution of statically computed schedules.
//
// Section 5.3: the static power-aware schedules are "adaptable to a runtime
// scheduler that schedules tasks according to the dynamically changing
// constraints imposed by the environment". MissionSimulator (rover/)
// accounts at plan granularity; this executor is the faithful runtime half:
// it replays actual schedules segment by segment against a live SolarSource
// and Battery, producing a timestamped trace.
//
//   * at each iteration boundary it selects the registered case binding
//     matching the current solar level (the runtime scheduler's only job);
//   * battery draw is integrated exactly: for every profile segment, the
//     draw rate is max(0, P(t) - solar(t)), with segments subdivided at
//     solar phase changes;
//   * a *brownout* is an instant where the executing schedule's demand
//     exceeds solar + max battery output — it happens when the environment
//     degrades mid-iteration (the paper's dusk transition). The executor
//     either logs it (default; the battery is briefly over-drawn, which
//     real missions tolerate for seconds) or aborts the iteration;
//   * battery depletion ends the mission at the exact tick the charge runs
//     out, mid-task if need be.
//
// Degraded missions (fault/): a scripted FaultPlan injects task overruns,
// transient task failures, solar transients and battery derates into the
// replay, and a ContingencyOptions policy arms the closed-loop responses —
// bounded retry, brownout-triggered repairSchedule() replanning, shedding
// of droppable tasks, and a deadline-miss watchdog. With `faults == nullptr`
// and a default-constructed policy the executor behaves bit-identically to
// the fault-unaware code: same trace, same battery accounting.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/units.hpp"
#include "fault/contingency.hpp"
#include "fault/fault.hpp"
#include "guard/budget.hpp"
#include "model/mode_policy.hpp"
#include "obs/context.hpp"
#include "power/sources.hpp"
#include "sched/schedule.hpp"

namespace paws::runtime {

enum class EventKind : std::uint8_t {
  kIterationStarted,
  kScheduleSelected,
  kTaskStarted,
  kTaskFinished,
  kBrownout,        ///< demand exceeded solar + battery max output
  kBatteryDepleted,
  kNoFeasibleSchedule,
  kMissionComplete,
  // Fault-injection and contingency events (fault/).
  kTaskOverrun,       ///< an injected overrun stretched a task's duration
  kTaskFailed,        ///< a task attempt completed without its result
  kTaskRetried,       ///< a failed task re-executes (contingency: retry)
  kTaskShed,          ///< a droppable task was abandoned (contingency: shed)
  kTaskUnrecoverable, ///< retries exhausted on a critical task — mission lost
  kReplanned,         ///< repairSchedule() replaced the running schedule
  kReplanFailed,      ///< the repair attempt came back infeasible
  kBatteryDerated,    ///< an injected derate shrank the battery
  kDeadlineMissed,    ///< iteration blew its nominal span (watchdog)
  kStalled,           ///< an iteration made zero progress — mission ended
  kRunInterrupted,    ///< wall-clock RunBudget tripped; replay stopped at an
                      ///< iteration boundary (mission-time state consistent)
  // System criticality-mode events (model/mode_policy.hpp).
  kModeEscalated,     ///< a trigger pushed the system one rung down the
                      ///< mode ladder; tasks above the new ceiling shed
  kModeDeescalated,   ///< sustained slack restored the previous mode
  kModeInfeasible,    ///< even the survival task set cannot fit the amended
                      ///< budget — mission continues on the unrepaired plan
};

const char* toString(EventKind kind);

struct Event {
  Time at;  ///< mission time
  EventKind kind;
  std::string detail;
};

/// One environmental case: the solar level it was scheduled for, the
/// problem carrying that case's task powers, and the static schedule.
struct CaseBinding {
  std::string label;
  Watts solarLevel;         ///< select when current solar >= this level
  const Problem* problem;   ///< must outlive the executor
  Schedule schedule;
  int stepsPerIteration = 2;
};

struct ExecutorConfig {
  int targetSteps = 48;
  /// Abort the running iteration at the first brownout instant instead of
  /// pushing through on the (over-drawn) battery.
  bool abortOnBrownout = false;
  std::uint64_t maxIterations = 1000000;
  /// Record per-task start/finish events (traces get large otherwise).
  bool traceTasks = true;
  /// Observability hooks: each iteration becomes a kIteration wall-clock
  /// span; outcomes land in "executor.*" counters/gauges.
  obs::ObsContext obs;
  /// Scripted fault stream for this mission (nullptr = clean replay). Must
  /// outlive run().
  const fault::FaultPlan* faults = nullptr;
  /// Closed-loop responses; default-constructed = all off.
  fault::ContingencyOptions contingency;
  /// System criticality modes (model/mode_policy.hpp). Default-constructed
  /// = disabled: the replay is then bit-identical to a mode-unaware build.
  /// When enabled, overrun/brownout/depletion-risk triggers escalate the
  /// mode one rung per iteration, shedding every task above the new
  /// rung's criticality ceiling wholesale and repairing the survivors
  /// under the rung's amended Pmax/Pmin.
  ModePolicy modes;
  /// Wall-clock deadline / cancellation for the replay itself. Checked at
  /// iteration boundaries only, so a trip always leaves the mission-time
  /// accounting consistent. Inactive (the default) costs one branch per
  /// iteration and the result is byte-identical to the unguarded replay.
  guard::RunBudget budget;
};

struct ExecutionResult {
  int steps = 0;
  Time finishedAt;
  Energy batteryDrawn;
  bool complete = false;
  bool batteryDepleted = false;
  int brownouts = 0;
  // Degraded-mission accounting (all zero on a clean replay).
  int faultsInjected = 0;   ///< faults that actually struck the mission
  int retries = 0;          ///< task re-executions scheduled
  int replans = 0;          ///< successful mid-iteration repairs
  int replanFailures = 0;   ///< repairs that came back infeasible
  int shedTasks = 0;        ///< droppable tasks abandoned
  int deadlineMisses = 0;   ///< watchdog-flagged iteration overruns
  bool unrecoverable = false;  ///< a critical task exhausted its retries
  bool stalled = false;        ///< a zero-progress iteration ended the run
  // System-mode accounting (all zero / empty when ExecutorConfig::modes is
  // disabled).
  int modeEscalations = 0;     ///< rungs descended over the mission
  int modeDeescalations = 0;   ///< rungs re-ascended on sustained slack
  int modeShedTasks = 0;       ///< tasks shed wholesale by mode ceilings
  int finalMode = 0;           ///< mode ladder index at mission end
  bool modeInfeasible = false; ///< last rung's repair came back infeasible
  /// Exact mission tick the battery charge ran out (from the Battery's
  /// latch); nullopt when the mission ended with charge to spare.
  std::optional<Time> depletedAt;
  /// kNone unless the RunBudget tripped; then the replay stopped early at
  /// an iteration boundary and `complete` reports the progress made so far.
  guard::StopReason stopReason = guard::StopReason::kNone;
  std::vector<Event> trace;
};

class RuntimeExecutor {
 public:
  /// `bindings` must be non-empty; selection picks the binding with the
  /// highest solarLevel not exceeding the current solar output.
  RuntimeExecutor(SolarSource solar, Battery battery,
                  std::vector<CaseBinding> bindings);

  [[nodiscard]] ExecutionResult run(const ExecutorConfig& config) const;

 private:
  const CaseBinding* selectBinding(Watts solarNow) const;

  SolarSource solar_;
  Battery battery_;
  std::vector<CaseBinding> bindings_;
};

}  // namespace paws::runtime
