// Runtime execution of statically computed schedules.
//
// Section 5.3: the static power-aware schedules are "adaptable to a runtime
// scheduler that schedules tasks according to the dynamically changing
// constraints imposed by the environment". MissionSimulator (rover/)
// accounts at plan granularity; this executor is the faithful runtime half:
// it replays actual schedules segment by segment against a live SolarSource
// and Battery, producing a timestamped trace.
//
//   * at each iteration boundary it selects the registered case binding
//     matching the current solar level (the runtime scheduler's only job);
//   * battery draw is integrated exactly: for every profile segment, the
//     draw rate is max(0, P(t) - solar(t)), with segments subdivided at
//     solar phase changes;
//   * a *brownout* is an instant where the executing schedule's demand
//     exceeds solar + max battery output — it happens when the environment
//     degrades mid-iteration (the paper's dusk transition). The executor
//     either logs it (default; the battery is briefly over-drawn, which
//     real missions tolerate for seconds) or aborts the iteration;
//   * battery depletion ends the mission at the exact tick the charge runs
//     out, mid-task if need be.
#pragma once

#include <string>
#include <vector>

#include "base/units.hpp"
#include "obs/context.hpp"
#include "power/sources.hpp"
#include "sched/schedule.hpp"

namespace paws::runtime {

enum class EventKind : std::uint8_t {
  kIterationStarted,
  kScheduleSelected,
  kTaskStarted,
  kTaskFinished,
  kBrownout,        ///< demand exceeded solar + battery max output
  kBatteryDepleted,
  kNoFeasibleSchedule,
  kMissionComplete,
};

const char* toString(EventKind kind);

struct Event {
  Time at;  ///< mission time
  EventKind kind;
  std::string detail;
};

/// One environmental case: the solar level it was scheduled for, the
/// problem carrying that case's task powers, and the static schedule.
struct CaseBinding {
  std::string label;
  Watts solarLevel;         ///< select when current solar >= this level
  const Problem* problem;   ///< must outlive the executor
  Schedule schedule;
  int stepsPerIteration = 2;
};

struct ExecutorConfig {
  int targetSteps = 48;
  /// Abort the running iteration at the first brownout instant instead of
  /// pushing through on the (over-drawn) battery.
  bool abortOnBrownout = false;
  std::uint64_t maxIterations = 1000000;
  /// Record per-task start/finish events (traces get large otherwise).
  bool traceTasks = true;
  /// Observability hooks: each iteration becomes a kIteration wall-clock
  /// span; outcomes land in "executor.*" counters/gauges.
  obs::ObsContext obs;
};

struct ExecutionResult {
  int steps = 0;
  Time finishedAt;
  Energy batteryDrawn;
  bool complete = false;
  bool batteryDepleted = false;
  int brownouts = 0;
  std::vector<Event> trace;
};

class RuntimeExecutor {
 public:
  /// `bindings` must be non-empty; selection picks the binding with the
  /// highest solarLevel not exceeding the current solar output.
  RuntimeExecutor(SolarSource solar, Battery battery,
                  std::vector<CaseBinding> bindings);

  [[nodiscard]] ExecutionResult run(const ExecutorConfig& config) const;

 private:
  const CaseBinding* selectBinding(Watts solarNow) const;

  SolarSource solar_;
  Battery battery_;
  std::vector<CaseBinding> bindings_;
};

}  // namespace paws::runtime
