#include "runtime/executor.hpp"

#include <algorithm>
#include <sstream>

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"

namespace paws::runtime {

const char* toString(EventKind kind) {
  switch (kind) {
    case EventKind::kIterationStarted:
      return "iteration-started";
    case EventKind::kScheduleSelected:
      return "schedule-selected";
    case EventKind::kTaskStarted:
      return "task-started";
    case EventKind::kTaskFinished:
      return "task-finished";
    case EventKind::kBrownout:
      return "brownout";
    case EventKind::kBatteryDepleted:
      return "battery-depleted";
    case EventKind::kNoFeasibleSchedule:
      return "no-feasible-schedule";
    case EventKind::kMissionComplete:
      return "mission-complete";
  }
  return "?";
}

RuntimeExecutor::RuntimeExecutor(SolarSource solar, Battery battery,
                                 std::vector<CaseBinding> bindings)
    : solar_(std::move(solar)),
      battery_(std::move(battery)),
      bindings_(std::move(bindings)) {
  PAWS_CHECK_MSG(!bindings_.empty(), "executor needs at least one binding");
  for (const CaseBinding& b : bindings_) {
    PAWS_CHECK(b.problem != nullptr);
    PAWS_CHECK(b.stepsPerIteration > 0);
  }
}

const CaseBinding* RuntimeExecutor::selectBinding(Watts solarNow) const {
  const CaseBinding* best = nullptr;
  for (const CaseBinding& b : bindings_) {
    if (b.solarLevel > solarNow) continue;  // scheduled for more sun
    if (best == nullptr || b.solarLevel > best->solarLevel) best = &b;
  }
  return best;
}

ExecutionResult RuntimeExecutor::run(const ExecutorConfig& config) const {
  PAWS_CHECK(config.targetSteps > 0);
  obs::PhaseTimer phase(config.obs, "executor");
  ExecutionResult result;
  Battery battery = battery_;
  Time now = Time::zero();

  const auto emit = [&result](Time at, EventKind kind, std::string detail) {
    result.trace.push_back(Event{at, kind, std::move(detail)});
  };
  // Final outcome gauges/counters; called once on every exit path.
  const auto exportOutcome = [&result, &config]() {
    if (config.obs.metrics == nullptr) return;
    obs::MetricsRegistry& m = *config.obs.metrics;
    m.add("executor.brownouts", static_cast<std::uint64_t>(result.brownouts));
    if (result.batteryDepleted) m.add("executor.depletions");
    if (result.complete) m.add("executor.missions_complete");
    m.set("executor.steps", static_cast<double>(result.steps));
    m.set("executor.battery_drawn_mwticks",
          static_cast<double>(result.batteryDrawn.milliwattTicks()));
  };

  for (std::uint64_t iter = 0;
       result.steps < config.targetSteps && iter < config.maxIterations;
       ++iter) {
    obs::PhaseTimer iterTimer(config.obs, "iteration",
                              static_cast<std::uint32_t>(iter),
                              obs::TraceEventKind::kIteration);
    if (config.obs.metrics != nullptr) {
      config.obs.metrics->add("executor.iterations");
    }
    const Watts solarNow = solar_.levelAt(now);
    const CaseBinding* binding = selectBinding(solarNow);
    if (binding == nullptr) {
      std::ostringstream os;
      os << "no schedule registered for solar " << solarNow;
      emit(now, EventKind::kNoFeasibleSchedule, os.str());
      result.finishedAt = now;
      exportOutcome();
      return result;
    }
    emit(now, EventKind::kIterationStarted,
         "steps so far: " + std::to_string(result.steps));
    emit(now, EventKind::kScheduleSelected, binding->label);

    if (config.traceTasks) {
      // Task start/finish events in time order.
      struct Mark {
        Time at;
        bool start;
        TaskId task;
      };
      std::vector<Mark> marks;
      for (TaskId v : binding->problem->taskIds()) {
        marks.push_back(Mark{now + (binding->schedule.start(v) - Time::zero()),
                             true, v});
        marks.push_back(Mark{now + (binding->schedule.end(v) - Time::zero()),
                             false, v});
      }
      std::stable_sort(marks.begin(), marks.end(),
                       [](const Mark& a, const Mark& b) { return a.at < b.at; });
      for (const Mark& m : marks) {
        emit(m.at, m.start ? EventKind::kTaskStarted : EventKind::kTaskFinished,
             binding->problem->task(m.task).name);
      }
    }

    // Integrate battery draw across the iteration's profile, subdividing
    // segments at solar phase changes.
    const PowerProfile& profile = binding->schedule.powerProfile();
    bool aborted = false;
    Time iterationEnd = now + (binding->schedule.finish() - Time::zero());

    for (const PowerSegment& seg : profile.segments()) {
      if (aborted) break;
      Time cursor = now + (seg.interval.begin() - Time::zero());
      const Time segEnd = now + (seg.interval.end() - Time::zero());
      while (cursor < segEnd) {
        const Watts solarHere = solar_.levelAt(cursor);
        Time sliceEnd = segEnd;
        if (const auto change = solar_.nextChangeAfter(cursor);
            change && *change < segEnd) {
          sliceEnd = *change;
        }

        if (seg.power > solarHere + battery.maxOutput()) {
          ++result.brownouts;
          std::ostringstream os;
          os << "demand " << seg.power << " exceeds solar " << solarHere
             << " + battery " << battery.maxOutput();
          emit(cursor, EventKind::kBrownout, os.str());
          if (config.abortOnBrownout) {
            aborted = true;
            iterationEnd = cursor;
            break;
          }
        }

        if (seg.power > solarHere) {
          const Watts rate = seg.power - solarHere;
          const Duration span = sliceEnd - cursor;
          const Energy need = rate * span;
          if (need > battery.remaining()) {
            // Deplete mid-slice: afford floor(remaining / rate) ticks.
            const std::int64_t affordable =
                battery.remaining().milliwattTicks() / rate.milliwatts();
            const Time deathAt = cursor + Duration(affordable);
            battery.draw(rate * Duration(affordable));
            result.batteryDrawn = battery.drawn();
            result.batteryDepleted = true;
            emit(deathAt, EventKind::kBatteryDepleted,
                 "mid-iteration depletion");
            result.finishedAt = deathAt;
            exportOutcome();
            return result;
          }
          battery.draw(need);
        }
        cursor = sliceEnd;
      }
    }

    result.batteryDrawn = battery.drawn();
    if (!aborted) {
      result.steps += binding->stepsPerIteration;
    }
    now = iterationEnd;
  }

  result.finishedAt = now;
  result.complete = result.steps >= config.targetSteps;
  if (result.complete) {
    emit(now, EventKind::kMissionComplete,
         std::to_string(result.steps) + " steps");
  }
  exportOutcome();
  return result;
}

}  // namespace paws::runtime
