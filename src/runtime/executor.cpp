#include "runtime/executor.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "sched/repair.hpp"

namespace paws::runtime {

const char* toString(EventKind kind) {
  switch (kind) {
    case EventKind::kIterationStarted:
      return "iteration-started";
    case EventKind::kScheduleSelected:
      return "schedule-selected";
    case EventKind::kTaskStarted:
      return "task-started";
    case EventKind::kTaskFinished:
      return "task-finished";
    case EventKind::kBrownout:
      return "brownout";
    case EventKind::kBatteryDepleted:
      return "battery-depleted";
    case EventKind::kNoFeasibleSchedule:
      return "no-feasible-schedule";
    case EventKind::kMissionComplete:
      return "mission-complete";
    case EventKind::kTaskOverrun:
      return "task-overrun";
    case EventKind::kTaskFailed:
      return "task-failed";
    case EventKind::kTaskRetried:
      return "task-retried";
    case EventKind::kTaskShed:
      return "task-shed";
    case EventKind::kTaskUnrecoverable:
      return "task-unrecoverable";
    case EventKind::kReplanned:
      return "replanned";
    case EventKind::kReplanFailed:
      return "replan-failed";
    case EventKind::kBatteryDerated:
      return "battery-derated";
    case EventKind::kDeadlineMissed:
      return "deadline-missed";
    case EventKind::kStalled:
      return "stalled";
    case EventKind::kRunInterrupted:
      return "run-interrupted";
    case EventKind::kModeEscalated:
      return "mode-escalated";
    case EventKind::kModeDeescalated:
      return "mode-deescalated";
    case EventKind::kModeInfeasible:
      return "mode-infeasible";
  }
  return "?";
}

RuntimeExecutor::RuntimeExecutor(SolarSource solar, Battery battery,
                                 std::vector<CaseBinding> bindings)
    : solar_(std::move(solar)),
      battery_(std::move(battery)),
      bindings_(std::move(bindings)) {
  PAWS_CHECK_MSG(!bindings_.empty(), "executor needs at least one binding");
  for (const CaseBinding& b : bindings_) {
    PAWS_CHECK(b.problem != nullptr);
    PAWS_CHECK(b.stepsPerIteration > 0);
  }
}

const CaseBinding* RuntimeExecutor::selectBinding(Watts solarNow) const {
  const CaseBinding* best = nullptr;
  for (const CaseBinding& b : bindings_) {
    if (b.solarLevel > solarNow) continue;  // scheduled for more sun
    if (best == nullptr || b.solarLevel > best->solarLevel) best = &b;
  }
  return best;
}

namespace {

/// One execution of one task within an iteration (iteration-local times).
/// attempt 0 is the planned slot; attempts >= 1 are contingency retries.
struct Instance {
  TaskId task;
  Time start;
  Duration dur;
  std::uint32_t attempt = 0;
  bool fails = false;  ///< this attempt completes without its result
};

/// Per-vertex perturbation accumulated from this iteration's task faults.
struct Pert {
  std::int64_t scalePct = 100;
  Duration extra;
  std::uint32_t failures = 0;
};

Duration effectiveDuration(const Task& task, const Pert& pert) {
  return Duration(task.delay.ticks() * pert.scalePct / 100) + pert.extra;
}

}  // namespace

ExecutionResult RuntimeExecutor::run(const ExecutorConfig& config) const {
  PAWS_CHECK(config.targetSteps > 0);
  obs::PhaseTimer phase(config.obs, "executor");
  ExecutionResult result;
  Battery battery = battery_;
  Time now = Time::zero();

  const bool haveFaults = config.faults != nullptr && !config.faults->empty();
  static const fault::FaultPlan kEmptyPlan;
  const fault::FaultPlan& plan = haveFaults ? *config.faults : kEmptyPlan;

  // ---- System criticality-mode state (model/mode_policy.hpp) ----
  const ModePolicy& policy = config.modes;
  const bool modesOn = policy.enabled();
  std::size_t modeIdx = 0;              // current rung on the ladder
  bool pendingTrigger = false;          // brownout/overrun seen last iteration
  std::string pendingWhy;
  std::uint32_t cleanIters = 0;         // trigger-free streak (de-escalation)
  bool modeInfeasibleEmitted = false;   // one kModeInfeasible per stuck rung
  // Names shed by mode ceilings -> the rung that shed them, so optional
  // de-escalation can restore exactly the tasks its rung removed. Every
  // entry is mirrored into `shed` (the executor's effective shed set).
  std::map<std::string, std::size_t> modeShed;
  // Mode-repaired start vectors, keyed by (binding, rung, solar mw, battery
  // max-output mw, shed count) — every input that shapes the amended
  // problem. nullopt caches an infeasible repair. Deterministic: the key is
  // pure mission state, never wall-clock or allocation order.
  using RepairKey = std::tuple<const CaseBinding*, std::size_t, std::int64_t,
                               std::int64_t, std::size_t>;
  std::map<RepairKey, std::optional<std::vector<Time>>> modeRepairCache;

  const auto emit = [&result](Time at, EventKind kind, std::string detail) {
    result.trace.push_back(Event{at, kind, std::move(detail)});
  };
  const auto bump = [&config](const char* name) {
    if (config.obs.metrics != nullptr) config.obs.metrics->add(name);
  };
  // Final outcome gauges/counters; called once on every exit path.
  const auto exportOutcome = [&]() {
    result.finalMode = static_cast<int>(modeIdx);
    if (!result.depletedAt.has_value() && battery.depletedAt().has_value()) {
      result.depletedAt = battery.depletedAt();
    }
    if (config.obs.metrics == nullptr) return;
    obs::MetricsRegistry& m = *config.obs.metrics;
    if (modesOn) {
      m.add("mode.escalations",
            static_cast<std::uint64_t>(result.modeEscalations));
      m.add("mode.deescalations",
            static_cast<std::uint64_t>(result.modeDeescalations));
      m.add("mode.shed_tasks",
            static_cast<std::uint64_t>(result.modeShedTasks));
      if (result.modeInfeasible) m.add("mode.infeasible");
      m.set("mode.final", static_cast<double>(result.finalMode));
    }
    if (!battery.model().linear()) {
      m.set("battery.rate_excess_mwt",
            static_cast<double>(battery.rateExcess().milliwattTicks()));
      m.set("battery.recovered_mwt",
            static_cast<double>(battery.recovered().milliwattTicks()));
    }
    if (result.depletedAt.has_value()) {
      m.set("executor.depleted_at_tick",
            static_cast<double>(result.depletedAt->ticks()));
    }
    if (result.stopReason == guard::StopReason::kCancelled) {
      m.add("guard.cancels");
    } else if (result.stopReason == guard::StopReason::kDeadline) {
      m.add("guard.deadline_trips");
    }
    m.add("executor.brownouts", static_cast<std::uint64_t>(result.brownouts));
    if (result.batteryDepleted) m.add("executor.depletions");
    if (result.complete) m.add("executor.missions_complete");
    if (result.unrecoverable) m.add("executor.unrecoverable");
    if (result.stalled) m.add("executor.stalled");
    m.set("executor.steps", static_cast<double>(result.steps));
    m.set("executor.battery_drawn_mwticks",
          static_cast<double>(result.batteryDrawn.milliwattTicks()));
    // Distribution views of the same outcomes: one observation per run, so
    // campaign-merged registries expose p50/p90/p99 across missions.
    m.observe("executor.steps_per_run", static_cast<double>(result.steps));
    m.observe("executor.battery_drawn_per_run_mwt",
              static_cast<double>(result.batteryDrawn.milliwattTicks()));
  };

  // Effective environment: solar transients are overlaid once for the whole
  // mission; battery derates strike at iteration boundaries in `at` order.
  const SolarSource solar =
      haveFaults ? fault::applySolarFaults(solar_, plan) : solar_;
  std::vector<const fault::Fault*> derates;
  for (const fault::Fault& f : plan.faults) {
    if (f.kind == fault::FaultKind::kSolarTransient) {
      ++result.faultsInjected;
      bump("fault.injected");
    } else if (f.kind == fault::FaultKind::kBatteryDerate) {
      derates.push_back(&f);
    }
  }
  std::stable_sort(derates.begin(), derates.end(),
                   [](const fault::Fault* a, const fault::Fault* b) {
                     return a->at < b->at;
                   });
  std::size_t nextDerate = 0;

  // Names of tasks abandoned by the shedding contingency; mission-wide so a
  // shed task stays shed across iterations and case switches.
  std::set<std::string> shed;

  // Iteration boundaries are the executor's cancellation points: between
  // iterations there is no half-applied battery draw or trace suffix, so a
  // trip leaves everything consistent. Stride 1 — one clock read per
  // iteration is already far coarser than the schedulers' polling.
  guard::RunGuard runGuard(config.budget.resolved(), /*stride=*/1);

  for (std::uint64_t iter = 0;
       result.steps < config.targetSteps && iter < config.maxIterations;
       ++iter) {
    if (runGuard.poll() != guard::StopReason::kNone) {
      result.stopReason = runGuard.reason();
      emit(now, EventKind::kRunInterrupted,
           std::string(guard::toString(result.stopReason)) + " after " +
               std::to_string(result.steps) + " steps");
      result.finishedAt = now;
      exportOutcome();
      return result;
    }
    obs::PhaseTimer iterTimer(config.obs, "iteration",
                              static_cast<std::uint32_t>(iter),
                              obs::TraceEventKind::kIteration);
    if (config.obs.metrics != nullptr) {
      config.obs.metrics->add("executor.iterations");
    }
    while (nextDerate < derates.size() && derates[nextDerate]->at <= now) {
      const fault::Fault& f = *derates[nextDerate++];
      battery = fault::derate(battery, f);
      ++result.faultsInjected;
      bump("fault.injected");
      bump("fault.battery_derates");
      emit(now, EventKind::kBatteryDerated, fault::describe(f));
    }
    const Watts solarNow = solar.levelAt(now);
    const CaseBinding* binding = selectBinding(solarNow);
    if (binding == nullptr) {
      std::ostringstream os;
      os << "no schedule registered for solar " << solarNow;
      emit(now, EventKind::kNoFeasibleSchedule, os.str());
      result.finishedAt = now;
      exportOutcome();
      return result;
    }
    emit(now, EventKind::kIterationStarted,
         "steps so far: " + std::to_string(result.steps));
    emit(now, EventKind::kScheduleSelected, binding->label);

    const Problem& prob = *binding->problem;
    const Time iterStart = now;
    const int stepsBefore = result.steps;
    const int brownoutsBefore = result.brownouts;

    // ---- Mode ladder: trigger evaluation, wholesale shed, plan repair ----
    bool modeActiveThisIter = false;
    std::optional<std::vector<Time>> modeStarts;
    if (modesOn) {
      // Depletion risk is a state-of-charge trigger evaluated fresh each
      // boundary; brownout/overrun triggers carry over from last iteration.
      bool trigger = pendingTrigger;
      std::string why = pendingWhy;
      if (policy.depletionRiskPermille > 0 &&
          battery.remaining().milliwattTicks() * 1000 <
              battery.capacity().milliwattTicks() *
                  policy.depletionRiskPermille) {
        trigger = true;
        why = "depletion risk";
      }
      pendingTrigger = false;
      pendingWhy.clear();
      if (trigger) {
        cleanIters = 0;
        if (modeIdx + 1 < policy.modes.size()) {
          ++modeIdx;
          modeInfeasibleEmitted = false;
          ++result.modeEscalations;
          bump("mode.escalation_events");
          const SystemMode& entered = policy.modes[modeIdx];
          emit(now, EventKind::kModeEscalated, entered.name + " (" + why + ")");
          // Wholesale shed: every task above the new ceiling, across all
          // case bindings, leaves the mission in one stroke.
          for (const CaseBinding& b : bindings_) {
            for (TaskId v : b.problem->taskIds()) {
              const Task& t = b.problem->task(v);
              if (t.criticality <= entered.ceiling) continue;
              if (modeShed.count(t.name) > 0 || shed.count(t.name) > 0) {
                continue;
              }
              modeShed.emplace(t.name, modeIdx);
              shed.insert(t.name);
              ++result.modeShedTasks;
              bump("mode.shed_events");
              emit(now, EventKind::kTaskShed,
                   t.name + " (mode " + entered.name + ")");
            }
          }
        }
      } else if (policy.deescalateAfterClean > 0 && modeIdx > 0) {
        ++cleanIters;
        if (cleanIters >= policy.deescalateAfterClean) {
          // Sustained slack: climb one rung and restore the tasks that
          // rung (and only that rung) had shed.
          cleanIters = 0;
          for (auto it = modeShed.begin(); it != modeShed.end();) {
            if (it->second > modeIdx - 1) {
              shed.erase(it->first);
              it = modeShed.erase(it);
            } else {
              ++it;
            }
          }
          --modeIdx;
          modeInfeasibleEmitted = false;
          ++result.modeDeescalations;
          bump("mode.deescalation_events");
          emit(now, EventKind::kModeDeescalated, policy.modes[modeIdx].name);
        }
      }

      const SystemMode& mode = policy.modes[modeIdx];
      const bool amendedBudget = mode.pmaxPct < 100 || mode.pminPct < 100;
      modeActiveThisIter = modeIdx > 0 || amendedBudget || !modeShed.empty();
      if (modeActiveThisIter && (amendedBudget || !modeShed.empty())) {
        // Repair the survivors under the rung's amended budget. The repair
        // runs at local time zero — nothing of this iteration has executed
        // yet, so nothing is pinned and the whole plan may move.
        const RepairKey key{binding, modeIdx, solarNow.milliwatts(),
                            battery.maxOutput().milliwatts(), shed.size()};
        auto cached = modeRepairCache.find(key);
        if (cached == modeRepairCache.end()) {
          Problem amended(prob);
          const Watts pmaxBase = solarNow + battery.maxOutput();
          amended.setMaxPower(Watts::fromMilliwatts(
              pmaxBase.milliwatts() * mode.pmaxPct / 100));
          amended.setMinPower(Watts::fromMilliwatts(
              std::min(prob.minPower(), solarNow).milliwatts() *
              mode.pminPct / 100));
          for (const std::string& name : shed) {
            if (const auto id = amended.findTask(name)) {
              amended.setTaskPower(*id, Watts::zero());
            }
          }
          const ScheduleResult repaired = repairSchedule(
              RepairInput{&amended, &binding->schedule, Time::zero()});
          cached = modeRepairCache
                       .emplace(key, repaired.ok()
                                         ? std::optional<std::vector<Time>>(
                                               repaired.schedule->starts())
                                         : std::nullopt)
                       .first;
        }
        if (cached->second.has_value()) {
          modeStarts = cached->second;
        } else if (modeIdx + 1 < policy.modes.size()) {
          // A deeper rung remains: escalate again next boundary.
          pendingTrigger = true;
          pendingWhy = "mode repair infeasible";
        } else if (!modeInfeasibleEmitted) {
          // Structured dead end (satellite: no abort): even the survival
          // task set cannot fit the amended budget. Keep flying the
          // unrepaired plan minus shed tasks and say so once.
          modeInfeasibleEmitted = true;
          result.modeInfeasible = true;
          bump("mode.infeasible_events");
          emit(now, EventKind::kModeInfeasible,
               mode.name + ": survivors cannot fit amended budget");
        }
      }
    }

    // Collect this iteration's task faults (addressed by name; a name the
    // selected case does not know — or one already shed — is inert).
    std::vector<Pert> perts(prob.numVertices());
    bool taskFaultsThisIter = false;
    for (const fault::Fault& f : plan.faults) {
      if (f.iteration != iter) continue;
      if (f.kind != fault::FaultKind::kTaskOverrun &&
          f.kind != fault::FaultKind::kTaskFailure) {
        continue;
      }
      const auto id = prob.findTask(f.task);
      if (!id || shed.count(f.task) > 0) continue;
      taskFaultsThisIter = true;
      ++result.faultsInjected;
      bump("fault.injected");
      Pert& pe = perts[id->index()];
      if (f.kind == fault::FaultKind::kTaskOverrun) {
        pe.scalePct = pe.scalePct * f.scalePct / 100;
        pe.extra += f.extra;
        emit(now, EventKind::kTaskOverrun, fault::describe(f));
      } else {
        pe.failures += f.failures;
      }
    }

    const std::uint32_t allowedAttempts =
        config.contingency.retry ? 1 + config.contingency.maxRetries : 1;

    // A droppable task whose failures exceed the retry budget is shed up
    // front; a critical one will end the mission at its last attempt.
    if (config.contingency.shed) {
      for (TaskId v : prob.taskIds()) {
        const Task& t = prob.task(v);
        if (!t.droppable() || shed.count(t.name) > 0) continue;
        if (perts[v.index()].failures + 1 > allowedAttempts) {
          shed.insert(t.name);
          ++result.shedTasks;
          bump("contingency.shed_tasks");
          emit(now, EventKind::kTaskShed, t.name + " (retries exhausted)");
        }
      }
    }

    // Planned-vs-actual span baseline for the mode overrun trigger: the
    // plan actually in force this iteration (mode-repaired when one is).
    const Duration nominalSpan =
        (modeStarts.has_value() ? finishOf(prob, *modeStarts)
                                : binding->schedule.finish()) -
        Time::zero();

    if (!taskFaultsThisIter && !config.contingency.any() &&
        !modeActiveThisIter) {
      // ---- Clean fast path: byte-identical to the fault-unaware replay ----
      if (config.traceTasks) {
        // Task start/finish events in time order.
        struct Mark {
          Time at;
          bool start;
          TaskId task;
        };
        std::vector<Mark> marks;
        for (TaskId v : prob.taskIds()) {
          marks.push_back(
              Mark{now + (binding->schedule.start(v) - Time::zero()), true, v});
          marks.push_back(
              Mark{now + (binding->schedule.end(v) - Time::zero()), false, v});
        }
        std::stable_sort(
            marks.begin(), marks.end(),
            [](const Mark& a, const Mark& b) { return a.at < b.at; });
        for (const Mark& m : marks) {
          emit(m.at,
               m.start ? EventKind::kTaskStarted : EventKind::kTaskFinished,
               prob.task(m.task).name);
        }
      }

      // Integrate battery draw across the iteration's profile, subdividing
      // segments at solar phase changes.
      const PowerProfile& profile = binding->schedule.powerProfile();
      bool aborted = false;
      Time iterationEnd = now + (binding->schedule.finish() - Time::zero());

      for (const PowerSegment& seg : profile.segments()) {
        if (aborted) break;
        Time cursor = now + (seg.interval.begin() - Time::zero());
        const Time segEnd = now + (seg.interval.end() - Time::zero());
        while (cursor < segEnd) {
          const Watts solarHere = solar.levelAt(cursor);
          Time sliceEnd = segEnd;
          if (const auto change = solar.nextChangeAfter(cursor);
              change && *change < segEnd) {
            sliceEnd = *change;
          }

          if (seg.power > solarHere + battery.maxOutput()) {
            ++result.brownouts;
            std::ostringstream os;
            os << "demand " << seg.power << " exceeds solar " << solarHere
               << " + battery " << battery.maxOutput();
            emit(cursor, EventKind::kBrownout, os.str());
            if (config.abortOnBrownout) {
              aborted = true;
              iterationEnd = cursor;
              break;
            }
          }

          if (seg.power > solarHere) {
            const Watts rate = seg.power - solarHere;
            const Watts effRate = battery.effectiveRate(rate);
            const Duration span = sliceEnd - cursor;
            const Energy need = effRate * span;
            if (need > battery.remaining()) {
              // Deplete mid-slice: afford floor(remaining / effective rate)
              // ticks.
              const std::int64_t affordable =
                  battery.remaining().milliwattTicks() / effRate.milliwatts();
              const Time deathAt = cursor + Duration(affordable);
              battery.drawAt(rate, Duration(affordable), deathAt);
              battery.markDepleted(deathAt);
              result.batteryDrawn = battery.drawn();
              result.batteryDepleted = true;
              result.depletedAt = deathAt;
              emit(deathAt, EventKind::kBatteryDepleted,
                   "mid-iteration depletion");
              result.finishedAt = deathAt;
              exportOutcome();
              return result;
            }
            battery.drawAt(rate, span, cursor);
          } else {
            // Free-powered slice: a rate-capacity recovery window.
            battery.recover(sliceEnd - cursor);
          }
          cursor = sliceEnd;
        }
      }

      result.batteryDrawn = battery.drawn();
      if (!aborted) {
        result.steps += binding->stepsPerIteration;
      }
      now = iterationEnd;
    } else {
      // ---- Degraded path: explicit task instances, rebuilt on replan ----
      std::vector<Time> plannedStarts =
          modeStarts.has_value() ? *modeStarts : binding->schedule.starts();
      std::vector<Instance> instances;
      PowerProfile builtProfile;
      Time fatalAt = Time::max();  // iteration-local instant the mission dies
      TaskId fatalTask = TaskId::invalid();

      const auto rebuild = [&]() {
        instances.clear();
        Time tail = Time::zero();
        for (TaskId v : prob.taskIds()) {
          const Task& t = prob.task(v);
          if (shed.count(t.name) > 0) continue;
          const Pert& pe = perts[v.index()];
          const Duration dur = effectiveDuration(t, pe);
          const Time s = plannedStarts[v.index()];
          instances.push_back(Instance{v, s, dur, 0, pe.failures > 0});
          tail = std::max(tail, s + dur);
        }
        // Retries serialize after the iteration's planned work, in task-id
        // order, each preceded by a linearly growing backoff gap.
        for (TaskId v : prob.taskIds()) {
          const Task& t = prob.task(v);
          if (shed.count(t.name) > 0) continue;
          const Pert& pe = perts[v.index()];
          if (pe.failures == 0) continue;
          const Duration dur = effectiveDuration(t, pe);
          const std::uint32_t total =
              std::min<std::uint32_t>(pe.failures + 1, allowedAttempts);
          for (std::uint32_t a = 1; a < total; ++a) {
            const Time s =
                tail + config.contingency.backoff * static_cast<std::int64_t>(a);
            instances.push_back(Instance{v, s, dur, a, a < pe.failures});
            tail = s + dur;
          }
        }
        // The mission is lost at the first completion of a final attempt
        // that still fails (retries exhausted on a critical task).
        fatalAt = Time::max();
        fatalTask = TaskId::invalid();
        for (const Instance& in : instances) {
          const Pert& pe = perts[in.task.index()];
          if (pe.failures + 1 <= allowedAttempts) continue;
          if (in.attempt + 1 != allowedAttempts) continue;
          if (in.start + in.dur < fatalAt) {
            fatalAt = in.start + in.dur;
            fatalTask = in.task;
          }
        }
        PowerProfileBuilder builder;
        for (const Instance& in : instances) {
          builder.add(Interval(in.start, in.start + in.dur),
                      prob.task(in.task).power);
        }
        builtProfile = builder.build(prob.backgroundPower());
      };
      rebuild();

      bool aborted = false;
      std::uint32_t replansThisIter = 0;
      Time iterationEnd = now + (builtProfile.finish() - Time::zero());
      const auto localCap = [&]() {
        return std::min(builtProfile.finish(), fatalAt);
      };

      // Brownout response: repair the running schedule under the degraded
      // budget, shedding droppable future tasks when the repair is
      // infeasible. Returns true when a new plan is in force.
      const auto tryReplan = [&](Time cursor, Watts solarHere) -> bool {
        if (!config.contingency.replan) return false;
        const Time localNow = Time::zero() + (cursor - iterStart);
        while (replansThisIter < config.contingency.maxReplansPerIteration) {
          ++replansThisIter;
          Problem amended(prob);
          amended.setMaxPower(solarHere + battery.maxOutput());
          amended.setMinPower(std::min(prob.minPower(), solarHere));
          for (const std::string& name : shed) {
            if (const auto id = amended.findTask(name)) {
              amended.setTaskPower(*id, Watts::zero());
            }
          }
          const Schedule running(binding->problem, plannedStarts);
          const ScheduleResult repaired =
              repairSchedule(RepairInput{&amended, &running, localNow});
          if (repaired.ok()) {
            plannedStarts = repaired.schedule->starts();
            ++result.replans;
            bump("contingency.replans");
            std::ostringstream os;
            os << "pmax -> " << (solarHere + battery.maxOutput());
            emit(cursor, EventKind::kReplanned, os.str());
            rebuild();
            iterationEnd = now + (builtProfile.finish() - Time::zero());
            return true;
          }
          ++result.replanFailures;
          bump("contingency.replan_failures");
          emit(cursor, EventKind::kReplanFailed, toString(repaired.status));
          if (!config.contingency.shed) return false;
          // Shed the most droppable task that has not started yet, then
          // retry the repair with its power zeroed out.
          TaskId victim = TaskId::invalid();
          for (TaskId v : prob.taskIds()) {
            const Task& t = prob.task(v);
            if (!t.droppable() || shed.count(t.name) > 0) continue;
            if (plannedStarts[v.index()] < localNow) continue;  // running/done
            if (!victim.isValid() ||
                t.criticality > prob.task(victim).criticality) {
              victim = v;
            }
          }
          if (!victim.isValid()) return false;
          shed.insert(prob.task(victim).name);
          ++result.shedTasks;
          bump("contingency.shed_tasks");
          emit(cursor, EventKind::kTaskShed,
               prob.task(victim).name + " (replan infeasible)");
        }
        return false;
      };

      std::size_t segIdx = 0;
      Time cursor = now;
      while (!aborted && segIdx < builtProfile.segments().size()) {
        // Copy: a replan inside the loop reallocates builtProfile.
        const PowerSegment seg = builtProfile.segments()[segIdx];
        if (seg.interval.begin() >= localCap()) break;
        const Time segBegin = now + (seg.interval.begin() - Time::zero());
        const Time segEnd =
            now + (std::min(seg.interval.end(), localCap()) - Time::zero());
        if (cursor < segBegin) cursor = segBegin;
        bool restart = false;
        while (cursor < segEnd) {
          const Watts solarHere = solar.levelAt(cursor);
          Time sliceEnd = segEnd;
          if (const auto change = solar.nextChangeAfter(cursor);
              change && *change < segEnd) {
            sliceEnd = *change;
          }

          if (seg.power > solarHere + battery.maxOutput()) {
            ++result.brownouts;
            std::ostringstream os;
            os << "demand " << seg.power << " exceeds solar " << solarHere
               << " + battery " << battery.maxOutput();
            emit(cursor, EventKind::kBrownout, os.str());
            if (tryReplan(cursor, solarHere)) {
              restart = true;
              break;
            }
            if (config.abortOnBrownout) {
              aborted = true;
              iterationEnd = cursor;
              break;
            }
          }

          if (seg.power > solarHere) {
            const Watts rate = seg.power - solarHere;
            const Watts effRate = battery.effectiveRate(rate);
            const Duration span = sliceEnd - cursor;
            const Energy need = effRate * span;
            if (need > battery.remaining()) {
              const std::int64_t affordable =
                  battery.remaining().milliwattTicks() / effRate.milliwatts();
              const Time deathAt = cursor + Duration(affordable);
              battery.drawAt(rate, Duration(affordable), deathAt);
              battery.markDepleted(deathAt);
              result.batteryDrawn = battery.drawn();
              result.batteryDepleted = true;
              result.depletedAt = deathAt;
              emit(deathAt, EventKind::kBatteryDepleted,
                   "mid-iteration depletion");
              result.finishedAt = deathAt;
              exportOutcome();
              return result;
            }
            battery.drawAt(rate, span, cursor);
          } else {
            battery.recover(sliceEnd - cursor);
          }
          cursor = sliceEnd;
        }
        if (restart) {
          // Resume in the rebuilt profile at the current instant.
          const Time local = Time::zero() + (cursor - now);
          segIdx = 0;
          while (segIdx < builtProfile.segments().size() &&
                 builtProfile.segments()[segIdx].interval.end() <= local) {
            ++segIdx;
          }
          continue;
        }
        ++segIdx;
      }

      const bool fatal = !aborted && fatalAt != Time::max();
      if (fatal) iterationEnd = now + (fatalAt - Time::zero());

      // Task marks and per-attempt outcomes from the final instance list,
      // truncated at the instant the iteration actually ended. Retry and
      // failure events are always recorded; plain start/finish marks obey
      // traceTasks like the clean path.
      struct Mark {
        Time at;
        EventKind kind;
        std::string detail;
      };
      std::vector<Mark> marks;
      for (const Instance& in : instances) {
        const std::string& name = prob.task(in.task).name;
        const Time startAbs = now + (in.start - Time::zero());
        const Time endAbs = now + (in.start + in.dur - Time::zero());
        if (in.attempt > 0) {
          ++result.retries;
          bump("contingency.retries");
          if (startAbs <= iterationEnd) {
            marks.push_back(
                Mark{startAbs, EventKind::kTaskRetried,
                     name + " attempt " + std::to_string(in.attempt + 1)});
          }
        } else if (config.traceTasks && startAbs <= iterationEnd) {
          marks.push_back(Mark{startAbs, EventKind::kTaskStarted, name});
        }
        if (endAbs > iterationEnd) continue;
        if (in.fails) {
          marks.push_back(
              Mark{endAbs, EventKind::kTaskFailed,
                   name + " attempt " + std::to_string(in.attempt + 1)});
        } else if (config.traceTasks) {
          marks.push_back(Mark{endAbs, EventKind::kTaskFinished, name});
        }
      }
      std::stable_sort(marks.begin(), marks.end(),
                       [](const Mark& a, const Mark& b) { return a.at < b.at; });
      for (Mark& m : marks) emit(m.at, m.kind, std::move(m.detail));

      result.batteryDrawn = battery.drawn();
      if (fatal) {
        emit(iterationEnd, EventKind::kTaskUnrecoverable,
             prob.task(fatalTask).name + " failed beyond the retry budget");
        result.unrecoverable = true;
        result.finishedAt = iterationEnd;
        exportOutcome();
        return result;
      }
      if (!aborted) {
        result.steps += binding->stepsPerIteration;
      }
      if (config.contingency.watchdogSlackPct > 0) {
        const Duration nominal = binding->schedule.finish() - Time::zero();
        const Duration actual = iterationEnd - iterStart;
        if (actual.ticks() * 100 >
            nominal.ticks() *
                (100 + static_cast<std::int64_t>(
                           config.contingency.watchdogSlackPct))) {
          ++result.deadlineMisses;
          bump("contingency.deadline_misses");
          std::ostringstream os;
          os << "iteration span " << actual.ticks() << " exceeds nominal "
             << nominal.ticks() << " by more than "
             << config.contingency.watchdogSlackPct << "%";
          emit(iterationEnd, EventKind::kDeadlineMissed, os.str());
        }
      }
      now = iterationEnd;
    }

    // Arm next iteration's mode triggers from what this one experienced.
    if (modesOn && !pendingTrigger) {
      if (policy.escalateOnBrownout && result.brownouts > brownoutsBefore) {
        pendingTrigger = true;
        pendingWhy = "brownout";
      } else if (policy.overrunSlackPct > 0) {
        const Duration actual = now - iterStart;
        if (actual.ticks() * 100 >
            nominalSpan.ticks() *
                (100 + static_cast<std::int64_t>(policy.overrunSlackPct))) {
          pendingTrigger = true;
          pendingWhy = "overrun";
        }
      }
    }

    // Zero-progress guard: an iteration that neither advanced time nor
    // banked steps would replay identically forever (e.g. abortOnBrownout
    // firing at the iteration's first instant). End the mission explicitly
    // instead of spinning until maxIterations.
    if (now == iterStart && result.steps == stepsBefore) {
      emit(now, EventKind::kStalled,
           "iteration " + std::to_string(iter) + " made no progress");
      result.stalled = true;
      result.finishedAt = now;
      exportOutcome();
      return result;
    }
  }

  result.finishedAt = now;
  result.complete = result.steps >= config.targetSteps;
  if (result.complete) {
    emit(now, EventKind::kMissionComplete,
         std::to_string(result.steps) + " steps");
  }
  exportOutcome();
  return result;
}

}  // namespace paws::runtime
