#include "rover/mission.hpp"

#include "base/check.hpp"

namespace paws::rover {

MissionResult MissionSimulator::run(const SchedulePolicy& policy,
                                    int targetSteps) const {
  PAWS_CHECK_MSG(targetSteps > 0, "mission needs a positive step target");

  MissionResult result;
  Battery battery = battery_;  // value copy: the simulator is re-runnable
  Time now = Time::zero();
  std::optional<RoverCase> previousCase;

  while (result.steps < targetSteps) {
    const Watts level = solar_.levelAt(now);
    const RoverCase c = caseForSolar(level);
    const CasePlan& plan = policy.planFor(c);
    PAWS_CHECK_MSG(plan.stepsPerIteration > 0, "plan must advance the rover");

    const bool cold = !previousCase.has_value() || *previousCase != c;
    const Duration span = cold ? plan.firstSpan : plan.steadySpan;
    const Energy cost = cold ? plan.firstCost : plan.steadyCost;
    previousCase = c;

    if (!battery.draw(cost)) {
      result.batteryDepleted = true;
      break;
    }

    // Attribute the iteration to the phase it started in.
    if (result.phases.empty() || result.phases.back().solar != level) {
      result.phases.push_back(MissionPhase{level, 0, 0, Duration::zero(),
                                           Energy::zero()});
    }
    MissionPhase& phase = result.phases.back();
    ++phase.iterations;
    phase.steps += plan.stepsPerIteration;
    phase.time += span;
    phase.cost += cost;

    result.steps += plan.stepsPerIteration;
    result.time += span;
    result.cost += cost;
    now += span;
  }
  return result;
}

}  // namespace paws::rover
