// Builders that turn scheduler runs into mission CasePlans.
//
// The JPL policy evaluates the fixed, fully serialized baseline schedule
// under each case's Table 2 powers. The power-aware policy runs the full
// three-stage pipeline on a three-iteration unrolled problem, then splits
// it at iteration boundaries: iteration 1 is the cold start, iteration 2
// (pre-heated by 1 and pre-heating 3) is the steady state. This reproduces
// the paper's best-case loop-unrolling optimization (Fig. 9) without any
// manual schedule surgery — the ASAP longest-path placement already pulls
// the next iteration's heating tasks into the current iteration's free
// power whenever the windows and the budget allow it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rover/mission.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/schedule.hpp"

namespace paws::rover {

/// Per-case evidence of how a plan was derived, for reports and tests.
struct PlanDerivation {
  RoverCase environment;
  bool ok = false;
  std::string message;
  Duration firstSpan;
  Energy firstCost;
  Duration steadySpan;
  Energy steadyCost;
  /// Whole-schedule metrics of the underlying run (1 iteration for JPL,
  /// 3 unrolled iterations for power-aware).
  Duration scheduleSpan;
  Energy scheduleCost;
  double utilization = 0.0;
};

struct PolicyBuild {
  SchedulePolicy policy;
  PlanDerivation derivations[3];  // indexed by RoverCase order best..worst
  [[nodiscard]] bool ok() const {
    return derivations[0].ok && derivations[1].ok && derivations[2].ok;
  }
};

/// The JPL baseline: one fixed serial schedule, evaluated per case.
PolicyBuild buildJplPolicy();

/// The power-aware policy: full pipeline per case on a 3-iteration unroll.
PolicyBuild buildPowerAwarePolicy(const PowerAwareOptions& options = {});

/// The per-case problems and power-aware schedules the runtime stack
/// replays: one `iterations`-iteration problem per RoverCase, in
/// best/typical/worst order. Problems are heap-owned so runtime case
/// bindings can hold stable pointers into them.
struct CaseSchedules {
  std::vector<std::unique_ptr<Problem>> problems;
  std::vector<Schedule> schedules;
  bool ok = false;
  std::string message;
};

CaseSchedules buildCaseSchedules(int iterations = 1,
                                 const PowerAwareOptions& options = {});

}  // namespace paws::rover
