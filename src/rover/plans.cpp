#include "rover/plans.hpp"

#include "base/check.hpp"
#include "sched/serial_scheduler.hpp"

namespace paws::rover {

namespace {

constexpr RoverCase kCases[] = {RoverCase::kBest, RoverCase::kTypical,
                                RoverCase::kWorst};

CasePlan planFromDerivation(const PlanDerivation& d) {
  CasePlan plan;
  plan.environment = d.environment;
  plan.firstSpan = d.firstSpan;
  plan.firstCost = d.firstCost;
  plan.steadySpan = d.steadySpan;
  plan.steadyCost = d.steadyCost;
  return plan;
}

void install(PolicyBuild& build, std::size_t idx, const PlanDerivation& d) {
  build.derivations[idx] = d;
  switch (d.environment) {
    case RoverCase::kBest:
      build.policy.best = planFromDerivation(d);
      break;
    case RoverCase::kTypical:
      build.policy.typical = planFromDerivation(d);
      break;
    case RoverCase::kWorst:
      build.policy.worst = planFromDerivation(d);
      break;
  }
}

}  // namespace

PolicyBuild buildJplPolicy() {
  PolicyBuild build;
  for (std::size_t i = 0; i < 3; ++i) {
    const RoverCase c = kCases[i];
    const Problem problem = makeRoverProblem(c, /*iterations=*/1);
    SerialScheduler serial(problem);
    const ScheduleResult r = serial.schedule();

    PlanDerivation d;
    d.environment = c;
    if (!r.ok()) {
      d.message = r.message;
      install(build, i, d);
      continue;
    }
    const Schedule& s = *r.schedule;
    d.ok = true;
    d.scheduleSpan = s.finish() - Time::zero();
    d.scheduleCost = s.energyCost(problem.minPower());
    d.utilization = s.utilization(problem.minPower());
    // The baseline repeats the same serial schedule: first == steady.
    d.firstSpan = d.steadySpan = d.scheduleSpan;
    d.firstCost = d.steadyCost = d.scheduleCost;
    install(build, i, d);
  }
  return build;
}

PolicyBuild buildPowerAwarePolicy(const PowerAwareOptions& options) {
  PolicyBuild build;
  for (std::size_t i = 0; i < 3; ++i) {
    const RoverCase c = kCases[i];
    std::vector<RoverIterationTasks> tasks;
    const Problem problem = makeRoverProblem(c, /*iterations=*/3, &tasks);
    PowerAwareScheduler scheduler(problem, options);
    const ScheduleResult r = scheduler.schedule();

    PlanDerivation d;
    d.environment = c;
    if (!r.ok()) {
      d.message = r.message;
      install(build, i, d);
      continue;
    }
    const Schedule& s = *r.schedule;
    const Watts pmin = problem.minPower();
    const PowerProfile& profile = s.powerProfile();

    // Iteration boundaries: the completion of each iteration's last drive.
    const Time b1 = s.end(tasks[0].drive[1]);
    const Time b2 = s.end(tasks[1].drive[1]);

    d.ok = true;
    d.scheduleSpan = s.finish() - Time::zero();
    d.scheduleCost = s.energyCost(pmin);
    d.utilization = s.utilization(pmin);
    d.firstSpan = b1 - Time::zero();
    d.firstCost = profile.energyAboveWithin(pmin, Interval(Time::zero(), b1));
    d.steadySpan = b2 - b1;
    d.steadyCost = profile.energyAboveWithin(pmin, Interval(b1, b2));
    install(build, i, d);
  }
  return build;
}

CaseSchedules buildCaseSchedules(int iterations,
                                 const PowerAwareOptions& options) {
  CaseSchedules out;
  out.ok = true;
  for (const RoverCase c : kCases) {
    out.problems.push_back(
        std::make_unique<Problem>(makeRoverProblem(c, iterations)));
    PowerAwareScheduler scheduler(*out.problems.back(), options);
    ScheduleResult r = scheduler.schedule();
    if (!r.ok()) {
      out.ok = false;
      out.message = std::string("case ") + toString(c) + ": " +
                    (r.message.empty() ? toString(r.status) : r.message);
      return out;
    }
    out.schedules.push_back(std::move(*r.schedule));
  }
  return out;
}

}  // namespace paws::rover
