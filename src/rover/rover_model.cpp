#include "rover/rover_model.hpp"

#include <array>

#include "base/check.hpp"

namespace paws::rover {

using namespace paws::literals;

const char* toString(RoverCase c) {
  switch (c) {
    case RoverCase::kBest:
      return "best";
    case RoverCase::kTypical:
      return "typical";
    case RoverCase::kWorst:
      return "worst";
  }
  return "?";
}

RoverPowerTable powerTable(RoverCase c) {
  switch (c) {
    case RoverCase::kBest:
      return RoverPowerTable{Watts::fromWatts(14.9), 10_W,
                             Watts::fromWatts(2.5), Watts::fromWatts(7.6),
                             Watts::fromWatts(7.5), Watts::fromWatts(4.3),
                             Watts::fromWatts(5.1)};
    case RoverCase::kTypical:
      return RoverPowerTable{12_W, 10_W, Watts::fromWatts(3.1),
                             Watts::fromWatts(9.5), Watts::fromWatts(10.9),
                             Watts::fromWatts(6.2), Watts::fromWatts(6.1)};
    case RoverCase::kWorst:
      return RoverPowerTable{9_W, 10_W, Watts::fromWatts(3.7),
                             Watts::fromWatts(11.3), Watts::fromWatts(13.8),
                             Watts::fromWatts(8.1), Watts::fromWatts(7.3)};
  }
  PAWS_CHECK(false);
  return {};
}

RoverCase caseForSolar(Watts solar) {
  if (solar >= Watts::fromWatts(14.9)) return RoverCase::kBest;
  if (solar >= 12_W) return RoverCase::kTypical;
  return RoverCase::kWorst;
}

Problem makeRoverProblem(RoverCase c, int iterations,
                         std::vector<RoverIterationTasks>* tasksOut) {
  PAWS_CHECK_MSG(iterations >= 1, "need at least one iteration");
  const RoverPowerTable pw = powerTable(c);

  Problem p(std::string("rover_") + toString(c));
  p.setBackgroundPower(pw.cpu);
  p.setMaxPower(pw.solar + pw.batteryMax);
  p.setMinPower(pw.solar);

  // Five independent heaters; steering/driving/hazard are single resources
  // reused across iterations.
  std::array<ResourceId, 5> heaters{};
  for (int h = 0; h < 5; ++h) {
    heaters[static_cast<std::size_t>(h)] =
        p.addResource("heater" + std::to_string(h + 1));
  }
  const ResourceId steering = p.addResource("steering");
  const ResourceId driving = p.addResource("driving");
  const ResourceId hazardRes = p.addResource("hazard");

  constexpr Duration kHeat{5}, kHazard{10}, kSteer{5}, kDrive{10};
  constexpr Duration kWarmupMin{5}, kWarmupMax{50};

  TaskId prevDrive = TaskId::invalid();
  if (tasksOut) tasksOut->clear();

  for (int it = 0; it < iterations; ++it) {
    const std::string tag =
        iterations == 1 ? std::string() : "_i" + std::to_string(it + 1);
    RoverIterationTasks tasks{};

    // Heaters 1-2 warm the steering motors, 3-5 the wheel motors.
    for (int h = 0; h < 2; ++h) {
      tasks.heatSteer[h] =
          p.addTask("heat_steer" + std::to_string(h + 1) + tag, kHeat,
                    pw.heating, heaters[static_cast<std::size_t>(h)]);
    }
    for (int h = 0; h < 3; ++h) {
      tasks.heatWheel[h] =
          p.addTask("heat_wheel" + std::to_string(h + 1) + tag, kHeat,
                    pw.heating, heaters[static_cast<std::size_t>(2 + h)]);
    }
    for (int s = 0; s < 2; ++s) {
      const std::string step = std::to_string(s + 1);
      tasks.hazard[s] =
          p.addTask("hazard" + step + tag, kHazard, pw.hazard, hazardRes);
      tasks.steer[s] =
          p.addTask("steer" + step + tag, kSteer, pw.steering, steering);
      tasks.drive[s] =
          p.addTask("drive" + step + tag, kDrive, pw.driving, driving);
    }

    // Table 1 chain, per step: hazard >=10 before steering, steering >=5
    // before driving, driving >=10 before the next hazard detection.
    for (int s = 0; s < 2; ++s) {
      p.minSeparation(tasks.hazard[s], tasks.steer[s], kHazard);
      p.minSeparation(tasks.steer[s], tasks.drive[s], kSteer);
    }
    p.minSeparation(tasks.drive[0], tasks.hazard[1], kDrive);
    if (prevDrive.isValid()) {
      p.minSeparation(prevDrive, tasks.hazard[0], kDrive);
    }
    prevDrive = tasks.drive[1];

    // Warm-up windows: each heater at least 5 s, at most 50 s before the
    // iteration's FIRST use of the motors it warms (driving afterwards
    // keeps them warm for the remaining steps of the iteration).
    for (const TaskId h : tasks.heatSteer) {
      p.minSeparation(h, tasks.steer[0], kWarmupMin);
      p.maxSeparation(h, tasks.steer[0], kWarmupMax);
    }
    for (const TaskId h : tasks.heatWheel) {
      p.minSeparation(h, tasks.drive[0], kWarmupMin);
      p.maxSeparation(h, tasks.drive[0], kWarmupMax);
    }

    if (tasksOut) tasksOut->push_back(tasks);
  }
  return p;
}

SolarSource missionSolarProfile() {
  return SolarSource({{Time(0), Watts::fromWatts(14.9)},
                      {Time(600), 12_W},
                      {Time(1200), 9_W}});
}

Battery missionBattery(Energy capacity) { return Battery(10_W, capacity); }

BatteryTraits missionBatteryTraits() {
  BatteryTraits traits;
  traits.bands.push_back(RateBand{2_W, 1250});
  traits.bands.push_back(RateBand{6_W, 1600});
  traits.recoverablePermille = 300;
  traits.recoveryRate = Watts::fromMilliwatts(500);
  return traits;
}

Battery missionBattery(Energy capacity, const BatteryTraits& traits) {
  return Battery(10_W, capacity, traits);
}

void applyMissionCriticality(Problem& p) {
  for (TaskId v : p.taskIds()) {
    const std::string& name = p.task(v).name;
    if (name.rfind("heat_wheel", 0) == 0) {
      p.setCriticality(v, 3);
    } else if (name.rfind("heat_steer", 0) == 0) {
      p.setCriticality(v, 2);
    }
  }
}

}  // namespace paws::rover
