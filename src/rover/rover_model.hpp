// The NASA/JPL Mars Pathfinder rover model (Section 3, Tables 1-2, Fig. 8).
//
// Resources: five independent thermal heaters (each heats two motors: two
// heaters cover the four steering motors, three cover the six wheel
// motors), the steering mechanism (four motors as one mechanical resource),
// the driving mechanism (six wheel motors as one unit), and the
// laser-guided hazard-detection component. The CPU draws constant power and
// is modeled as the problem's background draw.
//
// One *iteration* moves the rover two steps (14 cm) and contains, per step:
// hazard detection (10 s) -> steering (5 s) -> driving (10 s), chained by
// the Table 1 min separations; the five heating tasks (5 s each) must run
// at least 5 s and at most 50 s before the iteration's first use of the
// motors they warm (driving keeps them warm for the rest of the 75 s
// iteration — the only reading consistent with the paper's 75 s serial
// schedule being valid).
//
// Power consumption varies with the temperature, which tracks sunlight:
// the paper evaluates a best case (-40 C, 14.9 W solar), typical (-60 C,
// 12 W) and worst case (-80 C, 9 W). Pmax = solar + 10 W battery;
// Pmin = solar (free power).
#pragma once

#include <string>

#include "model/problem.hpp"
#include "power/sources.hpp"

namespace paws::rover {

/// Environmental case of Table 2.
enum class RoverCase : std::uint8_t {
  kBest,     ///< -40 C, solar 14.9 W (noon)
  kTypical,  ///< -60 C, solar 12 W
  kWorst,    ///< -80 C, solar 9 W (dusk)
};

const char* toString(RoverCase c);

/// Table 2, one column.
struct RoverPowerTable {
  Watts solar;
  Watts batteryMax;  ///< 10 W in all cases
  Watts cpu;
  Watts heating;  ///< one heater warming two motors
  Watts driving;
  Watts steering;
  Watts hazard;
};

/// Returns the Table 2 column for `c`.
RoverPowerTable powerTable(RoverCase c);

/// The environmental case whose solar level matches `solar` exactly
/// (14.9 / 12 / 9 W — the only levels the mission scenario uses).
RoverCase caseForSolar(Watts solar);

/// Handles to the tasks of one iteration, for analyses and tests.
struct RoverIterationTasks {
  TaskId heatSteer[2];
  TaskId heatWheel[3];
  TaskId hazard[2];
  TaskId steer[2];
  TaskId drive[2];
};

/// Builds the rover scheduling problem for `iterations` chained two-step
/// iterations under case `c`. Pmax/Pmin/background are set from Table 2.
/// `tasksOut`, when non-null, receives the per-iteration task handles.
Problem makeRoverProblem(RoverCase c, int iterations = 1,
                         std::vector<RoverIterationTasks>* tasksOut = nullptr);

/// Steps the rover advances per iteration (two, 7 cm each).
inline constexpr int kStepsPerIteration = 2;

/// The Table 4 mission environment: solar 14.9 W for the first 10 minutes,
/// 12 W for the next 10, 9 W afterwards.
SolarSource missionSolarProfile();

/// The rover battery: 10 W max output. The Pathfinder primary battery
/// stored roughly 40 Wh; the exact capacity is irrelevant to the paper's
/// tables (it only bounds output power), so we expose it as a parameter.
Battery missionBattery(Energy capacity = Energy::fromMilliwattTicks(
                           static_cast<std::int64_t>(40) * 3600 * 1000));

/// Rate-capacity traits for the mission battery: draws above 2 W cost 25%
/// extra charge, above 6 W 60% extra (a LiSOCl2-style primary cell pushed
/// past its rated current), with 30% of the superlinear excess recoverable
/// at 0.5 W during free-powered gaps.
BatteryTraits missionBatteryTraits();

/// As missionBattery(capacity) with a rate-capacity model installed.
Battery missionBattery(Energy capacity, const BatteryTraits& traits);

/// Installs the mission criticality ladder on a rover problem: wheel
/// heaters rank 3 (shed first — driving keeps the motors warm), steering
/// heaters rank 2; hazard/steer/drive stay mission-critical (rank 0).
/// Matches ModePolicy::missionDefault()'s ceilings. Criticality does not
/// affect start times, so this is safe after schedules are built.
void applyMissionCriticality(Problem& p);

}  // namespace paws::rover
