// Mission-scenario simulation (Section 6, Table 4).
//
// The mission: travel 48 steps while the solar output decays
// 14.9 W -> 12 W -> 9 W in 10-minute phases. The rover executes statically
// computed schedules; a lightweight runtime scheduler merely *selects* the
// schedule matching the current solar level at each iteration boundary
// (the paper's point in Section 5.3: the static schedules adapt to
// dynamically changing constraints without recomputation).
//
// A `CasePlan` summarizes one case's static schedule as per-iteration span
// and energy cost, with a separate first-iteration entry: the power-aware
// best-case schedule pre-heats the next iteration's motors with free solar
// power, so iterations after the first cost far less (the paper's
// "79.5 J (1st), 6 J (2nd)" split). Plans are produced by actually running
// the schedulers (see plans.hpp); the simulator just does the accounting,
// including battery draw.
#pragma once

#include <optional>
#include <vector>

#include "base/time.hpp"
#include "base/units.hpp"
#include "power/sources.hpp"
#include "rover/rover_model.hpp"

namespace paws::rover {

/// Per-iteration summary of a static schedule for one environmental case.
struct CasePlan {
  RoverCase environment = RoverCase::kWorst;
  /// First iteration after a cold start or a case switch.
  Duration firstSpan;
  Energy firstCost;
  /// Steady-state iterations (pre-heated by the previous one).
  Duration steadySpan;
  Energy steadyCost;
  int stepsPerIteration = kStepsPerIteration;
};

/// A full policy: one plan per environmental case.
struct SchedulePolicy {
  CasePlan best;
  CasePlan typical;
  CasePlan worst;

  [[nodiscard]] const CasePlan& planFor(RoverCase c) const {
    switch (c) {
      case RoverCase::kBest:
        return best;
      case RoverCase::kTypical:
        return typical;
      case RoverCase::kWorst:
        return worst;
    }
    return worst;
  }
};

/// Aggregates for all iterations executed under one solar level (the rows
/// of Table 4).
struct MissionPhase {
  Watts solar;
  int iterations = 0;
  int steps = 0;
  Duration time;
  Energy cost;
};

struct MissionResult {
  int steps = 0;
  Duration time;
  Energy cost;
  bool batteryDepleted = false;
  std::vector<MissionPhase> phases;
};

class MissionSimulator {
 public:
  MissionSimulator(SolarSource solar, Battery battery)
      : solar_(std::move(solar)), battery_(std::move(battery)) {}

  /// Runs iterations under `policy` until `targetSteps` are accumulated (or
  /// the battery depletes). Iterations use the plan of the solar level at
  /// their start time; the first iteration of the mission and the first
  /// after every case switch pay the plan's first-iteration cost.
  [[nodiscard]] MissionResult run(const SchedulePolicy& policy,
                                  int targetSteps) const;

 private:
  SolarSource solar_;
  Battery battery_;
};

}  // namespace paws::rover
