// Where does the power actually go? — the paper's system-level argument.
//
// Section 1.2: "Amdahl's law applies to power as well as performance. That
// is, the power saving of a given component must be scaled by its
// percentage contribution in an entire system. Thus, it is critical to
// identify where power is being consumed in the context of a system."
// (For the rover, the big consumers are wheel/steering motors, the laser
// hazard detector and the heaters — not the digital computer.)
//
// This module produces that accounting for a schedule: energy per
// resource, per task, plus the background (CPU) share, each with its
// fraction of the total — the first chart a system architect asks for.
#pragma once

#include <string>
#include <vector>

#include "base/units.hpp"
#include "sched/schedule.hpp"

namespace paws {

struct EnergyShare {
  std::string name;
  Energy energy;
  double fraction = 0.0;  ///< of the schedule's total energy
};

struct EnergyBreakdown {
  Energy total;                      ///< background + all tasks
  EnergyShare background;            ///< the always-on draw over [0, tau)
  std::vector<EnergyShare> byResource;  ///< descending by energy
  std::vector<EnergyShare> byTask;      ///< descending by energy
};

/// Exact energy attribution for `schedule`.
EnergyBreakdown computeEnergyBreakdown(const Schedule& schedule);

/// Renders the breakdown as an ASCII table with percentage bars.
std::string renderBreakdown(const EnergyBreakdown& breakdown);

}  // namespace paws
