#include "analysis/battery_stress.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace paws {

BatteryStressReport analyzeBatteryStress(const PowerProfile& profile,
                                         Watts freeLevel) {
  BatteryStressReport report{};
  const Duration span = profile.finish() - Time::zero();

  Watts prevDraw = Watts::zero();
  for (const PowerSegment& s : profile.segments()) {
    const Watts draw =
        s.power > freeLevel ? s.power - freeLevel : Watts::zero();
    report.peakDraw = std::max(report.peakDraw, draw);
    const Watts step =
        draw > prevDraw ? draw - prevDraw : prevDraw - draw;
    report.jitter = std::max(report.jitter, step);
    report.drawnEnergy += draw * s.interval.length();
    const std::uint64_t mw = static_cast<std::uint64_t>(draw.milliwatts());
    report.squaredDrawIntegral +=
        mw * mw * static_cast<std::uint64_t>(s.interval.length().ticks());
    prevDraw = draw;
  }
  // Final drop back to zero counts as a step too.
  report.jitter = std::max(report.jitter, prevDraw);

  if (span > Duration::zero()) {
    report.meanDraw = Watts::fromMilliwatts(
        report.drawnEnergy.milliwattTicks() / span.ticks());
  }
  return report;
}

Energy peukertEffectiveEnergy(const PowerProfile& profile, Watts freeLevel,
                              Watts ratedDraw, double k) {
  PAWS_CHECK_MSG(ratedDraw > Watts::zero(), "rated draw must be positive");
  PAWS_CHECK_MSG(k >= 1.0, "Peukert exponent must be >= 1");
  double effectiveMwTicks = 0.0;
  for (const PowerSegment& s : profile.segments()) {
    if (s.power <= freeLevel) continue;
    const Watts draw = s.power - freeLevel;
    const double ratio = static_cast<double>(draw.milliwatts()) /
                         static_cast<double>(ratedDraw.milliwatts());
    const double penalty = std::pow(ratio, k - 1.0);
    effectiveMwTicks += static_cast<double>(draw.milliwatts()) * penalty *
                        static_cast<double>(s.interval.length().ticks());
  }
  return Energy::fromMilliwattTicks(
      static_cast<std::int64_t>(effectiveMwTicks + 0.5));
}

}  // namespace paws
