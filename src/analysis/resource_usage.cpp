#include "analysis/resource_usage.hpp"

#include <algorithm>
#include <map>

namespace paws {

ResourceUsageReport analyzeResourceUsage(const Schedule& schedule) {
  const Problem& p = schedule.problem();
  ResourceUsageReport report;
  report.span = schedule.finish() - Time::zero();

  std::map<ResourceId, std::vector<Interval>> windows;
  for (TaskId v : p.taskIds()) {
    windows[p.task(v).resource].push_back(schedule.interval(v));
  }

  for (ResourceId r : p.resourceIds()) {
    ResourceUsage usage;
    usage.resource = r;
    usage.name = p.resource(r).name;
    usage.lastCompletion = Time::zero();

    auto& ivs = windows[r];
    std::sort(ivs.begin(), ivs.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin() < b.begin();
              });
    Time cursor = Time::zero();
    for (const Interval& iv : ivs) {
      usage.busy += iv.length();
      if (iv.begin() > cursor) {
        usage.idle.push_back(Interval(cursor, iv.begin()));
      }
      cursor = std::max(cursor, iv.end());
      usage.lastCompletion = std::max(usage.lastCompletion, iv.end());
    }
    if (cursor < schedule.finish()) {
      usage.idle.push_back(Interval(cursor, schedule.finish()));
    }
    if (report.span > Duration::zero()) {
      usage.utilization = static_cast<double>(usage.busy.ticks()) /
                          static_cast<double>(report.span.ticks());
    }
    if (usage.lastCompletion == schedule.finish() &&
        report.span > Duration::zero() && !report.bottleneck.isValid()) {
      report.bottleneck = r;
    }
    report.usages.push_back(std::move(usage));
  }

  std::sort(report.usages.begin(), report.usages.end(),
            [](const ResourceUsage& a, const ResourceUsage& b) {
              if (a.utilization != b.utilization) {
                return a.utilization > b.utilization;
              }
              return a.name < b.name;
            });
  return report;
}

}  // namespace paws
