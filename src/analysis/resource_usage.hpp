// Per-resource timeline statistics — the scheduling-quality diagnostics a
// designer reads next to the Gantt chart: how busy each resource is, where
// it idles, and which resource is the makespan bottleneck.
#pragma once

#include <string>
#include <vector>

#include "base/interval.hpp"
#include "sched/schedule.hpp"

namespace paws {

struct ResourceUsage {
  ResourceId resource;
  std::string name;
  Duration busy;                 ///< total task time on this resource
  double utilization = 0.0;      ///< busy / schedule span
  std::vector<Interval> idle;    ///< maximal idle intervals within the span
  Time lastCompletion;           ///< when the resource's last task ends
};

struct ResourceUsageReport {
  Duration span;                       ///< the schedule's makespan
  std::vector<ResourceUsage> usages;   ///< descending by utilization
  /// Resource whose last completion equals the makespan (the bottleneck);
  /// invalid for an empty schedule.
  ResourceId bottleneck = ResourceId::invalid();
};

ResourceUsageReport analyzeResourceUsage(const Schedule& schedule);

}  // namespace paws
