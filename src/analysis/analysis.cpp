#include "analysis/analysis.hpp"

#include <algorithm>
#include <set>

namespace paws {

Watts ScheduleAnalysis::minimalValidPmax(const Schedule& schedule) {
  return schedule.powerProfile().peak();
}

std::vector<EcBreakpoint> ScheduleAnalysis::energyCostCurve(
    const Schedule& schedule) {
  const PowerProfile& profile = schedule.powerProfile();
  // Ec(pmin) = sum over segments of max(0, P_s - pmin) * len_s: piecewise
  // linear with slope changes exactly at the distinct segment powers.
  std::set<Watts> levels{Watts::zero()};
  for (const PowerSegment& s : profile.segments()) levels.insert(s.power);

  std::vector<EcBreakpoint> curve;
  curve.reserve(levels.size());
  for (const Watts level : levels) {
    curve.push_back(EcBreakpoint{level, profile.energyAbove(level)});
  }
  return curve;
}

Energy ScheduleAnalysis::energyCostAt(const Schedule& schedule, Watts pmin) {
  return schedule.powerProfile().energyAbove(pmin);
}

double ScheduleAnalysis::utilizationAt(const Schedule& schedule, Watts pmin) {
  return schedule.powerProfile().utilization(pmin);
}

Watts ScheduleAnalysis::sustainedFloor(const Schedule& schedule) {
  const PowerProfile& profile = schedule.powerProfile();
  if (profile.empty()) return Watts::zero();
  Watts floor = Watts::max();
  for (const PowerSegment& s : profile.segments()) {
    floor = std::min(floor, s.power);
  }
  return floor;
}

void ScheduleLibrary::add(std::string label, Schedule schedule) {
  const Watts peak = schedule.powerProfile().peak();
  entries_.push_back(Entry{std::move(label), std::move(schedule), peak});
}

const ScheduleLibrary::Entry* ScheduleLibrary::select(Watts pmax,
                                                      Watts pmin) const {
  const Entry* best = nullptr;
  Energy bestCost;
  for (const Entry& e : entries_) {
    if (e.minimalPmax > pmax) continue;  // would spike under this budget
    const Energy cost = e.schedule.energyCost(pmin);
    if (best == nullptr || cost < bestCost ||
        (cost == bestCost &&
         e.schedule.finish() < best->schedule.finish())) {
      best = &e;
      bestCost = cost;
    }
  }
  return best;
}

}  // namespace paws
