#include "analysis/corners.hpp"

#include "base/check.hpp"

namespace paws {

const char* toString(Corner corner) {
  switch (corner) {
    case Corner::kMin:
      return "min";
    case Corner::kTypical:
      return "typical";
    case Corner::kMax:
      return "max";
  }
  return "?";
}

CornerTable::CornerTable(const Problem& problem) : problem_(&problem) {
  perTask_.resize(problem.numVertices());
  for (TaskId v : problem.taskIds()) {
    const Watts nominal = problem.task(v).power;
    perTask_[v.index()] = PowerCorners{nominal, nominal, nominal};
  }
  const Watts bg = problem.backgroundPower();
  background_ = PowerCorners{bg, bg, bg};
}

void CornerTable::set(TaskId task, PowerCorners corners) {
  PAWS_CHECK_MSG(task.isValid() && task.index() < perTask_.size() &&
                     task != kAnchorTask,
                 "unknown task " << task);
  PAWS_CHECK_MSG(corners.wellFormed(),
                 "corners must satisfy min <= typical <= max");
  perTask_[task.index()] = corners;
}

void CornerTable::setBackground(PowerCorners corners) {
  PAWS_CHECK_MSG(corners.wellFormed(),
                 "corners must satisfy min <= typical <= max");
  background_ = corners;
}

PowerCorners CornerTable::of(TaskId task) const {
  PAWS_CHECK(task.isValid() && task.index() < perTask_.size());
  return perTask_[task.index()];
}

PowerProfile profileAtCorner(const Schedule& schedule,
                             const CornerTable& corners, Corner corner) {
  const Problem& p = corners.problem();
  PowerProfileBuilder builder;
  for (TaskId v : p.taskIds()) {
    builder.add(schedule.interval(v), corners.of(v).at(corner));
  }
  return builder.build(corners.background().at(corner));
}

CornerReport analyzeCorners(const Schedule& schedule,
                            const CornerTable& corners) {
  const Problem& p = corners.problem();
  CornerReport report;
  for (const Corner c : {Corner::kMin, Corner::kTypical, Corner::kMax}) {
    const PowerProfile profile = profileAtCorner(schedule, corners, c);
    const std::size_t i = static_cast<std::size_t>(c);
    report.cost[i] = profile.energyAbove(p.minPower());
    report.utilization[i] = profile.utilization(p.minPower());
    if (c == Corner::kMax) {
      report.peakAtMax = profile.peak();
      report.maxCornerValid = !profile.firstSpike(p.maxPower()).has_value();
    }
  }
  return report;
}

Problem problemAtCorner(const CornerTable& corners, Corner corner) {
  const Problem& src = corners.problem();
  Problem out(src.name() + "@" + toString(corner));
  for (ResourceId r : src.resourceIds()) {
    out.addResource(src.resource(r).name);
  }
  for (TaskId v : src.taskIds()) {
    const Task& t = src.task(v);
    const TaskId copied =
        out.addTask(t.name, t.delay, corners.of(v).at(corner), t.resource);
    PAWS_CHECK(copied == v);
  }
  for (const TimingConstraint& c : src.constraints()) {
    if (c.kind == TimingConstraint::Kind::kMinSeparation) {
      out.minSeparation(c.from, c.to, c.separation);
    } else {
      out.maxSeparation(c.from, c.to, c.separation);
    }
  }
  out.setMaxPower(src.maxPower());
  out.setMinPower(src.minPower());
  out.setBackgroundPower(corners.background().at(corner));
  return out;
}

}  // namespace paws
