// Battery stress analysis — quantifying the paper's second motivation for
// the min power constraint: "to control the jitter in the system-level
// power curve to improve battery usage" (Section 2).
//
// Real (especially cold, non-rechargeable lithium) batteries deliver less
// total energy when drained in tall, spiky bursts than under a steady
// draw. We expose:
//
//   * a stress report over the *battery draw* curve
//     B(t) = max(0, P(t) - free(t)): peak, average, jitter (largest
//     instantaneous step), and the exact integral of B(t)^2 — the ohmic
//     (I^2 R-shaped) loss proxy, computed in closed form on the
//     piecewise-constant profile;
//   * a Peukert-style effective-energy model: a draw at power B delivers
//     charge at a penalized rate (B / Brated)^(k-1); k = 1 is the ideal
//     battery, larger k punishes bursts. Effective consumption is
//     integrated segment-exactly.
//
// The min-power scheduler cannot increase and usually lowers every one of
// these measures versus the max-power-only schedule (gap filling flattens
// the curve); tests and the jitter bench quantify it.
#pragma once

#include <cstdint>

#include "base/units.hpp"
#include "power/profile.hpp"

namespace paws {

/// Stress measures of the battery draw B(t) = max(0, P(t) - freeLevel).
struct BatteryStressReport {
  Watts peakDraw;        ///< max_t B(t)
  Watts meanDraw;        ///< integral of B / span (rounded to mW)
  Watts jitter;          ///< largest instantaneous step of B(t)
  Energy drawnEnergy;    ///< integral of B dt — the energy cost Ec
  /// Integral of B(t)^2 dt in (mW)^2·ticks — the ohmic-loss proxy; exact.
  std::uint64_t squaredDrawIntegral = 0;
};

/// Computes the stress report for `profile` against a constant free level
/// (the Pmin of the case under analysis).
BatteryStressReport analyzeBatteryStress(const PowerProfile& profile,
                                         Watts freeLevel);

/// Peukert-style effective energy: each segment drawing B for duration d
/// consumes B * d * (B / ratedDraw)^(k-1) of effective charge. `k` is the
/// Peukert exponent (typ. 1.05-1.3 for lithium, ~1.3 for lead-acid);
/// ratedDraw must be positive. Returns the effective energy consumed —
/// >= the nominal Ec whenever draws exceed the rated level and k > 1.
Energy peukertEffectiveEnergy(const PowerProfile& profile, Watts freeLevel,
                              Watts ratedDraw, double k);

}  // namespace paws
