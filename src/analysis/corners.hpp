// (min, typical, max) power corners — Section 4.1's named extension.
//
// The paper assumes a single exact power value per task "to simplify the
// discussion" but notes the formulation extends to (min, typical, max)
// triples. This module provides that extension without touching the
// schedulers: a CornerTable overlays per-task corner values on a Problem,
// and corner analysis answers the questions a designer actually asks:
//
//   * is this schedule power-valid even if EVERY task draws its max?
//     (hard-constraint robustness — the guarantee must hold at the corner);
//   * what are Ec and rho at each corner? (energy budgeting brackets);
//   * which corner problem should I reschedule for, if the max corner
//     breaks the budget? (`problemAtCorner` rebuilds the instance).
#pragma once

#include <vector>

#include "base/units.hpp"
#include "model/problem.hpp"
#include "sched/schedule.hpp"

namespace paws {

enum class Corner : std::uint8_t { kMin, kTypical, kMax };

const char* toString(Corner corner);

struct PowerCorners {
  Watts min;
  Watts typical;
  Watts max;

  [[nodiscard]] Watts at(Corner c) const {
    switch (c) {
      case Corner::kMin:
        return min;
      case Corner::kTypical:
        return typical;
      case Corner::kMax:
        return max;
    }
    return typical;
  }
  /// min <= typical <= max?
  [[nodiscard]] bool wellFormed() const {
    return min <= typical && typical <= max;
  }
};

/// Per-task corner overlay. Tasks without an explicit entry use the
/// problem's nominal power for all three corners.
class CornerTable {
 public:
  explicit CornerTable(const Problem& problem);

  /// Sets the corners of `task`; they must be well formed.
  void set(TaskId task, PowerCorners corners);
  void setBackground(PowerCorners corners);

  [[nodiscard]] PowerCorners of(TaskId task) const;
  [[nodiscard]] PowerCorners background() const { return background_; }

  [[nodiscard]] const Problem& problem() const { return *problem_; }

 private:
  const Problem* problem_;
  std::vector<PowerCorners> perTask_;  // vertex-indexed
  PowerCorners background_;
};

/// The schedule's power profile with every task drawing its `corner` power.
PowerProfile profileAtCorner(const Schedule& schedule,
                             const CornerTable& corners, Corner corner);

struct CornerReport {
  /// Power-valid when every task draws its max-corner power (the only
  /// corner at which the hard Pmax guarantee is meaningful).
  bool maxCornerValid = false;
  Watts peakAtMax;
  /// Energy cost / utilization brackets across the three corners.
  Energy cost[3];        // indexed by Corner
  double utilization[3]; // indexed by Corner
};

/// Evaluates `schedule` across all corners against the problem's
/// Pmax/Pmin.
CornerReport analyzeCorners(const Schedule& schedule,
                            const CornerTable& corners);

/// Clone of the table's problem with every task's nominal power replaced by
/// its `corner` value (for rescheduling at that corner). Task and resource
/// ids are preserved.
Problem problemAtCorner(const CornerTable& corners, Corner corner);

}  // namespace paws
