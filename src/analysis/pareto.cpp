#include "analysis/pareto.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace paws {

void markDominated(std::vector<DesignPoint>& points) {
  for (DesignPoint& a : points) {
    if (!a.feasible) continue;
    a.dominated = false;
    for (const DesignPoint& b : points) {
      if (!b.feasible || &a == &b) continue;
      const bool noWorse =
          b.finish <= a.finish && b.energyCost <= a.energyCost;
      const bool better =
          b.finish < a.finish || b.energyCost < a.energyCost;
      if (noWorse && better) {
        a.dominated = true;
        break;
      }
    }
  }
}

std::vector<DesignPoint> ParetoResult::front() const {
  std::vector<DesignPoint> result;
  for (const DesignPoint& p : points) {
    if (p.feasible && !p.dominated) result.push_back(p);
  }
  std::sort(result.begin(), result.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.finish != b.finish) return a.finish < b.finish;
              return a.energyCost < b.energyCost;
            });
  // Equal-metric duplicates from different budgets collapse to one.
  result.erase(std::unique(result.begin(), result.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.finish == b.finish &&
                                    a.energyCost == b.energyCost;
                           }),
               result.end());
  return result;
}

ParetoResult sweepPowerBudget(const Problem& problem,
                              const ParetoSweepConfig& config) {
  PAWS_CHECK_MSG(config.step > Watts::zero(), "sweep step must be positive");
  PAWS_CHECK_MSG(config.from <= config.to, "sweep range is empty");

  ParetoResult result;
  for (Watts budget = config.from; budget <= config.to;
       budget += config.step) {
    Problem variant(problem);
    variant.setMaxPower(budget);
    DesignPoint point;
    point.pmax = budget;
    PowerAwareScheduler scheduler(variant, config.scheduling);
    const ScheduleResult r = scheduler.schedule();
    if (r.ok()) {
      point.feasible = true;
      point.finish = r.schedule->finish() - Time::zero();
      point.energyCost = r.schedule->energyCost(problem.minPower());
    }
    result.points.push_back(point);
  }
  markDominated(result.points);
  return result;
}

}  // namespace paws
