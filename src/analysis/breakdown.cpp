#include "analysis/breakdown.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace paws {

EnergyBreakdown computeEnergyBreakdown(const Schedule& schedule) {
  const Problem& p = schedule.problem();
  EnergyBreakdown bd;

  bd.background.name = "background";
  bd.background.energy =
      p.backgroundPower() * (schedule.finish() - Time::zero());
  bd.total = bd.background.energy;

  std::map<ResourceId, Energy> perResource;
  for (TaskId v : p.taskIds()) {
    const Task& t = p.task(v);
    const Energy e = t.energy();
    bd.total += e;
    perResource[t.resource] += e;
    bd.byTask.push_back(EnergyShare{t.name, e, 0.0});
  }
  for (const auto& [res, energy] : perResource) {
    bd.byResource.push_back(EnergyShare{p.resource(res).name, energy, 0.0});
  }

  const auto byEnergyDesc = [](const EnergyShare& a, const EnergyShare& b) {
    if (a.energy != b.energy) return a.energy > b.energy;
    return a.name < b.name;
  };
  std::sort(bd.byResource.begin(), bd.byResource.end(), byEnergyDesc);
  std::sort(bd.byTask.begin(), bd.byTask.end(), byEnergyDesc);

  if (bd.total > Energy::zero()) {
    const auto frac = [&bd](EnergyShare& s) {
      s.fraction = s.energy.ratioOf(bd.total);
    };
    frac(bd.background);
    for (EnergyShare& s : bd.byResource) frac(s);
    for (EnergyShare& s : bd.byTask) frac(s);
  }
  return bd;
}

std::string renderBreakdown(const EnergyBreakdown& bd) {
  std::ostringstream os;
  const auto row = [&os](const EnergyShare& s) {
    os << "  " << s.name;
    for (std::size_t k = s.name.size(); k < 16; ++k) os << ' ';
    os << s.energy;
    os << "  ";
    const int bars = static_cast<int>(s.fraction * 40.0 + 0.5);
    for (int i = 0; i < bars; ++i) os << '#';
    os << ' ' << static_cast<int>(s.fraction * 100.0 + 0.5) << "%\n";
  };
  os << "energy breakdown (total " << bd.total << ")\n";
  os << "by resource:\n";
  row(bd.background);
  for (const EnergyShare& s : bd.byResource) row(s);
  os << "by task:\n";
  for (const EnergyShare& s : bd.byTask) row(s);
  return os.str();
}

}  // namespace paws
