// Pareto-front extraction for design-space exploration.
//
// The IMPACCT pitch (Section 1.3) is exploring "many more points in the
// design space". Each candidate design point yields a (finish time,
// energy cost) pair; a designer only cares about the non-dominated subset.
// This module sweeps the power budget, schedules each point, and returns
// the Pareto front — the curve the design_space example and the sweep
// command walk by hand.
#pragma once

#include <string>
#include <vector>

#include "model/problem.hpp"
#include "sched/power_aware_scheduler.hpp"

namespace paws {

struct DesignPoint {
  Watts pmax;          ///< the budget this point was scheduled under
  Duration finish;     ///< achieved makespan
  Energy energyCost;   ///< Ec at the problem's Pmin
  bool feasible = false;
  bool dominated = false;  ///< some feasible point is <= in both metrics
                           ///< and < in one
};

struct ParetoSweepConfig {
  Watts from;
  Watts to;
  Watts step = Watts::fromWatts(1.0);
  PowerAwareOptions scheduling;
};

struct ParetoResult {
  std::vector<DesignPoint> points;  ///< in sweep order (ascending pmax)
  /// Non-dominated feasible points, ascending by finish time.
  [[nodiscard]] std::vector<DesignPoint> front() const;
};

/// Sweeps Pmax over [from, to] and classifies every point. The problem's
/// Pmin and task set stay fixed; only the budget moves.
ParetoResult sweepPowerBudget(const Problem& problem,
                              const ParetoSweepConfig& config);

/// Marks dominated points in-place (exposed for testing and for callers
/// with externally produced points).
void markDominated(std::vector<DesignPoint>& points);

}  // namespace paws
