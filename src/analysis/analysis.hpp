// Sensitivity analysis of a fixed schedule's power properties.
//
// Section 5.3 observes that the improved schedule of Fig. 7 "can be
// directly applied to all cases with Pmax >= 16, Pmin <= 14, without
// recomputing a schedule for each case", which is what makes statically
// computed power-aware schedules usable by a lightweight runtime selector.
// This module makes those ranges first-class:
//
//   * minimalValidPmax — the schedule stays power-valid for every budget at
//     or above its profile peak;
//   * energyCostCurve  — Ec(Pmin) is piecewise linear in Pmin with
//     breakpoints exactly at the profile's distinct power levels; we return
//     the exact breakpoints so callers can evaluate or plot without
//     sampling error;
//   * utilization & cost evaluation at arbitrary (Pmax, Pmin) pairs.
//
// ScheduleLibrary is the runtime half: it holds statically computed
// schedules and selects, for the current (Pmax, Pmin) environment, the best
// valid one (lowest energy cost, ties on finish time) — no rescheduling on
// the flight computer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/units.hpp"
#include "sched/schedule.hpp"

namespace paws {

/// One exact breakpoint of the piecewise-linear Ec(Pmin) curve.
struct EcBreakpoint {
  Watts pmin;
  Energy cost;
};

class ScheduleAnalysis {
 public:
  /// The schedule is power-valid for every Pmax >= this (the profile peak).
  static Watts minimalValidPmax(const Schedule& schedule);

  /// Exact breakpoints of Ec(Pmin), ascending in Pmin, from 0 W up to the
  /// profile peak (where the cost reaches 0). Between breakpoints the curve
  /// is linear; evaluate with energyCostAt().
  static std::vector<EcBreakpoint> energyCostCurve(const Schedule& schedule);

  /// Ec(Pmin) for an arbitrary floor (exact, not interpolated).
  static Energy energyCostAt(const Schedule& schedule, Watts pmin);

  /// rho(Pmin) for an arbitrary floor.
  static double utilizationAt(const Schedule& schedule, Watts pmin);

  /// Largest Pmin with full utilization (rho = 1): the level the profile
  /// sustains over its whole span. Zero when the profile ever idles.
  static Watts sustainedFloor(const Schedule& schedule);
};

/// A set of statically computed schedules plus runtime selection — the
/// paper's deployment model for dynamically changing power constraints.
class ScheduleLibrary {
 public:
  struct Entry {
    std::string label;
    Schedule schedule;
    Watts minimalPmax;  // cached peak
  };

  /// Registers a schedule under `label` (e.g. "best-case", "dust-storm").
  void add(std::string label, Schedule schedule);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Picks the entry that is power-valid under `pmax` with the lowest
  /// energy cost at `pmin`; ties break on finish time, then insertion
  /// order. Returns nullptr when no registered schedule fits the budget.
  [[nodiscard]] const Entry* select(Watts pmax, Watts pmin) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace paws
