// Seeded random mission environments (solar profiles + batteries) for
// runtime-executor property tests and robustness benches — the
// environmental counterpart of random_problem.hpp.
#pragma once

#include <cstdint>

#include "power/sources.hpp"

namespace paws {

struct EnvironmentConfig {
  std::uint32_t seed = 1;
  /// Number of solar phases (>= 1), each with a random level and span.
  std::size_t phases = 4;
  /// Solar level range, milliwatts.
  std::int64_t minSolarMw = 2000;
  std::int64_t maxSolarMw = 20000;
  /// Phase length range, ticks.
  std::int64_t minPhaseTicks = 50;
  std::int64_t maxPhaseTicks = 400;
  /// Battery output range, milliwatts.
  std::int64_t minBatteryMw = 5000;
  std::int64_t maxBatteryMw = 15000;
  /// Battery capacity range, milliwatt-ticks.
  std::int64_t minCapacityMwt = 50'000'000;
  std::int64_t maxCapacityMwt = 500'000'000;
};

struct GeneratedEnvironment {
  SolarSource solar;
  Battery battery;
};

/// Deterministic per seed, like the problem generator.
GeneratedEnvironment generateRandomEnvironment(
    const EnvironmentConfig& config);

}  // namespace paws
