#include "gen/random_environment.hpp"

#include <random>
#include <vector>

#include "base/check.hpp"

namespace paws {

GeneratedEnvironment generateRandomEnvironment(
    const EnvironmentConfig& config) {
  PAWS_CHECK(config.phases >= 1);
  std::mt19937 rng(config.seed);
  const auto uniform = [&rng](std::int64_t lo, std::int64_t hi) {
    PAWS_CHECK(hi >= lo);
    return lo + static_cast<std::int64_t>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };

  std::vector<SolarSource::Phase> phases;
  Time start = Time::zero();
  for (std::size_t i = 0; i < config.phases; ++i) {
    phases.push_back(SolarSource::Phase{
        start,
        Watts::fromMilliwatts(uniform(config.minSolarMw, config.maxSolarMw))});
    start += Duration(uniform(config.minPhaseTicks, config.maxPhaseTicks));
  }

  Battery battery(
      Watts::fromMilliwatts(uniform(config.minBatteryMw, config.maxBatteryMw)),
      Energy::fromMilliwattTicks(
          uniform(config.minCapacityMwt, config.maxCapacityMwt)));
  return GeneratedEnvironment{SolarSource(std::move(phases)),
                              std::move(battery)};
}

}  // namespace paws
