// Seeded random problem generation for property tests and benches.
//
// Problems are generated *feasible by construction*: the generator first
// lays tasks out on a witness schedule (random serial order per resource
// with random idle), then derives constraints that the witness satisfies —
// min separations from sampled pairs ordered by witness start, max
// separations widened from witness distances, and a Pmax at or above the
// witness peak when `powerFeasible` is set. A timing scheduler that is
// complete within its budget must therefore succeed on every generated
// instance, which is the backbone property the test suite sweeps over
// seeds.
#pragma once

#include <cstdint>
#include <random>

#include "model/problem.hpp"
#include "sched/schedule.hpp"

namespace paws {

struct GeneratorConfig {
  std::uint32_t seed = 1;
  std::size_t numTasks = 20;
  std::size_t numResources = 4;
  /// Duration range (uniform, inclusive).
  std::int64_t minDelay = 1;
  std::int64_t maxDelay = 10;
  /// Power range in milliwatts (uniform, inclusive).
  std::int64_t minPowerMw = 500;
  std::int64_t maxPowerMw = 8000;
  /// Average number of min-separation constraints per task.
  double minSepPerTask = 1.5;
  /// Average number of max-separation constraints per task.
  double maxSepPerTask = 0.5;
  /// Extra width added to witness distances for max separations (slack the
  /// scheduler may consume); larger = looser windows.
  std::int64_t maxSepHeadroom = 20;
  /// Random idle inserted between consecutive witness tasks (0..value).
  std::int64_t witnessJitter = 4;
  /// When true, Pmax is set to the witness peak plus `pmaxHeadroomMw`, so a
  /// power-valid schedule is also guaranteed to exist.
  bool powerFeasible = true;
  std::int64_t pmaxHeadroomMw = 0;
  /// When true, one provably contradictory min/max pair is injected so the
  /// instance has NO time-valid schedule (negative-path testing).
  bool injectContradiction = false;
  /// Pmin as a fraction of the witness peak (0 disables the floor).
  double pminFraction = 0.5;
  Watts backgroundPower = Watts::zero();
};

struct GeneratedProblem {
  Problem problem;
  /// The witness schedule used to derive the constraints (time- and, when
  /// powerFeasible, power-valid by construction).
  std::vector<Time> witnessStarts;
};

/// Generates one problem from `config`; identical configs yield identical
/// problems on every platform (no std::uniform_* distribution quirks: all
/// sampling is done through explicit modular arithmetic on a mt19937).
GeneratedProblem generateRandomProblem(const GeneratorConfig& config);

}  // namespace paws
