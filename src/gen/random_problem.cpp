#include "gen/random_problem.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "power/profile.hpp"

namespace paws {

namespace {

/// Uniform integer in [lo, hi] via modular arithmetic (bias is irrelevant
/// for test workloads and this keeps cross-platform determinism).
std::int64_t uniform(std::mt19937& rng, std::int64_t lo, std::int64_t hi) {
  PAWS_CHECK(hi >= lo);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(rng() % span);
}

}  // namespace

GeneratedProblem generateRandomProblem(const GeneratorConfig& config) {
  PAWS_CHECK(config.numTasks >= 1);
  PAWS_CHECK(config.numResources >= 1);
  PAWS_CHECK(config.minDelay >= 1 && config.maxDelay >= config.minDelay);
  PAWS_CHECK(config.minPowerMw >= 0 &&
             config.maxPowerMw >= config.minPowerMw);

  std::mt19937 rng(config.seed);
  Problem p("random_seed" + std::to_string(config.seed));
  p.setBackgroundPower(config.backgroundPower);

  std::vector<ResourceId> resources;
  resources.reserve(config.numResources);
  for (std::size_t r = 0; r < config.numResources; ++r) {
    resources.push_back(p.addResource("r" + std::to_string(r)));
  }

  // Tasks with random delay/power, round-robin-ish random resource mapping.
  struct Gen {
    TaskId id;
    Duration delay;
    std::size_t resource;
  };
  std::vector<Gen> tasks;
  tasks.reserve(config.numTasks);
  for (std::size_t i = 0; i < config.numTasks; ++i) {
    const Duration delay(uniform(rng, config.minDelay, config.maxDelay));
    const Watts power = Watts::fromMilliwatts(
        uniform(rng, config.minPowerMw, config.maxPowerMw));
    const std::size_t res =
        static_cast<std::size_t>(uniform(rng, 0, static_cast<std::int64_t>(
                                                     config.numResources - 1)));
    const TaskId id =
        p.addTask("t" + std::to_string(i), delay, power, resources[res]);
    tasks.push_back(Gen{id, delay, res});
  }

  // Witness: per resource, lay its tasks end-to-end in id order with random
  // idle, each resource lane independently offset.
  std::vector<Time> witness(p.numVertices(), Time::zero());
  {
    std::vector<Time> laneCursor(config.numResources, Time::zero());
    for (std::size_t r = 0; r < config.numResources; ++r) {
      laneCursor[r] = Time(uniform(rng, 0, config.witnessJitter));
    }
    for (const Gen& t : tasks) {
      Time& cursor = laneCursor[t.resource];
      cursor += Duration(uniform(rng, 0, config.witnessJitter));
      witness[t.id.index()] = cursor;
      cursor += t.delay;
    }
  }

  // Min separations: sample ordered pairs (u before v on the witness) and
  // require at most their witness distance, so the witness stays valid.
  const auto sampleCount = [](double perTask, std::size_t n) {
    return static_cast<std::size_t>(perTask * static_cast<double>(n) + 0.5);
  };

  const std::size_t numMin = sampleCount(config.minSepPerTask, tasks.size());
  for (std::size_t k = 0; k < numMin && tasks.size() >= 2; ++k) {
    const std::size_t i = static_cast<std::size_t>(
        uniform(rng, 0, static_cast<std::int64_t>(tasks.size() - 1)));
    const std::size_t j = static_cast<std::size_t>(
        uniform(rng, 0, static_cast<std::int64_t>(tasks.size() - 1)));
    if (i == j) continue;
    TaskId u = tasks[i].id;
    TaskId v = tasks[j].id;
    if (witness[u.index()] == witness[v.index()]) continue;
    if (witness[u.index()] > witness[v.index()]) std::swap(u, v);
    const Duration dist = witness[v.index()] - witness[u.index()];
    const Duration sep(uniform(rng, 1, dist.ticks()));
    p.minSeparation(u, v, sep);
  }

  // Max separations: witness distance plus headroom, always satisfiable.
  const std::size_t numMax = sampleCount(config.maxSepPerTask, tasks.size());
  for (std::size_t k = 0; k < numMax && tasks.size() >= 2; ++k) {
    const std::size_t i = static_cast<std::size_t>(
        uniform(rng, 0, static_cast<std::int64_t>(tasks.size() - 1)));
    const std::size_t j = static_cast<std::size_t>(
        uniform(rng, 0, static_cast<std::int64_t>(tasks.size() - 1)));
    if (i == j) continue;
    TaskId u = tasks[i].id;
    TaskId v = tasks[j].id;
    if (witness[u.index()] > witness[v.index()]) std::swap(u, v);
    const Duration dist = witness[v.index()] - witness[u.index()];
    const Duration sep =
        dist + Duration(uniform(rng, 1, config.maxSepHeadroom));
    p.maxSeparation(u, v, sep);
  }

  // Optional poison pill: a min/max window that cannot be satisfied makes
  // the whole instance provably infeasible.
  if (config.injectContradiction && tasks.size() >= 2) {
    const TaskId u = tasks[0].id;
    const TaskId v = tasks[1].id;
    const Duration atLeast(uniform(rng, 10, 30));
    p.minSeparation(u, v, atLeast);
    p.maxSeparation(u, v, atLeast - Duration(uniform(rng, 1, 9)));
  }

  // Power limits from the witness profile.
  if (config.powerFeasible) {
    const PowerProfile witnessProfile = profileOf(p, witness);
    const Watts peak = witnessProfile.peak();
    p.setMaxPower(peak + Watts::fromMilliwatts(config.pmaxHeadroomMw));
    if (config.pminFraction > 0.0) {
      p.setMinPower(Watts::fromMilliwatts(static_cast<std::int64_t>(
          static_cast<double>(peak.milliwatts()) * config.pminFraction)));
    }
  }

  return GeneratedProblem{std::move(p), std::move(witness)};
}

}  // namespace paws
