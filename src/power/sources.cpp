#include "power/sources.hpp"

#include <algorithm>

namespace paws {

SolarSource::SolarSource(Watts constant) {
  phases_.push_back(Phase{Time::zero(), constant});
}

SolarSource::SolarSource(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  PAWS_CHECK_MSG(!phases_.empty(), "solar source needs at least one phase");
  PAWS_CHECK_MSG(phases_.front().start == Time::zero(),
                 "first solar phase must start at mission time 0");
  for (std::size_t i = 1; i < phases_.size(); ++i) {
    PAWS_CHECK_MSG(phases_[i - 1].start < phases_[i].start,
                   "solar phase starts must be strictly increasing");
  }
}

Watts SolarSource::levelAt(Time t) const {
  PAWS_CHECK_MSG(t >= Time::zero(), "mission time must be non-negative");
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Time t, const Phase& p) { return t < p.start; });
  // `it` is the first phase starting strictly after t; its predecessor rules.
  return std::prev(it)->level;
}

std::optional<Time> SolarSource::nextChangeAfter(Time t) const {
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Time t, const Phase& p) { return t < p.start; });
  if (it == phases_.end()) return std::nullopt;
  return it->start;
}

Battery::Battery(Watts maxOutput, Energy capacity)
    : maxOutput_(maxOutput), capacity_(capacity) {
  PAWS_CHECK_MSG(maxOutput >= Watts::zero(), "battery output must be >= 0");
  PAWS_CHECK_MSG(capacity >= Energy::zero(), "battery capacity must be >= 0");
}

bool Battery::draw(Energy energy) {
  PAWS_CHECK_MSG(energy >= Energy::zero(), "cannot draw negative energy");
  drawn_ += energy;
  if (drawn_ > capacity_) {
    drawn_ = capacity_;
    return false;
  }
  return true;
}

}  // namespace paws
