#include "power/sources.hpp"

#include <algorithm>

namespace paws {

SolarSource::SolarSource(Watts constant) {
  phases_.push_back(Phase{Time::zero(), constant});
}

SolarSource::SolarSource(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  PAWS_CHECK_MSG(!phases_.empty(), "solar source needs at least one phase");
  PAWS_CHECK_MSG(phases_.front().start == Time::zero(),
                 "first solar phase must start at mission time 0");
  for (std::size_t i = 1; i < phases_.size(); ++i) {
    PAWS_CHECK_MSG(phases_[i - 1].start < phases_[i].start,
                   "solar phase starts must be strictly increasing");
  }
}

Watts SolarSource::levelAt(Time t) const {
  PAWS_CHECK_MSG(t >= Time::zero(), "mission time must be non-negative");
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Time t, const Phase& p) { return t < p.start; });
  // `it` is the first phase starting strictly after t; its predecessor rules.
  return std::prev(it)->level;
}

std::optional<Time> SolarSource::nextChangeAfter(Time t) const {
  auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Time t, const Phase& p) { return t < p.start; });
  if (it == phases_.end()) return std::nullopt;
  return it->start;
}

Battery::Battery(Watts maxOutput, Energy capacity)
    : Battery(maxOutput, capacity, BatteryTraits{}) {}

Battery::Battery(Watts maxOutput, Energy capacity, BatteryTraits model)
    : maxOutput_(maxOutput), capacity_(capacity), model_(std::move(model)) {
  PAWS_CHECK_MSG(maxOutput >= Watts::zero(), "battery output must be >= 0");
  PAWS_CHECK_MSG(capacity >= Energy::zero(), "battery capacity must be >= 0");
  for (std::size_t i = 0; i < model_.bands.size(); ++i) {
    PAWS_CHECK_MSG(model_.bands[i].factorPermille >= 1000,
                   "rate-capacity factors must be >= 1000 permille");
    PAWS_CHECK_MSG(i == 0 || model_.bands[i - 1].threshold <
                                 model_.bands[i].threshold,
                   "rate band thresholds must strictly increase");
  }
  PAWS_CHECK_MSG(model_.recoverablePermille >= 0 &&
                     model_.recoverablePermille <= 1000,
                 "recoverable fraction must be in [0, 1000] permille");
  PAWS_CHECK_MSG(model_.recoveryRate >= Watts::zero(),
                 "recovery rate must be >= 0");
}

bool Battery::draw(Energy energy) {
  PAWS_CHECK_MSG(energy >= Energy::zero(), "cannot draw negative energy");
  drawn_ += energy;
  if (drawn_ > capacity_) {
    drawn_ = capacity_;
    return false;
  }
  return true;
}

bool Battery::draw(Energy energy, Time at) {
  if (draw(energy)) return true;
  markDepleted(at);
  return false;
}

bool Battery::drawAt(Watts rate, Duration span, Time at) {
  PAWS_CHECK_MSG(rate >= Watts::zero(), "cannot draw at a negative rate");
  PAWS_CHECK_MSG(span >= Duration::zero(), "cannot draw over a negative span");
  const Watts effective = effectiveRate(rate);
  if (effective > rate) {
    const Energy excess = (effective - rate) * span;
    rateExcess_ += excess;
    recoverable_ += Energy::fromMilliwattTicks(
        excess.milliwattTicks() * model_.recoverablePermille / 1000);
  }
  return draw(effective * span, at);
}

void Battery::recover(Duration span) {
  PAWS_CHECK_MSG(span >= Duration::zero(),
                 "cannot recover over a negative span");
  if (recoverable_.isZero() || span.ticks() == 0) return;
  Energy refund = model_.recoveryRate * span;
  if (refund > recoverable_) refund = recoverable_;
  if (refund > drawn_) refund = drawn_;  // never "recover" above full
  recoverable_ = recoverable_ - refund;
  drawn_ = drawn_ - refund;
  recovered_ += refund;
}

}  // namespace paws
