// ProfileEngine — a MUTABLE power profile with O(log n + touched segments)
// delta updates, incrementally maintained aggregates, and a trail-aligned
// checkpoint/restore undo log.
//
// PowerProfileBuilder rebuilds the whole piecewise-constant profile with an
// O(n log n) event sort; that was fine for one-shot evaluation but every
// scheduler's inner loop evaluates *moves*: delay one task, ask "still no
// spike? did utilization improve? what does the placed prefix cost?", and
// usually undo. This engine is the power-side twin of the rollback-aware
// LongestPathEngine (PR 2): the schedulers mutate it with addTask /
// removeTask / moveTask deltas instead of rebuilding, read every
// accept/reject quantity from cached aggregates in O(1)..O(log n), and
// bracket tentative mutations with checkpoint()/restore() exactly like the
// ConstraintGraph trail.
//
// Representation: a sorted breakpoint map `begin -> level` over [0, finish)
// (level includes the constant background draw), plus
//   * a multiset of task contribution end times (finish = max, matching
//     PowerProfileBuilder's span rule, which counts zero-power tasks);
//   * running integrals: total energy, energy above Pmin (the paper's
//     Ec_sigma(Pmin)), energy capped at Pmin (the utilization numerator);
//   * ordered sets of spike-segment (> Pmax) and gap-segment (< Pmin)
//     begin times — the first-spike / first-gap cursors;
//   * a start-time index of task intervals for activeAt() stabbing queries
//     (window-bounded by the largest task length seen).
//
// Thresholds are fixed per engine (background, Pmin, Pmax are constructor
// parameters): the schedulers always evaluate against the problem's own
// budgets, and fixing them is what makes the integrals maintainable as
// running sums. All arithmetic is the same fixed-point Time/Watts/Energy
// math the builder uses, so every aggregate is bit-identical to a fresh
// PowerProfileBuilder rebuild — the determinism contract the equivalence
// and property tests pin down.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "base/ids.hpp"
#include "base/interval.hpp"
#include "base/time.hpp"
#include "base/units.hpp"
#include "power/profile.hpp"

namespace paws {
class Problem;
}  // namespace paws

namespace paws::obs {
class MetricsRegistry;
}  // namespace paws::obs

namespace paws::power {

class ProfileEngine {
 public:
  ProfileEngine(Watts background, Watts pmin, Watts pmax);

  // ----- mutation ------------------------------------------------------

  /// Adds task `v`'s contribution of `watts` over `interval`. Mirrors
  /// PowerProfileBuilder::add: empty intervals and zero powers still extend
  /// the span to interval.end() but change no level. `v` must not be
  /// present.
  void addTask(TaskId v, Interval interval, Watts watts);

  /// Removes task `v`'s contribution entirely; `v` must be present.
  void removeTask(TaskId v);

  /// Moves task `v`'s interval to begin at `newStart` (same length, same
  /// power); `v` must be present.
  void moveTask(TaskId v, Time newStart);

  /// Clears everything and re-seeds from a start-time assignment (one
  /// contribution per real task, like profileOf). Counts as one rebuild.
  /// Must not be called while a checkpoint is open.
  void rebuild(const Problem& problem, const std::vector<Time>& starts);

  /// Empties the engine (no tasks, zero span). Must not be called while a
  /// checkpoint is open.
  void clear();

  // ----- queries (all served from cached state) ------------------------

  [[nodiscard]] Time finish() const { return finish_; }
  [[nodiscard]] bool hasTask(TaskId v) const;
  [[nodiscard]] Interval taskInterval(TaskId v) const;

  /// Instantaneous power at t; zero outside [0, finish). O(log n).
  [[nodiscard]] Watts valueAt(Time t) const;

  /// Highest instantaneous level (0 for an empty span). O(segments) —
  /// peak is a reporting quantity, not a scheduler inner-loop one, so it
  /// is not worth a per-mutation level-count index.
  [[nodiscard]] Watts peak() const;

  [[nodiscard]] Energy totalEnergy() const { return total_; }
  /// Ec(Pmin) = integral of max(0, P(t) - Pmin) dt. O(1).
  [[nodiscard]] Energy energyAbove() const { return above_; }
  /// Integral of min(P(t), Pmin) dt. O(1).
  [[nodiscard]] Energy energyCapped() const { return capped_; }
  /// rho(Pmin), with PowerProfile::utilization's conventions. O(1).
  [[nodiscard]] double utilization() const;

  /// Earliest t >= from with P(t) > Pmax. O(log n).
  [[nodiscard]] std::optional<Time> firstSpike(
      Time from = Time::minusInfinity()) const;
  /// Earliest t >= from with P(t) < Pmin. O(log n).
  [[nodiscard]] std::optional<Time> firstGap(Time from = Time::zero()) const;

  /// Maximal intervals with P(t) < Pmin, in time order — identical to
  /// PowerProfile::gaps(pmin). O(gap segments * log n).
  [[nodiscard]] std::vector<Interval> gaps() const;

  /// Tasks whose interval contains t, in increasing id order — the
  /// active-interval index behind MaxPowerScheduler's victim scans.
  /// O(log n + candidates in the stabbing window).
  [[nodiscard]] std::vector<TaskId> activeAt(Time t) const;

  /// Materializes the current profile with merged equal-power neighbours —
  /// byte-identical to PowerProfileBuilder::build on the same
  /// contributions. O(n).
  [[nodiscard]] PowerProfile snapshot() const;

  /// One step of the two-stream 64-bit mix used for profile fingerprints
  /// (FNV-1a-style streams with distinct constants; 128 bits total so
  /// accidental collisions are out of reach for any realistic search).
  static constexpr void mixHash(std::uint64_t& h1, std::uint64_t& h2,
                                std::uint64_t x) {
    h1 = (h1 ^ x) * 0x100000001b3ULL;
    h2 = (h2 ^ (x + 0x9e3779b97f4a7c15ULL)) * 0xc2b2ae3d27d4eb4fULL;
  }

  /// Mixes the *merged-segment* view of the profile — finish, then each
  /// (begin, level) pair with equal-level neighbours coalesced — into the
  /// two hash streams. Hashing the merged view (rather than the raw
  /// breakpoint map, which may hold equal-level neighbours between
  /// coalesce opportunities) makes the fingerprint a pure function of the
  /// profile *as a function of time*, so it matches a fingerprint computed
  /// from a freshly built PowerProfile of the same contributions. The
  /// exhaustive search's dominance table depends on that equality to make
  /// identical pruning decisions in incremental and rebuild modes.
  void mixState(std::uint64_t& h1, std::uint64_t& h2) const {
    mixHash(h1, h2, static_cast<std::uint64_t>(finish_.ticks()));
    bool first = true;
    Watts prev = Watts::zero();
    for (const auto& [begin, level] : level_) {
      if (!first && level == prev) continue;
      first = false;
      prev = level;
      mixHash(h1, h2, static_cast<std::uint64_t>(begin.ticks()));
      mixHash(h1, h2, static_cast<std::uint64_t>(level.milliwatts()));
    }
  }

  // ----- trail-aligned checkpoint / restore ----------------------------
  //
  // Same contract as LongestPathEngine: open a frame before tentative
  // mutations, restore() to undo them exactly (LIFO), release() to keep
  // them. Frames nest; rebuild()/clear() are forbidden while any frame is
  // open (the log could not replay across them). Mutations outside any
  // open frame are not logged — the exhaustive search's push/pop pattern
  // pays zero logging cost.

  struct Checkpoint {
    std::size_t undoSize = 0;
  };

  [[nodiscard]] Checkpoint checkpoint();
  void restore(const Checkpoint& cp);
  void release(const Checkpoint& cp);

  // ----- observability -------------------------------------------------

  /// Adds the engine's effort counters to `registry`:
  ///   profile.rebuilds             full re-seeds (rebuild() calls)
  ///   profile.incremental_updates  addTask/removeTask/moveTask deltas
  ///   profile.restores             checkpoint frames undone
  void exportMetrics(obs::MetricsRegistry& registry) const;

  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::uint64_t incrementalUpdates() const { return updates_; }
  [[nodiscard]] std::uint64_t restores() const { return restores_; }

 private:
  struct Entry {
    Interval interval;
    Watts watts;
    bool present = false;
  };

  void addContribution(TaskId v, Interval interval, Watts watts, bool log);
  void removeContribution(TaskId v, bool log);
  /// Adds `delta` to every segment level in [b, e); b and e must already be
  /// breakpoints (or the span end).
  void applyDelta(Time b, Time e, Watts delta);
  /// Ensures a breakpoint at t (0 < t < finish) by splitting the segment
  /// containing it.
  void splitAt(Time t);
  /// Removes the breakpoint at t when its level equals its predecessor's.
  void coalesceAt(Time t);
  /// Grows the span to `newEnd`, appending a background-level segment.
  void extendTo(Time newEnd);
  /// Shrinks the span to `newEnd`; everything at/after newEnd must already
  /// be back at background level.
  void shrinkTo(Time newEnd);
  [[nodiscard]] Duration segmentLength(
      std::map<Time, Watts>::const_iterator it) const;
  /// Adds/removes one segment instance to the spike/gap cursors (no
  /// energy change — used by split/coalesce too).
  void registerSegment(Time begin, Watts level);
  void unregisterSegment(Time begin, Watts level);
  /// Adds (or subtracts) one segment's contribution to the running
  /// integrals.
  void energyDelta(Watts level, Duration length, bool add);

  const Watts background_;
  const Watts pmin_;
  const Watts pmax_;

  Time finish_ = Time::zero();
  std::map<Time, Watts> level_;                   // segment begin -> level
  std::multiset<Time> ends_;                      // all contribution ends
  Energy total_;
  Energy above_;
  Energy capped_;
  std::set<Time> spikeStarts_;                    // segment begins > pmax
  std::set<Time> gapStarts_;                      // segment begins < pmin
  std::multimap<Time, TaskId> byStart_;           // active-interval index
  Duration maxTaskLength_ = Duration::zero();     // stabbing window bound
  std::vector<Entry> tasks_;                      // indexed by TaskId

  struct Undo {
    enum class Op : std::uint8_t { kAdd, kRemove };
    Op op;
    TaskId task;
    Interval interval;
    Watts watts;
  };
  std::vector<Undo> undoLog_;
  std::size_t openCheckpoints_ = 0;

  std::uint64_t rebuilds_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace paws::power
