#include "power/profile.hpp"

#include <algorithm>
#include <ostream>

#include "base/check.hpp"

namespace paws {

void PowerProfileBuilder::add(Interval interval, Watts power) {
  if (interval.empty() || power.isZero()) {
    if (interval.end() > maxEnd_) maxEnd_ = interval.end();
    return;
  }
  PAWS_CHECK_MSG(interval.begin() >= Time::zero(),
                 "profile contributions must start at/after 0, got "
                     << interval.begin());
  events_.push_back(Event{interval.begin(), power});
  events_.push_back(Event{interval.end(), -power});
  if (interval.end() > maxEnd_) maxEnd_ = interval.end();
}

PowerProfile PowerProfileBuilder::build(Watts background) const {
  PowerProfile profile;
  profile.finish_ = maxEnd_;
  if (maxEnd_ <= Time::zero()) return profile;

  std::vector<Event> events = events_;
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.at < b.at; });

  Watts level = background;
  Time cursor = Time::zero();
  std::size_t i = 0;
  auto emit = [&profile](Time from, Time to, Watts power) {
    if (to <= from) return;
    if (!profile.segments_.empty() &&
        profile.segments_.back().power == power &&
        profile.segments_.back().interval.end() == from) {
      // Merge with the previous equal-power segment.
      profile.segments_.back().interval =
          Interval(profile.segments_.back().interval.begin(), to);
      return;
    }
    profile.segments_.push_back(PowerSegment{Interval(from, to), power});
  };

  while (i < events.size()) {
    const Time at = events[i].at;
    emit(cursor, std::min(at, maxEnd_), level);
    Watts delta;
    while (i < events.size() && events[i].at == at) {
      delta += events[i].delta;
      ++i;
    }
    level += delta;
    cursor = std::max(cursor, std::min(at, maxEnd_));
  }
  emit(cursor, maxEnd_, level);
  return profile;
}

PowerProfile PowerProfile::fromSegments(std::vector<PowerSegment> segments,
                                        Time finish) {
  PowerProfile profile;
  profile.finish_ = finish;
  Time cursor = Time::zero();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const PowerSegment& s = segments[i];
    PAWS_CHECK_MSG(s.interval.begin() == cursor && !s.interval.empty(),
                   "fromSegments: segments must be contiguous from 0");
    PAWS_CHECK_MSG(i == 0 || segments[i - 1].power != s.power,
                   "fromSegments: equal-power neighbours must be merged");
    cursor = s.interval.end();
  }
  PAWS_CHECK_MSG(cursor == finish,
                 "fromSegments: segments must cover [0, finish)");
  profile.segments_ = std::move(segments);
  return profile;
}

Watts PowerProfile::valueAt(Time t) const {
  if (t < Time::zero() || t >= finish_) return Watts::zero();
  // Binary search over contiguous segments.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Time t, const PowerSegment& s) { return t < s.interval.end(); });
  if (it == segments_.end() || !it->interval.contains(t)) return Watts::zero();
  return it->power;
}

Watts PowerProfile::peak() const {
  Watts best = Watts::zero();
  for (const PowerSegment& s : segments_) best = std::max(best, s.power);
  return best;
}

Energy PowerProfile::totalEnergy() const {
  Energy total;
  for (const PowerSegment& s : segments_) {
    total += s.power * s.interval.length();
  }
  return total;
}

Energy PowerProfile::energyAbove(Watts pmin) const {
  Energy total;
  for (const PowerSegment& s : segments_) {
    if (s.power > pmin) total += (s.power - pmin) * s.interval.length();
  }
  return total;
}

Energy PowerProfile::energyAboveWithin(Watts pmin, Interval window) const {
  Energy total;
  for (const PowerSegment& s : segments_) {
    if (s.power <= pmin) continue;
    const Interval overlap = s.interval.intersect(window);
    if (!overlap.empty()) total += (s.power - pmin) * overlap.length();
  }
  return total;
}

Energy PowerProfile::energyCappedAt(Watts cap) const {
  Energy total;
  for (const PowerSegment& s : segments_) {
    total += std::min(s.power, cap) * s.interval.length();
  }
  return total;
}

double PowerProfile::utilization(Watts pmin) const {
  if (pmin <= Watts::zero() || finish_ <= Time::zero()) return 1.0;
  const Energy available = pmin * (finish_ - Time::zero());
  return energyCappedAt(pmin).ratioOf(available);
}

std::vector<Interval> PowerProfile::spikes(Watts pmax) const {
  std::vector<Interval> result;
  for (const PowerSegment& s : segments_) {
    if (s.power <= pmax) continue;
    if (!result.empty() && result.back().end() == s.interval.begin()) {
      result.back() = Interval(result.back().begin(), s.interval.end());
    } else {
      result.push_back(s.interval);
    }
  }
  return result;
}

std::optional<Time> PowerProfile::firstSpike(Watts pmax, Time from) const {
  for (const PowerSegment& s : segments_) {
    if (s.interval.end() <= from) continue;
    if (s.power > pmax) return std::max(s.interval.begin(), from);
  }
  return std::nullopt;
}

std::vector<Interval> PowerProfile::gaps(Watts pmin) const {
  std::vector<Interval> result;
  for (const PowerSegment& s : segments_) {
    if (s.power >= pmin) continue;
    if (!result.empty() && result.back().end() == s.interval.begin()) {
      result.back() = Interval(result.back().begin(), s.interval.end());
    } else {
      result.push_back(s.interval);
    }
  }
  return result;
}

std::optional<Time> PowerProfile::firstGap(Watts pmin, Time from) const {
  for (const PowerSegment& s : segments_) {
    if (s.interval.end() <= from) continue;
    if (s.power < pmin) return std::max(s.interval.begin(), from);
  }
  return std::nullopt;
}

Watts PowerProfile::maxStep() const {
  Watts best = Watts::zero();
  Watts prev = Watts::zero();
  for (const PowerSegment& s : segments_) {
    const Watts step = s.power > prev ? s.power - prev : prev - s.power;
    best = std::max(best, step);
    prev = s.power;
  }
  // Final drop back to zero at the end of the span.
  best = std::max(best, prev);
  return best;
}

std::ostream& operator<<(std::ostream& os, const PowerProfile& profile) {
  os << "profile{";
  for (std::size_t i = 0; i < profile.segments().size(); ++i) {
    if (i) os << ", ";
    const PowerSegment& s = profile.segments()[i];
    os << s.interval << '=' << s.power;
  }
  return os << '}';
}

}  // namespace paws
