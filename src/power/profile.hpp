// Power profiles P_sigma(t) and the paper's power properties (Section 4.2).
//
// A profile is the system-level instantaneous power drawn while a schedule
// executes: the sum of every active task's power plus the constant
// background draw. It is piecewise constant with breakpoints only at task
// starts/ends, so we store it as sorted half-open segments and evaluate all
// integrals exactly in fixed point:
//
//   * energy cost     Ec_sigma(Pmin)  = integral of max(0, P(t) - Pmin) dt
//     (energy that must come from the costly source, e.g. battery);
//   * min-power utilization rho_sigma(Pmin)
//                     = integral of min(P(t), Pmin) dt / (Pmin * tau)
//     (fraction of the free energy actually consumed);
//   * power spikes: maximal intervals with P(t) > Pmax (hard violations);
//   * power gaps:   maximal intervals with P(t) < Pmin (soft violations).
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "base/interval.hpp"
#include "base/time.hpp"
#include "base/units.hpp"

namespace paws {

/// One piecewise-constant piece of a profile.
struct PowerSegment {
  Interval interval;
  Watts power;
};

class PowerProfile;

/// Accumulates (interval, power) contributions and produces a profile.
class PowerProfileBuilder {
 public:
  /// Adds a contribution of `power` over `interval` (empty intervals and
  /// zero powers are legal and ignored at build time).
  void add(Interval interval, Watts power);

  /// Builds the profile over [0, end) where `end` is the latest contribution
  /// end (or 0 if none). `background` is added across the whole span.
  [[nodiscard]] PowerProfile build(Watts background = Watts::zero()) const;

 private:
  struct Event {
    Time at;
    Watts delta;
  };
  std::vector<Event> events_;
  Time maxEnd_ = Time::zero();
};

class PowerProfile {
 public:
  PowerProfile() = default;

  /// Wraps an already-built segment list (used by power::ProfileEngine to
  /// materialize its mutable state as an immutable profile). `segments`
  /// must be contiguous from 0 to `finish` with equal-power neighbours
  /// already merged — the invariants build() establishes.
  [[nodiscard]] static PowerProfile fromSegments(
      std::vector<PowerSegment> segments, Time finish);

  /// Segments in increasing time order; contiguous (no holes), covering
  /// [0, finish), with equal-power neighbours merged.
  [[nodiscard]] const std::vector<PowerSegment>& segments() const {
    return segments_;
  }

  /// End of the profile span (the schedule finish time tau).
  [[nodiscard]] Time finish() const { return finish_; }
  [[nodiscard]] bool empty() const { return segments_.empty(); }

  /// Instantaneous power at time t; zero outside [0, finish).
  [[nodiscard]] Watts valueAt(Time t) const;

  /// Highest instantaneous power (zero for an empty profile).
  [[nodiscard]] Watts peak() const;

  /// Total energy = integral of P(t) dt over the whole span.
  [[nodiscard]] Energy totalEnergy() const;

  /// Energy cost Ec(Pmin): integral of max(0, P(t) - pmin) dt.
  [[nodiscard]] Energy energyAbove(Watts pmin) const;

  /// Ec restricted to `window` (for attributing cost to mission phases or
  /// unrolled loop iterations).
  [[nodiscard]] Energy energyAboveWithin(Watts pmin, Interval window) const;

  /// Integral of min(P(t), cap) dt — the free energy actually used.
  [[nodiscard]] Energy energyCappedAt(Watts cap) const;

  /// rho(Pmin) in [0, 1]; defined as 1 when pmin == 0 or the span is empty
  /// (conventional energy minimization is the Pmin = 0 special case).
  [[nodiscard]] double utilization(Watts pmin) const;

  /// Maximal intervals where P(t) > pmax (hard max-power violations).
  [[nodiscard]] std::vector<Interval> spikes(Watts pmax) const;

  /// Earliest time t >= `from` with P(t) > pmax, if any. The default
  /// `from` covers the whole span; schedulers repairing a mid-flight plan
  /// pass the repair instant so unfixable historical spikes are tolerated.
  [[nodiscard]] std::optional<Time> firstSpike(
      Watts pmax, Time from = Time::minusInfinity()) const;

  /// Maximal intervals where P(t) < pmin (soft min-power violations).
  [[nodiscard]] std::vector<Interval> gaps(Watts pmin) const;

  /// Earliest time t with P(t) < pmin at or after `from`, if any.
  [[nodiscard]] std::optional<Time> firstGap(Watts pmin,
                                             Time from = Time::zero()) const;

  /// Largest instantaneous power change across any breakpoint (power
  /// jitter — the secondary motivation for the min power constraint).
  [[nodiscard]] Watts maxStep() const;

 private:
  friend class PowerProfileBuilder;
  std::vector<PowerSegment> segments_;
  Time finish_ = Time::zero();
};

std::ostream& operator<<(std::ostream& os, const PowerProfile& profile);

}  // namespace paws
