#include "power/profile_engine.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "model/problem.hpp"
#include "obs/metrics.hpp"

namespace paws::power {

ProfileEngine::ProfileEngine(Watts background, Watts pmin, Watts pmax)
    : background_(background), pmin_(pmin), pmax_(pmax) {}

// ----- segment bookkeeping ----------------------------------------------

Duration ProfileEngine::segmentLength(
    std::map<Time, Watts>::const_iterator it) const {
  const auto next = std::next(it);
  const Time end = next == level_.end() ? finish_ : next->first;
  return end - it->first;
}

void ProfileEngine::registerSegment(Time begin, Watts level) {
  if (level > pmax_) spikeStarts_.insert(begin);
  if (level < pmin_) gapStarts_.insert(begin);
}

void ProfileEngine::unregisterSegment(Time begin, Watts level) {
  if (level > pmax_) spikeStarts_.erase(begin);
  if (level < pmin_) gapStarts_.erase(begin);
}

void ProfileEngine::energyDelta(Watts level, Duration length, bool add) {
  const Energy t = level * length;
  const Energy a =
      level > pmin_ ? (level - pmin_) * length : Energy::zero();
  const Energy c = std::min(level, pmin_) * length;
  if (add) {
    total_ += t;
    above_ += a;
    capped_ += c;
  } else {
    total_ = total_ - t;
    above_ = above_ - a;
    capped_ = capped_ - c;
  }
}

void ProfileEngine::splitAt(Time t) {
  if (t <= Time::zero() || t >= finish_) return;
  const auto next = level_.upper_bound(t);
  const auto it = std::prev(next);
  if (it->first == t) return;  // already a breakpoint
  level_.emplace_hint(next, t, it->second);
  registerSegment(t, it->second);  // same level: integrals unchanged
}

void ProfileEngine::coalesceAt(Time t) {
  const auto it = level_.find(t);
  if (it == level_.end() || it == level_.begin()) return;
  if (std::prev(it)->second != it->second) return;
  unregisterSegment(t, it->second);
  level_.erase(it);
}

void ProfileEngine::applyDelta(Time b, Time e, Watts delta) {
  if (delta.isZero() || b >= e) return;
  auto it = level_.find(b);
  PAWS_CHECK(it != level_.end());
  while (it != level_.end() && it->first < e) {
    const Duration len = segmentLength(it);
    const Watts oldLevel = it->second;
    const Watts newLevel = oldLevel + delta;
    energyDelta(oldLevel, len, /*add=*/false);
    energyDelta(newLevel, len, /*add=*/true);
    // The segment's begin key is unchanged, so the spike/gap cursor sets
    // only need touching when the level actually crosses a threshold —
    // the common same-side delta costs no tree operation here.
    const bool wasSpike = oldLevel > pmax_;
    const bool isSpike = newLevel > pmax_;
    if (wasSpike != isSpike) {
      if (isSpike) {
        spikeStarts_.insert(it->first);
      } else {
        spikeStarts_.erase(it->first);
      }
    }
    const bool wasGap = oldLevel < pmin_;
    const bool isGap = newLevel < pmin_;
    if (wasGap != isGap) {
      if (isGap) {
        gapStarts_.insert(it->first);
      } else {
        gapStarts_.erase(it->first);
      }
    }
    it->second = newLevel;
    ++it;
  }
}

void ProfileEngine::extendTo(Time newEnd) {
  if (newEnd <= finish_) return;
  const Time old = finish_;
  finish_ = newEnd;
  if (level_.empty()) {
    level_.emplace(Time::zero(), background_);
    registerSegment(Time::zero(), background_);
    energyDelta(background_, newEnd - Time::zero(), /*add=*/true);
    return;
  }
  level_.emplace(old, background_);
  registerSegment(old, background_);
  energyDelta(background_, newEnd - old, /*add=*/true);
  coalesceAt(old);
}

void ProfileEngine::shrinkTo(Time newEnd) {
  if (newEnd >= finish_) return;
  splitAt(newEnd);  // breakpoint at the new span end, if inside a segment
  auto it = level_.lower_bound(newEnd);
  while (it != level_.end()) {
    PAWS_CHECK_MSG(it->second == background_,
                   "span shrink over a non-background segment at "
                       << it->first);
    energyDelta(it->second, segmentLength(it), /*add=*/false);
    unregisterSegment(it->first, it->second);
    it = level_.erase(it);
  }
  finish_ = newEnd;
}

// ----- mutation ----------------------------------------------------------

void ProfileEngine::addContribution(TaskId v, Interval interval, Watts watts,
                                    bool log) {
  if (v.index() >= tasks_.size()) tasks_.resize(v.index() + 1);
  PAWS_CHECK_MSG(!tasks_[v.index()].present,
                 "task " << v.value() << " already in the profile");
  // Mirror PowerProfileBuilder::add: only contributions that change the
  // level function must start at/after 0; empty/zero ones just extend the
  // span.
  if (!interval.empty() && !watts.isZero()) {
    PAWS_CHECK_MSG(interval.begin() >= Time::zero(),
                   "profile contributions must start at/after 0, got "
                       << interval.begin());
  }
  if (log && openCheckpoints_ > 0) {
    undoLog_.push_back(Undo{Undo::Op::kAdd, v, interval, watts});
  }

  ends_.insert(interval.end());
  if (interval.end() > finish_) extendTo(interval.end());
  if (!interval.empty() && !watts.isZero()) {
    splitAt(interval.begin());
    splitAt(interval.end());
    applyDelta(interval.begin(), interval.end(), watts);
    coalesceAt(interval.begin());
    coalesceAt(interval.end());
  }

  byStart_.emplace(interval.begin(), v);
  if (interval.length() > maxTaskLength_) maxTaskLength_ = interval.length();
  tasks_[v.index()] = Entry{interval, watts, /*present=*/true};
}

void ProfileEngine::removeContribution(TaskId v, bool log) {
  PAWS_CHECK(v.index() < tasks_.size() && tasks_[v.index()].present);
  const Entry entry = tasks_[v.index()];
  if (log && openCheckpoints_ > 0) {
    undoLog_.push_back(
        Undo{Undo::Op::kRemove, v, entry.interval, entry.watts});
  }

  if (!entry.interval.empty() && !entry.watts.isZero()) {
    splitAt(entry.interval.begin());
    splitAt(entry.interval.end());
    applyDelta(entry.interval.begin(), entry.interval.end(), -entry.watts);
    coalesceAt(entry.interval.begin());
    coalesceAt(entry.interval.end());
  }
  ends_.erase(ends_.find(entry.interval.end()));
  // The span is max(0, latest contribution end) — the builder's maxEnd_
  // starts at 0 and only grows, so negative ends never shrink below 0.
  const Time newFinish = std::max(
      Time::zero(), ends_.empty() ? Time::zero() : *ends_.rbegin());
  if (newFinish < finish_) shrinkTo(newFinish);

  const auto range = byStart_.equal_range(entry.interval.begin());
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == v) {
      byStart_.erase(it);
      break;
    }
  }
  tasks_[v.index()].present = false;
}

void ProfileEngine::addTask(TaskId v, Interval interval, Watts watts) {
  ++updates_;
  addContribution(v, interval, watts, /*log=*/true);
}

void ProfileEngine::removeTask(TaskId v) {
  ++updates_;
  removeContribution(v, /*log=*/true);
}

void ProfileEngine::moveTask(TaskId v, Time newStart) {
  PAWS_CHECK(v.index() < tasks_.size() && tasks_[v.index()].present);
  const Entry entry = tasks_[v.index()];
  const Interval target(newStart, newStart + entry.interval.length());
  if (target == entry.interval) return;
  ++updates_;
  removeContribution(v, /*log=*/true);
  addContribution(v, target, entry.watts, /*log=*/true);
}

void ProfileEngine::clear() {
  PAWS_CHECK_MSG(openCheckpoints_ == 0,
                 "ProfileEngine::clear with an open checkpoint");
  finish_ = Time::zero();
  level_.clear();
  ends_.clear();
  total_ = Energy::zero();
  above_ = Energy::zero();
  capped_ = Energy::zero();
  spikeStarts_.clear();
  gapStarts_.clear();
  byStart_.clear();
  maxTaskLength_ = Duration::zero();
  tasks_.clear();
  undoLog_.clear();
}

void ProfileEngine::rebuild(const Problem& problem,
                            const std::vector<Time>& starts) {
  clear();
  ++rebuilds_;
  for (std::size_t i = 1; i < problem.numVertices(); ++i) {
    const TaskId v(static_cast<std::uint32_t>(i));
    const Task& task = problem.task(v);
    addContribution(v, Interval(starts[i], starts[i] + task.delay),
                    task.power, /*log=*/false);
  }
}

// ----- queries -----------------------------------------------------------

bool ProfileEngine::hasTask(TaskId v) const {
  return v.index() < tasks_.size() && tasks_[v.index()].present;
}

Interval ProfileEngine::taskInterval(TaskId v) const {
  PAWS_CHECK(hasTask(v));
  return tasks_[v.index()].interval;
}

Watts ProfileEngine::valueAt(Time t) const {
  if (t < Time::zero() || t >= finish_) return Watts::zero();
  return std::prev(level_.upper_bound(t))->second;
}

Watts ProfileEngine::peak() const {
  Watts best = Watts::zero();
  for (const auto& [begin, level] : level_) best = std::max(best, level);
  return best;
}

double ProfileEngine::utilization() const {
  if (pmin_ <= Watts::zero() || finish_ <= Time::zero()) return 1.0;
  const Energy available = pmin_ * (finish_ - Time::zero());
  return capped_.ratioOf(available);
}

std::optional<Time> ProfileEngine::firstSpike(Time from) const {
  // The spike segment straddling `from`, if any (begin < from < end).
  if (from > Time::zero() && from < finish_) {
    const auto seg = std::prev(level_.upper_bound(from));
    if (seg->first < from && seg->second > pmax_) return from;
  }
  const auto it = spikeStarts_.lower_bound(from);
  if (it != spikeStarts_.end()) return *it;
  return std::nullopt;
}

std::optional<Time> ProfileEngine::firstGap(Time from) const {
  if (from > Time::zero() && from < finish_) {
    const auto seg = std::prev(level_.upper_bound(from));
    if (seg->first < from && seg->second < pmin_) return from;
  }
  const auto it = gapStarts_.lower_bound(from);
  if (it != gapStarts_.end()) return *it;
  return std::nullopt;
}

std::vector<Interval> ProfileEngine::gaps() const {
  std::vector<Interval> result;
  for (const Time begin : gapStarts_) {
    const auto next = level_.upper_bound(begin);
    const Time end = next == level_.end() ? finish_ : next->first;
    if (!result.empty() && result.back().end() == begin) {
      result.back() = Interval(result.back().begin(), end);
    } else {
      result.emplace_back(begin, end);
    }
  }
  return result;
}

std::vector<TaskId> ProfileEngine::activeAt(Time t) const {
  std::vector<TaskId> result;
  if (maxTaskLength_ <= Duration::zero()) return result;
  // Only tasks starting in (t - maxLen, t] can contain t.
  const Time lo = t - maxTaskLength_ + Duration(1);
  for (auto it = byStart_.lower_bound(lo);
       it != byStart_.end() && it->first <= t; ++it) {
    if (tasks_[it->second.index()].interval.contains(t)) {
      result.push_back(it->second);
    }
  }
  std::sort(result.begin(), result.end(),
            [](TaskId a, TaskId b) { return a.value() < b.value(); });
  return result;
}

PowerProfile ProfileEngine::snapshot() const {
  // Adjacent equal-level segments never survive a mutation (coalesceAt),
  // so the breakpoint map is already the merged segment list.
  std::vector<PowerSegment> segments;
  segments.reserve(level_.size());
  for (auto it = level_.begin(); it != level_.end(); ++it) {
    segments.push_back(
        PowerSegment{Interval(it->first, it->first + segmentLength(it)),
                     it->second});
  }
  return PowerProfile::fromSegments(std::move(segments), finish_);
}

// ----- checkpoint / restore ----------------------------------------------

ProfileEngine::Checkpoint ProfileEngine::checkpoint() {
  ++openCheckpoints_;
  return Checkpoint{undoLog_.size()};
}

void ProfileEngine::restore(const Checkpoint& cp) {
  PAWS_CHECK(openCheckpoints_ > 0);
  PAWS_CHECK(undoLog_.size() >= cp.undoSize);
  while (undoLog_.size() > cp.undoSize) {
    const Undo u = undoLog_.back();
    undoLog_.pop_back();
    if (u.op == Undo::Op::kAdd) {
      removeContribution(u.task, /*log=*/false);
    } else {
      addContribution(u.task, u.interval, u.watts, /*log=*/false);
    }
  }
  --openCheckpoints_;
  ++restores_;
  if (openCheckpoints_ == 0) undoLog_.clear();
}

void ProfileEngine::release(const Checkpoint& cp) {
  PAWS_CHECK(openCheckpoints_ > 0);
  PAWS_CHECK(undoLog_.size() >= cp.undoSize);
  --openCheckpoints_;
  if (openCheckpoints_ == 0) undoLog_.clear();
}

// ----- observability ------------------------------------------------------

void ProfileEngine::exportMetrics(obs::MetricsRegistry& registry) const {
  registry.add("profile.rebuilds", rebuilds_);
  registry.add("profile.incremental_updates", updates_);
  registry.add("profile.restores", restores_);
}

}  // namespace paws::power
