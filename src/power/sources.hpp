// Energy sources: free (solar) and costly (non-rechargeable battery).
//
// The paper's power constraints are derived from the platform's sources
// (Section 3): Pmax = available solar power + maximum battery output, and
// Pmin = the solar level, so that consumption below Pmin is free while
// consumption above it drains mission lifetime. `SolarSource` models the
// time-varying free level (piecewise constant over mission time, like the
// 14.9 -> 12 -> 9 W scenario of Table 4); `Battery` models the costly
// source with a max output and a finite, non-rechargeable capacity.
#pragma once

#include <optional>
#include <vector>

#include "base/check.hpp"
#include "base/time.hpp"
#include "base/units.hpp"

namespace paws {

/// Piecewise-constant free power over mission time. The last level extends
/// to infinity (a mission phase list never "runs out" of definition).
class SolarSource {
 public:
  /// Constant solar output.
  explicit SolarSource(Watts constant);

  /// Phased output: `phases[i]` holds from its start time until the next
  /// phase's start; starts must be strictly increasing and begin at 0.
  struct Phase {
    Time start;
    Watts level;
  };
  explicit SolarSource(std::vector<Phase> phases);

  /// Free power available at mission time t (t >= 0).
  [[nodiscard]] Watts levelAt(Time t) const;

  /// Mission time when the level next changes strictly after t, if any.
  [[nodiscard]] std::optional<Time> nextChangeAfter(Time t) const;

  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }

 private:
  std::vector<Phase> phases_;
};

/// Non-rechargeable battery: bounded instantaneous output and finite
/// capacity. `draw()` performs the accounting a mission simulator needs.
class Battery {
 public:
  Battery(Watts maxOutput, Energy capacity);

  [[nodiscard]] Watts maxOutput() const { return maxOutput_; }
  [[nodiscard]] Energy capacity() const { return capacity_; }
  [[nodiscard]] Energy drawn() const { return drawn_; }
  [[nodiscard]] Energy remaining() const { return capacity_ - drawn_; }
  [[nodiscard]] bool depleted() const { return drawn_ >= capacity_; }

  /// Records `energy` drawn from the battery. Returns false (and clamps to
  /// capacity) when the draw exceeds the remaining charge.
  bool draw(Energy energy);

  /// Resets the accounting (fresh battery).
  void reset() { drawn_ = Energy::zero(); }

 private:
  Watts maxOutput_;
  Energy capacity_;
  Energy drawn_;
};

/// A platform power supply: one free source plus one costly source.
/// Derives the scheduling constraints of Section 3 at any mission time.
class PowerSupply {
 public:
  PowerSupply(SolarSource solar, Battery battery)
      : solar_(std::move(solar)), battery_(std::move(battery)) {}

  /// Hard budget at mission time t: solar level + max battery output.
  [[nodiscard]] Watts maxPowerAt(Time t) const {
    return solar_.levelAt(t) + battery_.maxOutput();
  }
  /// Soft floor at mission time t: the free (solar) level.
  [[nodiscard]] Watts minPowerAt(Time t) const { return solar_.levelAt(t); }

  [[nodiscard]] const SolarSource& solar() const { return solar_; }
  [[nodiscard]] Battery& battery() { return battery_; }
  [[nodiscard]] const Battery& battery() const { return battery_; }

 private:
  SolarSource solar_;
  Battery battery_;
};

}  // namespace paws
