// Energy sources: free (solar) and costly (non-rechargeable battery).
//
// The paper's power constraints are derived from the platform's sources
// (Section 3): Pmax = available solar power + maximum battery output, and
// Pmin = the solar level, so that consumption below Pmin is free while
// consumption above it drains mission lifetime. `SolarSource` models the
// time-varying free level (piecewise constant over mission time, like the
// 14.9 -> 12 -> 9 W scenario of Table 4); `Battery` models the costly
// source with a max output and a finite, non-rechargeable capacity.
#pragma once

#include <optional>
#include <vector>

#include "base/check.hpp"
#include "base/time.hpp"
#include "base/units.hpp"
#include "model/battery_traits.hpp"

namespace paws {

/// Piecewise-constant free power over mission time. The last level extends
/// to infinity (a mission phase list never "runs out" of definition).
class SolarSource {
 public:
  /// Constant solar output.
  explicit SolarSource(Watts constant);

  /// Phased output: `phases[i]` holds from its start time until the next
  /// phase's start; starts must be strictly increasing and begin at 0.
  struct Phase {
    Time start;
    Watts level;
  };
  explicit SolarSource(std::vector<Phase> phases);

  /// Free power available at mission time t (t >= 0).
  [[nodiscard]] Watts levelAt(Time t) const;

  /// Mission time when the level next changes strictly after t, if any.
  [[nodiscard]] std::optional<Time> nextChangeAfter(Time t) const;

  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }

 private:
  std::vector<Phase> phases_;
};

/// Non-rechargeable battery: bounded instantaneous output and finite
/// capacity. `draw()` performs the accounting a mission simulator needs.
///
/// With a non-linear BatteryTraits model the battery additionally applies
/// the rate-capacity effect — `drawAt()` drains `effectiveRate(rate)`
/// instead of `rate`, banking the configured fraction of the superlinear
/// excess as recoverable charge that `recover()` refunds during idle gaps.
/// The default (linear) model makes every one of these paths an exact
/// identity, so pre-rate-capacity accounting is bit-preserved.
class Battery {
 public:
  Battery(Watts maxOutput, Energy capacity);
  Battery(Watts maxOutput, Energy capacity, BatteryTraits model);

  [[nodiscard]] Watts maxOutput() const { return maxOutput_; }
  [[nodiscard]] Energy capacity() const { return capacity_; }
  [[nodiscard]] Energy drawn() const { return drawn_; }
  [[nodiscard]] Energy remaining() const { return capacity_ - drawn_; }
  [[nodiscard]] bool depleted() const { return drawn_ >= capacity_; }

  [[nodiscard]] const BatteryTraits& model() const { return model_; }
  /// Effective charge-drain rate for a nominal draw under the model.
  [[nodiscard]] Watts effectiveRate(Watts rate) const {
    return model_.effectiveRate(rate);
  }
  /// Banked recoverable charge (always zero under the linear model).
  [[nodiscard]] Energy recoverable() const { return recoverable_; }
  /// Total rate-capacity excess drained so far (effective minus nominal).
  [[nodiscard]] Energy rateExcess() const { return rateExcess_; }
  /// Total charge refunded by idle-gap recovery so far.
  [[nodiscard]] Energy recovered() const { return recovered_; }

  /// Mission tick at which the charge ran out, latched by the first
  /// clamping draw (or explicitly via markDepleted for exact mid-slice
  /// depletion instants). nullopt while the battery still holds charge.
  [[nodiscard]] const std::optional<Time>& depletedAt() const {
    return depletedAt_;
  }
  /// Latches the depletion instant without drawing (the mission simulator
  /// computes the exact mid-slice death tick before the final draw).
  void markDepleted(Time at) {
    if (!depletedAt_.has_value()) depletedAt_ = at;
  }

  /// Records `energy` drawn from the battery. Returns false (and clamps to
  /// capacity) when the draw exceeds the remaining charge.
  bool draw(Energy energy);

  /// As draw(Energy), latching `at` as the depletion tick on a clamp.
  bool draw(Energy energy, Time at);

  /// Draws at nominal `rate` over `span` with the rate-capacity effect
  /// applied: effectiveRate(rate) * span leaves the battery and the
  /// recoverable fraction of the excess is banked. Identical to
  /// draw(rate * span, at) under the linear model.
  bool drawAt(Watts rate, Duration span, Time at);

  /// Idle-gap recovery: refunds banked charge at the model's recovery
  /// rate over `span` (a no-op under the linear model).
  void recover(Duration span);

  /// Carries the non-charge accounting (recoverable pool, rate-capacity
  /// totals, depletion latch) over from a predecessor battery — used when
  /// a fault derates the pack mid-mission into a fresh Battery object.
  void inheritAccounting(const Battery& from) {
    recoverable_ = from.recoverable_;
    rateExcess_ = from.rateExcess_;
    recovered_ = from.recovered_;
    depletedAt_ = from.depletedAt_;
  }

  /// Resets the accounting (fresh battery).
  void reset() {
    drawn_ = Energy::zero();
    recoverable_ = Energy::zero();
    rateExcess_ = Energy::zero();
    recovered_ = Energy::zero();
    depletedAt_.reset();
  }

 private:
  Watts maxOutput_;
  Energy capacity_;
  Energy drawn_;
  BatteryTraits model_;
  Energy recoverable_;
  Energy rateExcess_;
  Energy recovered_;
  std::optional<Time> depletedAt_;
};

/// A platform power supply: one free source plus one costly source.
/// Derives the scheduling constraints of Section 3 at any mission time.
class PowerSupply {
 public:
  PowerSupply(SolarSource solar, Battery battery)
      : solar_(std::move(solar)), battery_(std::move(battery)) {}

  /// Hard budget at mission time t: solar level + max battery output.
  [[nodiscard]] Watts maxPowerAt(Time t) const {
    return solar_.levelAt(t) + battery_.maxOutput();
  }
  /// Soft floor at mission time t: the free (solar) level.
  [[nodiscard]] Watts minPowerAt(Time t) const { return solar_.levelAt(t); }

  [[nodiscard]] const SolarSource& solar() const { return solar_; }
  [[nodiscard]] Battery& battery() { return battery_; }
  [[nodiscard]] const Battery& battery() const { return battery_; }

 private:
  SolarSource solar_;
  Battery battery_;
};

}  // namespace paws
