#include "model/explain.hpp"

#include <sstream>

namespace paws {

namespace {

const std::string& nameOf(const Problem& p, TaskId v) {
  static const std::string kAnchor = "<start>";
  if (v == kAnchorTask) return kAnchor;
  return p.task(v).name;
}

}  // namespace

std::string describeEdge(const Problem& p, const ConstraintEdge& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EdgeKind::kUserMin:
      os << "'" << nameOf(p, e.to) << "' must start at least "
         << e.weight.ticks() << " after '" << nameOf(p, e.from) << "'";
      break;
    case EdgeKind::kUserMax:
      // maxSeparation(from=e.to, to=e.from, s=-w) was encoded as this
      // back edge.
      os << "'" << nameOf(p, e.from) << "' must start at most "
         << (-e.weight).ticks() << " after '" << nameOf(p, e.to) << "'";
      break;
    case EdgeKind::kRelease:
      os << "'" << nameOf(p, e.to) << "' cannot start before "
         << e.weight.ticks();
      break;
    case EdgeKind::kSerialization: {
      const Task& from = p.task(e.from);
      os << "'" << nameOf(p, e.from) << "' runs before '" << nameOf(p, e.to)
         << "' on resource '" << p.resource(from.resource).name
         << "' (busy for " << e.weight.ticks() << ")";
      break;
    }
    case EdgeKind::kDelay:
      os << "'" << nameOf(p, e.to) << "' was delayed to start at/after "
         << e.weight.ticks();
      break;
    case EdgeKind::kLock:
      os << "'" << nameOf(p, e.from) << "' was locked at "
         << (-e.weight).ticks();
      break;
  }
  return os.str();
}

std::string explainCycle(const Problem& problem, const ConstraintGraph& graph,
                         const LongestPathResult& result) {
  if (result.feasible || result.cycleEdges.empty()) return {};
  std::ostringstream os;
  Duration total = Duration::zero();
  os << "constraints contradict each other:\n";
  for (const EdgeId eid : result.cycleEdges) {
    const ConstraintEdge& e = graph.edge(eid);
    total += e.weight;
    os << "  - " << describeEdge(problem, e) << "\n";
  }
  os << "  => over-constrained by " << total.ticks() << " tick"
     << (total == Duration(1) ? "" : "s");
  return os.str();
}

}  // namespace paws
