#include "model/mode_policy.hpp"

namespace paws {

ModePolicy ModePolicy::missionDefault() {
  ModePolicy policy;
  policy.name = "mission";
  // Ceilings match rover::applyMissionCriticality: wheel heaters rank 3,
  // steering heaters rank 2, everything else mission-critical (0).
  policy.modes = {
      SystemMode{"nominal", 255, 100, 100},
      SystemMode{"degraded", 2, 100, 75},
      SystemMode{"survival", 0, 90, 0},
  };
  policy.escalateOnBrownout = true;
  policy.overrunSlackPct = 25;
  policy.depletionRiskPermille = 250;
  return policy;
}

}  // namespace paws
