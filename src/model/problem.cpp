#include "model/problem.hpp"

#include <sstream>

#include "base/check.hpp"

namespace paws {

Problem::Problem(std::string name) : name_(std::move(name)) {
  // Task slot 0: the virtual anchor. Zero delay and power so it never
  // contributes to the profile; no resource so it never serializes.
  tasks_.push_back(
      Task{"<anchor>", Duration::zero(), Watts::zero(), ResourceId::invalid()});
  delays_.push_back(Duration::zero());
  powers_.push_back(Watts::zero());
  taskResources_.push_back(ResourceId::invalid());
}

ResourceId Problem::addResource(std::string name) {
  PAWS_CHECK_MSG(!name.empty(), "resource name must be non-empty");
  PAWS_CHECK_MSG(resourceByName_.find(name) == resourceByName_.end(),
                 "duplicate resource name '" << name << "'");
  const ResourceId id(static_cast<std::uint32_t>(resources_.size()));
  resourceByName_.emplace(name, id);
  resources_.push_back(Resource{std::move(name)});
  return id;
}

TaskId Problem::addTask(std::string name, Duration delay, Watts power,
                        ResourceId resource) {
  PAWS_CHECK_MSG(!name.empty(), "task name must be non-empty");
  PAWS_CHECK_MSG(taskByName_.find(name) == taskByName_.end(),
                 "duplicate task name '" << name << "'");
  PAWS_CHECK_MSG(delay > Duration::zero(),
                 "task '" << name << "' needs positive delay, got "
                          << delay.ticks());
  PAWS_CHECK_MSG(power >= Watts::zero(),
                 "task '" << name << "' needs non-negative power");
  PAWS_CHECK_MSG(resource.isValid() && resource.index() < resources_.size(),
                 "task '" << name << "' maps to unknown resource");
  const TaskId id(static_cast<std::uint32_t>(tasks_.size()));
  taskByName_.emplace(name, id);
  tasks_.push_back(Task{std::move(name), delay, power, resource});
  delays_.push_back(delay);
  powers_.push_back(power);
  taskResources_.push_back(resource);
  return id;
}

void Problem::checkTask(TaskId id) const {
  PAWS_CHECK_MSG(id.isValid() && id.index() < tasks_.size(),
                 "unknown task id " << id);
}

void Problem::minSeparation(TaskId from, TaskId to, Duration separation) {
  checkTask(from);
  checkTask(to);
  PAWS_CHECK_MSG(from != to, "constraint endpoints must differ");
  constraints_.push_back(TimingConstraint{TimingConstraint::Kind::kMinSeparation,
                                          from, to, separation});
}

void Problem::maxSeparation(TaskId from, TaskId to, Duration separation) {
  checkTask(from);
  checkTask(to);
  PAWS_CHECK_MSG(from != to, "constraint endpoints must differ");
  constraints_.push_back(TimingConstraint{TimingConstraint::Kind::kMaxSeparation,
                                          from, to, separation});
}

void Problem::precedes(TaskId from, TaskId to, Duration lag) {
  minSeparation(from, to, task(from).delay + lag);
}

void Problem::release(TaskId v, Time t) {
  minSeparation(kAnchorTask, v, t - Time::zero());
}

void Problem::deadline(TaskId v, Time t) {
  maxSeparation(kAnchorTask, v, (t - Time::zero()) - task(v).delay);
}

void Problem::pin(TaskId v, Time t) {
  release(v, t);
  maxSeparation(kAnchorTask, v, t - Time::zero());
}

void Problem::setCriticality(TaskId v, std::uint8_t criticality) {
  checkTask(v);
  PAWS_CHECK_MSG(v != kAnchorTask, "the anchor task cannot be droppable");
  tasks_[v.index()].criticality = criticality;
}

void Problem::setTaskPower(TaskId v, Watts power) {
  checkTask(v);
  PAWS_CHECK_MSG(v != kAnchorTask, "the anchor task draws no power");
  PAWS_CHECK_MSG(power >= Watts::zero(),
                 "task '" << tasks_[v.index()].name
                          << "' needs non-negative power");
  tasks_[v.index()].power = power;
  powers_[v.index()] = power;
}

const Task& Problem::task(TaskId id) const {
  checkTask(id);
  return tasks_[id.index()];
}

const Resource& Problem::resource(ResourceId id) const {
  PAWS_CHECK_MSG(id.isValid() && id.index() < resources_.size(),
                 "unknown resource id " << id);
  return resources_[id.index()];
}

std::vector<TaskId> Problem::taskIds() const {
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size() - 1);
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    ids.push_back(TaskId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

std::vector<ResourceId> Problem::resourceIds() const {
  std::vector<ResourceId> ids;
  ids.reserve(resources_.size());
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    ids.push_back(ResourceId(static_cast<std::uint32_t>(i)));
  }
  return ids;
}

std::optional<TaskId> Problem::findTask(std::string_view name) const {
  // Transparent hashing: no std::string temporary per lookup.
  auto it = taskByName_.find(name);
  if (it == taskByName_.end()) return std::nullopt;
  return it->second;
}

std::optional<ResourceId> Problem::findResource(std::string_view name) const {
  auto it = resourceByName_.find(name);
  if (it == resourceByName_.end()) return std::nullopt;
  return it->second;
}

Energy Problem::totalTaskEnergy() const {
  Energy total;
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    total += tasks_[i].energy();
  }
  return total;
}

std::vector<std::string> Problem::validate() const {
  std::vector<std::string> issues;
  auto report = [&issues](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    issues.push_back(os.str());
  };

  if (pmin_ > pmax_) {
    report("min power ", pmin_, " exceeds max power budget ", pmax_);
  }
  if (background_ > pmax_) {
    report("background power ", background_, " alone exceeds the budget ",
           pmax_);
  }
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    if (t.power + background_ > pmax_) {
      report("task '", t.name, "' draws ", t.power, " + background ",
             background_, " > budget ", pmax_,
             " — no schedule can be power-valid");
    }
  }
  if (battery_.has_value()) {
    for (std::size_t i = 0; i < battery_->bands.size(); ++i) {
      const RateBand& band = battery_->bands[i];
      if (band.factorPermille < 1000) {
        report("battery rate band above ", band.threshold,
               " has factor ", band.factorPermille,
               " permille — the rate-capacity effect cannot make draws "
               "cheaper");
      }
      if (i > 0 && band.threshold <= battery_->bands[i - 1].threshold) {
        report("battery rate band thresholds must strictly increase (",
               battery_->bands[i - 1].threshold, " then ", band.threshold,
               ")");
      }
    }
    if (battery_->recoverablePermille < 0 ||
        battery_->recoverablePermille > 1000) {
      report("battery recoverable fraction ", battery_->recoverablePermille,
             " permille is outside [0, 1000]");
    }
  }
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    const SystemMode& m = modes_[i];
    if (m.pmaxPct > 100 || m.pminPct > 100) {
      report("mode '", m.name, "' scales a power budget above 100% (pmax ",
             m.pmaxPct, "%, pmin ", m.pminPct, "%)");
    }
    if (i > 0 && m.ceiling > modes_[i - 1].ceiling) {
      report("mode '", m.name, "' raises the criticality ceiling over '",
             modes_[i - 1].name, "' — escalation must shed, not restore");
    }
  }
  // Contradictory min/max pairs on the same ordered task pair.
  for (const TimingConstraint& a : constraints_) {
    if (a.kind != TimingConstraint::Kind::kMinSeparation) continue;
    for (const TimingConstraint& b : constraints_) {
      if (b.kind != TimingConstraint::Kind::kMaxSeparation) continue;
      if (a.from == b.from && a.to == b.to && b.separation < a.separation) {
        report("constraints on ", tasks_[a.from.index()].name, " -> ",
               tasks_[a.to.index()].name, " contradict: min ",
               a.separation.ticks(), " > max ", b.separation.ticks());
      }
    }
  }
  return issues;
}

ConstraintGraph Problem::buildGraph() const {
  ConstraintGraph g(tasks_.size());
  g.reserveEdges(tasks_.size() - 1 + constraints_.size());
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    g.addEdge(kAnchorTask, TaskId(static_cast<std::uint32_t>(i)),
              Duration::zero(), EdgeKind::kRelease);
  }
  for (const TimingConstraint& c : constraints_) {
    switch (c.kind) {
      case TimingConstraint::Kind::kMinSeparation:
        g.addEdge(c.from, c.to, c.separation, EdgeKind::kUserMin);
        break;
      case TimingConstraint::Kind::kMaxSeparation:
        // sigma(to) <= sigma(from) + s   <=>   sigma(from) - sigma(to) >= -s
        g.addEdge(c.to, c.from, -c.separation, EdgeKind::kUserMax);
        break;
    }
  }
  return g;
}

}  // namespace paws
