// Rate-capacity battery characteristics (declared per problem, consumed by
// the power layer's Battery and the battery-aware refinement pass).
//
// Khan & Vemuri ("An Iterative Algorithm for Battery-Aware Task
// Scheduling") model the two dominant non-idealities of real cells:
//
//   * rate-capacity effect — the effective charge drawn grows
//     superlinearly with the instantaneous draw once it exceeds the rated
//     current. We keep this exact with a small piecewise-constant lookup:
//     a draw strictly above band i's threshold costs factorPermille[i]/1000
//     of its nominal rate (integer milliwatts, floored), so every mission
//     integral stays fixed-point and byte-reproducible;
//   * charge recovery — part of the superlinear excess is not lost for
//     good: during idle gaps a bounded recoverable fraction flows back at
//     a limited rate.
//
// An empty band list is the linear model: effectiveRate(r) == r, nothing
// recoverable — bit-identical to the pre-rate-capacity battery.
#pragma once

#include <cstdint>
#include <vector>

#include "base/units.hpp"

namespace paws {

/// One lookup band: draws strictly above `threshold` cost
/// `factorPermille`/1000 of their nominal rate (>= 1000; the effect only
/// ever makes draws more expensive).
struct RateBand {
  Watts threshold;
  std::int64_t factorPermille = 1000;

  [[nodiscard]] bool operator==(const RateBand&) const = default;
};

struct BatteryTraits {
  /// Sorted by strictly increasing threshold; the band with the largest
  /// threshold strictly below the draw rules. Empty = linear battery.
  std::vector<RateBand> bands;
  /// Fraction (permille) of the rate-capacity excess banked as
  /// recoverable charge instead of being lost outright.
  std::int64_t recoverablePermille = 0;
  /// Cap on how fast banked charge flows back during idle gaps.
  Watts recoveryRate = Watts::zero();

  [[nodiscard]] bool linear() const { return bands.empty(); }

  /// Lookup factor for an instantaneous draw (1000 below every band).
  [[nodiscard]] std::int64_t factorFor(Watts rate) const {
    std::int64_t factor = 1000;
    for (const RateBand& band : bands) {
      if (rate > band.threshold) factor = band.factorPermille;
    }
    return factor;
  }

  /// Effective charge-drain rate for a nominal draw: rate scaled by the
  /// band factor, floored to exact milliwatts.
  [[nodiscard]] Watts effectiveRate(Watts rate) const {
    if (bands.empty() || rate <= Watts::zero()) return rate;
    const std::int64_t factor = factorFor(rate);
    if (factor == 1000) return rate;
    return Watts::fromMilliwatts(rate.milliwatts() * factor / 1000);
  }

  [[nodiscard]] bool operator==(const BatteryTraits&) const = default;
};

}  // namespace paws
