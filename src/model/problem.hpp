// The scheduling problem: tasks, resources, timing and power constraints.
//
// This is the user-facing input model (Section 4 of the paper). A `Problem`
// owns:
//   * a set of execution resources — not just processors: heaters, motors
//     and other power consumers are resources too (Section 4.1);
//   * a set of non-preemptive tasks, each with execution delay d(v), exact
//     power draw p(v) and a resource mapping r(v);
//   * min/max timing separations between task start times (these subsume
//     precedence, deadlines and release times);
//   * a max power budget Pmax (hard) and a min power floor Pmin (soft);
//   * an optional constant background draw (the rover's always-on CPU).
//
// Index 0 of the task table is the virtual *anchor* task that starts at
// time 0; every other task implicitly gets a release edge anchor -> v with
// weight 0 so schedules never start before the anchor.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "base/units.hpp"
#include "graph/constraint_graph.hpp"
#include "model/battery_traits.hpp"
#include "model/mode_policy.hpp"

namespace paws {

/// Heterogeneous (transparent) string hashing for name maps: lets
/// `find(string_view)` probe an `unordered_map<std::string, …>` without
/// materializing a temporary std::string per query.
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Name → id map with allocation-free string_view lookup.
template <typename Id>
using NameIndex =
    std::unordered_map<std::string, Id, TransparentStringHash, std::equal_to<>>;

/// A non-preemptive task (vertex of the constraint graph).
struct Task {
  std::string name;
  Duration delay;      ///< execution delay d(v), in ticks
  Watts power;         ///< exact power draw p(v) while executing
  ResourceId resource; ///< r(v); invalid only for the anchor
  /// Graceful-degradation rank: 0 = mission-critical (never shed); values
  /// > 0 mark the task droppable, higher values shed first. Consumed by
  /// the runtime contingency policy (fault/contingency.hpp).
  std::uint8_t criticality = 0;

  /// Total energy spent by one execution: d(v) x p(v).
  [[nodiscard]] Energy energy() const { return power * delay; }

  [[nodiscard]] bool droppable() const { return criticality > 0; }
};

/// An execution resource; tasks mapped to the same resource must be
/// serialized by the scheduler.
struct Resource {
  std::string name;
};

/// One user timing constraint, kept in declaration order so that files can
/// round-trip and validators can report in source terms.
struct TimingConstraint {
  enum class Kind : std::uint8_t {
    kMinSeparation,  ///< sigma(to) >= sigma(from) + separation
    kMaxSeparation,  ///< sigma(to) <= sigma(from) + separation
  };
  Kind kind;
  TaskId from;
  TaskId to;
  Duration separation;
};

class Problem {
 public:
  /// Creates an empty problem; the anchor task is pre-installed as task 0.
  explicit Problem(std::string name = "problem");

  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  // ----- construction -------------------------------------------------

  ResourceId addResource(std::string name);

  /// Adds a task; `delay` must be positive, `power` non-negative, and
  /// `resource` must exist.
  TaskId addTask(std::string name, Duration delay, Watts power,
                 ResourceId resource);

  /// sigma(to) >= sigma(from) + separation ("to at least `separation` after
  /// from", start-to-start — the paper's min timing constraint).
  void minSeparation(TaskId from, TaskId to, Duration separation);

  /// sigma(to) <= sigma(from) + separation ("to at most `separation` after
  /// from" — the paper's max timing constraint).
  void maxSeparation(TaskId from, TaskId to, Duration separation);

  /// Completion-to-start precedence with optional lag:
  /// sigma(to) >= sigma(from) + d(from) + lag.
  void precedes(TaskId from, TaskId to, Duration lag = Duration::zero());

  /// sigma(v) >= t.
  void release(TaskId v, Time t);

  /// sigma(v) + d(v) <= t.
  void deadline(TaskId v, Time t);

  /// Pins sigma(v) = t (a user-level lock: the interactive "drag & lock"
  /// operation of the power-aware Gantt chart, Section 4.3).
  void pin(TaskId v, Time t);

  /// Marks task `v` droppable with shed rank `criticality` (0 restores
  /// mission-critical). See Task::criticality.
  void setCriticality(TaskId v, std::uint8_t criticality);

  /// Overrides the power draw of task `v` — used by fault-aware repair to
  /// model shed tasks (power 0) without disturbing ids or constraints.
  void setTaskPower(TaskId v, Watts power);

  /// Hard system-wide power budget Pmax (Section 4.2).
  void setMaxPower(Watts pmax) { pmax_ = pmax; }
  /// Soft min power floor Pmin (free-power level; Section 4.2).
  void setMinPower(Watts pmin) { pmin_ = pmin; }
  /// Constant always-on draw added to the profile over [0, finish) —
  /// models the rover's CPU which is "constant" in Table 2.
  void setBackgroundPower(Watts w) { background_ = w; }

  /// Declares the platform battery's rate-capacity characteristics
  /// (`battery { ... }` in .paws). Purely declarative for the schedulers;
  /// the runtime stack and the battery-aware refinement consume it.
  void setBattery(BatteryTraits traits) { battery_ = std::move(traits); }

  /// Appends one rung to the problem's system-mode ladder (`mode name
  /// { ... }` in .paws), in declaration order.
  void addMode(SystemMode mode) { modes_.push_back(std::move(mode)); }

  // ----- queries -------------------------------------------------------

  /// Number of task slots *including* the anchor (= graph vertex count).
  [[nodiscard]] std::size_t numVertices() const { return tasks_.size(); }
  /// Number of real tasks (excluding the anchor).
  [[nodiscard]] std::size_t numTasks() const { return tasks_.size() - 1; }
  [[nodiscard]] std::size_t numResources() const { return resources_.size(); }

  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const Resource& resource(ResourceId id) const;

  // Dense structure-of-arrays views over the hot per-task fields, indexed
  // by TaskId::index() (slot 0 is the anchor: zero delay/power, invalid
  // resource). Search inner loops read these instead of striding through
  // the Task records so delay/power/resource probes stay cache-linear.
  [[nodiscard]] std::span<const Duration> taskDelays() const {
    return delays_;
  }
  [[nodiscard]] std::span<const Watts> taskPowers() const { return powers_; }
  [[nodiscard]] std::span<const ResourceId> taskResources() const {
    return taskResources_;
  }

  /// Ids of all real tasks (anchor excluded), in creation order.
  [[nodiscard]] std::vector<TaskId> taskIds() const;
  /// All resource ids in creation order.
  [[nodiscard]] std::vector<ResourceId> resourceIds() const;

  [[nodiscard]] std::optional<TaskId> findTask(std::string_view name) const;
  [[nodiscard]] std::optional<ResourceId> findResource(
      std::string_view name) const;

  [[nodiscard]] const std::vector<TimingConstraint>& constraints() const {
    return constraints_;
  }

  [[nodiscard]] Watts maxPower() const { return pmax_; }
  [[nodiscard]] Watts minPower() const { return pmin_; }
  [[nodiscard]] Watts backgroundPower() const { return background_; }

  /// Declared battery characteristics, if any (nullopt = linear battery).
  [[nodiscard]] const std::optional<BatteryTraits>& battery() const {
    return battery_;
  }
  /// Declared system-mode ladder in declaration order (empty = no modes).
  [[nodiscard]] const std::vector<SystemMode>& modes() const {
    return modes_;
  }

  /// Sum of all task energies plus nothing for background (background
  /// depends on the schedule makespan).
  [[nodiscard]] Energy totalTaskEnergy() const;

  /// Structural diagnostics (empty when the problem is well-formed):
  /// tasks with non-positive delay, constraints touching the anchor twice,
  /// duplicate names, min>max separation pairs, etc.
  [[nodiscard]] std::vector<std::string> validate() const;

  // ----- graph construction -------------------------------------------

  /// Builds the constraint graph over numVertices() vertices: release
  /// edges anchor->v (weight 0) for every task, then one edge per user
  /// constraint under the encoding of graph/constraint_graph.hpp.
  [[nodiscard]] ConstraintGraph buildGraph() const;

 private:
  void checkTask(TaskId id) const;

  std::string name_;
  std::vector<Task> tasks_;
  // SoA mirrors of tasks_ (same indexing), kept in sync by addTask /
  // setTaskPower; see taskDelays()/taskPowers()/taskResources().
  std::vector<Duration> delays_;
  std::vector<Watts> powers_;
  std::vector<ResourceId> taskResources_;
  std::vector<Resource> resources_;
  std::vector<TimingConstraint> constraints_;
  NameIndex<TaskId> taskByName_;
  NameIndex<ResourceId> resourceByName_;
  Watts pmax_ = Watts::max();
  Watts pmin_ = Watts::zero();
  Watts background_ = Watts::zero();
  std::optional<BatteryTraits> battery_;
  std::vector<SystemMode> modes_;
};

}  // namespace paws
