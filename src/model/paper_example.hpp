// The paper's running example (Fig. 1): nine tasks a..i on three resources
// A, B, C, with min/max separations, used throughout Section 4-5 and in
// Figs. 2, 5 and 7.
//
// The DAC paper shows the exact vertex attributes only in a figure image;
// this reconstruction preserves every property the text states:
//   * 9 tasks named a..i mapped onto resources A, B and C;
//   * the initial time-valid schedule (Fig. 2) exhibits one power spike
//     above Pmax and several power gaps below Pmin;
//   * max-power scheduling removes the spike by delaying tasks (the paper
//     delays h and f);
//   * the final min-power schedule is valid for all Pmax >= 16 and
//     Pmin <= 14 (the paper's robustness claim in Section 5.3).
#pragma once

#include "model/problem.hpp"

namespace paws {

/// Power constraints used with the running example.
struct PaperExampleLimits {
  Watts pmax = Watts::fromWatts(16.0);
  Watts pmin = Watts::fromWatts(14.0);
};

/// Builds the 9-task example problem with Pmax = 16 W, Pmin = 14 W.
Problem makePaperExampleProblem();

}  // namespace paws
