// System criticality modes (mixed-criticality graceful degradation).
//
// A ModePolicy is an ordered ladder of system modes — e.g. nominal ->
// degraded -> survival — each defining a criticality ceiling and amended
// power budgets. The runtime executor escalates one rung per iteration
// when a trigger fires (brownouts, iteration overrun, depletion risk),
// sheds every task whose criticality exceeds the new ceiling *wholesale*,
// and repairs the surviving schedule under the amended Pmax/Pmin. This is
// the system-level counterpart of per-task shedding: instead of dropping
// one victim per infeasible repair, a mode change drops a whole service
// class at once and re-budgets the mission around what is left.
//
// De-escalation on sustained slack is optional and off by default: a
// mission that recovers its margin can climb back up the ladder, restoring
// mode-shed tasks (fault-shed tasks stay shed — their faults are real).
//
// An empty policy (no modes) disables the machinery entirely; the executor
// then behaves bit-identically to the mode-unaware code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace paws {

/// One rung of the mode ladder.
struct SystemMode {
  std::string name;
  /// Tasks with criticality strictly above the ceiling are shed wholesale
  /// on entry (255 = keep everything, 0 = only mission-critical tasks).
  std::uint8_t ceiling = 255;
  /// Amended hard budget: Pmax' = (solar + battery max output) * pmaxPct%.
  std::uint32_t pmaxPct = 100;
  /// Amended soft floor: Pmin' = solar * pminPct%.
  std::uint32_t pminPct = 100;

  [[nodiscard]] bool operator==(const SystemMode&) const = default;
};

struct ModePolicy {
  /// Policy label for reports and campaign JSON ("off" when disabled).
  std::string name = "off";
  /// Ordered rungs, index 0 = the starting (nominal) mode. Empty = the
  /// mode machinery is off.
  std::vector<SystemMode> modes;

  // ----- escalation triggers (evaluated at iteration boundaries) --------
  /// Escalate when any brownout struck during the previous iteration.
  bool escalateOnBrownout = true;
  /// Escalate when the previous iteration overran its nominal span by more
  /// than this percentage (0 = trigger disabled).
  std::uint32_t overrunSlackPct = 0;
  /// Escalate when battery remaining falls below this permille of
  /// capacity (0 = trigger disabled).
  std::int64_t depletionRiskPermille = 0;

  // ----- optional de-escalation (off by default) ------------------------
  /// After this many consecutive trigger-free iterations, climb one rung
  /// back up and restore that rung's mode-shed tasks (0 = never).
  std::uint32_t deescalateAfterClean = 0;

  [[nodiscard]] bool enabled() const { return !modes.empty(); }

  /// The rover mission ladder: nominal (all tasks) -> degraded (wheel
  /// heaters shed) -> survival (all droppable tasks shed, Pmax trimmed).
  [[nodiscard]] static ModePolicy missionDefault();

  [[nodiscard]] bool operator==(const ModePolicy&) const = default;
};

}  // namespace paws
