// Human-readable infeasibility explanations.
//
// When the longest-path engine finds a positive cycle, the raw witness is a
// list of graph edges — useless to someone editing a .paws file. This
// module translates the cycle back into the user's vocabulary, one line per
// edge ("'steer' must start at least 10 after 'hazard'", "'heat' was
// delayed to start at/after 12", ...) plus the over-constraint amount: the
// cycle's weight is exactly how many ticks the constraints contradict by.
#pragma once

#include <string>

#include "graph/constraint_graph.hpp"
#include "graph/longest_path.hpp"
#include "model/problem.hpp"

namespace paws {

/// One line describing `edge` in user terms.
std::string describeEdge(const Problem& problem, const ConstraintEdge& edge);

/// Multi-line explanation of an infeasible result's witness cycle; empty
/// when `result` is feasible or carries no witness.
std::string explainCycle(const Problem& problem, const ConstraintGraph& graph,
                         const LongestPathResult& result);

}  // namespace paws
