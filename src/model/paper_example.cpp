#include "model/paper_example.hpp"

#include "base/time.hpp"
#include "base/units.hpp"

namespace paws {

using namespace paws::literals;

// Reconstructed so the pipeline reproduces the paper's narrative exactly:
//
//  * ASAP/time-valid schedule (Fig. 2):
//      A: a[0,5) b[5,10) c[10,15) i[20,25)
//      B: d[5,10) f[10,15) e[20,30)
//      C: g[5,10) h[10,20)
//    profile 6,16,21,4,11,6 -> one spike (21 > 16 on [10,15)) and several
//    gaps below Pmin = 14.
//  * Max-power scheduling (Fig. 5): at the spike, h holds the largest
//    slack (15, via the loose g->h max window) and is delayed by its
//    execution time to 20; f (slack 5) follows, delayed to 15 — exactly
//    the paper's "tasks h and f are delayed to remove the power spike".
//  * Min-power scheduling (Fig. 7): g (slack 10 once h moved) is delayed
//    into the gap at t = 10, lifting utilization from 305/420 to 310/420
//    and cutting the energy cost from 15 J to 10 J at unchanged finish
//    time — "the same performance with a reduced energy cost".
Problem makePaperExampleProblem() {
  Problem p("paper_example");

  const ResourceId A = p.addResource("A");
  const ResourceId B = p.addResource("B");
  const ResourceId C = p.addResource("C");

  // r(v)/d(v)/p(v) per task, Fig. 1 style.
  const TaskId a = p.addTask("a", 5_s, 6_W, A);
  const TaskId b = p.addTask("b", 5_s, 1_W, A);
  const TaskId c = p.addTask("c", 5_s, 8_W, A);
  const TaskId d = p.addTask("d", 5_s, 8_W, B);
  const TaskId e = p.addTask("e", 10_s, 6_W, B);
  const TaskId f = p.addTask("f", 5_s, 9_W, B);
  const TaskId g = p.addTask("g", 5_s, 7_W, C);
  const TaskId h = p.addTask("h", 10_s, 4_W, C);
  const TaskId i = p.addTask("i", 5_s, 5_W, A);

  // Cross- and intra-resource dependencies (start-to-start min separations;
  // each equals the producer's execution delay, i.e. completion-to-start).
  p.minSeparation(a, d, 5_s);
  p.minSeparation(a, g, 5_s);
  p.minSeparation(b, c, 5_s);
  p.minSeparation(c, i, 10_s);
  p.minSeparation(d, f, 5_s);
  p.minSeparation(d, e, 15_s);
  p.minSeparation(g, h, 5_s);

  // Max separations (freshness windows) — encoded as back edges.
  p.maxSeparation(a, d, 15_s);
  p.maxSeparation(d, e, 25_s);
  p.maxSeparation(g, h, 20_s);

  p.setMaxPower(Watts::fromWatts(16.0));
  p.setMinPower(Watts::fromWatts(14.0));
  return p;
}

}  // namespace paws
