// Constraint graph G(V, E) — the scheduler's working representation.
//
// Vertices are tasks (index 0 is the anchor); a directed edge (u → v) with
// weight w encodes the linear constraint
//
//     sigma(v) - sigma(u) >= w          (w may be negative)
//
// which subsumes every constraint type in the paper (Section 4.1):
//   * "v at least w after u"  -> edge u -> v, weight  w   (min separation)
//   * "v at most  w after u"  -> edge v -> u, weight -w   (max separation)
//   * serialization of same-resource tasks -> edge u -> v, weight d(u)
//   * delaying a task to time s            -> edge anchor -> v, weight s
//   * locking a task at time s             -> the delay edge plus
//                                             edge v -> anchor, weight -s
//
// The three schedulers explore by *adding* edges and backtracking, so the
// graph maintains a trail: `checkpoint()` marks the current edge count and
// `rollbackTo()` removes every edge added since, in LIFO order. Edges are
// append-only between checkpoints, which keeps adjacency maintenance O(1)
// per undone edge.
//
// Adjacency storage is a trail-aware chunked arena rather than one
// std::vector per vertex: each vertex owns a linked list of fixed-size
// chunks of inlined AdjEntry records (edge id + far endpoint + weight)
// drawn from a single append-only pool per direction. Traversal touches a
// handful of contiguous cache lines instead of chasing a per-vertex heap
// allocation and then the edge pool; rollback stays O(1) per undone edge
// because chunks are allocated in trail order, so the LIFO edge trail frees
// chunks strictly from the back of the pool.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "base/check.hpp"
#include "base/ids.hpp"
#include "base/time.hpp"

namespace paws {

/// Why an edge exists; used for diagnostics, DOT export, and for validators
/// that must distinguish user constraints from scheduler decisions.
enum class EdgeKind : std::uint8_t {
  kUserMin,        ///< user min-separation constraint
  kUserMax,        ///< user max-separation constraint (negative back edge)
  kRelease,        ///< anchor -> v, weight 0: every task starts at/after 0
  kSerialization,  ///< scheduler-added resource serialization
  kDelay,          ///< scheduler-added lower bound (task delayed)
  kLock,           ///< scheduler-added upper bound (start time pinned)
};

const char* toString(EdgeKind kind);
std::ostream& operator<<(std::ostream& os, EdgeKind kind);

/// Index of an edge within its ConstraintGraph.
using EdgeId = std::uint32_t;

/// One directed, weighted constraint edge.
struct ConstraintEdge {
  TaskId from;
  TaskId to;
  Duration weight;
  EdgeKind kind;
};

/// One adjacency record: the edge id plus the two fields every traversal
/// loop actually reads, inlined so relaxation and sweep loops never chase
/// the edge pool. `other` is the far endpoint: `to` for out-lists, `from`
/// for in-lists.
struct AdjEntry {
  EdgeId id;
  TaskId other;
  Duration weight;
};

class ConstraintGraph {
 public:
  /// Opaque trail position returned by checkpoint().
  using Checkpoint = std::size_t;

  /// Sentinel chunk index for "no chunk".
  static constexpr std::uint32_t kNoChunk = 0xffffffffu;

  /// One fixed-size block of a vertex's adjacency list. Chunks live in a
  /// per-direction pool and are threaded per vertex via prev/next indices.
  struct AdjChunk {
    static constexpr std::uint32_t kCapacity = 4;
    AdjEntry entries[kCapacity];
    std::uint32_t count = 0;
    std::uint32_t prev = kNoChunk;
    std::uint32_t next = kNoChunk;
  };

  /// Per-vertex adjacency index into a chunk pool.
  struct VertexAdj {
    std::uint32_t head = kNoChunk;
    std::uint32_t tail = kNoChunk;
    std::uint32_t degree = 0;
  };

  /// Forward iterator over one vertex's AdjEntry records.
  class AdjIterator {
   public:
    AdjIterator(const AdjChunk* pool, std::uint32_t chunk, std::uint32_t slot)
        : pool_(pool), chunk_(chunk), slot_(slot) {}

    const AdjEntry& operator*() const { return pool_[chunk_].entries[slot_]; }
    const AdjEntry* operator->() const { return &**this; }

    AdjIterator& operator++() {
      if (++slot_ == pool_[chunk_].count) {
        chunk_ = pool_[chunk_].next;
        slot_ = 0;
      }
      return *this;
    }

    bool operator==(const AdjIterator& o) const {
      return chunk_ == o.chunk_ && slot_ == o.slot_;
    }
    bool operator!=(const AdjIterator& o) const { return !(*this == o); }

   private:
    const AdjChunk* pool_;
    std::uint32_t chunk_;
    std::uint32_t slot_;
  };

  /// Iterable view of one vertex's adjacency (what outEdges/inEdges return).
  class AdjRange {
   public:
    AdjRange(const AdjChunk* pool, const VertexAdj& v)
        : pool_(pool), head_(v.head), degree_(v.degree) {}

    [[nodiscard]] AdjIterator begin() const {
      return AdjIterator(pool_, head_, 0);
    }
    [[nodiscard]] AdjIterator end() const {
      return AdjIterator(pool_, kNoChunk, 0);
    }
    [[nodiscard]] std::size_t size() const { return degree_; }
    [[nodiscard]] bool empty() const { return degree_ == 0; }

   private:
    const AdjChunk* pool_;
    std::uint32_t head_;
    std::uint32_t degree_;
  };

  /// Creates a graph over `numVertices` tasks (vertex 0 is the anchor).
  explicit ConstraintGraph(std::size_t numVertices);

  [[nodiscard]] std::size_t numVertices() const { return out_.size(); }
  [[nodiscard]] std::size_t numEdges() const { return edges_.size(); }

  /// Appends vertex slots (used by problems that grow after graph creation).
  void addVertices(std::size_t count);

  /// Adds the constraint sigma(to) - sigma(from) >= weight.
  EdgeId addEdge(TaskId from, TaskId to, Duration weight, EdgeKind kind);

  [[nodiscard]] const ConstraintEdge& edge(EdgeId id) const {
    PAWS_CHECK(id < edges_.size());
    return edges_[id];
  }

  /// Out-adjacency of `v`: entries for edges whose `from` is v, with
  /// `other` = the edge's `to`.
  [[nodiscard]] AdjRange outEdges(TaskId v) const {
    PAWS_CHECK(v.index() < out_.size());
    return AdjRange(outPool_.data(), out_[v.index()]);
  }
  /// In-adjacency of `v`: entries for edges whose `to` is v, with
  /// `other` = the edge's `from`.
  [[nodiscard]] AdjRange inEdges(TaskId v) const {
    PAWS_CHECK(v.index() < in_.size());
    return AdjRange(inPool_.data(), in_[v.index()]);
  }

  /// Marks the current trail position.
  [[nodiscard]] Checkpoint checkpoint() const { return edges_.size(); }

  /// Removes every edge added after `cp` (LIFO). `cp` must come from a
  /// previous checkpoint() on this graph.
  void rollbackTo(Checkpoint cp);

  /// All edges, in insertion order (iteration for longest-path relaxation).
  [[nodiscard]] std::span<const ConstraintEdge> edges() const {
    return edges_;
  }

  /// Pre-sizes the edge pool and both adjacency chunk pools for `numEdges`
  /// total edges (an amortization hint, not a cap).
  void reserveEdges(std::size_t numEdges);

  /// Bumped whenever edges are removed (rollback) or vertices added, i.e.
  /// whenever previously computed longest-path distances may be stale in the
  /// downward direction. Edge additions alone keep the generation: they can
  /// only increase distances, which incremental relaxation handles.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  void append(std::vector<VertexAdj>& adj, std::vector<AdjChunk>& pool,
              std::size_t vertex, const AdjEntry& entry);
  void pop(std::vector<VertexAdj>& adj, std::vector<AdjChunk>& pool,
           std::size_t vertex, EdgeId id);

  std::vector<ConstraintEdge> edges_;
  std::uint64_t generation_ = 0;
  std::vector<VertexAdj> out_;
  std::vector<VertexAdj> in_;
  std::vector<AdjChunk> outPool_;
  std::vector<AdjChunk> inPool_;
};

}  // namespace paws
