// Constraint graph G(V, E) — the scheduler's working representation.
//
// Vertices are tasks (index 0 is the anchor); a directed edge (u → v) with
// weight w encodes the linear constraint
//
//     sigma(v) - sigma(u) >= w          (w may be negative)
//
// which subsumes every constraint type in the paper (Section 4.1):
//   * "v at least w after u"  -> edge u -> v, weight  w   (min separation)
//   * "v at most  w after u"  -> edge v -> u, weight -w   (max separation)
//   * serialization of same-resource tasks -> edge u -> v, weight d(u)
//   * delaying a task to time s            -> edge anchor -> v, weight s
//   * locking a task at time s             -> the delay edge plus
//                                             edge v -> anchor, weight -s
//
// The three schedulers explore by *adding* edges and backtracking, so the
// graph maintains a trail: `checkpoint()` marks the current edge count and
// `rollbackTo()` removes every edge added since, in LIFO order. Edges are
// append-only between checkpoints, which keeps adjacency maintenance O(1)
// per undone edge.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "base/check.hpp"
#include "base/ids.hpp"
#include "base/time.hpp"

namespace paws {

/// Why an edge exists; used for diagnostics, DOT export, and for validators
/// that must distinguish user constraints from scheduler decisions.
enum class EdgeKind : std::uint8_t {
  kUserMin,        ///< user min-separation constraint
  kUserMax,        ///< user max-separation constraint (negative back edge)
  kRelease,        ///< anchor -> v, weight 0: every task starts at/after 0
  kSerialization,  ///< scheduler-added resource serialization
  kDelay,          ///< scheduler-added lower bound (task delayed)
  kLock,           ///< scheduler-added upper bound (start time pinned)
};

const char* toString(EdgeKind kind);
std::ostream& operator<<(std::ostream& os, EdgeKind kind);

/// Index of an edge within its ConstraintGraph.
using EdgeId = std::uint32_t;

/// One directed, weighted constraint edge.
struct ConstraintEdge {
  TaskId from;
  TaskId to;
  Duration weight;
  EdgeKind kind;
};

class ConstraintGraph {
 public:
  /// Opaque trail position returned by checkpoint().
  using Checkpoint = std::size_t;

  /// Creates a graph over `numVertices` tasks (vertex 0 is the anchor).
  explicit ConstraintGraph(std::size_t numVertices);

  [[nodiscard]] std::size_t numVertices() const { return out_.size(); }
  [[nodiscard]] std::size_t numEdges() const { return edges_.size(); }

  /// Appends vertex slots (used by problems that grow after graph creation).
  void addVertices(std::size_t count);

  /// Adds the constraint sigma(to) - sigma(from) >= weight.
  EdgeId addEdge(TaskId from, TaskId to, Duration weight, EdgeKind kind);

  [[nodiscard]] const ConstraintEdge& edge(EdgeId id) const {
    PAWS_CHECK(id < edges_.size());
    return edges_[id];
  }

  /// Out-edge ids of `v` (edges whose `from` is v).
  [[nodiscard]] std::span<const EdgeId> outEdges(TaskId v) const {
    PAWS_CHECK(v.index() < out_.size());
    return out_[v.index()];
  }
  /// In-edge ids of `v` (edges whose `to` is v).
  [[nodiscard]] std::span<const EdgeId> inEdges(TaskId v) const {
    PAWS_CHECK(v.index() < in_.size());
    return in_[v.index()];
  }

  /// Marks the current trail position.
  [[nodiscard]] Checkpoint checkpoint() const { return edges_.size(); }

  /// Removes every edge added after `cp` (LIFO). `cp` must come from a
  /// previous checkpoint() on this graph.
  void rollbackTo(Checkpoint cp);

  /// All edges, in insertion order (iteration for longest-path relaxation).
  [[nodiscard]] std::span<const ConstraintEdge> edges() const {
    return edges_;
  }

  /// Bumped whenever edges are removed (rollback) or vertices added, i.e.
  /// whenever previously computed longest-path distances may be stale in the
  /// downward direction. Edge additions alone keep the generation: they can
  /// only increase distances, which incremental relaxation handles.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  std::vector<ConstraintEdge> edges_;
  std::uint64_t generation_ = 0;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace paws
