#include "graph/constraint_graph.hpp"

#include <ostream>

namespace paws {

const char* toString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kUserMin:
      return "min";
    case EdgeKind::kUserMax:
      return "max";
    case EdgeKind::kRelease:
      return "release";
    case EdgeKind::kSerialization:
      return "serialize";
    case EdgeKind::kDelay:
      return "delay";
    case EdgeKind::kLock:
      return "lock";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, EdgeKind kind) {
  return os << toString(kind);
}

ConstraintGraph::ConstraintGraph(std::size_t numVertices)
    : out_(numVertices), in_(numVertices) {}

void ConstraintGraph::addVertices(std::size_t count) {
  if (count == 0) return;
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  ++generation_;
}

EdgeId ConstraintGraph::addEdge(TaskId from, TaskId to, Duration weight,
                                EdgeKind kind) {
  PAWS_CHECK_MSG(from.index() < out_.size() && to.index() < out_.size(),
                 "edge endpoints out of range: " << from << " -> " << to);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(ConstraintEdge{from, to, weight, kind});
  out_[from.index()].push_back(id);
  in_[to.index()].push_back(id);
  return id;
}

void ConstraintGraph::rollbackTo(Checkpoint cp) {
  PAWS_CHECK_MSG(cp <= edges_.size(),
                 "rollback target " << cp << " beyond trail " << edges_.size());
  if (cp < edges_.size()) ++generation_;
  while (edges_.size() > cp) {
    const ConstraintEdge& e = edges_.back();
    // Edges are appended globally in order, so the newest edge is also the
    // newest entry of both of its adjacency lists.
    auto& outList = out_[e.from.index()];
    auto& inList = in_[e.to.index()];
    PAWS_CHECK(!outList.empty() && outList.back() == edges_.size() - 1);
    PAWS_CHECK(!inList.empty() && inList.back() == edges_.size() - 1);
    outList.pop_back();
    inList.pop_back();
    edges_.pop_back();
  }
}

}  // namespace paws
