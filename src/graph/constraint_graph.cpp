#include "graph/constraint_graph.hpp"

#include <ostream>

namespace paws {

const char* toString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kUserMin:
      return "min";
    case EdgeKind::kUserMax:
      return "max";
    case EdgeKind::kRelease:
      return "release";
    case EdgeKind::kSerialization:
      return "serialize";
    case EdgeKind::kDelay:
      return "delay";
    case EdgeKind::kLock:
      return "lock";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, EdgeKind kind) {
  return os << toString(kind);
}

ConstraintGraph::ConstraintGraph(std::size_t numVertices)
    : out_(numVertices), in_(numVertices) {}

void ConstraintGraph::addVertices(std::size_t count) {
  if (count == 0) return;
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  ++generation_;
}

void ConstraintGraph::reserveEdges(std::size_t numEdges) {
  edges_.reserve(numEdges);
  // Worst case one chunk per edge (every edge opening a fresh tail chunk).
  outPool_.reserve(numEdges);
  inPool_.reserve(numEdges);
}

void ConstraintGraph::append(std::vector<VertexAdj>& adj,
                             std::vector<AdjChunk>& pool, std::size_t vertex,
                             const AdjEntry& entry) {
  VertexAdj& v = adj[vertex];
  if (v.tail == kNoChunk || pool[v.tail].count == AdjChunk::kCapacity) {
    const std::uint32_t fresh = static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
    pool[fresh].prev = v.tail;
    if (v.tail == kNoChunk) {
      v.head = fresh;
    } else {
      pool[v.tail].next = fresh;
    }
    v.tail = fresh;
  }
  AdjChunk& chunk = pool[v.tail];
  chunk.entries[chunk.count++] = entry;
  ++v.degree;
}

void ConstraintGraph::pop(std::vector<VertexAdj>& adj,
                          std::vector<AdjChunk>& pool, std::size_t vertex,
                          EdgeId id) {
  VertexAdj& v = adj[vertex];
  PAWS_CHECK(v.tail != kNoChunk);
  AdjChunk& chunk = pool[v.tail];
  PAWS_CHECK(chunk.count > 0 && chunk.entries[chunk.count - 1].id == id);
  --chunk.count;
  --v.degree;
  if (chunk.count == 0) {
    const std::uint32_t dead = v.tail;
    v.tail = chunk.prev;
    if (v.tail == kNoChunk) {
      v.head = kNoChunk;
    } else {
      pool[v.tail].next = kNoChunk;
    }
    // Chunks are allocated in trail (edge) order, so undoing the newest edge
    // can only empty the newest chunk in the pool: freeing is a pop_back.
    PAWS_CHECK(dead + 1 == pool.size());
    pool.pop_back();
  }
}

EdgeId ConstraintGraph::addEdge(TaskId from, TaskId to, Duration weight,
                                EdgeKind kind) {
  PAWS_CHECK_MSG(from.index() < out_.size() && to.index() < out_.size(),
                 "edge endpoints out of range: " << from << " -> " << to);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(ConstraintEdge{from, to, weight, kind});
  append(out_, outPool_, from.index(), AdjEntry{id, to, weight});
  append(in_, inPool_, to.index(), AdjEntry{id, from, weight});
  return id;
}

void ConstraintGraph::rollbackTo(Checkpoint cp) {
  PAWS_CHECK_MSG(cp <= edges_.size(),
                 "rollback target " << cp << " beyond trail " << edges_.size());
  if (cp < edges_.size()) ++generation_;
  while (edges_.size() > cp) {
    const ConstraintEdge& e = edges_.back();
    // Edges are appended globally in order, so the newest edge is also the
    // newest entry of both of its adjacency lists.
    const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
    pop(out_, outPool_, e.from.index(), id);
    pop(in_, inPool_, e.to.index(), id);
    edges_.pop_back();
  }
}

}  // namespace paws
