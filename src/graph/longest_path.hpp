// SINGLE-SOURCE-LONGEST-PATH over the constraint graph (Fig. 3 of the
// paper calls this as the first step of every TimingScheduler invocation).
//
// Under the edge semantics sigma(to) - sigma(from) >= weight, the tightest
// (earliest) start-time assignment satisfying all constraints is the longest
// path distance from the anchor. A *positive cycle* means the constraint
// system is infeasible — the schedulers backtrack on it, so besides the
// verdict we also extract one offending cycle for diagnostics.
//
// The engine is stateful to support the schedulers' add-edge / recompute /
// rollback loop efficiently in BOTH directions:
//   * after edge *additions* distances can only grow, so relaxation
//     restarts from the new edges against the previous solution
//     (work-list Bellman–Ford);
//   * around a graph *rollback*, the schedulers bracket their trail with
//     checkpoint()/restore(): while a checkpoint is open the engine logs
//     every distance overwrite, and restore() pops that log so the
//     pre-rollback solution is revived instead of recomputing from
//     scratch. A rollback without a matching restore (or any change the
//     log cannot capture — a full rerun, new vertices) still degrades
//     safely to a full recompute via the graph generation counter.
#pragma once

#include <cstdint>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "graph/constraint_graph.hpp"
#include "obs/context.hpp"

namespace paws {

/// Outcome of a longest-path run.
struct LongestPathResult {
  /// False iff a positive cycle was found (constraints infeasible).
  bool feasible = true;
  /// Longest-path distance per vertex; Time::minusInfinity() when the vertex
  /// is unreachable from the source. Valid only when `feasible`.
  std::vector<Time> dist;
  /// When infeasible: the vertices of one positive cycle, in edge order.
  std::vector<TaskId> cycle;
  /// When infeasible: the edges forming that cycle.
  std::vector<EdgeId> cycleEdges;
};

class LongestPathEngine {
 public:
  /// Binds the engine to `graph`; the graph must outlive the engine.
  explicit LongestPathEngine(const ConstraintGraph& graph);

  /// (Re)computes longest paths from `source`. Automatically picks
  /// incremental relaxation when only edges were added since the previous
  /// feasible run from the same source; otherwise runs from scratch.
  const LongestPathResult& compute(TaskId source);

  /// Forces a from-scratch computation (used by tests and after external
  /// graph surgery the engine cannot observe).
  const LongestPathResult& computeFull(TaskId source);

  // ----- trail-aligned checkpoint / restore ---------------------------
  //
  // Usage, mirroring the ConstraintGraph trail:
  //
  //   auto cp  = graph.checkpoint();
  //   auto ecp = engine.checkpoint();     // start logging overwrites
  //   graph.addEdge(...); engine.compute(...);
  //   ...
  //   graph.rollbackTo(cp);               // graph first,
  //   engine.restore(ecp);                // then the engine
  //
  // or engine.release(ecp) instead of the rollback pair when the edges are
  // kept. checkpoint/release/restore must nest LIFO, exactly like the
  // graph trail. restore() revives the distance solution that was current
  // at checkpoint() time by popping the overwrite log; when the log cannot
  // prove that revival is sound (a full rerun happened in between, the
  // vertex set grew, or the graph is not back at the checkpoint's edge
  // count) it falls back to invalidating the engine, making the next
  // compute() a full run — never wrong, only slower.

  struct Checkpoint {
    std::size_t undoSize = 0;
    std::size_t edgeCount = 0;
    std::size_t vertexCount = 0;
    TaskId source;
    bool hadValidRun = false;
  };

  /// Marks the current solution state and starts delta logging.
  [[nodiscard]] Checkpoint checkpoint();

  /// Reverts the engine to `cp` after the caller rolled the graph back to
  /// the matching trail position. Counts as longest_path.restores when the
  /// solution is revived, longest_path.restore_fallbacks otherwise.
  void restore(const Checkpoint& cp);

  /// Closes `cp` without reverting (the trail edges are being kept).
  void release(const Checkpoint& cp);

  /// Attaches observability hooks: each Bellman–Ford run becomes a
  /// kLongestPath span (label = full/incremental, value = edge count) and
  /// feeds the "longest_path.*" metrics. Hooks are borrowed.
  void setObs(const obs::ObsContext& obs) { obs_ = obs; }

  [[nodiscard]] const LongestPathResult& result() const { return result_; }

 private:
  const LongestPathResult& run(TaskId source, bool incremental);
  const LongestPathResult& runImpl(TaskId source, bool incremental);
  void extractPositiveCycle(TaskId overRelaxed);
  /// Stamped walk up the parent chain from `v`; returns a vertex on a
  /// parent-graph cycle, or invalid if the chain is currently acyclic.
  [[nodiscard]] TaskId findParentCycle(TaskId v);
  /// Fills result_.cycle/cycleEdges by looping the parent chain from a
  /// vertex known to lie on a parent-graph cycle.
  void collectCycleAt(TaskId onCycle);

  const ConstraintGraph& graph_;
  LongestPathResult result_;
  obs::ObsContext obs_;

  // Scratch state reused across runs. inQueue_ is uint8_t, not bool: the
  // relaxation loop is the hottest in the code base and vector<bool>'s
  // bit-twiddling costs measurably there.
  std::vector<EdgeId> parentEdge_;
  std::vector<std::uint32_t> relaxCount_;
  std::vector<std::uint8_t> inQueue_;
  std::vector<TaskId> queue_;
  // Early positive-cycle detection: when a vertex reaches nextCheck_
  // improvements, walk its parent chain (stamped with walkEpoch_) looking
  // for a cycle. A cycle in the parent graph is always a strictly positive
  // cycle — every parent edge was a strict improvement when assigned, and
  // distances only grow, so a zero-weight cycle cannot close. Checks
  // escalate geometrically per vertex; the blind n-step walk at the
  // classic (n+1)-improvement bound remains the guaranteed fallback.
  std::vector<std::uint32_t> nextCheck_;
  std::vector<std::uint32_t> walkStamp_;
  std::uint32_t walkEpoch_ = 0;

  // Overwrite log for restore(): (vertex, previous distance), popped LIFO.
  struct Undo {
    std::uint32_t vertex;
    Time oldDist;
  };
  std::vector<Undo> undoLog_;
  std::size_t openCheckpoints_ = 0;
  // Entries below this index predate a full rerun and cannot be replayed;
  // restore() to a checkpoint older than this falls back to invalidation.
  std::size_t poisonedBelow_ = 0;

  // Validity tracking for incremental mode.
  bool hasValidRun_ = false;
  TaskId lastSource_;
  std::uint64_t lastGeneration_ = 0;
  std::size_t lastEdgeCount_ = 0;
};

}  // namespace paws
