// SINGLE-SOURCE-LONGEST-PATH over the constraint graph (Fig. 3 of the
// paper calls this as the first step of every TimingScheduler invocation).
//
// Under the edge semantics sigma(to) - sigma(from) >= weight, the tightest
// (earliest) start-time assignment satisfying all constraints is the longest
// path distance from the anchor. A *positive cycle* means the constraint
// system is infeasible — the schedulers backtrack on it, so besides the
// verdict we also extract one offending cycle for diagnostics.
//
// The engine is stateful to support the schedulers' add-edge / recompute /
// rollback loop efficiently: after edge *additions* distances can only grow,
// so relaxation restarts from the new edges against the previous solution
// (work-list Bellman–Ford). A graph generation bump (rollback, new
// vertices) forces a full recompute.
#pragma once

#include <cstdint>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "graph/constraint_graph.hpp"
#include "obs/context.hpp"

namespace paws {

/// Outcome of a longest-path run.
struct LongestPathResult {
  /// False iff a positive cycle was found (constraints infeasible).
  bool feasible = true;
  /// Longest-path distance per vertex; Time::minusInfinity() when the vertex
  /// is unreachable from the source. Valid only when `feasible`.
  std::vector<Time> dist;
  /// When infeasible: the vertices of one positive cycle, in edge order.
  std::vector<TaskId> cycle;
  /// When infeasible: the edges forming that cycle.
  std::vector<EdgeId> cycleEdges;
};

class LongestPathEngine {
 public:
  /// Binds the engine to `graph`; the graph must outlive the engine.
  explicit LongestPathEngine(const ConstraintGraph& graph);

  /// (Re)computes longest paths from `source`. Automatically picks
  /// incremental relaxation when only edges were added since the previous
  /// feasible run from the same source; otherwise runs from scratch.
  const LongestPathResult& compute(TaskId source);

  /// Forces a from-scratch computation (used by tests and after external
  /// graph surgery the engine cannot observe).
  const LongestPathResult& computeFull(TaskId source);

  /// Attaches observability hooks: each Bellman–Ford run becomes a
  /// kLongestPath span (label = full/incremental, value = edge count) and
  /// feeds the "longest_path.*" metrics. Hooks are borrowed.
  void setObs(const obs::ObsContext& obs) { obs_ = obs; }

  [[nodiscard]] const LongestPathResult& result() const { return result_; }

 private:
  const LongestPathResult& run(TaskId source, bool incremental);
  const LongestPathResult& runImpl(TaskId source, bool incremental);
  void extractPositiveCycle(TaskId overRelaxed);

  const ConstraintGraph& graph_;
  LongestPathResult result_;
  obs::ObsContext obs_;

  // Scratch state reused across runs.
  std::vector<EdgeId> parentEdge_;
  std::vector<std::uint32_t> relaxCount_;
  std::vector<bool> inQueue_;
  std::vector<TaskId> queue_;

  // Validity tracking for incremental mode.
  bool hasValidRun_ = false;
  TaskId lastSource_;
  std::uint64_t lastGeneration_ = 0;
  std::size_t lastEdgeCount_ = 0;
};

}  // namespace paws
