// Graphviz (DOT) export of constraint graphs for debugging and papers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/constraint_graph.hpp"

namespace paws {

/// Options controlling DOT rendering.
struct DotOptions {
  /// Labels per vertex (index-aligned); falls back to "v<i>" when absent.
  std::vector<std::string> vertexLabels;
  /// Include scheduler decision edges (serialization/delay/lock)?
  bool includeDecisionEdges = true;
};

/// Writes `graph` in DOT syntax to `os`. User min edges are solid, user max
/// edges dashed, scheduler decisions dotted and colored by kind.
void writeDot(std::ostream& os, const ConstraintGraph& graph,
              const DotOptions& options = {});

/// Convenience wrapper returning the DOT text.
std::string toDot(const ConstraintGraph& graph, const DotOptions& options = {});

}  // namespace paws
