#include "graph/longest_path.hpp"

#include <algorithm>
#include <chrono>

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace paws {

namespace {
constexpr EdgeId kNoParent = static_cast<EdgeId>(-1);
// First parent-cycle probe after this many improvements of one vertex;
// later probes escalate geometrically (see nextCheck_).
constexpr std::uint32_t kFirstCycleCheck = 8;
}

LongestPathEngine::LongestPathEngine(const ConstraintGraph& graph)
    : graph_(graph) {}

const LongestPathResult& LongestPathEngine::compute(TaskId source) {
  const bool canIncrement = hasValidRun_ && result_.feasible &&
                            lastSource_ == source &&
                            lastGeneration_ == graph_.generation() &&
                            graph_.numEdges() >= lastEdgeCount_;
  if (canIncrement && graph_.numEdges() == lastEdgeCount_) {
    return result_;  // Nothing changed.
  }
  return run(source, canIncrement);
}

const LongestPathResult& LongestPathEngine::computeFull(TaskId source) {
  return run(source, /*incremental=*/false);
}

LongestPathEngine::Checkpoint LongestPathEngine::checkpoint() {
  ++openCheckpoints_;
  Checkpoint cp;
  cp.undoSize = undoLog_.size();
  cp.edgeCount = graph_.numEdges();
  cp.vertexCount = graph_.numVertices();
  cp.source = lastSource_;
  cp.hadValidRun = hasValidRun_ && result_.feasible;
  return cp;
}

void LongestPathEngine::restore(const Checkpoint& cp) {
  PAWS_CHECK_MSG(openCheckpoints_ > 0, "restore without open checkpoint");
  --openCheckpoints_;
  PAWS_CHECK(cp.undoSize <= undoLog_.size());

  const bool revivable = cp.hadValidRun &&
                         graph_.numEdges() == cp.edgeCount &&
                         graph_.numVertices() == cp.vertexCount &&
                         cp.undoSize >= poisonedBelow_;
  if (revivable) {
    // Pop overwrites newest-first: a vertex touched twice ends at its
    // oldest (checkpoint-time) distance.
    while (undoLog_.size() > cp.undoSize) {
      const Undo& u = undoLog_.back();
      result_.dist[u.vertex] = u.oldDist;
      undoLog_.pop_back();
    }
    result_.feasible = true;
    result_.cycle.clear();
    result_.cycleEdges.clear();
    hasValidRun_ = true;
    lastSource_ = cp.source;
    lastEdgeCount_ = cp.edgeCount;
    lastGeneration_ = graph_.generation();
    if (obs_.metrics != nullptr) obs_.metrics->add("longest_path.restores");
  } else {
    undoLog_.resize(cp.undoSize);
    poisonedBelow_ = std::min(poisonedBelow_, undoLog_.size());
    hasValidRun_ = false;
    if (obs_.metrics != nullptr) {
      obs_.metrics->add("longest_path.restore_fallbacks");
    }
  }
  if (openCheckpoints_ == 0) {
    undoLog_.clear();
    poisonedBelow_ = 0;
  }
}

void LongestPathEngine::release(const Checkpoint& cp) {
  PAWS_CHECK_MSG(openCheckpoints_ > 0, "release without open checkpoint");
  (void)cp;
  --openCheckpoints_;
  if (openCheckpoints_ == 0) {
    // Nobody can restore through these entries anymore.
    undoLog_.clear();
    poisonedBelow_ = 0;
  }
}

const LongestPathResult& LongestPathEngine::run(TaskId source,
                                                bool incremental) {
  // Observed runs are wrapped in a wall-clock span; the unobserved path
  // costs exactly one branch.
  if (!obs_.enabled()) return runImpl(source, incremental);
  const std::int64_t sinkT0 = obs_.trace != nullptr ? obs_.trace->nowNs() : 0;
  const auto start = std::chrono::steady_clock::now();
  const LongestPathResult& r = runImpl(source, incremental);
  const std::int64_t durNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  PAWS_TRACE_SPAN(obs_.trace, obs::TraceEventKind::kLongestPath, sinkT0,
                  durNs, incremental ? "incremental" : "full",
                  /*depth=*/0,
                  /*value=*/static_cast<std::int64_t>(graph_.numEdges()));
  if (obs_.metrics != nullptr) {
    obs_.metrics->add("longest_path.runs");
    if (incremental) {
      obs_.metrics->add("longest_path.incremental_runs");
    } else {
      obs_.metrics->add("longest_path.full_runs");
    }
    if (!r.feasible) obs_.metrics->add("longest_path.infeasible_runs");
    obs_.metrics->observe("phase.longest_path.wall_us",
                          static_cast<double>(durNs) / 1000.0);
  }
  return r;
}

const LongestPathResult& LongestPathEngine::runImpl(TaskId source,
                                                    bool incremental) {
  const std::size_t n = graph_.numVertices();
  PAWS_CHECK_MSG(source.index() < n, "source " << source << " out of range");

  result_.feasible = true;
  result_.cycle.clear();
  result_.cycleEdges.clear();

  parentEdge_.assign(n, kNoParent);
  relaxCount_.assign(n, 0);
  inQueue_.assign(n, 0);
  nextCheck_.assign(n, kFirstCycleCheck);
  queue_.clear();
  queue_.reserve(n);

  // Distance overwrites are logged only while a checkpoint is open; a full
  // run rewrites the whole vector, which the log cannot express, so it
  // poisons every entry recorded so far instead (restore() then falls back
  // to invalidation for checkpoints older than this run).
  const bool record = openCheckpoints_ > 0 && incremental;
  if (!incremental && openCheckpoints_ > 0) poisonedBelow_ = undoLog_.size();

  std::size_t firstNewEdge = 0;
  if (incremental) {
    // Keep previous distances; only the tails of freshly added edges can
    // trigger improvements.
    firstNewEdge = lastEdgeCount_;
  } else {
    result_.dist.assign(n, Time::minusInfinity());
    result_.dist[source.index()] = Time::zero();
    queue_.push_back(source);
    inQueue_[source.index()] = 1;
  }

  auto relax = [&](EdgeId eid) -> TaskId {
    const ConstraintEdge& e = graph_.edge(eid);
    const Time du = result_.dist[e.from.index()];
    if (du == Time::minusInfinity()) return TaskId::invalid();
    const Time candidate = du + e.weight;
    if (candidate > result_.dist[e.to.index()]) {
      if (record) {
        undoLog_.push_back(Undo{static_cast<std::uint32_t>(e.to.index()),
                                result_.dist[e.to.index()]});
      }
      result_.dist[e.to.index()] = candidate;
      parentEdge_[e.to.index()] = eid;
      return e.to;
    }
    return TaskId::invalid();
  };

  // Seed: in incremental mode, relax exactly the new edges once.
  if (incremental) {
    for (std::size_t i = firstNewEdge; i < graph_.numEdges(); ++i) {
      const TaskId improved = relax(static_cast<EdgeId>(i));
      if (improved.isValid() && !inQueue_[improved.index()]) {
        inQueue_[improved.index()] = 1;
        queue_.push_back(improved);
      }
    }
  }

  // Work-list Bellman–Ford. A vertex improved more than |V| times lies on
  // (or is fed by) a positive cycle.
  const std::uint32_t relaxLimit = static_cast<std::uint32_t>(n) + 1;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const TaskId u = queue_[head++];
    inQueue_[u.index()] = 0;
    // Compact the queue occasionally so long runs stay in bounded memory.
    if (head > 4096 && head * 2 > queue_.size()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    // A dequeued vertex always has a finite distance (vertices are only
    // enqueued when improved), so the tail distance is hoisted and each
    // adjacency entry carries the head and weight inline — the relaxation
    // loop walks contiguous arena chunks without touching the edge pool.
    const Time du = result_.dist[u.index()];
    for (const AdjEntry& ae : graph_.outEdges(u)) {
      const Time candidate = du + ae.weight;
      const std::size_t to = ae.other.index();
      if (candidate <= result_.dist[to]) continue;
      if (record) {
        undoLog_.push_back(
            Undo{static_cast<std::uint32_t>(to), result_.dist[to]});
      }
      result_.dist[to] = candidate;
      parentEdge_[to] = ae.id;
      const std::uint32_t improvements = ++relaxCount_[to];
      if (improvements >= nextCheck_[to]) {
        // A vertex improving this often is suspicious: probe the parent
        // chain for a cycle now instead of pumping all the way to the
        // classic (n+1)-improvement bound — infeasible serializations are
        // the common case during scheduler backtracking, and each extra
        // pump lap re-relaxes the whole downstream subgraph.
        if (improvements > relaxLimit) {
          extractPositiveCycle(ae.other);
          hasValidRun_ = false;
          result_.feasible = false;
          return result_;
        }
        const TaskId onCycle = findParentCycle(ae.other);
        if (onCycle.isValid()) {
          collectCycleAt(onCycle);
          hasValidRun_ = false;
          result_.feasible = false;
          return result_;
        }
        nextCheck_[to] = improvements * 4;
      }
      if (!inQueue_[to]) {
        inQueue_[to] = 1;
        queue_.push_back(ae.other);
      }
    }
  }

  hasValidRun_ = true;
  lastSource_ = source;
  lastGeneration_ = graph_.generation();
  lastEdgeCount_ = graph_.numEdges();
  return result_;
}

void LongestPathEngine::extractPositiveCycle(TaskId overRelaxed) {
  const std::size_t n = graph_.numVertices();
  // Walk parent pointers n steps to guarantee we are standing inside the
  // cycle (the parent chain from an over-relaxed vertex must reach one).
  TaskId x = overRelaxed;
  for (std::size_t i = 0; i < n; ++i) {
    const EdgeId pe = parentEdge_[x.index()];
    if (pe == kNoParent) {
      // Defensive: cannot happen for a genuinely over-relaxed vertex, but a
      // missing parent chain still reports infeasibility without a witness.
      return;
    }
    x = graph_.edge(pe).from;
  }
  collectCycleAt(x);
}

TaskId LongestPathEngine::findParentCycle(TaskId v) {
  const std::size_t n = graph_.numVertices();
  if (walkStamp_.size() != n) walkStamp_.assign(n, 0);
  if (++walkEpoch_ == 0) {  // epoch wrapped: flush stale stamps
    walkStamp_.assign(n, 0);
    walkEpoch_ = 1;
  }
  TaskId x = v;
  for (std::size_t i = 0; i <= n; ++i) {
    if (walkStamp_[x.index()] == walkEpoch_) return x;  // revisit => cycle
    walkStamp_[x.index()] = walkEpoch_;
    const EdgeId pe = parentEdge_[x.index()];
    if (pe == kNoParent) return TaskId::invalid();
    x = graph_.edge(pe).from;
  }
  return TaskId::invalid();
}

void LongestPathEngine::collectCycleAt(TaskId onCycle) {
  // Collect vertices until onCycle repeats.
  std::vector<TaskId> path;
  std::vector<EdgeId> pathEdges;
  TaskId y = onCycle;
  do {
    const EdgeId pe = parentEdge_[y.index()];
    if (pe == kNoParent) return;
    path.push_back(y);
    pathEdges.push_back(pe);
    y = graph_.edge(pe).from;
  } while (y != onCycle);
  path.push_back(onCycle);
  std::reverse(path.begin(), path.end());
  std::reverse(pathEdges.begin(), pathEdges.end());
  result_.cycle = std::move(path);
  result_.cycleEdges = std::move(pathEdges);
}

}  // namespace paws
