#include "graph/dot.hpp"

#include <ostream>
#include <sstream>

namespace paws {

namespace {

const char* edgeStyle(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kUserMin:
      return "solid";
    case EdgeKind::kUserMax:
      return "dashed";
    case EdgeKind::kRelease:
      return "invis";
    default:
      return "dotted";
  }
}

const char* edgeColor(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kUserMin:
      return "black";
    case EdgeKind::kUserMax:
      return "firebrick";
    case EdgeKind::kRelease:
      return "gray";
    case EdgeKind::kSerialization:
      return "royalblue";
    case EdgeKind::kDelay:
      return "darkorange";
    case EdgeKind::kLock:
      return "purple";
  }
  return "black";
}

}  // namespace

void writeDot(std::ostream& os, const ConstraintGraph& graph,
              const DotOptions& options) {
  os << "digraph constraints {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < graph.numVertices(); ++i) {
    os << "  v" << i << " [label=\"";
    if (i < options.vertexLabels.size() && !options.vertexLabels[i].empty()) {
      os << options.vertexLabels[i];
    } else if (i == 0) {
      os << "anchor";
    } else {
      os << 'v' << i;
    }
    os << "\"];\n";
  }
  for (const ConstraintEdge& e : graph.edges()) {
    const bool decision = e.kind == EdgeKind::kSerialization ||
                          e.kind == EdgeKind::kDelay || e.kind == EdgeKind::kLock;
    if (decision && !options.includeDecisionEdges) continue;
    if (e.kind == EdgeKind::kRelease) continue;  // Pure noise in renders.
    os << "  v" << e.from.index() << " -> v" << e.to.index() << " [label=\""
       << e.weight.ticks() << "\", style=" << edgeStyle(e.kind)
       << ", color=" << edgeColor(e.kind) << "];\n";
  }
  os << "}\n";
}

std::string toDot(const ConstraintGraph& graph, const DotOptions& options) {
  std::ostringstream os;
  writeDot(os, graph, options);
  return os.str();
}

}  // namespace paws
