#include "exec/jobs.hpp"

#include <cstdlib>
#include <thread>

namespace paws::exec {

std::size_t defaultJobs() {
  if (const char* env = std::getenv("PAWS_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolveJobs(std::size_t requested) {
  return requested > 0 ? requested : defaultJobs();
}

}  // namespace paws::exec
