// parallelFor / parallelMap — deterministic data-parallel loops on a Pool.
//
// Work distribution is dynamic (whoever is free claims the next chunk via
// an atomic cursor) but the *results* are deterministic: parallelMap
// stores fn(i) at index i, so reducing its output in index order yields
// bit-identical answers for any thread count, including 1. That ordered
// reduction is how the parallel schedulers reproduce their serial results
// exactly (see docs/performance.md).
//
// The calling thread participates: it claims chunks like any worker and
// only blocks once every chunk is claimed. That makes these loops safe to
// call from inside a pool task (the nested loop just runs on the caller;
// the helper tasks it submitted become no-ops), so composing parallel
// layers cannot deadlock.
//
// Cancellation: pass a guard::CancelToken and workers poll it at chunk
// boundaries. Once it fires, the remaining chunks are still *claimed* —
// so the completion barrier releases and every helper drains cleanly —
// but their iterations are skipped. fn(i) is then never invoked for those
// indices; parallelMap leaves the corresponding slots default-constructed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "exec/pool.hpp"
#include "guard/cancel.hpp"

namespace paws::exec {

namespace detail {

struct ForState {
  std::size_t n = 0;
  std::size_t chunkSize = 1;
  std::size_t numChunks = 0;
  std::atomic<std::size_t> nextChunk{0};
  std::atomic<std::size_t> chunksDone{0};
  guard::CancelToken cancel;
  std::mutex mu;
  std::condition_variable cv;
};

/// Claims chunks until the cursor runs dry, running `fn` over each claimed
/// index range — or skipping it once the token fired, so the chunksDone
/// barrier still reaches numChunks and the loop drains instead of hanging.
/// Returns once no chunk is left to claim.
template <typename Fn>
void claimChunks(ForState& state, Fn& fn) {
  for (;;) {
    const std::size_t c =
        state.nextChunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state.numChunks) return;
    if (!state.cancel.cancelled()) {
      const std::size_t begin = c * state.chunkSize;
      const std::size_t end = std::min(begin + state.chunkSize, state.n);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
    if (state.chunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.numChunks) {
      {
        std::lock_guard<std::mutex> lk(state.mu);
      }
      state.cv.notify_all();
    }
  }
}

}  // namespace detail

/// Runs fn(i) for every i in [0, n). `fn` must be safe to invoke
/// concurrently from several threads; `grain` is the minimum indices per
/// chunk (raise it when fn is tiny). Blocks until all n calls completed —
/// or, when `cancel` fires mid-loop, until the remaining chunks have been
/// drained without invoking fn (workers poll at chunk boundaries).
template <typename Fn>
void parallelFor(Pool& pool, std::size_t n, Fn&& fn, std::size_t grain = 1,
                 guard::CancelToken cancel = {}) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t workers = pool.numThreads();
  // ~4 chunks per worker balances uneven iterations without shredding the
  // range; the chunking depends only on (n, grain, workers), never timing.
  const std::size_t targetChunks = workers * 4;
  const std::size_t chunkSize =
      std::max(grain, (n + targetChunks - 1) / targetChunks);
  const std::size_t numChunks = (n + chunkSize - 1) / chunkSize;
  if (workers <= 1 || numChunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel.cancelled()) return;
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<detail::ForState>();
  state->n = n;
  state->chunkSize = chunkSize;
  state->numChunks = numChunks;
  state->cancel = cancel;

  // Helper tasks may outlive this frame (a worker can dequeue one after
  // every chunk is done); they capture fn by pointer but only dereference
  // it when a chunk was actually claimed — which implies this frame is
  // still blocked in the wait below.
  Fn* fnPtr = &fn;
  const std::size_t helpers = std::min(workers, numChunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([state, fnPtr] { detail::claimChunks(*state, *fnPtr); });
  }
  detail::claimChunks(*state, fn);

  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&state] {
    return state->chunksDone.load(std::memory_order_acquire) ==
           state->numChunks;
  });
}

/// Ordered map: returns {fn(0), fn(1), ..., fn(n-1)} with fn(i) evaluated
/// in parallel but stored at index i. The result type must be default-
/// constructible and movable. Slots whose iteration was skipped by a fired
/// `cancel` token stay default-constructed.
template <typename Fn>
auto parallelMap(Pool& pool, std::size_t n, Fn&& fn, std::size_t grain = 1,
                 guard::CancelToken cancel = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(n);
  parallelFor(
      pool, n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, grain, cancel);
  return out;
}

}  // namespace paws::exec
