// Worker-count policy for the exec subsystem.
//
// Every parallel entry point (pawsc --jobs, ExhaustiveOptions::jobs, the
// bench sweeps) resolves its thread count through one function so the
// precedence is uniform across the code base:
//
//   explicit value > PAWS_JOBS environment variable > hardware_concurrency
//
// A resolved count is always >= 1; parallel code paths treat 1 as "run the
// exact serial algorithm" so a single knob degrades the whole stack to the
// seed behavior.
#pragma once

#include <cstddef>

namespace paws::exec {

/// Threads to use when the caller did not say: `PAWS_JOBS` when set to a
/// positive integer, otherwise std::thread::hardware_concurrency(),
/// clamped to >= 1.
[[nodiscard]] std::size_t defaultJobs();

/// Resolves an explicit request: `requested` when positive, otherwise
/// defaultJobs(). This is the helper options structs call on their
/// `jobs == 0` sentinel.
[[nodiscard]] std::size_t resolveJobs(std::size_t requested);

}  // namespace paws::exec
