// paws::exec::Pool — a small work-stealing thread pool.
//
// Each worker owns a deque guarded by its own mutex: the owner pushes and
// pops at the back (LIFO, cache-warm), idle workers steal from the front
// of a victim's deque (FIFO, oldest-first — steals grab the work most
// likely to fan out further). Submission round-robins across workers so
// independent batches spread without a central queue becoming the
// bottleneck; stealing rebalances whatever the round-robin got wrong.
//
// Lifetime and blocking semantics:
//   * submit()/async() never block (beyond the victim deque's mutex);
//   * the destructor drains every queued task, then joins — a Pool going
//     out of scope is a full barrier;
//   * tasks must not throw (async() captures exceptions in its future;
//     plain submit() tasks run under noexcept expectations — PAWS_CHECK
//     failures abort, like everywhere else in the code base).
//
// Backpressure: a Pool may be constructed with a queue capacity, bounding
// how many tasks can sit *waiting* in the deques (running tasks do not
// count). trySubmit() then refuses — immediately, without blocking — once
// the bound is reached; submit() always enqueues regardless (internal
// callers like parallelFor must never be refused mid-algorithm). This is
// the admission-control primitive pawsd's bounded intake queue is built
// on: a full queue is an explicit, countable rejection, never silent
// latency.
//
// The pool is instrumented for the paws::obs registry via exportMetrics():
//   exec.pool_threads   (gauge)   worker count
//   exec.tasks_run      (counter) tasks executed by workers
//   exec.tasks_stolen   (counter) tasks taken from another worker's deque
//   exec.tasks_rejected (counter) trySubmit() refusals at the queue bound
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace paws::obs {
class MetricsRegistry;
}  // namespace paws::obs

namespace paws::exec {

class Pool {
 public:
  /// Spawns `threads` workers; 0 means defaultJobs() (PAWS_JOBS or
  /// hardware_concurrency). `maxQueued` bounds the number of tasks
  /// *waiting* in the deques (0 = unbounded): beyond it trySubmit()
  /// refuses. Tasks already claimed by a worker no longer count.
  explicit Pool(std::size_t threads = 0, std::size_t maxQueued = 0);

  /// Drains all remaining tasks, then joins the workers.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] std::size_t numThreads() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Always accepts, even on a bounded
  /// pool — algorithmic callers (parallelFor helpers, nested solves) may
  /// not be refused mid-flight. Admission-controlled traffic goes through
  /// trySubmit().
  void submit(std::function<void()> fn);

  /// Bounded enqueue: refuses (returns false, counts a rejection) when
  /// the pool was built with a queue capacity and that many tasks are
  /// already waiting. Never blocks — this is the queue-full ⇒ immediate
  /// structured backpressure primitive. On an unbounded pool it behaves
  /// exactly like submit() and always returns true.
  [[nodiscard]] bool trySubmit(std::function<void()> fn);

  /// Tasks currently waiting in the deques (an instantaneous upper
  /// bound — concurrent pops may race it down). The overload ladder reads
  /// this as its queue-depth signal.
  [[nodiscard]] std::size_t queueDepth() const {
    return queued_.load(std::memory_order_acquire);
  }

  /// The trySubmit() bound this pool was built with (0 = unbounded).
  [[nodiscard]] std::size_t maxQueued() const { return maxQueued_; }

  /// Enqueues `fn` and returns a future for its result (exceptions are
  /// captured into the future, as with std::async).
  template <typename F>
  auto async(F fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  struct Stats {
    std::uint64_t tasksRun = 0;
    std::uint64_t tasksStolen = 0;
    std::uint64_t tasksRejected = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Publishes exec.pool_threads / exec.tasks_run / exec.tasks_stolen /
  /// exec.tasks_rejected.
  void exportMetrics(obs::MetricsRegistry& registry) const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
  };

  void workerLoop(std::size_t self);
  bool tryPop(std::size_t self, std::function<void()>& out);
  /// Pushes `fn` onto a deque and wakes a worker. `queued_` must already
  /// have been incremented for this task.
  void enqueueCounted(std::function<void()> fn);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // queued_ is an upper bound on tasks sitting in deques (incremented
  // before the push, decremented after a successful pop), so the idle
  // predicate can be checked without sweeping every deque.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> nextWorker_{0};
  std::atomic<bool> stop_{false};
  std::size_t maxQueued_ = 0;
  std::mutex idleMu_;
  std::condition_variable idleCv_;

  std::atomic<std::uint64_t> tasksRun_{0};
  std::atomic<std::uint64_t> tasksStolen_{0};
  std::atomic<std::uint64_t> tasksRejected_{0};
};

}  // namespace paws::exec
