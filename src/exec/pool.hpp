// paws::exec::Pool — a small work-stealing thread pool.
//
// Each worker owns a deque guarded by its own mutex: the owner pushes and
// pops at the back (LIFO, cache-warm), idle workers steal from the front
// of a victim's deque (FIFO, oldest-first — steals grab the work most
// likely to fan out further). Submission round-robins across workers so
// independent batches spread without a central queue becoming the
// bottleneck; stealing rebalances whatever the round-robin got wrong.
//
// Lifetime and blocking semantics:
//   * submit()/async() never block (beyond the victim deque's mutex);
//   * the destructor drains every queued task, then joins — a Pool going
//     out of scope is a full barrier;
//   * tasks must not throw (async() captures exceptions in its future;
//     plain submit() tasks run under noexcept expectations — PAWS_CHECK
//     failures abort, like everywhere else in the code base).
//
// The pool is instrumented for the paws::obs registry via exportMetrics():
//   exec.pool_threads   (gauge)   worker count
//   exec.tasks_run      (counter) tasks executed by workers
//   exec.tasks_stolen   (counter) tasks taken from another worker's deque
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace paws::obs {
class MetricsRegistry;
}  // namespace paws::obs

namespace paws::exec {

class Pool {
 public:
  /// Spawns `threads` workers; 0 means defaultJobs() (PAWS_JOBS or
  /// hardware_concurrency).
  explicit Pool(std::size_t threads = 0);

  /// Drains all remaining tasks, then joins the workers.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] std::size_t numThreads() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task.
  void submit(std::function<void()> fn);

  /// Enqueues `fn` and returns a future for its result (exceptions are
  /// captured into the future, as with std::async).
  template <typename F>
  auto async(F fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  struct Stats {
    std::uint64_t tasksRun = 0;
    std::uint64_t tasksStolen = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Publishes exec.pool_threads / exec.tasks_run / exec.tasks_stolen.
  void exportMetrics(obs::MetricsRegistry& registry) const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
  };

  void workerLoop(std::size_t self);
  bool tryPop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // queued_ is an upper bound on tasks sitting in deques (incremented
  // before the push, decremented after a successful pop), so the idle
  // predicate can be checked without sweeping every deque.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> nextWorker_{0};
  std::atomic<bool> stop_{false};
  std::mutex idleMu_;
  std::condition_variable idleCv_;

  std::atomic<std::uint64_t> tasksRun_{0};
  std::atomic<std::uint64_t> tasksStolen_{0};
};

}  // namespace paws::exec
