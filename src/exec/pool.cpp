#include "exec/pool.hpp"

#include "base/check.hpp"
#include "exec/jobs.hpp"
#include "obs/metrics.hpp"

namespace paws::exec {

Pool::Pool(std::size_t threads) {
  const std::size_t n = threads > 0 ? threads : defaultJobs();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

Pool::~Pool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its predicate check and its
    // wait must either see stop_ or receive the notify below.
    std::lock_guard<std::mutex> lk(idleMu_);
  }
  idleCv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::submit(std::function<void()> fn) {
  PAWS_CHECK_MSG(fn != nullptr, "null task submitted to exec::Pool");
  const std::size_t w =
      nextWorker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(workers_[w]->mu);
    workers_[w]->deque.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lk(idleMu_);
  }
  idleCv_.notify_one();
}

bool Pool::tryPop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest task (LIFO keeps the working set warm).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal oldest-first from the other workers, scanning from self+1 so
  // victims spread instead of everyone mobbing worker 0.
  const std::size_t n = workers_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Worker& victim = *workers_[(self + hop) % n];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.front());
      victim.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      tasksStolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Pool::workerLoop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (tryPop(self, task)) {
      task();
      task = nullptr;
      tasksRun_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lk(idleMu_);
    idleCv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    // Drain-then-exit: stop only takes effect once the deques are empty.
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

Pool::Stats Pool::stats() const {
  return Stats{tasksRun_.load(std::memory_order_relaxed),
               tasksStolen_.load(std::memory_order_relaxed)};
}

void Pool::exportMetrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.set("exec.pool_threads", static_cast<double>(numThreads()));
  registry.add("exec.tasks_run", s.tasksRun);
  registry.add("exec.tasks_stolen", s.tasksStolen);
}

}  // namespace paws::exec
