#include "exec/pool.hpp"

#include "base/check.hpp"
#include "exec/jobs.hpp"
#include "obs/metrics.hpp"

namespace paws::exec {

Pool::Pool(std::size_t threads, std::size_t maxQueued)
    : maxQueued_(maxQueued) {
  const std::size_t n = threads > 0 ? threads : defaultJobs();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

Pool::~Pool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its predicate check and its
    // wait must either see stop_ or receive the notify below.
    std::lock_guard<std::mutex> lk(idleMu_);
  }
  idleCv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::submit(std::function<void()> fn) {
  PAWS_CHECK_MSG(fn != nullptr, "null task submitted to exec::Pool");
  queued_.fetch_add(1, std::memory_order_release);
  enqueueCounted(std::move(fn));
}

bool Pool::trySubmit(std::function<void()> fn) {
  PAWS_CHECK_MSG(fn != nullptr, "null task submitted to exec::Pool");
  if (maxQueued_ == 0) {
    queued_.fetch_add(1, std::memory_order_release);
    enqueueCounted(std::move(fn));
    return true;
  }
  // Reserve a queue slot first, back out if the reservation overshot the
  // bound: concurrent submitters can never lastingly exceed maxQueued_,
  // and the failure path touches no deque mutex.
  const std::size_t prior = queued_.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= maxQueued_) {
    queued_.fetch_sub(1, std::memory_order_release);
    tasksRejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  enqueueCounted(std::move(fn));
  return true;
}

void Pool::enqueueCounted(std::function<void()> fn) {
  const std::size_t w =
      nextWorker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lk(workers_[w]->mu);
    workers_[w]->deque.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lk(idleMu_);
  }
  idleCv_.notify_one();
}

bool Pool::tryPop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest task (LIFO keeps the working set warm).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal oldest-first from the other workers, scanning from self+1 so
  // victims spread instead of everyone mobbing worker 0.
  const std::size_t n = workers_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Worker& victim = *workers_[(self + hop) % n];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.front());
      victim.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      tasksStolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Pool::workerLoop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (tryPop(self, task)) {
      task();
      task = nullptr;
      tasksRun_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lk(idleMu_);
    idleCv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    // Drain-then-exit: stop only takes effect once the deques are empty.
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

Pool::Stats Pool::stats() const {
  return Stats{tasksRun_.load(std::memory_order_relaxed),
               tasksStolen_.load(std::memory_order_relaxed),
               tasksRejected_.load(std::memory_order_relaxed)};
}

void Pool::exportMetrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.set("exec.pool_threads", static_cast<double>(numThreads()));
  registry.add("exec.tasks_run", s.tasksRun);
  registry.add("exec.tasks_stolen", s.tasksStolen);
  registry.add("exec.tasks_rejected", s.tasksRejected);
}

}  // namespace paws::exec
