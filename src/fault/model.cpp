#include "fault/model.hpp"

#include <utility>

#include "base/check.hpp"
#include "fault/rng.hpp"

namespace paws::fault {

namespace {

// Category salts: each sampling loop draws from its own stream so the
// categories never perturb one another.
constexpr std::uint64_t kOverrunSalt = 1;
constexpr std::uint64_t kFailureSalt = 2;
constexpr std::uint64_t kCloudSalt = 3;
constexpr std::uint64_t kStormSalt = 4;
constexpr std::uint64_t kDerateSalt = 5;

/// A window of `minSpan..maxSpan` ticks starting uniformly in the horizon.
Fault drawWindow(SplitMix64& rng, Time horizon, Duration minSpan,
                 Duration maxSpan, std::uint32_t minPct,
                 std::uint32_t maxPct) {
  const Duration span(rng.range(minSpan.ticks(), maxSpan.ticks()));
  const std::int64_t latestStart =
      std::max<std::int64_t>(0, horizon.ticks() - span.ticks());
  const Time begin(rng.range(0, latestStart));
  const std::uint32_t pct =
      static_cast<std::uint32_t>(rng.range(minPct, maxPct));
  return FaultPlan::solarTransient(Interval(begin, begin + span), pct);
}

}  // namespace

FaultModel::FaultModel(FaultModelConfig config,
                       std::vector<std::string> taskNames)
    : config_(std::move(config)), taskNames_(std::move(taskNames)) {
  PAWS_CHECK_MSG(config_.horizon > Time::zero(),
                 "fault model needs a positive horizon");
  PAWS_CHECK(config_.overrunMinPct >= 100 &&
             config_.overrunMaxPct >= config_.overrunMinPct);
  PAWS_CHECK(config_.cloudMaxSpan >= config_.cloudMinSpan);
  PAWS_CHECK(config_.stormMaxSpan >= config_.stormMinSpan);
}

FaultPlan FaultModel::instantiate(std::uint64_t missionSeed) const {
  FaultPlan plan;

  // Task overruns — one stream, iterated (iteration x task) in fixed order.
  {
    SplitMix64 rng(mixSeed(missionSeed, 0, kOverrunSalt));
    for (std::uint64_t it = 0; it < config_.iterations; ++it) {
      for (const std::string& task : taskNames_) {
        if (!rng.chance(config_.overrunPermille)) continue;
        const std::uint32_t pct = static_cast<std::uint32_t>(
            rng.range(config_.overrunMinPct, config_.overrunMaxPct));
        plan.faults.push_back(FaultPlan::overrun(task, it, pct));
      }
    }
  }

  // Transient task failures.
  {
    SplitMix64 rng(mixSeed(missionSeed, 0, kFailureSalt));
    for (std::uint64_t it = 0; it < config_.iterations; ++it) {
      for (const std::string& task : taskNames_) {
        if (!rng.chance(config_.failurePermille)) continue;
        const std::uint32_t times = static_cast<std::uint32_t>(rng.range(
            1, std::max<std::uint32_t>(1, config_.maxConsecutiveFailures)));
        plan.faults.push_back(FaultPlan::failure(task, it, times));
      }
    }
  }

  // Cloud dropouts and dust storms.
  {
    SplitMix64 rng(mixSeed(missionSeed, 0, kCloudSalt));
    for (std::uint32_t i = 0; i < config_.clouds; ++i) {
      plan.faults.push_back(drawWindow(rng, config_.horizon,
                                       config_.cloudMinSpan,
                                       config_.cloudMaxSpan,
                                       config_.cloudMinPct,
                                       config_.cloudMaxPct));
    }
  }
  {
    SplitMix64 rng(mixSeed(missionSeed, 0, kStormSalt));
    for (std::uint32_t i = 0; i < config_.storms; ++i) {
      plan.faults.push_back(drawWindow(rng, config_.horizon,
                                       config_.stormMinSpan,
                                       config_.stormMaxSpan,
                                       config_.stormMinPct,
                                       config_.stormMaxPct));
    }
  }

  // At most one battery derate per mission.
  {
    SplitMix64 rng(mixSeed(missionSeed, 0, kDerateSalt));
    if (rng.chance(config_.deratePermille)) {
      const Time at(rng.range(0, config_.horizon.ticks()));
      const std::uint32_t cap = static_cast<std::uint32_t>(
          rng.range(config_.derateCapacityMinPct, 100));
      const std::uint32_t out = static_cast<std::uint32_t>(
          rng.range(config_.derateOutputMinPct, 100));
      plan.faults.push_back(FaultPlan::batteryDerate(at, cap, out));
    }
  }

  return plan;
}

}  // namespace paws::fault
