// FaultCampaign — Monte-Carlo mission-survival campaigns.
//
// A campaign replays the same mission N times, each under a fault plan
// sampled from a FaultModel with that mission's seed, and aggregates
// survival. Missions run on the paws::exec pool; results are byte-identical
// for ANY worker count because
//
//   * mission i's plan depends only on mixSeed(campaign seed, i, 0) —
//     never on which thread instantiated it;
//   * outcomes are stored at index i (exec::parallelMap) and reduced in
//     index order;
//   * the shared case bindings are immutable during the parallel phase —
//     run() pre-warms every schedule's lazy power-profile cache before
//     spawning workers.
//
// The aggregate answers the paper's mission-critical question directly:
// with faults at this rate, what fraction of missions completes its 48
// steps — and how much does each contingency layer (retry / replan / shed)
// buy over the open-loop executor?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/contingency.hpp"
#include "fault/model.hpp"
#include "guard/budget.hpp"
#include "obs/context.hpp"
#include "rover/plans.hpp"
#include "runtime/executor.hpp"

namespace paws::fault {

struct CampaignConfig {
  int missions = 32;
  std::uint64_t seed = 1;
  int targetSteps = 48;
  bool abortOnBrownout = false;
  ContingencyOptions contingency;
  FaultModelConfig model;
  /// System criticality modes for every mission (default: disabled — the
  /// campaign is then byte-identical to a mode-unaware build).
  ModePolicy modePolicy;
  /// Label echoed into the JSON report for the battery model the missions
  /// flew ("linear" or "rate"); the model itself lives in the Battery
  /// handed to the campaign constructor.
  std::string batteryModel = "linear";
  /// Worker threads for the mission fan-out: 1 = serial (default),
  /// 0 = exec::defaultJobs(). The results never depend on this.
  std::size_t jobs = 1;
  /// Aggregates land in "campaign.*" counters/gauges.
  obs::ObsContext obs;
  /// Wall-clock deadline / cancellation for the whole campaign. On a trip,
  /// in-flight missions stop at their next iteration boundary, queued
  /// missions are skipped, and only fully-flown missions are aggregated —
  /// a survival rate over truncated samples would be meaningless. Inactive
  /// (the default) keeps the campaign byte-identical for any `jobs`.
  guard::RunBudget budget;
};

/// One mission's outcome, reduced from the executor's ExecutionResult.
struct MissionOutcome {
  std::uint64_t seed = 0;
  bool survived = false;
  int steps = 0;
  Time finishedAt;
  Energy batteryDrawn;
  int brownouts = 0;
  int faultsInjected = 0;
  int retries = 0;
  int replans = 0;
  int replanFailures = 0;
  int shedTasks = 0;
  int deadlineMisses = 0;
  bool batteryDepleted = false;
  bool unrecoverable = false;
  bool stalled = false;
  int modeEscalations = 0;
  int modeDeescalations = 0;
  int modeShedTasks = 0;
  int finalMode = 0;
  bool modeInfeasible = false;
  /// Mission tick the battery ran dry, -1 when it ended with charge left.
  std::int64_t depletedAt = -1;
  /// Set by the campaign only when the mission fully flew. Stays false when
  /// the RunBudget tripped before (or while) the mission ran — parallelMap
  /// leaves skipped slots default-constructed, so the default must read
  /// "not flown". Unflown outcomes are excluded from aggregates and JSON.
  bool flown = false;
};

struct CampaignResult {
  int missions = 0;
  int survived = 0;
  std::int64_t steps = 0;
  std::int64_t brownouts = 0;
  std::int64_t faultsInjected = 0;
  std::int64_t retries = 0;
  std::int64_t replans = 0;
  std::int64_t replanFailures = 0;
  std::int64_t shedTasks = 0;
  std::int64_t deadlineMisses = 0;
  std::int64_t depletions = 0;
  std::int64_t unrecoverable = 0;
  std::int64_t stalled = 0;
  std::int64_t modeEscalations = 0;
  std::int64_t modeDeescalations = 0;
  std::int64_t modeShedTasks = 0;
  std::int64_t modeInfeasible = 0;
  /// kNone unless the RunBudget tripped; then `missions` counts only the
  /// missions that fully flew before the trip (a truncated campaign).
  guard::StopReason stopReason = guard::StopReason::kNone;
  /// Per-mission outcomes in mission-index order (including unflown rows,
  /// so outcome i always carries mission index i).
  std::vector<MissionOutcome> outcomes;

  /// Survival rate in permille (integer, so reports stay byte-exact).
  [[nodiscard]] std::int64_t survivalPermille() const {
    return missions == 0 ? 0 : static_cast<std::int64_t>(survived) * 1000 /
                                   missions;
  }
};

class FaultCampaign {
 public:
  /// `bindings` as for RuntimeExecutor; the pointed-to problems must
  /// outlive the campaign.
  FaultCampaign(SolarSource solar, Battery battery,
                std::vector<runtime::CaseBinding> bindings);

  [[nodiscard]] CampaignResult run(const CampaignConfig& config) const;

 private:
  SolarSource solar_;
  Battery battery_;
  std::vector<runtime::CaseBinding> bindings_;
};

/// Case bindings over rover::buildCaseSchedules output (best/typical/worst
/// with the worst case as the 0 W catch-all). `cases` must outlive the
/// bindings and must have built successfully.
std::vector<runtime::CaseBinding> roverCaseBindings(
    const rover::CaseSchedules& cases);

/// Deterministic JSON report (config echo, aggregate, per-mission rows).
/// Never embeds the worker count, so reports from different `jobs` values
/// are byte-identical.
std::string toJson(const CampaignConfig& config, const CampaignResult& result);

}  // namespace paws::fault
