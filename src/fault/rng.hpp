// SplitMix64 — the deterministic stream generator behind fault injection.
//
// Campaign results must be byte-identical for any worker count, so every
// mission derives its own independent stream from (campaign seed, mission
// index, category salt) by pure integer mixing — no global generator whose
// consumption order could depend on scheduling. SplitMix64 is the standard
// seeding mix of Vigna's xoshiro family: one 64-bit state, an additive
// Weyl sequence and two xor-shift-multiply finalizers. It passes BigCrush
// at this state size and, unlike std::mt19937, its output is fully
// specified integer arithmetic — identical on every platform.
#pragma once

#include <cstdint>

namespace paws::fault {

class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (modulo bias is irrelevant at fault-model
  /// rates and keeps the math platform-exact).
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// True with probability permille/1000.
  constexpr bool chance(std::uint32_t permille) {
    return next() % 1000 < permille;
  }

 private:
  std::uint64_t state_;
};

/// Mixes a mission index and a category salt into a campaign seed, giving
/// each (mission, fault category) pair its own independent stream.
constexpr std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t mission,
                                std::uint64_t salt) {
  SplitMix64 mixer(seed ^ (mission * 0x9e3779b97f4a7c15ULL) ^
                   (salt * 0xda942042e4dd58b5ULL));
  return mixer.next();
}

}  // namespace paws::fault
