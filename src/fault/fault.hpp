// Fault taxonomy and scripted fault plans.
//
// The paper's mission-critical claim is only credible if the scheduler
// stack survives *degraded* missions, so this subsystem models the four
// ways the rover environment betrays a static plan:
//
//   * task overruns      — a motor stalls, a sensor retries internally:
//                          the task holds its resource (and power) longer
//                          than its d(v);
//   * task failures      — an execution completes without producing its
//                          result and must be retried, shed, or declared
//                          fatal;
//   * solar transients   — cloud dropouts and dust-storm windows scale the
//                          free solar level over a mission-time window;
//   * battery derating   — aging or cold snaps cut the battery's usable
//                          capacity and/or its maximum output at an
//                          instant.
//
// A `FaultPlan` is the fully resolved, scripted list of faults for ONE
// mission: tests write plans by hand (exact replay), campaigns instantiate
// them from a `FaultModel` (model.hpp) with per-mission SplitMix64 streams.
// Either way the plan is plain data — injection is deterministic, and a
// mission replayed from the same plan produces an identical event trace.
//
// Task faults are addressed by task *name*, not TaskId: the runtime
// executor switches between per-case Problems whose ids differ, while the
// names ("drive1", "heat_wheel2") are stable across the case ladder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/interval.hpp"
#include "base/time.hpp"
#include "base/units.hpp"
#include "power/sources.hpp"

namespace paws::fault {

enum class FaultKind : std::uint8_t {
  kTaskOverrun,    ///< d'(v) = d(v) * scalePct/100 + extra
  kTaskFailure,    ///< the next `failures` attempts complete but fail
  kSolarTransient, ///< solar level scaled to solarPct over `window`
  kBatteryDerate,  ///< capacity/output scaled to *Pct at time `at`
};

const char* toString(FaultKind kind);

/// One scripted fault. Only the fields of its kind are meaningful; the
/// named constructors on FaultPlan are the intended way to build one.
struct Fault {
  FaultKind kind = FaultKind::kTaskOverrun;

  // --- task faults (kTaskOverrun, kTaskFailure) ---
  std::string task;             ///< target task name
  std::uint64_t iteration = 0;  ///< executor iteration index it strikes
  std::uint32_t scalePct = 100; ///< overrun: duration scale, percent
  Duration extra;               ///< overrun: additive slip, ticks
  std::uint32_t failures = 1;   ///< failure: consecutive failing attempts

  // --- solar transients (kSolarTransient) ---
  Interval window;              ///< mission-time window
  std::uint32_t solarPct = 100; ///< solar level inside the window, percent

  // --- battery derating (kBatteryDerate) ---
  Time at;                        ///< derate instant (mission time)
  std::uint32_t capacityPct = 100;
  std::uint32_t outputPct = 100;
};

/// Human-readable one-liner ("overrun drive1 @iter 3: 150% +2"), used in
/// executor event details and campaign logs.
std::string describe(const Fault& fault);

/// The scripted fault stream of one mission.
struct FaultPlan {
  std::vector<Fault> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  // Named constructors for the four kinds.
  static Fault overrun(std::string task, std::uint64_t iteration,
                       std::uint32_t scalePct,
                       Duration extra = Duration::zero());
  static Fault failure(std::string task, std::uint64_t iteration,
                       std::uint32_t failures = 1);
  static Fault solarTransient(Interval window, std::uint32_t solarPct);
  static Fault batteryDerate(Time at, std::uint32_t capacityPct,
                             std::uint32_t outputPct);
};

/// Overlays every solar transient of `plan` onto `base`, in plan order
/// (overlapping windows compose multiplicatively). With no solar faults
/// the result is an exact copy of `base`.
SolarSource applySolarFaults(const SolarSource& base, const FaultPlan& plan);

/// `battery` with `fault`'s derating applied: output and capacity scaled,
/// already-drawn energy preserved (clamped into the new capacity).
Battery derate(const Battery& battery, const Fault& fault);

}  // namespace paws::fault
