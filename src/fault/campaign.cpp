#include "fault/campaign.hpp"

#include <sstream>
#include <utility>

#include "base/check.hpp"
#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "fault/rng.hpp"
#include "obs/metrics.hpp"
#include "rover/rover_model.hpp"

namespace paws::fault {

FaultCampaign::FaultCampaign(SolarSource solar, Battery battery,
                             std::vector<runtime::CaseBinding> bindings)
    : solar_(std::move(solar)),
      battery_(std::move(battery)),
      bindings_(std::move(bindings)) {
  PAWS_CHECK_MSG(!bindings_.empty(), "campaign needs at least one binding");
}

CampaignResult FaultCampaign::run(const CampaignConfig& config) const {
  PAWS_CHECK(config.missions > 0);
  PAWS_CHECK(config.targetSteps > 0);

  // Pre-warm the lazy profile caches: during the parallel phase the
  // bindings are shared read-only across workers.
  for (const runtime::CaseBinding& b : bindings_) {
    (void)b.schedule.powerProfile();
  }

  // Fault-addressable tasks: the first binding's names in id order (the
  // names are stable across the case ladder).
  std::vector<std::string> taskNames;
  for (TaskId v : bindings_[0].problem->taskIds()) {
    taskNames.push_back(bindings_[0].problem->task(v).name);
  }
  const FaultModel model(config.model, std::move(taskNames));
  const runtime::RuntimeExecutor executor(solar_, battery_, bindings_);

  // One absolute deadline for the whole campaign; every worker races it.
  // `drain` fans the first trip out to the pool so queued missions are
  // skipped instead of each discovering the deadline on its own.
  const guard::RunBudget budget = config.budget.resolved();
  guard::CancelSource drain;

  const auto flyMission = [&](std::size_t mission) -> MissionOutcome {
    MissionOutcome o;
    o.flown = false;
    guard::RunGuard entry(budget, /*stride=*/1);
    if (entry.check() != guard::StopReason::kNone) {
      drain.cancel();
      return o;
    }
    const std::uint64_t missionSeed = mixSeed(config.seed, mission, 0);
    const FaultPlan plan = model.instantiate(missionSeed);
    runtime::ExecutorConfig ec;
    ec.targetSteps = config.targetSteps;
    ec.abortOnBrownout = config.abortOnBrownout;
    ec.traceTasks = false;
    ec.faults = &plan;
    ec.contingency = config.contingency;
    ec.modes = config.modePolicy;
    ec.budget = budget;
    const runtime::ExecutionResult r = executor.run(ec);
    if (r.stopReason != guard::StopReason::kNone) {
      // Cut mid-flight: a truncated mission is not a fair survival sample.
      drain.cancel();
      return o;
    }
    o.flown = true;
    o.seed = missionSeed;
    o.survived = r.complete;
    o.steps = r.steps;
    o.finishedAt = r.finishedAt;
    o.batteryDrawn = r.batteryDrawn;
    o.brownouts = r.brownouts;
    o.faultsInjected = r.faultsInjected;
    o.retries = r.retries;
    o.replans = r.replans;
    o.replanFailures = r.replanFailures;
    o.shedTasks = r.shedTasks;
    o.deadlineMisses = r.deadlineMisses;
    o.batteryDepleted = r.batteryDepleted;
    o.unrecoverable = r.unrecoverable;
    o.stalled = r.stalled;
    o.modeEscalations = r.modeEscalations;
    o.modeDeescalations = r.modeDeescalations;
    o.modeShedTasks = r.modeShedTasks;
    o.finalMode = r.finalMode;
    o.modeInfeasible = r.modeInfeasible;
    o.depletedAt = r.depletedAt.has_value() ? r.depletedAt->ticks() : -1;
    return o;
  };

  CampaignResult result;
  {
    exec::Pool pool(config.jobs);
    result.outcomes =
        exec::parallelMap(pool, static_cast<std::size_t>(config.missions),
                          flyMission, /*grain=*/1, drain.token());
  }
  if (drain.token().cancelled()) {
    // Recover which guard condition tripped: cancellation stays set and
    // deadlines do not un-expire, so re-checking now gives the answer.
    guard::RunGuard post(budget, /*stride=*/1);
    result.stopReason = post.check() != guard::StopReason::kNone
                            ? post.reason()
                            : guard::StopReason::kDeadline;
  }

  // Index-order reduction: byte-identical for any worker count.
  result.missions = 0;
  for (const MissionOutcome& o : result.outcomes) {
    if (!o.flown) continue;
    ++result.missions;
    if (config.obs.metrics != nullptr) {
      // Per-mission distributions: the index-order walk makes the bucket
      // counts deterministic for any worker count.
      config.obs.metrics->observe("campaign.mission_steps",
                                  static_cast<double>(o.steps));
      config.obs.metrics->observe(
          "campaign.mission_battery_drawn_mwt",
          static_cast<double>(o.batteryDrawn.milliwattTicks()));
    }
    if (o.survived) ++result.survived;
    result.steps += o.steps;
    result.brownouts += o.brownouts;
    result.faultsInjected += o.faultsInjected;
    result.retries += o.retries;
    result.replans += o.replans;
    result.replanFailures += o.replanFailures;
    result.shedTasks += o.shedTasks;
    result.deadlineMisses += o.deadlineMisses;
    if (o.batteryDepleted) ++result.depletions;
    if (o.unrecoverable) ++result.unrecoverable;
    if (o.stalled) ++result.stalled;
    result.modeEscalations += o.modeEscalations;
    result.modeDeescalations += o.modeDeescalations;
    result.modeShedTasks += o.modeShedTasks;
    if (o.modeInfeasible) ++result.modeInfeasible;
  }

  if (config.obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.obs.metrics;
    const auto add = [&m](const char* name, std::int64_t v) {
      m.add(name, static_cast<std::uint64_t>(v));
    };
    add("campaign.missions", result.missions);
    add("campaign.survived", result.survived);
    add("campaign.steps", result.steps);
    add("campaign.brownouts", result.brownouts);
    add("campaign.faults_injected", result.faultsInjected);
    add("campaign.retries", result.retries);
    add("campaign.replans", result.replans);
    add("campaign.replan_failures", result.replanFailures);
    add("campaign.shed_tasks", result.shedTasks);
    add("campaign.deadline_misses", result.deadlineMisses);
    add("campaign.depletions", result.depletions);
    add("campaign.unrecoverable", result.unrecoverable);
    add("campaign.stalled", result.stalled);
    if (config.modePolicy.enabled()) {
      add("campaign.mode_escalations", result.modeEscalations);
      add("campaign.mode_deescalations", result.modeDeescalations);
      add("campaign.mode_shed_tasks", result.modeShedTasks);
      add("campaign.mode_infeasible", result.modeInfeasible);
    }
    m.set("campaign.survival_permille",
          static_cast<double>(result.survivalPermille()));
    if (result.stopReason == guard::StopReason::kCancelled) {
      m.add("guard.cancels");
    } else if (result.stopReason == guard::StopReason::kDeadline) {
      m.add("guard.deadline_trips");
    }
  }
  return result;
}

std::vector<runtime::CaseBinding> roverCaseBindings(
    const rover::CaseSchedules& cases) {
  PAWS_CHECK_MSG(cases.ok && cases.schedules.size() == 3,
                 "case schedules did not build: " << cases.message);
  using rover::RoverCase;
  std::vector<runtime::CaseBinding> bindings;
  bindings.push_back({"best", rover::powerTable(RoverCase::kBest).solar,
                      cases.problems[0].get(), cases.schedules[0],
                      rover::kStepsPerIteration});
  bindings.push_back({"typical", rover::powerTable(RoverCase::kTypical).solar,
                      cases.problems[1].get(), cases.schedules[1],
                      rover::kStepsPerIteration});
  // The worst case is the catch-all so degraded solar still selects it.
  bindings.push_back({"worst", Watts::zero(), cases.problems[2].get(),
                      cases.schedules[2], rover::kStepsPerIteration});
  return bindings;
}

namespace {

const char* boolStr(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string toJson(const CampaignConfig& config,
                   const CampaignResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"seed\": " << config.seed
     << ", \"missions\": " << config.missions
     << ", \"target_steps\": " << config.targetSteps
     << ", \"abort_on_brownout\": " << boolStr(config.abortOnBrownout)
     << ",\n    \"contingency\": {\"retry\": "
     << boolStr(config.contingency.retry)
     << ", \"replan\": " << boolStr(config.contingency.replan)
     << ", \"shed\": " << boolStr(config.contingency.shed)
     << ", \"watchdog_slack_pct\": " << config.contingency.watchdogSlackPct
     << "},\n    \"mode_policy\": \""
     << (config.modePolicy.enabled() ? config.modePolicy.name : "off")
     << "\", \"battery_model\": \"" << config.batteryModel << "\"},\n";
  os << "  \"aggregate\": {\"survived\": " << result.survived
     << ", \"survival_permille\": " << result.survivalPermille()
     << ", \"steps\": " << result.steps
     << ", \"brownouts\": " << result.brownouts
     << ", \"depletions\": " << result.depletions
     << ", \"faults_injected\": " << result.faultsInjected
     << ", \"retries\": " << result.retries
     << ", \"replans\": " << result.replans
     << ", \"replan_failures\": " << result.replanFailures
     << ", \"shed_tasks\": " << result.shedTasks
     << ", \"deadline_misses\": " << result.deadlineMisses
     << ", \"unrecoverable\": " << result.unrecoverable
     << ", \"stalled\": " << result.stalled
     << ", \"mode_escalations\": " << result.modeEscalations
     << ", \"mode_deescalations\": " << result.modeDeescalations
     << ", \"mode_shed_tasks\": " << result.modeShedTasks
     << ", \"mode_infeasible\": " << result.modeInfeasible << "},\n";
  os << "  \"missions\": [\n";
  // Only fully-flown missions are reported; on a clean campaign that is
  // every row, so the report stays byte-identical to the unguarded one.
  std::vector<const MissionOutcome*> flown;
  for (const MissionOutcome& o : result.outcomes) {
    if (o.flown) flown.push_back(&o);
  }
  for (std::size_t i = 0; i < flown.size(); ++i) {
    const MissionOutcome& o = *flown[i];
    os << "    {\"seed\": " << o.seed
       << ", \"survived\": " << boolStr(o.survived)
       << ", \"steps\": " << o.steps
       << ", \"finished_at\": " << o.finishedAt.ticks()
       << ", \"battery_drawn_mwticks\": " << o.batteryDrawn.milliwattTicks()
       << ", \"brownouts\": " << o.brownouts
       << ", \"faults\": " << o.faultsInjected
       << ", \"retries\": " << o.retries
       << ", \"replans\": " << o.replans
       << ", \"replan_failures\": " << o.replanFailures
       << ", \"shed\": " << o.shedTasks
       << ", \"deadline_misses\": " << o.deadlineMisses
       << ", \"depleted\": " << boolStr(o.batteryDepleted)
       << ", \"depleted_at\": " << o.depletedAt
       << ", \"unrecoverable\": " << boolStr(o.unrecoverable)
       << ", \"stalled\": " << boolStr(o.stalled)
       << ", \"mode_escalations\": " << o.modeEscalations
       << ", \"mode_shed\": " << o.modeShedTasks
       << ", \"final_mode\": " << o.finalMode
       << ", \"mode_infeasible\": " << boolStr(o.modeInfeasible) << "}"
       << (i + 1 < flown.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace paws::fault
