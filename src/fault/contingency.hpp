// ContingencyOptions — the pluggable mid-flight response policy.
//
// When the injected (or real) environment breaks the executing schedule,
// the runtime executor escalates through four responses, each individually
// switchable so campaigns can measure what every layer buys:
//
//   1. retry     — a failed task re-executes after a growing backoff,
//                  serialized after the iteration's remaining work, at most
//                  `maxRetries` times per fault;
//   2. replan    — a brownout instant triggers repairSchedule() on the
//                  amended problem (history pinned, the future re-planned
//                  under the degraded Pmax/Pmin), bounded per iteration;
//   3. shed      — when the repair is infeasible (or retries run out on a
//                  droppable task), droppable tasks are abandoned in
//                  criticality order until the mission fits;
//   4. watchdog  — iterations that blow their nominal span by more than
//                  `watchdogSlackPct` raise an explicit deadline-miss
//                  event instead of silently overrunning.
//
// Case *downgrade* needs no knob: the executor's CaseBinding ladder already
// re-selects the schedule matching the (now degraded) solar level at every
// iteration boundary.
//
// A default-constructed ContingencyOptions disables everything — the
// executor then behaves exactly as the pre-fault code did.
#pragma once

#include <cstdint>

#include "base/time.hpp"

namespace paws::fault {

struct ContingencyOptions {
  /// Retry failed task executions (bounded, with linear backoff).
  bool retry = false;
  std::uint32_t maxRetries = 2;
  /// Idle gap before retry attempt k: backoff * k ticks.
  Duration backoff = Duration(2);

  /// Repair the running schedule at a brownout instant.
  bool replan = false;
  std::uint32_t maxReplansPerIteration = 2;

  /// Shed droppable tasks (Task::criticality > 0) when repair cannot fit
  /// the mission, most-droppable (highest criticality value) first.
  bool shed = false;

  /// Raise a deadline-miss event when an iteration's effective span
  /// exceeds its nominal span by more than this percentage (0 = off).
  std::uint32_t watchdogSlackPct = 0;

  /// Convenience: everything on, default bounds.
  [[nodiscard]] static ContingencyOptions all() {
    ContingencyOptions o;
    o.retry = true;
    o.replan = true;
    o.shed = true;
    o.watchdogSlackPct = 50;
    return o;
  }

  [[nodiscard]] bool any() const {
    return retry || replan || shed || watchdogSlackPct > 0;
  }
};

}  // namespace paws::fault
