#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>

#include "base/check.hpp"

namespace paws::fault {

const char* toString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTaskOverrun:
      return "task-overrun";
    case FaultKind::kTaskFailure:
      return "task-failure";
    case FaultKind::kSolarTransient:
      return "solar-transient";
    case FaultKind::kBatteryDerate:
      return "battery-derate";
  }
  return "?";
}

std::string describe(const Fault& fault) {
  std::ostringstream os;
  switch (fault.kind) {
    case FaultKind::kTaskOverrun:
      os << "overrun " << fault.task << " @iter " << fault.iteration << ": "
         << fault.scalePct << "%";
      if (!fault.extra.isZero()) os << " +" << fault.extra.ticks();
      break;
    case FaultKind::kTaskFailure:
      os << "failure " << fault.task << " @iter " << fault.iteration << ": "
         << fault.failures << "x";
      break;
    case FaultKind::kSolarTransient:
      os << "solar " << fault.solarPct << "% over [" << fault.window.begin()
         << ", " << fault.window.end() << ")";
      break;
    case FaultKind::kBatteryDerate:
      os << "battery derate @" << fault.at << ": capacity "
         << fault.capacityPct << "%, output " << fault.outputPct << "%";
      break;
  }
  return os.str();
}

Fault FaultPlan::overrun(std::string task, std::uint64_t iteration,
                         std::uint32_t scalePct, Duration extra) {
  PAWS_CHECK_MSG(!task.empty(), "overrun fault needs a task name");
  PAWS_CHECK_MSG(scalePct >= 100, "an overrun cannot shorten a task");
  PAWS_CHECK_MSG(extra >= Duration::zero(), "overrun slip must be >= 0");
  Fault f;
  f.kind = FaultKind::kTaskOverrun;
  f.task = std::move(task);
  f.iteration = iteration;
  f.scalePct = scalePct;
  f.extra = extra;
  return f;
}

Fault FaultPlan::failure(std::string task, std::uint64_t iteration,
                         std::uint32_t failures) {
  PAWS_CHECK_MSG(!task.empty(), "failure fault needs a task name");
  PAWS_CHECK_MSG(failures >= 1, "a failure fault must fail at least once");
  Fault f;
  f.kind = FaultKind::kTaskFailure;
  f.task = std::move(task);
  f.iteration = iteration;
  f.failures = failures;
  return f;
}

Fault FaultPlan::solarTransient(Interval window, std::uint32_t solarPct) {
  PAWS_CHECK_MSG(!window.empty(), "solar transient needs a non-empty window");
  PAWS_CHECK_MSG(window.begin() >= Time::zero(),
                 "solar transient cannot start before the mission");
  Fault f;
  f.kind = FaultKind::kSolarTransient;
  f.window = window;
  f.solarPct = solarPct;
  return f;
}

Fault FaultPlan::batteryDerate(Time at, std::uint32_t capacityPct,
                               std::uint32_t outputPct) {
  PAWS_CHECK_MSG(capacityPct <= 100 && outputPct <= 100,
                 "derating cannot grow the battery");
  Fault f;
  f.kind = FaultKind::kBatteryDerate;
  f.at = at;
  f.capacityPct = capacityPct;
  f.outputPct = outputPct;
  return f;
}

namespace {

Watts scalePct(Watts w, std::uint32_t pct) {
  return Watts::fromMilliwatts(w.milliwatts() * pct / 100);
}

Energy scalePct(Energy e, std::uint32_t pct) {
  return Energy::fromMilliwattTicks(e.milliwattTicks() * pct / 100);
}

/// One transient overlaid on `base`: inside the window the level is scaled,
/// outside it is untouched. Breakpoints are the union of the base phase
/// starts and the window bounds; equal-level neighbours merge so repeated
/// application stays canonical.
SolarSource overlay(const SolarSource& base, const Fault& f) {
  std::vector<Time> starts;
  for (const SolarSource::Phase& p : base.phases()) starts.push_back(p.start);
  starts.push_back(f.window.begin());
  starts.push_back(f.window.end());
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  std::vector<SolarSource::Phase> phases;
  for (const Time t : starts) {
    Watts level = base.levelAt(t);
    if (f.window.contains(t)) level = scalePct(level, f.solarPct);
    if (!phases.empty() && phases.back().level == level) continue;
    phases.push_back(SolarSource::Phase{t, level});
  }
  return SolarSource(std::move(phases));
}

}  // namespace

SolarSource applySolarFaults(const SolarSource& base, const FaultPlan& plan) {
  SolarSource result = base;
  for (const Fault& f : plan.faults) {
    if (f.kind != FaultKind::kSolarTransient) continue;
    result = overlay(result, f);
  }
  return result;
}

Battery derate(const Battery& battery, const Fault& fault) {
  PAWS_CHECK(fault.kind == FaultKind::kBatteryDerate);
  Battery derated(scalePct(battery.maxOutput(), fault.outputPct),
                  scalePct(battery.capacity(), fault.capacityPct),
                  battery.model());
  derated.inheritAccounting(battery);
  // Re-draw the spent charge against the shrunken capacity; a clamp here
  // means the derate itself killed the pack at the fault instant.
  if (battery.drawn() > Energy::zero()) {
    derated.draw(battery.drawn(), fault.at);
  }
  return derated;
}

}  // namespace paws::fault
