// FaultModel — distribution-driven fault plans for Monte-Carlo campaigns.
//
// Where a scripted FaultPlan replays one exact degraded mission, the model
// *samples* missions: given a mission seed it instantiates a FaultPlan by
// drawing from per-category SplitMix64 streams (rng.hpp). Each category
// (overruns, failures, clouds, storms, derating) gets its own stream
// derived from (seed, category salt), so adding a category or reordering
// the sampling code never perturbs the draws of another — and a mission's
// plan depends only on its seed, never on which worker thread built it.
//
// All knobs are integers (permille probabilities, percent magnitudes,
// tick durations): instantiation is exact and platform-independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/time.hpp"
#include "fault/fault.hpp"

namespace paws::fault {

struct FaultModelConfig {
  /// Task overruns: per (task, iteration) probability and magnitude range.
  std::uint32_t overrunPermille = 40;
  std::uint32_t overrunMinPct = 110;
  std::uint32_t overrunMaxPct = 180;

  /// Transient task failures: per (task, iteration) probability; each
  /// drawn fault fails 1..maxConsecutiveFailures times.
  std::uint32_t failurePermille = 8;
  std::uint32_t maxConsecutiveFailures = 2;

  /// Cloud dropouts: short solar dips, `clouds` windows over the horizon.
  std::uint32_t clouds = 2;
  Duration cloudMinSpan = Duration(20);
  Duration cloudMaxSpan = Duration(90);
  std::uint32_t cloudMinPct = 35;
  std::uint32_t cloudMaxPct = 75;

  /// Dust storms: long, deep solar windows (0 by default).
  std::uint32_t storms = 0;
  Duration stormMinSpan = Duration(200);
  Duration stormMaxSpan = Duration(600);
  std::uint32_t stormMinPct = 5;
  std::uint32_t stormMaxPct = 40;

  /// Battery derating: probability that ONE derate event strikes the
  /// mission, with capacity/output floors.
  std::uint32_t deratePermille = 150;
  std::uint32_t derateCapacityMinPct = 55;
  std::uint32_t derateOutputMinPct = 70;

  /// Mission-time horizon solar/battery events are drawn within, and the
  /// number of iterations task faults may strike.
  Time horizon = Time(1800);
  std::uint64_t iterations = 32;
};

class FaultModel {
 public:
  /// `taskNames`: the fault-addressable tasks (stable across case
  /// bindings); order matters for reproducibility, so pass a fixed list.
  FaultModel(FaultModelConfig config, std::vector<std::string> taskNames);

  /// Deterministically samples the plan of mission `missionSeed`.
  [[nodiscard]] FaultPlan instantiate(std::uint64_t missionSeed) const;

  [[nodiscard]] const FaultModelConfig& config() const { return config_; }

 private:
  FaultModelConfig config_;
  std::vector<std::string> taskNames_;
};

}  // namespace paws::fault
